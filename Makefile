# Correctness gate for the Magnet reproduction. `make check` is what CI
# runs: build, tests, go vet, the repo's own magnet-vet analyzers, the race
# detector, and short fuzz passes over the parser and tokenizer.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet magnet-vet fuzz race-par bench-json bench-parallel check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The project's own static analyzers (internal/analysis): locking
# discipline, float equality, error wrapping, map-iteration determinism,
# context-first signatures. Exits non-zero on any finding.
magnet-vet:
	$(GO) run ./cmd/magnet-vet ./...

# Short fuzz passes over every fuzz target; bump FUZZTIME for a deeper run.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/qlang/
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=$(FUZZTIME) ./internal/text/
	$(GO) test -run='^$$' -fuzz=FuzzStem -fuzztime=$(FUZZTIME) ./internal/text/
	$(GO) test -run='^$$' -fuzz=FuzzReadNTriples -fuzztime=$(FUZZTIME) ./internal/rdf/
	$(GO) test -run='^$$' -fuzz=FuzzItemSetOps -fuzztime=$(FUZZTIME) ./internal/itemset/

# Focused race pass over the parallel pipeline: the internal/par pool
# stress tests and every serial-vs-parallel equivalence/determinism test.
race-par:
	$(GO) test -race -run 'Pool|Submit|Batch|Panic|Cancel|Nested|Parallel|Equiv|Determinism|Merge|ByAdvisor|Centroid' \
		./internal/par/ ./internal/blackboard/ ./internal/facets/ ./internal/index/ ./internal/vsm/

# Machine-readable benchmark snapshot: every benchmark with -benchmem,
# converted to BENCH_<date>.json (see cmd/benchjson) for cross-PR diffing.
BENCHDATE := $(shell date +%Y-%m-%d)
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_$(BENCHDATE).json
	@echo wrote BENCH_$(BENCHDATE).json

# Per-worker-count results for the parallel fan-out seams (facet overview,
# similarity scan, batch indexing, analyst pane) at 1, 4 and GOMAXPROCS
# workers, in the same BENCH json format.
bench-parallel:
	$(GO) test -run='^$$' -bench='^BenchmarkParallel' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_$(BENCHDATE).json
	@echo wrote BENCH_$(BENCHDATE).json

check: build vet magnet-vet test race race-par fuzz bench-json

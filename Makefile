# Correctness gate for the Magnet reproduction. `make check` is what CI
# runs: build, tests, go vet, the repo's own magnet-vet analyzers, the race
# detector, and short fuzz passes over the parser and tokenizer.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet magnet-vet vet-budget fuzz race-par obs-check bench-json bench-parallel segments segments-check load-check plan-check check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The project's own static analyzers (internal/analysis): per-package
# invariants (locking discipline, float equality, error wrapping,
# map-iteration determinism, context-first signatures) plus the
# interprocedural passes (hot-path allocation freedom, publish-then-freeze
# immutability, cross-call lock requirements). Findings are filtered
# through the committed baseline; anything new — or any stale baseline
# entry — exits non-zero.
magnet-vet:
	$(GO) run ./cmd/magnet-vet -baseline magnet-vet.baseline ./...

# Wall-clock guard for the analysis suite: the interprocedural engine
# (module load, call graph, fact fixpoints) must stay fast enough to run
# on every check. Prints the measured time and fails past VETBUDGET
# seconds. The budget is deliberately generous — it catches regressions
# that make the fixpoint quadratic, not scheduler jitter.
VETBUDGET ?= 60
vet-budget:
	@$(GO) build -o /tmp/magnet-vet-budget ./cmd/magnet-vet
	@start=$$(date +%s); \
	/tmp/magnet-vet-budget -baseline magnet-vet.baseline ./... || exit 1; \
	end=$$(date +%s); elapsed=$$((end-start)); \
	echo "magnet-vet wall clock: $${elapsed}s (budget $(VETBUDGET)s)"; \
	if [ $$elapsed -gt $(VETBUDGET) ]; then \
		echo "magnet-vet exceeded its $(VETBUDGET)s budget" >&2; exit 1; \
	fi

# Short fuzz passes over every fuzz target; bump FUZZTIME for a deeper run.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/qlang/
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=$(FUZZTIME) ./internal/text/
	$(GO) test -run='^$$' -fuzz=FuzzStem -fuzztime=$(FUZZTIME) ./internal/text/
	$(GO) test -run='^$$' -fuzz=FuzzReadNTriples -fuzztime=$(FUZZTIME) ./internal/rdf/
	$(GO) test -run='^$$' -fuzz=FuzzItemSetOps -fuzztime=$(FUZZTIME) ./internal/itemset/
	$(GO) test -run='^$$' -fuzz=FuzzSegmentHeader -fuzztime=$(FUZZTIME) ./internal/segment/
	$(GO) test -run='^$$' -fuzz=FuzzManifest -fuzztime=$(FUZZTIME) ./internal/segment/
	$(GO) test -run='^$$' -fuzz=FuzzShard -fuzztime=$(FUZZTIME) ./internal/ids/
	$(GO) test -run='^$$' -fuzz=FuzzShardPartition -fuzztime=$(FUZZTIME) ./internal/itemset/
	$(GO) test -run='^$$' -fuzz=FuzzPlanEquivalence -fuzztime=$(FUZZTIME) ./internal/plan/

# Focused race pass over the parallel pipeline: the internal/par pool
# stress tests and every serial-vs-parallel equivalence/determinism test.
race-par:
	$(GO) test -race -run 'Pool|Submit|Batch|Panic|Cancel|Nested|Parallel|Equiv|Determinism|Merge|ByAdvisor|Centroid' \
		./internal/par/ ./internal/blackboard/ ./internal/facets/ ./internal/index/ ./internal/vsm/

# Observability gate: the flight-recorder and exposition goldens (ring
# retention, Prometheus text format, /debug/traces JSON) plus the
# recorder's concurrency tests under the race detector, and the
# end-to-end slow-step capture through the web layer and the session.
obs-check:
	$(GO) test -race ./internal/obs/
	$(GO) test -race -run 'FlightRecorder|SlowStep' ./internal/web/ ./internal/core/

# Machine-readable benchmark snapshot: every benchmark with -benchmem,
# converted to BENCH_<date>.json (see cmd/benchjson) for cross-PR diffing.
BENCHDATE := $(shell date +%Y-%m-%d)
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_$(BENCHDATE).json
	@echo wrote BENCH_$(BENCHDATE).json

# Per-worker-count results for the parallel fan-out seams (facet overview,
# similarity scan, batch indexing, analyst pane) at 1, 4 and GOMAXPROCS
# workers, in the same BENCH json format.
bench-parallel:
	$(GO) test -run='^$$' -bench='^BenchmarkParallel' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_$(BENCHDATE).json
	@echo wrote BENCH_$(BENCHDATE).json

# Compile the standard segment sets for serving: the paper-scale recipes
# corpus and the inbox dataset, into segments/.
segments:
	$(GO) run ./cmd/magnet-build -out segments/recipes -dataset recipes -recipes 2000
	$(GO) run ./cmd/magnet-build -out segments/inbox -dataset inbox

# End-to-end durability gate for the on-disk format: build a small set,
# verify it, corrupt one payload byte and confirm verification rejects it,
# then rebuild and confirm serving output is byte-identical to in-memory
# (the magnet-eval fig1 render over both backings).
segments-check:
	@rm -rf /tmp/magnet-segcheck && set -e; \
	$(GO) run ./cmd/magnet-build -out /tmp/magnet-segcheck -recipes 100; \
	$(GO) run ./cmd/magnet-build -verify /tmp/magnet-segcheck; \
	printf '\xff' | dd of=/tmp/magnet-segcheck/graph.seg bs=1 seek=4096 count=1 conv=notrunc status=none; \
	if $(GO) run ./cmd/magnet-build -verify /tmp/magnet-segcheck 2>/dev/null; then \
		echo "segments-check: corrupted set passed verification" >&2; exit 1; \
	fi; \
	echo "segments-check: corruption detected as expected"; \
	$(GO) run ./cmd/magnet-build -out /tmp/magnet-segcheck -recipes 100; \
	$(GO) run ./cmd/magnet-eval -exp fig1 -recipes 100 > /tmp/magnet-segcheck-mem.txt; \
	$(GO) run ./cmd/magnet-eval -exp fig1 -recipes 100 -segments /tmp/magnet-segcheck > /tmp/magnet-segcheck-seg.txt; \
	cmp /tmp/magnet-segcheck-mem.txt /tmp/magnet-segcheck-seg.txt; \
	echo "segments-check: segment-backed render byte-identical"; \
	rm -rf /tmp/magnet-segcheck /tmp/magnet-segcheck-mem.txt /tmp/magnet-segcheck-seg.txt

# Serving-load gate: a short deterministic magnet-load smoke run — many
# concurrent simuser sessions against one shared sharded instance — built
# and run under the race detector, with a vet-budget-style wall-clock
# guard. Catches session-concurrency races and scatter-gather regressions
# that unit tests are too small to hit.
LOADBUDGET ?= 120
load-check:
	@$(GO) build -race -o /tmp/magnet-load-check ./cmd/magnet-load
	@start=$$(date +%s); \
	/tmp/magnet-load-check -recipes 400 -sessions 40 -concurrency 8 -shards 4 -out "" || exit 1; \
	end=$$(date +%s); elapsed=$$((end-start)); \
	echo "magnet-load wall clock: $${elapsed}s (budget $(LOADBUDGET)s)"; \
	if [ $$elapsed -gt $(LOADBUDGET) ]; then \
		echo "magnet-load exceeded its $(LOADBUDGET)s budget" >&2; exit 1; \
	fi

# Planner gate: the planned-vs-naive byte-identity suite (every backing and
# shard count, plus the fuzz corpus replayed as unit cases and the shared
# delta-cache race test), then a magnet-load smoke run that fails unless
# the navigation-delta cache actually absorbs the session's refine steps —
# a planner that silently stops caching would still be byte-identical, so
# the hit-rate gate is what catches it.
plan-check:
	$(GO) test -race ./internal/plan/
	$(GO) test -race -run 'Plan|Within|KeysCache' ./internal/query/ ./internal/core/ .
	@$(GO) build -o /tmp/magnet-plan-check ./cmd/magnet-load
	@/tmp/magnet-plan-check -recipes 400 -sessions 40 -concurrency 8 -out "" -min-plan-hit-rate 0.5
	@/tmp/magnet-plan-check -recipes 400 -sessions 40 -concurrency 8 -shards 4 -out "" -min-plan-hit-rate 0.5

check: build vet vet-budget test race race-par obs-check fuzz segments-check load-check plan-check bench-json

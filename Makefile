# Correctness gate for the Magnet reproduction. `make check` is what CI
# runs: build, tests, go vet, the repo's own magnet-vet analyzers, the race
# detector, and short fuzz passes over the parser and tokenizer.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet magnet-vet fuzz bench-json check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The project's own static analyzers (internal/analysis): locking
# discipline, float equality, error wrapping, map-iteration determinism,
# context-first signatures. Exits non-zero on any finding.
magnet-vet:
	$(GO) run ./cmd/magnet-vet ./...

# Short fuzz passes over every fuzz target; bump FUZZTIME for a deeper run.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/qlang/
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=$(FUZZTIME) ./internal/text/
	$(GO) test -run='^$$' -fuzz=FuzzStem -fuzztime=$(FUZZTIME) ./internal/text/
	$(GO) test -run='^$$' -fuzz=FuzzReadNTriples -fuzztime=$(FUZZTIME) ./internal/rdf/
	$(GO) test -run='^$$' -fuzz=FuzzItemSetOps -fuzztime=$(FUZZTIME) ./internal/itemset/

# Machine-readable benchmark snapshot: every benchmark with -benchmem,
# converted to BENCH_<date>.json (see cmd/benchjson) for cross-PR diffing.
BENCHDATE := $(shell date +%Y-%m-%d)
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_$(BENCHDATE).json
	@echo wrote BENCH_$(BENCHDATE).json

check: build vet magnet-vet test race fuzz bench-json

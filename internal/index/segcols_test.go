package index

import (
	"math"
	"testing"
)

// segTestIndex indexes a handful of docs across two fields, with a removal
// so a dead docnum row must survive serialization.
func segTestIndex(t *testing.T) *TextIndex {
	t.Helper()
	ix := NewTextIndex(nil)
	ix.Index("d1", "title", "Greek salad with parsley")
	ix.Index("d1", "body", "olives feta parsley lemon")
	ix.Index("d2", "title", "Italian pasta")
	ix.Index("d2", "body", "tomato basil parsley")
	ix.Index("d3", "title", "Walnut cake")
	ix.Index("d3", "body", "walnuts sugar butter")
	ix.Index("gone", "title", "doomed document")
	if !ix.Remove("gone") {
		t.Fatal("Remove(gone) = false")
	}
	return ix
}

func TestTextColumnsRoundTrip(t *testing.T) {
	ix := segTestIndex(t)
	r, err := FromTextColumns(nil, ix.Columns())
	if err != nil {
		t.Fatalf("FromTextColumns: %v", err)
	}

	if r.Len() != ix.Len() {
		t.Errorf("Len = %d, want %d", r.Len(), ix.Len())
	}
	for _, term := range []string{"parslei", "parsley", "walnut", "tomato", "nothere", "doom"} {
		if got, want := r.DocFreq(term), ix.DocFreq(term); got != want {
			t.Errorf("DocFreq(%q) = %d, want %d", term, got, want)
		}
		if got, want := r.Surface(term), ix.Surface(term); got != want {
			t.Errorf("Surface(%q) = %q, want %q", term, got, want)
		}
	}
	for _, field := range []string{"", "title", "body", "missing"} {
		for _, q := range []string{"parsley", "walnut cake", "basil", "doomed"} {
			got, want := r.Search(q, field, 10), ix.Search(q, field, 10)
			if len(got) != len(want) {
				t.Errorf("Search(%q,%q): %v, want %v", q, field, got, want)
				continue
			}
			for i := range want {
				if got[i].ID != want[i].ID || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
					t.Errorf("Search(%q,%q)[%d] = %+v, want %+v", q, field, i, got[i], want[i])
				}
			}
			gm, wm := r.Matching(q, field), ix.Matching(q, field)
			if len(gm) != len(wm) {
				t.Errorf("Matching(%q,%q) = %v, want %v", q, field, gm, wm)
				continue
			}
			for i := range wm {
				if gm[i] != wm[i] {
					t.Errorf("Matching(%q,%q)[%d] = %q, want %q", q, field, i, gm[i], wm[i])
				}
			}
		}
	}
	for _, doc := range []string{"d1", "d2", "d3", "gone", "never"} {
		gf, wf := r.Fields(doc), ix.Fields(doc)
		if len(gf) != len(wf) {
			t.Errorf("Fields(%q) = %v, want %v", doc, gf, wf)
			continue
		}
		for i := range wf {
			if gf[i] != wf[i] {
				t.Errorf("Fields(%q)[%d] = %q, want %q", doc, i, gf[i], wf[i])
			}
			gc, wc := r.FieldTermCounts(doc, wf[i]), ix.FieldTermCounts(doc, wf[i])
			if len(gc) != len(wc) {
				t.Errorf("FieldTermCounts(%q,%q) = %v, want %v", doc, wf[i], gc, wc)
				continue
			}
			for term, n := range wc {
				if gc[term] != n {
					t.Errorf("FieldTermCounts(%q,%q)[%q] = %d, want %d", doc, wf[i], term, gc[term], n)
				}
			}
		}
	}
}

func TestTextColumnsReadOnly(t *testing.T) {
	r, err := FromTextColumns(nil, segTestIndex(t).Columns())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Index on a segment-backed text index did not panic")
		}
	}()
	r.Index("d9", "title", "new doc")
}

// segTestVectors builds a store with overlapping docs, a removal, and a
// pinned numeric prefix.
func segTestVectors(t *testing.T) *VectorStore {
	t.Helper()
	v := NewVectorStore()
	v.PinnedPrefix = "num|"
	v.Add("d1", map[string]float64{"parsley": 2, "feta": 1, "olive": 3})
	v.Add("d2", map[string]float64{"parsley": 1, "basil": 2, "tomato": 2})
	v.Add("d3", map[string]float64{"walnut": 4, "sugar": 1})
	v.Add("gone", map[string]float64{"doom": 1})
	if !v.Remove("gone") {
		t.Fatal("Remove(gone) = false")
	}
	// A doc carrying a pinned coordinate term: its stored frequency is the
	// final weight and must survive serialization via the pinned bitset.
	v.Add("d4", map[string]float64{"num|servings=4": 0.5, "parsley": 1})
	return v
}

func TestVectorColumnsRoundTrip(t *testing.T) {
	v := segTestVectors(t)
	r, err := FromVectorColumns(v.Columns())
	if err != nil {
		t.Fatalf("FromVectorColumns: %v", err)
	}

	if r.Len() != v.Len() {
		t.Errorf("Len = %d, want %d", r.Len(), v.Len())
	}
	gi, wi := r.IDs(), v.IDs()
	if len(gi) != len(wi) {
		t.Fatalf("IDs = %v, want %v", gi, wi)
	}
	for i := range wi {
		if gi[i] != wi[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, gi[i], wi[i])
		}
	}
	for _, term := range []string{"parsley", "walnut", "doom", "nothere"} {
		if got, want := r.DocFreq(term), v.DocFreq(term); got != want {
			t.Errorf("DocFreq(%q) = %d, want %d", term, got, want)
		}
		if got, want := r.IDF(term), v.IDF(term); math.Abs(got-want) > 1e-12 {
			t.Errorf("IDF(%q) = %g, want %g", term, got, want)
		}
	}
	for _, doc := range []string{"d1", "d2", "d3", "d4", "gone", "never"} {
		if got, want := r.Has(doc), v.Has(doc); got != want {
			t.Errorf("Has(%q) = %v, want %v", doc, got, want)
		}
		gv, wv := r.Vector(doc), v.Vector(doc)
		if len(gv) != len(wv) {
			t.Errorf("Vector(%q) = %v, want %v", doc, gv, wv)
			continue
		}
		for term, w := range wv {
			if math.Abs(gv[term]-w) > 1e-12 {
				t.Errorf("Vector(%q)[%q] = %g, want %g", doc, term, gv[term], w)
			}
		}
	}
	if got, want := r.Similarity("d1", "d2"), v.Similarity("d1", "d2"); math.Abs(got-want) > 1e-12 {
		t.Errorf("Similarity(d1,d2) = %g, want %g", got, want)
	}
	got := r.SimilarTo(v.Vector("d1"), 5, nil)
	want := v.SimilarTo(v.Vector("d1"), 5, nil)
	if len(got) != len(want) {
		t.Fatalf("SimilarTo: %v, want %v", got, want)
	}
	for i := range want {
		if got[i].ID != want[i].ID || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Errorf("SimilarTo[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestVectorColumnsReadOnly(t *testing.T) {
	r, err := FromVectorColumns(segTestVectors(t).Columns())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Add on a segment-backed vector store did not panic")
		}
	}()
	r.Add("d9", map[string]float64{"x": 1})
}

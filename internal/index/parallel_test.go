package index

import (
	"fmt"
	"reflect"
	"testing"

	"magnet/internal/par"
)

// tieStore builds a store whose similarity scan produces many exact score
// ties: blocks of documents share identical term vectors, so only the
// ID tie-break orders them. Chunk boundaries fall inside blocks, which is
// exactly where a schedule-dependent merge would go wrong.
func tieStore(ndocs int) *VectorStore {
	v := NewVectorStore()
	for i := 0; i < ndocs; i++ {
		block := i / 7 % 5
		v.Add(fmt.Sprintf("doc%04d", i), map[string]float64{
			"common":                  1,
			fmt.Sprintf("b%d", block): 2,
		})
	}
	return v
}

// TestSimilarToSerialParallelEquivalence checks top-k lists are identical
// at every pool width, across k values that cut through tie blocks.
func TestSimilarToSerialParallelEquivalence(t *testing.T) {
	serialStore := tieStore(500)
	query := serialStore.Vector("doc0000")
	exclude := func(id string) bool { return id == "doc0000" }
	for _, k := range []int{1, 3, 10, 50, 499, 1000} {
		want := serialStore.SimilarTo(query, k, exclude)
		for _, width := range []int{1, 2, 4, 8} {
			v := tieStore(500)
			pool := par.New(width)
			v.SetPool(pool)
			got := v.SimilarTo(v.Vector("doc0000"), k, exclude)
			pool.Close()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d width=%d: top-k differs\n got %v\nwant %v", k, width, got, want)
			}
		}
	}
}

// TestSimilarToParallelOnSharedStore checks the pooled scan on one store
// instance matches its own serial scan (pool detached), covering the
// warm-cache path.
func TestSimilarToParallelOnSharedStore(t *testing.T) {
	v := tieStore(300)
	query := v.Vector("doc0042")
	want := v.SimilarTo(query, 25, nil)
	pool := par.New(8)
	defer pool.Close()
	v.SetPool(pool)
	for round := 0; round < 10; round++ {
		if got := v.SimilarTo(query, 25, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: parallel scan differs\n got %v\nwant %v", round, got, want)
		}
	}
}

// TestCentroidBitIdentical checks the centroid is bit-for-bit identical
// at every pool width — the fixed chunk shape makes the float reduction
// order independent of schedule — on collections both under and well over
// one chunk.
func TestCentroidBitIdentical(t *testing.T) {
	for _, ndocs := range []int{10, 256, 257, 700} {
		v := tieStore(ndocs)
		ids := v.IDs()
		want := v.Centroid(ids)
		for _, width := range []int{1, 4, 8} {
			pool := par.New(width)
			v.SetPool(pool)
			got := v.Centroid(ids)
			pool.Close()
			v.SetPool(nil)
			if len(got) != len(want) {
				t.Fatalf("ndocs=%d width=%d: term sets differ", ndocs, width)
			}
			for term, w := range want {
				if got[term] != w {
					t.Fatalf("ndocs=%d width=%d: centroid[%q] = %v, want %v (bit-exact)", ndocs, width, term, got[term], w)
				}
			}
		}
	}
}

package index

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentVectorStore exercises the RWMutex discipline: parallel
// writers (Add/Remove, which invalidate the derived-vector cache) against
// parallel readers (Vector/Similarity/SimilarTo/IDF), so -race checks the
// cache rebuild path and the 'guarded by mu' fields together.
func TestConcurrentVectorStore(t *testing.T) {
	v := NewVectorStore()
	const workers = 8
	const iters = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("doc-%d-%d", w, i%20)
				v.Add(id, map[string]float64{
					"alpha":                     1,
					fmt.Sprintf("term-%d", w):   2,
					fmt.Sprintf("term-%d", i%5): 1,
				})
				_ = v.Vector(id)
				_ = v.Similarity(id, "doc-0-0")
				_ = v.SimilarTo(map[string]float64{"alpha": 1}, 3, nil)
				_ = v.IDF("alpha")
				_ = v.DocFreq("alpha")
				_ = v.Len()
				_ = v.IDs()
				_ = v.Centroid([]string{id})
				if i%7 == 0 {
					v.Remove(id)
				}
			}
		}(w)
	}
	wg.Wait()
	if v.Len() == 0 {
		t.Error("store ended empty")
	}
}

package index

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"magnet/internal/text"
)

func sampleTextIndex() *TextIndex {
	ix := NewTextIndex(nil)
	ix.Index("r1", "title", "Greek Salad")
	ix.Index("r1", "body", "feta cheese, olives, parsley and olive oil")
	ix.Index("r2", "title", "Walnut Cake")
	ix.Index("r2", "body", "walnuts, flour, butter and sugar")
	ix.Index("r3", "title", "Greek Walnut Pie")
	ix.Index("r3", "body", "honey, walnuts, filo dough and butter")
	return ix
}

func TestMatchingAnyField(t *testing.T) {
	ix := sampleTextIndex()
	got := ix.Matching("walnut", AnyField)
	want := []string{"r2", "r3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Matching = %v, want %v", got, want)
	}
}

func TestMatchingStemsQuery(t *testing.T) {
	ix := sampleTextIndex()
	// "walnuts" should stem to the same term as the indexed "walnut".
	if got := ix.Matching("walnuts", AnyField); len(got) != 2 {
		t.Errorf("Matching(walnuts) = %v", got)
	}
}

func TestMatchingFieldScoped(t *testing.T) {
	ix := sampleTextIndex()
	if got := ix.Matching("walnut", "title"); !reflect.DeepEqual(got, []string{"r2", "r3"}) {
		t.Errorf("title scope = %v", got)
	}
	// "olive" appears only in r1's body.
	if got := ix.Matching("olive", "title"); got != nil {
		t.Errorf("olive in title = %v, want none", got)
	}
	if got := ix.Matching("olive", "body"); !reflect.DeepEqual(got, []string{"r1"}) {
		t.Errorf("olive in body = %v", got)
	}
}

func TestMatchingConjunction(t *testing.T) {
	ix := sampleTextIndex()
	if got := ix.Matching("greek walnut", AnyField); !reflect.DeepEqual(got, []string{"r3"}) {
		t.Errorf("conjunction = %v, want [r3]", got)
	}
	if got := ix.Matching("greek anchovy", AnyField); got != nil {
		t.Errorf("impossible conjunction = %v", got)
	}
	if got := ix.Matching("", AnyField); got != nil {
		t.Errorf("empty query = %v", got)
	}
	if got := ix.Matching("the of and", AnyField); got != nil {
		t.Errorf("stop-word-only query = %v", got)
	}
}

func TestSearchRanking(t *testing.T) {
	ix := NewTextIndex(nil)
	ix.Index("heavy", "body", "butter butter butter bread")
	ix.Index("light", "body", "butter bread bread bread")
	ix.Index("other", "body", "sugar")
	got := ix.Search("butter", AnyField, 10)
	if len(got) != 2 {
		t.Fatalf("Search = %v", got)
	}
	if got[0].ID != "heavy" || got[0].Score <= got[1].Score {
		t.Errorf("ranking = %v, want heavy first", got)
	}
}

func TestSearchPartialMatchRanked(t *testing.T) {
	ix := sampleTextIndex()
	// Query with one matching and one unknown term still returns results.
	got := ix.Search("walnut zzzunknown", AnyField, 10)
	if len(got) != 2 {
		t.Errorf("Search = %v, want the two walnut docs", got)
	}
	// k limit.
	if got := ix.Search("walnut", AnyField, 1); len(got) != 1 {
		t.Errorf("k=1 gave %v", got)
	}
}

func TestTextIndexRemove(t *testing.T) {
	ix := sampleTextIndex()
	if !ix.Remove("r3") || ix.Remove("r3") {
		t.Fatal("Remove semantics wrong")
	}
	if got := ix.Matching("walnut", AnyField); !reflect.DeepEqual(got, []string{"r2"}) {
		t.Errorf("after remove = %v", got)
	}
	if ix.Len() != 2 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.DocFreq("walnut") != 1 {
		t.Errorf("DocFreq = %d", ix.DocFreq("walnut"))
	}
}

func TestFieldsAndTermCounts(t *testing.T) {
	ix := sampleTextIndex()
	if got := ix.Fields("r1"); !reflect.DeepEqual(got, []string{"body", "title"}) {
		t.Errorf("Fields = %v", got)
	}
	counts := ix.FieldTermCounts("r1", "body")
	if counts[text.Stem("olives")] == 0 {
		t.Errorf("term counts = %v, want stemmed olives present", counts)
	}
}

func TestIndexAccumulates(t *testing.T) {
	ix := NewTextIndex(nil)
	ix.Index("d", "body", "butter")
	ix.Index("d", "body", "butter again")
	counts := ix.FieldTermCounts("d", "body")
	if counts["butter"] != 2 {
		t.Errorf("accumulated count = %d, want 2", counts["butter"])
	}
}

func TestTextIndexConcurrent(t *testing.T) {
	ix := NewTextIndex(nil)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				id := fmt.Sprintf("d%d", (w*80+i)%25)
				ix.Index(id, "body", "shared words plus unique")
				ix.Matching("shared", AnyField)
				ix.Search("words unique", AnyField, 5)
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != 25 {
		t.Errorf("Len = %d, want 25", ix.Len())
	}
}

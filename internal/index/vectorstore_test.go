package index

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVectorStoreAddRemove(t *testing.T) {
	v := NewVectorStore()
	v.Add("d1", map[string]float64{"a": 1, "b": 2})
	v.Add("d2", map[string]float64{"b": 1, "c": 1})
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.DocFreq("b") != 2 || v.DocFreq("a") != 1 || v.DocFreq("z") != 0 {
		t.Errorf("DocFreq wrong: b=%d a=%d z=%d", v.DocFreq("b"), v.DocFreq("a"), v.DocFreq("z"))
	}
	if !v.Remove("d1") || v.Remove("d1") {
		t.Error("Remove semantics wrong")
	}
	if v.DocFreq("a") != 0 || v.DocFreq("b") != 1 {
		t.Errorf("DocFreq after remove: a=%d b=%d", v.DocFreq("a"), v.DocFreq("b"))
	}
}

func TestVectorStoreAddReplaces(t *testing.T) {
	v := NewVectorStore()
	v.Add("d", map[string]float64{"a": 1})
	v.Add("d", map[string]float64{"b": 1})
	if v.DocFreq("a") != 0 {
		t.Error("re-Add should replace, dropping old terms")
	}
	if v.Len() != 1 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestVectorStoreDropsNonPositive(t *testing.T) {
	v := NewVectorStore()
	v.Add("d", map[string]float64{"a": 0, "b": -1, "c": 2})
	if v.DocFreq("a") != 0 || v.DocFreq("b") != 0 || v.DocFreq("c") != 1 {
		t.Error("non-positive frequencies should be dropped")
	}
}

func TestVectorUnitNorm(t *testing.T) {
	v := NewVectorStore()
	v.Add("d1", map[string]float64{"a": 3, "b": 1})
	v.Add("d2", map[string]float64{"a": 1, "c": 1})
	v.Add("d3", map[string]float64{"c": 5})
	vec := v.Vector("d1")
	var norm float64
	for _, w := range vec {
		norm += w * w
	}
	if !almostEqual(norm, 1) {
		t.Errorf("vector norm² = %v, want 1", norm)
	}
}

// The paper's formula: term-weight = log(freq+1) × log(N/df). A term that
// appears in every document gets idf 0 and vanishes from all vectors.
func TestUniversalTermVanishes(t *testing.T) {
	v := NewVectorStore()
	v.Add("d1", map[string]float64{"type": 1, "a": 1})
	v.Add("d2", map[string]float64{"type": 1, "b": 1})
	if _, ok := v.Vector("d1")["type"]; ok {
		t.Error("universal term should have zero weight and be omitted")
	}
	if _, ok := v.Vector("d1")["a"]; !ok {
		t.Error("distinctive term should survive")
	}
}

func TestPaperWeightFormula(t *testing.T) {
	// 4 docs; term x in d1 with freq 3, df(x)=2.
	v := NewVectorStore()
	v.Add("d1", map[string]float64{"x": 3, "y": 1})
	v.Add("d2", map[string]float64{"x": 1, "z": 1})
	v.Add("d3", map[string]float64{"z": 2})
	v.Add("d4", map[string]float64{"w": 1})

	wx := math.Log(3+1) * math.Log(4.0/2.0)
	wy := math.Log(1+1) * math.Log(4.0/1.0)
	norm := math.Sqrt(wx*wx + wy*wy)
	vec := v.Vector("d1")
	if !almostEqual(vec["x"], wx/norm) || !almostEqual(vec["y"], wy/norm) {
		t.Errorf("vector = %v, want x=%v y=%v", vec, wx/norm, wy/norm)
	}
}

func TestSimilaritySymmetricAndSelfMax(t *testing.T) {
	v := NewVectorStore()
	v.Add("d1", map[string]float64{"a": 2, "b": 1})
	v.Add("d2", map[string]float64{"a": 1, "c": 4})
	v.Add("d3", map[string]float64{"z": 1})
	if !almostEqual(v.Similarity("d1", "d2"), v.Similarity("d2", "d1")) {
		t.Error("similarity not symmetric")
	}
	if !almostEqual(v.Similarity("d1", "d1"), 1) {
		t.Errorf("self similarity = %v, want 1", v.Similarity("d1", "d1"))
	}
	if v.Similarity("d1", "d3") != 0 {
		t.Error("disjoint docs should have zero similarity")
	}
	if v.Similarity("d1", "missing") != 0 {
		t.Error("missing doc should have zero similarity")
	}
}

func TestCentroidIsUnitAndAveragesMembership(t *testing.T) {
	v := NewVectorStore()
	v.Add("d1", map[string]float64{"a": 1, "c": 1})
	v.Add("d2", map[string]float64{"b": 1, "c": 1})
	v.Add("d3", map[string]float64{"x": 1, "y": 1})
	c := v.Centroid([]string{"d1", "d2"})
	var norm float64
	for _, w := range c {
		norm += w * w
	}
	if !almostEqual(norm, 1) {
		t.Errorf("centroid norm² = %v", norm)
	}
	// A doc sharing the common term c should be more similar to the
	// centroid than the unrelated d3.
	if Dot(c, v.Vector("d1")) <= Dot(c, v.Vector("d3")) {
		t.Error("centroid should prefer members over non-members")
	}
	if len(v.Centroid(nil)) != 0 {
		t.Error("empty centroid should be empty")
	}
}

func TestSimilarToRankingAndExclude(t *testing.T) {
	v := NewVectorStore()
	v.Add("q", map[string]float64{"a": 1, "b": 1})
	v.Add("close", map[string]float64{"a": 1, "b": 1, "c": 1})
	v.Add("far", map[string]float64{"a": 1, "z": 5})
	v.Add("none", map[string]float64{"z": 1})

	got := v.SimilarTo(v.Vector("q"), 10, func(id string) bool { return id == "q" })
	if len(got) < 2 || got[0].ID != "close" {
		t.Fatalf("SimilarTo = %v, want close first", got)
	}
	for _, s := range got {
		if s.ID == "q" {
			t.Error("excluded doc returned")
		}
		if s.ID == "none" {
			t.Error("zero-score doc returned")
		}
	}
	if got2 := v.SimilarTo(v.Vector("q"), 1, nil); len(got2) != 1 {
		t.Errorf("k=1 returned %d results", len(got2))
	}
	if v.SimilarTo(nil, 5, nil) != nil {
		t.Error("nil query should give nil")
	}
}

func TestTopTerms(t *testing.T) {
	vec := map[string]float64{"a": 0.1, "b": 0.9, "c": 0.5, "d": 0, "e": -1}
	got := TopTerms(vec, 2, nil)
	want := []TermWeight{{"b", 0.9}, {"c", 0.5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopTerms = %v, want %v", got, want)
	}
	// accept filter
	got = TopTerms(vec, 5, func(t string) bool { return t == "a" })
	if len(got) != 1 || got[0].Term != "a" {
		t.Errorf("filtered TopTerms = %v", got)
	}
	if TopTerms(vec, 0, nil) != nil {
		t.Error("k=0 should give nil")
	}
}

func TestTopTermsDeterministicTies(t *testing.T) {
	vec := map[string]float64{"z": 0.5, "a": 0.5, "m": 0.5}
	got := TopTerms(vec, 3, nil)
	if got[0].Term != "a" || got[1].Term != "m" || got[2].Term != "z" {
		t.Errorf("tie order = %v, want alphabetical", got)
	}
}

func TestVectorCacheInvalidation(t *testing.T) {
	v := NewVectorStore()
	v.Add("d1", map[string]float64{"a": 1})
	v.Add("d2", map[string]float64{"b": 1})
	before := v.Vector("d1")["a"]
	// Adding a third doc changes N, hence idf, hence weights... here d1's
	// only term keeps df=1 while N goes 2→3, so the normalized weight stays
	// 1.0; instead check via similarity structure: add a doc sharing 'a'.
	v.Add("d3", map[string]float64{"a": 1, "c": 1})
	after := v.Vector("d3")
	if after["a"] == 0 {
		t.Error("new doc vector missing term")
	}
	_ = before
	if !v.Has("d3") || v.Has("nope") {
		t.Error("Has wrong")
	}
}

func TestIDsSorted(t *testing.T) {
	v := NewVectorStore()
	for _, id := range []string{"z", "a", "m"} {
		v.Add(id, map[string]float64{"t": 1})
	}
	if got := v.IDs(); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Errorf("IDs = %v", got)
	}
}

func TestVectorStoreConcurrent(t *testing.T) {
	v := NewVectorStore()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("d%d", (w*100+i)%30)
				v.Add(id, map[string]float64{fmt.Sprintf("t%d", i%7): 1, "common": 1})
				v.Vector(id)
				v.SimilarTo(map[string]float64{"common": 1}, 3, nil)
			}
		}(w)
	}
	wg.Wait()
	if v.Len() == 0 {
		t.Error("store empty after concurrent use")
	}
}

// Property: every stored document's derived vector is unit length (or empty
// when all its terms are universal).
func TestQuickVectorsUnitNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewVectorStore()
		n := rng.Intn(12) + 2
		for i := 0; i < n; i++ {
			freqs := map[string]float64{}
			for j := 0; j < rng.Intn(6)+1; j++ {
				freqs[fmt.Sprintf("t%d", rng.Intn(10))] = float64(rng.Intn(5) + 1)
			}
			v.Add(fmt.Sprintf("d%d", i), freqs)
		}
		for _, id := range v.IDs() {
			var norm float64
			for _, w := range v.Vector(id) {
				norm += w * w
			}
			if len(v.Vector(id)) > 0 && math.Abs(norm-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: cosine similarity is bounded in [0, 1+ε] for non-negative
// frequency vectors, and symmetric.
func TestQuickSimilarityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewVectorStore()
		for i := 0; i < 8; i++ {
			freqs := map[string]float64{}
			for j := 0; j < rng.Intn(5)+1; j++ {
				freqs[fmt.Sprintf("t%d", rng.Intn(6))] = float64(rng.Intn(4) + 1)
			}
			v.Add(fmt.Sprintf("d%d", i), freqs)
		}
		ids := v.IDs()
		for _, a := range ids {
			for _, b := range ids {
				s := v.Similarity(a, b)
				if s < -eps || s > 1+1e-6 {
					return false
				}
				if math.Abs(s-v.Similarity(b, a)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestGenerationCacheSurvivesReplacement pins the generation-counter
// invalidation: replacing one document's frequencies (same term set) must
// not discard other documents' cached vectors, while genuinely affected
// vectors are rebuilt correctly.
func TestGenerationCacheSurvivesReplacement(t *testing.T) {
	v := NewVectorStore()
	v.Add("d1", map[string]float64{"a": 1, "b": 2})
	v.Add("d2", map[string]float64{"b": 1, "c": 3})
	v.Add("d3", map[string]float64{"c": 2})

	d1 := v.Vector("d1")
	d3 := v.Vector("d3")

	// Replace d2 with the same term set but new frequencies: N unchanged,
	// df(b)/df(c) unchanged, so d1 and d3's cached maps must survive
	// untouched (pointer identity), while d2 is rebuilt.
	d2old := v.Vector("d2")
	v.Add("d2", map[string]float64{"b": 5, "c": 1})
	if got := v.Vector("d1"); !same(got, d1) {
		t.Error("d1's cached vector was invalidated by an unrelated replacement")
	}
	if got := v.Vector("d3"); !same(got, d3) {
		t.Error("d3's cached vector was invalidated by an unrelated replacement")
	}
	if got := v.Vector("d2"); same(got, d2old) {
		t.Error("d2's own vector was not rebuilt")
	}

	// Replace d2 dropping term c: df(c) 2→1, so d3 (contains c) must be
	// rebuilt; d1 (a, b only... df(b) unchanged? b stays in d2, so yes)
	// survives.
	d1 = v.Vector("d1")
	v.Add("d2", map[string]float64{"b": 5})
	if got := v.Vector("d1"); !same(got, d1) {
		t.Error("d1 invalidated though none of its term dfs changed")
	}

	// Correctness against a store built from scratch in the final state.
	want := NewVectorStore()
	want.Add("d1", map[string]float64{"a": 1, "b": 2})
	want.Add("d2", map[string]float64{"b": 5})
	want.Add("d3", map[string]float64{"c": 2})
	for _, id := range []string{"d1", "d2", "d3"} {
		got, exp := v.Vector(id), want.Vector(id)
		if len(got) != len(exp) {
			t.Fatalf("%s: vector %v, want %v", id, got, exp)
		}
		for term, w := range exp {
			if math.Abs(got[term]-w) > 1e-12 {
				t.Fatalf("%s[%s] = %v, want %v", id, term, got[term], w)
			}
		}
	}

	// Adding a brand-new document changes N and must invalidate everything.
	d1 = v.Vector("d1")
	v.Add("d4", map[string]float64{"a": 1})
	if got := v.Vector("d1"); same(got, d1) {
		t.Error("d1 not rebuilt after document count changed")
	}
}

// same reports map pointer identity (not equality).
func same(a, b map[string]float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return len(a) == len(b)
	}
	ka := reflect.ValueOf(a).Pointer()
	kb := reflect.ValueOf(b).Pointer()
	return ka == kb
}

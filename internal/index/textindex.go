package index

import (
	"math"
	"sort"
	"sync"

	"magnet/internal/text"
)

// AnyField is the pseudo-field matching every indexed field in a TextIndex
// query.
const AnyField = ""

// TextIndex is a field-aware inverted text index: the "external index" the
// paper's query engine consults for keyword predicates (§4.2: "the query
// engine has been extended to uniformly query an external index to support
// text in documents"). Documents carry one or more named text fields (e.g.
// title, body); queries may be scoped to a field or span all of them.
type TextIndex struct {
	mu       sync.RWMutex
	analyzer *text.Analyzer

	// postings: term → field → docID → tf.
	postings map[string]map[string]map[string]int
	// docFields: docID → field → token count (for existence and removal).
	docTerms map[string]map[string]map[string]int
	// fieldDF: term → set of docIDs containing it in any field.
	df map[string]map[string]struct{}
	// surfaces: analyzed term → raw token → count; tracks the most common
	// pre-stemming surface form so suggestions can display "parsley" rather
	// than the stem "parslei".
	surfaces map[string]map[string]int
}

// NewTextIndex returns an empty text index using the given analyzer
// (text.DefaultAnalyzer when nil).
func NewTextIndex(a *text.Analyzer) *TextIndex {
	if a == nil {
		a = text.DefaultAnalyzer
	}
	return &TextIndex{
		analyzer: a,
		postings: make(map[string]map[string]map[string]int),
		docTerms: make(map[string]map[string]map[string]int),
		df:       make(map[string]map[string]struct{}),
		surfaces: make(map[string]map[string]int),
	}
}

// Analyzer returns the analyzer used to index and to parse queries.
func (ix *TextIndex) Analyzer() *text.Analyzer { return ix.analyzer }

// Index adds the raw text under (docID, field), accumulating with any text
// already indexed for that pair.
func (ix *TextIndex) Index(docID, field, raw string) {
	tokens := text.Tokenize(raw)
	counts := make(map[string]int, len(tokens))
	surf := make(map[string]map[string]int, len(tokens))
	for _, tok := range tokens {
		analyzed := ix.analyzer.Terms(tok)
		if len(analyzed) != 1 {
			continue
		}
		term := analyzed[0]
		counts[term]++
		m := surf[term]
		if m == nil {
			m = make(map[string]int)
			surf[term] = m
		}
		m[tok]++
	}
	if len(counts) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for term, toks := range surf {
		m := ix.surfaces[term]
		if m == nil {
			m = make(map[string]int)
			ix.surfaces[term] = m
		}
		for tok, n := range toks {
			m[tok] += n
		}
	}
	fields := ix.docTerms[docID]
	if fields == nil {
		fields = make(map[string]map[string]int)
		ix.docTerms[docID] = fields
	}
	terms := fields[field]
	if terms == nil {
		terms = make(map[string]int)
		fields[field] = terms
	}
	for t, c := range counts {
		terms[t] += c
		byField := ix.postings[t]
		if byField == nil {
			byField = make(map[string]map[string]int)
			ix.postings[t] = byField
		}
		docs := byField[field]
		if docs == nil {
			docs = make(map[string]int)
			byField[field] = docs
		}
		docs[docID] += c
		set := ix.df[t]
		if set == nil {
			set = make(map[string]struct{})
			ix.df[t] = set
		}
		set[docID] = struct{}{}
	}
}

// Remove deletes every field of docID from the index.
func (ix *TextIndex) Remove(docID string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	fields, ok := ix.docTerms[docID]
	if !ok {
		return false
	}
	for field, terms := range fields {
		for t := range terms {
			delete(ix.postings[t][field], docID)
			if len(ix.postings[t][field]) == 0 {
				delete(ix.postings[t], field)
			}
			if len(ix.postings[t]) == 0 {
				delete(ix.postings, t)
			}
			if set := ix.df[t]; set != nil {
				delete(set, docID)
				if len(set) == 0 {
					delete(ix.df, t)
				}
			}
		}
	}
	delete(ix.docTerms, docID)
	return true
}

// Len returns the number of indexed documents.
func (ix *TextIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docTerms)
}

// DocFreq returns the number of documents containing term in any field.
// The term is analyzed (stemmed) first.
func (ix *TextIndex) DocFreq(term string) int {
	terms := ix.analyzer.Terms(term)
	if len(terms) != 1 {
		return 0
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.df[terms[0]])
}

// Surface returns the most common raw (pre-stemming) token behind an
// analyzed term, for display; falls back to the term itself when unknown.
func (ix *TextIndex) Surface(term string) string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	best, bestN := term, 0
	for tok, n := range ix.surfaces[term] {
		if n > bestN || (n == bestN && tok < best) {
			best, bestN = tok, n
		}
	}
	return best
}

// MatchingTerm returns the sorted IDs of documents containing one
// already-analyzed term in the given field (AnyField spans all fields). No
// analysis is applied to the input.
func (ix *TextIndex) MatchingTerm(term, field string) []string {
	ix.mu.RLock()
	docs := ix.docsWithTermLocked(term, field)
	ix.mu.RUnlock()
	out := make([]string, 0, len(docs))
	for id := range docs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Matching returns the IDs of documents containing every term of the
// analyzed query in the given field (AnyField spans all fields), sorted.
// This is the boolean-AND primitive the query engine's keyword predicate
// resolves through.
func (ix *TextIndex) Matching(query, field string) []string {
	terms := ix.analyzer.Terms(query)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var result map[string]struct{}
	for _, t := range terms {
		docs := ix.docsWithTermLocked(t, field)
		if len(docs) == 0 {
			return nil
		}
		if result == nil {
			result = docs
			continue
		}
		for id := range result {
			if _, ok := docs[id]; !ok {
				delete(result, id)
			}
		}
		if len(result) == 0 {
			return nil
		}
	}
	out := make([]string, 0, len(result))
	for id := range result {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (ix *TextIndex) docsWithTermLocked(term, field string) map[string]struct{} {
	byField := ix.postings[term]
	if byField == nil {
		return nil
	}
	out := make(map[string]struct{})
	if field == AnyField {
		for _, docs := range byField {
			for id := range docs {
				out[id] = struct{}{}
			}
		}
		return out
	}
	for id := range byField[field] {
		out[id] = struct{}{}
	}
	return out
}

// Search ranks documents against the analyzed free-text query by tf·idf
// (documents need not contain every term). Results are in descending score
// order, at most k (k ≤ 0 means unlimited).
func (ix *TextIndex) Search(query, field string, k int) []Scored {
	terms := ix.analyzer.Terms(query)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := float64(len(ix.docTerms))
	scores := make(map[string]float64)
	for _, t := range terms {
		df := float64(len(ix.df[t]))
		if df == 0 {
			continue
		}
		idf := math.Log(n/df) + 1 // +1 keeps single-term queries ranked by tf
		byField := ix.postings[t]
		apply := func(docs map[string]int) {
			for id, tf := range docs {
				scores[id] += math.Log(float64(tf)+1) * idf
			}
		}
		if field == AnyField {
			for _, docs := range byField {
				apply(docs)
			}
		} else {
			apply(byField[field])
		}
	}
	out := make([]Scored, 0, len(scores))
	for id, s := range scores {
		out = append(out, Scored{id, s})
	}
	sortScored(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Fields returns the distinct field names indexed for docID, sorted.
func (ix *TextIndex) Fields(docID string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fields := ix.docTerms[docID]
	out := make([]string, 0, len(fields))
	for f := range fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// FieldTermCounts returns the indexed term counts of (docID, field); the
// returned map must not be mutated.
func (ix *TextIndex) FieldTermCounts(docID, field string) map[string]int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docTerms[docID][field]
}

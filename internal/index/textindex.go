package index

import (
	"math"
	"sort"
	"sync"
	"time"

	"magnet/internal/ids"
	"magnet/internal/itemset"
	"magnet/internal/obs"
	"magnet/internal/text"
)

// Text-index observability: one counter + duration histogram per lookup
// entry point (boolean matching, single-term matching, ranked search).
// Handles are package level so the per-call cost is two atomic adds.
var (
	textMatchingObs = opObs{obs.NewCounter("index.text.matching.count"), obs.NewHistogram("index.text.matching.ns")}
	textTermObs     = opObs{obs.NewCounter("index.text.term.count"), obs.NewHistogram("index.text.term.ns")}
	textSearchObs   = opObs{obs.NewCounter("index.text.search.count"), obs.NewHistogram("index.text.search.ns")}
)

// opObs pairs the instruments of one operation; observe is designed for
// `defer o.observe(time.Now())`.
type opObs struct {
	count *obs.Counter
	ns    *obs.Histogram
}

func (o opObs) observe(start time.Time) {
	o.count.Inc()
	o.ns.ObserveSince(start)
}

// AnyField is the pseudo-field matching every indexed field in a TextIndex
// query.
const AnyField = ""

// posting is one term/field posting list: sorted dense docnums with
// parallel term frequencies.
type posting struct {
	dns []uint32
	tfs []int
}

// add accumulates c occurrences of the term for docnum dn.
func (p *posting) add(dn uint32, c int) {
	i := searchPost(p.dns, dn)
	if i < len(p.dns) && p.dns[i] == dn {
		p.tfs[i] += c
		return
	}
	p.dns = append(p.dns, 0)
	p.tfs = append(p.tfs, 0)
	copy(p.dns[i+1:], p.dns[i:])
	copy(p.tfs[i+1:], p.tfs[i:])
	p.dns[i] = dn
	p.tfs[i] = c
}

// remove deletes docnum dn, reporting whether the posting is now empty.
func (p *posting) remove(dn uint32) bool {
	i := searchPost(p.dns, dn)
	if i < len(p.dns) && p.dns[i] == dn {
		p.dns = append(p.dns[:i], p.dns[i+1:]...)
		p.tfs = append(p.tfs[:i], p.tfs[i+1:]...)
	}
	return len(p.dns) == 0
}

//magnet:hot
func searchPost(dns []uint32, dn uint32) int {
	lo, hi := 0, len(dns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if dns[mid] < dn {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TextIndex is a field-aware inverted text index: the "external index" the
// paper's query engine consults for keyword predicates (§4.2: "the query
// engine has been extended to uniformly query an external index to support
// text in documents"). Documents carry one or more named text fields (e.g.
// title, body); queries may be scoped to a field or span all of them.
//
// Documents are interned to dense uint32 docnums; posting lists are sorted
// []uint32 + parallel frequency slices, so boolean matching is merge-based
// set algebra and ranked retrieval accumulates into a dense score column.
type TextIndex struct {
	mu       sync.RWMutex
	analyzer *text.Analyzer
	docs     *ids.Interner[string] // docID → dense docnum, append-only

	// postings: term → field → posting list.
	postings map[string]map[string]*posting
	// docTerms: docID → field → term → tf (for existence and removal).
	docTerms map[string]map[string]map[string]int
	// df: term → sorted docnums containing it in any field.
	df map[string][]uint32
	// surfaces: analyzed term → raw token → count; tracks the most common
	// pre-stemming surface form so suggestions can display "parsley" rather
	// than the stem "parslei".
	surfaces map[string]map[string]int

	// seg, when non-nil, makes the index a read-only view over a columnar
	// segment image: lookups branch to it, the maps above stay nil, and
	// mutations panic. See segcols.go.
	seg *segText
}

// NewTextIndex returns an empty text index using the given analyzer
// (text.DefaultAnalyzer when nil).
func NewTextIndex(a *text.Analyzer) *TextIndex {
	if a == nil {
		a = text.DefaultAnalyzer
	}
	return &TextIndex{
		analyzer: a,
		docs:     ids.NewInterner[string](),
		postings: make(map[string]map[string]*posting),
		docTerms: make(map[string]map[string]map[string]int),
		df:       make(map[string][]uint32),
		surfaces: make(map[string]map[string]int),
	}
}

// Analyzer returns the analyzer used to index and to parse queries.
func (ix *TextIndex) Analyzer() *text.Analyzer { return ix.analyzer }

// mutable panics when the index is a read-only segment view.
func (ix *TextIndex) mutable() {
	if ix.seg != nil {
		panic("index: mutation of read-only segment-backed text index")
	}
}

// Index adds the raw text under (docID, field), accumulating with any text
// already indexed for that pair.
func (ix *TextIndex) Index(docID, field, raw string) {
	ix.mutable()
	tokens := text.Tokenize(raw)
	counts := make(map[string]int, len(tokens))
	surf := make(map[string]map[string]int, len(tokens))
	for _, tok := range tokens {
		analyzed := ix.analyzer.Terms(tok)
		if len(analyzed) != 1 {
			continue
		}
		term := analyzed[0]
		counts[term]++
		m := surf[term]
		if m == nil {
			m = make(map[string]int)
			surf[term] = m
		}
		m[tok]++
	}
	if len(counts) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	dn := ix.docs.Intern(docID)
	for term, toks := range surf {
		m := ix.surfaces[term]
		if m == nil {
			m = make(map[string]int)
			ix.surfaces[term] = m
		}
		for tok, n := range toks {
			m[tok] += n
		}
	}
	fields := ix.docTerms[docID]
	if fields == nil {
		fields = make(map[string]map[string]int)
		ix.docTerms[docID] = fields
	}
	terms := fields[field]
	if terms == nil {
		terms = make(map[string]int)
		fields[field] = terms
	}
	for t, c := range counts {
		terms[t] += c
		byField := ix.postings[t]
		if byField == nil {
			byField = make(map[string]*posting)
			ix.postings[t] = byField
		}
		p := byField[field]
		if p == nil {
			p = &posting{}
			byField[field] = p
		}
		p.add(dn, c)
		ix.df[t] = insertDF(ix.df[t], dn)
	}
}

// insertDF inserts dn into a sorted docnum slice if absent.
func insertDF(dns []uint32, dn uint32) []uint32 {
	i := searchPost(dns, dn)
	if i < len(dns) && dns[i] == dn {
		return dns
	}
	dns = append(dns, 0)
	copy(dns[i+1:], dns[i:])
	dns[i] = dn
	return dns
}

// Remove deletes every field of docID from the index.
func (ix *TextIndex) Remove(docID string) bool {
	ix.mutable()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	fields, ok := ix.docTerms[docID]
	if !ok {
		return false
	}
	dn, _ := ix.docs.Lookup(docID)
	for field, terms := range fields {
		for t := range terms {
			if p := ix.postings[t][field]; p != nil && p.remove(dn) {
				delete(ix.postings[t], field)
			}
			if len(ix.postings[t]) == 0 {
				delete(ix.postings, t)
			}
			if dns := ix.df[t]; dns != nil {
				i := searchPost(dns, dn)
				if i < len(dns) && dns[i] == dn {
					ix.df[t] = append(dns[:i], dns[i+1:]...)
				}
				if len(ix.df[t]) == 0 {
					delete(ix.df, t)
				}
			}
		}
	}
	delete(ix.docTerms, docID)
	return true
}

// Len returns the number of indexed documents.
func (ix *TextIndex) Len() int {
	if ix.seg != nil {
		return int(ix.seg.c.Live)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docTerms)
}

// DocFreq returns the number of documents containing term in any field.
// The term is analyzed (stemmed) first.
func (ix *TextIndex) DocFreq(term string) int {
	terms := ix.analyzer.Terms(term)
	if len(terms) != 1 {
		return 0
	}
	if ix.seg != nil {
		ti, ok := ix.seg.findTerm(terms[0])
		if !ok {
			return 0
		}
		return len(ix.seg.dfRow(ti))
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.df[terms[0]])
}

// TermDocFreq returns the number of documents containing one
// already-analyzed (stemmed) term in any field — the raw-term counterpart
// of DocFreq, for callers that hold stems rather than surface text
// (TermMatch predicates, the plan package's cardinality estimator).
func (ix *TextIndex) TermDocFreq(term string) int {
	if term == "" {
		return 0
	}
	if ix.seg != nil {
		ti, ok := ix.seg.findTerm(term)
		if !ok {
			return 0
		}
		return len(ix.seg.dfRow(ti))
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.df[term])
}

// Surface returns the most common raw (pre-stemming) token behind an
// analyzed term, for display; falls back to the term itself when unknown.
func (ix *TextIndex) Surface(term string) string {
	if ix.seg != nil {
		if ti, ok := ix.seg.findTerm(term); ok {
			return ix.seg.surface(ti)
		}
		return term
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	best, bestN := term, 0
	for tok, n := range ix.surfaces[term] {
		if n > bestN || (n == bestN && tok < best) {
			best, bestN = tok, n
		}
	}
	return best
}

// docnumsWithTermLocked returns the docnums containing one analyzed term in
// the given field. Single-field lookups are zero-copy views; AnyField
// unions the field postings through a bitmap.
func (ix *TextIndex) docnumsWithTermLocked(term, field string) itemset.Set {
	if ix.seg != nil {
		return ix.seg.docnums(ix, term, field)
	}
	if field != AnyField {
		return ix.fieldPostingLocked(term, field)
	}
	byField := ix.postings[term]
	if byField == nil {
		return itemset.Set{}
	}
	b := itemset.NewBits(ix.docs.Len())
	for _, p := range byField {
		b.AddSlice(p.dns)
	}
	return b.Extract()
}

// fieldPostingLocked is the zero-copy fast path: the posting view for one
// analyzed term in one concrete field. Callers hold ix.mu.
//
//magnet:hot
func (ix *TextIndex) fieldPostingLocked(term, field string) itemset.Set {
	byField := ix.postings[term]
	if byField == nil {
		return itemset.Set{}
	}
	p := byField[field]
	if p == nil {
		return itemset.Set{}
	}
	return itemset.FromSorted(p.dns)
}

// rehydrate converts a docnum set to sorted docID strings.
func (ix *TextIndex) rehydrate(set itemset.Set) []string {
	out := ix.docs.AppendKeys(make([]string, 0, set.Len()), set.Slice())
	sort.Strings(out)
	return out
}

// MatchingTerm returns the sorted IDs of documents containing one
// already-analyzed term in the given field (AnyField spans all fields). No
// analysis is applied to the input.
func (ix *TextIndex) MatchingTerm(term, field string) []string {
	defer textTermObs.observe(time.Now())
	ix.mu.RLock()
	set := ix.docnumsWithTermLocked(term, field)
	if set.IsEmpty() {
		ix.mu.RUnlock()
		return []string{}
	}
	keys := ix.docs.AppendKeys(make([]string, 0, set.Len()), set.Slice())
	ix.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Matching returns the IDs of documents containing every term of the
// analyzed query in the given field (AnyField spans all fields), sorted.
// This is the boolean-AND primitive the query engine's keyword predicate
// resolves through.
func (ix *TextIndex) Matching(query, field string) []string {
	defer textMatchingObs.observe(time.Now())
	terms := ix.analyzer.Terms(query)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	var result itemset.Set
	for i, t := range terms {
		docs := ix.docnumsWithTermLocked(t, field)
		if docs.IsEmpty() {
			ix.mu.RUnlock()
			return nil
		}
		if i == 0 {
			result = docs
		} else {
			result = result.Intersect(docs)
		}
		if result.IsEmpty() {
			ix.mu.RUnlock()
			return nil
		}
	}
	keys := ix.docs.AppendKeys(make([]string, 0, result.Len()), result.Slice())
	ix.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Search ranks documents against the analyzed free-text query by tf·idf
// (documents need not contain every term). Results are in descending score
// order, at most k (k ≤ 0 means unlimited). Scores accumulate into a dense
// docnum-indexed column — no per-document hashing.
func (ix *TextIndex) Search(query, field string, k int) []Scored {
	defer textSearchObs.observe(time.Now())
	terms := ix.analyzer.Terms(query)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	n := float64(len(ix.docTerms))
	if ix.seg != nil {
		n = float64(ix.seg.c.Live)
	}
	scores := make([]float64, ix.docs.Len())
	touched := itemset.NewBits(len(scores))
	for _, t := range terms {
		if ix.seg != nil {
			ix.seg.score(t, field, n, scores, touched)
			continue
		}
		df := float64(len(ix.df[t]))
		if df == 0 {
			continue
		}
		idf := math.Log(n/df) + 1 // +1 keeps single-term queries ranked by tf
		byField := ix.postings[t]
		apply := func(p *posting) {
			for i, dn := range p.dns {
				scores[dn] += math.Log(float64(p.tfs[i])+1) * idf
				touched.Add(dn)
			}
		}
		if field == AnyField {
			for _, p := range byField {
				apply(p)
			}
		} else if p := byField[field]; p != nil {
			apply(p)
		}
	}
	hits := touched.Extract()
	docIDs := ix.docs.AppendKeys(make([]string, 0, hits.Len()), hits.Slice())
	ix.mu.RUnlock()
	out := make([]Scored, 0, hits.Len())
	for i, dn := range hits.Slice() {
		out = append(out, Scored{docIDs[i], scores[dn]})
	}
	sortScored(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Fields returns the distinct field names indexed for docID, sorted.
func (ix *TextIndex) Fields(docID string) []string {
	if ix.seg != nil {
		dn, ok := ix.docs.Lookup(docID)
		if !ok {
			return []string{}
		}
		lo, hi := ix.seg.docFieldRun(dn)
		out := make([]string, 0, hi-lo)
		for pair := lo; pair < hi; pair++ {
			out = append(out, ix.seg.fieldName(int(ix.seg.c.DocField[pair])))
		}
		return out // ascending field IDs are already lexical order
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fields := ix.docTerms[docID]
	out := make([]string, 0, len(fields))
	for f := range fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// FieldTermCounts returns the indexed term counts of (docID, field); the
// returned map must not be mutated.
func (ix *TextIndex) FieldTermCounts(docID, field string) map[string]int {
	if ix.seg != nil {
		dn, ok := ix.docs.Lookup(docID)
		if !ok {
			return nil
		}
		fi, ok := ix.seg.findField(field)
		if !ok {
			return nil
		}
		lo, hi := ix.seg.docFieldRun(dn)
		for pair := lo; pair < hi; pair++ {
			if ix.seg.c.DocField[pair] == uint32(fi) {
				tns, tfs := ix.seg.docTermRow(pair)
				m := make(map[string]int, len(tns))
				for i, tn := range tns {
					m[ix.seg.termName(int(tn))] = int(tfs[i])
				}
				return m
			}
		}
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docTerms[docID][field]
}

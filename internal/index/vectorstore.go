// Package index implements the vector-space database Magnet stores item
// vectors in, plus a field-aware inverted text index for keyword queries.
// The paper (§5.2) used Lucene for this role: "an appropriate vector is
// built for each item, and stored in a vector-space database (the Lucene
// text search engine is used for this purpose)". This package reproduces
// the needed subset from scratch: postings lists, document frequencies,
// tf·idf weighting with the paper's exact formula, unit-length
// normalization, dot-product similarity, and ranked retrieval.
package index

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"magnet/internal/ids"
	"magnet/internal/itemset"
	"magnet/internal/obs"
	"magnet/internal/par"
)

// Vector-store observability: hit/miss on the generation-counter vector
// cache (a miss means buildVectorLocked actually rebuilt) plus similarity
// retrieval timing.
var (
	vectorCacheHit  = obs.NewCounter("index.vector.cache.hit")
	vectorCacheMiss = obs.NewCounter("index.vector.cache.miss")
	vectorSearchObs = opObs{obs.NewCounter("index.vector.search.count"), obs.NewHistogram("index.vector.search.ns")}
)

// Scored pairs a document ID with a similarity or retrieval score.
type Scored struct {
	ID    string
	Score float64
}

// sortScored orders by descending score, breaking ties by ascending ID so
// output is deterministic.
func sortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].ID < s[j].ID
	})
}

// VectorStore is a concurrency-safe store of sparse term-frequency vectors
// with tf·idf weighting and cosine (unit-normalized dot product) similarity.
//
// Documents and terms are interned to dense uint32 numbers; per-document
// term vectors are parallel sorted []uint32 / []float64 slices rather than
// nested string-keyed maps, and retrieval candidates come from lazily
// rebuilt dense posting lists.
//
// Raw frequencies are stored; weighted vectors are derived lazily using the
// paper's §5.2 formula
//
//	term-weight = log(freq + 1) × log(num-docs / num-docs-with-term)
//
// followed by normalization of each document vector to length one, "to give
// objects equal importance rather than giving more importance to items with
// more metadata". Derived vectors are cached with generation-counter
// invalidation: a cached vector is rebuilt only when something it actually
// depends on changed — its own frequencies, the document count, or the
// document frequency of one of its terms — so replacing one document's
// vector no longer discards every other document's cache.
type VectorStore struct {
	// PinnedPrefix, when non-empty, marks terms whose stored frequency is
	// used directly as the (pre-normalization) weight, bypassing the
	// log(freq+1)·idf formula. Magnet uses this for unit-circle numeric
	// coordinates (paper §5.4): a date attribute present on every document
	// would otherwise get idf 0 and vanish, defeating the encoding's point
	// ("two e-mails received a day apart ... have some similar attributes").
	// Must be set before any Add.
	PinnedPrefix string

	mu sync.RWMutex

	docs  *ids.Interner[string] // docID → dense docnum, append-only
	terms *ids.Interner[string] // term → dense termnum, append-only

	// Per-document state, indexed by docnum. docTerms is nil for absent
	// documents (never stored, or removed); live documents keep sorted
	// termnums with parallel raw frequencies.
	docTerms [][]uint32
	docFreqs [][]float64
	live     int // number of present documents

	// Per-term state, indexed by termnum.
	df     []int  // document frequency
	pinned []bool // term carries PinnedPrefix

	// Generation counters. gen bumps on every mutation; nGen records when
	// the live document count last changed (idf depends on it globally);
	// termGen[t] when df[t] last changed; docGen[d] when d's own
	// frequencies last changed. A vector cached at generation g is valid
	// iff none of its dependencies moved past g.
	gen     uint64
	nGen    uint64
	termGen []uint64
	docGen  []uint64

	cache    []map[string]float64 // docnum → normalized tf·idf vector
	cacheGen []uint64             // docnum → generation the vector was built at

	// post: termnum → sorted docnum posting list, rebuilt lazily for
	// retrieval (SimilarTo) when stale.
	post    [][]uint32
	postGen uint64

	// pool chunks similarity/centroid scans across workers; nil scans
	// serially. Guarded by mu.
	pool *par.Pool

	// seg, when non-nil, makes the store a read-only view over a columnar
	// segment image: accessors branch to it, the per-document and per-term
	// columns above stay nil, and mutations panic. The tf·idf vector cache
	// still applies — it is grown lazily, off the open path. See segcols.go.
	seg *segVec
}

// NewVectorStore returns an empty vector store.
func NewVectorStore() *VectorStore {
	return &VectorStore{
		docs:    ids.NewInterner[string](),
		terms:   ids.NewInterner[string](),
		postGen: ^uint64(0), // force first postings build
	}
}

// SetPool sets the worker pool similarity and centroid scans fan out on.
// A nil pool (the default) scans serially; results are identical either
// way — top-k selection uses a total order (score desc, ID asc) and the
// centroid reduction's chunk shape is fixed independent of pool width.
func (v *VectorStore) SetPool(p *par.Pool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pool = p
}

func (v *VectorStore) getPool() *par.Pool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.pool
}

// docnum interns docID and grows the per-document columns to cover it.
func (v *VectorStore) docnum(docID string) uint32 {
	dn := v.docs.Intern(docID)
	for int(dn) >= len(v.docTerms) {
		v.docTerms = append(v.docTerms, nil)
		v.docFreqs = append(v.docFreqs, nil)
		v.docGen = append(v.docGen, 0)
		v.cache = append(v.cache, nil)
		v.cacheGen = append(v.cacheGen, 0)
	}
	return dn
}

// termnum interns term and grows the per-term columns to cover it.
func (v *VectorStore) termnum(term string) uint32 {
	t := v.terms.Intern(term)
	for int(t) >= len(v.df) {
		v.df = append(v.df, 0)
		v.termGen = append(v.termGen, 0)
		v.pinned = append(v.pinned, pinnedFromPrefix(v.PinnedPrefix, v.terms.Key(uint32(len(v.pinned)))))
	}
	return t
}

// mutable panics when the store is a read-only segment view.
func (v *VectorStore) mutable() {
	if v.seg != nil {
		panic("index: mutation of read-only segment-backed vector store")
	}
}

// Add stores (or replaces) the raw term-frequency vector for docID.
// Frequencies must be positive; non-positive entries are dropped.
func (v *VectorStore) Add(docID string, freqs map[string]float64) {
	v.mutable()
	v.mu.Lock()
	defer v.mu.Unlock()
	v.gen++
	dn := v.docnum(docID)

	newTerms := make([]uint32, 0, len(freqs))
	for term, f := range freqs {
		if f <= 0 {
			continue
		}
		newTerms = append(newTerms, v.termnum(term))
	}
	sort.Slice(newTerms, func(i, j int) bool { return newTerms[i] < newTerms[j] })
	newFreqs := make([]float64, len(newTerms))
	for i, t := range newTerms {
		newFreqs[i] = freqs[v.terms.Key(t)]
	}

	// Document-frequency bookkeeping: merge the old and new sorted term
	// lists; only terms entering or leaving the document move df (and so
	// invalidate other documents containing them). Shared terms don't.
	old := v.docTerms[dn]
	i, j := 0, 0
	for i < len(old) || j < len(newTerms) {
		switch {
		case j >= len(newTerms) || (i < len(old) && old[i] < newTerms[j]):
			v.df[old[i]]--
			v.termGen[old[i]] = v.gen
			i++
		case i >= len(old) || newTerms[j] < old[i]:
			v.df[newTerms[j]]++
			v.termGen[newTerms[j]] = v.gen
			j++
		default:
			i++
			j++
		}
	}

	if old == nil {
		v.live++
		v.nGen = v.gen
	}
	v.docTerms[dn] = newTerms
	v.docFreqs[dn] = newFreqs
	v.docGen[dn] = v.gen
	v.cache[dn] = nil
}

// Remove deletes docID from the store, reporting whether it was present.
func (v *VectorStore) Remove(docID string) bool {
	v.mutable()
	v.mu.Lock()
	defer v.mu.Unlock()
	dn, ok := v.docs.Lookup(docID)
	if !ok || v.docTerms[dn] == nil {
		return false
	}
	v.gen++
	for _, t := range v.docTerms[dn] {
		v.df[t]--
		v.termGen[t] = v.gen
	}
	v.docTerms[dn] = nil
	v.docFreqs[dn] = nil
	v.docGen[dn] = v.gen
	v.cache[dn] = nil
	v.live--
	v.nGen = v.gen
	return true
}

// Len returns the number of documents stored.
func (v *VectorStore) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.live
}

// Has reports whether docID is stored.
func (v *VectorStore) Has(docID string) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	dn, ok := v.docs.Lookup(docID)
	if !ok {
		return false
	}
	if v.seg != nil {
		return v.seg.liveAt(dn)
	}
	return v.docTerms[dn] != nil
}

// DocFreq returns the number of documents containing term.
func (v *VectorStore) DocFreq(term string) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	t, ok := v.terms.Lookup(term)
	if !ok {
		return 0
	}
	return v.dfLocked(t)
}

// dfLocked returns the document frequency of termnum t over either backing.
//
//magnet:hot
func (v *VectorStore) dfLocked(t uint32) int {
	if v.seg != nil {
		return v.seg.dfAt(t)
	}
	return v.df[t]
}

// pinnedLocked reports termnum t's pinnedness over either backing.
//
//magnet:hot
func (v *VectorStore) pinnedLocked(t uint32) bool {
	if v.seg != nil {
		return v.seg.pinnedAt(t)
	}
	return v.pinned[t]
}

// IDF returns the paper's inverse document frequency for term:
// log(num-docs / num-docs-with-term); zero when the term is unknown or
// appears in every document (such coordinates deliberately vanish — "helps
// the system ignore those attribute values that are very common").
func (v *VectorStore) IDF(term string) float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	t, ok := v.terms.Lookup(term)
	if !ok {
		return 0
	}
	return v.idfLocked(t)
}

//magnet:hot
func (v *VectorStore) idfLocked(t uint32) float64 {
	df := v.dfLocked(t)
	if df == 0 {
		return 0
	}
	return math.Log(float64(v.live) / float64(df))
}

// validLocked reports whether the vector cached for dn is still correct:
// nothing it depends on may have moved past its build generation.
//
//magnet:hot
func (v *VectorStore) validLocked(dn uint32) bool {
	g := v.cacheGen[dn]
	if g == v.gen {
		return true
	}
	if v.docGen[dn] > g || v.nGen > g {
		return false
	}
	for _, t := range v.docTerms[dn] {
		if v.termGen[t] > g {
			return false
		}
	}
	return true
}

// Vector returns the normalized tf·idf vector of docID (nil if absent).
// The returned map must not be mutated.
func (v *VectorStore) Vector(docID string) map[string]float64 {
	v.mu.RLock()
	dn, ok := v.docs.Lookup(docID)
	if !ok {
		v.mu.RUnlock()
		return nil
	}
	if vec := v.cachedLocked(dn); vec != nil && v.validLocked(dn) {
		v.mu.RUnlock()
		vectorCacheHit.Inc()
		return vec
	}
	v.mu.RUnlock()

	v.mu.Lock()
	defer v.mu.Unlock()
	v.ensureCacheLocked()
	if vec := v.cache[dn]; vec != nil && v.validLocked(dn) {
		v.cacheGen[dn] = v.gen // refresh so the next check is O(1)
		vectorCacheHit.Inc()
		return vec
	}
	vectorCacheMiss.Inc()
	vec := v.buildVectorLocked(dn)
	v.cache[dn] = vec
	v.cacheGen[dn] = v.gen
	return vec
}

// cachedLocked bounds-checks the cache lookup: on a segment view the cache
// columns start empty and grow on first build.
func (v *VectorStore) cachedLocked(dn uint32) map[string]float64 {
	if int(dn) >= len(v.cache) {
		return nil
	}
	return v.cache[dn]
}

// ensureCacheLocked grows the cache columns over the full document range.
// A no-op on the mutable store (docnum grows them per Add); on a segment
// view this is the one O(docs) allocation, paid on first Vector call
// rather than at open.
func (v *VectorStore) ensureCacheLocked() {
	if n := v.docs.Len(); len(v.cache) < n {
		v.cache = append(v.cache, make([]map[string]float64, n-len(v.cache))...)
		v.cacheGen = append(v.cacheGen, make([]uint64, n-len(v.cacheGen))...)
	}
}

func (v *VectorStore) buildVectorLocked(dn uint32) map[string]float64 {
	var ts []uint32
	var fs []float64
	if v.seg != nil {
		if !v.seg.liveAt(dn) {
			return nil
		}
		ts, fs = v.seg.docRow(dn)
	} else {
		ts = v.docTerms[dn]
		if ts == nil {
			return nil
		}
		fs = v.docFreqs[dn]
	}
	vec := make(map[string]float64, len(ts))
	var norm float64
	for i, t := range ts {
		var w float64
		if v.pinnedLocked(t) {
			w = fs[i]
		} else {
			w = math.Log(fs[i]+1) * v.idfLocked(t)
		}
		if w == 0 {
			continue
		}
		vec[v.terms.Key(t)] = w
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for t := range vec {
			vec[t] /= norm
		}
	}
	return vec
}

// Similarity returns the dot product of the two documents' normalized
// vectors (cosine similarity); zero when either is absent.
func (v *VectorStore) Similarity(a, b string) float64 {
	return Dot(v.Vector(a), v.Vector(b))
}

// Dot returns the sparse dot product of two vectors.
func Dot(a, b map[string]float64) float64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var s float64
	for t, w := range a {
		s += w * b[t]
	}
	return s
}

// centroidChunk is the fixed reduction shape for Centroid: ids are summed
// in chunks of this size and the per-chunk partials merged in chunk order.
// The shape depends only on len(ids) — never on pool width — so the
// float-addition association, and therefore every output bit, is identical
// at every width. Collections up to one chunk reduce exactly like a plain
// serial loop.
const centroidChunk = 256

// Centroid returns the normalized sum of the documents' vectors — the
// "average member" of the collection the paper dots against (§5.3). Absent
// IDs are skipped. The result has unit length unless empty.
func (v *VectorStore) Centroid(ids []string) map[string]float64 {
	nchunks := (len(ids) + centroidChunk - 1) / centroidChunk
	parts := make([]map[string]float64, nchunks)
	err := par.ForChunks(context.Background(), v.getPool(), len(ids), centroidChunk, func(lo, hi int) {
		part := make(map[string]float64)
		for _, id := range ids[lo:hi] {
			for t, w := range v.Vector(id) {
				part[t] += w
			}
		}
		parts[lo/centroidChunk] = part
	})
	var pe *par.PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}
	sum := make(map[string]float64)
	for _, part := range parts {
		for t, w := range part {
			sum[t] += w
		}
	}
	Normalize(sum)
	return sum
}

// Normalize scales vec to unit length in place (no-op for zero vectors).
func Normalize(vec map[string]float64) {
	var norm float64
	for _, w := range vec {
		norm += w * w
	}
	if norm == 0 {
		return
	}
	norm = math.Sqrt(norm)
	for t := range vec {
		vec[t] /= norm
	}
}

// postingsLocked returns the dense docnum posting lists, rebuilding them
// when stale. Caller holds the write lock.
func (v *VectorStore) postingsLocked() [][]uint32 {
	if v.postGen != v.gen {
		post := make([][]uint32, v.terms.Len())
		for dn, ts := range v.docTerms {
			for _, t := range ts {
				post[t] = append(post[t], uint32(dn))
			}
		}
		v.post = post
		v.postGen = v.gen
	}
	return v.post
}

// SimilarTo returns up to k documents most similar to the query vector, in
// descending score order, skipping documents for which exclude returns true
// and documents with zero score. exclude may be nil; when the store has a
// pool it may be called from multiple workers at once, so it must be safe
// for concurrent use (reading pre-built state is fine).
func (v *VectorStore) SimilarTo(query map[string]float64, k int, exclude func(string) bool) []Scored {
	if k <= 0 || len(query) == 0 {
		return nil
	}
	defer vectorSearchObs.observe(time.Now())
	// Accumulate via postings so only candidate documents sharing at least
	// one query term are touched. Segment views read their precomputed
	// posting column; the mutable store rebuilds lazily when stale.
	v.mu.Lock()
	var post [][]uint32
	if v.seg == nil {
		post = v.postingsLocked()
	}
	b := itemset.NewBits(v.docs.Len())
	for t := range query {
		if tn, ok := v.terms.Lookup(t); ok {
			if v.seg != nil {
				b.AddSlice(v.seg.postingFor(tn))
			} else {
				b.AddSlice(post[tn])
			}
		}
	}
	cands := b.Extract()
	pool := v.pool
	v.mu.Unlock()

	// Chunk the candidate range across the pool; each chunk keeps only its
	// local top-k, and the merged list re-sorts under the same total order
	// (score desc, ID asc). IDs are unique, so the order is total and the
	// global top-k is identical however the candidates were chunked.
	docIDs := v.docs.AppendKeys(make([]string, 0, cands.Len()), cands.Slice())
	chunk := par.ChunkFor(pool, len(docIDs))
	nchunks := (len(docIDs) + chunk - 1) / chunk
	parts := make([][]Scored, nchunks)
	err := par.ForChunks(context.Background(), pool, len(docIDs), chunk, func(lo, hi int) {
		local := make([]Scored, 0, hi-lo)
		for _, docID := range docIDs[lo:hi] {
			if exclude != nil && exclude(docID) {
				continue
			}
			if s := Dot(query, v.Vector(docID)); s > 0 {
				local = append(local, Scored{docID, s})
			}
		}
		if len(local) > k {
			sortScored(local)
			local = local[:k]
		}
		parts[lo/chunk] = local
	})
	var pe *par.PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}
	var scores []Scored
	if nchunks == 1 {
		scores = parts[0]
	} else {
		for _, part := range parts {
			scores = append(scores, part...)
		}
	}
	sortScored(scores)
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

// TermWeight is a term with its weight in some vector.
type TermWeight struct {
	Term   string
	Weight float64
}

// TopTerms returns the k highest-weighted terms of vec in descending weight
// order (ties broken by term). This implements the paper's query-refinement
// move (§5.3): "applying this technique involves just picking terms in the
// average document having the largest normalized term weights". accept may
// be nil; otherwise only terms it admits are returned.
func TopTerms(vec map[string]float64, k int, accept func(string) bool) []TermWeight {
	if k <= 0 {
		return nil
	}
	out := make([]TermWeight, 0, len(vec))
	for t, w := range vec {
		if w <= 0 {
			continue
		}
		if accept != nil && !accept(t) {
			continue
		}
		out = append(out, TermWeight{t, w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Term < out[j].Term
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// IDs returns all stored document IDs, sorted.
func (v *VectorStore) IDs() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	live := v.liveDocnumsLocked()
	out := v.docs.AppendKeys(make([]string, 0, len(live)), live)
	sort.Strings(out)
	return out
}

// liveDocnumsLocked returns the sorted live docnums over either backing.
func (v *VectorStore) liveDocnumsLocked() []uint32 {
	if v.seg != nil {
		return v.seg.c.LiveDNS
	}
	live := make([]uint32, 0, v.live)
	for dn, ts := range v.docTerms {
		if ts != nil {
			live = append(live, uint32(dn))
		}
	}
	return live
}

// Package index implements the vector-space database Magnet stores item
// vectors in, plus a field-aware inverted text index for keyword queries.
// The paper (§5.2) used Lucene for this role: "an appropriate vector is
// built for each item, and stored in a vector-space database (the Lucene
// text search engine is used for this purpose)". This package reproduces
// the needed subset from scratch: postings lists, document frequencies,
// tf·idf weighting with the paper's exact formula, unit-length
// normalization, dot-product similarity, and ranked retrieval.
package index

import (
	"math"
	"sort"
	"strings"
	"sync"
)

// Scored pairs a document ID with a similarity or retrieval score.
type Scored struct {
	ID    string
	Score float64
}

// sortScored orders by descending score, breaking ties by ascending ID so
// output is deterministic.
func sortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].ID < s[j].ID
	})
}

// VectorStore is a concurrency-safe store of sparse term-frequency vectors
// with tf·idf weighting and cosine (unit-normalized dot product) similarity.
//
// Raw frequencies are stored; weighted vectors are derived lazily using the
// paper's §5.2 formula
//
//	term-weight = log(freq + 1) × log(num-docs / num-docs-with-term)
//
// followed by normalization of each document vector to length one, "to give
// objects equal importance rather than giving more importance to items with
// more metadata". Derived vectors are cached and invalidated whenever any
// document is added or removed (document frequencies shift globally).
type VectorStore struct {
	// PinnedPrefix, when non-empty, marks terms whose stored frequency is
	// used directly as the (pre-normalization) weight, bypassing the
	// log(freq+1)·idf formula. Magnet uses this for unit-circle numeric
	// coordinates (paper §5.4): a date attribute present on every document
	// would otherwise get idf 0 and vanish, defeating the encoding's point
	// ("two e-mails received a day apart ... have some similar attributes").
	// Must be set before any Add.
	PinnedPrefix string

	mu sync.RWMutex

	freqs    map[string]map[string]float64 // docID → term → raw frequency; guarded by mu
	postings map[string]map[string]float64 // term → docID → raw frequency; guarded by mu
	df       map[string]int                // term → document frequency; guarded by mu

	gen    uint64                        // bumped on every mutation; guarded by mu
	cache  map[string]map[string]float64 // docID → normalized tf·idf vector; guarded by mu
	cached uint64                        // generation the cache was built at; guarded by mu
}

// NewVectorStore returns an empty vector store.
func NewVectorStore() *VectorStore {
	return &VectorStore{
		freqs:    make(map[string]map[string]float64),
		postings: make(map[string]map[string]float64),
		df:       make(map[string]int),
		cache:    make(map[string]map[string]float64),
	}
}

// Add stores (or replaces) the raw term-frequency vector for docID.
// Frequencies must be positive; non-positive entries are dropped.
func (v *VectorStore) Add(docID string, freqs map[string]float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.removeLocked(docID)
	doc := make(map[string]float64, len(freqs))
	for t, f := range freqs {
		if f <= 0 {
			continue
		}
		doc[t] = f
		p := v.postings[t]
		if p == nil {
			p = make(map[string]float64)
			v.postings[t] = p
		}
		p[docID] = f
		v.df[t]++
	}
	v.freqs[docID] = doc
	v.gen++
}

// Remove deletes docID from the store, reporting whether it was present.
func (v *VectorStore) Remove(docID string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	ok := v.removeLocked(docID)
	if ok {
		v.gen++
	}
	return ok
}

func (v *VectorStore) removeLocked(docID string) bool {
	doc, ok := v.freqs[docID]
	if !ok {
		return false
	}
	for t := range doc {
		delete(v.postings[t], docID)
		if len(v.postings[t]) == 0 {
			delete(v.postings, t)
		}
		if v.df[t]--; v.df[t] == 0 {
			delete(v.df, t)
		}
	}
	delete(v.freqs, docID)
	return true
}

// Len returns the number of documents stored.
func (v *VectorStore) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.freqs)
}

// Has reports whether docID is stored.
func (v *VectorStore) Has(docID string) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.freqs[docID]
	return ok
}

// DocFreq returns the number of documents containing term.
func (v *VectorStore) DocFreq(term string) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.df[term]
}

// IDF returns the paper's inverse document frequency for term:
// log(num-docs / num-docs-with-term); zero when the term is unknown or
// appears in every document (such coordinates deliberately vanish — "helps
// the system ignore those attribute values that are very common").
func (v *VectorStore) IDF(term string) float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.idfLocked(term)
}

func (v *VectorStore) idfLocked(term string) float64 {
	df := v.df[term]
	if df == 0 {
		return 0
	}
	return math.Log(float64(len(v.freqs)) / float64(df))
}

// Vector returns the normalized tf·idf vector of docID (nil if absent).
// The returned map must not be mutated.
func (v *VectorStore) Vector(docID string) map[string]float64 {
	v.mu.RLock()
	if v.cached == v.gen {
		if vec, ok := v.cache[docID]; ok {
			v.mu.RUnlock()
			return vec
		}
	}
	v.mu.RUnlock()

	v.mu.Lock()
	defer v.mu.Unlock()
	if v.cached != v.gen {
		v.cache = make(map[string]map[string]float64)
		v.cached = v.gen
	}
	if vec, ok := v.cache[docID]; ok {
		return vec
	}
	vec := v.buildVectorLocked(docID)
	if vec != nil {
		v.cache[docID] = vec
	}
	return vec
}

func (v *VectorStore) buildVectorLocked(docID string) map[string]float64 {
	doc, ok := v.freqs[docID]
	if !ok {
		return nil
	}
	vec := make(map[string]float64, len(doc))
	var norm float64
	for t, f := range doc {
		var w float64
		if v.PinnedPrefix != "" && strings.HasPrefix(t, v.PinnedPrefix) {
			w = f
		} else {
			w = math.Log(f+1) * v.idfLocked(t)
		}
		if w == 0 {
			continue
		}
		vec[t] = w
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for t := range vec {
			vec[t] /= norm
		}
	}
	return vec
}

// Similarity returns the dot product of the two documents' normalized
// vectors (cosine similarity); zero when either is absent.
func (v *VectorStore) Similarity(a, b string) float64 {
	return Dot(v.Vector(a), v.Vector(b))
}

// Dot returns the sparse dot product of two vectors.
func Dot(a, b map[string]float64) float64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var s float64
	for t, w := range a {
		s += w * b[t]
	}
	return s
}

// Centroid returns the normalized sum of the documents' vectors — the
// "average member" of the collection the paper dots against (§5.3). Absent
// IDs are skipped. The result has unit length unless empty.
func (v *VectorStore) Centroid(ids []string) map[string]float64 {
	sum := make(map[string]float64)
	for _, id := range ids {
		for t, w := range v.Vector(id) {
			sum[t] += w
		}
	}
	Normalize(sum)
	return sum
}

// Normalize scales vec to unit length in place (no-op for zero vectors).
func Normalize(vec map[string]float64) {
	var norm float64
	for _, w := range vec {
		norm += w * w
	}
	if norm == 0 {
		return
	}
	norm = math.Sqrt(norm)
	for t := range vec {
		vec[t] /= norm
	}
}

// SimilarTo returns up to k documents most similar to the query vector, in
// descending score order, skipping documents for which exclude returns true
// and documents with zero score. exclude may be nil.
func (v *VectorStore) SimilarTo(query map[string]float64, k int, exclude func(string) bool) []Scored {
	if k <= 0 || len(query) == 0 {
		return nil
	}
	// Accumulate via postings so only candidate documents sharing at least
	// one query term are touched.
	candidates := make(map[string]struct{})
	v.mu.RLock()
	for t := range query {
		for docID := range v.postings[t] {
			candidates[docID] = struct{}{}
		}
	}
	v.mu.RUnlock()

	scores := make([]Scored, 0, len(candidates))
	for docID := range candidates {
		if exclude != nil && exclude(docID) {
			continue
		}
		if s := Dot(query, v.Vector(docID)); s > 0 {
			scores = append(scores, Scored{docID, s})
		}
	}
	sortScored(scores)
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

// TermWeight is a term with its weight in some vector.
type TermWeight struct {
	Term   string
	Weight float64
}

// TopTerms returns the k highest-weighted terms of vec in descending weight
// order (ties broken by term). This implements the paper's query-refinement
// move (§5.3): "applying this technique involves just picking terms in the
// average document having the largest normalized term weights". accept may
// be nil; otherwise only terms it admits are returned.
func TopTerms(vec map[string]float64, k int, accept func(string) bool) []TermWeight {
	if k <= 0 {
		return nil
	}
	out := make([]TermWeight, 0, len(vec))
	for t, w := range vec {
		if w <= 0 {
			continue
		}
		if accept != nil && !accept(t) {
			continue
		}
		out = append(out, TermWeight{t, w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Term < out[j].Term
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// IDs returns all stored document IDs, sorted.
func (v *VectorStore) IDs() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.freqs))
	for id := range v.freqs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

package index

// Columnar backings for the text index and the vector store: the
// serialized, immutable forms persistent segments hold (internal/segment).
// Both stores follow the graph's pattern (rdf/segcols.go): a Columns()
// snapshot on the build side, a FromXxxColumns read-only view on the open
// side, and branch hooks inside the existing accessors so behaviour —
// including output ordering — is identical over either backing.
//
// Layout invariants:
//
//   - String tables (terms, fields, surfaces) are offset/blob columns;
//     term and field tables are sorted, so ascending ID is lexical order
//     and lookups binary-search with no side map.
//   - All nested structures are offset-delimited runs over flat columns
//     (run i of column C spans C[Start[i]:Start[i+1]]), so opening is O(1)
//     in the corpus: no per-element decode, no slice-of-slices headers.
//   - Document numbering preserves the interner's dense IDs verbatim;
//     removed documents leave empty rows. Posting lists therefore
//     serialize byte-for-byte as built.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"magnet/internal/ids"
	"magnet/internal/itemset"
	"magnet/internal/text"
)

// cutRun bounds run [start[i], start[i+1]) against a backing column length,
// tolerant of corrupt offsets (empty run).
//
//magnet:hot
func cutRun(start []uint32, i, backing int) (int, int) {
	if i < 0 || i+1 >= len(start) {
		return 0, 0
	}
	lo, hi := int(start[i]), int(start[i+1])
	if lo > hi || hi > backing {
		return 0, 0
	}
	return lo, hi
}

// tableEntry returns entry i of an offset/blob string table.
//
//magnet:hot
func tableEntry(off []uint32, blob []byte, i int) []byte {
	lo, hi := cutRun(off, i, len(blob))
	return blob[lo:hi]
}

// findEntry binary-searches a sorted offset/blob table for key.
//
//magnet:hot
func findEntry(off []uint32, blob []byte, key string) (int, bool) {
	n := len(off) - 1
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpEntry(tableEntry(off, blob, mid), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && cmpEntry(tableEntry(off, blob, lo), key) == 0 {
		return lo, true
	}
	return 0, false
}

// cmpEntry compares table bytes against a string key without allocating.
//
//magnet:hot
func cmpEntry(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// sortedKeys returns the sorted keys of a string set.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// appendTable appends key to an offset/blob table.
func appendTable(off []uint32, blob []byte, key string) ([]uint32, []byte) {
	if len(off) == 0 {
		off = append(off, 0)
	}
	blob = append(blob, key...)
	return append(off, uint32(len(blob))), blob
}

// --- TextIndex ------------------------------------------------------------

// TextColumns is the flat columnar image of a TextIndex.
type TextColumns struct {
	// Docs is the document interner table (dense docnum order).
	Docs ids.Columns
	// Live is the number of live (indexed, not removed) documents.
	Live uint32
	// Term and field string tables, sorted.
	TermOff   []uint32
	TermBlob  []byte
	FieldOff  []uint32
	FieldBlob []byte
	// Surf is the precomputed best surface form per term, parallel to the
	// term table (the term itself when no raw token was recorded).
	SurfOff  []uint32
	SurfBlob []byte
	// Postings. PostFieldStart (T+1) delimits each term's field run in
	// PostField (field IDs, ascending). PostStart (len(PostField)+1)
	// delimits each (term, field) posting in PostDNS/PostTFS.
	PostFieldStart []uint32
	PostField      []uint32
	PostStart      []uint32
	PostDNS        []uint32
	PostTFS        []uint32
	// Document frequency. DFStart (T+1) delimits each term's sorted docnum
	// run in DFDNS.
	DFStart []uint32
	DFDNS   []uint32
	// Per-document columns. DocFieldStart (D+1, D = interner range)
	// delimits each document's field run in DocField; DocTermStart
	// (len(DocField)+1) delimits each (doc, field)'s term run in
	// DocTerm/DocTF (term IDs ascending by lexical order).
	DocFieldStart []uint32
	DocField      []uint32
	DocTermStart  []uint32
	DocTerm       []uint32
	DocTF         []uint32
}

// Columns snapshots the index into its columnar image. Deterministic.
func (ix *TextIndex) Columns() TextColumns {
	if ix.seg != nil {
		return ix.seg.c
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var c TextColumns
	c.Docs = ix.docs.Columns()
	c.Live = uint32(len(ix.docTerms))

	// Term universe: postings ∪ df ∪ surfaces ∪ per-doc terms (the last two
	// defensively; they are subsets in a consistent index).
	tset := make(map[string]bool)
	for t := range ix.postings {
		tset[t] = true
	}
	for t := range ix.df {
		tset[t] = true
	}
	for t := range ix.surfaces {
		tset[t] = true
	}
	fset := make(map[string]bool)
	for _, fields := range ix.docTerms {
		for f, terms := range fields {
			fset[f] = true
			for t := range terms {
				tset[t] = true
			}
		}
	}
	for _, byField := range ix.postings {
		for f := range byField {
			fset[f] = true
		}
	}
	terms := sortedKeys(tset)
	fields := sortedKeys(fset)
	termID := make(map[string]uint32, len(terms))
	for i, t := range terms {
		termID[t] = uint32(i)
		c.TermOff, c.TermBlob = appendTable(c.TermOff, c.TermBlob, t)
	}
	fieldID := make(map[string]uint32, len(fields))
	for i, f := range fields {
		fieldID[f] = uint32(i)
		c.FieldOff, c.FieldBlob = appendTable(c.FieldOff, c.FieldBlob, f)
	}

	// Best surface per term: highest count, ties to the lexically smallest
	// token, the term itself when nothing was recorded — exactly Surface().
	for _, t := range terms {
		best, bestN := t, 0
		for tok, n := range ix.surfaces[t] {
			if n > bestN || (n == bestN && tok < best) {
				best, bestN = tok, n
			}
		}
		c.SurfOff, c.SurfBlob = appendTable(c.SurfOff, c.SurfBlob, best)
	}

	// Postings and df, in term order.
	c.PostFieldStart = append(c.PostFieldStart, 0)
	c.PostStart = append(c.PostStart, 0)
	c.DFStart = append(c.DFStart, 0)
	for _, t := range terms {
		byField := ix.postings[t]
		fnames := make([]string, 0, len(byField))
		for f := range byField {
			fnames = append(fnames, f)
		}
		sort.Strings(fnames)
		for _, f := range fnames {
			p := byField[f]
			c.PostField = append(c.PostField, fieldID[f])
			c.PostDNS = append(c.PostDNS, p.dns...)
			for _, tf := range p.tfs {
				c.PostTFS = append(c.PostTFS, uint32(tf))
			}
			c.PostStart = append(c.PostStart, uint32(len(c.PostDNS)))
		}
		c.PostFieldStart = append(c.PostFieldStart, uint32(len(c.PostField)))
		c.DFDNS = append(c.DFDNS, ix.df[t]...)
		c.DFStart = append(c.DFStart, uint32(len(c.DFDNS)))
	}

	// Per-document rows over the full interner range (removed documents
	// leave empty rows, keeping docnums directly indexable).
	n := ix.docs.Len()
	c.DocFieldStart = append(c.DocFieldStart, 0)
	c.DocTermStart = append(c.DocTermStart, 0)
	for dn := 0; dn < n; dn++ {
		fieldsOf := ix.docTerms[ix.docs.Key(uint32(dn))]
		fnames := make([]string, 0, len(fieldsOf))
		for f := range fieldsOf {
			fnames = append(fnames, f)
		}
		sort.Strings(fnames)
		for _, f := range fnames {
			tcounts := fieldsOf[f]
			tnames := make([]string, 0, len(tcounts))
			for t := range tcounts {
				tnames = append(tnames, t)
			}
			sort.Strings(tnames)
			c.DocField = append(c.DocField, fieldID[f])
			for _, t := range tnames {
				c.DocTerm = append(c.DocTerm, termID[t])
				c.DocTF = append(c.DocTF, uint32(tcounts[t]))
			}
			c.DocTermStart = append(c.DocTermStart, uint32(len(c.DocTerm)))
		}
		c.DocFieldStart = append(c.DocFieldStart, uint32(len(c.DocField)))
	}
	return c
}

// FromTextColumns returns a read-only text index over a columnar image,
// using the given analyzer (text.DefaultAnalyzer when nil) — it must match
// the analyzer the index was built with for query terms to line up.
// Construction is O(1) in the corpus size.
func FromTextColumns(a *text.Analyzer, c TextColumns) (*TextIndex, error) {
	if a == nil {
		a = text.DefaultAnalyzer
	}
	docs, err := ids.FromColumns[string](c.Docs)
	if err != nil {
		return nil, fmt.Errorf("index: text doc table: %w", err)
	}
	s := &segText{c: c}
	if err := s.validate(docs.Len()); err != nil {
		return nil, err
	}
	return &TextIndex{analyzer: a, docs: docs, seg: s}, nil
}

// segText wraps the columns with the lookup helpers TextIndex branches to.
type segText struct {
	c TextColumns
}

func (s *segText) validate(nDocs int) error {
	c := &s.c
	if len(c.TermOff) == 0 || len(c.FieldOff) == 0 {
		return fmt.Errorf("index: text columns missing term or field table")
	}
	t := len(c.TermOff) - 1
	if len(c.SurfOff) != len(c.TermOff) {
		return fmt.Errorf("index: surface table (%d) disagrees with term table (%d)", len(c.SurfOff)-1, t)
	}
	if len(c.PostFieldStart) != t+1 || len(c.DFStart) != t+1 {
		return fmt.Errorf("index: posting/df starts disagree with term count %d", t)
	}
	if len(c.PostStart) != len(c.PostField)+1 {
		return fmt.Errorf("index: posting starts (%d) disagree with (term, field) pair count (%d)", len(c.PostStart), len(c.PostField))
	}
	if len(c.PostDNS) != len(c.PostTFS) {
		return fmt.Errorf("index: posting docnum and tf columns disagree (%d vs %d)", len(c.PostDNS), len(c.PostTFS))
	}
	if len(c.DocFieldStart) != nDocs+1 {
		return fmt.Errorf("index: per-doc rows (%d) disagree with document count (%d)", len(c.DocFieldStart), nDocs)
	}
	if len(c.DocTermStart) != len(c.DocField)+1 {
		return fmt.Errorf("index: per-doc term starts (%d) disagree with (doc, field) pair count (%d)", len(c.DocTermStart), len(c.DocField))
	}
	if len(c.DocTerm) != len(c.DocTF) {
		return fmt.Errorf("index: per-doc term and tf columns disagree (%d vs %d)", len(c.DocTerm), len(c.DocTF))
	}
	return nil
}

func (s *segText) termCount() int { return len(s.c.TermOff) - 1 }

//magnet:hot
func (s *segText) findTerm(t string) (int, bool) {
	return findEntry(s.c.TermOff, s.c.TermBlob, t)
}

//magnet:hot
func (s *segText) findField(f string) (int, bool) {
	return findEntry(s.c.FieldOff, s.c.FieldBlob, f)
}

func (s *segText) fieldName(i int) string {
	return string(tableEntry(s.c.FieldOff, s.c.FieldBlob, i))
}

func (s *segText) termName(i int) string {
	return string(tableEntry(s.c.TermOff, s.c.TermBlob, i))
}

// fieldRun returns term ti's (term, field) pair index range.
//
//magnet:hot
func (s *segText) fieldRun(ti int) (int, int) {
	return cutRun(s.c.PostFieldStart, ti, len(s.c.PostField))
}

// postRow returns the posting of absolute (term, field) pair index i.
//
//magnet:hot
func (s *segText) postRow(i int) ([]uint32, []uint32) {
	lo, hi := cutRun(s.c.PostStart, i, len(s.c.PostDNS))
	if hi > len(s.c.PostTFS) {
		return nil, nil
	}
	return s.c.PostDNS[lo:hi], s.c.PostTFS[lo:hi]
}

// findTermField locates field fid within term ti's run.
//
//magnet:hot
func (s *segText) findTermField(ti int, fid uint32) (int, bool) {
	base, end := s.fieldRun(ti)
	row := s.c.PostField[base:end]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < fid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == fid {
		return base + lo, true
	}
	return 0, false
}

// dfRow returns term ti's sorted docnum run.
//
//magnet:hot
func (s *segText) dfRow(ti int) []uint32 {
	lo, hi := cutRun(s.c.DFStart, ti, len(s.c.DFDNS))
	return s.c.DFDNS[lo:hi]
}

func (s *segText) surface(ti int) string {
	return string(tableEntry(s.c.SurfOff, s.c.SurfBlob, ti))
}

// docFieldRun returns docnum dn's (doc, field) pair index range.
func (s *segText) docFieldRun(dn uint32) (int, int) {
	return cutRun(s.c.DocFieldStart, int(dn), len(s.c.DocField))
}

// docTermRow returns the term IDs and counts of absolute (doc, field) pair
// index i.
func (s *segText) docTermRow(i int) ([]uint32, []uint32) {
	lo, hi := cutRun(s.c.DocTermStart, i, len(s.c.DocTerm))
	if hi > len(s.c.DocTF) {
		return nil, nil
	}
	return s.c.DocTerm[lo:hi], s.c.DocTF[lo:hi]
}

// docnumsLocked is the segment implementation behind docnumsWithTermLocked.
// Not //magnet:hot: the AnyField branch legitimately allocates the bitmap
// it unions field postings into; the per-lookup kernels it calls are the
// hot-marked ones.
func (s *segText) docnums(ix *TextIndex, term, field string) itemset.Set {
	ti, ok := s.findTerm(term)
	if !ok {
		return itemset.Set{}
	}
	if field != AnyField {
		fi, ok := s.findField(field)
		if !ok {
			return itemset.Set{}
		}
		pair, ok := s.findTermField(ti, uint32(fi))
		if !ok {
			return itemset.Set{}
		}
		dns, _ := s.postRow(pair)
		return itemset.FromSorted(dns)
	}
	lo, hi := s.fieldRun(ti)
	if lo == hi {
		return itemset.Set{}
	}
	if hi-lo == 1 {
		dns, _ := s.postRow(lo)
		return itemset.FromSorted(dns)
	}
	b := itemset.NewBits(ix.docs.Len())
	for pair := lo; pair < hi; pair++ {
		dns, _ := s.postRow(pair)
		b.AddSlice(dns)
	}
	return b.Extract()
}

// score accumulates one analyzed query term's tf·idf contributions into the
// dense score column — the segment half of Search's term loop. Guarded
// against corrupt docnums rather than trusting payload integrity.
func (s *segText) score(term, field string, n float64, scores []float64, touched *itemset.Bits) {
	ti, ok := s.findTerm(term)
	if !ok {
		return
	}
	df := float64(len(s.dfRow(ti)))
	if df == 0 {
		return
	}
	idf := math.Log(n/df) + 1 // +1 keeps single-term queries ranked by tf
	apply := func(pair int) {
		dns, tfs := s.postRow(pair)
		for i, dn := range dns {
			if int(dn) >= len(scores) {
				continue
			}
			scores[dn] += math.Log(float64(tfs[i])+1) * idf
			touched.Add(dn)
		}
	}
	if field == AnyField {
		lo, hi := s.fieldRun(ti)
		for pair := lo; pair < hi; pair++ {
			apply(pair)
		}
	} else if fi, ok := s.findField(field); ok {
		if pair, ok := s.findTermField(ti, uint32(fi)); ok {
			apply(pair)
		}
	}
}

// --- VectorStore ----------------------------------------------------------

// VectorColumns is the flat columnar image of a VectorStore. Document and
// term numbering preserve the interners' dense IDs; removed documents leave
// empty rows and are absent from LiveDNS.
type VectorColumns struct {
	Docs  ids.Columns
	Terms ids.Columns
	// LiveDNS is the sorted posting of live docnums.
	LiveDNS []uint32
	// Per-document vectors: DocStart (D+1) delimits each document's run in
	// DocTerm (sorted termnums) and DocFreq (raw frequencies).
	DocStart []uint32
	DocTerm  []uint32
	DocFreq  []float64
	// DF is the per-term document frequency (termnum-indexed).
	DF []uint32
	// Pinned is a termnum-indexed bitset of terms carrying the pinned
	// prefix (stored frequency used directly as weight).
	Pinned []byte
	// Retrieval postings: PostStart (T+1) delimits each term's sorted
	// docnum posting in PostDNS (precomputed, so SimilarTo never rebuilds).
	PostStart []uint32
	PostDNS   []uint32
}

// Columns snapshots the store into its columnar image. Deterministic.
func (v *VectorStore) Columns() VectorColumns {
	if v.seg != nil {
		return v.seg.c
	}
	v.mu.Lock()
	defer v.mu.Unlock()

	var c VectorColumns
	c.Docs = v.docs.Columns()
	c.Terms = v.terms.Columns()
	c.DocStart = append(c.DocStart, 0)
	for dn, ts := range v.docTerms {
		if ts != nil {
			c.LiveDNS = append(c.LiveDNS, uint32(dn))
		}
		c.DocTerm = append(c.DocTerm, ts...)
		c.DocFreq = append(c.DocFreq, v.docFreqs[dn]...)
		c.DocStart = append(c.DocStart, uint32(len(c.DocTerm)))
	}
	c.DF = make([]uint32, len(v.df))
	for t, n := range v.df {
		if n > 0 {
			c.DF[t] = uint32(n)
		}
	}
	c.Pinned = make([]byte, (len(v.pinned)+7)/8)
	for t, p := range v.pinned {
		if p {
			c.Pinned[t/8] |= 1 << (t % 8)
		}
	}
	post := v.postingsLocked()
	c.PostStart = append(c.PostStart, 0)
	for _, dns := range post {
		c.PostDNS = append(c.PostDNS, dns...)
		c.PostStart = append(c.PostStart, uint32(len(c.PostDNS)))
	}
	return c
}

// FromVectorColumns returns a read-only vector store over a columnar image.
// Construction is O(1) in the corpus size; the tf·idf vector cache starts
// empty and grows lazily off the open path.
func FromVectorColumns(c VectorColumns) (*VectorStore, error) {
	docs, err := ids.FromColumns[string](c.Docs)
	if err != nil {
		return nil, fmt.Errorf("index: vector doc table: %w", err)
	}
	terms, err := ids.FromColumns[string](c.Terms)
	if err != nil {
		return nil, fmt.Errorf("index: vector term table: %w", err)
	}
	s := &segVec{c: c}
	if err := s.validate(docs.Len(), terms.Len()); err != nil {
		return nil, err
	}
	return &VectorStore{docs: docs, terms: terms, live: len(c.LiveDNS), seg: s}, nil
}

// segVec wraps the columns with the lookup helpers VectorStore branches to.
type segVec struct {
	c VectorColumns
}

func (s *segVec) validate(nDocs, nTerms int) error {
	c := &s.c
	if len(c.DocStart) != nDocs+1 {
		return fmt.Errorf("index: vector doc rows (%d) disagree with document count (%d)", len(c.DocStart), nDocs)
	}
	if len(c.DocTerm) != len(c.DocFreq) {
		return fmt.Errorf("index: vector term and freq columns disagree (%d vs %d)", len(c.DocTerm), len(c.DocFreq))
	}
	if len(c.DF) != nTerms {
		return fmt.Errorf("index: vector df column (%d) disagrees with term count (%d)", len(c.DF), nTerms)
	}
	if len(c.Pinned) != (nTerms+7)/8 {
		return fmt.Errorf("index: vector pinned bitset (%d bytes) disagrees with term count (%d)", len(c.Pinned), nTerms)
	}
	if len(c.PostStart) != nTerms+1 {
		return fmt.Errorf("index: vector posting starts (%d) disagree with term count (%d)", len(c.PostStart), nTerms)
	}
	return nil
}

// docRow returns docnum dn's sorted term vector (termnums, frequencies).
//
//magnet:hot
func (s *segVec) docRow(dn uint32) ([]uint32, []float64) {
	lo, hi := cutRun(s.c.DocStart, int(dn), len(s.c.DocTerm))
	if hi > len(s.c.DocFreq) {
		return nil, nil
	}
	return s.c.DocTerm[lo:hi], s.c.DocFreq[lo:hi]
}

// liveAt reports whether docnum dn holds a live document.
func (s *segVec) liveAt(dn uint32) bool {
	dns := s.c.LiveDNS
	lo, hi := 0, len(dns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if dns[mid] < dn {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(dns) && dns[lo] == dn
}

//magnet:hot
func (s *segVec) dfAt(t uint32) int {
	if int(t) >= len(s.c.DF) {
		return 0
	}
	return int(s.c.DF[t])
}

//magnet:hot
func (s *segVec) pinnedAt(t uint32) bool {
	if int(t)/8 >= len(s.c.Pinned) {
		return false
	}
	return s.c.Pinned[t/8]&(1<<(t%8)) != 0
}

// postingFor returns term tn's sorted docnum posting.
//
//magnet:hot
func (s *segVec) postingFor(tn uint32) []uint32 {
	lo, hi := cutRun(s.c.PostStart, int(tn), len(s.c.PostDNS))
	return s.c.PostDNS[lo:hi]
}

// pinnedFromPrefix is the build-side check termnum() uses; kept here so the
// segment view and the mutable store derive pinnedness identically.
func pinnedFromPrefix(prefix, term string) bool {
	return prefix != "" && strings.HasPrefix(term, prefix)
}

package simuser

import (
	"strings"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

// apply performs a board action for a simulated user, deliberately
// discarding failures: a user whose click does nothing simply carries on,
// and every action applied here came off the session's own board.
func apply(s *core.Session, a blackboard.Action) { _ = s.Apply(a) }

// studyEnv holds the corpus-level fixtures of the two directed tasks.
type studyEnv struct {
	graph *rdf.Graph
	// target is task 1's "aunt's recipe": a walnut recipe.
	target       rdf.IRI
	targetCuis   rdf.Term
	targetIngred map[rdf.IRI]bool
}

// targetConnectivity returns the desired number of related nut-free
// recipes around the aunt's recipe, scaled to corpus size: enough that the
// task is solvable (the paper's users found up to 3), few enough that blind
// scanning does not solve it.
func targetConnectivity(corpusRecipes int) int {
	c := corpusRecipes / 50
	if c < 8 {
		c = 8
	}
	return c
}

// prepare picks the aunt's recipe: a walnut recipe with a modest
// ingredient list (sharing two of five ingredients is a real signal, two of
// ten is not) and moderate connectivity — among candidates we pick the one
// whose related nut-free neighbourhood is closest to targetConnectivity.
// Deterministic across runs.
func (e *studyEnv) prepare() {
	walnut := recipes.Ingredient("Walnuts")
	// Subjects returns lexically sorted IRIs already.
	candidates := e.graph.Subjects(recipes.PropIngredient, walnut)

	want := targetConnectivity(len(e.graph.SubjectsOfType(recipes.ClassRecipe)))
	best, bestDist := rdf.IRI(""), 1<<30
	for _, r := range candidates {
		if n := e.graph.ObjectCount(r, recipes.PropIngredient); n < 4 || n > 6 {
			continue
		}
		dist := e.relatedNutFreeCount(r) - want
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			best, bestDist = r, dist
		}
	}
	if best == "" && len(candidates) > 0 {
		best = candidates[0]
	}
	e.target = best
	if c, ok := e.graph.Object(e.target, recipes.PropCuisine); ok {
		e.targetCuis = c
	}
	e.targetIngred = make(map[rdf.IRI]bool)
	for _, ing := range e.graph.Objects(e.target, recipes.PropIngredient) {
		e.targetIngred[ing.(rdf.IRI)] = true
	}
}

// relatedNutFreeCount counts corpus recipes sharing ≥2 of r's ingredients
// that are nut-free.
func (e *studyEnv) relatedNutFreeCount(r rdf.IRI) int {
	shared := make(map[rdf.IRI]int)
	for _, ing := range e.graph.Objects(r, recipes.PropIngredient) {
		for _, other := range e.graph.Subjects(recipes.PropIngredient, ing.(rdf.IRI)) {
			if other != r {
				shared[other]++
			}
		}
	}
	n := 0
	for other, k := range shared {
		if k >= 2 && e.nutFree(other) {
			n++
		}
	}
	return n
}

// nutFree reports whether a recipe has no ingredient in the Nuts group.
func (e *studyEnv) nutFree(r rdf.IRI) bool {
	nuts := recipes.Group("Nuts")
	for _, ing := range e.graph.Objects(r, recipes.PropIngredient) {
		if i, ok := ing.(rdf.IRI); ok && e.graph.Has(i, recipes.PropGroup, nuts) {
			return false
		}
	}
	return true
}

// relatedToTarget reports whether r is a recipe "the uncle and aunt may
// like": genuinely similar to the aunt's recipe, i.e. sharing at least two
// of its ingredients. (Merely sharing the cuisine is not enough — the task
// asks for recipes related to *that* recipe.)
func (e *studyEnv) relatedToTarget(r rdf.IRI) bool {
	if r == e.target {
		return false
	}
	shared := 0
	for _, ing := range e.graph.Objects(r, recipes.PropIngredient) {
		if e.targetIngred[ing.(rdf.IRI)] {
			shared++
		}
	}
	return shared >= 2
}

// isRecipe filters vocabulary resources out of scanned collections.
func (e *studyEnv) isRecipe(r rdf.IRI) bool {
	return e.graph.Has(r, rdf.Type, recipes.ClassRecipe)
}

// Recognition probabilities for scanTask1: verifying a system-proposed
// similar item is easy (recognition), while spotting a related recipe
// inside a large query listing demands recalling the aunt's recipe's
// ingredients (recall) and often fails.
const (
	recogSimilar = 0.85
	recogListing = 0.55
)

// scanTask1 models the user examining a collection item by item: each
// examination costs one unit of attention; valid finds (related and
// nut-free — the user can read the ingredient list, so nut recipes are
// skipped, not collected) accumulate until the task's 3-recipe goal,
// subject to the recognition probability recog.
func (e *studyEnv) scanTask1(u *user, items []rdf.IRI, found map[rdf.IRI]bool, budget int, recog float64) {
	for _, it := range items {
		if len(found) >= 3 || budget == 0 {
			return
		}
		if !e.isRecipe(it) {
			continue
		}
		budget--
		if e.relatedToTarget(it) && e.nutFree(it) && u.rng.Float64() < recog {
			found[it] = true
		}
	}
}

// nutExclusion is the constraint a successful negation produces.
func nutExclusion() query.Predicate {
	return query.PathProperty{
		Path:  []rdf.IRI{recipes.PropIngredient, recipes.PropGroup},
		Value: recipes.Group("Nuts"),
	}
}

// task1 runs the walnut-recipe task and returns the number of valid related
// recipes the user ends with.
func (e *studyEnv) task1(u *user, s *core.Session, complete bool) int {
	found := make(map[rdf.IRI]bool)

	// Everyone starts by locating the aunt's recipe via keyword search.
	s.Search("walnut")
	s.OpenItem(e.target)

	if complete && u.similarityFirst {
		// Similarity path (complete system only): "find recipes similar to
		// a target recipe but that did not have nuts in them".
		if sg, ok := findGroupSuggestion(s, "Similar by Content"); ok {
			apply(s, sg.Action)
			// Excluding nuts needs the context-menu mode switch; most users
			// manage it here because the suggestion is in front of them.
			if u.rng.Float64() < 0.75 {
				s.Refine(nutExclusion(), blackboard.Exclude)
			}
			e.scanTask1(u, s.Items(), found, len(s.Items()), recogSimilar)
			return len(found)
		}
	}

	// Constraint-stacking path (the capture error the paper describes):
	// the user adds target ingredients *including walnuts* as constraints.
	q := query.NewQuery(query.TypeIs(recipes.ClassRecipe))
	if e.targetCuis != nil {
		q = q.With(query.Property{Prop: recipes.PropCuisine, Value: e.targetCuis})
	}
	if course, ok := e.graph.Object(e.target, recipes.PropCourse); ok {
		// Users remember the dish kind and refine by it (basic faceting,
		// available on both systems).
		q = q.With(query.Property{Prop: recipes.PropCourse, Value: course})
	}
	q = q.With(query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Walnuts")})
	apply(s, blackboard.ReplaceQuery{Query: q})
	// "...then issuing a refinement to exclude items with nuts, producing
	// the empty result set."
	s.Refine(nutExclusion(), blackboard.Exclude)

	if len(s.Items()) == 0 {
		// Stuck. Recovery differs by system.
		recovered := false
		if complete {
			// The contrary advisor suggests negating the walnut constraint.
			if sg, ok := findContrary(s, "Walnut"); ok && u.rng.Float64() < 0.85 {
				apply(s, sg.Action)
				// Clean up the now-redundant empty-set exclusion by
				// removing the stale positive constraint if still present.
				recovered = len(s.Items()) > 0
			}
		}
		if !recovered && u.rng.Float64() < u.negationSkill {
			// Manual recovery: drop the walnut constraint, keep the
			// exclusion ("most users on both systems had a hard time
			// getting negation right" — low probability).
			fixed := query.NewQuery(query.TypeIs(recipes.ClassRecipe))
			if e.targetCuis != nil {
				fixed = fixed.With(query.Property{Prop: recipes.PropCuisine, Value: e.targetCuis})
			}
			if course, ok := e.graph.Object(e.target, recipes.PropCourse); ok {
				fixed = fixed.With(query.Property{Prop: recipes.PropCourse, Value: course})
			}
			fixed = fixed.With(query.Not{P: nutExclusion()})
			apply(s, blackboard.ReplaceQuery{Query: fixed})
			recovered = len(s.Items()) > 0
		}
		if !recovered {
			// Flail: fall back to the cuisine collection alone and scan.
			fallback := query.NewQuery(query.TypeIs(recipes.ClassRecipe))
			if e.targetCuis != nil {
				fallback = fallback.With(query.Property{Prop: recipes.PropCuisine, Value: e.targetCuis})
			}
			if course, ok := e.graph.Object(e.target, recipes.PropCourse); ok {
				fallback = fallback.With(query.Property{Prop: recipes.PropCourse, Value: course})
			}
			apply(s, blackboard.ReplaceQuery{Query: fallback})
		}
	}
	e.scanTask1(u, s.Items(), found, u.patience*2, recogListing)

	// Complete-system users who are still short often discover the Similar
	// Items advisor on their second attempt ("users seemed to not have
	// problems using the extra features ... after they used it once or
	// twice").
	if complete && len(found) < 2 && u.rng.Float64() < 0.6 {
		s.OpenItem(e.target)
		if sg, ok := findGroupSuggestion(s, "Similar by Content"); ok {
			apply(s, sg.Action)
			if u.rng.Float64() < 0.75 {
				s.Refine(nutExclusion(), blackboard.Exclude)
			}
			e.scanTask1(u, s.Items(), found, len(s.Items()), recogSimilar)
		}
	}
	return len(found)
}

// menuCourses are the task-2 requirements: "some soups or appetizers, as
// well as salads and desserts on top of the meal".
var menuCourses = [][]rdf.IRI{
	{recipes.Course("Soup"), recipes.Course("Appetizer")},
	{recipes.Course("Salad")},
	{recipes.Course("Dessert")},
	{recipes.Course("Main")},
}

// task2 runs the Mexican-menu task and returns the number of valid menu
// recipes collected.
func (e *studyEnv) task2(u *user, s *core.Session, complete bool) int {
	favorites := e.pickFavorites(u)
	mexican := recipes.Cuisine("Mexican")

	apply(s, blackboard.ReplaceQuery{Query: query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropCuisine, Value: mexican},
	)})

	collected := make(map[rdf.IRI]bool)
	for _, courseAlts := range menuCourses {
		course := courseAlts[u.rng.Intn(len(courseAlts))]
		s.Refine(query.Property{Prop: recipes.PropCourse, Value: course}, blackboard.Filter)

		var firstPick rdf.IRI
		perCourse := 0
		budget := u.patience
		for _, it := range s.Items() {
			if perCourse >= 2 || budget == 0 {
				break
			}
			if !e.isRecipe(it) || collected[it] {
				continue
			}
			budget--
			// Users pick dishes with a favourite ingredient readily, and
			// other plausible dishes occasionally.
			p := 0.25
			if e.hasAny(it, favorites) {
				p = 0.5
			}
			if u.rng.Float64() < p {
				collected[it] = true
				perCourse++
				if firstPick == "" {
					firstPick = it
				}
			}
		}

		// Complete-system bonus move the paper observed: pick a dish, ask
		// for similar recipes, keep those that still fit the menu slot.
		if complete && firstPick != "" && u.rng.Float64() < 0.35 {
			s.OpenItem(firstPick)
			if sg, ok := findGroupSuggestion(s, "Similar by Content"); ok {
				apply(s, sg.Action)
				for _, it := range s.Items() {
					if collected[it] || !e.isRecipe(it) {
						continue
					}
					if e.graph.Has(it, recipes.PropCuisine, mexican) &&
						e.graph.Has(it, recipes.PropCourse, course) {
						collected[it] = true
						break // one extra per course at most
					}
				}
			}
		}

		// Back to the Mexican collection for the next course.
		apply(s, blackboard.ReplaceQuery{Query: query.NewQuery(
			query.TypeIs(recipes.ClassRecipe),
			query.Property{Prop: recipes.PropCuisine, Value: mexican},
		)})
	}
	return len(collected)
}

// pickFavorites draws the user's two favourite ingredients from the common
// Mexican-ish pool (the task brief: "some of your favorite ingredients that
// you mentioned earlier").
func (e *studyEnv) pickFavorites(u *user) []rdf.IRI {
	pool := []string{
		"Black Beans", "Avocados", "Cilantro", "Corn", "Tomatoes", "Limes",
		"Cheddar", "Chicken", "Garlic", "Onions",
	}
	a := u.rng.Intn(len(pool))
	b := u.rng.Intn(len(pool))
	return []rdf.IRI{recipes.Ingredient(pool[a]), recipes.Ingredient(pool[b])}
}

func (e *studyEnv) hasAny(r rdf.IRI, ingredients []rdf.IRI) bool {
	for _, ing := range ingredients {
		if e.graph.Has(r, recipes.PropIngredient, ing) {
			return true
		}
	}
	return false
}

// findGroupSuggestion returns the first pane suggestion in the given group.
func findGroupSuggestion(s *core.Session, group string) (blackboard.Suggestion, bool) {
	for _, sg := range s.Board().Suggestions() {
		if sg.Group == group {
			return sg, true
		}
	}
	return blackboard.Suggestion{}, false
}

// findContrary returns a contrary-constraints suggestion whose title
// mentions the given word.
func findContrary(s *core.Session, word string) (blackboard.Suggestion, bool) {
	for _, sg := range s.Board().Suggestions() {
		if sg.Group == "Contrary constraints" && strings.Contains(sg.Title, word) {
			return sg, true
		}
	}
	return blackboard.Suggestion{}, false
}

package simuser

import (
	"sync"
	"testing"

	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
)

// TestReplayDeterministicAndConcurrent replays the same session mix
// serially and concurrently against one shared instance and requires
// identical per-session outcomes: per-session state (history, views) must
// be isolated, and shared engine state must be read-only. Run with -race
// this is also the session-concurrency soundness check at the simuser
// level (the core-level stress test lives in internal/core).
func TestReplayDeterministicAndConcurrent(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 400, Seed: 1})
	m := core.Open(g, core.Options{Parallelism: 2, Shards: 4})
	defer m.Close()

	r := NewReplay(m)
	if _, err := r.Target(); err != nil {
		t.Fatalf("Target: %v", err)
	}

	const sessions = 24
	serial := make([]int, sessions)
	for i := range serial {
		serial[i] = r.Session(i, int64(1000+i*7919))
	}

	concurrent := make([]int, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i] = r.Session(i, int64(1000+i*7919))
		}(i)
	}
	wg.Wait()

	for i := range serial {
		if serial[i] != concurrent[i] {
			t.Errorf("session %d: serial found %d, concurrent found %d", i, serial[i], concurrent[i])
		}
	}
}

// TestReplayTaskDispatch checks the task index wraps instead of panicking.
func TestReplayTaskDispatch(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 200, Seed: 2})
	m := core.Open(g, core.Options{})
	defer m.Close()
	r := NewReplay(m)
	for _, task := range []int{0, 1, 2, 5, -1} {
		if n := r.Session(task, 42); n < 0 {
			t.Fatalf("task %d returned negative count %d", task, n)
		}
	}
}

package simuser

import (
	"fmt"
	"math/rand"

	"magnet/internal/core"
)

// Replay drives the study's simulated users against an externally provided
// core.Magnet instance — the serving-side counterpart of Study, which owns
// its corpus and systems. cmd/magnet-load uses it to replay hundreds of
// concurrent navigation sessions against one shared instance (in-memory,
// segment-backed, or shard-layout).
//
// A Replay is safe for concurrent use: the study environment is read-only
// after preparation, each Session call creates its own core.Session and
// rand source, and the shared Magnet's engine/pool are concurrency-safe.
// Per-session history state lives inside the fresh core.Session, so
// concurrent sessions never share mutable navigation state.
type Replay struct {
	m   *core.Magnet
	env *studyEnv
}

// NewReplay prepares a replay environment over m's graph. The graph must
// be a recipes corpus (datasets/recipes vocabulary) — the study tasks
// navigate by its properties.
func NewReplay(m *core.Magnet) *Replay {
	env := &studyEnv{graph: m.Graph()}
	env.prepare()
	return &Replay{m: m, env: env}
}

// NumTasks is the number of distinct study tasks Session dispatches on.
const NumTasks = 2

// Session replays one simulated-user session: a fresh core.Session against
// the shared instance, running study task (task mod NumTasks) with the
// complete advisor set, seeded deterministically. Returns the recipes the
// user found. Safe to call from many goroutines at once.
func (r *Replay) Session(task int, seed int64) int {
	u := newUser(rand.New(rand.NewSource(seed)))
	s := r.m.NewSession()
	var n int
	switch ((task % NumTasks) + NumTasks) % NumTasks {
	case 0:
		n = r.env.task1(u, s, true)
	default:
		n = r.env.task2(u, s, true)
	}
	// The user looks at the final result: render the navigation pane and
	// the facet overview, so a load run exercises (and times) all three
	// session step paths, not just query evaluation.
	_ = s.Pane()
	_ = s.Overview(10)
	return n
}

// Target returns task 1's "aunt's recipe" (diagnostics; empty when the
// graph carries no walnut recipe, in which case the corpus is not a usable
// study fixture).
func (r *Replay) Target() (string, error) {
	if r.env.target == "" {
		return "", fmt.Errorf("simuser: corpus has no walnut recipe; not a recipes study fixture")
	}
	return string(r.env.target), nil
}

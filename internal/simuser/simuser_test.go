package simuser

import (
	"testing"

	"magnet/internal/datasets/recipes"
	"magnet/internal/rdf"
)

// The study's headline shape (§6.3.1): the complete system beats the
// baseline on both tasks — "users found on average 2.70 recipes with the
// complete system and 1.71 recipes with the baseline system; and for the
// second task ... 5.80 ... and 4.87".
func TestStudyShapeMatchesPaper(t *testing.T) {
	r := Run(Config{Users: 18, Recipes: 2000})

	if r.Task1Complete.Mean <= r.Task1Baseline.Mean {
		t.Errorf("task 1: complete %.2f should beat baseline %.2f",
			r.Task1Complete.Mean, r.Task1Baseline.Mean)
	}
	if r.Task2Complete.Mean <= r.Task2Baseline.Mean {
		t.Errorf("task 2: complete %.2f should beat baseline %.2f",
			r.Task2Complete.Mean, r.Task2Baseline.Mean)
	}
	// Factors in the paper's ballpark: ~1.6× on task 1, ~1.2× on task 2.
	f1 := r.Task1Complete.Mean / r.Task1Baseline.Mean
	if f1 < 1.15 || f1 > 2.2 {
		t.Errorf("task 1 factor = %.2f, expected roughly the paper's 1.58", f1)
	}
	f2 := r.Task2Complete.Mean / r.Task2Baseline.Mean
	if f2 < 1.02 || f2 > 1.6 {
		t.Errorf("task 2 factor = %.2f, expected roughly the paper's 1.19", f2)
	}
	// Absolute means within a loose band of the paper's values.
	within := func(got, want, tol float64) bool { return got > want-tol && got < want+tol }
	if !within(r.Task1Complete.Mean, 2.70, 1.0) || !within(r.Task1Baseline.Mean, 1.71, 1.0) {
		t.Errorf("task 1 means %.2f/%.2f drifted from paper 2.70/1.71",
			r.Task1Complete.Mean, r.Task1Baseline.Mean)
	}
	if !within(r.Task2Complete.Mean, 5.80, 1.5) || !within(r.Task2Baseline.Mean, 4.87, 1.5) {
		t.Errorf("task 2 means %.2f/%.2f drifted from paper 5.80/4.87",
			r.Task2Complete.Mean, r.Task2Baseline.Mean)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(Config{Users: 6, Recipes: 800, Seed: 11})
	b := Run(Config{Users: 6, Recipes: 800, Seed: 11})
	for i := range a.Rows() {
		ra, rb := a.Rows()[i], b.Rows()[i]
		if ra.Mean != rb.Mean {
			t.Errorf("%s/%s nondeterministic: %.2f vs %.2f", ra.Task, ra.System, ra.Mean, rb.Mean)
		}
	}
}

func TestRowsOrder(t *testing.T) {
	r := Run(Config{Users: 2, Recipes: 500})
	rows := r.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantOrder := []struct {
		task   string
		system SystemKind
	}{
		{"task1", Complete}, {"task1", Baseline}, {"task2", Complete}, {"task2", Baseline},
	}
	for i, w := range wantOrder {
		if rows[i].Task != w.task || rows[i].System != w.system {
			t.Errorf("row %d = %s/%s", i, rows[i].Task, rows[i].System)
		}
		if len(rows[i].PerUser) != 2 {
			t.Errorf("row %d has %d users", i, len(rows[i].PerUser))
		}
	}
}

func TestStudyEnvFixtures(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 1000, Seed: 1})
	e := &studyEnv{graph: g}
	e.prepare()
	if e.target == "" {
		t.Fatal("no target recipe")
	}
	if !g.Has(e.target, recipes.PropIngredient, recipes.Ingredient("Walnuts")) {
		t.Error("target must contain walnuts")
	}
	if e.nutFree(e.target) {
		t.Error("target cannot be nut-free")
	}
	if e.relatedToTarget(e.target) {
		t.Error("target is not related to itself")
	}
	// A recipe sharing two target ingredients is related.
	probe := rdf.IRI(recipes.NS + "recipe/probe")
	g.Add(probe, rdf.Type, recipes.ClassRecipe)
	n := 0
	for ing := range e.targetIngred {
		if ing == recipes.Ingredient("Walnuts") {
			continue
		}
		g.Add(probe, recipes.PropIngredient, ing)
		if n++; n == 2 {
			break
		}
	}
	if !e.relatedToTarget(probe) {
		t.Error("probe sharing two ingredients should be related")
	}
	if !e.nutFree(probe) {
		t.Error("probe should be nut-free")
	}
}

// Package simuser reproduces the paper's user study (§6.3) with simulated
// users, since the original 18 graduate students are not reproducible. The
// study compared two directed tasks on the complete Magnet system versus a
// Flamenco-like baseline, reporting mean recipes found:
//
//	task 1 (walnut recipe → related nut-free recipes): 2.70 vs 1.71
//	task 2 (Mexican themed menu):                      5.80 vs 4.87
//
// The simulated users implement the behaviours the paper observed:
//
//   - capture errors: "users performed an incorrect but more easily
//     available sequence", e.g. stacking the walnut ingredient as a positive
//     constraint and then excluding nuts, "producing the empty result set";
//   - recovery through the contrary advisor on the complete system: "even
//     when not sure how to proceed ... the contrary advisor would suggest
//     negation to get them started";
//   - similarity-first strategies on the complete system: "another user
//     searched for her favorite dish first, asked the system to give
//     similar recipes and then refined by Mexican".
//
// Every user action drives the real system through core.Session — panes are
// actually built, suggestions actually applied — so the measured difference
// comes from the advisor sets, not from hard-coded outcomes.
package simuser

import (
	"math/rand"

	"magnet/internal/analysts"
	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
)

// SystemKind identifies which advisor configuration a run used.
type SystemKind string

const (
	// Complete is the full Magnet system.
	Complete SystemKind = "complete"
	// Baseline is the Flamenco-like control.
	Baseline SystemKind = "baseline"
)

// Config controls a study run.
type Config struct {
	// Users is the number of simulated participants; 0 means the paper's 18.
	Users int
	// Seed defaults to 1.
	Seed int64
	// Recipes is the corpus size; 0 means the paper's 6,444.
	Recipes int
}

// TaskResult is one (task, system) cell of the study table.
type TaskResult struct {
	Task    string
	System  SystemKind
	PerUser []int
	Mean    float64
}

// StudyResult is the full 2×2 study outcome.
type StudyResult struct {
	Task1Complete TaskResult
	Task1Baseline TaskResult
	Task2Complete TaskResult
	Task2Baseline TaskResult
}

// Rows returns the four cells in presentation order.
func (r StudyResult) Rows() []TaskResult {
	return []TaskResult{r.Task1Complete, r.Task1Baseline, r.Task2Complete, r.Task2Baseline}
}

// user is one simulated participant's skill profile.
type user struct {
	rng *rand.Rand
	// negationSkill is the probability of getting manual negation right
	// (the study: "most users on both systems had a hard time getting
	// negation right").
	negationSkill float64
	// patience is how many candidate recipes the user examines per
	// collection before moving on.
	patience int
	// similarityFirst marks users who start from a favourite item and ask
	// for similar ones (only possible on the complete system).
	similarityFirst bool
}

func newUser(rng *rand.Rand) *user {
	return &user{
		rng:             rng,
		negationSkill:   0.3 + 0.3*rng.Float64(),
		patience:        3 + rng.Intn(4),
		similarityFirst: rng.Float64() < 0.5,
	}
}

// Study is a prepared study environment: the corpus and both systems,
// ready to run individual simulated participants (the benchmarks time
// single task executions through this).
type Study struct {
	env      *studyEnv
	complete *core.Magnet
	baseline *core.Magnet
	seed     int64
}

// Prepare builds the corpus and both systems.
func Prepare(cfg Config) *Study {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	n := cfg.Recipes
	if n <= 0 {
		n = 6444
	}
	g := recipes.Build(recipes.Config{Recipes: n, Seed: seed})
	env := &studyEnv{graph: g}
	env.prepare()
	return &Study{
		env:      env,
		complete: core.Open(g, core.Options{}),
		baseline: core.Open(g, core.Options{Analysts: analysts.BaselineSet}),
		seed:     seed,
	}
}

func (st *Study) system(k SystemKind) (*core.Magnet, bool) {
	if k == Complete {
		return st.complete, true
	}
	return st.baseline, false
}

// RunTask1 executes the walnut task for one simulated user on the given
// system, returning the recipes found.
func (st *Study) RunTask1(k SystemKind, userSeed int64) int {
	m, complete := st.system(k)
	u := newUser(rand.New(rand.NewSource(userSeed)))
	return st.env.task1(u, m.NewSession(), complete)
}

// RunTask2 executes the Mexican-menu task for one simulated user.
func (st *Study) RunTask2(k SystemKind, userSeed int64) int {
	m, complete := st.system(k)
	u := newUser(rand.New(rand.NewSource(userSeed)))
	return st.env.task2(u, m.NewSession(), complete)
}

// Run executes the study: one corpus, two systems, every user doing both
// tasks on both (the original was between-subjects; within-subjects with
// per-user seeds keeps the comparison paired and the variance low).
func Run(cfg Config) StudyResult {
	users := cfg.Users
	if users <= 0 {
		users = 18
	}
	st := Prepare(cfg)

	res := StudyResult{
		Task1Complete: TaskResult{Task: "task1", System: Complete},
		Task1Baseline: TaskResult{Task: "task1", System: Baseline},
		Task2Complete: TaskResult{Task: "task2", System: Complete},
		Task2Baseline: TaskResult{Task: "task2", System: Baseline},
	}
	for i := 0; i < users; i++ {
		// Same skills per user across systems: paired comparison.
		s1 := st.seed + int64(i)*7919
		res.Task1Complete.PerUser = append(res.Task1Complete.PerUser, st.RunTask1(Complete, s1))
		res.Task1Baseline.PerUser = append(res.Task1Baseline.PerUser, st.RunTask1(Baseline, s1))

		s2 := st.seed + 1_000_003 + int64(i)*104729
		res.Task2Complete.PerUser = append(res.Task2Complete.PerUser, st.RunTask2(Complete, s2))
		res.Task2Baseline.PerUser = append(res.Task2Baseline.PerUser, st.RunTask2(Baseline, s2))
	}
	finishMean(&res.Task1Complete)
	finishMean(&res.Task1Baseline)
	finishMean(&res.Task2Complete)
	finishMean(&res.Task2Baseline)
	return res
}

func finishMean(tr *TaskResult) {
	if len(tr.PerUser) == 0 {
		return
	}
	sum := 0
	for _, v := range tr.PerUser {
		sum += v
	}
	tr.Mean = float64(sum) / float64(len(tr.PerUser))
}

// Package baseline assembles the user study's control system (paper §6.3):
// "a baseline system consisting of navigation advisors suggesting
// refinements roughly the same as those in the Flamenco system. The
// baseline system also included terms from the text of the documents and
// allowed users to negate the terms by right clicking on them."
//
// Concretely, the baseline keeps faceted refinement (property values and
// text terms), range widgets, keyword search and history — and drops the
// advisors unique to Magnet: similarity by content, similarity by visit,
// and contrary constraints. Manual negation stays available (it is a query
// operation, not an advisor).
package baseline

import (
	"magnet/internal/analysts"
	"magnet/internal/core"
	"magnet/internal/rdf"
)

// Open builds a Magnet instance configured as the study's baseline system.
func Open(g *rdf.Graph, opts core.Options) *core.Magnet {
	opts.Analysts = analysts.BaselineSet
	return core.Open(g, opts)
}

// OpenComplete builds the complete system with identical options, for
// side-by-side comparisons.
func OpenComplete(g *rdf.Graph, opts core.Options) *core.Magnet {
	opts.Analysts = analysts.DefaultSet
	return core.Open(g, opts)
}

package baseline

import (
	"testing"

	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
)

func analystNames(m *core.Magnet) map[string]bool {
	s := m.NewSession()
	s.OpenItem(m.Items()[0])
	names := map[string]bool{}
	for _, sg := range s.Board().Suggestions() {
		names[sg.Analyst] = true
	}
	return names
}

func TestBaselineOmitsMagnetAdvisors(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 150, Seed: 1})
	base := analystNames(Open(g, core.Options{}))
	full := analystNames(OpenComplete(g, core.Options{}))

	for _, magnetOnly := range []string{"similar-by-content-item", "shared-property"} {
		if base[magnetOnly] {
			t.Errorf("baseline posted %s", magnetOnly)
		}
		if !full[magnetOnly] {
			t.Errorf("complete system missing %s", magnetOnly)
		}
	}
}

package core_test

import (
	"testing"
	"time"

	"magnet/internal/obs"
)

// TestSlowStepRecordedWithoutMiddleware pins the always-on capture path: a
// navigation step run outside any web request (no ambient trace on the
// session) owns its own trace root and hands it to the flight recorder, so
// a slow step is tail-sampled even from magnet-eval, the CLI, or tests —
// with the step-latency histogram carrying the same trace ID as exemplar.
func TestSlowStepRecordedWithoutMiddleware(t *testing.T) {
	old := obs.Records.SlowThreshold()
	obs.Records.SetSlowThreshold(time.Nanosecond) // every step is "slow"
	t.Cleanup(func() { obs.Records.SetSlowThreshold(old) })

	m := openCorpus(t, 100)
	defer m.Close()
	s := m.NewSession() // runs the initial session.query step

	slow := obs.Records.Traces(obs.TraceFilter{SlowOnly: true, Name: "session.query"})
	if len(slow) == 0 {
		t.Fatal("slow session.query step not tail-sampled by the flight recorder")
	}
	tr := slow[0] // newest first: the step this test just ran
	if !tr.Slow || tr.ID == "" || tr.Spans[0].Depth != 0 {
		t.Fatalf("retained step trace = %+v", tr)
	}

	// The step-latency histogram's exemplar joins on the same trace ID.
	found := false
	for _, e := range obs.Default.Histogram("session.query.ns").Snapshot().Exemplars {
		if e.TraceID == tr.ID {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("trace %s has no matching exemplar on session.query.ns", tr.ID)
	}

	// An overview step captures its pipeline children under its own root.
	s.Overview(4)
	ov := obs.Records.Traces(obs.TraceFilter{SlowOnly: true, Name: "session.overview"})
	if len(ov) == 0 {
		t.Fatal("session.overview step not recorded")
	}
	if got := obs.Records.Get(ov[0].ID); got == nil || got.Name != "session.overview" {
		t.Errorf("Get(%s) = %v, want the overview trace", ov[0].ID, got)
	}
}

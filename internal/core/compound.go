package core

import (
	"errors"

	"magnet/internal/blackboard"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

// Compound refinements implement §3.3's power-user support: "The context
// menu on the query allows users to select a compound navigation option
// like conjunction or disjunction ... Users can drag suggestions into this
// compound refinement option, and use them to build a complex query" — the
// dairy-or-vegetables example. A session holds at most one compound under
// construction; predicates (typically taken from pane suggestions) are
// added to it and the whole group is applied as a single refinement.

// CompoundKind selects the combinator of a compound refinement.
type CompoundKind int

const (
	// CompoundOr combines the collected predicates disjunctively.
	CompoundOr CompoundKind = iota
	// CompoundAnd combines them conjunctively.
	CompoundAnd
)

// ErrNoCompound reports compound operations without an active builder.
var ErrNoCompound = errors.New("core: no compound refinement in progress")

// ErrEmptyCompound reports applying a compound with no collected predicates.
var ErrEmptyCompound = errors.New("core: compound refinement is empty")

// compoundState holds the in-progress builder.
type compoundState struct {
	kind  CompoundKind
	preds []query.Predicate
}

// BeginCompound starts (or restarts) a compound refinement of the given
// kind.
func (s *Session) BeginCompound(kind CompoundKind) {
	s.compound = &compoundState{kind: kind}
}

// AddToCompound drags a predicate into the compound under construction.
// Duplicate predicates (by key) collapse.
func (s *Session) AddToCompound(p query.Predicate) error {
	if s.compound == nil {
		return ErrNoCompound
	}
	for _, q := range s.compound.preds {
		if q.Key() == p.Key() {
			return nil
		}
	}
	s.compound.preds = append(s.compound.preds, p)
	return nil
}

// Compound returns the predicates collected so far and whether a compound
// is active.
func (s *Session) Compound() (CompoundKind, []query.Predicate, bool) {
	if s.compound == nil {
		return 0, nil, false
	}
	out := make([]query.Predicate, len(s.compound.preds))
	copy(out, s.compound.preds)
	return s.compound.kind, out, true
}

// CancelCompound abandons the builder.
func (s *Session) CancelCompound() { s.compound = nil }

// ApplyCompound executes the compound as one refinement of the current
// collection and clears the builder.
func (s *Session) ApplyCompound(mode blackboard.RefineMode) error {
	if s.compound == nil {
		return ErrNoCompound
	}
	if len(s.compound.preds) == 0 {
		return ErrEmptyCompound
	}
	var p query.Predicate
	preds := s.compound.preds
	if len(preds) == 1 {
		p = preds[0]
	} else if s.compound.kind == CompoundOr {
		p = query.Or{Ps: preds}
	} else {
		p = query.And{Ps: preds}
	}
	s.compound = nil
	s.Refine(p, mode)
	return nil
}

// ApplyValueSet implements the last move of §3.3: the user navigates to a
// collection of *values* (e.g. ingredients), refines it ("ingredients
// found only in North America"), and applies it back to a target query —
// "to either get recipes having an (using or) ingredient found in North
// America, or to get recipes having all (using and) their ingredients found
// in North America". target is the query the value set constrains
// (typically the one the user came from); prop is the connecting property.
func (s *Session) ApplyValueSet(target query.Query, prop rdf.IRI, values []rdf.IRI, all bool, name string) {
	var p query.Predicate
	if all {
		p = query.AllValuesIn{Prop: prop, Values: values, Name: name}
	} else {
		p = query.AnyValueIn{Prop: prop, Values: values, Name: name}
	}
	s.goToQuery(target.With(p))
}

package core

import (
	"sort"

	"magnet/internal/blackboard"
	"magnet/internal/index"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

// Soft empty-result handling implements the paper's §6.3.1 observation as a
// feature: "since users find it difficult to work with zero results, it may
// be worth modifying the queries to perform more fuzzily in the case when
// zero results would have been returned otherwise."
//
// When enabled (Options.SoftEmptyResults) and a refinement empties the
// collection, the session falls back to a fuzzy ranking instead: the items
// matching the failed predicate *anywhere in the corpus* define a concept
// centroid (what "anchovy recipes" look like), and the pre-refinement
// collection is ranked against it — descending for a failed Filter (closest
// to the concept), ascending for a failed Exclude (least like the concept).
// The result is a fixed "closest matches" collection the user can keep
// browsing, never a dead end.

// softLimit bounds the fuzzy fallback collection size.
const softLimit = 10

// softRefine attempts the fuzzy fallback. prev is the collection before the
// refinement. It reports whether a fallback view was produced.
func (s *Session) softRefine(p query.Predicate, mode blackboard.RefineMode, prev []rdf.IRI) bool {
	if len(prev) == 0 {
		return false
	}
	concept := p.Eval(s.m.eng).Items()
	if len(concept) == 0 {
		// The predicate matches nothing anywhere; there is no concept to be
		// fuzzy about.
		return false
	}
	centroid := s.m.model.Centroid(concept)
	if len(centroid) == 0 {
		return false
	}

	type scored struct {
		item  rdf.IRI
		score float64
	}
	ranked := make([]scored, 0, len(prev))
	for _, it := range prev {
		ranked = append(ranked, scored{it, index.Dot(centroid, s.m.model.Vector(it))})
	}
	asc := mode == blackboard.Exclude
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := ranked[i].score, ranked[j].score
		if si != sj {
			if asc {
				return si < sj
			}
			return si > sj
		}
		return ranked[i].item < ranked[j].item
	})

	n := softLimit
	if n > len(ranked) {
		n = len(ranked)
	}
	items := make([]rdf.IRI, n)
	for i := 0; i < n; i++ {
		items[i] = ranked[i].item
	}
	name := "closest matches · " + describeMode(mode) + " " + p.Describe(s.m.Labeler())
	s.goTo(blackboard.FixedView(name, items))
	return true
}

func describeMode(mode blackboard.RefineMode) string {
	switch mode {
	case blackboard.Exclude:
		return "without"
	case blackboard.Expand:
		return "or"
	default:
		return "with"
	}
}

package core_test

import (
	"strings"
	"testing"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

func softCorpus(t *testing.T) (*core.Magnet, *core.Session) {
	t.Helper()
	g := recipes.Build(recipes.Config{Recipes: 600, Seed: 1})
	m := core.Open(g, core.Options{SoftEmptyResults: true})
	return m, m.NewSession()
}

// The study's capture error: walnut constraint plus nut exclusion is
// contradictory and empties the collection. With SoftEmptyResults the user
// lands on a non-empty "closest matches" collection instead of a dead end.
func TestSoftEmptyResultsExclusion(t *testing.T) {
	m, s := softCorpus(t)
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Walnuts")},
	)})
	prev := s.Items()
	if len(prev) == 0 {
		t.Fatal("precondition: walnut recipes exist")
	}
	s.Refine(query.PathProperty{
		Path:  []rdf.IRI{recipes.PropIngredient, recipes.PropGroup},
		Value: recipes.Group("Nuts"),
	}, blackboard.Exclude)

	if len(s.Items()) == 0 {
		t.Fatal("soft refinement should avoid the empty result set")
	}
	if !s.Current().Fixed || !strings.Contains(s.Current().Name, "closest matches") {
		t.Errorf("expected a closest-matches fixed view, got %q", s.Current().Name)
	}
	// Fallback items come from the pre-refinement collection.
	prevSet := map[rdf.IRI]bool{}
	for _, it := range prev {
		prevSet[it] = true
	}
	for _, it := range s.Items() {
		if !prevSet[it] {
			t.Errorf("%s not in the pre-refinement collection", it)
		}
	}
	// Ascending-by-concept ordering: the first fallback item should carry
	// no more nut ingredients than the last.
	nutCount := func(it rdf.IRI) int {
		n := 0
		for _, ing := range m.Graph().Objects(it, recipes.PropIngredient) {
			if m.Graph().Has(ing.(rdf.IRI), recipes.PropGroup, recipes.Group("Nuts")) {
				n++
			}
		}
		return n
	}
	items := s.Items()
	if nutCount(items[0]) > nutCount(items[len(items)-1]) {
		t.Errorf("soft exclude should rank least-nutty first: %d vs %d",
			nutCount(items[0]), nutCount(items[len(items)-1]))
	}
}

func TestSoftEmptyResultsFilter(t *testing.T) {
	_, s := softCorpus(t)
	// Greek recipes that are also Mexican: impossible, so empty.
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
	)})
	s.Refine(query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Mexican")}, blackboard.Filter)
	if len(s.Items()) == 0 {
		t.Fatal("soft filter should produce closest matches")
	}
	if !s.Current().Fixed {
		t.Error("expected fixed closest-matches view")
	}
}

func TestSoftDisabledByDefault(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 300, Seed: 1})
	m := core.Open(g, core.Options{})
	s := m.NewSession()
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(
		query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Walnuts")},
	)})
	s.Refine(query.PathProperty{
		Path:  []rdf.IRI{recipes.PropIngredient, recipes.PropGroup},
		Value: recipes.Group("Nuts"),
	}, blackboard.Exclude)
	if len(s.Items()) != 0 {
		t.Error("without the option, the contradictory refinement should be empty")
	}
}

func TestSoftGivesUpOnUnknownConcept(t *testing.T) {
	_, s := softCorpus(t)
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
	s.Refine(query.Property{
		Prop:  recipes.PropIngredient,
		Value: rdf.IRI(recipes.NS + "ingredient/unobtainium"),
	}, blackboard.Filter)
	if len(s.Items()) != 0 {
		t.Error("a predicate matching nothing anywhere has no concept; result must stay empty")
	}
}

func TestRankedItemsTextRelevance(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 800, Seed: 1})
	m := core.Open(g, core.Options{})
	s := m.NewSession()
	s.Search("walnut")
	ranked := s.RankedItems(core.RankOptions{})
	if len(ranked) == 0 || len(ranked) != len(s.Items()) {
		t.Fatalf("ranking must reorder, not filter: %d vs %d", len(ranked), len(s.Items()))
	}
	// Higher term frequency ranks first: the top item should mention
	// walnut at least as often as the bottom one.
	countOf := func(it rdf.IRI) int {
		title, _ := m.Graph().Object(it, recipes.PropTitle)
		content, _ := m.Graph().Object(it, recipes.PropContent)
		text := strings.ToLower(title.(rdf.Literal).Lexical + " " + content.(rdf.Literal).Lexical)
		return strings.Count(text, "walnut")
	}
	if countOf(ranked[0]) < countOf(ranked[len(ranked)-1]) {
		t.Errorf("top item mentions walnut %d times, bottom %d",
			countOf(ranked[0]), countOf(ranked[len(ranked)-1]))
	}
	if countOf(ranked[0]) < 1 {
		t.Error("top-ranked item should mention walnut")
	}
}

func TestRankedItemsLengthBias(t *testing.T) {
	g := rdf.NewGraph()
	cls := rdf.IRI("http://e/Doc")
	long, short := rdf.IRI("http://e/long"), rdf.IRI("http://e/short")
	g.Add(long, rdf.Type, cls)
	g.Add(long, rdf.DCTitle, rdf.NewString("walnut walnut story with many many extra words here to make it long"))
	g.Add(short, rdf.Type, cls)
	g.Add(short, rdf.DCTitle, rdf.NewString("walnut walnut"))
	m := core.Open(g, core.Options{})
	s := m.NewSession()
	s.Search("walnut")

	biased := s.RankedItems(core.RankOptions{LengthBias: 5})
	if biased[0] != long {
		t.Errorf("length bias should favour the long document, got %v", biased)
	}
}

func TestRankedItemsStableWithoutText(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 100, Seed: 1})
	m := core.Open(g, core.Options{})
	s := m.NewSession()
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
	ranked := s.RankedItems(core.RankOptions{})
	items := s.Items()
	for i := range items {
		if ranked[i] != items[i] {
			t.Fatal("no text constraints: order should be stable")
		}
	}
}

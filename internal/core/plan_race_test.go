package core

import (
	"fmt"
	"sync"
	"testing"

	"magnet/internal/blackboard"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
)

// TestPlanCacheSharedAcrossSessions is the planner's concurrency check:
// many sessions replaying the *same* navigation path against one shared
// Magnet all funnel through the same per-shard delta caches — every
// session past the first should be served hits and parent deltas, and
// under -race the LRU promotion, epoch refresh and shared frozen result
// sets must be clean. An identical walk against a planner-disabled
// instance is the per-step oracle.
func TestPlanCacheSharedAcrossSessions(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 300, Seed: 5})
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			planned := Open(g, Options{Parallelism: 4, Shards: shards})
			defer planned.Close()
			naive := Open(g, Options{Parallelism: 4, Shards: shards, PlanCache: -1})
			defer naive.Close()

			// walk replays one study path and fingerprints every step's
			// item count, so a stale cached set at any step diverges.
			walk := func(m *Magnet, variant int) string {
				s := m.NewSession()
				out := ""
				note := func() { out += fmt.Sprintf("%d;", len(s.Items())) }
				s.Search("chicken")
				note()
				s.Refine(query.Property{
					Prop:  recipes.PropCuisine,
					Value: recipes.Cuisine([]string{"Mexican", "Greek"}[variant%2]),
				}, blackboard.Filter)
				note()
				s.Refine(query.Property{
					Prop:  recipes.PropIngredient,
					Value: recipes.Ingredient("Walnuts"),
				}, blackboard.Exclude)
				note()
				s.Back()
				note()
				s.RemoveConstraint(0)
				note()
				return out
			}

			wants := []string{walk(naive, 0), walk(naive, 1)}

			const sessions = 24
			got := make([]string, sessions)
			var wg sync.WaitGroup
			for i := 0; i < sessions; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = walk(planned, i)
				}(i)
			}
			wg.Wait()

			for i, g := range got {
				if g != wants[i%2] {
					t.Errorf("session %d: planned walk %s, naive %s", i, g, wants[i%2])
				}
			}
		})
	}
}

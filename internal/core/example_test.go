package core_test

import (
	"fmt"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

// Example shows the minimal Magnet lifecycle: build a graph, open the
// system, search, refine, and read the navigation pane's constraints.
func Example() {
	g := rdf.NewGraph()
	ns := "http://example.org/"
	book := rdf.IRI(ns + "Book")
	author := rdf.IRI(ns + "author")
	james := rdf.IRI(ns + "henry-james")
	g.Add(james, rdf.Label, rdf.NewString("Henry James"))

	add := func(id, title string) rdf.IRI {
		b := rdf.IRI(ns + id)
		g.Add(b, rdf.Type, book)
		g.Add(b, rdf.DCTitle, rdf.NewString(title))
		g.Add(b, author, james)
		return b
	}
	add("screw", "The Turn of the Screw")
	add("portrait", "The Portrait of a Lady")

	m := core.Open(g, core.Options{})
	s := m.NewSession()
	s.Search("portrait")
	fmt.Println("found:", len(s.Items()))

	s.Refine(query.Property{Prop: author, Value: james}, blackboard.Filter)
	for _, c := range s.Pane().Constraints {
		fmt.Println("constraint:", c)
	}
	// Output:
	// found: 1
	// constraint: contains "portrait"
	// constraint: author = Henry James
}

// ExampleSession_Back demonstrates refinement-history undo.
func ExampleSession_Back() {
	g := rdf.NewGraph()
	it := rdf.IRI("http://e/x")
	g.Add(it, rdf.Type, rdf.IRI("http://e/T"))
	g.Add(it, rdf.DCTitle, rdf.NewString("only item"))

	m := core.Open(g, core.Options{})
	s := m.NewSession()
	s.Search("nothing matches this")
	fmt.Println("after search:", len(s.Items()))
	s.Back()
	fmt.Println("after back:", len(s.Items()))
	// Output:
	// after search: 0
	// after back: 1
}

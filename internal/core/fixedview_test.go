package core_test

import (
	"testing"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

// Refining a fixed (materialized) collection must filter its members, not
// fall back to the whole corpus — the similar-items-then-exclude-nuts flow.
func TestRefineFixedViewFilterExcludeExpand(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 300, Seed: 1})
	m := core.Open(g, core.Options{})
	s := m.NewSession()

	all := g.SubjectsOfType(recipes.ClassRecipe)
	fixed := all[:20]
	s.Apply(blackboard.GoToCollection{Title: "hand-picked", Items: fixed})
	if !s.Current().Fixed || len(s.Items()) != 20 {
		t.Fatal("fixed view setup failed")
	}

	greek := query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")}

	// Filter: only the Greek members remain.
	s.Refine(greek, blackboard.Filter)
	filtered := s.Items()
	for _, it := range filtered {
		if !g.Has(it, recipes.PropCuisine, recipes.Cuisine("Greek")) {
			t.Errorf("%s not Greek", it)
		}
	}
	if len(filtered) >= 20 {
		t.Error("filter did not narrow the fixed view")
	}
	if !s.Current().Fixed {
		t.Error("refined fixed view should stay fixed")
	}

	// Exclude from a fresh fixed view.
	s.Apply(blackboard.GoToCollection{Title: "hand-picked", Items: fixed})
	s.Refine(greek, blackboard.Exclude)
	for _, it := range s.Items() {
		if g.Has(it, recipes.PropCuisine, recipes.Cuisine("Greek")) {
			t.Errorf("%s is Greek after exclude", it)
		}
	}

	// Expand: union with all matching items from the corpus.
	s.Apply(blackboard.GoToCollection{Title: "hand-picked", Items: fixed[:3]})
	s.Refine(greek, blackboard.Expand)
	expanded := s.Items()
	if len(expanded) <= 3 {
		t.Error("expand did not broaden the fixed view")
	}
	// Original members stay, even non-Greek ones.
	member := map[rdf.IRI]bool{}
	for _, it := range expanded {
		member[it] = true
	}
	for _, it := range fixed[:3] {
		if !member[it] {
			t.Errorf("original member %s dropped by expand", it)
		}
	}
}

func TestAccessors(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 60, Seed: 1})
	m := core.Open(g, core.Options{})
	if m.Schema() == nil || m.Engine() == nil || m.Graph() == nil ||
		m.Model() == nil || m.TextIndex() == nil {
		t.Fatal("nil accessor")
	}
	item := m.Items()[0]
	if m.Label(item) == "" {
		t.Error("empty label")
	}
	s := m.NewSession()
	if s.History() == nil {
		t.Error("nil history")
	}
	s.Search("soup")
	s.GoHome()
	if !s.Query().IsEmpty() {
		t.Error("GoHome should clear the query")
	}
	// ApplySuggestion wraps Apply.
	sg := blackboard.Suggestion{Action: blackboard.GoToItem{Item: item}}
	if err := s.ApplySuggestion(sg); err != nil || s.Current().Item != item {
		t.Errorf("ApplySuggestion: %v", err)
	}
}

package core

import (
	"math"
	"sort"

	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/vsm"
)

// Result ordering implements the extension the paper's §6.2 identifies as
// missing: "the only weakness with Magnet compared to other systems was the
// absence of document reordering, for example ... biasing results to favor
// large documents can improve such queries since the results are otherwise
// swamped by significant numbers of small documents."
//
// RankedItems orders the current collection by relevance to the query's
// text constraints (keyword and term predicates scored through the external
// index), optionally biased toward larger documents (Kamps et al.'s
// observation). Items without text scores keep a stable tail order, so
// ranking is a reordering, never a filter.

// RankOptions tunes RankedItems.
type RankOptions struct {
	// LengthBias ∈ [0, 1] mixes in a log-scaled document-length prior
	// (0 = pure relevance, the default).
	LengthBias float64
}

// RankedItems returns the current collection reordered by relevance to the
// query's text constraints. For queries without text constraints the items
// are returned in their stable order (with the length prior still applied
// when requested).
func (s *Session) RankedItems(opts RankOptions) []rdf.IRI {
	items := s.Items()
	if len(items) < 2 {
		return items
	}
	scores := make(map[rdf.IRI]float64, len(items))
	s.textScores(s.current.Query.Terms, scores)

	if opts.LengthBias > 0 {
		maxLen := 0.0
		lengths := make(map[rdf.IRI]float64, len(items))
		for _, it := range items {
			l := float64(s.docLength(it))
			lengths[it] = l
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen > 0 {
			for _, it := range items {
				scores[it] += opts.LengthBias * math.Log1p(lengths[it]) / math.Log1p(maxLen)
			}
		}
	}

	ranked := make([]rdf.IRI, len(items))
	copy(ranked, items)
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i]], scores[ranked[j]]
		if !vsm.ApproxEqual(si, sj) {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// textScores accumulates per-item text relevance from every text-bearing
// predicate in the term list, recursing through boolean combinators.
func (s *Session) textScores(terms []query.Predicate, scores map[rdf.IRI]float64) {
	if s.m.text == nil {
		return
	}
	for _, t := range terms {
		switch p := t.(type) {
		case query.Keyword:
			for _, hit := range s.m.text.Search(p.Text, p.Field, 0) {
				scores[rdf.IRI(hit.ID)] += hit.Score
			}
		case query.TermMatch:
			for _, id := range s.m.text.MatchingTerm(p.Term, p.Field) {
				scores[rdf.IRI(id)]++
			}
		case query.And:
			s.textScores(p.Ps, scores)
		case query.Or:
			s.textScores(p.Ps, scores)
		case query.Not:
			// Negated text contributes nothing positive.
		}
	}
}

// docLength approximates document size as total indexed tokens across
// fields.
func (s *Session) docLength(it rdf.IRI) int {
	if s.m.text == nil {
		return 0
	}
	total := 0
	for _, f := range s.m.text.Fields(string(it)) {
		for _, c := range s.m.text.FieldTermCounts(string(it), f) {
			total += c
		}
	}
	return total
}

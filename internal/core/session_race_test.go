package core

import (
	"fmt"
	"sync"
	"testing"

	"magnet/internal/blackboard"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
)

// TestConcurrentSessions stresses the serving contract behind magnet-load:
// one shared Magnet (with its one worker pool and, here, sharded
// scatter-gather evaluation), many concurrent Sessions each doing a full
// navigation loop — search, refine, pane, overview, back. Sessions are
// single-user, but distinct sessions must be freely concurrent: all shared
// engine state is read-only after Open. Run under -race this is the
// harness-level data-race check; the correctness side also asserts every
// session sees identical results regardless of interleaving.
func TestConcurrentSessions(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 300, Seed: 1})
	m := Open(g, Options{Parallelism: 4, Shards: 4})
	defer m.Close()

	const sessions = 32
	walk := func() (string, error) {
		s := m.NewSession()
		s.Search("chicken")
		s.Refine(query.Property{
			Prop:  recipes.PropCuisine,
			Value: recipes.Cuisine("Mexican"),
		}, blackboard.Filter)
		pane := s.Pane()
		overview := s.Overview(6)
		n1 := len(s.Items())
		if !s.Back() {
			return "", fmt.Errorf("Back failed")
		}
		s.Refine(query.Property{
			Prop:  recipes.PropIngredient,
			Value: recipes.Ingredient("Walnuts"),
		}, blackboard.Exclude)
		return fmt.Sprintf("sections=%d facets=%d refined=%d final=%d",
			len(pane.Sections), len(overview), n1, len(s.Items())), nil
	}

	want, err := walk()
	if err != nil {
		t.Fatal(err)
	}

	results := make([]string, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = walk()
		}(i)
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Errorf("session %d: %v", i, errs[i])
			continue
		}
		if results[i] != want {
			t.Errorf("session %d diverged under concurrency:\n got %s\nwant %s", i, results[i], want)
		}
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"

	"magnet/internal/advisors"
	"magnet/internal/analysts"
	"magnet/internal/blackboard"
	"magnet/internal/facets"
	"magnet/internal/history"
	"magnet/internal/obs"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

// Session-step observability: how often each navigation step runs and how
// long it takes end to end (query evaluation, pane assembly, overview).
var (
	stepQueryCount    = obs.NewCounter("session.query.count")
	stepQueryNS       = obs.NewHistogram("session.query.ns")
	stepPaneCount     = obs.NewCounter("session.pane.count")
	stepPaneNS        = obs.NewHistogram("session.pane.ns")
	stepOverviewCount = obs.NewCounter("session.overview.count")
	stepOverviewNS    = obs.NewHistogram("session.overview.ns")
)

// stepTimer times one navigation step for the flight recorder. Every step
// runs under a trace: as a child span when the ambient context already
// carries one (a web request), otherwise as its own root — which the
// timer hands to obs.Records at the end, so steps are captured even when
// no HTTP middleware owns the trace (magnet-eval, the CLI, tests).
type stepTimer struct {
	ctx  context.Context
	sp   *obs.Span
	root bool
	name string
}

// startStep begins a navigation step under the session's ambient context.
func (s *Session) startStep(name string) (context.Context, *stepTimer) {
	ctx, sp, root := obs.StartAlways(s.ctx, name)
	return ctx, &stepTimer{ctx: ctx, sp: sp, root: root, name: name}
}

// finish ends the step's span, records the per-step metrics with the
// trace ID as the histogram exemplar, feeds owned roots to the flight
// recorder, and warns (with the joining trace ID) when the step blew the
// slow threshold — every refinement is supposed to feel instant.
func (st *stepTimer) finish(count *obs.Counter, ns *obs.Histogram) {
	st.sp.End()
	dur := st.sp.Duration()
	count.Inc()
	ns.ObserveExemplar(int64(dur), obs.TraceID(st.ctx))
	if st.root {
		obs.Records.Record(st.sp)
	}
	if dur >= obs.Records.SlowThreshold() {
		slog.Warn("slow navigation step",
			"step", st.name,
			"dur", dur,
			"trace", obs.TraceID(st.ctx))
	}
}

// Session is one user's navigation session: the current view, the history
// tracker, and the analyst registry producing the navigation pane. Sessions
// are not safe for concurrent use (each models a single user).
type Session struct {
	m        *Magnet
	registry *blackboard.Registry
	tracker  *history.Tracker
	cfgs     []advisors.Config
	views    map[string]blackboard.View
	current  blackboard.View
	compound *compoundState

	// ctx is the ambient context session steps run under; when it carries a
	// trace (obs.StartTrace) every step emits a span tree. Defaults to
	// context.Background().
	ctx context.Context
}

// NewSession starts a session at the all-items collection.
func (m *Magnet) NewSession() *Session {
	s := &Session{
		m:       m,
		tracker: history.NewTracker(),
		views:   make(map[string]blackboard.View),
		cfgs:    m.opts.AdvisorConfigs,
		ctx:     context.Background(),
	}
	if s.cfgs == nil {
		s.cfgs = advisors.DefaultConfigs()
	}
	env := &analysts.Env{
		Graph:      m.g,
		Schema:     m.sch,
		Model:      m.model,
		Engine:     m.eng,
		Text:       m.text,
		Tracker:    s.tracker,
		LookupView: s.lookupView,
		Pool:       m.pool,
	}
	build := m.opts.Analysts
	if build == nil {
		build = analysts.DefaultSet
	}
	s.registry = blackboard.NewRegistry(build(env)...)
	s.registry.SetPool(m.pool)
	s.goToQuery(query.NewQuery())
	return s
}

func (s *Session) lookupView(key string) (blackboard.View, bool) {
	v, ok := s.views[key]
	return v, ok
}

// Current returns the current view.
func (s *Session) Current() blackboard.View { return s.current }

// Query returns the current query (empty for item and fixed views).
func (s *Session) Query() query.Query { return s.current.Query }

// Items returns the items of the current view: the collection, or the
// single item as a one-element slice.
func (s *Session) Items() []rdf.IRI {
	if s.current.IsItem() {
		return []rdf.IRI{s.current.Item}
	}
	out := make([]rdf.IRI, len(s.current.Collection))
	copy(out, s.current.Collection)
	return out
}

// History returns the session's tracker (read access for advisors/tests).
func (s *Session) History() *history.Tracker { return s.tracker }

// SetContext sets the ambient context for subsequent session steps; pass a
// context from obs.StartTrace to capture a span tree for one navigation
// step. A nil ctx resets to context.Background(). Like all session state,
// this is single-user: callers serializing access to the session (e.g. the
// web layer) must set and reset it under the same lock.
func (s *Session) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.ctx = ctx
}

// Context returns the session's ambient context.
func (s *Session) Context() context.Context { return s.ctx }

func (s *Session) goTo(v blackboard.View) {
	s.current = v
	key := v.Key()
	s.views[key] = v
	s.tracker.RecordVisit(key)
}

func (s *Session) goToQuery(q query.Query) {
	ctx, st := s.startStep("session.query")
	res, parts := s.m.evalQuery(ctx, q)
	items := res.Items()
	s.tracker.PushQuery(q)
	v := blackboard.CollectionView(q, items)
	v.Shards = parts
	s.goTo(v)
	st.sp.SetInt("items", len(items))
	st.finish(stepQueryCount, stepQueryNS)
}

// Search starts a fresh keyword query (the toolbar of §3.1: "a search may
// often be initiated by specifying keywords, as this requires the least
// cognitive effort").
func (s *Session) Search(keywords string) {
	s.goToQuery(query.NewQuery(query.Keyword{Text: keywords}))
}

// SearchWithin refines the current collection with a keyword constraint
// (the navigation pane's 'Query' affordance).
func (s *Session) SearchWithin(keywords string) {
	s.goToQuery(s.current.Query.With(query.Keyword{Text: keywords}))
}

// OpenItem navigates to a single item's view.
func (s *Session) OpenItem(item rdf.IRI) {
	s.goTo(blackboard.ItemView(item))
}

// GoHome navigates to the unconstrained all-items collection.
func (s *Session) GoHome() {
	s.goToQuery(query.NewQuery())
}

// Refine adds a constraint to the current query (Filter), removes matching
// items (Exclude), or broadens the collection (Expand) — §4.1's Refine
// Collections semantics. On a fixed (materialized) collection the predicate
// filters the members directly, since there is no query to extend.
func (s *Session) Refine(p query.Predicate, mode blackboard.RefineMode) {
	prev := s.Items()
	if s.current.Fixed {
		s.refineFixed(p, mode)
	} else {
		q := s.current.Query
		switch mode {
		case blackboard.Filter:
			q = q.With(p)
		case blackboard.Exclude:
			q = q.With(query.Not{P: p})
		case blackboard.Expand:
			if q.IsEmpty() {
				q = query.NewQuery(p)
			} else {
				q = query.NewQuery(query.Or{Ps: []query.Predicate{query.And{Ps: q.Terms}, p}})
			}
		}
		s.goToQuery(q)
	}
	if s.m.opts.SoftEmptyResults && len(s.current.Collection) == 0 && mode != blackboard.Expand {
		s.softRefine(p, mode, prev)
	}
}

func (s *Session) refineFixed(p query.Predicate, mode blackboard.RefineMode) {
	matches := p.Eval(s.m.eng)
	var items []rdf.IRI
	for _, it := range s.current.Collection {
		in := matches.Has(it)
		if (mode == blackboard.Filter && in) || (mode == blackboard.Exclude && !in) {
			items = append(items, it)
		}
	}
	if mode == blackboard.Expand {
		items = append([]rdf.IRI{}, s.current.Collection...)
		seen := s.m.eng.NewSet(items...)
		for _, it := range matches.Items() {
			if !seen.Has(it) {
				items = append(items, it)
			}
		}
	}
	name := s.current.Name + " · " + p.Describe(s.m.Labeler())
	s.goTo(blackboard.FixedView(name, items))
}

// RemoveConstraint drops the i-th query constraint (the '✕' of §3.2).
func (s *Session) RemoveConstraint(i int) {
	s.goToQuery(s.current.Query.Without(i))
}

// NegateConstraint inverts the i-th query constraint (the context-menu
// negation of §3.2).
func (s *Session) NegateConstraint(i int) {
	s.goToQuery(s.current.Query.Negate(i))
}

// ApplyRange refines by a numeric range (the Figure 5 widget's selection);
// nil bounds leave that side open.
func (s *Session) ApplyRange(prop rdf.IRI, min, max *float64) {
	s.goToQuery(s.current.Query.With(query.Range{Prop: prop, Min: min, Max: max}))
}

// Back undoes the last refinement (History advisor's Refinement trail). It
// reports whether there was anywhere to go back to.
func (s *Session) Back() bool {
	q, ok := s.tracker.Back()
	if !ok {
		return false
	}
	res, parts := s.m.evalQuery(s.ctx, q)
	v := blackboard.CollectionView(q, res.Items())
	v.Shards = parts
	s.goTo(v)
	return true
}

// ErrNoAction reports an Apply call with a nil or unsupported action.
var ErrNoAction = errors.New("core: suggestion carries no directly applicable action")

// Apply executes a suggestion's action: the dispatch behind clicking a
// navigation suggestion. ShowRange and ShowSearch are interactive — the
// caller collects parameters and calls ApplyRange or SearchWithin instead.
func (s *Session) Apply(a blackboard.Action) error {
	switch act := a.(type) {
	case blackboard.Refine:
		s.Refine(act.Add, act.Mode)
	case blackboard.GoToCollection:
		s.goTo(blackboard.FixedView(act.Title, act.Items))
	case blackboard.GoToItem:
		s.OpenItem(act.Item)
	case blackboard.ReplaceQuery:
		s.goToQuery(act.Query)
	case blackboard.ShowRange, blackboard.ShowSearch, blackboard.ShowOverview:
		return fmt.Errorf("%w: interactive action %T needs parameters", ErrNoAction, a)
	case nil:
		return ErrNoAction
	default:
		return fmt.Errorf("%w: unknown action %T", ErrNoAction, a)
	}
	return nil
}

// ApplySuggestion is a convenience wrapper for Apply on a suggestion.
func (s *Session) ApplySuggestion(sg blackboard.Suggestion) error {
	return s.Apply(sg.Action)
}

// Board runs the analysts over the current view and returns the raw
// blackboard (tests and power tools).
func (s *Session) Board() *blackboard.Board {
	return s.registry.RunContext(s.ctx, s.current)
}

// Pane runs the analysts and assembles the navigation pane for the current
// view (the left side of Figure 1).
func (s *Session) Pane() advisors.Pane {
	ctx, st := s.startStep("session.pane")
	board := s.registry.RunContext(ctx, s.current)
	_, bsp := obs.StartSpan(ctx, "advisors.build")
	pane := advisors.Build(s.current.Query, s.m.Labeler(), board, s.cfgs)
	bsp.End()
	st.sp.SetInt("suggestions", board.Len())
	st.finish(stepPaneCount, stepPaneNS)
	return pane
}

// Overview computes the large-collection facet overview (Figure 2): value
// histograms per property, ordered by usefulness, values by count.
func (s *Session) Overview(maxValues int) []facets.Facet {
	ctx, st := s.startStep("session.overview")
	opts := facets.Options{
		MaxValues: maxValues,
		ByCount:   true,
		Pool:      s.m.pool,
	}
	var fs []facets.Facet
	if s.current.Shards != nil {
		// Sharded serving: the view carries the collection's partition from
		// query evaluation; summarize per shard and merge the counts
		// (byte-identical to the unsharded pass).
		fs = facets.SummarizeShards(ctx, s.m.g, s.m.sch, s.current.Shards, opts)
	} else {
		fs = facets.SummarizeContext(ctx, s.m.g, s.m.sch, s.Items(), opts)
	}
	st.sp.SetInt("facets", len(fs))
	st.finish(stepOverviewCount, stepOverviewNS)
	return fs
}

// Package core wires Magnet together: it owns the RDF graph, the schema
// annotations, the external text index, the semistructured vector space
// model, the query engine, and the analyst/advisor machinery, and exposes
// the session abstraction applications drive. This is the public face of
// the reproduction; examples and the CLI build exclusively on it.
package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"magnet/internal/advisors"
	"magnet/internal/analysts"
	"magnet/internal/blackboard"
	"magnet/internal/index"
	"magnet/internal/itemset"
	"magnet/internal/obs"
	"magnet/internal/par"
	"magnet/internal/plan"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/schema"
	"magnet/internal/segment"
	"magnet/internal/vsm"
)

// Startup gauges: how long the last Open/OpenSegments took, total and per
// component, in nanoseconds. Gauges (not histograms) because startup happens
// once per process and the current value is the interesting one; visible in
// /debug/metrics alongside the startup.* trace spans.
var (
	startupLoadNS    = obs.NewGauge("startup.load.ns")
	startupItemsNS   = obs.NewGauge("startup.items.ns")
	startupTextNS    = obs.NewGauge("startup.text.ns")
	startupVectorsNS = obs.NewGauge("startup.vectors.ns")
	startupEngineNS  = obs.NewGauge("startup.engine.ns")
)

// component times one startup component into both a trace span (when ctx
// carries a trace) and its gauge.
func component(ctx context.Context, name string, g *obs.Gauge, f func()) {
	_, sp := obs.StartSpan(ctx, name)
	start := time.Now()
	f()
	g.Set(time.Since(start).Nanoseconds())
	sp.End()
}

// Options configures a Magnet instance.
type Options struct {
	// VSM tunes the vector space model (ablation switches included).
	VSM vsm.Options
	// Analysts builds the analyst set for new sessions;
	// analysts.DefaultSet when nil. The user study's baseline system passes
	// analysts.BaselineSet here.
	Analysts func(*analysts.Env) []blackboard.Analyst
	// AdvisorConfigs sizes the navigation pane;
	// advisors.DefaultConfigs() when nil.
	AdvisorConfigs []advisors.Config
	// IndexAllSubjects indexes every subject in the graph instead of only
	// those carrying an rdf:type (useful for schemaless imports like the
	// 50-states CSV of §6.1).
	IndexAllSubjects bool
	// SoftEmptyResults enables the fuzzy fallback for refinements that
	// would produce the empty result set (the paper's §6.3.1 suggestion:
	// "modify the queries to perform more fuzzily in the case when zero
	// results would have been returned otherwise").
	SoftEmptyResults bool
	// Parallelism sizes the instance's shared worker pool: analyst waves,
	// facet sharding, similarity scans and batch indexing all fan out on
	// this one pool, so concurrent sessions (magnet-server) compose with
	// per-request parallelism instead of oversubscribing. 0 means
	// runtime.GOMAXPROCS(0); 1 runs the whole pipeline serially.
	Parallelism int
	// Shards enables scatter-gather serving: the dense-ID space is
	// partitioned into this many shards by ids.Shard, and every session
	// step's query evaluation, facet summarization and advisor member
	// counting scatter one task per shard on the pool before an exact
	// merge. Output is byte-identical to unsharded serving at any shard
	// count (shard_equiv_test.go); 0 or 1 serves unsharded.
	Shards int
	// PlanCache sizes the per-shard navigation-delta cache behind the
	// cost-based query planner (internal/plan): cached result sets keyed
	// by the canonical query key, invalidated whenever the graph or the
	// item universe changes. 0 means plan.DefaultCacheSize entries per
	// shard; a negative value disables planning and caching entirely,
	// restoring the naive evaluation path (output is byte-identical
	// either way — the planner only changes evaluation order and reuse).
	PlanCache int
}

// Magnet is an instance of the navigation system over one repository.
type Magnet struct {
	g     *rdf.Graph
	sch   *schema.Store
	text  *index.TextIndex
	model *vsm.Model
	eng   *query.Engine
	opts  Options
	items []rdf.IRI
	// itemIDs mirrors items on the dense-ID plane; the query engine's
	// universe (Not, empty queries) reads it without rehydration.
	itemIDs itemset.Set
	// pool is the instance's one concurrency budget (Options.Parallelism),
	// shared by every session.
	pool *par.Pool
	// sharding is the scatter-gather layout (Options.Shards > 1): the item
	// universe partitioned per shard. Rebuilt whenever itemIDs changes and
	// read by every session step; nil serves unsharded.
	sharding *query.Sharding
	// planner is the cost-based conjunction planner and navigation-delta
	// cache every session step's query evaluation routes through; nil
	// when Options.PlanCache is negative (the naive path).
	planner *plan.Planner

	// set is the backing segment set when the instance was opened with
	// OpenSegments; nil for in-memory instances. readOnly guards the
	// mutation paths (Reindex, IndexItem, RemoveItem), and itemsOnce defers
	// materializing the []rdf.IRI item slice — the segment open path must
	// stay O(1) in the corpus, so items rehydrate on first use.
	set       *segment.Set
	readOnly  bool
	itemsOnce sync.Once
	// shardSets holds the remaining per-shard segment sets when the
	// instance was opened with OpenSegmentShards (set holds shard 0, whose
	// columns back the indexes); Close unmaps them all.
	shardSets []*segment.Set
}

// Open builds a Magnet over the graph: it chooses the item universe,
// populates the text index from the items' literal attributes, and indexes
// every item into the vector space model (§5.2's "indexing the data in
// advance").
func Open(g *rdf.Graph, opts Options) *Magnet {
	return OpenContext(context.Background(), g, opts)
}

// OpenContext is Open with startup tracing: when ctx carries a trace (see
// obs.StartTrace), each initialization component becomes a startup.* span;
// the startup.*.ns gauges are set either way.
func OpenContext(ctx context.Context, g *rdf.Graph, opts Options) *Magnet {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "startup.load")
	m := &Magnet{
		g:    g,
		sch:  schema.NewStore(g),
		opts: opts,
		pool: par.New(opts.Parallelism),
	}
	m.reindexContext(ctx)
	component(ctx, "startup.engine", startupEngineNS, m.buildEngine)
	sp.End()
	startupLoadNS.Set(time.Since(start).Nanoseconds())
	return m
}

// buildEngine (re)creates the query engine over the current indexes, plus
// the planner and its delta caches (fresh caches: a rebuilt engine means
// rebuilt indexes, so nothing cached remains valid).
func (m *Magnet) buildEngine() {
	m.eng = query.NewEngine(m.g, m.sch, m.text, m.itemsSlice)
	m.reshard()
	shards := 1
	if m.sharding != nil {
		shards = m.sharding.N
	}
	m.planner = plan.New(shards, m.opts.PlanCache)
}

// reshard rebuilds the scatter-gather layout from the current item
// universe and re-installs the engine's universe source. Called wherever
// itemIDs changes (open, reindex, incremental index/remove); the
// re-installation bumps the engine's universe epoch, which is what
// invalidates the planner's delta caches on universe changes that leave
// the graph untouched (RemoveItem, text-only reindexing).
func (m *Magnet) reshard() {
	m.eng.SetUniverseIDs(func() itemset.Set { return m.itemIDs })
	if m.opts.Shards > 1 {
		m.sharding = query.BuildSharding(m.opts.Shards, m.itemIDs)
	} else {
		m.sharding = nil
	}
}

// evalQuery evaluates q through the instance's configured serving path:
// scatter-gather over the shard layout when Options.Shards > 1, the plain
// instrumented evaluation otherwise, each routed through the planner when
// enabled. The second return is the result's per-shard partition (nil
// when unsharded) for downstream stages to reuse.
func (m *Magnet) evalQuery(ctx context.Context, q query.Query) (query.Set, []itemset.Set) {
	if sh := m.sharding; sh != nil {
		if m.planner != nil {
			return m.planner.EvalShardedParts(ctx, m.eng, q, sh, m.pool)
		}
		return m.eng.EvalShardedParts(ctx, q, sh, m.pool)
	}
	if m.planner != nil {
		return m.planner.EvalContext(ctx, m.eng, q), nil
	}
	return m.eng.EvalContext(ctx, q), nil
}

// Reindex recomputes the item universe, the text index and all vectors;
// call after bulk-mutating the graph. Reindex replaces the text index and
// query engine, so sessions created *before* the call keep consulting the
// old ones inside their analysts — create sessions after reindexing. For
// incremental updates that keep live sessions current, use IndexItem and
// RemoveItem instead. Panics on a segment-backed (read-only) instance.
func (m *Magnet) Reindex() {
	m.mutable()
	m.reindexContext(context.Background())
	if m.eng != nil {
		// The engine closes over the instance; only the text index pointer
		// needs refreshing.
		m.buildEngine()
	}
}

// mutable panics when the instance is segment-backed: its indexes are
// read-only views into mapped files and cannot absorb mutations.
func (m *Magnet) mutable() {
	if m.readOnly {
		panic("core: mutation of read-only segment-backed Magnet (rebuild segments with magnet-build instead)")
	}
}

func (m *Magnet) reindexContext(ctx context.Context) {
	component(ctx, "startup.items", startupItemsNS, func() {
		m.items = m.chooseItems()
	})
	component(ctx, "startup.text", startupTextNS, func() {
		m.text = index.NewTextIndex(m.opts.VSM.Analyzer)
		for _, it := range m.items {
			for _, p := range m.g.PredicatesOf(it) {
				if m.sch.Hidden(p) {
					continue
				}
				for _, o := range m.g.Objects(it, p) {
					lit, ok := o.(rdf.Literal)
					if !ok || (lit.Datatype != "" && lit.Datatype != rdf.XSDString) {
						continue
					}
					m.text.Index(string(it), string(p), lit.Lexical)
				}
			}
		}
	})
	component(ctx, "startup.vectors", startupVectorsNS, func() {
		m.model = vsm.New(m.g, m.sch, m.opts.VSM)
		m.model.SetPool(m.pool)
		m.model.IndexAll(m.items)
	})
}

// IndexItem incrementally indexes (or reindexes) a single item without the
// full Reindex sweep — the paper's "indexing the data in advance (as it
// arrives)" (§5.2). Text fields are rebuilt from the item's current literal
// attributes and the vector is recomputed against existing corpus
// statistics (numeric values beyond the previously observed ranges clamp
// until the next full Reindex).
func (m *Magnet) IndexItem(item rdf.IRI) {
	m.mutable()
	m.text.Remove(string(item))
	for _, p := range m.g.PredicatesOf(item) {
		if m.sch.Hidden(p) {
			continue
		}
		for _, o := range m.g.Objects(item, p) {
			lit, ok := o.(rdf.Literal)
			if !ok || (lit.Datatype != "" && lit.Datatype != rdf.XSDString) {
				continue
			}
			m.text.Index(string(item), string(p), lit.Lexical)
		}
	}
	m.model.IndexItem(item)
	i := sort.Search(len(m.items), func(i int) bool { return m.items[i] >= item })
	if i == len(m.items) || m.items[i] != item {
		m.items = append(m.items, "")
		copy(m.items[i+1:], m.items[i:])
		m.items[i] = item
		id := m.g.Interner().Intern(item)
		m.itemIDs = m.itemIDs.Union(itemset.FromSorted([]uint32{id}))
		m.reshard()
	}
}

// RemoveItem removes an item from every index (the graph's triples are the
// caller's to remove).
func (m *Magnet) RemoveItem(item rdf.IRI) {
	m.mutable()
	m.text.Remove(string(item))
	m.model.RemoveItem(item)
	i := sort.Search(len(m.items), func(i int) bool { return m.items[i] >= item })
	if i < len(m.items) && m.items[i] == item {
		m.items = append(m.items[:i], m.items[i+1:]...)
		if id, ok := m.g.SubjectID(item); ok {
			m.itemIDs = m.itemIDs.Minus(itemset.FromSorted([]uint32{id}))
			m.reshard()
		}
	}
}

// chooseItems selects the indexed information objects: subjects with an
// rdf:type, or every subject when none carry types (or when configured).
// It also records the universe on the dense-ID plane (m.itemIDs); the class
// union runs entirely over subject-ID postings via one bitmap accumulator.
func (m *Magnet) chooseItems() []rdf.IRI {
	if !m.opts.IndexAllSubjects {
		b := itemset.NewBits(m.g.Interner().Len())
		for _, t := range m.g.ObjectsOf(rdf.Type) {
			cls, ok := t.(rdf.IRI)
			if !ok {
				continue
			}
			b.AddSet(m.g.SubjectIDSet(rdf.Type, cls))
		}
		if b.Count() > 0 {
			m.itemIDs = b.Extract()
			return m.g.SubjectsFromIDs(m.itemIDs.Slice())
		}
	}
	m.itemIDs = m.g.AllSubjectIDs()
	return m.g.AllSubjects()
}

// Pool returns the instance's shared worker pool.
func (m *Magnet) Pool() *par.Pool { return m.pool }

// Shards returns the scatter-gather shard count the instance serves with
// (0 when unsharded).
func (m *Magnet) Shards() int {
	if m.sharding == nil {
		return 0
	}
	return m.sharding.N
}

// Close releases the instance's worker pool and, for segment-backed
// instances, unmaps the segment files. Sessions keep working after Close —
// every parallel seam degrades to its serial path — but segment-backed
// indexes must not be consulted after their mappings are gone.
func (m *Magnet) Close() {
	m.pool.Close()
	if m.set != nil {
		_ = m.set.Close()
	}
	for _, s := range m.shardSets {
		_ = s.Close()
	}
}

// Graph returns the underlying graph.
func (m *Magnet) Graph() *rdf.Graph { return m.g }

// Schema returns the annotation store.
func (m *Magnet) Schema() *schema.Store { return m.sch }

// Model returns the vector space model.
func (m *Magnet) Model() *vsm.Model { return m.model }

// Engine returns the query engine.
func (m *Magnet) Engine() *query.Engine { return m.eng }

// TextIndex returns the external text index.
func (m *Magnet) TextIndex() *index.TextIndex { return m.text }

// itemsSlice returns the item universe as IRIs, materializing it on first
// use for segment-backed instances (the open path only carries the dense-ID
// posting; rehydrating N IRIs would break the O(1) open budget).
func (m *Magnet) itemsSlice() []rdf.IRI {
	if m.set != nil {
		m.itemsOnce.Do(func() {
			m.items = m.g.SubjectsFromIDs(m.itemIDs.Slice())
		})
	}
	return m.items
}

// Items returns the indexed item universe, sorted.
func (m *Magnet) Items() []rdf.IRI {
	items := m.itemsSlice()
	out := make([]rdf.IRI, len(items))
	copy(out, items)
	return out
}

// NumItems returns the size of the item universe without materializing it
// (cheap even right after OpenSegments).
func (m *Magnet) NumItems() int { return m.itemIDs.Len() }

// Label returns the display label for a resource.
func (m *Magnet) Label(r rdf.IRI) string { return m.g.Label(r) }

// Labeler returns the query.Labeler over the graph.
func (m *Magnet) Labeler() query.Labeler {
	return func(r rdf.IRI) string { return m.g.Label(r) }
}

// ExplainSimilarityText renders the top-k shared coordinates behind the
// similarity of two items as human-readable lines ("cuisine = Greek",
// "title word apple", "sent (numeric closeness)"), making the fuzzy
// "similar by content" advisor inspectable.
func (m *Magnet) ExplainSimilarityText(a, b rdf.IRI, k int) []string {
	expl := m.model.ExplainSimilarity(a, b, k)
	out := make([]string, 0, len(expl))
	for _, wc := range expl {
		c := wc.Coord
		desc := vsm.PathLabel(c.Path, m.Label)
		switch c.Kind {
		case vsm.CoordObject:
			if iri, ok := c.Value.(rdf.IRI); ok {
				desc += " = " + m.Label(iri)
			} else {
				desc += " = " + m.g.TermLabel(c.Value)
			}
		case vsm.CoordWord:
			word := c.Word
			if m.text != nil {
				word = m.text.Surface(c.Word)
			}
			desc += " word " + word
		case vsm.CoordNumeric:
			desc += " (numeric closeness)"
		}
		out = append(out, desc)
	}
	return out
}

package core_test

import (
	"errors"
	"strings"
	"testing"

	"magnet/internal/analysts"
	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

func openCorpus(t *testing.T, n int) *core.Magnet {
	t.Helper()
	g := recipes.Build(recipes.Config{Recipes: n, Seed: 1})
	return core.Open(g, core.Options{})
}

func TestOpenIndexesTypedItems(t *testing.T) {
	m := openCorpus(t, 200)
	items := m.Items()
	// Typed items: recipes + ingredients + groups + cuisines + courses +
	// methods — every typed subject, not just recipes.
	if len(items) <= 200 {
		t.Errorf("items = %d, expected recipes plus vocabulary", len(items))
	}
	if m.Model().Store().Len() != len(items) {
		t.Errorf("vector store has %d docs for %d items", m.Model().Store().Len(), len(items))
	}
	// Text index knows recipe titles.
	if got := m.TextIndex().Matching("salad", index(m)); len(got) == 0 {
		t.Error("titles not text-indexed")
	}
}

// index returns the any-field marker (readability helper).
func index(*core.Magnet) string { return "" }

func TestSessionSearchAndRefine(t *testing.T) {
	m := openCorpus(t, 400)
	s := m.NewSession()

	if len(s.Items()) != len(m.Items()) {
		t.Fatal("session should start at the all-items collection")
	}

	// Toolbar keyword search.
	s.Search("salad")
	if len(s.Items()) == 0 {
		t.Fatal("keyword search found nothing")
	}
	for _, it := range s.Items()[:3] {
		title, _ := m.Graph().Object(it, recipes.PropTitle)
		content, hasContent := m.Graph().Object(it, recipes.PropContent)
		text := title.(rdf.Literal).Lexical
		if hasContent {
			text += " " + content.(rdf.Literal).Lexical
		}
		if !strings.Contains(strings.ToLower(text), "salad") {
			t.Errorf("%s does not mention salad: %q", it, text)
		}
	}

	// Refine by cuisine.
	before := len(s.Items())
	s.Refine(query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")}, blackboard.Filter)
	after := len(s.Items())
	if after == 0 || after >= before {
		t.Errorf("refine did not narrow: %d → %d", before, after)
	}
	for _, it := range s.Items() {
		if !m.Graph().Has(it, recipes.PropCuisine, recipes.Cuisine("Greek")) {
			t.Errorf("%s not Greek", it)
		}
	}

	// Constraint list renders.
	pane := s.Pane()
	if len(pane.Constraints) != 2 {
		t.Errorf("constraints = %v", pane.Constraints)
	}

	// Remove the keyword constraint.
	s.RemoveConstraint(0)
	if len(s.Query().Terms) != 1 {
		t.Errorf("terms after remove = %d", len(s.Query().Terms))
	}

	// Negate the cuisine constraint: non-Greek recipes.
	s.NegateConstraint(0)
	for _, it := range s.Items()[:5] {
		if m.Graph().Has(it, recipes.PropCuisine, recipes.Cuisine("Greek")) {
			t.Errorf("%s is Greek after negation", it)
		}
	}
}

func TestSessionExcludeAndExpand(t *testing.T) {
	m := openCorpus(t, 400)
	s := m.NewSession()
	greek := query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")}
	mexican := query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Mexican")}

	s.Refine(greek, blackboard.Filter)
	nGreek := len(s.Items())

	// Exclude walnut recipes (the task-1 move).
	s.Refine(query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Walnuts")}, blackboard.Exclude)
	if len(s.Items()) >= nGreek {
		t.Error("exclude did not narrow")
	}
	for _, it := range s.Items() {
		if m.Graph().Has(it, recipes.PropIngredient, recipes.Ingredient("Walnuts")) {
			t.Errorf("%s still has walnuts", it)
		}
	}

	// Expand to also include Mexican recipes.
	withoutWalnuts := len(s.Items())
	s.Refine(mexican, blackboard.Expand)
	if len(s.Items()) <= withoutWalnuts {
		t.Error("expand did not broaden")
	}
}

func TestSessionBackAndHistory(t *testing.T) {
	m := openCorpus(t, 300)
	s := m.NewSession()
	s.Search("soup")
	n1 := len(s.Items())
	s.Refine(query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("French")}, blackboard.Filter)
	if !s.Back() {
		t.Fatal("Back failed")
	}
	if len(s.Items()) != n1 {
		t.Errorf("Back items = %d, want %d", len(s.Items()), n1)
	}
	// Trail: empty → soup; one more Back lands on the all-items query.
	if !s.Back() {
		t.Fatal("second Back failed")
	}
	if !s.Query().IsEmpty() {
		t.Error("expected empty query at trail root")
	}
	if s.Back() {
		t.Error("Back past the root should fail")
	}
}

func TestSessionOpenItemAndApplyActions(t *testing.T) {
	m := openCorpus(t, 300)
	s := m.NewSession()
	item := m.Items()[0]
	s.OpenItem(item)
	if !s.Current().IsItem() || s.Current().Item != item {
		t.Fatal("OpenItem wrong")
	}
	if got := s.Items(); len(got) != 1 || got[0] != item {
		t.Errorf("Items on item view = %v", got)
	}

	// Apply each action kind.
	if err := s.Apply(blackboard.GoToCollection{Title: "fixed", Items: m.Items()[:3]}); err != nil {
		t.Fatal(err)
	}
	if !s.Current().Fixed || len(s.Items()) != 3 {
		t.Error("GoToCollection failed")
	}
	if err := s.Apply(blackboard.GoToItem{Item: item}); err != nil || s.Current().Item != item {
		t.Error("GoToItem failed")
	}
	q := query.NewQuery(query.TypeIs(recipes.ClassRecipe))
	if err := s.Apply(blackboard.ReplaceQuery{Query: q}); err != nil {
		t.Fatal(err)
	}
	if s.Query().Key() != q.Key() {
		t.Error("ReplaceQuery failed")
	}

	// Interactive actions return ErrNoAction.
	if err := s.Apply(blackboard.ShowSearch{}); !errors.Is(err, core.ErrNoAction) {
		t.Errorf("ShowSearch err = %v", err)
	}
	if err := s.Apply(nil); !errors.Is(err, core.ErrNoAction) {
		t.Errorf("nil action err = %v", err)
	}
}

func TestSessionApplyRangeAndSearchWithin(t *testing.T) {
	m := openCorpus(t, 300)
	s := m.NewSession()
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
	n := len(s.Items())

	min, max := 4.0, 6.0
	s.ApplyRange(recipes.PropServings, &min, &max)
	if len(s.Items()) == 0 || len(s.Items()) >= n {
		t.Errorf("range did not narrow: %d → %d", n, len(s.Items()))
	}
	for _, it := range s.Items()[:5] {
		v, _ := m.Graph().Object(it, recipes.PropServings)
		f, _ := v.(rdf.Literal).Float()
		if f < 4 || f > 6 {
			t.Errorf("%s servings %v outside range", it, f)
		}
	}

	s.SearchWithin("stew")
	for _, it := range s.Items() {
		title, _ := m.Graph().Object(it, recipes.PropTitle)
		content, _ := m.Graph().Object(it, recipes.PropContent)
		joined := strings.ToLower(title.(rdf.Literal).Lexical + " " + content.(rdf.Literal).Lexical)
		if !strings.Contains(joined, "stew") {
			t.Errorf("%s does not mention stew", it)
		}
	}
}

func TestSessionOverview(t *testing.T) {
	m := openCorpus(t, 400)
	s := m.NewSession()
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
	fs := s.Overview(5)
	if len(fs) == 0 {
		t.Fatal("no facets")
	}
	// Preferred facets (cuisine/course/method/ingredient) come first.
	if !fs[0].Preferred {
		t.Errorf("first facet %q not preferred", fs[0].Label)
	}
	for _, f := range fs {
		if len(f.Values) > 5 {
			t.Errorf("facet %q has %d values (max 5)", f.Label, len(f.Values))
		}
	}
}

func TestComposedRefinementScenario(t *testing.T) {
	// §3.3: "get recipes having an ingredient found in [a group]" — the
	// composed ingredient·group coordinate must be constraint-able.
	m := openCorpus(t, 400)
	s := m.NewSession()
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
	pred := query.PathProperty{
		Path:  []rdf.IRI{recipes.PropIngredient, recipes.PropGroup},
		Value: recipes.Group("Nuts"),
	}
	s.Refine(pred, blackboard.Exclude)
	for _, it := range s.Items()[:10] {
		for _, ing := range m.Graph().Objects(it, recipes.PropIngredient) {
			if m.Graph().Has(ing.(rdf.IRI), recipes.PropGroup, recipes.Group("Nuts")) {
				t.Fatalf("%s still has a nut ingredient %s", it, ing)
			}
		}
	}
}

func TestBaselineConfigurationLacksSimilarity(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 200, Seed: 1})
	m := core.Open(g, core.Options{Analysts: analysts.BaselineSet})
	s := m.NewSession()
	s.OpenItem(m.Items()[0])
	board := s.Board()
	for _, sg := range board.Suggestions() {
		if sg.Analyst == "similar-by-content-item" || sg.Analyst == "contrary-constraints" {
			t.Errorf("baseline posted %s suggestion", sg.Analyst)
		}
	}
}

func TestReindexAfterMutation(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 100, Seed: 1})
	m := core.Open(g, core.Options{})
	before := len(m.Items())
	it := rdf.IRI(recipes.NS + "recipe/extra")
	g.Add(it, rdf.Type, recipes.ClassRecipe)
	g.Add(it, recipes.PropTitle, rdf.NewString("Extra Unobtainium Pie"))
	m.Reindex()
	if len(m.Items()) != before+1 {
		t.Errorf("items after reindex = %d, want %d", len(m.Items()), before+1)
	}
	s := m.NewSession()
	s.Search("unobtainium")
	if len(s.Items()) != 1 || s.Items()[0] != it {
		t.Errorf("new item not searchable: %v", s.Items())
	}
}

func TestIncrementalIndexItem(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 150, Seed: 1})
	m := core.Open(g, core.Options{})
	before := len(m.Items())

	// A new recipe arrives.
	it := rdf.IRI(recipes.NS + "recipe/incremental")
	g.Add(it, rdf.Type, recipes.ClassRecipe)
	g.Add(it, recipes.PropTitle, rdf.NewString("Incremental Kumquat Tart"))
	g.Add(it, recipes.PropCuisine, recipes.Cuisine("Greek"))
	m.IndexItem(it)

	if len(m.Items()) != before+1 {
		t.Fatalf("items = %d, want %d", len(m.Items()), before+1)
	}
	s := m.NewSession()
	s.Search("kumquat")
	if len(s.Items()) != 1 || s.Items()[0] != it {
		t.Fatalf("new item not searchable: %v", s.Items())
	}
	// Vector exists and similarity works against the existing corpus.
	if len(m.Model().Vector(it)) == 0 {
		t.Error("new item has no vector")
	}
	if sims := m.Model().SimilarToItem(it, 5); len(sims) == 0 {
		t.Error("new item has no neighbours despite shared cuisine")
	}

	// Update in place: title change is re-indexed, old tokens gone.
	g.Remove(it, recipes.PropTitle, rdf.NewString("Incremental Kumquat Tart"))
	g.Add(it, recipes.PropTitle, rdf.NewString("Renamed Quandong Tart"))
	m.IndexItem(it)
	s.Search("kumquat")
	if len(s.Items()) != 0 {
		t.Error("old tokens survived reindex")
	}
	s.Search("quandong")
	if len(s.Items()) != 1 {
		t.Error("new tokens missing after reindex")
	}

	// Removal takes it out of everything.
	m.RemoveItem(it)
	if len(m.Items()) != before {
		t.Errorf("items after remove = %d", len(m.Items()))
	}
	s.Search("quandong")
	if len(s.Items()) != 0 {
		t.Error("removed item still searchable")
	}
	// Removing an absent item is a no-op.
	m.RemoveItem(it)
	if len(m.Items()) != before {
		t.Error("double remove changed the index")
	}
	// IndexItem on an existing item must not duplicate.
	existing := m.Items()[0]
	m.IndexItem(existing)
	if len(m.Items()) != before {
		t.Error("reindexing an existing item duplicated it")
	}
}

func TestIndexAllSubjectsOption(t *testing.T) {
	g := rdf.NewGraph()
	// Schemaless import: no rdf:type anywhere (the 50-states CSV case).
	g.Add(rdf.IRI("http://e/alaska"), rdf.IRI("http://e/bird"), rdf.NewString("Willow Ptarmigan"))
	g.Add(rdf.IRI("http://e/ohio"), rdf.IRI("http://e/bird"), rdf.NewString("Cardinal"))
	m := core.Open(g, core.Options{IndexAllSubjects: true})
	if len(m.Items()) != 2 {
		t.Errorf("items = %v", m.Items())
	}
	// Untyped graphs fall back to all subjects even without the option.
	m2 := core.Open(g, core.Options{})
	if len(m2.Items()) != 2 {
		t.Errorf("fallback items = %v", m2.Items())
	}
}

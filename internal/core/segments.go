package core

// Segment-backed startup: OpenSegments is the read-only counterpart of Open
// that reassembles the whole instance — graph, text index, vector store,
// numeric range statistics, item universe — from a compiled segment set
// (internal/segment) instead of re-deriving them from triples.
// WriteSegments is the build side magnet-build drives.
//
// The open path is O(1) in the corpus size: columns are zero-copy slices
// into mapped files, interners and terms rehydrate lazily, and the item
// universe stays on the dense-ID plane until first use. Renderer output is
// byte-identical between the two backings (asserted by segment_equiv_test).

import (
	"context"
	"sort"
	"time"

	"magnet/internal/index"
	"magnet/internal/itemset"
	"magnet/internal/obs"
	"magnet/internal/par"
	"magnet/internal/rdf"
	"magnet/internal/schema"
	"magnet/internal/segment"
	"magnet/internal/vsm"
)

var startupGraphNS = obs.NewGauge("startup.graph.ns")

// OpenSegments opens the segment set in dir as a read-only Magnet.
// Options that were fixed at build time (IndexAllSubjects) are taken from
// the set's manifest, overriding opts. Callers must Close the instance to
// unmap the segment files.
func OpenSegments(dir string, opts Options) (*Magnet, error) {
	return OpenSegmentsContext(context.Background(), dir, opts)
}

// OpenSegmentsContext is OpenSegments with startup tracing (see
// OpenContext).
func OpenSegmentsContext(ctx context.Context, dir string, opts Options) (*Magnet, error) {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "startup.load")
	set, err := segment.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	opts.IndexAllSubjects = set.Data.IndexAllSubjects

	m := &Magnet{
		opts:     opts,
		pool:     par.New(opts.Parallelism),
		set:      set,
		readOnly: true,
	}
	fail := func(err error) (*Magnet, error) {
		_ = set.Close()
		m.pool.Close()
		return nil, err
	}
	component(ctx, "startup.graph", startupGraphNS, func() {
		m.g, err = rdf.FromColumns(set.Data.Graph)
	})
	if err != nil {
		return fail(err)
	}
	m.sch = schema.NewStore(m.g)
	component(ctx, "startup.text", startupTextNS, func() {
		m.text, err = index.FromTextColumns(opts.VSM.Analyzer, set.Data.Text)
	})
	if err != nil {
		return fail(err)
	}
	component(ctx, "startup.vectors", startupVectorsNS, func() {
		var store *index.VectorStore
		store, err = index.FromVectorColumns(set.Data.Vectors)
		if err != nil {
			return
		}
		ranges := make(map[string]vsm.Range, len(set.Data.Ranges))
		for _, r := range set.Data.Ranges {
			ranges[r.Key] = vsm.Range{Min: r.Min, Max: r.Max, Count: r.Count}
		}
		m.model = vsm.FromStore(m.g, m.sch, store, ranges, opts.VSM)
		m.model.SetPool(m.pool)
	})
	if err != nil {
		return fail(err)
	}
	component(ctx, "startup.items", startupItemsNS, func() {
		m.itemIDs = itemset.FromSorted(set.Data.Items)
	})
	component(ctx, "startup.engine", startupEngineNS, m.buildEngine)
	sp.End()
	startupLoadNS.Set(time.Since(start).Nanoseconds())
	return m, nil
}

// Segments returns the backing segment set (nil for in-memory instances).
func (m *Magnet) Segments() *segment.Set { return m.set }

// WriteSegments compiles the instance's current indexes into a segment set
// at dir — the build side magnet-build drives. dataset and params are
// recorded in the manifest so readers can verify they opened what they
// expected. Works on any instance, including one that was itself opened
// from segments (a copy).
func (m *Magnet) WriteSegments(dir, dataset string, params map[string]int64) (segment.Manifest, error) {
	ranges := m.model.Ranges()
	nr := make([]segment.NumericRange, 0, len(ranges))
	for k, r := range ranges {
		nr = append(nr, segment.NumericRange{Key: k, Min: r.Min, Max: r.Max, Count: r.Count})
	}
	sort.Slice(nr, func(i, j int) bool { return nr[i].Key < nr[j].Key })
	return segment.BuildDir(dir, segment.Data{
		Dataset:          dataset,
		Params:           params,
		IndexAllSubjects: m.opts.IndexAllSubjects,
		Items:            m.itemIDs.Slice(),
		Graph:            m.g.Columns(),
		Text:             m.text.Columns(),
		Vectors:          m.model.Store().Columns(),
		Ranges:           nr,
	})
}

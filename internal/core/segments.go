package core

// Segment-backed startup: OpenSegments is the read-only counterpart of Open
// that reassembles the whole instance — graph, text index, vector store,
// numeric range statistics, item universe — from a compiled segment set
// (internal/segment) instead of re-deriving them from triples.
// WriteSegments is the build side magnet-build drives.
//
// The open path is O(1) in the corpus size: columns are zero-copy slices
// into mapped files, interners and terms rehydrate lazily, and the item
// universe stays on the dense-ID plane until first use. Renderer output is
// byte-identical between the two backings (asserted by segment_equiv_test).

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"magnet/internal/ids"

	"magnet/internal/index"
	"magnet/internal/itemset"
	"magnet/internal/obs"
	"magnet/internal/par"
	"magnet/internal/rdf"
	"magnet/internal/schema"
	"magnet/internal/segment"
	"magnet/internal/vsm"
)

var startupGraphNS = obs.NewGauge("startup.graph.ns")

// OpenSegments opens the segment set in dir as a read-only Magnet.
// Options that were fixed at build time (IndexAllSubjects) are taken from
// the set's manifest, overriding opts. Callers must Close the instance to
// unmap the segment files.
func OpenSegments(dir string, opts Options) (*Magnet, error) {
	return OpenSegmentsContext(context.Background(), dir, opts)
}

// OpenSegmentsContext is OpenSegments with startup tracing (see
// OpenContext).
func OpenSegmentsContext(ctx context.Context, dir string, opts Options) (*Magnet, error) {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "startup.load")
	set, err := segment.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	m, err := openFromSet(ctx, set, opts, itemset.FromSorted(set.Data.Items))
	if err != nil {
		return nil, err
	}
	sp.End()
	startupLoadNS.Set(time.Since(start).Nanoseconds())
	return m, nil
}

// openFromSet assembles a read-only Magnet from an opened segment set with
// the given item universe (the set's own Items for a whole-corpus open;
// the merged partition for a shard-layout open). Takes ownership of set:
// on error it is closed.
func openFromSet(ctx context.Context, set *segment.Set, opts Options, items itemset.Set) (*Magnet, error) {
	opts.IndexAllSubjects = set.Data.IndexAllSubjects

	var err error
	m := &Magnet{
		opts:     opts,
		pool:     par.New(opts.Parallelism),
		set:      set,
		readOnly: true,
	}
	fail := func(err error) (*Magnet, error) {
		_ = set.Close()
		m.pool.Close()
		return nil, err
	}
	component(ctx, "startup.graph", startupGraphNS, func() {
		m.g, err = rdf.FromColumns(set.Data.Graph)
	})
	if err != nil {
		return fail(err)
	}
	m.sch = schema.NewStore(m.g)
	component(ctx, "startup.text", startupTextNS, func() {
		m.text, err = index.FromTextColumns(opts.VSM.Analyzer, set.Data.Text)
	})
	if err != nil {
		return fail(err)
	}
	component(ctx, "startup.vectors", startupVectorsNS, func() {
		var store *index.VectorStore
		store, err = index.FromVectorColumns(set.Data.Vectors)
		if err != nil {
			return
		}
		ranges := make(map[string]vsm.Range, len(set.Data.Ranges))
		for _, r := range set.Data.Ranges {
			ranges[r.Key] = vsm.Range{Min: r.Min, Max: r.Max, Count: r.Count}
		}
		m.model = vsm.FromStore(m.g, m.sch, store, ranges, opts.VSM)
		m.model.SetPool(m.pool)
	})
	if err != nil {
		return fail(err)
	}
	component(ctx, "startup.items", startupItemsNS, func() {
		m.itemIDs = items
	})
	component(ctx, "startup.engine", startupEngineNS, m.buildEngine)
	return m, nil
}

// shardDirName names shard s's directory inside a shard-layout root.
func shardDirName(s int) string { return fmt.Sprintf("shard-%03d", s) }

// OpenSegmentShards opens a shard-layout directory — one per-shard segment
// set per subdirectory, as written by WriteSegmentShards — as a single
// read-only Magnet serving in scatter-gather mode (Options.Shards is
// forced to the on-disk shard count). Every shard carries the full graph,
// text and vector columns (the dense ID space must agree across shards);
// only the item universe is partitioned, and the open validates that the
// partition matches ids.Shard exactly before merging it.
func OpenSegmentShards(dir string, opts Options) (*Magnet, error) {
	return OpenSegmentShardsContext(context.Background(), dir, opts)
}

// OpenSegmentShardsContext is OpenSegmentShards with startup tracing.
func OpenSegmentShardsContext(ctx context.Context, dir string, opts Options) (*Magnet, error) {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "startup.load")
	first, err := segment.OpenDir(filepath.Join(dir, shardDirName(0)))
	if err != nil {
		return nil, fmt.Errorf("core: open shard layout %s: %w", dir, err)
	}
	n := first.Data.Shards
	if n < 1 {
		_ = first.Close()
		return nil, fmt.Errorf("core: %s is not a shard layout (manifest has no shard count)", dir)
	}
	sets := make([]*segment.Set, 0, n)
	sets = append(sets, first)
	closeAll := func() {
		for _, s := range sets {
			_ = s.Close()
		}
	}
	for i := 1; i < n; i++ {
		s, err := segment.OpenDir(filepath.Join(dir, shardDirName(i)))
		if err != nil {
			closeAll()
			return nil, err
		}
		sets = append(sets, s)
	}
	parts := make([]itemset.Set, n)
	for i, s := range sets {
		d := s.Data
		if d.Shard != i || d.Shards != n {
			closeAll()
			return nil, fmt.Errorf("core: %s claims shard %d of %d, want %d of %d",
				s.Dir, d.Shard, d.Shards, i, n)
		}
		if d.Dataset != first.Data.Dataset || d.IndexAllSubjects != first.Data.IndexAllSubjects ||
			d.Graph.Triples != first.Data.Graph.Triples {
			closeAll()
			return nil, fmt.Errorf("core: %s disagrees with shard 0 about the corpus", s.Dir)
		}
		parts[i] = itemset.FromSorted(d.Items)
		bad := uint32(0)
		ok := true
		parts[i].ForEach(func(id uint32) bool {
			if ids.Shard(id, n) != i {
				bad, ok = id, false
			}
			return ok
		})
		if !ok {
			closeAll()
			return nil, fmt.Errorf("core: %s holds item %d, which ids.Shard assigns to shard %d",
				s.Dir, bad, ids.Shard(bad, n))
		}
	}
	opts.Shards = n
	m, err := openFromSet(ctx, first, opts, itemset.MergeDisjoint(parts))
	if err != nil {
		// openFromSet closed first; release the rest.
		for _, s := range sets[1:] {
			_ = s.Close()
		}
		return nil, err
	}
	m.shardSets = sets[1:]
	sp.End()
	startupLoadNS.Set(time.Since(start).Nanoseconds())
	return m, nil
}

// Segments returns the backing segment set (nil for in-memory instances).
func (m *Magnet) Segments() *segment.Set { return m.set }

// WriteSegments compiles the instance's current indexes into a segment set
// at dir — the build side magnet-build drives. dataset and params are
// recorded in the manifest so readers can verify they opened what they
// expected. Works on any instance, including one that was itself opened
// from segments (a copy).
func (m *Magnet) WriteSegments(dir, dataset string, params map[string]int64) (segment.Manifest, error) {
	return segment.BuildDir(dir, m.segmentData(dataset, params))
}

// segmentData assembles the instance's indexes as segment columns with the
// full item universe; shard builds override Items per directory.
func (m *Magnet) segmentData(dataset string, params map[string]int64) segment.Data {
	ranges := m.model.Ranges()
	nr := make([]segment.NumericRange, 0, len(ranges))
	for k, r := range ranges {
		nr = append(nr, segment.NumericRange{Key: k, Min: r.Min, Max: r.Max, Count: r.Count})
	}
	sort.Slice(nr, func(i, j int) bool { return nr[i].Key < nr[j].Key })
	return segment.Data{
		Dataset:          dataset,
		Params:           params,
		IndexAllSubjects: m.opts.IndexAllSubjects,
		Items:            m.itemIDs.Slice(),
		Graph:            m.g.Columns(),
		Text:             m.text.Columns(),
		Vectors:          m.model.Store().Columns(),
		Ranges:           nr,
	}
}

// WriteSegmentShards compiles the instance into an n-way shard layout
// under dir: one segment directory per shard (shard-000 … shard-NNN),
// each carrying the full graph/text/vector columns — so every shard
// agrees on the dense ID space — with the item universe restricted to the
// shard's ids.Shard partition. The layout is the distribution unit for
// scatter-gather serving: a shard directory is a complete, independently
// verifiable segment set, and OpenSegmentShards reassembles the universe
// exactly.
func (m *Magnet) WriteSegmentShards(dir, dataset string, params map[string]int64, n int) ([]segment.Manifest, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: shard count %d must be >= 1", n)
	}
	data := m.segmentData(dataset, params)
	parts := m.itemIDs.Partition(n, func(id uint32) int { return ids.Shard(id, n) })
	manifests := make([]segment.Manifest, 0, n)
	for i, part := range parts {
		d := data
		d.Items = part.Slice()
		d.Shard, d.Shards = i, n
		man, err := segment.BuildDir(filepath.Join(dir, shardDirName(i)), d)
		if err != nil {
			return nil, fmt.Errorf("core: build shard %d of %d: %w", i, n, err)
		}
		manifests = append(manifests, man)
	}
	return manifests, nil
}

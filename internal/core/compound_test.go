package core_test

import (
	"errors"
	"strings"
	"testing"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

func groupPred(name string) query.Predicate {
	return query.PathProperty{
		Path:  []rdf.IRI{recipes.PropIngredient, recipes.PropGroup},
		Value: recipes.Group(name),
	}
}

// The §3.3 example: "he wants only those items in the current collection
// that either have a dairy product or a vegetable in them ... build an 'or'
// refinement, and then drag 'dairy' and 'vegetables' from the panel".
func TestCompoundOrDairyVegetables(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 500, Seed: 1})
	m := core.Open(g, core.Options{})
	s := m.NewSession()
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
	before := len(s.Items())

	s.BeginCompound(core.CompoundOr)
	if err := s.AddToCompound(groupPred("Dairy")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddToCompound(groupPred("Vegetables")); err != nil {
		t.Fatal(err)
	}
	// Duplicates collapse.
	s.AddToCompound(groupPred("Dairy"))
	if _, preds, ok := s.Compound(); !ok || len(preds) != 2 {
		t.Fatalf("compound state = %v, %v", preds, ok)
	}
	if err := s.ApplyCompound(blackboard.Filter); err != nil {
		t.Fatal(err)
	}
	after := len(s.Items())
	if after == 0 || after >= before {
		t.Fatalf("compound OR %d → %d", before, after)
	}
	// Every remaining recipe has a dairy or a vegetable ingredient.
	for _, it := range s.Items()[:10] {
		ok := false
		for _, ing := range g.Objects(it, recipes.PropIngredient) {
			iri := ing.(rdf.IRI)
			if g.Has(iri, recipes.PropGroup, recipes.Group("Dairy")) ||
				g.Has(iri, recipes.PropGroup, recipes.Group("Vegetables")) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s has neither dairy nor vegetables", it)
		}
	}
	// Builder cleared after apply.
	if _, _, ok := s.Compound(); ok {
		t.Error("compound should clear after ApplyCompound")
	}
}

func TestCompoundAndNarrowsMoreThanOr(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 500, Seed: 1})
	m := core.Open(g, core.Options{})

	run := func(kind core.CompoundKind) int {
		s := m.NewSession()
		s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
		s.BeginCompound(kind)
		s.AddToCompound(groupPred("Dairy"))
		s.AddToCompound(groupPred("Vegetables"))
		if err := s.ApplyCompound(blackboard.Filter); err != nil {
			t.Fatal(err)
		}
		return len(s.Items())
	}
	or, and := run(core.CompoundOr), run(core.CompoundAnd)
	if and >= or {
		t.Errorf("AND (%d) should be narrower than OR (%d)", and, or)
	}
	if and == 0 {
		t.Error("AND should still match recipes with both groups")
	}
}

func TestCompoundErrors(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 100, Seed: 1})
	m := core.Open(g, core.Options{})
	s := m.NewSession()

	if err := s.AddToCompound(groupPred("Dairy")); !errors.Is(err, core.ErrNoCompound) {
		t.Errorf("AddToCompound without builder = %v", err)
	}
	if err := s.ApplyCompound(blackboard.Filter); !errors.Is(err, core.ErrNoCompound) {
		t.Errorf("ApplyCompound without builder = %v", err)
	}
	s.BeginCompound(core.CompoundOr)
	if err := s.ApplyCompound(blackboard.Filter); !errors.Is(err, core.ErrEmptyCompound) {
		t.Errorf("empty compound = %v", err)
	}
	s.BeginCompound(core.CompoundAnd)
	s.AddToCompound(groupPred("Dairy"))
	s.CancelCompound()
	if _, _, ok := s.Compound(); ok {
		t.Error("CancelCompound should clear the builder")
	}
}

// The §3.3 finale: refine the *ingredients* collection, then apply it back
// to recipes with or/and semantics.
func TestApplyValueSet(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 500, Seed: 1})
	m := core.Open(g, core.Options{})
	s := m.NewSession()

	// The user browses to the ingredient collection and refines it to one
	// group (standing in for "found only in North America").
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(
		query.TypeIs(recipes.ClassIngredient),
		query.Property{Prop: recipes.PropGroup, Value: recipes.Group("Legumes")},
	)})
	legumes := s.Items()
	if len(legumes) == 0 {
		t.Fatal("no legume ingredients")
	}

	target := query.NewQuery(query.TypeIs(recipes.ClassRecipe))

	// ANY: recipes with at least one legume.
	s.ApplyValueSet(target, recipes.PropIngredient, legumes, false, "legume ingredients")
	anyCount := len(s.Items())
	if anyCount == 0 {
		t.Fatal("no recipes with legumes")
	}
	for _, it := range s.Items()[:5] {
		found := false
		for _, ing := range g.Objects(it, recipes.PropIngredient) {
			if g.Has(ing.(rdf.IRI), recipes.PropGroup, recipes.Group("Legumes")) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s has no legume", it)
		}
	}
	// Constraint describes itself with the collection name.
	descs := s.Query().Describe(m.Labeler())
	joined := ""
	for _, d := range descs {
		joined += d + "\n"
	}
	if !strings.Contains(joined, "legume ingredients") {
		t.Errorf("constraint description missing collection name:\n%s", joined)
	}

	// ALL: recipes whose every ingredient is a legume — far rarer.
	s.ApplyValueSet(target, recipes.PropIngredient, legumes, true, "legume ingredients")
	allCount := len(s.Items())
	if allCount >= anyCount {
		t.Errorf("ALL (%d) should be rarer than ANY (%d)", allCount, anyCount)
	}
	for _, it := range s.Items() {
		for _, ing := range g.Objects(it, recipes.PropIngredient) {
			if !g.Has(ing.(rdf.IRI), recipes.PropGroup, recipes.Group("Legumes")) {
				t.Errorf("%s has non-legume ingredient %s", it, ing)
			}
		}
	}
}

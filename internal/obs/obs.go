// Package obs is Magnet's observability layer: allocation-conscious
// counters, gauges and histograms for the query → blackboard → advisor
// pipeline, a named-metric registry with an expvar-compatible JSON
// snapshot for /debug/metrics, and lightweight spans carried through
// context.Context for per-stage cost attribution (magnet-eval -trace,
// per-request traces in internal/web).
//
// The package is standard-library only and built for hot paths: metric
// handles are looked up once (package-level vars at the instrumented call
// sites) and every event thereafter is a few atomic adds — no maps, no
// locks, no allocation per event. Registry locks are taken only at
// metric-creation and snapshot time.
//
// Metric names are dotted lowercase paths, "stage.operation.measure":
// query.eval.ns, blackboard.analyst.related_items.runs,
// index.vector.cache.hit, web.request.count. Durations are recorded in
// nanoseconds into base-2 exponential histograms ("…ns"); cardinalities
// into the same histogram shape ("…results", "…suggestions").
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//magnet:hot
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//magnet:hot
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depths, live sessions).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//magnet:hot
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
//
//magnet:hot
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the fixed bucket count of every Histogram: base-2
// exponential buckets, bucket i counting observations v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0 holds zeros
// (and clamped negatives); the last bucket absorbs everything from
// 2^(HistBuckets-2) up. 48 buckets cover 1ns to ~1.6 days of nanoseconds,
// and any realistic result-set cardinality.
const HistBuckets = 48

// Histogram is a fixed-bucket exponential histogram over non-negative
// int64 observations (durations in nanoseconds, cardinalities). The zero
// value is ready to use; Observe is lock-free and allocation-free.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Uint64
	// exemplars[i] remembers the most recent traced observation that
	// landed in bucket i, so a p99 bucket on /debug/metrics links straight
	// to a captured trace in the flight recorder. Written only by
	// ObserveExemplar (one small allocation per traced observation);
	// plain Observe never touches it.
	exemplars [HistBuckets]atomic.Pointer[exemplar]
}

// exemplar is the stored form of a bucket's trace link.
type exemplar struct {
	traceID string
	v       int64
}

// Observe records v (negative values clamp to zero).
//
//magnet:hot
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
}

// ObserveSince records the nanoseconds elapsed since start — the usual
// way to time a section:
//
//	defer h.ObserveSince(time.Now())
//
//magnet:hot
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// ObserveExemplar records v and, when traceID is non-empty, remembers it
// as the bucket's exemplar — the trace that explains this bucket's most
// recent observation. One small allocation per traced observation; with
// an empty traceID it is exactly Observe.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.exemplars[i].Store(&exemplar{traceID: traceID, v: v})
}

// ObserveSinceExemplar is ObserveSince with an exemplar trace ID.
func (h *Histogram) ObserveSinceExemplar(start time.Time, traceID string) {
	h.ObserveExemplar(int64(time.Since(start)), traceID)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistBucket is one non-empty histogram bucket in a snapshot: Count
// observations with value ≤ Le (and greater than the previous bucket's Le).
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"n"`
}

// Exemplar links a snapshot bucket (by its Le bound) to the most recent
// trace whose observation landed there.
type Exemplar struct {
	Le      uint64 `json:"le"`
	Value   int64  `json:"v"`
	TraceID string `json:"trace"`
}

// HistSnapshot is the exported state of a Histogram.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets"`
	// Exemplars carries the per-bucket trace links, present only for
	// buckets that received a traced observation.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot returns the histogram's current state; only non-empty buckets
// are included, with inclusive upper bounds (2^i − 1).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := uint64(1)<<uint(i) - 1 // bucket i holds v with bits.Len64(v)==i
		s.Buckets = append(s.Buckets, HistBucket{Le: le, Count: n})
		if e := h.exemplars[i].Load(); e != nil {
			s.Exemplars = append(s.Exemplars, Exemplar{Le: le, Value: e.v, TraceID: e.traceID})
		}
	}
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank. With base-2 buckets the estimate is exact at bucket
// boundaries and off by at most one bucket's width inside — good enough
// to steer a slow-step threshold or report p50/p99 in a load harness.
// Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	lower := float64(0)
	for _, b := range s.Buckets {
		if float64(cum+b.Count) >= rank {
			frac := (rank - float64(cum)) / float64(b.Count)
			if frac < 0 {
				frac = 0
			}
			return int64(lower + (float64(b.Le)-lower)*frac)
		}
		cum += b.Count
		lower = float64(b.Le)
	}
	return int64(s.Buckets[len(s.Buckets)-1].Le)
}

// Sub returns the histogram delta since prev: the distribution of only the
// observations recorded between the two snapshots, with empty buckets
// elided like Snapshot. Both snapshots must come from the same histogram
// with prev taken first (histograms only grow); a load harness uses the
// delta to report run-only quantiles from process-global metrics.
// Exemplars are dropped — they are point-in-time trace links, not
// interval data.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	prevCount := make(map[uint64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevCount[b.Le] = b.Count
	}
	out := HistSnapshot{}
	if s.Count > prev.Count {
		out.Count = s.Count - prev.Count
	}
	out.Sum = s.Sum - prev.Sum
	for _, b := range s.Buckets {
		n := b.Count - prevCount[b.Le]
		if n == 0 || n > b.Count { // unchanged, or mismatched snapshots
			continue
		}
		out.Buckets = append(out.Buckets, HistBucket{Le: b.Le, Count: n})
	}
	return out
}

// Add returns the bucket-wise sum of two snapshots — the combined
// distribution of two disjoint observation streams (e.g. the per-stage
// step histograms a load harness folds into one step-latency figure).
// Exemplars are dropped.
func (s HistSnapshot) Add(t HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + t.Count, Sum: s.Sum + t.Sum}
	counts := make(map[uint64]uint64, len(s.Buckets)+len(t.Buckets))
	for _, b := range s.Buckets {
		counts[b.Le] += b.Count
	}
	for _, b := range t.Buckets {
		counts[b.Le] += b.Count
	}
	les := make([]uint64, 0, len(counts))
	for le := range counts {
		les = append(les, le)
	}
	sort.Slice(les, func(i, j int) bool { return les[i] < les[j] })
	for _, le := range les {
		out.Buckets = append(out.Buckets, HistBucket{Le: le, Count: counts[le]})
	}
	return out
}

// Registry is a named-metric namespace. Metric constructors are
// get-or-create and idempotent: the first call for a name wins, later
// calls return the same instance, so package-level instrument variables
// can be declared independently at every call site.
type Registry struct {
	mu sync.Mutex
	// counters, gauges and hists map metric name → instance; guarded by mu.
	// Lookups happen at instrument-declaration time only — recording an
	// event never touches the registry.
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry /debug/metrics serves.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// NewCounter returns the named counter from the Default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge returns the named gauge from the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram returns the named histogram from the Default registry.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }

// Snapshot returns every metric keyed by name: counters as uint64, gauges
// as int64, histograms as HistSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// WriteJSON writes the registry as one flat JSON object — the
// expvar-compatible shape /debug/metrics serves: metric names map to
// numbers (counters, gauges) or {count, sum, buckets} objects
// (histograms). Names are emitted sorted so output is diffable.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, name := range names {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		val, err := json.Marshal(snap[name])
		if err != nil {
			return fmt.Errorf("obs: marshal %s: %w", name, err)
		}
		if _, err := fmt.Fprintf(w, "%s%q: %s", sep, name, val); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// metricsWriteErrors counts snapshot serialization failures behind the
// /debug/metrics and /debug/traces handlers. Package-level so the error
// path never pays a registry lookup.
var metricsWriteErrors = NewCounter("obs.metrics.write_errors")

// writeBufferedJSON marshals v fully before touching the ResponseWriter,
// so a marshal failure becomes a clean 500 instead of truncated JSON with
// a 200 status already on the wire.
func writeBufferedJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		metricsWriteErrors.Inc()
		http.Error(w, "marshal failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(body)
}

// Handler serves the registry — mount it at /debug/metrics. The default
// is the flat sorted JSON object WriteJSON documents; ?format=prom
// switches to the Prometheus text exposition (WritePrometheus). Either
// way the snapshot is rendered into a buffer first, so a serialization
// failure returns a proper 500 instead of a truncated 200.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if req.URL.Query().Get("format") == "prom" {
			if err := r.WritePrometheus(&buf); err != nil {
				metricsWriteErrors.Inc()
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			buf.WriteTo(w)
			return
		}
		if err := r.WriteJSON(&buf); err != nil {
			metricsWriteErrors.Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		buf.WriteTo(w)
	})
}

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// endedTrace fabricates a completed trace root with a fixed duration —
// tests need deterministic slow/fast decisions, which real End() timing
// cannot give.
func endedTrace(name string, dur time.Duration) *Span {
	_, sp := StartTrace(context.Background(), name)
	sp.dur = dur
	return sp
}

func TestRingWraparound(t *testing.T) {
	r := newRing(4)
	for i := 1; i <= 10; i++ {
		r.add(&TraceRecord{ID: fmt.Sprintf("t-%d", i)})
	}
	got := r.snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("snapshot holds %d records, want 4", len(got))
	}
	// Newest first: 10, 9, 8, 7.
	for i, want := range []string{"t-10", "t-9", "t-8", "t-7"} {
		if got[i].ID != want {
			t.Errorf("snapshot[%d] = %s, want %s", i, got[i].ID, want)
		}
	}
}

func TestRingPartiallyFull(t *testing.T) {
	r := newRing(8)
	r.add(&TraceRecord{ID: "a"})
	r.add(&TraceRecord{ID: "b"})
	got := r.snapshot(nil)
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "a" {
		t.Fatalf("snapshot = %v, want [b a]", ids(got))
	}
}

func ids(ts []*TraceRecord) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	return out
}

// TestRecorderHeadSampling pins the 1-in-N rule: the first trace is always
// kept (seq 1, 1%N == 1), then every Nth after it.
func TestRecorderHeadSampling(t *testing.T) {
	rc := NewRecorder(RecorderOptions{SampleEvery: 4, SlowThreshold: time.Hour})
	for i := 0; i < 8; i++ {
		rc.Record(endedTrace("step", time.Millisecond))
	}
	got := rc.Traces(TraceFilter{})
	if len(got) != 2 { // traces 1 and 5 of 8
		t.Fatalf("kept %d traces, want 2 (1-in-4 of 8): %v", len(got), ids(got))
	}
	for _, tr := range got {
		if tr.Slow {
			t.Errorf("trace %s marked slow under an hour-long threshold", tr.ID)
		}
	}
}

// TestRecorderSlowSurvivesFlood is the tail-sampling guarantee: slow traces
// live in their own ring, so any number of fast traces cannot evict them.
func TestRecorderSlowSurvivesFlood(t *testing.T) {
	rc := NewRecorder(RecorderOptions{
		RecentSize: 4, SlowSize: 4,
		SampleEvery: 1, SlowThreshold: 100 * time.Millisecond,
	})
	slow := endedTrace("slow-step", 500*time.Millisecond)
	rc.Record(slow)
	for i := 0; i < 100; i++ {
		rc.Record(endedTrace("fast-step", time.Millisecond))
	}
	kept := rc.Traces(TraceFilter{SlowOnly: true})
	if len(kept) != 1 || kept[0].ID != slow.ID() {
		t.Fatalf("slow ring = %v, want exactly [%s]", ids(kept), slow.ID())
	}
	if !kept[0].Slow {
		t.Error("retained slow trace not marked Slow")
	}
	if all := rc.Traces(TraceFilter{}); len(all) != 5 { // 4 recents + 1 slow
		t.Errorf("total retained = %d, want 5 (4 recents + 1 slow)", len(all))
	}
}

func TestRecorderIgnoresNonRootsAndUnended(t *testing.T) {
	rc := NewRecorder(RecorderOptions{SampleEvery: 1})
	ctx, root := StartTrace(context.Background(), "root")
	_, child := StartSpan(ctx, "child")
	child.End()
	rc.Record(child) // non-root
	rc.Record(root)  // un-ended (Duration 0)
	rc.Record(nil)   // nil span
	if got := rc.Traces(TraceFilter{}); len(got) != 0 {
		t.Fatalf("recorder kept %v, want nothing", ids(got))
	}
}

func TestRecorderGetAndNameFilter(t *testing.T) {
	rc := NewRecorder(RecorderOptions{SampleEvery: 1, SlowThreshold: time.Hour})
	a := endedTrace("web.request", time.Millisecond)
	b := endedTrace("session.query", 2*time.Millisecond)
	rc.Record(a)
	rc.Record(b)
	if got := rc.Get(a.ID()); got == nil || got.Name != "web.request" {
		t.Fatalf("Get(%s) = %v, want the web.request trace", a.ID(), got)
	}
	if got := rc.Get("no-such-id"); got != nil {
		t.Fatalf("Get(no-such-id) = %v, want nil", got)
	}
	named := rc.Traces(TraceFilter{Name: "session.query"})
	if len(named) != 1 || named[0].ID != b.ID() {
		t.Fatalf("Traces(Name=session.query) = %v, want [%s]", ids(named), b.ID())
	}
}

// TestRecorderConcurrent hammers Record from many goroutines while readers
// snapshot and Get — under -race this is the data-race gate for the rings.
func TestRecorderConcurrent(t *testing.T) {
	rc := NewRecorder(RecorderOptions{
		RecentSize: 8, SlowSize: 8,
		SampleEvery: 2, SlowThreshold: 100 * time.Millisecond,
	})
	const writers, each = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				dur := time.Millisecond
				if i%10 == 0 {
					dur = time.Second
				}
				rc.Record(endedTrace("step", dur))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			for _, tr := range rc.Traces(TraceFilter{}) {
				rc.Get(tr.ID)
			}
		}
	}()
	wg.Wait()
	<-done
	if got := rc.Traces(TraceFilter{SlowOnly: true}); len(got) != 8 {
		t.Errorf("slow ring holds %d, want full 8", len(got))
	}
}

func TestRecorderHandler(t *testing.T) {
	rc := NewRecorder(RecorderOptions{SampleEvery: 1})
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	rc.recent.add(&TraceRecord{
		ID: "req-1", Name: "web.request", Start: base, Dur: 3 * time.Millisecond,
		Spans: []SpanRecord{
			{Name: "web.request", Depth: 0, Dur: 3 * time.Millisecond},
			{Name: "session.query", Depth: 1, Offset: time.Millisecond, Dur: 2 * time.Millisecond,
				Attrs: []Attr{{Key: "items", Value: "42"}}},
		},
	})
	rc.slow.add(&TraceRecord{
		ID: "req-2", Name: "session.overview", Start: base.Add(time.Second),
		Dur: 400 * time.Millisecond, Slow: true,
		Spans: []SpanRecord{{Name: "session.overview", Depth: 0, Dur: 400 * time.Millisecond}},
	})
	h := rc.Handler()

	get := func(path string) (int, string, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String(), rec.Header().Get("Content-Type")
	}

	// List: both traces, newest first.
	code, body, ct := get("/debug/traces")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("list = %d %s", code, ct)
	}
	var list struct {
		Traces []traceSummary `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("list body: %v\n%s", err, body)
	}
	if len(list.Traces) != 2 || list.Traces[0].ID != "req-2" || list.Traces[1].ID != "req-1" {
		t.Fatalf("list = %+v, want [req-2 req-1]", list.Traces)
	}
	if list.Traces[0].Spans != 1 || !list.Traces[0].Slow {
		t.Errorf("req-2 summary = %+v, want spans=1 slow=true", list.Traces[0])
	}

	// ?slow=1 keeps only the tail-sampled trace.
	_, body, _ = get("/debug/traces?slow=1")
	if strings.Contains(body, "req-1") || !strings.Contains(body, "req-2") {
		t.Errorf("?slow=1 = %s, want req-2 only", body)
	}

	// ?name= filters by root span name.
	_, body, _ = get("/debug/traces?name=web.request")
	if strings.Contains(body, "req-2") || !strings.Contains(body, "req-1") {
		t.Errorf("?name=web.request = %s, want req-1 only", body)
	}

	// One trace: full span JSON.
	code, body, _ = get("/debug/traces/req-1")
	if code != 200 {
		t.Fatalf("trace page = %d", code)
	}
	var tr TraceRecord
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace body: %v\n%s", err, body)
	}
	if len(tr.Spans) != 2 || tr.Spans[1].Name != "session.query" || tr.Spans[1].Depth != 1 {
		t.Fatalf("trace spans = %+v", tr.Spans)
	}

	// ?format=text renders the indented tree.
	code, body, ct = get("/debug/traces/req-1?format=text")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text trace = %d %s", code, ct)
	}
	if !strings.Contains(body, "web.request") || !strings.Contains(body, "  session.query") ||
		!strings.Contains(body, "items=42") {
		t.Errorf("text tree:\n%s", body)
	}

	// Unknown ID is a 404, not an empty 200.
	if code, _, _ = get("/debug/traces/nope"); code != 404 {
		t.Errorf("unknown trace = %d, want 404", code)
	}
}

package obs

import (
	"context"
	"strings"
	"testing"
)

// TestSpanTreeAssembly checks that StartSpan attaches children through the
// context and the tree survives assembly from nested calls.
func TestSpanTreeAssembly(t *testing.T) {
	ctx, root := StartTrace(context.Background(), "step")
	if !Enabled(ctx) {
		t.Fatal("Enabled = false under StartTrace")
	}

	qctx, q := StartSpan(ctx, "query")
	_, p := StartSpan(qctx, "pred")
	p.SetInt("results", 42)
	p.End()
	q.End()

	_, pane := StartSpan(ctx, "pane")
	pane.SetAttr("advisor", "related items")
	pane.End()
	root.End()

	if got := root.Count(); got != 4 {
		t.Errorf("Count() = %d, want 4", got)
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "query" || kids[1].Name() != "pane" {
		t.Fatalf("root children = %v", kids)
	}
	grand := kids[0].Children()
	if len(grand) != 1 || grand[0].Name() != "pred" {
		t.Fatalf("query children = %v", grand)
	}
	attrs := grand[0].Attrs()
	if len(attrs) != 1 || attrs[0] != (Attr{"results", "42"}) {
		t.Errorf("pred attrs = %v", attrs)
	}
	if root.Duration() <= 0 {
		t.Error("root duration not set by End")
	}

	var sb strings.Builder
	root.WriteTree(&sb)
	out := sb.String()
	for _, want := range []string{"step", "  query", "    pred", "results=42", "  pane", "advisor=related items"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTree output missing %q:\n%s", want, out)
		}
	}
}

// TestSpanDisabled pins the opt-in contract: without StartTrace every span
// operation is a nil-safe no-op and the context is returned unchanged.
func TestSpanDisabled(t *testing.T) {
	ctx := context.Background()
	if Enabled(ctx) {
		t.Fatal("Enabled = true on bare context")
	}
	ctx2, sp := StartSpan(ctx, "query")
	if sp != nil {
		t.Fatal("StartSpan returned a span without a trace")
	}
	if ctx2 != ctx {
		t.Error("StartSpan changed the context without a trace")
	}
	// All methods must be nil-safe.
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.End()
	if sp.Name() != "" || sp.Duration() != 0 || sp.Count() != 0 {
		t.Error("nil span leaked state")
	}
	if sp.Attrs() != nil || sp.Children() != nil {
		t.Error("nil span returned attrs/children")
	}
	var sb strings.Builder
	sp.WriteTree(&sb)
	if sb.Len() != 0 {
		t.Errorf("nil WriteTree wrote %q", sb.String())
	}
	if FromContext(ctx) != nil {
		t.Error("FromContext non-nil on bare context")
	}
}

// TestSpanConcurrentChildren attaches children from parallel goroutines —
// the reactor-round shape — and must pass under -race.
func TestSpanConcurrentChildren(t *testing.T) {
	ctx, root := StartTrace(context.Background(), "run")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			_, sp := StartSpan(ctx, "analyst")
			sp.SetInt("suggestions", 1)
			sp.End()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	if got := len(root.Children()); got != 8 {
		t.Errorf("children = %d, want 8", got)
	}
}

package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// Runtime telemetry (the runtime.* namespace): process vitals sampled
// periodically from runtime/metrics so /debug/metrics shows scheduler and
// heap state next to the pipeline's own instruments. Gauges hold the most
// recent sample; GC pauses accumulate into a histogram via per-sample
// deltas of the runtime's own pause distribution.
var (
	rtGoroutines = NewGauge("runtime.goroutines")
	rtGomaxprocs = NewGauge("runtime.gomaxprocs")
	rtHeapLive   = NewGauge("runtime.heap.live.bytes")
	rtHeapIdle   = NewGauge("runtime.heap.idle.bytes")
	rtGCCycles   = NewGauge("runtime.gc.cycles")
	rtGCPauseNS  = NewHistogram("runtime.gc.pause.ns")
)

// The runtime/metrics keys the sampler reads. Order matters: sample()
// indexes into the batch by position.
const (
	rtKeyGoroutines = "/sched/goroutines:goroutines"
	rtKeyGomaxprocs = "/sched/gomaxprocs:threads"
	rtKeyHeapLive   = "/memory/classes/heap/objects:bytes"
	rtKeyHeapFree   = "/memory/classes/heap/free:bytes"
	rtKeyHeapRel    = "/memory/classes/heap/released:bytes"
	rtKeyGCCycles   = "/gc/cycles/total:gc-cycles"
	rtKeyGCPauses   = "/sched/pauses/total/gc:seconds"
)

// runtimeSampler owns the sample batch and the previous GC-pause
// distribution, so each tick observes only the pauses that happened since
// the last one.
type runtimeSampler struct {
	batch      []metrics.Sample
	prevPauses *metrics.Float64Histogram
}

func newRuntimeSampler() *runtimeSampler {
	keys := []string{
		rtKeyGoroutines, rtKeyGomaxprocs, rtKeyHeapLive,
		rtKeyHeapFree, rtKeyHeapRel, rtKeyGCCycles, rtKeyGCPauses,
	}
	batch := make([]metrics.Sample, len(keys))
	for i, k := range keys {
		batch[i].Name = k
	}
	return &runtimeSampler{batch: batch}
}

// sample reads one batch and publishes it into the runtime.* metrics.
func (rs *runtimeSampler) sample() {
	metrics.Read(rs.batch)
	for _, s := range rs.batch {
		switch s.Name {
		case rtKeyGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				rtGoroutines.Set(int64(s.Value.Uint64()))
			}
		case rtKeyGomaxprocs:
			if s.Value.Kind() == metrics.KindUint64 {
				rtGomaxprocs.Set(int64(s.Value.Uint64()))
			}
		case rtKeyHeapLive:
			if s.Value.Kind() == metrics.KindUint64 {
				rtHeapLive.Set(int64(s.Value.Uint64()))
			}
		case rtKeyHeapFree:
			if s.Value.Kind() == metrics.KindUint64 {
				// Idle = free (reusable, retained) + released (returned to
				// the OS); the released part is added below.
				rtHeapIdle.Set(int64(s.Value.Uint64()))
			}
		case rtKeyHeapRel:
			if s.Value.Kind() == metrics.KindUint64 {
				rtHeapIdle.Add(int64(s.Value.Uint64()))
			}
		case rtKeyGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				rtGCCycles.Set(int64(s.Value.Uint64()))
			}
		case rtKeyGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				rs.observePauseDelta(s.Value.Float64Histogram())
			}
		}
	}
}

// observePauseDelta feeds the growth of the runtime's cumulative pause
// distribution since the previous sample into runtime.gc.pause.ns, one
// Observe per new pause at its bucket midpoint. Bucket layouts are stable
// across reads of the same key, so counts are comparable index by index.
func (rs *runtimeSampler) observePauseDelta(cur *metrics.Float64Histogram) {
	prev := rs.prevPauses
	for i, n := range cur.Counts {
		var d uint64 = n
		if prev != nil && i < len(prev.Counts) {
			d = n - prev.Counts[i]
		}
		if d == 0 {
			continue
		}
		ns := pauseBucketNS(cur.Buckets, i)
		for ; d > 0; d-- {
			rtGCPauseNS.Observe(ns)
		}
	}
	// Keep our own copy: the runtime may reuse the sample's backing arrays.
	cp := &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), cur.Counts...),
		Buckets: append([]float64(nil), cur.Buckets...),
	}
	rs.prevPauses = cp
}

// pauseBucketNS returns a representative duration (ns) for counts bucket
// i of a runtime Float64Histogram: the midpoint of its bounds, clamped
// away from the ±Inf edge buckets.
func pauseBucketNS(bounds []float64, i int) int64 {
	lo, hi := bounds[i], bounds[i+1]
	if math.IsInf(lo, -1) {
		lo = 0
	}
	if math.IsInf(hi, 1) {
		hi = lo
	}
	return int64((lo + hi) / 2 * float64(time.Second))
}

// StartRuntimeSampler samples runtime telemetry every interval (default
// 10s for interval <= 0) until the returned stop function is called. One
// sample is taken synchronously before returning, so the runtime.* gauges
// are live immediately — short-lived processes (magnet-eval) get at least
// that one reading.
func StartRuntimeSampler(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	rs := newRuntimeSampler()
	rs.sample()
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() { //magnet-vet:ignore gohygiene // process-lifecycle ticker, not pipeline fan-out
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rs.sample()
			case <-quit:
				return
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

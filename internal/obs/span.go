package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage of a navigation step. Spans form a tree rooted
// by StartTrace; StartSpan attaches children through the context. Tracing
// is strictly opt-in: on a context without a trace, StartSpan returns a
// nil span whose methods all no-op, so instrumented code pays only a
// context lookup when tracing is off.
//
// A span is written by the goroutine that started it; child registration
// is mutex-guarded so parallel stages may attach concurrently.
type Span struct {
	name  string
	start time.Time
	dur   time.Duration

	// root points at the trace root (itself for roots), so any span can
	// reach the trace ID without walking parents. Set at creation, never
	// mutated.
	root *Span
	// id is the trace ID; set on roots only, by StartTrace (generated) or
	// SetTraceID (the web middleware stamping its request ID) before any
	// concurrent child activity.
	id string

	mu sync.Mutex
	// attrs and children are appended during the span's lifetime;
	// guarded by mu.
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span (result cardinality,
// suggestion counts, analyst names).
type Attr struct {
	Key   string
	Value string
}

type spanKey struct{}

// Trace IDs are a per-process random prefix plus an atomic sequence
// number — unique enough to join a captured trace against access-log
// lines and histogram exemplars, and cheap enough to mint per trace.
var (
	traceIDPrefix = func() string {
		b := make([]byte, 4)
		if _, err := rand.Read(b); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b)
	}()
	traceIDSeq atomic.Uint64
)

func newTraceID() string {
	return traceIDPrefix + "-" + strconv.FormatUint(traceIDSeq.Add(1), 10)
}

// StartTrace returns a context carrying a new root span with a freshly
// minted trace ID. Everything started from the returned context via
// StartSpan becomes part of the tree. Call End on the root before
// rendering or recording it.
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now(), id: newTraceID()}
	sp.root = sp
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartSpan starts a child span if ctx carries a trace, returning the
// child context and span; otherwise it returns ctx unchanged and a nil
// span (all Span methods are nil-safe).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now(), root: parent.root}
	parent.mu.Lock()
	parent.children = append(parent.children, sp)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartAlways starts a child span when ctx already carries a trace, or a
// new trace root otherwise. The returned bool reports root ownership: the
// caller that got true is responsible for handing the ended span to a
// Recorder — this is how navigation steps are captured even outside a web
// request (magnet-eval, the CLI, tests).
func StartAlways(ctx context.Context, name string) (context.Context, *Span, bool) {
	if sctx, sp := StartSpan(ctx, name); sp != nil {
		return sctx, sp, false
	}
	sctx, sp := StartTrace(ctx, name)
	return sctx, sp, true
}

// FromContext returns the current span (nil when tracing is off).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Enabled reports whether ctx carries a trace.
func Enabled(ctx context.Context) bool { return FromContext(ctx) != nil }

// TraceID returns the trace ID of the trace ctx runs under ("" when
// tracing is off) — the key histogram exemplars and the flight recorder
// share with the access log.
func TraceID(ctx context.Context) string {
	return FromContext(ctx).Root().ID()
}

// Root returns the trace root of the span's tree (nil for nil).
func (s *Span) Root() *Span {
	if s == nil {
		return nil
	}
	return s.root
}

// IsRoot reports whether s is a trace root.
func (s *Span) IsRoot() bool { return s != nil && s.root == s }

// ID returns the span's trace ID ("" for nil or non-root spans).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// SetTraceID overwrites the root's generated trace ID — the web
// middleware stamps its request ID here so access-log lines, error pages
// and captured traces join on one key. It must be called on the root
// before any concurrent child activity; no-op on nil or non-root spans.
func (s *Span) SetTraceID(id string) {
	if s == nil || s.root != s {
		return
	}
	s.id = id
}

// End fixes the span's duration. Safe on nil and idempotent enough for
// deferred use (a second End overwrites with a longer duration).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur = time.Since(s.start)
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's duration (zero before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// SetAttr annotates the span; no-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value; no-op on nil.
func (s *Span) SetInt(key string, v int) {
	s.SetAttr(key, strconv.Itoa(v))
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Children returns a copy of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Count returns the number of spans in the tree rooted at s (0 for nil).
func (s *Span) Count() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children() {
		n += c.Count()
	}
	return n
}

// WriteTree renders the span tree as an indented duration table:
//
//	navigation-step                   12.4ms
//	  session.query                    3.1ms  items=120
//	    query.eval                     3.0ms  results=120
//	      pred.and                     2.9ms  results=120
//
// Durations are right-padded per line; attrs trail as key=value pairs.
// The rendering is shared with the flight recorder: the span tree is
// frozen into a TraceRecord and rendered from there, so live traces and
// recorded ones print identically.
func (s *Span) WriteTree(w io.Writer) {
	if s == nil {
		return
	}
	Freeze(s).WriteTree(w)
}

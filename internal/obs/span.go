package obs

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Span is one timed stage of a navigation step. Spans form a tree rooted
// by StartTrace; StartSpan attaches children through the context. Tracing
// is strictly opt-in: on a context without a trace, StartSpan returns a
// nil span whose methods all no-op, so instrumented code pays only a
// context lookup when tracing is off.
//
// A span is written by the goroutine that started it; child registration
// is mutex-guarded so parallel stages may attach concurrently.
type Span struct {
	name  string
	start time.Time
	dur   time.Duration

	mu sync.Mutex
	// attrs and children are appended during the span's lifetime;
	// guarded by mu.
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span (result cardinality,
// suggestion counts, analyst names).
type Attr struct {
	Key   string
	Value string
}

type spanKey struct{}

// StartTrace returns a context carrying a new root span. Everything
// started from the returned context via StartSpan becomes part of the
// tree. Call End on the root before rendering it.
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartSpan starts a child span if ctx carries a trace, returning the
// child context and span; otherwise it returns ctx unchanged and a nil
// span (all Span methods are nil-safe).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, sp)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// FromContext returns the current span (nil when tracing is off).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Enabled reports whether ctx carries a trace.
func Enabled(ctx context.Context) bool { return FromContext(ctx) != nil }

// End fixes the span's duration. Safe on nil and idempotent enough for
// deferred use (a second End overwrites with a longer duration).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur = time.Since(s.start)
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's duration (zero before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// SetAttr annotates the span; no-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value; no-op on nil.
func (s *Span) SetInt(key string, v int) {
	s.SetAttr(key, strconv.Itoa(v))
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Children returns a copy of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Count returns the number of spans in the tree rooted at s (0 for nil).
func (s *Span) Count() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children() {
		n += c.Count()
	}
	return n
}

// WriteTree renders the span tree as an indented duration table:
//
//	navigation-step                   12.4ms
//	  session.query                    3.1ms  items=120
//	    query.eval                     3.0ms  results=120
//	      pred.and                     2.9ms  results=120
//
// Durations are right-padded per line; attrs trail as key=value pairs.
func (s *Span) WriteTree(w io.Writer) {
	if s == nil {
		return
	}
	s.writeTree(w, 0)
}

func (s *Span) writeTree(w io.Writer, depth int) {
	label := fmt.Sprintf("%*s%s", depth*2, "", s.name)
	line := fmt.Sprintf("%-40s %12s", label, s.dur.Round(time.Microsecond))
	for _, a := range s.Attrs() {
		line += "  " + a.Key + "=" + a.Value
	}
	fmt.Fprintln(w, line)
	for _, c := range s.Children() {
		c.writeTree(w, depth+1)
	}
}

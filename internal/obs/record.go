package obs

import (
	"fmt"
	"io"
	"time"
)

// SpanRecord is one span of a frozen trace: the tree flattened in
// pre-order, with Depth giving the nesting level (0 = root). Offset is the
// span's start relative to the trace start, so records need no absolute
// timestamps per span.
type SpanRecord struct {
	Name   string        `json:"name"`
	Depth  int           `json:"depth"`
	Offset time.Duration `json:"offset_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// TraceRecord is a completed trace frozen into a compact immutable value:
// what the flight recorder retains after the request is gone. Records are
// never mutated after Freeze, so readers (the /debug/traces handlers, the
// -trace renderer) may share them freely without locks.
type TraceRecord struct {
	ID    string        `json:"id"`
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	// Slow marks a tail-sampled trace (duration over the recorder's
	// threshold at capture time).
	Slow  bool         `json:"slow,omitempty"`
	Spans []SpanRecord `json:"spans"`
}

// Freeze flattens the span tree rooted at s into an immutable TraceRecord.
// The tree must have quiesced (root and descendants ended) — the contract
// every caller already meets, since a trace is frozen only after its
// request or step completed. Freeze allocates — callers keep it off the
// request hot path (the recorder freezes after the root has ended).
func Freeze(s *Span) *TraceRecord {
	if s == nil {
		return nil
	}
	rec := &TraceRecord{
		ID:    s.Root().ID(),
		Name:  s.Name(),
		Start: s.start,
		Dur:   s.Duration(),
		Spans: make([]SpanRecord, 0, s.Count()),
	}
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		rec.Spans = append(rec.Spans, SpanRecord{
			Name:   sp.name,
			Depth:  depth,
			Offset: sp.start.Sub(s.start),
			Dur:    sp.dur,
			Attrs:  sp.Attrs(),
		})
		for _, c := range sp.Children() {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return rec
}

// SpanCount returns the number of spans in the record (0 for nil).
func (r *TraceRecord) SpanCount() int {
	if r == nil {
		return 0
	}
	return len(r.Spans)
}

// StageDurations sums the durations of the root's direct children — the
// per-stage breakdown magnet-eval's -trace CHECK line reports against the
// step total.
func (r *TraceRecord) StageDurations() time.Duration {
	if r == nil {
		return 0
	}
	var total time.Duration
	for _, sp := range r.Spans {
		if sp.Depth == 1 {
			total += sp.Dur
		}
	}
	return total
}

// WriteTree renders the record as the indented duration table Span.WriteTree
// documents — the one renderer both live traces and recorded ones share.
func (r *TraceRecord) WriteTree(w io.Writer) {
	if r == nil {
		return
	}
	for _, sp := range r.Spans {
		label := fmt.Sprintf("%*s%s", sp.Depth*2, "", sp.Name)
		line := fmt.Sprintf("%-40s %12s", label, sp.Dur.Round(time.Microsecond))
		for _, a := range sp.Attrs {
			line += "  " + a.Key + "=" + a.Value
		}
		fmt.Fprintln(w, line)
	}
}

package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestFreezeStructure pins the flattening: pre-order, Depth per nesting
// level, Offset relative to the trace start, attrs copied.
func TestFreezeStructure(t *testing.T) {
	ctx, root := StartTrace(context.Background(), "navigation-step")
	c1ctx, c1 := StartSpan(ctx, "session.query")
	c1.SetInt("items", 7)
	_, g1 := StartSpan(c1ctx, "query.eval")
	g1.End()
	c1.End()
	_, c2 := StartSpan(ctx, "session.pane")
	c2.End()
	root.End()

	rec := Freeze(root)
	if rec.ID != root.ID() || rec.Name != "navigation-step" || rec.Dur != root.Duration() {
		t.Fatalf("record header = %+v, want id=%s name=navigation-step dur=%v", rec, root.ID(), root.Duration())
	}
	names := []string{"navigation-step", "session.query", "query.eval", "session.pane"}
	depths := []int{0, 1, 2, 1}
	if len(rec.Spans) != len(names) {
		t.Fatalf("frozen %d spans, want %d: %+v", len(rec.Spans), len(names), rec.Spans)
	}
	for i, sp := range rec.Spans {
		if sp.Name != names[i] || sp.Depth != depths[i] {
			t.Errorf("span %d = %s@%d, want %s@%d", i, sp.Name, sp.Depth, names[i], depths[i])
		}
		if sp.Offset < 0 || sp.Offset > rec.Dur {
			t.Errorf("span %d offset %v outside [0, %v]", i, sp.Offset, rec.Dur)
		}
	}
	if len(rec.Spans[1].Attrs) != 1 || rec.Spans[1].Attrs[0] != (Attr{"items", "7"}) {
		t.Errorf("session.query attrs = %+v, want items=7", rec.Spans[1].Attrs)
	}
	if rec.SpanCount() != 4 {
		t.Errorf("SpanCount = %d, want 4", rec.SpanCount())
	}
}

func TestStageDurations(t *testing.T) {
	rec := &TraceRecord{Spans: []SpanRecord{
		{Name: "root", Depth: 0, Dur: 10 * time.Millisecond},
		{Name: "a", Depth: 1, Dur: 3 * time.Millisecond},
		{Name: "a.inner", Depth: 2, Dur: 2 * time.Millisecond},
		{Name: "b", Depth: 1, Dur: 4 * time.Millisecond},
	}}
	if got := rec.StageDurations(); got != 7*time.Millisecond {
		t.Errorf("StageDurations = %v, want 7ms (depth-1 spans only)", got)
	}
}

// TestWriteTreeSharedRenderer: a live span tree and its frozen record must
// render byte-identically — the single-renderer contract behind reusing
// TraceRecord.WriteTree from magnet-eval -trace and /debug/traces.
func TestWriteTreeSharedRenderer(t *testing.T) {
	ctx, root := StartTrace(context.Background(), "step")
	_, c := StartSpan(ctx, "child")
	c.SetAttr("k", "v")
	c.End()
	root.End()

	var live, frozen strings.Builder
	root.WriteTree(&live)
	Freeze(root).WriteTree(&frozen)
	if live.String() != frozen.String() {
		t.Errorf("live:\n%s\nfrozen:\n%s", live.String(), frozen.String())
	}
	if !strings.Contains(live.String(), "step") || !strings.Contains(live.String(), "  child") ||
		!strings.Contains(live.String(), "k=v") {
		t.Errorf("tree rendering:\n%s", live.String())
	}
}

func TestFreezeNil(t *testing.T) {
	if Freeze(nil) != nil {
		t.Error("Freeze(nil) != nil")
	}
	var r *TraceRecord
	if r.SpanCount() != 0 || r.StageDurations() != 0 {
		t.Error("nil TraceRecord accessors not zero")
	}
	r.WriteTree(&strings.Builder{}) // must not panic
}

func TestTraceIDs(t *testing.T) {
	ctx, root := StartTrace(context.Background(), "r")
	cctx, child := StartSpan(ctx, "c")
	if root.ID() == "" || !root.IsRoot() {
		t.Fatalf("root id=%q isRoot=%v", root.ID(), root.IsRoot())
	}
	if child.ID() != "" || child.IsRoot() {
		t.Errorf("child id=%q isRoot=%v, want unset non-root", child.ID(), child.IsRoot())
	}
	if child.Root() != root {
		t.Error("child.Root() != root")
	}
	if got := TraceID(cctx); got != root.ID() {
		t.Errorf("TraceID(child ctx) = %q, want root's %q", got, root.ID())
	}
	if got := TraceID(context.Background()); got != "" {
		t.Errorf("TraceID(no trace) = %q, want empty", got)
	}

	// The web middleware stamps its request ID over the generated one.
	root.SetTraceID("req-42")
	if root.ID() != "req-42" || TraceID(cctx) != "req-42" {
		t.Errorf("after SetTraceID: root=%q ctx=%q", root.ID(), TraceID(cctx))
	}
	child.SetTraceID("nope") // non-root: no-op
	if child.ID() != "" || root.ID() != "req-42" {
		t.Error("SetTraceID on a non-root mutated something")
	}

	_, other := StartTrace(context.Background(), "r2")
	if other.ID() == root.ID() {
		t.Error("two traces share an ID")
	}
}

func TestStartAlways(t *testing.T) {
	// Without an ambient trace: a fresh root the caller owns.
	ctx, sp, owned := StartAlways(context.Background(), "step")
	if !owned || !sp.IsRoot() || sp.ID() == "" {
		t.Fatalf("StartAlways bare = owned=%v root=%v id=%q", owned, sp.IsRoot(), sp.ID())
	}
	if TraceID(ctx) != sp.ID() {
		t.Error("returned ctx does not carry the new root")
	}

	// Under an existing trace: a child, not owned.
	tctx, root := StartTrace(context.Background(), "outer")
	_, child, owned := StartAlways(tctx, "step")
	if owned || child.IsRoot() || child.Root() != root {
		t.Errorf("StartAlways nested = owned=%v root=%v", owned, child.IsRoot())
	}
}

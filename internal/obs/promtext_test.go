package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"session.query.ns":       "session_query_ns",
		"web.request.status.2xx": "web_request_status_2xx",
		"a_b:c":                  "a_b:c",
		"9lives":                 "_lives", // leading digit is not a valid start
		"héllo":                  "h_llo",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusGolden pins the exact ?format=prom exposition:
// TYPE lines, cumulative buckets with le labels, exemplar annotations,
// _sum and _count, all in sorted dotted-name order.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(2)
	r.Gauge("b.gauge").Set(-3)
	h := r.Histogram("c.ns")
	h.Observe(1)
	h.ObserveExemplar(2, "req-7")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_count counter
a_count 2
# TYPE b_gauge gauge
b_gauge -3
# TYPE c_ns histogram
c_ns_bucket{le="1"} 1
c_ns_bucket{le="3"} 2 # {trace_id="req-7"} 2
c_ns_bucket{le="+Inf"} 2
c_ns_sum 3
c_ns_count 2
`
	if sb.String() != want {
		t.Errorf("WritePrometheus =\n%s\nwant\n%s", sb.String(), want)
	}
}

func TestHandlerPromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.count").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics?format=prom", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, "x_count 1") {
		t.Errorf("body missing x_count:\n%s", body)
	}
}

// TestSnapshotExemplars: only buckets that received a traced observation
// carry exemplars, and the JSON shape without exemplars is unchanged.
func TestSnapshotExemplars(t *testing.T) {
	var h Histogram
	h.Observe(1) // bucket le=1, no exemplar
	h.ObserveExemplar(5, "t-1")
	h.ObserveExemplar(6, "t-2") // same bucket (le=7): latest wins
	h.ObserveExemplar(100, "")  // empty trace ID: plain Observe

	s := h.Snapshot()
	if len(s.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v, want one (le=7)", s.Exemplars)
	}
	e := s.Exemplars[0]
	if e.Le != 7 || e.Value != 6 || e.TraceID != "t-2" {
		t.Errorf("exemplar = %+v, want le=7 v=6 trace=t-2", e)
	}
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4", s.Count)
	}
}

func TestQuantile(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}

	// Uniform 1..1024: base-2 buckets make p50 land almost exactly at the
	// true median; the estimate must stay within one bucket's width.
	var h Histogram
	for v := int64(1); v <= 1024; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 448 || p50 > 576 {
		t.Errorf("p50 = %d, want ~512 (within the le=1023 bucket walk)", p50)
	}
	if p0 := s.Quantile(0); p0 != 0 {
		t.Errorf("p0 = %d, want 0", p0)
	}
	// q=1 resolves to the last bucket's upper bound (1024 lives in le=2047).
	if p100 := s.Quantile(1); p100 != 2047 {
		t.Errorf("p100 = %d, want the le=2047 bound", p100)
	}
	// Out-of-range q clamps rather than panics.
	if s.Quantile(-1) != 0 || s.Quantile(2) != 2047 {
		t.Error("q outside [0,1] did not clamp")
	}

	// Monotonic in q.
	prev := int64(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Errorf("Quantile not monotone: q=%v gave %d after %d", q, v, prev)
		}
		prev = v
	}

	// Point mass: every observation is 7 (bucket le=7, lower bound 3).
	var pm Histogram
	for i := 0; i < 100; i++ {
		pm.Observe(7)
	}
	if got := pm.Snapshot().Quantile(1); got != 7 {
		t.Errorf("point-mass p100 = %d, want 7", got)
	}
}

package obs

import (
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Flight-recorder accounting: every completed root is counted, and the
// retention decision (kept in a ring vs dropped by head sampling) is
// visible on /debug/metrics next to the rings it feeds.
var (
	traceSeen    = NewCounter("obs.trace.seen")
	traceSampled = NewCounter("obs.trace.sampled")
	traceSlow    = NewCounter("obs.trace.slow")
	traceDropped = NewCounter("obs.trace.dropped")
)

// ring is a fixed-size lock-free buffer of frozen traces: an atomic
// cursor claims slots, each slot is an atomic pointer swap. Writers never
// block; a reader may see a slot mid-overwrite as either the old or the
// new record, both immutable.
type ring struct {
	slots []atomic.Pointer[TraceRecord]
	next  atomic.Uint64
}

func newRing(size int) ring {
	return ring{slots: make([]atomic.Pointer[TraceRecord], size)}
}

func (r *ring) add(t *TraceRecord) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// snapshot appends the ring's live records to dst, newest first.
func (r *ring) snapshot(dst []*TraceRecord) []*TraceRecord {
	n := r.next.Load()
	size := uint64(len(r.slots))
	count := n
	if count > size {
		count = size
	}
	for k := uint64(0); k < count; k++ {
		// Walk backwards from the most recently claimed slot.
		if t := r.slots[(n-1-k)%size].Load(); t != nil {
			dst = append(dst, t)
		}
	}
	return dst
}

// RecorderOptions sizes a Recorder. Zero values take the defaults noted
// per field.
type RecorderOptions struct {
	// RecentSize is the head-sampled ring's capacity (default 256).
	RecentSize int
	// SlowSize is the tail-sampled slow ring's capacity (default 64). Slow
	// traces live in their own ring so a flood of fast requests cannot
	// evict the captures that explain a latency spike.
	SlowSize int
	// SampleEvery keeps 1 in N completed traces in the recent ring
	// (default 16; 1 keeps everything).
	SampleEvery int
	// SlowThreshold tail-samples every trace at least this long
	// (default 250ms).
	SlowThreshold time.Duration
}

// Recorder is the flight recorder: completed trace roots are frozen into
// immutable TraceRecords and retained in two fixed-size rings — 1-in-N
// head-sampled recents, plus every trace slower than the threshold in a
// separate slow ring. Record is lock-light (atomic sampling decision, then
// freeze + atomic slot swap, all after the request has finished); readers
// snapshot without blocking writers.
type Recorder struct {
	recent      ring
	slow        ring
	seq         atomic.Uint64
	sampleEvery atomic.Uint64
	slowNS      atomic.Int64
}

// NewRecorder returns a recorder with the given retention policy.
func NewRecorder(opts RecorderOptions) *Recorder {
	if opts.RecentSize <= 0 {
		opts.RecentSize = 256
	}
	if opts.SlowSize <= 0 {
		opts.SlowSize = 64
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 16
	}
	if opts.SlowThreshold <= 0 {
		opts.SlowThreshold = 250 * time.Millisecond
	}
	rc := &Recorder{
		recent: newRing(opts.RecentSize),
		slow:   newRing(opts.SlowSize),
	}
	rc.sampleEvery.Store(uint64(opts.SampleEvery))
	rc.slowNS.Store(int64(opts.SlowThreshold))
	return rc
}

// Records is the process-wide flight recorder /debug/traces serves and
// the session layer feeds.
var Records = NewRecorder(RecorderOptions{})

// SlowThreshold returns the tail-sampling threshold.
func (rc *Recorder) SlowThreshold() time.Duration {
	return time.Duration(rc.slowNS.Load())
}

// SetSlowThreshold changes the tail-sampling threshold (values <= 0 keep
// every trace in the slow ring).
func (rc *Recorder) SetSlowThreshold(d time.Duration) {
	rc.slowNS.Store(int64(d))
}

// SetSampleEvery changes head sampling to 1-in-n (n <= 1 keeps every
// trace in the recent ring).
func (rc *Recorder) SetSampleEvery(n int) {
	if n < 1 {
		n = 1
	}
	rc.sampleEvery.Store(uint64(n))
}

// Record hands a completed trace root to the recorder. Non-root or
// un-ended spans are ignored. The slow decision is made against the
// threshold at call time; slow traces always survive, recents keep 1-in-N.
func (rc *Recorder) Record(root *Span) {
	if rc == nil || !root.IsRoot() || root.Duration() == 0 {
		return
	}
	traceSeen.Inc()
	n := rc.seq.Add(1)
	slow := root.Duration() >= rc.SlowThreshold()
	every := rc.sampleEvery.Load()
	sampled := every <= 1 || n%every == 1
	if !slow && !sampled {
		traceDropped.Inc()
		return
	}
	rec := Freeze(root)
	rec.Slow = slow
	if slow {
		traceSlow.Inc()
		rc.slow.add(rec)
	} else {
		traceSampled.Inc()
		rc.recent.add(rec)
	}
}

// Get returns the retained trace with the given ID (nil if evicted or
// never kept). The slow ring is searched first.
func (rc *Recorder) Get(id string) *TraceRecord {
	for _, t := range rc.Traces(TraceFilter{}) {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// TraceFilter selects retained traces: zero value means everything.
type TraceFilter struct {
	// SlowOnly restricts to the tail-sampled slow ring.
	SlowOnly bool
	// Name keeps only traces with this root span name.
	Name string
}

// Traces snapshots the retained records matching f, newest first (slow
// and recent rings merged by start time).
func (rc *Recorder) Traces(f TraceFilter) []*TraceRecord {
	var out []*TraceRecord
	out = rc.slow.snapshot(out)
	if !f.SlowOnly {
		out = rc.recent.snapshot(out)
	}
	if f.Name != "" {
		kept := out[:0]
		for _, t := range out {
			if t.Name == f.Name {
				kept = append(kept, t)
			}
		}
		out = kept
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// traceSummary is the list-endpoint shape: enough to pick a trace without
// shipping every span.
type traceSummary struct {
	ID    string        `json:"id"`
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	Slow  bool          `json:"slow"`
	Spans int           `json:"spans"`
}

// Handler serves the recorder: mount it at /debug/traces (and
// /debug/traces/ for the per-trace pages).
//
//	GET /debug/traces            JSON list of retained traces, newest first
//	    ?slow=1                  slow ring only
//	    ?name=web.request        filter by root span name
//	GET /debug/traces/{id}       one trace: full span JSON
//	    ?format=text             the WriteTree rendering instead
func (rc *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		const prefix = "/debug/traces"
		rest := strings.TrimPrefix(req.URL.Path, prefix)
		rest = strings.Trim(rest, "/")
		if rest == "" {
			rc.serveList(w, req)
			return
		}
		rc.serveTrace(w, req, rest)
	})
}

func (rc *Recorder) serveList(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	traces := rc.Traces(TraceFilter{
		SlowOnly: q.Get("slow") == "1",
		Name:     q.Get("name"),
	})
	summaries := make([]traceSummary, len(traces))
	for i, t := range traces {
		summaries[i] = traceSummary{
			ID: t.ID, Name: t.Name, Start: t.Start, Dur: t.Dur,
			Slow: t.Slow, Spans: len(t.Spans),
		}
	}
	writeBufferedJSON(w, map[string]any{"traces": summaries})
}

func (rc *Recorder) serveTrace(w http.ResponseWriter, req *http.Request, id string) {
	t := rc.Get(id)
	if t == nil {
		http.Error(w, "trace not retained (evicted, sampled out, or never seen)", http.StatusNotFound)
		return
	}
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		t.WriteTree(w)
		return
	}
	writeBufferedJSON(w, t)
}

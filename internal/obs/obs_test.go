package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Counter.Value() = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Value(); got != -3 {
		t.Errorf("Gauge.Value() = %d, want -3", got)
	}
}

// TestHistogramBuckets pins the bucket-placement rule: bucket i counts
// observations v with bits.Len64(v) == i, snapshotted with inclusive upper
// bound 2^i − 1.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	h.Observe(1 << 60) // beyond the last bound; absorbed by the last bucket

	if got := h.Count(); got != 7 {
		t.Errorf("Count() = %d, want 7", got)
	}
	if got := h.Sum(); got != 10+1<<60 {
		t.Errorf("Sum() = %d, want %d", got, 10+1<<60)
	}
	s := h.Snapshot()
	want := []HistBucket{
		{Le: 0, Count: 2},                      // -5 (clamped), 0
		{Le: 1, Count: 1},                      // 1
		{Le: 3, Count: 2},                      // 2, 3
		{Le: 7, Count: 1},                      // 4
		{Le: 1<<(HistBuckets-1) - 1, Count: 1}, // 1<<60 overflow
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("Snapshot().Buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

// TestConcurrent hammers one counter and one histogram from many
// goroutines; run under -race this doubles as the data-race gate for the
// hot path.
func TestConcurrent(t *testing.T) {
	const goroutines, each = 16, 2000
	var c Counter
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*each {
		t.Errorf("Counter.Value() = %d, want %d", got, goroutines*each)
	}
	if got := h.Count(); got != goroutines*each {
		t.Errorf("Histogram.Count() = %d, want %d", got, goroutines*each)
	}
	var inBuckets uint64
	for _, b := range h.Snapshot().Buckets {
		inBuckets += b.Count
	}
	if inBuckets != goroutines*each {
		t.Errorf("bucket counts sum to %d, want %d", inBuckets, goroutines*each)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter(x) returned distinct instances")
	}
	if r.Histogram("x.ns") != r.Histogram("x.ns") {
		t.Error("Histogram(x.ns) returned distinct instances")
	}
	if r.Gauge("x.g") != r.Gauge("x.g") {
		t.Error("Gauge(x.g) returned distinct instances")
	}
	other := NewRegistry()
	r.Counter("x").Inc()
	if other.Counter("x").Value() != 0 {
		t.Error("registries share state")
	}
}

// TestWriteJSONGolden pins the exact /debug/metrics shape: one flat JSON
// object, names sorted, counters/gauges as numbers, histograms as
// {count, sum, buckets}.
func TestWriteJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(2)
	r.Gauge("b.gauge").Set(-3)
	h := r.Histogram("c.ns")
	h.Observe(1)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{
"a.count": 2,
"b.gauge": -3,
"c.ns": {"count":2,"sum":3,"buckets":[{"le":1,"n":1},{"le":3,"n":1}]}
}
`
	if sb.String() != want {
		t.Errorf("WriteJSON =\n%s\nwant\n%s", sb.String(), want)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("query.eval.count").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("body is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if m["query.eval.count"] != float64(1) {
		t.Errorf("query.eval.count = %v, want 1", m["query.eval.count"])
	}
}

// TestHistSnapshotSub: the delta between two snapshots of a growing
// histogram is exactly the distribution of the observations in between.
func TestHistSnapshotSub(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(100)
	before := h.Snapshot()
	h.Observe(3)
	h.Observe(5000)
	h.Observe(5001)
	delta := h.Snapshot().Sub(before)
	var want Histogram
	want.Observe(3)
	want.Observe(5000)
	want.Observe(5001)
	ws := want.Snapshot()
	if delta.Count != ws.Count || delta.Sum != ws.Sum {
		t.Fatalf("delta count/sum = %d/%d, want %d/%d", delta.Count, delta.Sum, ws.Count, ws.Sum)
	}
	if len(delta.Buckets) != len(ws.Buckets) {
		t.Fatalf("delta buckets = %+v, want %+v", delta.Buckets, ws.Buckets)
	}
	for i := range ws.Buckets {
		if delta.Buckets[i] != ws.Buckets[i] {
			t.Fatalf("delta bucket %d = %+v, want %+v", i, delta.Buckets[i], ws.Buckets[i])
		}
	}
	// Sub of a snapshot with itself is empty.
	s := h.Snapshot()
	if z := s.Sub(s); z.Count != 0 || z.Sum != 0 || len(z.Buckets) != 0 {
		t.Fatalf("self-Sub not empty: %+v", z)
	}
}

// TestHistSnapshotAdd: the bucket-wise sum of two snapshots matches one
// histogram observing both streams, and quantiles agree.
func TestHistSnapshotAdd(t *testing.T) {
	var a, b, both Histogram
	for _, v := range []int64{1, 10, 200} {
		a.Observe(v)
		both.Observe(v)
	}
	for _, v := range []int64{7, 9, 4000, 4001} {
		b.Observe(v)
		both.Observe(v)
	}
	sum := a.Snapshot().Add(b.Snapshot())
	ws := both.Snapshot()
	if sum.Count != ws.Count || sum.Sum != ws.Sum {
		t.Fatalf("sum count/sum = %d/%d, want %d/%d", sum.Count, sum.Sum, ws.Count, ws.Sum)
	}
	if len(sum.Buckets) != len(ws.Buckets) {
		t.Fatalf("sum buckets = %+v, want %+v", sum.Buckets, ws.Buckets)
	}
	for i := range ws.Buckets {
		if sum.Buckets[i] != ws.Buckets[i] {
			t.Fatalf("sum bucket %d = %+v, want %+v", i, sum.Buckets[i], ws.Buckets[i])
		}
	}
	for _, q := range []float64{0.5, 0.99} {
		if sum.Quantile(q) != ws.Quantile(q) {
			t.Fatalf("q%.2f: sum %d, want %d", q, sum.Quantile(q), ws.Quantile(q))
		}
	}
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName converts a dotted metric name to the Prometheus identifier
// charset: dots (and anything else outside [a-zA-Z0-9_:]) become
// underscores ("session.query.ns" → "session_query_ns").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (the /debug/metrics?format=prom shape): counters and gauges as
// single samples, histograms as cumulative _bucket series with `le`
// labels plus _sum and _count. Buckets that carry an exemplar are
// annotated OpenMetrics-style (`# {trace_id="..."} value`), linking the
// bucket to a trace retained by the flight recorder. Metrics are emitted
// in sorted (original dotted) name order so output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type namedCounter struct {
		name string
		c    *Counter
	}
	type namedGauge struct {
		name string
		g    *Gauge
	}
	type namedHist struct {
		name string
		h    *Histogram
	}
	counters := make([]namedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, namedCounter{name, c})
	}
	gauges := make([]namedGauge, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, namedGauge{name, g})
	}
	hists := make([]namedHist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, namedHist{name, h})
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	for _, nc := range counters {
		pn := promName(nc.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, nc.c.Value()); err != nil {
			return err
		}
	}
	for _, ng := range gauges {
		pn := promName(ng.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, ng.g.Value()); err != nil {
			return err
		}
	}
	for _, nh := range hists {
		if err := writePromHistogram(w, promName(nh.name), nh.h.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, pn string, s HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	exemplarFor := func(le uint64) (Exemplar, bool) {
		for _, e := range s.Exemplars {
			if e.Le == le {
				return e, true
			}
		}
		return Exemplar{}, false
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		line := fmt.Sprintf("%s_bucket{le=\"%d\"} %d", pn, b.Le, cum)
		if e, ok := exemplarFor(b.Le); ok {
			line += fmt.Sprintf(" # {trace_id=\"%s\"} %d", e.TraceID, e.Value)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pn, s.Count, pn, s.Sum, pn, s.Count)
	return err
}

// FuzzPlanEquivalence decodes arbitrary bytes into a conjunction over the
// recipes vocabulary and checks the planner's answer is byte-identical to
// the naive engine's on every backing: in-memory, frozen segments, and
// 3-way sharded scatter-gather. The planners persist across runs, so the
// fuzzer also exercises hit and parent-delta paths against a warm cache.
package plan_test

import (
	"os"
	"reflect"
	"sync"
	"testing"

	"context"

	"magnet/internal/core"
	"magnet/internal/dataload"
	"magnet/internal/datasets/recipes"
	"magnet/internal/plan"
	"magnet/internal/query"
)

// fuzzWorld is the shared corpus: built once per process (fuzz workers are
// separate processes, each builds its own).
type fuzzWorld struct {
	mem, seg *core.Magnet
	memPl    *plan.Planner
	segPl    *plan.Planner
	shPl     *plan.Planner
	sharding *query.Sharding
	err      error
}

var (
	fuzzOnce sync.Once
	world    fuzzWorld
)

func fuzzSetup() *fuzzWorld {
	fuzzOnce.Do(func() {
		g, allSubjects, err := dataload.Load(dataload.Spec{Dataset: "recipes", Recipes: 120, Seed: 7})
		if err != nil {
			world.err = err
			return
		}
		world.mem = core.Open(g, core.Options{IndexAllSubjects: allSubjects, PlanCache: -1})
		dir, err := os.MkdirTemp("", "plan-fuzz-*")
		if err != nil {
			world.err = err
			return
		}
		if _, err := world.mem.WriteSegments(dir, "recipes", nil); err != nil {
			world.err = err
			return
		}
		if world.seg, world.err = core.OpenSegments(dir, core.Options{PlanCache: -1}); world.err != nil {
			return
		}
		world.memPl = plan.New(1, 64)
		world.segPl = plan.New(1, 64)
		world.shPl = plan.New(3, 64)
		world.sharding = query.BuildSharding(3, world.mem.Engine().Universe().IDs())
	})
	return &world
}

var (
	fuzzCuisines = []string{"Greek", "Mexican", "Thai", "French", "Indian"}
	fuzzIngs     = []string{"Parsley", "Walnuts", "Feta", "Chicken", "Rice", "Beans"}
	fuzzWords    = []string{"chicken", "bean", "salad", "soup", "walnut", "rice"}
)

// decodeTerm consumes bytes from data and returns one predicate plus the
// remaining bytes; nil predicate means the stream ran dry.
func decodeTerm(data []byte) (query.Predicate, []byte) {
	if len(data) < 2 {
		return nil, nil
	}
	kind, v := data[0]%8, int(data[1])
	rest := data[2:]
	switch kind {
	case 0:
		return query.TypeIs(recipes.ClassRecipe), rest
	case 1:
		return query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine(fuzzCuisines[v%len(fuzzCuisines)])}, rest
	case 2:
		return query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient(fuzzIngs[v%len(fuzzIngs)])}, rest
	case 3:
		return query.Keyword{Text: fuzzWords[v%len(fuzzWords)]}, rest
	case 4:
		if len(rest) < 1 {
			return nil, nil
		}
		lo := float64(v % 10)
		hi := lo + float64(rest[0]%10)
		return query.Between(recipes.PropServings, lo, hi), rest[1:]
	case 5:
		inner, rest2 := decodeTerm(append([]byte{data[1] % 4}, rest...))
		if inner == nil {
			return nil, nil
		}
		return query.Not{P: inner}, rest2
	case 6:
		return query.Or{Ps: []query.Predicate{
			query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine(fuzzCuisines[v%len(fuzzCuisines)])},
			query.Keyword{Text: fuzzWords[v%len(fuzzWords)]},
		}}, rest
	default:
		return query.Between(recipes.PropPrepTime, 0, float64(v%120)), rest
	}
}

func decodeQuery(data []byte) query.Query {
	q := query.NewQuery()
	for len(q.Terms) < 4 {
		var p query.Predicate
		p, data = decodeTerm(data)
		if p == nil {
			break
		}
		q = q.With(p)
	}
	return q
}

func FuzzPlanEquivalence(f *testing.F) {
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 0, 2, 1})
	f.Add([]byte{0, 0, 1, 0, 2, 0})             // fig1 shape
	f.Add([]byte{3, 0, 5, 2, 1})                // keyword + not
	f.Add([]byte{4, 2, 6, 1, 3, 7, 0})          // range + cuisine + keyword
	f.Add([]byte{6, 1, 0, 0, 4, 1, 9})          // or + type + range
	f.Add([]byte{5, 1, 2, 5, 2, 4, 1, 0, 3, 3}) // not-first ordering stress
	f.Add([]byte{7, 30, 1, 1, 3, 4, 5, 0, 1})   // prep-time range mix

	f.Fuzz(func(t *testing.T, data []byte) {
		w := fuzzSetup()
		if w.err != nil {
			t.Fatalf("fuzz corpus setup: %v", w.err)
		}
		q := decodeQuery(data)
		ctx := context.Background()

		want := w.mem.Engine().EvalContext(ctx, q).Items()
		if got := w.memPl.EvalContext(ctx, w.mem.Engine(), q).Items(); !reflect.DeepEqual(got, want) {
			t.Fatalf("in-memory planned %d items, naive %d (query %s)", len(got), len(want), q.Key())
		}
		if got := w.segPl.EvalContext(ctx, w.seg.Engine(), q).Items(); !reflect.DeepEqual(got, want) {
			t.Fatalf("segment planned %d items, naive %d (query %s)", len(got), len(want), q.Key())
		}
		merged, _ := w.shPl.EvalShardedParts(ctx, w.mem.Engine(), q, w.sharding, nil)
		if got := merged.Items(); !reflect.DeepEqual(got, want) {
			t.Fatalf("sharded planned %d items, naive %d (query %s)", len(got), len(want), q.Key())
		}
	})
}

package plan

import (
	"testing"

	"magnet/internal/itemset"
)

func idset(xs ...uint32) itemset.Set { return itemset.FromSorted(xs) }

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	ep := epoch{graph: 1, universe: 1}
	if ev := c.put(ep, "a", idset(1)); ev != 0 {
		t.Fatalf("put a evicted %d", ev)
	}
	if ev := c.put(ep, "b", idset(2)); ev != 0 {
		t.Fatalf("put b evicted %d", ev)
	}
	// Touch a so b becomes the LRU entry.
	if _, ok := c.get(ep, "a"); !ok {
		t.Fatal("a missing after put")
	}
	if ev := c.put(ep, "c", idset(3)); ev != 1 {
		t.Fatalf("put c evicted %d entries, want 1", ev)
	}
	if _, ok := c.get(ep, "b"); ok {
		t.Error("b survived eviction but was least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(ep, k); !ok {
			t.Errorf("%s evicted but was recently used", k)
		}
	}
}

func TestCacheOverwriteDoesNotGrow(t *testing.T) {
	c := newCache(4)
	ep := epoch{graph: 1}
	c.put(ep, "a", idset(1))
	c.put(ep, "a", idset(1, 2))
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d after double put of one key", n)
	}
	res, ok := c.get(ep, "a")
	if !ok || !res.Equal(idset(1, 2)) {
		t.Errorf("get a = %v %v, want the overwritten result", res.Slice(), ok)
	}
}

// A lookup under a newer (graph version, universe epoch) stamp drops the
// whole resident generation — stale navigation results must never
// survive a mutation or a universe change.
func TestCacheEpochInvalidation(t *testing.T) {
	c := newCache(8)
	ep := epoch{graph: 1, universe: 1}
	c.put(ep, "a", idset(1))
	c.put(ep, "b", idset(2))

	bumps := []epoch{
		{graph: 2, universe: 1}, // graph mutation
		{graph: 2, universe: 2}, // universe change (reshard)
	}
	for _, next := range bumps {
		if _, ok := c.get(next, "a"); ok {
			t.Errorf("epoch %+v: stale entry served across generations", next)
		}
		if n := c.len(); n != 0 {
			t.Errorf("epoch %+v: %d stale entries resident, want 0", next, n)
		}
		c.put(next, "a", idset(3))
		if res, ok := c.get(next, "a"); !ok || !res.Equal(idset(3)) {
			t.Errorf("epoch %+v: refill not served back", next)
		}
	}
}

func TestNewPlannerCapacityModes(t *testing.T) {
	if pl := New(1, -1); pl != nil {
		t.Error("negative capacity should disable the planner (nil)")
	}
	if pl := New(0, 0); pl == nil || len(pl.caches) != 1 {
		t.Error("shards<1 should still build one unsharded cache")
	}
	pl := New(4, 7)
	if len(pl.caches) != 4 {
		t.Fatalf("4-shard planner has %d caches", len(pl.caches))
	}
	for _, c := range pl.caches {
		if c.cap != 7 {
			t.Errorf("cache capacity %d, want 7", c.cap)
		}
	}
}

// Package plan is Magnet's cost-based conjunction planner and
// navigation-delta cache. Navigation steps (§3.2–3.3, §4.1–4.2) change
// the current query one predicate at a time, so the executor rarely needs
// to evaluate a conjunction from scratch: the previous step's result is
// the parent of the new query (Refine) or already cached (Back, remove
// constraint). The planner layers two mechanisms over the query engine,
// both producing byte-identical results to the naive path:
//
//   - Conjunct ordering: per-predicate cardinality estimates from free
//     index statistics (cost.go) pick the cheapest term to evaluate
//     fully; every remaining term is driven candidate-first through
//     query.EvalWithinSet, so selective conjunctions never materialize a
//     large intermediate set and Not never materializes the universe.
//
//   - Delta caching: a bounded per-shard LRU (cache.go) of frozen result
//     sets keyed by the canonical Query.Key(), invalidated by a
//     (graph version, universe epoch) stamp. A Refine step then costs
//     one EvalWithin against the cached parent; Back and RemoveConstraint
//     are pure hits.
//
// Correctness leans on conjunction algebra only: intersection commutes,
// (C ∩ U) \ E = C ∩ (U \ E), and restriction to a shard's ID space
// distributes over both — the same identities the scatter-gather merge
// already relies on. The planner therefore composes with Options.Shards
// (per-shard caches holding shard-restricted sets, merged exactly as the
// unplanned path merges) and with frozen segment backings (which are just
// read-only engines).
package plan

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"strings"
	"time"

	"magnet/internal/ids"
	"magnet/internal/itemset"
	"magnet/internal/obs"
	"magnet/internal/par"
	"magnet/internal/query"
)

var (
	planCacheHit   = obs.NewCounter("plan.cache.hit")
	planCacheMiss  = obs.NewCounter("plan.cache.miss")
	planCacheDelta = obs.NewCounter("plan.cache.delta")
	planCacheEvict = obs.NewCounter("plan.cache.evict")
	planReordered  = obs.NewCounter("plan.order.reordered")
	planEvalCount  = obs.NewCounter("plan.eval.count")
	planEvalNS     = obs.NewHistogram("plan.eval.ns")
	// planEstRatio records estimated-vs-actual cardinality of the chosen
	// first conjunct as (est+1)·100/(actual+1): 100 means spot-on, 200
	// a 2× overestimate, 50 a 2× underestimate.
	planEstRatio = obs.NewHistogram("plan.est.ratio")
)

// DefaultCacheSize is the per-shard delta-cache capacity when
// core.Options.PlanCache is zero. Navigation histories are shallow — a
// study task revisits a few dozen states — so a few hundred entries hold
// every state many concurrent sessions step through.
const DefaultCacheSize = 256

// Planner carries the delta caches for one serving instance: one cache
// per shard (index 0 doubles as the unsharded cache), so shard workers
// never contend on one lock and cached sets stay within their shard's ID
// space. Safe for concurrent use by any number of sessions.
type Planner struct {
	caches []*cache
}

// New builds a planner for an instance serving with the given shard count
// (0 and 1 both mean unsharded). capacity sizes each per-shard cache:
// 0 means DefaultCacheSize, negative disables planning entirely (New
// returns nil, and a nil *Planner simply isn't routed to).
func New(shards, capacity int) *Planner {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = DefaultCacheSize
	}
	if shards < 1 {
		shards = 1
	}
	caches := make([]*cache, shards)
	for i := range caches {
		caches[i] = newCache(capacity)
	}
	return &Planner{caches: caches}
}

// EvalContext evaluates q through the planner: cache hit, parent delta,
// or a cost-ordered candidate-first evaluation, in that order. The result
// is byte-identical to e.EvalContext(ctx, q).
func (pl *Planner) EvalContext(ctx context.Context, e *query.Engine, q query.Query) query.Set {
	start := time.Now()
	ep := epoch{graph: e.Graph().Version(), universe: e.UniverseEpoch()}
	out := pl.evalCached(ctx, e, q, pl.caches[0], ep, 0, 1)
	planEvalCount.Inc()
	planEvalNS.ObserveSince(start)
	return e.FromIDs(out)
}

// EvalShardedParts is the planner's scatter-gather path: each shard plans
// and caches independently under its own universe slice and the per-shard
// results — stored and returned already restricted to the shard's ID
// space — merge with the disjoint union, exactly like the unplanned
// query.EvalShardedParts. A panic inside a shard re-raises on the caller;
// on context cancellation the evaluation falls back to the naive serial
// path so the result is never partial.
func (pl *Planner) EvalShardedParts(ctx context.Context, e *query.Engine, q query.Query, sh *query.Sharding, pool *par.Pool) (query.Set, []itemset.Set) {
	ctx, sp := obs.StartSpan(ctx, "plan.eval.sharded")
	sp.SetInt("shards", sh.N)
	start := time.Now()
	ep := epoch{graph: e.Graph().Version(), universe: e.UniverseEpoch()}
	parts := make([]itemset.Set, sh.N)
	err := par.ForN(ctx, pool, sh.N, func(s int) {
		se := e.WithUniverse(sh.Universes[s])
		parts[s] = pl.evalCached(ctx, se, q, pl.caches[s%len(pl.caches)], ep, s, sh.N)
	})
	if err != nil {
		var pe *par.PanicError
		if errors.As(err, &pe) {
			panic(pe)
		}
		full := e.EvalContext(ctx, q)
		parts = full.IDs().Partition(sh.N, func(id uint32) int { return ids.Shard(id, sh.N) })
	}
	merged := e.FromIDs(itemset.MergeDisjoint(parts))
	planEvalCount.Inc()
	planEvalNS.ObserveSince(start)
	sp.SetInt("results", merged.Len())
	sp.End()
	return merged, parts
}

// evalCached resolves one (engine, cache) evaluation: exact hit, then the
// parent-delta probe, then the planned evaluation. shard/n locate the
// cache in an n-way layout (n <= 1 means unsharded); planned results are
// restricted to the shard before caching, so everything the cache holds —
// and therefore every hit and every delta, which only ever shrink a
// cached set — stays within the shard's ID space.
func (pl *Planner) evalCached(ctx context.Context, e *query.Engine, q query.Query, c *cache, ep epoch, shard, n int) itemset.Set {
	ctx, sp := obs.StartSpan(ctx, "plan.eval")
	key := q.Key()
	if res, ok := c.get(ep, key); ok {
		planCacheHit.Inc()
		sp.SetAttr("cache", "hit")
		sp.SetInt("results", res.Len())
		sp.End()
		return res
	}
	planCacheMiss.Inc()

	// Parent probe: a Refine step's new query is the cached previous step
	// plus one term, so try every leave-one-out subset and apply the
	// removed term within the smallest cached parent. Single-term queries
	// are excluded: their parent is the empty query (the universe), but a
	// lone term's naive result is E(t), not U ∩ E(t) — predicates may
	// match non-universe subjects — so the identity only holds from two
	// terms up, where the first term already anchors the result.
	if keys := q.TermKeys(); len(keys) >= 2 {
		bestIdx := -1
		var parent itemset.Set
		scratch := make([]string, len(keys)-1)
		for i := range keys {
			copy(scratch, keys[:i])
			copy(scratch[i:], keys[i+1:])
			if res, ok := c.get(ep, query.KeyForTermKeys(scratch)); ok {
				if bestIdx < 0 || res.Len() < parent.Len() {
					bestIdx, parent = i, res
				}
			}
		}
		if bestIdx >= 0 {
			planCacheDelta.Inc()
			out := query.EvalWithinSet(e, q.Terms[bestIdx], parent)
			planCacheEvict.Add(uint64(c.put(ep, key, out)))
			sp.SetAttr("cache", "delta")
			sp.SetInt("results", out.Len())
			sp.End()
			return out
		}
	}

	out := pl.plannedEval(ctx, e, q, sp)
	if n > 1 {
		out = query.RestrictToShard(out, shard, n)
	}
	planCacheEvict.Add(uint64(c.put(ep, key, out)))
	sp.SetAttr("cache", "planned")
	sp.SetInt("results", out.Len())
	sp.End()
	return out
}

// plannedEval is the from-scratch path: estimate every conjunct's
// cardinality, evaluate the cheapest fully (through the instrumented
// pred.* path, so traces keep their per-predicate tree), then drive the
// rest candidate-first in ascending estimated order. The chosen order is
// attached to the plan.eval span so magnet-eval -trace shows it.
func (pl *Planner) plannedEval(ctx context.Context, e *query.Engine, q query.Query, sp *obs.Span) itemset.Set {
	terms := q.Terms
	if len(terms) == 0 {
		return e.Universe().IDs()
	}
	order := make([]int, len(terms))
	for i := range order {
		order[i] = i
	}
	var costs []int
	if len(terms) > 1 {
		est := newEstimator(e)
		costs = make([]int, len(terms))
		for i, t := range terms {
			costs[i] = est.estimate(t)
		}
		sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] < costs[order[b]] })
		for i, o := range order {
			if o != i {
				planReordered.Inc()
				break
			}
		}
	}
	if sp != nil {
		sp.SetAttr("order", orderAttr(order))
	}
	out := e.Rebase(e.EvalPredContext(ctx, terms[order[0]]))
	if costs != nil {
		planEstRatio.Observe(ratioPercent(costs[order[0]], out.Len()))
	}
	for _, oi := range order[1:] {
		if out.IsEmpty() {
			return out
		}
		out = query.EvalWithinSet(e, terms[oi], out)
	}
	return out
}

// orderAttr renders a term order as "2,0,1" for span attributes; only
// called when a trace is live.
func orderAttr(order []int) string {
	var b strings.Builder
	for i, o := range order {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(o))
	}
	return b.String()
}

// ratioPercent maps (estimate, actual) to the planEstRatio scale.
func ratioPercent(est, actual int) int64 {
	return int64(est+1) * 100 / int64(actual+1)
}

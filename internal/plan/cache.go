package plan

import (
	"sync"

	"magnet/internal/itemset"
)

// epoch stamps a cache generation. A cached result set is valid exactly
// while the graph is unmutated (its Version) and the engine's universe is
// unchanged (its UniverseEpoch — core.Magnet re-installs the universe
// source on every reshard, so item additions and removals bump it even
// when they do not touch the graph).
type epoch struct {
	graph    uint64
	universe uint64
}

// entry is one cached query result on the cache's intrusive recency list.
type entry struct {
	key        string
	result     itemset.Set
	prev, next *entry
}

// cache is a bounded, mutex-guarded LRU of frozen query results keyed by
// the canonical Query.Key(). The stored itemsets are immutable by the
// repo's freeze discipline (posting views are copy-on-write, evaluation
// outputs are freshly built), so handing a cached set to many concurrent
// sessions is safe without copying. A whole generation is dropped the
// moment a lookup arrives under a newer epoch: navigation caches are
// cheap to refill and a stale result is a correctness bug, not a
// performance one.
type cache struct {
	mu         sync.Mutex
	cap        int
	ep         epoch
	items      map[string]*entry
	head, tail *entry // head = most recently used
}

func newCache(capacity int) *cache {
	return &cache{cap: capacity, items: make(map[string]*entry, capacity)}
}

// refreshLocked clears the cache when ep is newer than the resident
// generation. Callers hold c.mu.
func (c *cache) refreshLocked(ep epoch) {
	if ep == c.ep {
		return
	}
	c.ep = ep
	c.items = make(map[string]*entry, c.cap)
	c.head, c.tail = nil, nil
}

// get returns the cached result for key under ep, promoting it to most
// recently used.
func (c *cache) get(ep epoch, key string) (itemset.Set, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshLocked(ep)
	en, ok := c.items[key]
	if !ok {
		return itemset.Set{}, false
	}
	c.promoteLocked(en)
	return en.result, true
}

// put stores a result under ep and returns how many entries were evicted
// to stay within capacity.
func (c *cache) put(ep epoch, key string, result itemset.Set) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshLocked(ep)
	if en, ok := c.items[key]; ok {
		en.result = result
		c.promoteLocked(en)
		return 0
	}
	en := &entry{key: key, result: result}
	c.items[key] = en
	c.pushFrontLocked(en)
	evicted := 0
	for len(c.items) > c.cap && c.tail != nil {
		drop := c.tail
		c.unlinkLocked(drop)
		delete(c.items, drop.key)
		evicted++
	}
	return evicted
}

// len reports the resident entry count (tests only).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *cache) promoteLocked(en *entry) {
	if c.head == en {
		return
	}
	c.unlinkLocked(en)
	c.pushFrontLocked(en)
}

func (c *cache) pushFrontLocked(en *entry) {
	en.prev = nil
	en.next = c.head
	if c.head != nil {
		c.head.prev = en
	}
	c.head = en
	if c.tail == nil {
		c.tail = en
	}
}

func (c *cache) unlinkLocked(en *entry) {
	if en.prev != nil {
		en.prev.next = en.next
	} else {
		c.head = en.next
	}
	if en.next != nil {
		en.next.prev = en.prev
	} else {
		c.tail = en.prev
	}
	en.prev, en.next = nil, nil
}

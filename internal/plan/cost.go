package plan

import (
	"strings"

	"magnet/internal/query"
)

// The cost model: every estimate comes from statistics the indexes
// already maintain for free — posting-list lengths in the graph's reverse
// index (O(1) map reads), document frequencies in the text index, and the
// schema store's memoized numeric-column spans — so estimation never
// touches a posting's members. Estimates are upper-bound-ish result
// cardinalities, used only to order conjuncts (cheapest first); a wrong
// estimate costs time, never correctness, because every evaluation order
// of a conjunction produces the same set.

// estimator derives cardinality estimates against one engine. The zero
// value is unusable; build with newEstimator per planning decision (the
// universe size is read once).
type estimator struct {
	e *query.Engine
	// universe is |U|: the ceiling for every estimate and the fallback
	// for predicate kinds without statistics (custom extensions), which
	// therefore sort last and are driven candidate-first.
	universe int
}

func newEstimator(e *query.Engine) estimator {
	return estimator{e: e, universe: e.Universe().Len()}
}

// estimate returns the predicted result cardinality of p, clamped to
// [0, universe+1]. (The +1 headroom keeps "no statistics" strictly more
// expensive than "matches everything we measured".)
func (est estimator) estimate(p query.Predicate) int {
	if n := est.raw(p); n < est.universe+1 {
		return n
	}
	return est.universe + 1
}

func (est estimator) raw(p query.Predicate) int {
	switch t := p.(type) {
	case query.Property:
		return est.e.Graph().SubjectCount(t.Prop, t.Value)
	case query.PathProperty:
		// The final path segment's posting bounds the backward chase's
		// first frontier; widening across earlier segments is possible
		// but rare in navigation data, so the seed is the estimate.
		if len(t.Path) == 0 {
			return 0
		}
		return est.e.Graph().SubjectCount(t.Path[len(t.Path)-1], t.Value)
	case query.Keyword:
		return est.keywordEstimate(t)
	case query.TermMatch:
		ix := est.e.TextIndex()
		if ix == nil {
			return 0
		}
		return ix.TermDocFreq(t.Term)
	case query.Range:
		return est.rangeEstimate(t)
	case query.Not:
		n := est.universe - est.estimate(t.P)
		if n < 0 {
			return 0
		}
		return n
	case query.And:
		// A conjunction is at most its cheapest conjunct.
		if len(t.Ps) == 0 {
			return est.universe
		}
		min := est.estimate(t.Ps[0])
		for _, q := range t.Ps[1:] {
			if n := est.estimate(q); n < min {
				min = n
			}
		}
		return min
	case query.Or:
		sum := 0
		for _, q := range t.Ps {
			sum += est.estimate(q)
		}
		return sum
	case query.AnyValueIn:
		sum := 0
		for _, v := range t.Values {
			sum += est.e.Graph().SubjectCount(t.Prop, v)
		}
		return sum
	case query.AllValuesIn:
		// Bounded by its AnyValueIn candidate stage.
		return est.estimate(query.AnyValueIn{Prop: t.Prop, Values: t.Values})
	default:
		// Custom predicate: no statistics. Estimate past the universe so
		// it sorts last and is evaluated within the surviving candidates.
		return est.universe + 1
	}
}

// keywordEstimate bounds a conjunctive keyword match by its rarest word's
// document frequency. Words the analyzer drops (stopwords, multi-token
// expansions) carry no signal and are skipped; a keyword with no
// analyzable words at all matches nothing.
func (est estimator) keywordEstimate(k query.Keyword) int {
	ix := est.e.TextIndex()
	if ix == nil {
		return 0
	}
	min := -1
	for _, w := range strings.Fields(k.Text) {
		terms := ix.Analyzer().Terms(w)
		if len(terms) != 1 {
			continue
		}
		if df := ix.TermDocFreq(terms[0]); min < 0 || df < min {
			min = df
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// rangeEstimate scales the property's numeric posting mass by the
// fraction of its value span the range covers — a uniform-distribution
// assumption, which is exactly as good as free statistics get.
func (est estimator) rangeEstimate(r query.Range) int {
	sp := est.e.Schema().NumericSpan(r.Prop)
	if sp.Postings == 0 {
		return 0
	}
	lo, hi := sp.Min, sp.Max
	if r.Min != nil && *r.Min > lo {
		lo = *r.Min
	}
	if r.Max != nil && *r.Max < hi {
		hi = *r.Max
	}
	if lo > hi {
		return 0
	}
	width := sp.Max - sp.Min
	if width <= 0 {
		return sp.Postings
	}
	n := int((hi - lo) / width * float64(sp.Postings))
	if n < 1 {
		n = 1
	}
	return n
}

// Planned-vs-naive byte-identity: the planner's contract is that cache
// hits, parent deltas, and cost-ordered candidate-first evaluation all
// return exactly the set the unplanned engine returns — on the in-memory
// backing, on frozen segments, and under every shard count the
// scatter-gather path serves with. These tests drive both paths over the
// same corpus and compare item-for-item.
package plan_test

import (
	"context"
	"reflect"
	"testing"

	"magnet/internal/core"
	"magnet/internal/dataload"
	"magnet/internal/datasets/recipes"
	"magnet/internal/par"
	"magnet/internal/plan"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

var planShardCounts = []int{1, 2, 4, 7}

// planQueries covers every planner decision point: single terms (no
// reordering, no parent probe), selective and unselective conjunctions,
// negation (the lazy-complement path), ranges (span estimates and
// per-candidate probes), keywords (df estimates), disjunction, and the
// empty query (the universe).
func planQueries() map[string]query.Query {
	return map[string]query.Query{
		"empty":  query.NewQuery(),
		"single": query.NewQuery(query.TypeIs(recipes.ClassRecipe)),
		"fig1": query.NewQuery(
			query.TypeIs(recipes.ClassRecipe),
			query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
			query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Parsley")},
		),
		"negation": query.NewQuery(
			query.Keyword{Text: "chicken"},
			query.Not{P: query.Property{
				Prop:  recipes.PropIngredient,
				Value: recipes.Ingredient("Walnuts"),
			}},
		),
		"range": query.NewQuery(
			query.TypeIs(recipes.ClassRecipe),
			query.Between(recipes.PropServings, 2, 6),
		),
		"mixed": query.NewQuery(
			query.Between(recipes.PropPrepTime, 0, 45),
			query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Mexican")},
			query.Keyword{Text: "bean"},
		),
		"disjunction": query.NewQuery(
			query.TypeIs(recipes.ClassRecipe),
			query.Or{Ps: []query.Predicate{
				query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
				query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Thai")},
			}},
		),
	}
}

// openPlanCorpus builds the in-memory serving instance the tests plan
// against. PlanCache is disabled so m's own evaluation stays the naive
// oracle; the planners under test are built explicitly.
func openPlanCorpus(t testing.TB) *core.Magnet {
	t.Helper()
	g, allSubjects, err := dataload.Load(dataload.Spec{Dataset: "recipes", Recipes: 200, Seed: 1})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m := core.Open(g, core.Options{IndexAllSubjects: allSubjects, PlanCache: -1})
	t.Cleanup(m.Close)
	return m
}

func wantItems(e *query.Engine, q query.Query) []rdf.IRI {
	return e.EvalContext(context.Background(), q).Items()
}

func TestPlanEquivalenceInMemory(t *testing.T) {
	eng := openPlanCorpus(t).Engine()
	pl := plan.New(1, 0)
	ctx := context.Background()
	for name, q := range planQueries() {
		want := wantItems(eng, q)
		// Three rounds walk every cache state: planned (cold), exact hit,
		// exact hit again after promotion.
		for round := 0; round < 3; round++ {
			got := pl.EvalContext(ctx, eng, q).Items()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s round %d: planned %d items, naive %d", name, round, len(got), len(want))
			}
		}
	}
}

// A refine sequence evaluates each prefix of a growing conjunction, so
// every non-first step resolves through the parent-delta probe; a back
// step is then a pure hit. Every answer must equal the naive one.
func TestPlanEquivalenceRefineDeltas(t *testing.T) {
	eng := openPlanCorpus(t).Engine()
	pl := plan.New(1, 0)
	ctx := context.Background()

	steps := []query.Predicate{
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
		query.Between(recipes.PropServings, 2, 8),
		query.Not{P: query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Walnuts")}},
	}
	q := query.NewQuery()
	history := []query.Query{q}
	for i, p := range steps {
		q = q.With(p)
		history = append(history, q)
		got := pl.EvalContext(ctx, eng, q).Items()
		if want := wantItems(eng, q); !reflect.DeepEqual(got, want) {
			t.Fatalf("refine step %d: planned %d items, naive %d", i, len(got), len(want))
		}
	}
	for i := len(history) - 1; i >= 0; i-- {
		got := pl.EvalContext(ctx, eng, history[i]).Items()
		if want := wantItems(eng, history[i]); !reflect.DeepEqual(got, want) {
			t.Fatalf("back step to %d: planned %d items, naive %d", i, len(got), len(want))
		}
	}
}

func TestPlanEquivalenceSharded(t *testing.T) {
	eng := openPlanCorpus(t).Engine()
	ctx := context.Background()
	pool := par.New(2)
	defer pool.Close()

	for name, q := range planQueries() {
		want := wantItems(eng, q)
		for _, n := range planShardCounts {
			pl := plan.New(n, 0)
			sh := query.BuildSharding(n, eng.Universe().IDs())
			for round := 0; round < 2; round++ {
				merged, parts := pl.EvalShardedParts(ctx, eng, q, sh, pool)
				if got := merged.Items(); !reflect.DeepEqual(got, want) {
					t.Errorf("%s shards=%d round %d: merged %d items, naive %d",
						name, n, round, len(got), len(want))
				}
				if len(parts) != n {
					t.Errorf("%s shards=%d: %d parts", name, n, len(parts))
				}
				total := 0
				for _, p := range parts {
					total += p.Len()
				}
				if total != len(want) {
					t.Errorf("%s shards=%d: parts sum to %d, want %d", name, n, total, len(want))
				}
			}
		}
	}
}

func TestPlanEquivalenceSegments(t *testing.T) {
	mem := openPlanCorpus(t)
	dir := t.TempDir()
	if _, err := mem.WriteSegments(dir, "recipes", map[string]int64{"recipes": 200, "seed": 1}); err != nil {
		t.Fatalf("WriteSegments: %v", err)
	}
	seg, err := core.OpenSegments(dir, core.Options{PlanCache: -1})
	if err != nil {
		t.Fatalf("OpenSegments: %v", err)
	}
	t.Cleanup(seg.Close)

	eng := seg.Engine()
	pl := plan.New(1, 0)
	ctx := context.Background()
	for name, q := range planQueries() {
		want := wantItems(mem.Engine(), q)
		if got := wantItems(eng, q); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: segment naive differs from in-memory naive — corpus mismatch", name)
		}
		for round := 0; round < 2; round++ {
			got := pl.EvalContext(ctx, eng, q).Items()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s round %d: segment-planned %d items, want %d", name, round, len(got), len(want))
			}
		}
	}
}

// A graph mutation between evaluations must invalidate every cached
// result: the second evaluation sees the new posting, exactly as the
// naive path does.
func TestPlanCacheInvalidatedByMutation(t *testing.T) {
	g, allSubjects, err := dataload.Load(dataload.Spec{Dataset: "recipes", Recipes: 60, Seed: 2})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m := core.Open(g, core.Options{IndexAllSubjects: allSubjects, PlanCache: -1})
	t.Cleanup(m.Close)
	eng := m.Engine()
	pl := plan.New(1, 0)
	ctx := context.Background()

	q := query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
	)
	before := pl.EvalContext(ctx, eng, q).Items()
	if !reflect.DeepEqual(before, wantItems(eng, q)) {
		t.Fatal("pre-mutation planned result differs from naive")
	}

	// Make a non-Greek recipe Greek: the cached posting is now stale.
	naiveAll := wantItems(eng, query.NewQuery(query.TypeIs(recipes.ClassRecipe)))
	var flipped rdf.IRI
	inBefore := make(map[rdf.IRI]bool, len(before))
	for _, it := range before {
		inBefore[it] = true
	}
	for _, it := range naiveAll {
		if !inBefore[it] {
			flipped = it
			break
		}
	}
	if flipped == "" {
		t.Skip("every recipe is already Greek at this seed")
	}
	g.Add(flipped, recipes.PropCuisine, recipes.Cuisine("Greek"))

	after := pl.EvalContext(ctx, eng, q).Items()
	want := wantItems(eng, q)
	if reflect.DeepEqual(after, before) {
		t.Fatal("planned result unchanged after mutation — stale cache served")
	}
	if !reflect.DeepEqual(after, want) {
		t.Fatalf("post-mutation planned %d items, naive %d", len(after), len(want))
	}
}

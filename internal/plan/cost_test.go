package plan

import (
	"testing"

	"magnet/internal/index"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

const ex = "http://example.org/"

var (
	pCuisine    = rdf.IRI(ex + "cuisine")
	pIngredient = rdf.IRI(ex + "ingredient")
	pServings   = rdf.IRI(ex + "servings")
	greek       = rdf.IRI(ex + "Greek")
	feta        = rdf.IRI(ex + "Feta")
)

// costFixture: 10 items, 8 greek, 2 with feta, servings 1..10, titles
// indexed so keyword df is observable.
func costFixture() *query.Engine {
	g := rdf.NewGraph()
	tix := index.NewTextIndex(nil)
	var items []rdf.IRI
	for i := 0; i < 10; i++ {
		it := rdf.IRI(ex + "item" + string(rune('0'+i)))
		if i < 8 {
			g.Add(it, pCuisine, greek)
		}
		if i < 2 {
			g.Add(it, pIngredient, feta)
		}
		g.Add(it, pServings, rdf.NewInteger(int64(i+1)))
		title := "dinner plate"
		if i == 0 {
			title = "walnut dinner"
		}
		g.Add(it, rdf.DCTitle, rdf.NewString(title))
		tix.Index(string(it), "title", title)
		items = append(items, it)
	}
	return query.NewEngine(g, schema.NewStore(g), tix, func() []rdf.IRI { return items })
}

type opaquePred struct{}

func (opaquePred) Eval(e *query.Engine) query.Set  { return e.Universe() }
func (opaquePred) Describe(l query.Labeler) string { return "opaque" }
func (opaquePred) Key() string                     { return "opaque" }

func TestEstimatorOrdersBySelectivity(t *testing.T) {
	e := costFixture()
	est := newEstimator(e)

	ing := est.estimate(query.Property{Prop: pIngredient, Value: feta})
	cui := est.estimate(query.Property{Prop: pCuisine, Value: greek})
	if ing != 2 || cui != 8 {
		t.Fatalf("posting estimates = (feta %d, greek %d), want (2, 8)", ing, cui)
	}
	if est.estimate(query.Property{Prop: pCuisine, Value: feta}) != 0 {
		t.Error("absent posting should estimate 0")
	}

	// Keyword: rarest word's df. "walnut" appears once, "dinner" everywhere.
	if n := est.estimate(query.Keyword{Text: "walnut dinner"}); n != 1 {
		t.Errorf("keyword estimate = %d, want rarest-word df 1", n)
	}

	// Not inverts against the universe; custom predicates sort past it.
	if n := est.estimate(query.Not{P: query.Property{Prop: pCuisine, Value: greek}}); n != 2 {
		t.Errorf("not estimate = %d, want 10-8", n)
	}
	if n := est.estimate(opaquePred{}); n != est.universe+1 {
		t.Errorf("opaque estimate = %d, want universe+1 = %d", n, est.universe+1)
	}

	// Range: span fraction of posting mass. servings spans 1..10; [1,5]
	// covers ~44% of the width over 10 postings.
	got := est.estimate(query.Between(pServings, 1, 5))
	if got < 1 || got > 6 {
		t.Errorf("range estimate = %d, want a span fraction of 10 (1..6)", got)
	}
	full := est.estimate(query.Between(pServings, 1, 10))
	if full != 10 {
		t.Errorf("full-span range estimate = %d, want all 10 postings", full)
	}

	// Composites: And is bounded by its cheapest branch, Or sums.
	and := query.And{Ps: []query.Predicate{
		query.Property{Prop: pCuisine, Value: greek},
		query.Property{Prop: pIngredient, Value: feta},
	}}
	if n := est.estimate(and); n != 2 {
		t.Errorf("and estimate = %d, want min branch 2", n)
	}
	or := query.Or{Ps: and.Ps}
	if n := est.estimate(or); n != 10 {
		t.Errorf("or estimate = %d, want branch sum 10", n)
	}
}

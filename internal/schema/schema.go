// Package schema manages Magnet's schema annotations (paper §5.1, §6.1).
// Magnet works without any schema, but "takes advantage of whatever schema
// information is available": property labels, attribute value types (which
// unlock range widgets and unit-circle numeric encoding), attribute
// compositions (which add transitive coordinates to the vector space model),
// and hidden flags (suppressing algorithmically significant but
// non-human-readable attributes, §6.1).
//
// Annotations are ordinary triples stored in the data graph itself, so
// "schema experts or advanced users" can add them incrementally, and they
// travel with the data.
package schema

import (
	"sync"

	"magnet/internal/itemset"
	"magnet/internal/rdf"
)

// ValueType classifies a property's values for querying and vectorization.
type ValueType int

const (
	// Unknown means no annotation exists and inference was inconclusive.
	Unknown ValueType = iota
	// Resource values are other items (IRIs), keyed by identity.
	Resource
	// Text values are strings split into word coordinates.
	Text
	// Integer values are whole numbers; range queries and unit-circle
	// encoding apply.
	Integer
	// Float values are real numbers; range queries and unit-circle encoding
	// apply.
	Float
	// Date values are temporal; range queries and unit-circle encoding
	// apply after conversion to a numeric axis (paper §5.4).
	Date
	// Boolean values are true/false flags, keyed by identity.
	Boolean
)

// String returns the annotation lexical form of the value type.
func (vt ValueType) String() string {
	switch vt {
	case Resource:
		return "resource"
	case Text:
		return "text"
	case Integer:
		return "integer"
	case Float:
		return "float"
	case Date:
		return "date"
	case Boolean:
		return "boolean"
	default:
		return "unknown"
	}
}

// ParseValueType converts an annotation lexical form back to a ValueType.
func ParseValueType(s string) ValueType {
	switch s {
	case "resource":
		return Resource
	case "text":
		return Text
	case "integer":
		return Integer
	case "float":
		return Float
	case "date", "datetime":
		return Date
	case "boolean":
		return Boolean
	default:
		return Unknown
	}
}

// Numeric reports whether the value type supports numeric range queries and
// unit-circle similarity encoding.
func (vt ValueType) Numeric() bool {
	return vt == Integer || vt == Float || vt == Date
}

// datasetNode is the well-known subject carrying graph-level annotations.
const datasetNode = rdf.IRI(rdf.NSMagnet + "dataset")

// Store reads and writes schema annotations on a graph. Value-type
// inference results are memoized against the graph's version, since
// inference scans a property's whole value domain.
type Store struct {
	g *rdf.Graph

	mu       sync.Mutex
	inferred map[rdf.IRI]ValueType
	spans    map[rdf.IRI]NumericSpan
	version  uint64
}

// NewStore returns an annotation store over g.
func NewStore(g *rdf.Graph) *Store {
	return &Store{
		g:        g,
		inferred: make(map[rdf.IRI]ValueType),
		spans:    make(map[rdf.IRI]NumericSpan),
	}
}

// refreshLocked drops the memoized inference and span tables when the
// graph has changed since they were built. Callers hold s.mu.
func (s *Store) refreshLocked() {
	if v := s.g.Version(); v != s.version {
		s.inferred = make(map[rdf.IRI]ValueType)
		s.spans = make(map[rdf.IRI]NumericSpan)
		s.version = v
	}
}

// Graph returns the underlying graph.
func (s *Store) Graph() *rdf.Graph { return s.g }

// SetLabel annotates property p with a display label.
func (s *Store) SetLabel(p rdf.IRI, label string) {
	s.g.Add(p, rdf.AnnLabel, rdf.NewString(label))
}

// Label returns the display label for p: magnet:label, then rdfs:label /
// dc:title, then the humanized local name (the graph's Label already
// implements that precedence).
func (s *Store) Label(p rdf.IRI) string { return s.g.Label(p) }

// HasLabel reports whether p carries any explicit label (used to reproduce
// the paper's Figure 7 raw-identifier display for unannotated data).
func (s *Store) HasLabel(p rdf.IRI) bool { return s.g.HasLabel(p) }

// SetValueType annotates property p's value type.
func (s *Store) SetValueType(p rdf.IRI, vt ValueType) {
	for _, o := range s.g.Objects(p, rdf.AnnValueType) {
		s.g.Remove(p, rdf.AnnValueType, o)
	}
	s.g.Add(p, rdf.AnnValueType, rdf.NewString(vt.String()))
}

// AnnotatedValueType returns p's annotated value type, or Unknown when no
// annotation exists.
func (s *Store) AnnotatedValueType(p rdf.IRI) ValueType {
	if o, ok := s.g.Object(p, rdf.AnnValueType); ok {
		if l, isLit := o.(rdf.Literal); isLit {
			return ParseValueType(l.Lexical)
		}
	}
	return Unknown
}

// inferSample bounds how many values are inspected when inferring a type.
const inferSample = 64

// ValueType returns p's effective value type: the annotation if present,
// otherwise a type inferred by sampling p's values in the graph. Inference
// is deliberately conservative: numeric and date types are only *inferred*
// when every sampled literal parses; mixed bags fall back to Text, matching
// the paper's observation (§6.1) that unannotated data behaves like strings
// until a schema expert adds a value-type annotation (Figure 7 → Figure 8).
func (s *Store) ValueType(p rdf.IRI) ValueType {
	if vt := s.AnnotatedValueType(p); vt != Unknown {
		return vt
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	if vt, ok := s.inferred[p]; ok {
		return vt
	}
	vt := s.inferValueType(p)
	s.inferred[p] = vt
	return vt
}

func (s *Store) inferValueType(p rdf.IRI) ValueType {
	objs := s.g.ObjectsOf(p)
	if len(objs) == 0 {
		return Unknown
	}
	if len(objs) > inferSample {
		objs = objs[:inferSample]
	}
	allIRI := true
	allInt := true
	allFloat := true
	allDate := true
	allBool := true
	sawLiteral := false
	for _, o := range objs {
		switch v := o.(type) {
		case rdf.IRI:
			allInt, allFloat, allDate, allBool = false, false, false, false
		case rdf.Literal:
			sawLiteral = true
			allIRI = false
			// Typed literals are trusted; plain strings are never inferred
			// as numeric (the 50-states CSV keeps areas as strings until
			// annotated, per Figures 7–8).
			switch {
			case v.Datatype == rdf.XSDInteger:
				allFloat, allDate, allBool = false, false, false
			case v.Datatype == rdf.XSDDecimal || v.Datatype == rdf.XSDDouble:
				allInt, allDate, allBool = false, false, false
			case v.IsTemporal():
				allInt, allFloat, allBool = false, false, false
			case v.Datatype == rdf.XSDBoolean:
				allInt, allFloat, allDate = false, false, false
			default:
				allInt, allFloat, allDate, allBool = false, false, false, false
			}
		default:
			return Unknown
		}
	}
	switch {
	case allIRI:
		return Resource
	case !sawLiteral:
		return Unknown
	case allInt:
		return Integer
	case allFloat:
		return Float
	case allDate:
		return Date
	case allBool:
		return Boolean
	default:
		return Text
	}
}

// SetCompose marks property p as worth composing with a second level of
// attributes in the vector space model (paper §5.1; §6.1's "body is an
// important property to compose").
func (s *Store) SetCompose(p rdf.IRI) {
	s.g.Add(p, rdf.AnnCompose, rdf.NewBool(true))
}

// Composable reports whether p carries the composition annotation.
func (s *Store) Composable(p rdf.IRI) bool {
	o, ok := s.g.Object(p, rdf.AnnCompose)
	if !ok {
		return false
	}
	l, isLit := o.(rdf.Literal)
	if !isLit {
		return false
	}
	b, _ := l.Bool()
	return b
}

// ComposableProperties returns every property annotated composable, sorted.
func (s *Store) ComposableProperties() []rdf.IRI {
	subs := s.g.Subjects(rdf.AnnCompose, rdf.NewBool(true))
	return subs
}

// SetHidden suppresses p from navigation suggestions (paper §6.1: "Magnet
// does provide custom annotations to hide such attributes").
func (s *Store) SetHidden(p rdf.IRI) {
	s.g.Add(p, rdf.AnnHidden, rdf.NewBool(true))
}

// Hidden reports whether p is suppressed from navigation suggestions.
// Magnet's own annotation vocabulary and rdfs:label are always hidden —
// they are metadata about metadata, never navigation axes.
func (s *Store) Hidden(p rdf.IRI) bool {
	switch p {
	case rdf.AnnLabel, rdf.AnnValueType, rdf.AnnCompose, rdf.AnnHidden,
		rdf.AnnFacet, rdf.AnnTreeShaped, rdf.Label, rdf.Comment:
		return true
	}
	o, ok := s.g.Object(p, rdf.AnnHidden)
	if !ok {
		return false
	}
	l, isLit := o.(rdf.Literal)
	if !isLit {
		return false
	}
	b, _ := l.Bool()
	return b
}

// SetFacet marks p as a preferred faceting axis, giving it priority in the
// large-collection overview (Figure 2).
func (s *Store) SetFacet(p rdf.IRI) {
	s.g.Add(p, rdf.AnnFacet, rdf.NewBool(true))
}

// IsFacet reports whether p carries the facet-preference annotation.
func (s *Store) IsFacet(p rdf.IRI) bool {
	o, ok := s.g.Object(p, rdf.AnnFacet)
	if !ok {
		return false
	}
	l, isLit := o.(rdf.Literal)
	if !isLit {
		return false
	}
	b, _ := l.Bool()
	return b
}

// SetTreeShaped records that the dataset is a finite tree (e.g. an XML
// import), licensing deeper composition chains (paper §6.2: "Telling Magnet
// that the information is structured as a tree ... would have provided a
// cleaner interface").
func (s *Store) SetTreeShaped() {
	s.g.Add(datasetNode, rdf.AnnTreeShaped, rdf.NewBool(true))
}

// TreeShaped reports whether the dataset carries the tree-shape annotation.
func (s *Store) TreeShaped() bool {
	o, ok := s.g.Object(datasetNode, rdf.AnnTreeShaped)
	if !ok {
		return false
	}
	l, isLit := o.(rdf.Literal)
	if !isLit {
		return false
	}
	b, _ := l.Bool()
	return b
}

// NumericSpan summarizes a property's numeric value domain for cost
// estimation: the [Min, Max] span of parseable numeric literal values and
// the total posting mass (summed posting-list length over those values —
// the number of item/value pairs a range over the whole span would
// touch). The zero span (Postings == 0) means the property has no numeric
// values.
type NumericSpan struct {
	Min, Max float64
	Postings int
}

// NumericSpan returns p's numeric-domain summary, computed by one
// value-domain walk and memoized against the graph version like value
// type inference (the walk is O(distinct values), too costly to repeat
// per query-planning step).
func (s *Store) NumericSpan(p rdf.IRI) NumericSpan {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	if sp, ok := s.spans[p]; ok {
		return sp
	}
	sp := s.computeSpanLocked(p)
	s.spans[p] = sp
	return sp
}

func (s *Store) computeSpanLocked(p rdf.IRI) NumericSpan {
	var sp NumericSpan
	first := true
	s.g.ForEachValuePosting(p, func(o rdf.Term, subjects itemset.Set) bool {
		lit, ok := o.(rdf.Literal)
		if !ok {
			return true
		}
		f, ok := lit.Float()
		if !ok {
			return true
		}
		if first {
			sp.Min, sp.Max = f, f
			first = false
		} else {
			if f < sp.Min {
				sp.Min = f
			}
			if f > sp.Max {
				sp.Max = f
			}
		}
		sp.Postings += subjects.Len()
		return true
	})
	return sp
}

// NumericProperties returns every property whose effective value type is
// numeric, sorted. These drive range widgets (Figure 5) and unit-circle
// encoding.
func (s *Store) NumericProperties() []rdf.IRI {
	var out []rdf.IRI
	for _, p := range s.g.Predicates() {
		if s.Hidden(p) {
			continue
		}
		if s.ValueType(p).Numeric() {
			out = append(out, p)
		}
	}
	return out
}

// NavigationProperties returns every property usable as a navigation axis:
// present in the graph, not hidden, not annotation vocabulary, sorted.
func (s *Store) NavigationProperties() []rdf.IRI {
	var out []rdf.IRI
	for _, p := range s.g.Predicates() {
		if s.Hidden(p) {
			continue
		}
		out = append(out, p)
	}
	return out
}

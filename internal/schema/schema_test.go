package schema

import (
	"reflect"
	"testing"
	"time"

	"magnet/internal/rdf"
)

const ex = "http://example.org/"

func TestParseValueTypeRoundTrip(t *testing.T) {
	for _, vt := range []ValueType{Resource, Text, Integer, Float, Date, Boolean} {
		if got := ParseValueType(vt.String()); got != vt {
			t.Errorf("round trip %v → %q → %v", vt, vt.String(), got)
		}
	}
	if ParseValueType("nonsense") != Unknown {
		t.Error("unknown strings should parse to Unknown")
	}
	if Unknown.String() != "unknown" {
		t.Error("Unknown.String()")
	}
}

func TestValueTypeNumeric(t *testing.T) {
	numeric := map[ValueType]bool{
		Integer: true, Float: true, Date: true,
		Resource: false, Text: false, Boolean: false, Unknown: false,
	}
	for vt, want := range numeric {
		if got := vt.Numeric(); got != want {
			t.Errorf("%v.Numeric() = %v, want %v", vt, got, want)
		}
	}
}

func TestLabelAnnotationPrecedence(t *testing.T) {
	g := rdf.NewGraph()
	s := NewStore(g)
	p := rdf.IRI(ex + "ns#stateBird")
	if got := s.Label(p); got != "state Bird" {
		t.Errorf("unannotated label = %q", got)
	}
	if s.HasLabel(p) {
		t.Error("HasLabel should be false before annotating")
	}
	s.SetLabel(p, "State bird")
	if got := s.Label(p); got != "State bird" {
		t.Errorf("annotated label = %q", got)
	}
	if !s.HasLabel(p) {
		t.Error("HasLabel should be true after annotating")
	}
}

func TestSetValueTypeReplaces(t *testing.T) {
	g := rdf.NewGraph()
	s := NewStore(g)
	p := rdf.IRI(ex + "area")
	s.SetValueType(p, Text)
	s.SetValueType(p, Integer)
	if got := s.AnnotatedValueType(p); got != Integer {
		t.Errorf("AnnotatedValueType = %v, want Integer", got)
	}
	// Only one annotation triple should remain.
	if n := len(g.Objects(p, rdf.AnnValueType)); n != 1 {
		t.Errorf("annotation triples = %d, want 1", n)
	}
}

func TestInferValueTypes(t *testing.T) {
	g := rdf.NewGraph()
	s := NewStore(g)
	item := rdf.IRI(ex + "i")

	g.Add(item, rdf.IRI(ex+"cuisine"), rdf.IRI(ex+"Greek"))
	g.Add(item, rdf.IRI(ex+"servings"), rdf.NewInteger(8))
	g.Add(item, rdf.IRI(ex+"rating"), rdf.NewFloat(4.5))
	g.Add(item, rdf.IRI(ex+"sent"), rdf.NewTime(time.Now()))
	g.Add(item, rdf.IRI(ex+"spicy"), rdf.NewBool(true))
	g.Add(item, rdf.IRI(ex+"bird"), rdf.NewString("Cardinal"))
	// Mixed IRI + literal falls back to Text.
	g.Add(item, rdf.IRI(ex+"mixed"), rdf.IRI(ex+"thing"))
	g.Add(item, rdf.IRI(ex+"mixed"), rdf.NewString("loose"))
	// Plain string that *looks* numeric must NOT be inferred numeric
	// (the Figure 7 → Figure 8 annotation story depends on this).
	g.Add(item, rdf.IRI(ex+"area"), rdf.NewString("570641"))

	tests := map[rdf.IRI]ValueType{
		rdf.IRI(ex + "cuisine"):  Resource,
		rdf.IRI(ex + "servings"): Integer,
		rdf.IRI(ex + "rating"):   Float,
		rdf.IRI(ex + "sent"):     Date,
		rdf.IRI(ex + "spicy"):    Boolean,
		rdf.IRI(ex + "bird"):     Text,
		rdf.IRI(ex + "mixed"):    Text,
		rdf.IRI(ex + "area"):     Text,
		rdf.IRI(ex + "absent"):   Unknown,
	}
	for p, want := range tests {
		if got := s.ValueType(p); got != want {
			t.Errorf("ValueType(%s) = %v, want %v", p.LocalName(), got, want)
		}
	}
}

func TestAnnotationOverridesInference(t *testing.T) {
	g := rdf.NewGraph()
	s := NewStore(g)
	p := rdf.IRI(ex + "area")
	g.Add(rdf.IRI(ex+"alaska"), p, rdf.NewString("570641"))
	if s.ValueType(p) != Text {
		t.Fatal("precondition: unannotated string area is Text")
	}
	s.SetValueType(p, Integer)
	if s.ValueType(p) != Integer {
		t.Error("annotation should override inference")
	}
}

func TestComposeAnnotation(t *testing.T) {
	g := rdf.NewGraph()
	s := NewStore(g)
	body := rdf.IRI(ex + "body")
	if s.Composable(body) {
		t.Error("unannotated property should not be composable")
	}
	s.SetCompose(body)
	if !s.Composable(body) {
		t.Error("Composable after SetCompose")
	}
	if got := s.ComposableProperties(); !reflect.DeepEqual(got, []rdf.IRI{body}) {
		t.Errorf("ComposableProperties = %v", got)
	}
}

func TestHiddenAnnotationAndVocabulary(t *testing.T) {
	g := rdf.NewGraph()
	s := NewStore(g)
	p := rdf.IRI(ex + "internalKey")
	if s.Hidden(p) {
		t.Error("ordinary property should not be hidden")
	}
	s.SetHidden(p)
	if !s.Hidden(p) {
		t.Error("Hidden after SetHidden")
	}
	// The annotation vocabulary itself is always hidden.
	for _, v := range []rdf.IRI{rdf.AnnLabel, rdf.AnnValueType, rdf.AnnCompose,
		rdf.AnnHidden, rdf.AnnFacet, rdf.Label} {
		if !s.Hidden(v) {
			t.Errorf("vocabulary property %v should be hidden", v)
		}
	}
}

func TestFacetAnnotation(t *testing.T) {
	g := rdf.NewGraph()
	s := NewStore(g)
	p := rdf.IRI(ex + "cuisine")
	if s.IsFacet(p) {
		t.Error("unannotated facet")
	}
	s.SetFacet(p)
	if !s.IsFacet(p) {
		t.Error("IsFacet after SetFacet")
	}
}

func TestTreeShaped(t *testing.T) {
	g := rdf.NewGraph()
	s := NewStore(g)
	if s.TreeShaped() {
		t.Error("default should not be tree-shaped")
	}
	s.SetTreeShaped()
	if !s.TreeShaped() {
		t.Error("TreeShaped after SetTreeShaped")
	}
}

func TestNumericAndNavigationProperties(t *testing.T) {
	g := rdf.NewGraph()
	s := NewStore(g)
	item := rdf.IRI(ex + "i")
	g.Add(item, rdf.IRI(ex+"servings"), rdf.NewInteger(4))
	g.Add(item, rdf.IRI(ex+"cuisine"), rdf.IRI(ex+"Greek"))
	g.Add(item, rdf.IRI(ex+"secret"), rdf.NewInteger(1))
	s.SetHidden(rdf.IRI(ex + "secret"))

	nums := s.NumericProperties()
	if !reflect.DeepEqual(nums, []rdf.IRI{rdf.IRI(ex + "servings")}) {
		t.Errorf("NumericProperties = %v", nums)
	}
	nav := s.NavigationProperties()
	// secret hidden, annotation triples hidden; cuisine + servings remain.
	want := []rdf.IRI{rdf.IRI(ex + "cuisine"), rdf.IRI(ex + "servings")}
	if !reflect.DeepEqual(nav, want) {
		t.Errorf("NavigationProperties = %v, want %v", nav, want)
	}
}

package inbox

import (
	"testing"
	"time"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func TestBuildMixesMessagesAndNews(t *testing.T) {
	g := Build(Config{})
	msgs := g.SubjectsOfType(ClassMessage)
	news := g.SubjectsOfType(ClassNewsItem)
	if len(msgs) == 0 || len(news) == 0 {
		t.Fatalf("messages=%d news=%d; need both for the type-refinement suggestion", len(msgs), len(news))
	}
	if len(msgs)+len(news) != 180 {
		t.Errorf("total = %d", len(msgs)+len(news))
	}
}

func TestEveryMailHasBodyDocument(t *testing.T) {
	g := Build(Config{Messages: 50})
	for _, m := range append(g.SubjectsOfType(ClassMessage), g.SubjectsOfType(ClassNewsItem)...) {
		body, ok := g.Object(m, PropBody)
		if !ok {
			t.Fatalf("%s missing body", m)
		}
		b := body.(rdf.IRI)
		if !g.Has(b, rdf.Type, ClassDocument) {
			t.Errorf("body %s untyped", b)
		}
		for _, p := range []rdf.IRI{PropContent, PropCreator, PropDate} {
			if _, ok := g.Object(b, p); !ok {
				t.Errorf("body %s missing %s", b, p.LocalName())
			}
		}
	}
}

func TestBodyCompositionAnnotation(t *testing.T) {
	g := Build(Config{Messages: 10})
	sch := schema.NewStore(g)
	if !sch.Composable(PropBody) {
		t.Error("body must carry the composition annotation (§6.1)")
	}
	if sch.ValueType(PropSent) != schema.Date {
		t.Errorf("sent type = %v", sch.ValueType(PropSent))
	}
}

func TestSentDatesWithinWindow(t *testing.T) {
	start := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	g := Build(Config{Messages: 60, Start: start})
	for _, m := range g.SubjectsOfType(ClassMessage) {
		o, ok := g.Object(m, PropSent)
		if !ok {
			t.Fatalf("%s missing sent", m)
		}
		ts, ok := o.(rdf.Literal).Time()
		if !ok {
			t.Fatalf("unparseable sent %v", o)
		}
		if ts.Before(start) || ts.After(start.AddDate(0, 3, 0)) {
			t.Errorf("sent %v outside window", ts)
		}
	}
}

func TestSendersAreResources(t *testing.T) {
	g := Build(Config{Messages: 40})
	for _, m := range g.SubjectsOfType(ClassMessage)[:5] {
		from, ok := g.Object(m, PropFrom)
		if !ok {
			t.Fatal("missing from")
		}
		p := from.(rdf.IRI)
		if !g.Has(p, rdf.Type, ClassPerson) {
			t.Errorf("sender %s untyped", p)
		}
		if !g.HasLabel(p) {
			t.Errorf("sender %s unlabeled", p)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Build(Config{Messages: 30, Seed: 5})
	b := Build(Config{Messages: 30, Seed: 5})
	if len(a.AllStatements()) != len(b.AllStatements()) {
		t.Fatal("nondeterministic size")
	}
}

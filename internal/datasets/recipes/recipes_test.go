package recipes

import (
	"strings"
	"testing"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func smallCorpus(t *testing.T) *rdf.Graph {
	t.Helper()
	return Build(Config{Recipes: 300, Seed: 7})
}

func TestIngredientVocabularySize(t *testing.T) {
	g := smallCorpus(t)
	ings := g.SubjectsOfType(ClassIngredient)
	if len(ings) != TotalIngredients {
		t.Errorf("ingredients = %d, want %d", len(ings), TotalIngredients)
	}
	// Every ingredient belongs to exactly one group with a label.
	for _, ing := range ings {
		groups := g.Objects(ing, PropGroup)
		if len(groups) != 1 {
			t.Fatalf("%s has %d groups", ing, len(groups))
		}
		if !g.HasLabel(ing) {
			t.Errorf("%s unlabeled", ing)
		}
	}
}

func TestRecipeShape(t *testing.T) {
	g := smallCorpus(t)
	rs := g.SubjectsOfType(ClassRecipe)
	if len(rs) != 300 {
		t.Fatalf("recipes = %d", len(rs))
	}
	for _, r := range rs[:20] {
		if len(g.Objects(r, PropCuisine)) != 1 {
			t.Errorf("%s cuisine count wrong", r)
		}
		if len(g.Objects(r, PropCourse)) != 1 {
			t.Errorf("%s course count wrong", r)
		}
		if n := g.ObjectCount(r, PropIngredient); n < 3 || n > 10 {
			t.Errorf("%s has %d ingredients", r, n)
		}
		if _, ok := g.Object(r, PropTitle); !ok {
			t.Errorf("%s missing title", r)
		}
		if _, ok := g.Object(r, PropContent); !ok {
			t.Errorf("%s missing content", r)
		}
		sv, _ := g.Object(r, PropServings)
		if v, ok := sv.(rdf.Literal).Int(); !ok || v < 1 || v > 12 {
			t.Errorf("%s servings = %v", r, sv)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Build(Config{Recipes: 50, Seed: 3})
	b := Build(Config{Recipes: 50, Seed: 3})
	as, bs := a.AllStatements(), b.AllStatements()
	if len(as) != len(bs) {
		t.Fatalf("nondeterministic sizes: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i].Key() != bs[i].Key() {
			t.Fatalf("statement %d differs: %v vs %v", i, as[i], bs[i])
		}
	}
	c := Build(Config{Recipes: 50, Seed: 4})
	if len(c.AllStatements()) == 0 {
		t.Fatal("empty corpus")
	}
}

func TestAnnotationsPresent(t *testing.T) {
	g := smallCorpus(t)
	sch := schema.NewStore(g)
	if sch.ValueType(PropServings) != schema.Integer {
		t.Error("servings should be annotated integer")
	}
	if !sch.Composable(PropIngredient) {
		t.Error("ingredient should be annotated composable")
	}
	if !sch.IsFacet(PropCuisine) {
		t.Error("cuisine should be a preferred facet")
	}
	if sch.Label(PropMethod) != "cooking method" {
		t.Errorf("method label = %q", sch.Label(PropMethod))
	}
}

func TestSkipAnnotations(t *testing.T) {
	g := Build(Config{Recipes: 20, Seed: 1, SkipAnnotations: true})
	sch := schema.NewStore(g)
	if sch.Composable(PropIngredient) || sch.IsFacet(PropCuisine) {
		t.Error("SkipAnnotations should omit annotations")
	}
}

func TestStudyTaskPreconditions(t *testing.T) {
	// The user study's directed tasks need: (1) walnut recipes with nut-free
	// similar recipes around, (2) Mexican recipes in every menu course.
	g := Build(Config{Recipes: 6444, Seed: 1})

	walnutRecipes := g.Subjects(PropIngredient, Ingredient("Walnuts"))
	if len(walnutRecipes) < 20 {
		t.Errorf("only %d walnut recipes", len(walnutRecipes))
	}

	mexican := g.Subjects(PropCuisine, Cuisine("Mexican"))
	if len(mexican) < 100 {
		t.Fatalf("only %d Mexican recipes", len(mexican))
	}
	courses := map[string]int{}
	for _, r := range mexican {
		if c, ok := g.Object(r, PropCourse); ok {
			courses[g.TermLabel(c)]++
		}
	}
	for _, want := range []string{"Soup", "Appetizer", "Salad", "Dessert"} {
		if courses[want] == 0 {
			t.Errorf("no Mexican %s recipes", want)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Popular (early) ingredients appear in many more recipes than tail
	// ones — the Figure 1 "large number of the recipes have cloves, garlic,
	// olives and oil" shape.
	g := Build(Config{Recipes: 2000, Seed: 1})
	garlic := g.SubjectCount(PropIngredient, Ingredient("Garlic"))
	blend := g.SubjectCount(PropIngredient, Ingredient("Spice Blend 40"))
	if garlic < blend*3 {
		t.Errorf("skew too flat: garlic=%d spice-blend-40=%d", garlic, blend)
	}
}

func TestCuisineCorrelation(t *testing.T) {
	g := Build(Config{Recipes: 2000, Seed: 1})
	greek := g.Subjects(PropCuisine, Cuisine("Greek"))
	withFeta := 0
	for _, r := range greek {
		if g.Has(r, PropIngredient, Ingredient("Feta")) {
			withFeta++
		}
	}
	if withFeta*5 < len(greek) { // at least ~20% of Greek recipes have feta
		t.Errorf("feta in %d/%d greek recipes", withFeta, len(greek))
	}
}

func TestTitlesMentionCuisine(t *testing.T) {
	g := smallCorpus(t)
	rs := g.SubjectsOfType(ClassRecipe)
	r := rs[0]
	title, _ := g.Object(r, PropTitle)
	cuisine, _ := g.Object(r, PropCuisine)
	cname := g.TermLabel(cuisine)
	if !strings.Contains(title.(rdf.Literal).Lexical, cname) {
		t.Errorf("title %q should mention cuisine %q", title, cname)
	}
}

func TestSingular(t *testing.T) {
	tests := map[string]string{
		"Walnuts":  "Walnut",
		"Tomatoes": "Tomato",
		"Cherries": "Cherry",
		"Feta":     "Feta",
		"Molasses": "Molasses",
	}
	for in, want := range tests {
		if got := singular(in); got != want {
			t.Errorf("singular(%q) = %q, want %q", in, got, want)
		}
	}
}

// Package recipes generates the synthetic stand-in for the Epicurious.com
// corpus used in the paper's user study (§6.3): "6,444 recipes and metadata
// extracted from the site Epicurious.com. 244 ingredients were
// semi-automatically extracted from the recipes and grouped".
//
// The real crawl is proprietary (and long gone), so this generator builds a
// deterministic corpus with the same shape: recipes typed by cuisine,
// course and cooking method; a 244-ingredient vocabulary partitioned into
// groups (nuts, dairy, vegetables, ...); Zipf-like ingredient popularity so
// facet counts and tf·idf weights behave like real data (Figure 1's "a
// large number of the recipes have cloves, garlic, olives and oil"); and
// cuisine-correlated ingredient pools so similarity navigation is
// meaningful. Both directed study tasks are supported: nut-bearing recipes
// with nut-free neighbours (task 1) and Mexican dishes across all menu
// courses (task 2).
package recipes

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// NS is the vocabulary namespace of the recipe dataset.
const NS = "http://magnet.example.org/recipes#"

// Vocabulary.
var (
	ClassRecipe     = rdf.IRI(NS + "Recipe")
	ClassIngredient = rdf.IRI(NS + "Ingredient")
	ClassGroup      = rdf.IRI(NS + "IngredientGroup")

	PropCuisine    = rdf.IRI(NS + "cuisine")
	PropCourse     = rdf.IRI(NS + "course")
	PropMethod     = rdf.IRI(NS + "cookingMethod")
	PropIngredient = rdf.IRI(NS + "ingredient")
	PropGroup      = rdf.IRI(NS + "group")
	PropServings   = rdf.IRI(NS + "servings")
	PropPrepTime   = rdf.IRI(NS + "prepMinutes")
	PropContent    = rdf.IRI(NS + "content")
	PropTitle      = rdf.DCTitle
)

// Cuisine returns the IRI of a named cuisine (e.g. "Greek").
func Cuisine(name string) rdf.IRI { return rdf.IRI(NS + "cuisine/" + name) }

// Course returns the IRI of a named course (e.g. "Dessert").
func Course(name string) rdf.IRI { return rdf.IRI(NS + "course/" + name) }

// Method returns the IRI of a named cooking method (e.g. "Bake").
func Method(name string) rdf.IRI { return rdf.IRI(NS + "method/" + name) }

// Ingredient returns the IRI of a named ingredient (e.g. "Walnuts").
func Ingredient(name string) rdf.IRI { return rdf.IRI(NS + "ingredient/" + slug(name)) }

// Group returns the IRI of a named ingredient group (e.g. "Nuts").
func Group(name string) rdf.IRI { return rdf.IRI(NS + "group/" + name) }

// Recipe returns the IRI of the i-th generated recipe.
func Recipe(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%srecipe/%05d", NS, i)) }

func slug(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), " ", "-")
}

// Cuisines is the cuisine vocabulary, most popular first.
var Cuisines = []string{
	"American", "Italian", "Mexican", "French", "Chinese", "Greek",
	"Indian", "Thai", "Japanese", "Spanish", "Moroccan", "German",
	"Vietnamese", "Turkish", "Lebanese", "Korean", "Brazilian", "Ethiopian",
}

// Courses is the course vocabulary.
var Courses = []string{
	"Appetizer", "Soup", "Salad", "Main", "Side", "Dessert", "Beverage",
}

// Methods is the cooking-method vocabulary.
var Methods = []string{
	"Bake", "Grill", "Fry", "Saute", "Roast", "Boil", "Steam", "Raw",
	"Braise", "Broil", "Poach", "Simmer",
}

// ingredientGroups maps group name → curated member names. The totals are
// padded to exactly 244 ingredients by Build (see padIngredients).
var ingredientGroups = map[string][]string{
	"Nuts": {
		"Walnuts", "Almonds", "Pecans", "Hazelnuts", "Pistachios",
		"Cashews", "Pine Nuts", "Macadamia Nuts", "Peanuts", "Chestnuts",
	},
	"Dairy": {
		"Butter", "Milk", "Cream", "Yogurt", "Feta", "Parmesan",
		"Mozzarella", "Cheddar", "Cream Cheese", "Sour Cream", "Ricotta",
		"Goat Cheese", "Buttermilk", "Creme Fraiche",
	},
	"Vegetables": {
		"Garlic", "Onions", "Tomatoes", "Carrots", "Celery", "Spinach",
		"Zucchini", "Eggplant", "Bell Peppers", "Mushrooms", "Potatoes",
		"Broccoli", "Cauliflower", "Cabbage", "Leeks", "Cucumbers",
		"Artichokes", "Asparagus", "Green Beans", "Peas", "Corn",
		"Pumpkin", "Sweet Potatoes", "Radishes", "Beets", "Kale", "Shallots",
	},
	"Fruits": {
		"Apples", "Lemons", "Limes", "Oranges", "Bananas", "Strawberries",
		"Raspberries", "Blueberries", "Peaches", "Pears", "Cherries",
		"Pineapple", "Mangoes", "Grapes", "Apricots", "Plums", "Figs",
		"Dates", "Raisins", "Cranberries", "Coconut", "Avocados",
	},
	"Herbs and Spices": {
		"Parsley", "Basil", "Cilantro", "Mint", "Oregano", "Thyme",
		"Rosemary", "Dill", "Sage", "Cloves", "Cinnamon", "Cumin",
		"Paprika", "Turmeric", "Ginger", "Nutmeg", "Cardamom", "Saffron",
		"Chili Powder", "Black Pepper", "Cayenne", "Coriander", "Bay Leaves",
		"Vanilla", "Allspice", "Fennel Seeds", "Mustard Seeds", "Star Anise",
	},
	"Grains and Pasta": {
		"Rice", "Pasta", "Bread", "Flour", "Couscous", "Quinoa", "Oats",
		"Barley", "Bulgur", "Polenta", "Noodles", "Tortillas", "Breadcrumbs",
		"Cornmeal", "Semolina",
	},
	"Meat": {
		"Chicken", "Beef", "Pork", "Lamb", "Bacon", "Sausage", "Turkey",
		"Duck", "Veal", "Ham", "Chorizo", "Prosciutto",
	},
	"Seafood": {
		"Shrimp", "Salmon", "Tuna", "Cod", "Mussels", "Clams", "Crab",
		"Lobster", "Anchovies", "Scallops", "Squid", "Halibut",
	},
	"Legumes": {
		"Black Beans", "Chickpeas", "Lentils", "Kidney Beans", "White Beans",
		"Pinto Beans", "Edamame", "Split Peas",
	},
	"Oils and Fats": {
		"Olive Oil", "Vegetable Oil", "Sesame Oil", "Coconut Oil", "Lard",
		"Shortening", "Ghee",
	},
	"Sweeteners": {
		"Sugar", "Honey", "Maple Syrup", "Brown Sugar", "Molasses",
		"Agave Nectar", "Corn Syrup",
	},
	"Condiments": {
		"Soy Sauce", "Vinegar", "Mustard", "Mayonnaise", "Ketchup",
		"Fish Sauce", "Worcestershire", "Hot Sauce", "Tahini", "Miso",
		"Capers", "Olives", "Pickles", "Salsa", "Pesto", "Hoisin Sauce",
	},
	"Baking": {
		"Eggs", "Baking Powder", "Baking Soda", "Yeast", "Chocolate",
		"Cocoa Powder", "Gelatin", "Cornstarch", "Almond Extract",
		"Chocolate Chips", "Powdered Sugar",
	},
	"Beverages": {
		"Red Wine", "White Wine", "Beer", "Coffee", "Rum", "Brandy",
		"Orange Juice", "Coconut Milk", "Stock", "Tomato Juice",
	},
}

// TotalIngredients is the paper's ingredient vocabulary size.
const TotalIngredients = 244

// cuisinePools maps cuisine → characteristic ingredient names drawn
// preferentially by that cuisine's recipes.
var cuisinePools = map[string][]string{
	"Greek":    {"Feta", "Olives", "Olive Oil", "Parsley", "Oregano", "Lemons", "Yogurt", "Spinach", "Walnuts", "Honey", "Eggplant", "Mint"},
	"Mexican":  {"Black Beans", "Tortillas", "Cilantro", "Limes", "Chili Powder", "Avocados", "Corn", "Tomatoes", "Salsa", "Pinto Beans", "Cayenne", "Chorizo"},
	"Italian":  {"Pasta", "Parmesan", "Basil", "Olive Oil", "Tomatoes", "Garlic", "Mozzarella", "Prosciutto", "Ricotta", "Pesto", "Polenta", "Red Wine"},
	"French":   {"Butter", "Cream", "Shallots", "Red Wine", "Thyme", "Brandy", "Creme Fraiche", "Leeks", "Mustard", "Eggs"},
	"Chinese":  {"Soy Sauce", "Ginger", "Sesame Oil", "Rice", "Noodles", "Garlic", "Hoisin Sauce", "Cashews", "Peanuts"},
	"Indian":   {"Cumin", "Turmeric", "Cardamom", "Ghee", "Lentils", "Chickpeas", "Yogurt", "Ginger", "Rice", "Cilantro", "Coconut Milk"},
	"Thai":     {"Fish Sauce", "Coconut Milk", "Limes", "Cilantro", "Peanuts", "Rice", "Ginger", "Hot Sauce", "Mint"},
	"Japanese": {"Soy Sauce", "Miso", "Rice", "Ginger", "Sesame Oil", "Salmon", "Tuna", "Noodles", "Edamame"},
	"Spanish":  {"Chorizo", "Saffron", "Olive Oil", "Rice", "Paprika", "Tomatoes", "Garlic", "Shrimp", "Mussels", "Almonds"},
	"American": {"Butter", "Flour", "Sugar", "Eggs", "Bacon", "Cheddar", "Corn", "Ketchup", "Chicken", "Potatoes", "Chocolate Chips", "Maple Syrup", "Pecans"},
	"Moroccan": {"Couscous", "Cinnamon", "Cumin", "Apricots", "Dates", "Almonds", "Chickpeas", "Saffron", "Mint", "Lamb"},
}

// Config controls generation.
type Config struct {
	// Recipes is the corpus size; 0 means the paper's 6,444.
	Recipes int
	// Seed makes the corpus deterministic; 0 means seed 1.
	Seed int64
	// SkipAnnotations omits the schema annotations (labels, value types,
	// facet preferences, the ingredient→group composition), reproducing an
	// unannotated import like Figure 7's.
	SkipAnnotations bool
}

// Build generates the corpus into a fresh graph.
func Build(cfg Config) *rdf.Graph {
	g := rdf.NewGraph()
	BuildInto(g, cfg)
	return g
}

// BuildInto generates the corpus into g.
func BuildInto(g *rdf.Graph, cfg Config) {
	n := cfg.Recipes
	if n <= 0 {
		n = 6444
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	groups, _ := padIngredients()

	// Vocabulary triples: cuisines, courses, methods, grouped ingredients.
	for _, c := range Cuisines {
		g.Add(Cuisine(c), rdf.Type, rdf.IRI(NS+"CuisineType"))
		g.Add(Cuisine(c), rdf.Label, rdf.NewString(c))
	}
	for _, c := range Courses {
		g.Add(Course(c), rdf.Type, rdf.IRI(NS+"CourseType"))
		g.Add(Course(c), rdf.Label, rdf.NewString(c))
	}
	for _, m := range Methods {
		g.Add(Method(m), rdf.Type, rdf.IRI(NS+"MethodType"))
		g.Add(Method(m), rdf.Label, rdf.NewString(m))
	}
	for _, group := range groupOrder(groups) {
		gi := Group(group)
		g.Add(gi, rdf.Type, ClassGroup)
		g.Add(gi, rdf.Label, rdf.NewString(group))
		for _, name := range groups[group] {
			ing := Ingredient(name)
			g.Add(ing, rdf.Type, ClassIngredient)
			g.Add(ing, rdf.Label, rdf.NewString(name))
			g.Add(ing, PropGroup, gi)
		}
	}

	// Global popularity order for the Zipf draw: the pantry staples first,
	// echoing Figure 1's caption ("a large number of the recipes have
	// cloves, garlic, olives and oil as ingredients").
	staples := []string{
		"Garlic", "Olive Oil", "Cloves", "Olives", "Onions", "Butter",
		"Sugar", "Eggs", "Flour", "Black Pepper", "Lemons", "Tomatoes",
	}
	inStaples := make(map[string]bool, len(staples))
	for _, s := range staples {
		inStaples[s] = true
	}
	allIngredients := append([]string{}, staples...)
	for _, group := range groupOrder(groups) {
		for _, name := range groups[group] {
			if !inStaples[name] {
				allIngredients = append(allIngredients, name)
			}
		}
	}

	if !cfg.SkipAnnotations {
		annotate(g)
	}

	// Recipes.
	for i := 0; i < n; i++ {
		buildRecipe(g, rng, i, allIngredients)
	}
}

// annotate adds the schema annotations a "schema expert" would provide:
// labels, value types, facet preferences, and the ingredient composition
// (so "recipes whose ingredient is in group Nuts" is a model coordinate and
// a navigable constraint — the §3.3 dairy/vegetables refinement).
func annotate(g *rdf.Graph) {
	sch := schema.NewStore(g)
	sch.SetLabel(PropCuisine, "cuisine")
	sch.SetLabel(PropCourse, "course")
	sch.SetLabel(PropMethod, "cooking method")
	sch.SetLabel(PropIngredient, "ingredient")
	sch.SetLabel(PropGroup, "group")
	sch.SetLabel(PropServings, "servings")
	sch.SetLabel(PropPrepTime, "preparation minutes")
	sch.SetLabel(PropContent, "directions")
	sch.SetValueType(PropServings, schema.Integer)
	sch.SetValueType(PropPrepTime, schema.Integer)
	sch.SetFacet(PropCuisine)
	sch.SetFacet(PropCourse)
	sch.SetFacet(PropMethod)
	sch.SetFacet(PropIngredient)
	sch.SetCompose(PropIngredient)
}

func buildRecipe(g *rdf.Graph, rng *rand.Rand, i int, all []string) {
	r := Recipe(i)
	cuisine := Cuisines[zipf(rng, len(Cuisines))]
	course := Courses[zipf(rng, len(Courses))]
	method := methodFor(rng, course)

	g.Add(r, rdf.Type, ClassRecipe)
	g.Add(r, PropCuisine, Cuisine(cuisine))
	g.Add(r, PropCourse, Course(course))
	g.Add(r, PropMethod, Method(method))
	g.Add(r, PropServings, rdf.NewInteger(int64(rng.Intn(12)+1)))
	g.Add(r, PropPrepTime, rdf.NewInteger(int64(rng.Intn(48)*5+5)))

	pool := cuisinePools[cuisine]
	nIng := rng.Intn(8) + 3
	chosen := make(map[string]bool, nIng)
	var names []string
	for len(names) < nIng {
		var name string
		if len(pool) > 0 && rng.Float64() < 0.55 {
			name = pool[rng.Intn(len(pool))]
		} else {
			name = all[zipf(rng, len(all))]
		}
		if chosen[name] {
			continue
		}
		chosen[name] = true
		names = append(names, name)
		g.Add(r, PropIngredient, Ingredient(name))
	}

	key := names[0]
	title := fmt.Sprintf("%s %s %s", cuisine, singular(key), dishWord(rng, course))
	g.Add(r, PropTitle, rdf.NewString(title))
	content := fmt.Sprintf("%s the %s with %s. Serve as a %s dish.",
		method, strings.ToLower(strings.Join(names[:min(3, len(names))], ", ")),
		strings.ToLower(strings.Join(names[min(3, len(names)):], ", ")),
		strings.ToLower(course))
	g.Add(r, PropContent, rdf.NewString(content))
}

// zipf draws an index in [0, n) with probability ∝ 1/(i+2), favouring early
// entries (popular cuisines, common ingredients).
func zipf(rng *rand.Rand, n int) int {
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / float64(i+2)
	}
	x := rng.Float64() * total
	for i := 0; i < n; i++ {
		x -= 1 / float64(i+2)
		if x <= 0 {
			return i
		}
	}
	return n - 1
}

func methodFor(rng *rand.Rand, course string) string {
	switch course {
	case "Dessert":
		return []string{"Bake", "Bake", "Poach", "Raw"}[rng.Intn(4)]
	case "Salad":
		return []string{"Raw", "Raw", "Grill"}[rng.Intn(3)]
	case "Soup":
		return []string{"Simmer", "Boil", "Braise"}[rng.Intn(3)]
	case "Beverage":
		return []string{"Raw", "Simmer"}[rng.Intn(2)]
	default:
		return Methods[rng.Intn(len(Methods))]
	}
}

func dishWord(rng *rand.Rand, course string) string {
	words := map[string][]string{
		"Appetizer": {"Bites", "Dip", "Fritters", "Skewers", "Tart"},
		"Soup":      {"Soup", "Chowder", "Bisque", "Broth"},
		"Salad":     {"Salad", "Slaw", "Medley"},
		"Main":      {"Stew", "Casserole", "Roast", "Curry", "Pie", "Plate"},
		"Side":      {"Gratin", "Pilaf", "Mash", "Saute"},
		"Dessert":   {"Cake", "Tart", "Cobbler", "Pudding", "Cookies", "Pie"},
		"Beverage":  {"Punch", "Smoothie", "Cooler", "Tonic"},
	}[course]
	return words[rng.Intn(len(words))]
}

func singular(name string) string {
	if strings.HasSuffix(name, "oes") {
		return name[:len(name)-2]
	}
	if strings.HasSuffix(name, "ies") {
		return name[:len(name)-3] + "y"
	}
	if strings.HasSuffix(name, "s") && !strings.HasSuffix(name, "ss") &&
		!strings.HasSuffix(name, "ses") {
		return name[:len(name)-1]
	}
	return name
}

// padIngredients returns the group → member map padded to exactly
// TotalIngredients names, plus a name → group reverse map.
func padIngredients() (map[string][]string, map[string]string) {
	groups := make(map[string][]string, len(ingredientGroups))
	total := 0
	for gname, members := range ingredientGroups {
		cp := make([]string, len(members))
		copy(cp, members)
		groups[gname] = cp
		total += len(cp)
	}
	// Pad deterministically with regional spice blends.
	for i := 1; total < TotalIngredients; i++ {
		name := fmt.Sprintf("Spice Blend %d", i)
		groups["Herbs and Spices"] = append(groups["Herbs and Spices"], name)
		total++
	}
	// Trim if curation overshot (keeps the constant authoritative).
	for total > TotalIngredients {
		hs := groups["Herbs and Spices"]
		groups["Herbs and Spices"] = hs[:len(hs)-1]
		total--
	}
	byName := make(map[string]string, total)
	for gname, members := range groups {
		for _, m := range members {
			byName[m] = gname
		}
	}
	return groups, byName
}

func groupOrder(groups map[string][]string) []string {
	out := make([]string, 0, len(groups))
	for g := range groups {
		out = append(out, g)
	}
	// Stable order for deterministic graphs.
	sort.Strings(out)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

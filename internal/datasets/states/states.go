// Package states provides the 50-US-states dataset of the paper's §6.1
// (originally "extracted from http://www.50states.com and made available as
// a comma-separated values file"). The data here is the real public record
// — state birds, flowers, capitals, land areas and admission years — which
// lets the reproduction verify the paper's concrete observations: "seven
// states have 'cardinal' in their bird names" and Figure 8's "one state
// (Alaska) having a much larger area than the rest".
//
// Build imports the CSV exactly as the paper received it: every value a
// plain string, no labels (Figure 7). Annotate then adds what the paper's
// schema expert added: property labels and integer value types for area and
// admission year (Figure 8).
package states

import (
	"fmt"
	"strings"

	"magnet/internal/datasets/csvrdf"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// NS is the dataset namespace.
const NS = "http://magnet.example.org/states#"

// Column properties (as imported from the CSV header).
var (
	PropName     = csvrdf.Prop(NS, "state")
	PropCapital  = csvrdf.Prop(NS, "capital")
	PropBird     = csvrdf.Prop(NS, "bird")
	PropFlower   = csvrdf.Prop(NS, "flower")
	PropArea     = csvrdf.Prop(NS, "area")
	PropAdmitted = csvrdf.Prop(NS, "admitted")
)

// State returns the row resource for a state name.
func State(name string) rdf.IRI { return csvrdf.Row(NS, name) }

// CSV returns the dataset in its original comma-separated form.
func CSV() string { return csvData }

// Build imports the CSV into a fresh graph, exactly "as given": plain
// strings, no labels, no types (the Figure 7 configuration). The error
// path only fires if the embedded CSV constant is edited into invalidity.
func Build() (*rdf.Graph, error) {
	g := rdf.NewGraph()
	if _, err := csvrdf.FromCSV(g, strings.NewReader(csvData), NS, "state"); err != nil {
		return nil, fmt.Errorf("states: embedded CSV: %w", err)
	}
	return g, nil
}

// Annotate adds the paper's Figure 8 annotations: human-readable labels on
// each property and integer value types on area and admission year, which
// unlock range widgets and outlier-visible displays.
func Annotate(g *rdf.Graph) {
	sch := schema.NewStore(g)
	sch.SetLabel(PropName, "State")
	sch.SetLabel(PropCapital, "Capital")
	sch.SetLabel(PropBird, "State bird")
	sch.SetLabel(PropFlower, "State flower")
	sch.SetLabel(PropArea, "Area (sq mi)")
	sch.SetLabel(PropAdmitted, "Year admitted")
	sch.SetValueType(PropArea, schema.Integer)
	sch.SetValueType(PropAdmitted, schema.Integer)
}

// csvData is the real 50-states record: name, capital, state bird, state
// flower, total area in square miles, year of admission to the Union.
const csvData = `state,capital,bird,flower,area,admitted
Alabama,Montgomery,Yellowhammer,Camellia,52420,1819
Alaska,Juneau,Willow Ptarmigan,Forget-me-not,665384,1959
Arizona,Phoenix,Cactus Wren,Saguaro Cactus Blossom,113990,1912
Arkansas,Little Rock,Mockingbird,Apple Blossom,53179,1836
California,Sacramento,California Valley Quail,California Poppy,163695,1850
Colorado,Denver,Lark Bunting,Rocky Mountain Columbine,104094,1876
Connecticut,Hartford,American Robin,Mountain Laurel,5543,1788
Delaware,Dover,Blue Hen Chicken,Peach Blossom,2489,1787
Florida,Tallahassee,Mockingbird,Orange Blossom,65758,1845
Georgia,Atlanta,Brown Thrasher,Cherokee Rose,59425,1788
Hawaii,Honolulu,Nene,Yellow Hibiscus,10932,1959
Idaho,Boise,Mountain Bluebird,Syringa,83569,1890
Illinois,Springfield,Cardinal,Violet,57914,1818
Indiana,Indianapolis,Cardinal,Peony,36420,1816
Iowa,Des Moines,Eastern Goldfinch,Wild Rose,56273,1846
Kansas,Topeka,Western Meadowlark,Sunflower,82278,1861
Kentucky,Frankfort,Cardinal,Goldenrod,40408,1792
Louisiana,Baton Rouge,Brown Pelican,Magnolia,52378,1812
Maine,Augusta,Black-capped Chickadee,White Pine Cone and Tassel,35380,1820
Maryland,Annapolis,Baltimore Oriole,Black-eyed Susan,12406,1788
Massachusetts,Boston,Black-capped Chickadee,Mayflower,10554,1788
Michigan,Lansing,American Robin,Apple Blossom,96714,1837
Minnesota,St. Paul,Common Loon,Pink and White Lady's Slipper,86936,1858
Mississippi,Jackson,Mockingbird,Magnolia,48432,1817
Missouri,Jefferson City,Eastern Bluebird,Hawthorn,69707,1821
Montana,Helena,Western Meadowlark,Bitterroot,147040,1889
Nebraska,Lincoln,Western Meadowlark,Goldenrod,77348,1867
Nevada,Carson City,Mountain Bluebird,Sagebrush,110572,1864
New Hampshire,Concord,Purple Finch,Purple Lilac,9349,1788
New Jersey,Trenton,Eastern Goldfinch,Purple Violet,8723,1787
New Mexico,Santa Fe,Greater Roadrunner,Yucca Flower,121590,1912
New York,Albany,Eastern Bluebird,Rose,54555,1788
North Carolina,Raleigh,Cardinal,Flowering Dogwood,53819,1789
North Dakota,Bismarck,Western Meadowlark,Wild Prairie Rose,70698,1889
Ohio,Columbus,Cardinal,Scarlet Carnation,44826,1803
Oklahoma,Oklahoma City,Scissor-tailed Flycatcher,Mistletoe,69899,1907
Oregon,Salem,Western Meadowlark,Oregon Grape,98379,1859
Pennsylvania,Harrisburg,Ruffed Grouse,Mountain Laurel,46054,1787
Rhode Island,Providence,Rhode Island Red,Violet,1545,1790
South Carolina,Columbia,Carolina Wren,Yellow Jessamine,32020,1788
South Dakota,Pierre,Ring-necked Pheasant,Pasque Flower,77116,1889
Tennessee,Nashville,Mockingbird,Iris,42144,1796
Texas,Austin,Mockingbird,Bluebonnet,268596,1845
Utah,Salt Lake City,California Gull,Sego Lily,84897,1896
Vermont,Montpelier,Hermit Thrush,Red Clover,9616,1791
Virginia,Richmond,Cardinal,American Dogwood,42775,1788
Washington,Olympia,Willow Goldfinch,Coast Rhododendron,71298,1889
West Virginia,Charleston,Cardinal,Rhododendron,24230,1863
Wisconsin,Madison,American Robin,Wood Violet,65496,1848
Wyoming,Cheyenne,Western Meadowlark,Indian Paintbrush,97813,1890
`

package states

import (
	"strings"
	"testing"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func TestFiftyStates(t *testing.T) {
	g, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, s := range g.AllSubjects() {
		if strings.Contains(string(s), "row/") {
			rows++
		}
	}
	if rows != 50 {
		t.Errorf("states = %d, want 50", rows)
	}
}

func TestSevenCardinalStates(t *testing.T) {
	// The paper's §6.1 observation: "seven states have 'cardinal' in their
	// bird names".
	g, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	cardinals := g.Subjects(PropBird, rdf.NewString("Cardinal"))
	if len(cardinals) != 7 {
		t.Fatalf("cardinal states = %d, want 7: %v", len(cardinals), cardinals)
	}
	want := map[rdf.IRI]bool{
		State("Illinois"): true, State("Indiana"): true, State("Kentucky"): true,
		State("North Carolina"): true, State("Ohio"): true, State("Virginia"): true,
		State("West Virginia"): true,
	}
	for _, s := range cardinals {
		if !want[s] {
			t.Errorf("unexpected cardinal state %s", s)
		}
	}
}

func TestUnannotatedIsStringly(t *testing.T) {
	g, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.NewStore(g)
	// Figure 7: no labels, area is a plain string (Text), raw identifiers.
	if sch.HasLabel(PropBird) {
		t.Error("bird should be unlabeled before Annotate")
	}
	if vt := sch.ValueType(PropArea); vt != schema.Text {
		t.Errorf("unannotated area type = %v, want Text", vt)
	}
}

func TestAnnotateEnablesFigure8(t *testing.T) {
	g, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	Annotate(g)
	sch := schema.NewStore(g)
	if !sch.HasLabel(PropBird) || sch.Label(PropBird) != "State bird" {
		t.Errorf("bird label = %q", sch.Label(PropBird))
	}
	if vt := sch.ValueType(PropArea); vt != schema.Integer {
		t.Errorf("annotated area type = %v, want Integer", vt)
	}
	// Area values parse as numbers even though stored as strings.
	o, _ := g.Object(State("Alaska"), PropArea)
	f, ok := o.(rdf.Literal).Float()
	if !ok || f != 665384 {
		t.Errorf("Alaska area = %v", o)
	}
}

func TestAlaskaIsAreaOutlier(t *testing.T) {
	g, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	var maxState rdf.IRI
	var maxArea float64
	for _, s := range g.AllSubjects() {
		o, ok := g.Object(s, PropArea)
		if !ok {
			continue
		}
		if f, ok := o.(rdf.Literal).Float(); ok && f > maxArea {
			maxArea, maxState = f, s
		}
	}
	if maxState != State("Alaska") {
		t.Errorf("largest state = %s", maxState)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	if !strings.HasPrefix(CSV(), "state,capital,bird,flower,area,admitted") {
		t.Error("CSV header changed")
	}
	if n := strings.Count(CSV(), "\n"); n != 51 {
		t.Errorf("CSV lines = %d, want 51 (header + 50)", n)
	}
}

// Package courses generates a course-catalog dataset shaped like the
// "independent external conversions to RDF of the data behind MIT
// OpenCourseWare" the paper evaluated on (§6.1). Those datasets "did have
// label and attribute-value annotations, allowing Magnet to present easy to
// understand navigation suggestions", but also exposed attributes that
// "were determined to be algorithmically significant for refining [yet]
// were not deemed important for end-user navigation" — reproduced here by
// an internal catalog-key property that is distinctive (high idf, low
// entropy within departments) but human-opaque, which the magnet:hidden
// annotation can then suppress.
package courses

import (
	"fmt"
	"math/rand"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// NS is the dataset namespace.
const NS = "http://magnet.example.org/ocw#"

// Vocabulary.
var (
	ClassCourse = rdf.IRI(NS + "Course")

	PropDept       = rdf.IRI(NS + "department")
	PropInstructor = rdf.IRI(NS + "instructor")
	PropLevel      = rdf.IRI(NS + "level")
	PropSemester   = rdf.IRI(NS + "semester")
	PropUnits      = rdf.IRI(NS + "units")
	PropAbout      = rdf.IRI(NS + "description")
	// PropCatalogKey is the opaque internal attribute of §6.1.
	PropCatalogKey = rdf.IRI(NS + "xCatKey")
)

// Course returns the i-th course resource.
func Course(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%scourse/%03d", NS, i)) }

// Departments in the catalog.
var Departments = []string{
	"Electrical Engineering", "Mathematics", "Physics", "Biology",
	"Economics", "Architecture", "Linguistics", "Mechanical Engineering",
}

var levels = []string{"Undergraduate", "Graduate"}

var semesters = []string{"Fall 2003", "Spring 2004", "Fall 2004"}

var instructors = []string{
	"Prof. Adams", "Prof. Baker", "Prof. Chandra", "Prof. Duarte",
	"Prof. Eriksson", "Prof. Feld", "Prof. Gupta", "Prof. Hassan",
	"Prof. Ito", "Prof. Jones", "Prof. Karger", "Prof. Liu",
}

var subjectWords = [][]string{
	{"circuits", "signals", "systems", "electronics"},
	{"algebra", "calculus", "probability", "topology"},
	{"mechanics", "quantum", "relativity", "thermodynamics"},
	{"genetics", "cells", "ecology", "evolution"},
	{"markets", "pricing", "trade", "incentives"},
	{"design", "studios", "urbanism", "structures"},
	{"syntax", "semantics", "phonology", "grammar"},
	{"dynamics", "materials", "robotics", "manufacturing"},
}

// Config controls generation.
type Config struct {
	// Courses is the catalog size; 0 means 160.
	Courses int
	// Seed defaults to 1.
	Seed int64
	// HideCatalogKey applies the magnet:hidden annotation to the opaque
	// internal attribute (the paper's remedy for non-human-readable
	// suggestions).
	HideCatalogKey bool
}

// Build generates the catalog into a fresh graph with full labels and
// value-type annotations (these datasets arrived annotated).
func Build(cfg Config) *rdf.Graph {
	g := rdf.NewGraph()
	n := cfg.Courses
	if n <= 0 {
		n = 160
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	for i := 0; i < n; i++ {
		c := Course(i)
		d := rng.Intn(len(Departments))
		words := subjectWords[d]
		g.Add(c, rdf.Type, ClassCourse)
		g.Add(c, rdf.Label, rdf.NewString(fmt.Sprintf("%s %d.%02d", Departments[d], d+1, i%30)))
		g.Add(c, PropDept, rdf.NewString(Departments[d]))
		g.Add(c, PropInstructor, rdf.NewString(instructors[rng.Intn(len(instructors))]))
		g.Add(c, PropLevel, rdf.NewString(levels[rng.Intn(len(levels))]))
		g.Add(c, PropSemester, rdf.NewString(semesters[rng.Intn(len(semesters))]))
		g.Add(c, PropUnits, rdf.NewInteger(int64(rng.Intn(9)+3)))
		g.Add(c, PropAbout, rdf.NewString(fmt.Sprintf(
			"An introduction to %s and %s with laboratory work on %s.",
			words[rng.Intn(len(words))], words[rng.Intn(len(words))], words[rng.Intn(len(words))])))
		// Opaque internal key: shared within a department batch, so it is
		// algorithmically significant for refinement — but unreadable.
		g.Add(c, PropCatalogKey, rdf.NewString(fmt.Sprintf("0x%04X-%d", 0xA000+d*16, i%4)))
	}

	sch := schema.NewStore(g)
	sch.SetLabel(PropDept, "Department")
	sch.SetLabel(PropInstructor, "Instructor")
	sch.SetLabel(PropLevel, "Level")
	sch.SetLabel(PropSemester, "Semester")
	sch.SetLabel(PropUnits, "Units")
	sch.SetLabel(PropAbout, "Description")
	sch.SetValueType(PropUnits, schema.Integer)
	sch.SetFacet(PropDept)
	sch.SetFacet(PropLevel)
	if cfg.HideCatalogKey {
		sch.SetHidden(PropCatalogKey)
	}
	return g
}

package courses

import (
	"testing"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func TestBuildShape(t *testing.T) {
	g := Build(Config{})
	cs := g.SubjectsOfType(ClassCourse)
	if len(cs) != 160 {
		t.Fatalf("courses = %d", len(cs))
	}
	for _, c := range cs[:10] {
		for _, p := range []rdf.IRI{PropDept, PropInstructor, PropLevel, PropSemester, PropUnits, PropAbout, PropCatalogKey} {
			if _, ok := g.Object(c, p); !ok {
				t.Errorf("%s missing %s", c, p.LocalName())
			}
		}
		if !g.HasLabel(c) {
			t.Errorf("%s unlabeled", c)
		}
	}
}

func TestArrivesAnnotated(t *testing.T) {
	g := Build(Config{Courses: 30})
	sch := schema.NewStore(g)
	if !sch.HasLabel(PropDept) || sch.ValueType(PropUnits) != schema.Integer {
		t.Error("courses dataset should arrive with labels and value types (§6.1)")
	}
}

func TestCatalogKeyHumanOpaqueButShared(t *testing.T) {
	// The §6.1 observation: the internal key is algorithmically significant
	// (values shared across several courses) yet unreadable.
	g := Build(Config{})
	shared := 0
	for _, v := range g.ObjectsOf(PropCatalogKey) {
		if g.SubjectCount(PropCatalogKey, v) >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("catalog keys should cluster to be algorithmically significant")
	}
	sch := schema.NewStore(g)
	if sch.Hidden(PropCatalogKey) {
		t.Error("catalog key should be visible by default (the pre-annotation state)")
	}
	g2 := Build(Config{HideCatalogKey: true})
	if !schema.NewStore(g2).Hidden(PropCatalogKey) {
		t.Error("HideCatalogKey should hide the property")
	}
}

func TestDeterministic(t *testing.T) {
	a := Build(Config{Courses: 25, Seed: 2})
	b := Build(Config{Courses: 25, Seed: 2})
	if len(a.AllStatements()) != len(b.AllStatements()) {
		t.Fatal("nondeterministic")
	}
}

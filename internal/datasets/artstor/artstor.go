// Package artstor generates an image-metadata dataset shaped like the
// ArtSTOR RDF conversion the paper evaluated on (§6.1 — ArtSTOR is "a
// non-profit organization to develop and distribute electronic digital
// images"). Artworks carry creator, culture, period, medium, museum
// collection and creation year; like the paper's conversion the dataset
// arrives with label and value-type annotations, "allowing Magnet to
// present easy to understand navigation suggestions", plus an opaque
// registrar accession code reproducing the not-human-readable-attribute
// observation.
package artstor

import (
	"fmt"
	"math/rand"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// NS is the dataset namespace.
const NS = "http://magnet.example.org/artstor#"

// Vocabulary.
var (
	ClassArtwork = rdf.IRI(NS + "Artwork")

	PropCreator    = rdf.IRI(NS + "creator")
	PropCulture    = rdf.IRI(NS + "culture")
	PropPeriod     = rdf.IRI(NS + "period")
	PropMedium     = rdf.IRI(NS + "medium")
	PropCollection = rdf.IRI(NS + "collection")
	PropYear       = rdf.IRI(NS + "yearCreated")
	PropAccession  = rdf.IRI(NS + "xAccession")
)

// Artwork returns the i-th artwork resource.
func Artwork(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%swork/%04d", NS, i)) }

var creators = []string{
	"Rembrandt van Rijn", "Katsushika Hokusai", "Mary Cassatt",
	"Albrecht Dürer", "Sofonisba Anguissola", "Unknown artist",
	"Wassily Kandinsky", "Ogata Kōrin", "Artemisia Gentileschi",
	"Utagawa Hiroshige", "Jan Vermeer", "El Greco",
}

var cultures = []string{
	"Dutch", "Japanese", "American", "German", "Italian", "Spanish",
	"French", "Flemish",
}

var periods = []string{
	"Renaissance", "Baroque", "Edo period", "Impressionism",
	"Modern", "Romanticism",
}

var media = []string{
	"Oil on canvas", "Woodblock print", "Etching", "Watercolor",
	"Tempera on panel", "Bronze", "Marble", "Pastel",
}

var collections = []string{
	"Prints and Drawings", "European Paintings", "Asian Art",
	"Sculpture Garden", "Modern Wing",
}

// Config controls generation.
type Config struct {
	// Works is the number of artworks; 0 means 240.
	Works int
	// Seed defaults to 1.
	Seed int64
	// HideAccession applies the magnet:hidden annotation to the registrar
	// code.
	HideAccession bool
}

// Build generates the dataset with full annotations.
func Build(cfg Config) *rdf.Graph {
	g := rdf.NewGraph()
	n := cfg.Works
	if n <= 0 {
		n = 240
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	for i := 0; i < n; i++ {
		w := Artwork(i)
		culture := cultures[rng.Intn(len(cultures))]
		period := periods[rng.Intn(len(periods))]
		medium := media[rng.Intn(len(media))]
		creator := creators[rng.Intn(len(creators))]
		year := 1400 + rng.Intn(560)

		g.Add(w, rdf.Type, ClassArtwork)
		g.Add(w, rdf.Label, rdf.NewString(fmt.Sprintf("%s, %s (%d)", creator, medium, year)))
		g.Add(w, PropCreator, rdf.NewString(creator))
		g.Add(w, PropCulture, rdf.NewString(culture))
		g.Add(w, PropPeriod, rdf.NewString(period))
		g.Add(w, PropMedium, rdf.NewString(medium))
		g.Add(w, PropCollection, rdf.NewString(collections[rng.Intn(len(collections))]))
		g.Add(w, PropYear, rdf.NewInteger(int64(year)))
		g.Add(w, PropAccession, rdf.NewString(fmt.Sprintf("AC.%02d.%04d-%c", rng.Intn(99), i, 'A'+byte(rng.Intn(6)))))
	}

	sch := schema.NewStore(g)
	sch.SetLabel(PropCreator, "Creator")
	sch.SetLabel(PropCulture, "Culture")
	sch.SetLabel(PropPeriod, "Period")
	sch.SetLabel(PropMedium, "Medium")
	sch.SetLabel(PropCollection, "Collection")
	sch.SetLabel(PropYear, "Year created")
	sch.SetValueType(PropYear, schema.Integer)
	sch.SetFacet(PropCulture)
	sch.SetFacet(PropPeriod)
	sch.SetFacet(PropMedium)
	if cfg.HideAccession {
		sch.SetHidden(PropAccession)
	}
	return g
}

package artstor

import (
	"testing"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func TestBuildShape(t *testing.T) {
	g := Build(Config{})
	works := g.SubjectsOfType(ClassArtwork)
	if len(works) != 240 {
		t.Fatalf("works = %d", len(works))
	}
	for _, w := range works[:10] {
		for _, p := range []rdf.IRI{PropCreator, PropCulture, PropPeriod, PropMedium, PropCollection, PropYear, PropAccession} {
			if _, ok := g.Object(w, p); !ok {
				t.Errorf("%s missing %s", w, p.LocalName())
			}
		}
		if !g.HasLabel(w) {
			t.Errorf("%s unlabeled", w)
		}
	}
}

func TestArrivesAnnotated(t *testing.T) {
	g := Build(Config{Works: 40})
	sch := schema.NewStore(g)
	if !sch.HasLabel(PropMedium) {
		t.Error("medium should be labeled")
	}
	if sch.ValueType(PropYear) != schema.Integer {
		t.Error("year should be integer-typed")
	}
	if !sch.IsFacet(PropCulture) {
		t.Error("culture facet annotation missing")
	}
}

func TestAccessionHidable(t *testing.T) {
	if schema.NewStore(Build(Config{Works: 20})).Hidden(PropAccession) {
		t.Error("accession should be visible by default")
	}
	if !schema.NewStore(Build(Config{Works: 20, HideAccession: true})).Hidden(PropAccession) {
		t.Error("HideAccession ignored")
	}
}

func TestFacetValuesShared(t *testing.T) {
	g := Build(Config{})
	shared := 0
	for _, v := range g.ObjectsOf(PropMedium) {
		if g.SubjectCount(PropMedium, v) >= 2 {
			shared++
		}
	}
	if shared < 5 {
		t.Errorf("only %d shared media values", shared)
	}
}

func TestDeterministic(t *testing.T) {
	a := Build(Config{Works: 30, Seed: 3})
	b := Build(Config{Works: 30, Seed: 3})
	if len(a.AllStatements()) != len(b.AllStatements()) {
		t.Fatal("nondeterministic")
	}
}

package csvrdf

import (
	"strings"
	"testing"

	"magnet/internal/rdf"
)

const ns = "http://e/"

func TestFromCSVBasic(t *testing.T) {
	src := "state,bird,area\nOhio,Cardinal,44826\nAlaska,Willow Ptarmigan,665384\n"
	g := rdf.NewGraph()
	rows, err := FromCSV(g, strings.NewReader(src), ns, "state")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0] != Row(ns, "Ohio") {
		t.Errorf("row[0] = %s", rows[0])
	}
	bird, ok := g.Object(Row(ns, "Ohio"), Prop(ns, "bird"))
	if !ok || bird.(rdf.Literal).Lexical != "Cardinal" {
		t.Errorf("bird = %v", bird)
	}
	// All values are plain strings (the "as given" Figure 7 behaviour).
	area, _ := g.Object(Row(ns, "Alaska"), Prop(ns, "area"))
	if area.(rdf.Literal).Datatype != "" {
		t.Error("CSV values must stay plain strings")
	}
}

func TestFromCSVDefaultKeyColumn(t *testing.T) {
	src := "name,color\nrose,red\n"
	g := rdf.NewGraph()
	rows, err := FromCSV(g, strings.NewReader(src), ns, "")
	if err != nil || len(rows) != 1 || rows[0] != Row(ns, "rose") {
		t.Errorf("rows = %v, err = %v", rows, err)
	}
}

func TestFromCSVSkipsEmptyCells(t *testing.T) {
	src := "name,color\nrose,\n"
	g := rdf.NewGraph()
	if _, err := FromCSV(g, strings.NewReader(src), ns, ""); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Object(Row(ns, "rose"), Prop(ns, "color")); ok {
		t.Error("empty cell should not produce a triple")
	}
}

func TestFromCSVErrors(t *testing.T) {
	tests := []struct{ name, src, key string }{
		{"empty input", "", ""},
		{"missing key column", "a,b\n1,2\n", "nope"},
		{"empty key cell", "a,b\n,2\n", "a"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := rdf.NewGraph()
			if _, err := FromCSV(g, strings.NewReader(tt.src), ns, tt.key); err == nil {
				t.Errorf("expected error for %q", tt.src)
			}
		})
	}
}

func TestSlugging(t *testing.T) {
	if got := Row(ns, "New Hampshire"); got != rdf.IRI(ns+"row/new_hampshire") {
		t.Errorf("Row = %s", got)
	}
	if got := Prop(ns, "State Bird"); got != rdf.IRI(ns+"prop/state_bird") {
		t.Errorf("Prop = %s", got)
	}
	// Punctuation dropped.
	if got := Row(ns, "St. Paul"); got != rdf.IRI(ns+"row/st_paul") {
		t.Errorf("Row = %s", got)
	}
}

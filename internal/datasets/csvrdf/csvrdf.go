// Package csvrdf imports comma-separated files as RDF, the way the paper's
// 50-states dataset arrived (§6.1: "a collection of information about 50
// states provided as a comma separated file"). Each row becomes a resource;
// each column becomes a property holding a plain string literal — no
// labels, no value types — faithfully reproducing the "as given" behaviour
// of Figure 7 (raw identifiers, everything stringly typed) until schema
// annotations are added.
package csvrdf

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"magnet/internal/rdf"
)

// FromCSV reads CSV from r into g. The first row must be a header; the
// column named keyColumn (or the first column when keyColumn is empty)
// names each row's resource under ns. Property IRIs are ns + "prop/" +
// header. It returns the created row resources in input order.
func FromCSV(g *rdf.Graph, r io.Reader, ns, keyColumn string) ([]rdf.IRI, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvrdf: reading header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("csvrdf: empty header")
	}
	keyIdx := 0
	if keyColumn != "" {
		keyIdx = -1
		for i, h := range header {
			if h == keyColumn {
				keyIdx = i
				break
			}
		}
		if keyIdx < 0 {
			return nil, fmt.Errorf("csvrdf: key column %q not in header %v", keyColumn, header)
		}
	}
	props := make([]rdf.IRI, len(header))
	for i, h := range header {
		props[i] = Prop(ns, h)
	}

	var rows []rdf.IRI
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvrdf: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csvrdf: line %d: %d fields, header has %d", line, len(rec), len(header))
		}
		key := strings.TrimSpace(rec[keyIdx])
		if key == "" {
			return nil, fmt.Errorf("csvrdf: line %d: empty key", line)
		}
		row := Row(ns, key)
		rows = append(rows, row)
		for i, v := range rec {
			v = strings.TrimSpace(v)
			if v == "" {
				continue
			}
			g.Add(row, props[i], rdf.NewString(v))
		}
	}
	return rows, nil
}

// Row returns the resource IRI for a row key under ns.
func Row(ns, key string) rdf.IRI {
	return rdf.IRI(ns + "row/" + slug(key))
}

// Prop returns the property IRI for a CSV column under ns.
func Prop(ns, header string) rdf.IRI {
	return rdf.IRI(ns + "prop/" + slug(header))
}

func slug(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('_')
		}
	}
	return b.String()
}

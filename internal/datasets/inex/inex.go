// Package inex generates an INEX-2003-shaped evaluation corpus (paper
// §6.2): IEEE-style XML articles with nested structure (authors with
// statuses, research areas and vitae; sections with paragraphs), converted
// to RDF through magnet's XML bridge, plus search topics of the two INEX
// kinds — content-and-structure (CAS) and content-only (CO). Ground truth
// is carried on a hidden relevance attribute so the harness can score
// recall without influencing navigation or the vector space model.
//
// The two CAS topics mirror the paper's examples: the "Vitae of graduate
// students researching Information Retrieval" query it analyses in detail,
// and a section-content topic. The CO topics include the paper's "software
// cost estimation".
package inex

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"magnet/internal/rdf"
	"magnet/internal/schema"
	"magnet/internal/xmlconv"
)

// NS is the namespace used for the converted RDF.
const NS = "http://magnet.example.org/inex#"

// Element classes and properties produced by the conversion.
var (
	ClassArticle = xmlconv.ElementClass(NS, "article")
	ClassAuthor  = xmlconv.ElementClass(NS, "author")
	ClassVita    = xmlconv.ElementClass(NS, "vita")
	ClassSection = xmlconv.ElementClass(NS, "section")

	PropAuthor   = xmlconv.Prop(NS, "author")
	PropVita     = xmlconv.Prop(NS, "vita")
	PropSection  = xmlconv.Prop(NS, "section")
	PropPara     = xmlconv.Prop(NS, "para")
	PropTitle    = xmlconv.Prop(NS, "title")
	PropAbstract = xmlconv.Prop(NS, "abstract")
	PropName     = xmlconv.Prop(NS, "name")
	PropStatus   = xmlconv.Prop(NS, "status")
	PropResearch = xmlconv.Prop(NS, "research")
	PropRel      = xmlconv.Prop(NS, "rel") // hidden ground-truth marker
	PropText     = xmlconv.TextProp(NS)
)

// TopicKind distinguishes INEX topic flavours.
type TopicKind int

const (
	// CO is a content-only topic (keywords).
	CO TopicKind = iota
	// CAS is a content-and-structure topic.
	CAS
)

// String returns "CO" or "CAS".
func (k TopicKind) String() string {
	if k == CAS {
		return "CAS"
	}
	return "CO"
}

// Topic is one evaluation topic with its ground truth.
type Topic struct {
	ID   string
	Kind TopicKind
	// Text is the topic's keyword portion.
	Text string
	// TargetClass is the element type the topic asks for (CAS topics).
	TargetClass rdf.IRI
	// Relevant holds the ground-truth item IRIs (after conversion).
	Relevant []rdf.IRI
}

// Corpus bundles the XML, its RDF conversion, and the topics.
type Corpus struct {
	XML    string
	Graph  *rdf.Graph
	Root   rdf.IRI
	Topics []Topic
}

// Config controls generation.
type Config struct {
	// Articles is the corpus size; 0 means 120.
	Articles int
	// Seed defaults to 1.
	Seed int64
	// SkipTreeAnnotation reproduces the §6.2 limitation: without being told
	// the data is a tree, Magnet "would not follow multiple steps by
	// default".
	SkipTreeAnnotation bool
}

var researchAreas = []string{
	"information retrieval", "databases", "machine learning",
	"computer graphics", "distributed systems", "computational biology",
}

var statuses = []string{"graduate student", "faculty", "postdoc"}

var sectionThemes = [][]string{
	{"indexing", "ranking", "relevance", "precision", "recall"},
	{"transactions", "concurrency", "storage", "optimization"},
	{"classifiers", "training", "features", "evaluation", "models"},
	{"rendering", "shading", "meshes", "textures"},
	{"consensus", "replication", "latency", "failures"},
	{"sequences", "proteins", "alignment", "genomes"},
}

// Build generates the corpus: XML text, RDF conversion, topics with ground
// truth resolved against the converted graph.
func Build(cfg Config) (*Corpus, error) {
	n := cfg.Articles
	if n <= 0 {
		n = 120
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	xmlText := generateXML(rng, n)
	g := rdf.NewGraph()
	root, err := xmlconv.Convert(g, strings.NewReader(xmlText), xmlconv.Options{
		NS:                 NS,
		SkipTreeAnnotation: cfg.SkipTreeAnnotation,
	})
	if err != nil {
		return nil, fmt.Errorf("inex: converting corpus: %w", err)
	}
	annotate(g)

	c := &Corpus{XML: xmlText, Graph: g, Root: root}
	c.Topics = resolveTopics(g)
	return c, nil
}

func annotate(g *rdf.Graph) {
	sch := schema.NewStore(g)
	sch.SetHidden(PropRel)
	sch.SetLabel(PropAuthor, "author")
	sch.SetLabel(PropSection, "section")
	sch.SetLabel(PropStatus, "status")
	sch.SetLabel(PropResearch, "research area")
	sch.SetLabel(PropVita, "vita")
	sch.SetLabel(PropText, "text")
}

// generateXML emits the collection document. Relevance markers:
//   - rel="CO1" on articles about software cost estimation;
//   - rel="CO2" on articles about query refinement interfaces;
//   - rel="CAS1" on vitae of graduate students researching IR;
//   - rel="CAS2" on articles containing a section about classifier
//     evaluation.
func generateXML(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString("<collection>\n")
	for i := 0; i < n; i++ {
		theme := rng.Intn(len(sectionThemes))
		words := sectionThemes[theme]

		co1 := i%15 == 3 // software cost estimation articles
		co2 := i%15 == 7 // query refinement articles
		cas2 := theme == 2 && rng.Float64() < 0.5

		var rels []string
		if co1 {
			rels = append(rels, "CO1")
		}
		if co2 {
			rels = append(rels, "CO2")
		}
		if cas2 {
			rels = append(rels, "CAS2")
		}
		relAttr := ""
		if len(rels) > 0 {
			relAttr = fmt.Sprintf(" rel=%q", strings.Join(rels, " "))
		}
		fmt.Fprintf(&b, "  <article id=\"a%03d\"%s>\n", i, relAttr)

		title := fmt.Sprintf("On %s and %s", pick(rng, words), pick(rng, words))
		abstract := fmt.Sprintf("We study %s with emphasis on %s and %s.",
			pick(rng, words), pick(rng, words), pick(rng, words))
		switch {
		case co1:
			title = "Improving software cost estimation models"
			abstract = "Software cost estimation is revisited with calibrated effort models."
		case co2:
			title = "Interfaces for iterative query refinement"
			abstract = "We present interfaces supporting query refinement during search."
		}
		fmt.Fprintf(&b, "    <title>%s</title>\n", title)
		fmt.Fprintf(&b, "    <abstract>%s</abstract>\n", abstract)

		// Authors: 1-3, each with status, research area and a vita.
		nAuthors := rng.Intn(3) + 1
		for a := 0; a < nAuthors; a++ {
			status := statuses[rng.Intn(len(statuses))]
			research := researchAreas[rng.Intn(len(researchAreas))]
			cas1 := status == "graduate student" && research == "information retrieval"
			vitaRel := ""
			if cas1 {
				vitaRel = ` rel="CAS1"`
			}
			fmt.Fprintf(&b, "    <author>\n")
			fmt.Fprintf(&b, "      <name>Author %d-%d</name>\n", i, a)
			fmt.Fprintf(&b, "      <status>%s</status>\n", status)
			fmt.Fprintf(&b, "      <research>%s</research>\n", research)
			fmt.Fprintf(&b, "      <vita%s>%s</vita>\n", vitaRel,
				fmt.Sprintf("Curriculum vitae: %s studying %s since %d.", status, research, 1995+rng.Intn(8)))
			fmt.Fprintf(&b, "    </author>\n")
		}

		// Sections with paragraphs.
		nSections := rng.Intn(3) + 1
		for sIdx := 0; sIdx < nSections; sIdx++ {
			fmt.Fprintf(&b, "    <section>\n")
			secTitle := fmt.Sprintf("Section on %s", pick(rng, words))
			if cas2 && sIdx == 0 {
				secTitle = "Cross-validation protocol for classifier evaluation"
			}
			fmt.Fprintf(&b, "      <title>%s</title>\n", secTitle)
			for p := 0; p < rng.Intn(2)+1; p++ {
				para := fmt.Sprintf("Discussion of %s, %s and %s.",
					pick(rng, words), pick(rng, words), pick(rng, words))
				if cas2 && sIdx == 0 && p == 0 {
					para = "We run cross-validation protocols to evaluate classifier models."
				}
				fmt.Fprintf(&b, "      <para>%s</para>\n", para)
			}
			fmt.Fprintf(&b, "    </section>\n")
		}
		b.WriteString("  </article>\n")
	}
	b.WriteString("</collection>\n")
	return b.String()
}

func pick(rng *rand.Rand, words []string) string {
	return words[rng.Intn(len(words))]
}

// resolveTopics builds the topic list, resolving ground truth through the
// hidden relevance markers.
func resolveTopics(g *rdf.Graph) []Topic {
	topics := []Topic{
		{ID: "CO1", Kind: CO, Text: "software cost estimation", TargetClass: ClassArticle},
		{ID: "CO2", Kind: CO, Text: "query refinement interfaces", TargetClass: ClassArticle},
		{ID: "CAS1", Kind: CAS, Text: "vitae of graduate students researching information retrieval", TargetClass: ClassVita},
		{ID: "CAS2", Kind: CAS, Text: "cross validation protocols for classifier evaluation", TargetClass: ClassArticle},
	}
	for i := range topics {
		topics[i].Relevant = relevantFor(g, topics[i].ID)
	}
	return topics
}

func relevantFor(g *rdf.Graph, topicID string) []rdf.IRI {
	var out []rdf.IRI
	for _, v := range g.ObjectsOf(PropRel) {
		lit, ok := v.(rdf.Literal)
		if !ok {
			continue
		}
		for _, id := range strings.Fields(lit.Lexical) {
			if id == topicID {
				out = append(out, g.Subjects(PropRel, v)...)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupe(out)
}

func dedupe(s []rdf.IRI) []rdf.IRI {
	out := s[:0]
	var prev rdf.IRI
	for i, v := range s {
		if i == 0 || v != prev {
			out = append(out, v)
		}
		prev = v
	}
	return out
}

package inex

import (
	"strings"
	"testing"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func build(t *testing.T, cfg Config) *Corpus {
	t.Helper()
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusShape(t *testing.T) {
	c := build(t, Config{Articles: 60})
	articles := c.Graph.SubjectsOfType(ClassArticle)
	if len(articles) != 60 {
		t.Fatalf("articles = %d", len(articles))
	}
	// Every article has at least one author with status/research/vita.
	for _, a := range articles[:10] {
		authors := c.Graph.Objects(a, PropAuthor)
		if len(authors) == 0 {
			t.Fatalf("%s has no authors", a)
		}
		au := authors[0].(rdf.IRI)
		for _, p := range []rdf.IRI{PropName, PropStatus, PropResearch, PropVita} {
			if _, ok := c.Graph.Object(au, p); !ok {
				t.Errorf("author missing %s", p.LocalName())
			}
		}
		if len(c.Graph.Objects(a, PropSection)) == 0 {
			t.Errorf("%s has no sections", a)
		}
	}
}

func TestTopicsHaveGroundTruth(t *testing.T) {
	c := build(t, Config{Articles: 120})
	if len(c.Topics) != 4 {
		t.Fatalf("topics = %d", len(c.Topics))
	}
	for _, topic := range c.Topics {
		if len(topic.Relevant) == 0 {
			t.Errorf("topic %s has empty ground truth", topic.ID)
		}
		// Relevant items carry the right element type.
		for _, it := range topic.Relevant {
			if !c.Graph.Has(it, rdf.Type, topic.TargetClass) {
				t.Errorf("topic %s: %s is not a %s", topic.ID, it, topic.TargetClass.LocalName())
			}
		}
	}
}

func TestCAS1GroundTruthSemantics(t *testing.T) {
	c := build(t, Config{Articles: 120})
	var cas1 Topic
	for _, tp := range c.Topics {
		if tp.ID == "CAS1" {
			cas1 = tp
		}
	}
	g := c.Graph
	// Each relevant vita belongs to a graduate student researching IR.
	for _, vita := range cas1.Relevant {
		authors := g.Subjects(PropVita, vita)
		if len(authors) != 1 {
			t.Fatalf("vita %s has %d authors", vita, len(authors))
		}
		au := authors[0]
		st, _ := g.Object(au, PropStatus)
		stText, _ := g.Object(st.(rdf.IRI), PropText)
		if stText.(rdf.Literal).Lexical != "graduate student" {
			t.Errorf("relevant vita author status = %v", stText)
		}
	}
	// And no grad-student-IR vita is missing from the ground truth.
	want := map[rdf.IRI]bool{}
	for _, v := range cas1.Relevant {
		want[v] = true
	}
	for _, au := range g.SubjectsOfType(ClassAuthor) {
		st, ok1 := textOf(g, au, PropStatus)
		re, ok2 := textOf(g, au, PropResearch)
		if ok1 && ok2 && st == "graduate student" && re == "information retrieval" {
			v, _ := g.Object(au, PropVita)
			if !want[v.(rdf.IRI)] {
				t.Errorf("vita %s missing from CAS1 ground truth", v)
			}
		}
	}
}

func textOf(g *rdf.Graph, s rdf.IRI, p rdf.IRI) (string, bool) {
	o, ok := g.Object(s, p)
	if !ok {
		return "", false
	}
	node, ok := o.(rdf.IRI)
	if !ok {
		return "", false
	}
	txt, ok := g.Object(node, PropText)
	if !ok {
		return "", false
	}
	return txt.(rdf.Literal).Lexical, true
}

func TestTreeAnnotationToggle(t *testing.T) {
	c := build(t, Config{Articles: 20})
	if !schema.NewStore(c.Graph).TreeShaped() {
		t.Error("corpus should default to tree-shaped")
	}
	c2 := build(t, Config{Articles: 20, SkipTreeAnnotation: true})
	if schema.NewStore(c2.Graph).TreeShaped() {
		t.Error("SkipTreeAnnotation ignored")
	}
}

func TestRelMarkerHidden(t *testing.T) {
	c := build(t, Config{Articles: 20})
	if !schema.NewStore(c.Graph).Hidden(PropRel) {
		t.Error("relevance marker must be hidden from navigation and the VSM")
	}
}

func TestXMLWellFormedAndDeterministic(t *testing.T) {
	a := build(t, Config{Articles: 30, Seed: 4})
	b := build(t, Config{Articles: 30, Seed: 4})
	if a.XML != b.XML {
		t.Error("XML generation nondeterministic")
	}
	if !strings.HasPrefix(a.XML, "<collection>") {
		t.Error("unexpected XML root")
	}
	if a.Root == "" {
		t.Error("empty root IRI")
	}
}

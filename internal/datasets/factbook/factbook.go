// Package factbook generates a CIA-World-Factbook-shaped dataset, the
// stand-in for the RDF conversion the paper used (§6.1, "an RDF version of
// the CIA World Factbook" from ontoknowledge.org, long offline). The
// paper's observation to reproduce: "The navigation system did recommend
// navigating to countries that have the same independence day or
// currencies" — so the generator guarantees shared currencies (the euro and
// a few regional currencies) and shared independence days.
//
// Like the original conversion, values arrive as plain strings with neither
// labels nor value types; Annotate adds the label and value-type
// annotations the paper reports improving the interface with.
package factbook

import (
	"fmt"
	"math/rand"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// NS is the dataset namespace.
const NS = "http://magnet.example.org/factbook#"

// Vocabulary.
var (
	ClassCountry = rdf.IRI(NS + "Country")

	PropName         = rdf.IRI(NS + "name")
	PropRegion       = rdf.IRI(NS + "region")
	PropCurrency     = rdf.IRI(NS + "currency")
	PropIndependence = rdf.IRI(NS + "independenceDay")
	PropLanguage     = rdf.IRI(NS + "language")
	PropPopulation   = rdf.IRI(NS + "population")
	PropAreaKM       = rdf.IRI(NS + "areaSqKm")
)

// Country returns the resource for the i-th generated country.
func Country(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%scountry/%03d", NS, i)) }

// Regions used by the generator.
var Regions = []string{
	"Europe", "Africa", "Asia", "South America", "North America", "Oceania",
	"Middle East",
}

// Currencies deliberately shared across many countries.
var Currencies = []string{
	"Euro", "US Dollar", "CFA Franc", "East Caribbean Dollar", "Pound",
	"Dinar", "Peso", "Rupee", "Krona", "Shilling", "Franc", "Real",
}

// independenceDays includes dates many countries share (as in the real
// factbook: e.g. several countries celebrate 1 January or 15 August).
var independenceDays = []string{
	"1 January", "4 July", "15 August", "1 October", "25 May", "6 March",
	"12 October", "30 June", "9 July", "22 September", "11 November",
	"5 July", "17 August", "2 December",
}

var languages = []string{
	"English", "French", "Spanish", "Arabic", "Portuguese", "Swahili",
	"Russian", "Mandarin", "Hindi", "German", "Dutch", "Italian",
}

// Config controls generation.
type Config struct {
	// Countries is the number generated; 0 means 190.
	Countries int
	// Seed defaults to 1.
	Seed int64
}

// Build generates the factbook into a fresh graph.
func Build(cfg Config) *rdf.Graph {
	g := rdf.NewGraph()
	n := cfg.Countries
	if n <= 0 {
		n = 190
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	for i := 0; i < n; i++ {
		c := Country(i)
		g.Add(c, rdf.Type, ClassCountry)
		g.Add(c, PropName, rdf.NewString(countryName(i)))
		g.Add(c, PropRegion, rdf.NewString(Regions[rng.Intn(len(Regions))]))
		// Zipf-ish currency choice so the euro/dollar clusters are large.
		g.Add(c, PropCurrency, rdf.NewString(Currencies[zipf(rng, len(Currencies))]))
		g.Add(c, PropIndependence, rdf.NewString(independenceDays[zipf(rng, len(independenceDays))]))
		nLang := rng.Intn(3) + 1
		for j := 0; j < nLang; j++ {
			g.Add(c, PropLanguage, rdf.NewString(languages[zipf(rng, len(languages))]))
		}
		g.Add(c, PropPopulation, rdf.NewString(fmt.Sprintf("%d", (rng.Intn(140_000)+50)*1000)))
		g.Add(c, PropAreaKM, rdf.NewString(fmt.Sprintf("%d", rng.Intn(2_000_000)+700)))
	}
	return g
}

// Annotate adds labels and value types (the §6.1 improvement: "results with
// Magnet improved with label and attribute-value type annotation").
func Annotate(g *rdf.Graph) {
	sch := schema.NewStore(g)
	sch.SetLabel(PropName, "Country")
	sch.SetLabel(PropRegion, "Region")
	sch.SetLabel(PropCurrency, "Currency")
	sch.SetLabel(PropIndependence, "Independence day")
	sch.SetLabel(PropLanguage, "Language")
	sch.SetLabel(PropPopulation, "Population")
	sch.SetLabel(PropAreaKM, "Area (sq km)")
	sch.SetValueType(PropPopulation, schema.Integer)
	sch.SetValueType(PropAreaKM, schema.Integer)
	sch.SetFacet(PropRegion)
	sch.SetFacet(PropCurrency)
	sch.SetFacet(PropIndependence)
}

// countryName builds a pronounceable deterministic name for country i.
func countryName(i int) string {
	starts := []string{"Al", "Be", "Cor", "Dan", "El", "Fre", "Gal", "Hel", "Is", "Jor", "Kal", "Lu", "Mon", "Nor", "Or", "Pan", "Qua", "Ros", "San", "Tur", "Ul", "Ver", "Wes", "Xan", "Yor", "Zam"}
	mids := []string{"a", "e", "i", "o", "u", "ar", "en", "or", "ul"}
	ends := []string{"dia", "land", "stan", "via", "nia", "ria", "burg", "mark", "gard", "tova"}
	return starts[i%len(starts)] + mids[(i/len(starts))%len(mids)] + ends[(i/(len(starts)*len(mids)))%len(ends)]
}

func zipf(rng *rand.Rand, n int) int {
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / float64(i+2)
	}
	x := rng.Float64() * total
	for i := 0; i < n; i++ {
		x -= 1 / float64(i+2)
		if x <= 0 {
			return i
		}
	}
	return n - 1
}

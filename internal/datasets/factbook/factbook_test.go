package factbook

import (
	"testing"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func TestBuildShape(t *testing.T) {
	g := Build(Config{})
	countries := g.SubjectsOfType(ClassCountry)
	if len(countries) != 190 {
		t.Fatalf("countries = %d", len(countries))
	}
	for _, c := range countries[:10] {
		for _, p := range []rdf.IRI{PropName, PropRegion, PropCurrency, PropIndependence, PropPopulation} {
			if _, ok := g.Object(c, p); !ok {
				t.Errorf("%s missing %s", c, p.LocalName())
			}
		}
		if g.ObjectCount(c, PropLanguage) == 0 {
			t.Errorf("%s has no language", c)
		}
	}
}

func TestSharedCurrenciesAndIndependenceDays(t *testing.T) {
	// The §6.1 claim needs clusters: many countries sharing a currency and
	// an independence day.
	g := Build(Config{})
	if n := g.SubjectCount(PropCurrency, rdf.NewString("Euro")); n < 10 {
		t.Errorf("only %d euro countries", n)
	}
	shared := 0
	for _, day := range g.ObjectsOf(PropIndependence) {
		if g.SubjectCount(PropIndependence, day) >= 2 {
			shared++
		}
	}
	if shared < 5 {
		t.Errorf("only %d shared independence days", shared)
	}
}

func TestDeterministic(t *testing.T) {
	a := Build(Config{Countries: 40, Seed: 9})
	b := Build(Config{Countries: 40, Seed: 9})
	if len(a.AllStatements()) != len(b.AllStatements()) {
		t.Fatal("nondeterministic")
	}
	as, bs := a.AllStatements(), b.AllStatements()
	for i := range as {
		if as[i].Key() != bs[i].Key() {
			t.Fatalf("statement %d differs", i)
		}
	}
}

func TestAnnotate(t *testing.T) {
	g := Build(Config{Countries: 30})
	sch := schema.NewStore(g)
	if sch.ValueType(PropPopulation) != schema.Text {
		t.Error("population should be stringly before Annotate")
	}
	Annotate(g)
	if sch.ValueType(PropPopulation) != schema.Integer {
		t.Error("population should be Integer after Annotate")
	}
	if sch.Label(PropIndependence) != "Independence day" {
		t.Errorf("label = %q", sch.Label(PropIndependence))
	}
	if !sch.IsFacet(PropCurrency) {
		t.Error("currency facet annotation missing")
	}
}

func TestCountryNamesDistinctEnough(t *testing.T) {
	seen := map[string]int{}
	for i := 0; i < 190; i++ {
		seen[countryName(i)]++
	}
	if len(seen) < 150 {
		t.Errorf("only %d distinct names for 190 countries", len(seen))
	}
}

package analysts

import (
	"fmt"

	"magnet/internal/blackboard"
)

// History is the History advisor's analyst (§4.1): "Previous" suggestions
// for recently seen views, and "Refinement" suggestions that undo steps of
// the refinement trail.
type History struct {
	env *Env
	k   int
}

// NewHistory returns the analyst suggesting at most k of each kind.
func NewHistory(env *Env, k int) *History { return &History{env: env, k: k} }

// Name implements blackboard.Analyst.
func (*History) Name() string { return "history" }

// Triggered implements blackboard.Analyst.
func (h *History) Triggered(blackboard.View) bool {
	return h.env.Tracker != nil && h.env.LookupView != nil
}

// Suggest implements blackboard.Analyst.
func (h *History) Suggest(v blackboard.View, b *blackboard.Board) {
	// Previous: most recently seen distinct views, weighted by recency.
	recent := h.env.Tracker.Recent(h.k)
	for i, key := range recent {
		dest, ok := h.env.LookupView(key)
		if !ok {
			continue
		}
		title, action := describeDestination(h.env, dest)
		b.Post(blackboard.Suggestion{
			Advisor: blackboard.AdvisorHistory,
			Group:   "Previous",
			Title:   title,
			Weight:  1 - float64(i)/float64(len(recent)+1),
			Action:  action,
			Key:     "prev:" + key,
			Analyst: h.Name(),
		})
	}

	// Refinement trail: undo steps, most recent first.
	trail := h.env.Tracker.Trail()
	posted := 0
	for i := len(trail) - 2; i >= 0 && posted < h.k; i-- {
		q := trail[i]
		dest := blackboard.CollectionView(q, nil)
		title, _ := describeDestination(h.env, dest)
		b.Post(blackboard.Suggestion{
			Advisor: blackboard.AdvisorHistory,
			Group:   "Refinement",
			Title:   fmt.Sprintf("back to: %s", title),
			Weight:  1 - float64(posted)/float64(len(trail)+1),
			Action:  blackboard.ReplaceQuery{Query: q},
			Key:     "trail:" + q.Key(),
			Analyst: h.Name(),
		})
		posted++
	}
}

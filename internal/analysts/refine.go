package analysts

import (
	"context"
	"errors"
	"fmt"

	"magnet/internal/blackboard"
	"magnet/internal/itemset"
	"magnet/internal/par"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/vsm"
)

// Refinement is the Refine Collections analyst (§4.1): it applies the
// paper's §5.3 query-refinement technique — "picking terms in the average
// document having the largest normalized term weights" — to suggest
// property/value constraints and text-term constraints for the current
// collection. Suggestions are grouped by property so the interface can
// display "the first few values to give the user appropriate context".
type Refinement struct {
	env *Env
	// k bounds how many centroid coordinates are considered.
	k int
}

// NewRefinement returns the analyst considering the top k centroid terms.
func NewRefinement(env *Env, k int) *Refinement {
	return &Refinement{env: env, k: k}
}

// Name implements blackboard.Analyst.
func (*Refinement) Name() string { return "query-refinement" }

// Triggered implements blackboard.Analyst: fires on non-trivial collections.
func (*Refinement) Triggered(v blackboard.View) bool {
	return v.IsCollection() && len(v.Collection) >= 2
}

// Suggest implements blackboard.Analyst.
func (r *Refinement) Suggest(v blackboard.View, b *blackboard.Board) {
	coords := r.env.Model.RefinementCoords(v.Collection, r.k, nil)
	if len(coords) == 0 {
		return
	}
	// Counts for detail display: how many collection members match each
	// direct attribute/value pair. A view carrying a shard partition is
	// counted shard-by-shard on the pool; counts are sums over disjoint
	// subsets, so the totals are identical to the serial walk.
	var counts map[string]int
	if v.Shards != nil {
		counts = r.memberCountsSharded(v.Shards)
	} else {
		counts = r.memberCounts(v.Collection)
	}
	members := make(map[rdf.IRI]bool, len(v.Collection))
	for _, it := range v.Collection {
		members[it] = true
	}
	n := len(v.Collection)
	maxW := coords[0].Weight

	for _, wc := range coords {
		c := wc.Coord
		weight := wc.Weight / maxW
		switch c.Kind {
		case vsm.CoordObject:
			r.suggestObject(b, c, weight, counts, members, n)
		case vsm.CoordWord:
			r.suggestWord(b, c, weight)
		}
	}
}

func (r *Refinement) suggestObject(b *blackboard.Board, c vsm.Coord, weight float64, counts map[string]int, members map[rdf.IRI]bool, n int) {
	var pred query.Predicate
	cnt := 0
	if len(c.Path) == 1 {
		pred = query.Property{Prop: c.Path[0], Value: c.Value}
		cnt = counts[countKey(c.Path[0], c.Value)]
	} else {
		pp := query.PathProperty{Path: c.Path, Value: c.Value}
		pred = pp
		// Composed coordinates need a real evaluation to learn how many
		// collection members they match.
		pp.Eval(r.env.Engine).ForEach(func(it rdf.IRI) bool {
			if members[it] {
				cnt++
			}
			return true
		})
	}
	if cnt == 0 || cnt == n {
		// Matches nothing or everything: no refinement value.
		return
	}
	detail := fmt.Sprintf("%d of %d", cnt, n)
	b.Post(blackboard.Suggestion{
		Advisor: blackboard.AdvisorRefine,
		Group:   vsm.PathLabel(c.Path, r.env.Label),
		Title:   r.env.Graph.TermLabel(c.Value),
		Detail:  detail,
		Weight:  weight,
		Action:  blackboard.Refine{Add: pred},
		Key:     "refine:" + pred.Key(),
		Analyst: r.Name(),
	})
}

func (r *Refinement) suggestWord(b *blackboard.Board, c vsm.Coord, weight float64) {
	// Composed word coordinates have no direct text-index field; only
	// direct text attributes are suggested as term constraints.
	if len(c.Path) != 1 {
		return
	}
	field := string(c.Path[0])
	display := c.Word
	if r.env.Text != nil {
		display = r.env.Text.Surface(c.Word)
	}
	pred := query.TermMatch{Term: c.Word, Field: field, Display: display}
	b.Post(blackboard.Suggestion{
		Advisor: blackboard.AdvisorRefine,
		Group:   r.env.Label(c.Path[0]) + " words",
		Title:   display,
		Weight:  weight,
		Action:  blackboard.Refine{Add: pred},
		Key:     "refine:" + pred.Key(),
		Analyst: r.Name(),
	})
}

func countKey(p rdf.IRI, v rdf.Term) string { return string(p) + "\x00" + v.Key() }

func (r *Refinement) memberCounts(items []rdf.IRI) map[string]int {
	counts := make(map[string]int)
	for _, it := range items {
		r.countMember(counts, it)
	}
	return counts
}

// countMember tallies one member's attribute/value pairs into counts.
func (r *Refinement) countMember(counts map[string]int, it rdf.IRI) {
	g := r.env.Graph
	for _, p := range g.PredicatesOf(it) {
		if r.env.Schema.Hidden(p) {
			continue
		}
		for _, v := range g.Objects(it, p) {
			counts[countKey(p, v)]++
		}
	}
}

// memberCountsSharded is the scatter-gather memberCounts: one partial tally
// per shard on the pool, summed shard-by-shard. Shard subsets are disjoint,
// so the merged totals equal the serial walk's exactly; the map is consumed
// by key lookup only, so merge order never shows.
func (r *Refinement) memberCountsSharded(shards []itemset.Set) map[string]int {
	g := r.env.Graph
	partials, err := par.Map(context.Background(), r.env.Pool, shards, func(_ int, s itemset.Set) map[string]int {
		part := make(map[string]int)
		s.ForEach(func(id uint32) bool {
			r.countMember(part, g.SubjectByID(id))
			return true
		})
		return part
	})
	if err != nil {
		var pe *par.PanicError
		if errors.As(err, &pe) {
			panic(pe)
		}
		// Context error cannot happen with a background context; recount
		// serially for totality.
		counts := make(map[string]int)
		for _, s := range shards {
			s.ForEach(func(id uint32) bool {
				r.countMember(counts, g.SubjectByID(id))
				return true
			})
		}
		return counts
	}
	counts := make(map[string]int)
	for _, part := range partials {
		for k, n := range part {
			counts[k] += n
		}
	}
	return counts
}

package analysts

import (
	"magnet/internal/blackboard"
)

// DropConstraint rescues empty result sets: §6.3.1 found that "users find
// it difficult to work with zero results", typically after stacking
// contradictory constraints. When the collection is empty, this analyst
// suggests removing each constraint, most recent first (the most recent
// addition is the likeliest culprit).
type DropConstraint struct {
	env *Env
}

// NewDropConstraint returns the analyst.
func NewDropConstraint(env *Env) *DropConstraint { return &DropConstraint{env: env} }

// Name implements blackboard.Analyst.
func (*DropConstraint) Name() string { return "drop-constraint" }

// Triggered implements blackboard.Analyst: empty constrained collections.
func (*DropConstraint) Triggered(v blackboard.View) bool {
	return v.IsCollection() && len(v.Collection) == 0 && !v.Query.IsEmpty()
}

// Suggest implements blackboard.Analyst.
func (d *DropConstraint) Suggest(v blackboard.View, b *blackboard.Board) {
	l := d.env.Labeler()
	n := len(v.Query.Terms)
	for i := n - 1; i >= 0; i-- {
		without := v.Query.Without(i)
		b.Post(blackboard.Suggestion{
			Advisor: blackboard.AdvisorModify,
			Group:   "No results — drop a constraint",
			Title:   "drop: " + v.Query.Terms[i].Describe(l),
			Weight:  float64(i+1) / float64(n),
			Action:  blackboard.ReplaceQuery{Query: without},
			Key:     "drop:" + without.Key(),
			Analyst: d.Name(),
		})
	}
}

// overviewThreshold is the refine-suggestion count beyond which the pane is
// considered inadequate and the Figure 2 overview is suggested.
const overviewThreshold = 12

// OverviewHint is a Reactor — an analyst "triggered by results from other
// analysts" (§4.3). After the primary round it counts the posted Refine
// Collections suggestions; when the pane is crowded it recommends the
// specialized large-collection overview interface (§3.1: "Users arriving at
// large collections, were the navigation pane is inadequate, can use a
// specialized interface in the main pane (shown in Figure 2)").
type OverviewHint struct {
	env *Env
}

// NewOverviewHint returns the reactor.
func NewOverviewHint(env *Env) *OverviewHint { return &OverviewHint{env: env} }

// Name implements blackboard.Analyst.
func (*OverviewHint) Name() string { return "overview-hint" }

// Triggered implements blackboard.Analyst.
func (*OverviewHint) Triggered(v blackboard.View) bool {
	return v.IsCollection() && len(v.Collection) >= 2
}

// Suggest implements blackboard.Analyst: the primary round posts nothing —
// this analyst only reacts.
func (*OverviewHint) Suggest(blackboard.View, *blackboard.Board) {}

// React implements blackboard.Reactor.
func (o *OverviewHint) React(v blackboard.View, posted []blackboard.Suggestion, b *blackboard.Board) {
	refines := 0
	for _, s := range posted {
		if s.Advisor == blackboard.AdvisorRefine {
			refines++
		}
	}
	if refines < overviewThreshold {
		return
	}
	b.Post(blackboard.Suggestion{
		Advisor: blackboard.AdvisorQuery,
		Group:   "Query",
		Title:   "Browse the full metadata overview",
		Detail:  "many refinement axes available",
		Weight:  0.9,
		Action:  blackboard.ShowOverview{},
		Key:     "overview-hint",
		Analyst: o.Name(),
	})
}

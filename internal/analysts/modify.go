package analysts

import (
	"magnet/internal/blackboard"
	"magnet/internal/facets"
)

// Contrary is the Contrary Constraints analyst (§4.1): for a collection
// reached by a query, it suggests collections with "one of the current
// collection constraints inverted", helping "users get an overview of other
// related information that is available". In the user study this advisor
// rescued subjects stuck on negation ("the contrary advisor would suggest
// negation to get them started", §6.3.1).
type Contrary struct {
	env *Env
}

// NewContrary returns the analyst.
func NewContrary(env *Env) *Contrary { return &Contrary{env: env} }

// Name implements blackboard.Analyst.
func (*Contrary) Name() string { return "contrary-constraints" }

// Triggered implements blackboard.Analyst: needs a constrained collection.
func (*Contrary) Triggered(v blackboard.View) bool {
	return v.IsCollection() && !v.Query.IsEmpty()
}

// Suggest implements blackboard.Analyst.
func (c *Contrary) Suggest(v blackboard.View, b *blackboard.Board) {
	l := c.env.Labeler()
	n := len(v.Query.Terms)
	for i := range v.Query.Terms {
		negated := v.Query.Negate(i)
		// Later-added constraints are likelier negation targets (the
		// user's most recent focus), so weight increases with position.
		weight := float64(i+1) / float64(n)
		b.Post(blackboard.Suggestion{
			Advisor: blackboard.AdvisorModify,
			Group:   "Contrary constraints",
			Title:   negated.Terms[i].Describe(l),
			Weight:  weight,
			Action:  blackboard.ReplaceQuery{Query: negated},
			Key:     "contrary:" + negated.Key(),
			Analyst: c.Name(),
		})
	}
}

// RangeWidget is the continuous-valued refinement analyst (§4.3, §5.4): for
// each numeric attribute of the collection it offers a range-selection
// control with a query-preview histogram (Figure 5's sliders and hatch
// marks).
type RangeWidget struct {
	env     *Env
	buckets int
}

// NewRangeWidget returns the analyst building histograms with the given
// bucket count.
func NewRangeWidget(env *Env, buckets int) *RangeWidget {
	return &RangeWidget{env: env, buckets: buckets}
}

// Name implements blackboard.Analyst.
func (*RangeWidget) Name() string { return "numeric-range" }

// Triggered implements blackboard.Analyst.
func (*RangeWidget) Triggered(v blackboard.View) bool {
	return v.IsCollection() && len(v.Collection) >= 2
}

// Suggest implements blackboard.Analyst.
func (r *RangeWidget) Suggest(v blackboard.View, b *blackboard.Board) {
	n := len(v.Collection)
	for _, p := range r.env.Schema.NumericProperties() {
		h, ok := facets.NumericHistogram(r.env.Graph, v.Collection, p, r.buckets)
		if !ok {
			continue
		}
		b.Post(blackboard.Suggestion{
			Advisor: blackboard.AdvisorRefine,
			Group:   r.env.Label(p),
			Title:   "refine by range of " + r.env.Label(p),
			Detail:  "range widget",
			Weight:  float64(h.Count) / float64(n),
			Action:  blackboard.ShowRange{Prop: p, Histogram: h},
			Key:     "range:" + string(p),
			Analyst: r.Name(),
		})
	}
}

// SearchWithin posts the within-collection keyword search affordance shown
// under 'Query' in the navigation pane (§4.3: "Other analysts provide
// support for keyword search within the collection").
type SearchWithin struct {
	env *Env
}

// NewSearchWithin returns the analyst.
func NewSearchWithin(env *Env) *SearchWithin { return &SearchWithin{env: env} }

// Name implements blackboard.Analyst.
func (*SearchWithin) Name() string { return "search-within" }

// Triggered implements blackboard.Analyst.
func (s *SearchWithin) Triggered(v blackboard.View) bool {
	return v.IsCollection() && len(v.Collection) > 0 && s.env.Text != nil
}

// Suggest implements blackboard.Analyst.
func (s *SearchWithin) Suggest(v blackboard.View, b *blackboard.Board) {
	b.Post(blackboard.Suggestion{
		Advisor: blackboard.AdvisorQuery,
		Group:   "Query",
		Title:   "Search within this collection",
		Weight:  1,
		Action:  blackboard.ShowSearch{},
		Key:     "search-within",
		Analyst: s.Name(),
	})
}

package analysts_test

import (
	"fmt"
	"strings"
	"testing"

	"magnet/internal/analysts"
	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

func session(t *testing.T, n int) (*core.Magnet, *core.Session) {
	t.Helper()
	g := recipes.Build(recipes.Config{Recipes: n, Seed: 1})
	m := core.Open(g, core.Options{})
	return m, m.NewSession()
}

func suggestionsOf(b *blackboard.Board, analyst string) []blackboard.Suggestion {
	var out []blackboard.Suggestion
	for _, s := range b.Suggestions() {
		if s.Analyst == analyst {
			out = append(out, s)
		}
	}
	return out
}

func greekCollection(s *core.Session) {
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
	)})
}

func TestRefinementSuggestsPropertyValues(t *testing.T) {
	_, s := session(t, 500)
	greekCollection(s)
	board := s.Board()
	refines := suggestionsOf(board, "query-refinement")
	if len(refines) == 0 {
		t.Fatal("no refinement suggestions")
	}
	n := len(s.Items())
	sawObject, sawWord := false, false
	for _, sg := range refines {
		r, ok := sg.Action.(blackboard.Refine)
		if !ok {
			t.Fatalf("refinement suggestion carries %T", sg.Action)
		}
		switch p := r.Add.(type) {
		case query.Property:
			sawObject = true
			// Detail is "k of n" with 0 < k < n.
			if sg.Detail == "" || strings.HasPrefix(sg.Detail, "0 of") {
				t.Errorf("bad detail %q for %v", sg.Detail, p)
			}
		case query.PathProperty:
			sawObject = true
		case query.TermMatch:
			sawWord = true
			if p.Display == "" {
				t.Errorf("term suggestion missing display form")
			}
		}
		if sg.Weight <= 0 || sg.Weight > 1+1e-9 {
			t.Errorf("weight out of scale: %v", sg.Weight)
		}
	}
	if !sawObject || !sawWord {
		t.Errorf("expected both object and word refinements: object=%v word=%v", sawObject, sawWord)
	}
	_ = n
}

func TestRefinementSuggestsComposedGroup(t *testing.T) {
	// The ingredient property carries the compose annotation, so
	// "ingredient · group" refinements (dairy, vegetables, ...) appear —
	// the §3.3 compound refinement building blocks.
	_, s := session(t, 500)
	greekCollection(s)
	found := false
	n := len(s.Items())
	for _, sg := range suggestionsOf(s.Board(), "query-refinement") {
		if r, ok := sg.Action.(blackboard.Refine); ok {
			if pp, ok := r.Add.(query.PathProperty); ok && len(pp.Path) == 2 &&
				pp.Path[0] == recipes.PropIngredient && pp.Path[1] == recipes.PropGroup {
				found = true
				// Composed suggestions carry real member counts and are
				// genuine refinements: 0 < k < n.
				var k, total int
				if _, err := fmt.Sscanf(sg.Detail, "%d of %d", &k, &total); err != nil {
					t.Fatalf("composed detail %q unparseable: %v", sg.Detail, err)
				}
				if total != n || k <= 0 || k >= n {
					t.Errorf("composed suggestion count %d of %d (collection %d)", k, total, n)
				}
			}
		}
	}
	if !found {
		t.Error("no composed ingredient·group refinement suggested")
	}
}

func TestRefinementAppliedNarrowsCollection(t *testing.T) {
	_, s := session(t, 500)
	greekCollection(s)
	before := len(s.Items())
	var applied bool
	for _, sg := range suggestionsOf(s.Board(), "query-refinement") {
		if r, ok := sg.Action.(blackboard.Refine); ok {
			if _, isProp := r.Add.(query.Property); isProp {
				if err := s.Apply(sg.Action); err != nil {
					t.Fatal(err)
				}
				applied = true
				break
			}
		}
	}
	if !applied {
		t.Fatal("no applicable property refinement")
	}
	after := len(s.Items())
	if after == 0 || after >= before {
		t.Errorf("refinement %d → %d items; want strictly narrower and non-empty", before, after)
	}
}

func TestSharedPropertyOnItem(t *testing.T) {
	m, s := session(t, 300)
	s.OpenItem(m.Items()[100])
	shared := suggestionsOf(s.Board(), "shared-property")
	if len(shared) == 0 {
		t.Fatal("no shared-property suggestions")
	}
	for _, sg := range shared {
		rq, ok := sg.Action.(blackboard.ReplaceQuery)
		if !ok {
			t.Fatalf("shared suggestion carries %T", sg.Action)
		}
		if err := s.Apply(sg.Action); err != nil {
			t.Fatal(err)
		}
		if len(s.Items()) < 2 {
			t.Errorf("shared-property collection %v has %d items; sharing means ≥ 2",
				rq.Query.Describe(nil), len(s.Items()))
		}
		s.OpenItem(m.Items()[100])
	}
}

func TestSimilarItemAnalyst(t *testing.T) {
	m, s := session(t, 300)
	recipesOnly := m.Graph().SubjectsOfType(recipes.ClassRecipe)
	item := recipesOnly[0]
	s.OpenItem(item)
	sims := suggestionsOf(s.Board(), "similar-by-content-item")
	if len(sims) != 1 {
		t.Fatalf("similar suggestions = %d", len(sims))
	}
	act := sims[0].Action.(blackboard.GoToCollection)
	if len(act.Items) == 0 {
		t.Fatal("no similar items")
	}
	for _, other := range act.Items {
		if other == item {
			t.Error("item itself in similar list")
		}
	}
	// Top similar shares structure: same cuisine or an overlapping
	// ingredient (sanity of the fuzzy match).
	g := m.Graph()
	top := act.Items[0]
	cuisine, _ := g.Object(item, recipes.PropCuisine)
	shares := g.Has(top, recipes.PropCuisine, cuisine)
	for _, ing := range g.Objects(item, recipes.PropIngredient) {
		if g.Has(top, recipes.PropIngredient, ing) {
			shares = true
		}
	}
	if !shares {
		t.Errorf("top similar %s shares nothing obvious with %s", top, item)
	}
}

func TestSimilarCollectionAnalyst(t *testing.T) {
	_, s := session(t, 300)
	greekCollection(s)
	members := map[rdf.IRI]bool{}
	for _, it := range s.Items() {
		members[it] = true
	}
	sims := suggestionsOf(s.Board(), "similar-by-content-collection")
	if len(sims) != 1 {
		t.Fatalf("collection-similar suggestions = %d", len(sims))
	}
	act := sims[0].Action.(blackboard.GoToCollection)
	for _, it := range act.Items {
		if members[it] {
			t.Errorf("member %s suggested as 'more like these'", it)
		}
	}
}

func TestContraryAnalyst(t *testing.T) {
	m, s := session(t, 300)
	greekCollection(s)
	contraries := suggestionsOf(s.Board(), "contrary-constraints")
	if len(contraries) != 2 { // one per constraint
		t.Fatalf("contrary suggestions = %d", len(contraries))
	}
	sawNegatedCuisine := false
	for _, sg := range contraries {
		if _, ok := sg.Action.(blackboard.ReplaceQuery); !ok {
			t.Fatalf("contrary suggestion carries %T", sg.Action)
		}
		if strings.Contains(sg.Title, "NOT") && strings.Contains(sg.Title, "Greek") {
			sawNegatedCuisine = true
			s.Apply(sg.Action)
			for _, it := range s.Items()[:5] {
				if m.Graph().Has(it, recipes.PropCuisine, recipes.Cuisine("Greek")) {
					t.Error("negated collection still Greek")
				}
			}
		}
	}
	if !sawNegatedCuisine {
		t.Error("no negated-cuisine contrary")
	}
}

func TestRangeWidgetAnalyst(t *testing.T) {
	_, s := session(t, 300)
	greekCollection(s)
	ranges := suggestionsOf(s.Board(), "numeric-range")
	props := map[rdf.IRI]bool{}
	for _, sg := range ranges {
		act, ok := sg.Action.(blackboard.ShowRange)
		if !ok {
			t.Fatalf("range suggestion carries %T", sg.Action)
		}
		props[act.Prop] = true
		if act.Histogram.Count < 2 {
			t.Errorf("histogram count = %d", act.Histogram.Count)
		}
	}
	if !props[recipes.PropServings] || !props[recipes.PropPrepTime] {
		t.Errorf("expected servings and prep-time ranges, got %v", props)
	}
}

func TestSearchWithinAnalyst(t *testing.T) {
	_, s := session(t, 200)
	greekCollection(s)
	sw := suggestionsOf(s.Board(), "search-within")
	if len(sw) != 1 {
		t.Fatalf("search-within = %d", len(sw))
	}
	if _, ok := sw[0].Action.(blackboard.ShowSearch); !ok {
		t.Errorf("action = %T", sw[0].Action)
	}
	if sw[0].Advisor != blackboard.AdvisorQuery {
		t.Errorf("advisor = %s", sw[0].Advisor)
	}
}

func TestHistoryAnalystPreviousAndTrail(t *testing.T) {
	m, s := session(t, 200)
	greekCollection(s)
	s.OpenItem(m.Items()[0])
	s.GoHome()
	hist := suggestionsOf(s.Board(), "history")
	var prev, trail int
	for _, sg := range hist {
		switch sg.Group {
		case "Previous":
			prev++
		case "Refinement":
			trail++
		}
	}
	if prev == 0 {
		t.Error("no Previous suggestions")
	}
	if trail == 0 {
		t.Error("no Refinement-trail suggestions")
	}
}

func TestSimilarByVisitLearnsTransitions(t *testing.T) {
	m, s := session(t, 200)
	a, b := m.Items()[0], m.Items()[1]
	// Teach: from a the user repeatedly goes to b.
	for i := 0; i < 3; i++ {
		s.OpenItem(a)
		s.OpenItem(b)
	}
	s.OpenItem(a)
	visits := suggestionsOf(s.Board(), "similar-by-visit")
	if len(visits) == 0 {
		t.Fatal("no similar-by-visit suggestions")
	}
	act, ok := visits[0].Action.(blackboard.GoToItem)
	if !ok || act.Item != b {
		t.Errorf("top visit suggestion = %+v, want GoToItem(b)", visits[0])
	}
	if !strings.Contains(visits[0].Detail, "3") {
		t.Errorf("detail %q should carry the count", visits[0].Detail)
	}
}

func TestDropConstraintOnEmptyResults(t *testing.T) {
	_, s := session(t, 300)
	// Contradictory query: Greek AND Mexican.
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Mexican")},
	)})
	if len(s.Items()) != 0 {
		t.Fatal("precondition: contradictory query should be empty")
	}
	drops := suggestionsOf(s.Board(), "drop-constraint")
	if len(drops) != 2 {
		t.Fatalf("drop suggestions = %d, want one per constraint", len(drops))
	}
	// Most recent constraint is the top-weighted drop candidate.
	if drops[0].Weight < drops[1].Weight {
		t.Error("later constraints should weigh more")
	}
	if err := s.Apply(drops[0].Action); err != nil {
		t.Fatal(err)
	}
	if len(s.Items()) == 0 {
		t.Error("dropping a constraint should recover results")
	}
	// Non-empty collections must not trigger the analyst.
	if got := suggestionsOf(s.Board(), "drop-constraint"); got != nil {
		t.Errorf("drop analyst fired on non-empty collection: %v", got)
	}
}

func TestOverviewHintReactsToCrowdedPane(t *testing.T) {
	_, s := session(t, 500)
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
	hints := suggestionsOf(s.Board(), "overview-hint")
	if len(hints) != 1 {
		t.Fatalf("overview hints = %d (pane should be crowded on the full corpus)", len(hints))
	}
	if _, ok := hints[0].Action.(blackboard.ShowOverview); !ok {
		t.Errorf("hint action = %T", hints[0].Action)
	}
	// A collection of property-poor items (ingredient groups carry only a
	// type and a label) offers few refinement axes and gets no hint.
	groups := []rdf.IRI{recipes.Group("Nuts"), recipes.Group("Dairy"), recipes.Group("Legumes")}
	s.Apply(blackboard.GoToCollection{Title: "groups", Items: groups})
	if got := suggestionsOf(s.Board(), "overview-hint"); got != nil {
		t.Errorf("hint on sparse collection: %v", got)
	}
}

func TestDefaultAndBaselineSets(t *testing.T) {
	env := &analysts.Env{}
	def := analysts.DefaultSet(env)
	base := analysts.BaselineSet(env)
	if len(def) <= len(base) {
		t.Errorf("default (%d) should have more analysts than baseline (%d)", len(def), len(base))
	}
	names := map[string]bool{}
	for _, a := range def {
		if names[a.Name()] {
			t.Errorf("duplicate analyst name %q", a.Name())
		}
		names[a.Name()] = true
	}
	for _, want := range []string{"query-refinement", "similar-by-content-item",
		"contrary-constraints", "numeric-range", "history"} {
		if !names[want] {
			t.Errorf("default set missing %q", want)
		}
	}
}

// Package analysts implements Magnet's analysts (paper §4.1, §4.3): the
// algorithmic units that, triggered by the currently viewed item or
// collection, write navigation suggestions on the blackboard for the
// advisors to present. The default set covers every advisor the paper
// lists: query refinement over property values and text terms, shared
// properties, similarity by content (item and collection variants),
// similarity by visit, contrary constraints, numeric range widgets,
// within-collection keyword search, and history.
package analysts

import (
	"magnet/internal/blackboard"
	"magnet/internal/history"
	"magnet/internal/index"
	"magnet/internal/par"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/schema"
	"magnet/internal/vsm"
)

// Env bundles the substrates analysts consult. All fields except Tracker
// and LookupView are required.
type Env struct {
	Graph  *rdf.Graph
	Schema *schema.Store
	Model  *vsm.Model
	Engine *query.Engine
	Text   *index.TextIndex
	// Tracker records visits; nil disables the history-based analysts.
	Tracker *history.Tracker
	// LookupView resolves a history key back to a view so history
	// suggestions can carry executable actions; nil disables them too.
	LookupView func(key string) (blackboard.View, bool)
	// Pool, when set, lets analysts scatter per-shard scoring work over
	// the serving pool (views carrying a shard partition); nil scores
	// serially. Results are identical either way.
	Pool *par.Pool
}

// Label renders a resource using the graph's labels.
func (e *Env) Label(r rdf.IRI) string { return e.Graph.Label(r) }

// Labeler returns the query.Labeler for this environment.
func (e *Env) Labeler() query.Labeler {
	return func(r rdf.IRI) string { return e.Graph.Label(r) }
}

// DefaultSet returns the paper's full analyst complement, ready for
// registration ("the following advisors have been implemented", §4.1).
func DefaultSet(env *Env) []blackboard.Analyst {
	return []blackboard.Analyst{
		NewRefinement(env, 40),
		NewSharedProperty(env, 30),
		NewSimilarItem(env, 20),
		NewSimilarCollection(env, 20),
		NewSimilarByVisit(env, 5),
		NewContrary(env),
		NewRangeWidget(env, 12),
		NewSearchWithin(env),
		NewHistory(env, 5),
		NewDropConstraint(env),
		NewOverviewHint(env),
	}
}

// BaselineSet returns the Flamenco-like baseline configuration used as the
// user study's control (§6.3): "navigation advisors suggesting refinements
// roughly the same as those in the Flamenco system", including text terms
// and negation via context menu, but no similarity, contrary, or visit
// advisors.
func BaselineSet(env *Env) []blackboard.Analyst {
	return []blackboard.Analyst{
		NewRefinement(env, 40),
		NewRangeWidget(env, 12),
		NewSearchWithin(env),
		NewHistory(env, 5),
	}
}

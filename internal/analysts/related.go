package analysts

import (
	"fmt"

	"magnet/internal/blackboard"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

// SharedProperty is the Related Items analyst for "Sharing a property":
// from a single item it suggests collections of items "that have a given
// metadata attribute and value in common with the currently viewed item"
// (§4.1). Rarer shared values get higher weights (idf-style), since they
// identify more distinctive company.
type SharedProperty struct {
	env *Env
	max int
}

// NewSharedProperty returns the analyst posting at most max suggestions.
func NewSharedProperty(env *Env, max int) *SharedProperty {
	return &SharedProperty{env: env, max: max}
}

// Name implements blackboard.Analyst.
func (*SharedProperty) Name() string { return "shared-property" }

// Triggered implements blackboard.Analyst: single-item views only.
func (*SharedProperty) Triggered(v blackboard.View) bool { return v.IsItem() }

// Suggest implements blackboard.Analyst.
func (s *SharedProperty) Suggest(v blackboard.View, b *blackboard.Board) {
	g := s.env.Graph
	total := len(g.AllSubjects())
	posted := 0
	for _, p := range g.PredicatesOf(v.Item) {
		if s.env.Schema.Hidden(p) {
			continue
		}
		for _, val := range g.Objects(v.Item, p) {
			if posted >= s.max {
				return
			}
			sharers := g.SubjectCount(p, val)
			if sharers < 2 { // nobody else shares it
				continue
			}
			// Weight: rarer shared values are more distinctive. Scale to
			// (0,1]: sharing with 1 other ≈ 1, sharing with everyone → 0.
			weight := 1 - float64(sharers)/float64(total+1)
			pred := query.Property{Prop: p, Value: val}
			q := query.NewQuery(pred)
			b.Post(blackboard.Suggestion{
				Advisor: blackboard.AdvisorRelated,
				Group:   "Sharing a property",
				Title:   pred.Describe(s.env.Labeler()),
				Detail:  fmt.Sprintf("%d items", sharers),
				Weight:  weight,
				Action:  blackboard.ReplaceQuery{Query: q},
				Key:     "shared:" + pred.Key(),
				Analyst: s.Name(),
			})
			posted++
		}
	}
}

// SimilarItem is the Related Items analyst for "Similar by Content
// (Overall)" on single items: "a fuzzy approach (as determined by a
// standard learning algorithm) to showing other items having both similar
// structural elements (properties) and similar textual elements" — the
// vector space model's dot-product neighbours (§5.3).
type SimilarItem struct {
	env *Env
	k   int
}

// NewSimilarItem returns the analyst materializing the top-k neighbours.
func NewSimilarItem(env *Env, k int) *SimilarItem {
	return &SimilarItem{env: env, k: k}
}

// Name implements blackboard.Analyst.
func (*SimilarItem) Name() string { return "similar-by-content-item" }

// Triggered implements blackboard.Analyst.
func (*SimilarItem) Triggered(v blackboard.View) bool { return v.IsItem() }

// Suggest implements blackboard.Analyst.
func (s *SimilarItem) Suggest(v blackboard.View, b *blackboard.Board) {
	sims := s.env.Model.SimilarToItem(v.Item, s.k)
	if len(sims) == 0 {
		return
	}
	items := make([]rdf.IRI, len(sims))
	for i, sc := range sims {
		items[i] = sc.Item
	}
	b.Post(blackboard.Suggestion{
		Advisor: blackboard.AdvisorRelated,
		Group:   "Similar by Content",
		Title:   "Overall (textual and structural)",
		Detail:  fmt.Sprintf("%d items", len(items)),
		Weight:  sims[0].Score,
		Action: blackboard.GoToCollection{
			Title: "Items similar to " + s.env.Label(v.Item),
			Items: items,
		},
		Key:     "simitem:" + string(v.Item),
		Analyst: s.Name(),
	})
}

// SimilarCollection is the collection-side "Similar by Content" analyst:
// "the other for working with collections and providing more items similar
// to the items in the collection" (§4.1), via the centroid "average member"
// of §5.3.
type SimilarCollection struct {
	env *Env
	k   int
}

// NewSimilarCollection returns the analyst materializing the top-k
// non-member neighbours of the collection centroid.
func NewSimilarCollection(env *Env, k int) *SimilarCollection {
	return &SimilarCollection{env: env, k: k}
}

// Name implements blackboard.Analyst.
func (*SimilarCollection) Name() string { return "similar-by-content-collection" }

// Triggered implements blackboard.Analyst.
func (*SimilarCollection) Triggered(v blackboard.View) bool {
	return v.IsCollection() && len(v.Collection) >= 1
}

// Suggest implements blackboard.Analyst.
func (s *SimilarCollection) Suggest(v blackboard.View, b *blackboard.Board) {
	sims := s.env.Model.SimilarToCollection(v.Collection, s.k, true)
	if len(sims) == 0 {
		return
	}
	items := make([]rdf.IRI, len(sims))
	for i, sc := range sims {
		items[i] = sc.Item
	}
	b.Post(blackboard.Suggestion{
		Advisor: blackboard.AdvisorRelated,
		Group:   "Similar by Content",
		Title:   "More items like these",
		Detail:  fmt.Sprintf("%d items", len(items)),
		Weight:  sims[0].Score,
		Action:  blackboard.GoToCollection{Title: "Items similar to the collection", Items: items},
		Key:     "simcoll:" + v.Query.Key(),
		Analyst: s.Name(),
	})
}

// SimilarByVisit is the "intelligent history" analyst (§4.1): it suggests
// views "that were visited the last time the user left the currently viewed
// item", weighted by how often each was followed.
type SimilarByVisit struct {
	env *Env
	k   int
}

// NewSimilarByVisit returns the analyst suggesting at most k destinations.
func NewSimilarByVisit(env *Env, k int) *SimilarByVisit {
	return &SimilarByVisit{env: env, k: k}
}

// Name implements blackboard.Analyst.
func (*SimilarByVisit) Name() string { return "similar-by-visit" }

// Triggered implements blackboard.Analyst: needs history plumbing.
func (s *SimilarByVisit) Triggered(blackboard.View) bool {
	return s.env.Tracker != nil && s.env.LookupView != nil
}

// Suggest implements blackboard.Analyst.
func (s *SimilarByVisit) Suggest(v blackboard.View, b *blackboard.Board) {
	followed := s.env.Tracker.FollowedFrom(v.Key(), s.k)
	if len(followed) == 0 {
		return
	}
	maxC := followed[0].Count
	for _, f := range followed {
		dest, ok := s.env.LookupView(f.Key)
		if !ok {
			continue
		}
		title, action := describeDestination(s.env, dest)
		b.Post(blackboard.Suggestion{
			Advisor: blackboard.AdvisorRelated,
			Group:   "Similar by Visit",
			Title:   title,
			Detail:  fmt.Sprintf("followed %d×", f.Count),
			Weight:  float64(f.Count) / float64(maxC),
			Action:  action,
			Key:     "visit:" + v.Key() + "→" + f.Key,
			Analyst: s.Name(),
		})
	}
}

// describeDestination renders a view as a suggestion title plus the action
// that navigates to it.
func describeDestination(env *Env, dest blackboard.View) (string, blackboard.Action) {
	if dest.IsItem() {
		return env.Label(dest.Item), blackboard.GoToItem{Item: dest.Item}
	}
	descs := dest.Query.Describe(env.Labeler())
	title := "all items"
	if len(descs) > 0 {
		title = descs[0]
		for _, d := range descs[1:] {
			title += " ∧ " + d
		}
	}
	return title, blackboard.ReplaceQuery{Query: dest.Query}
}

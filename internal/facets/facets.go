// Package facets computes the faceted-metadata summaries behind Magnet's
// interface: per-property value histograms over a collection (the
// navigation pane of Figure 1 and the large-collection overview of
// Figure 2) and numeric histograms for range widgets with query previews
// (Figure 5's hatch marks).
package facets

import (
	"context"
	"errors"
	"math"
	"sort"
	"time"

	"magnet/internal/itemset"
	"magnet/internal/obs"
	"magnet/internal/par"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// Facet-summarization observability: how often the navigation pane / Figure 2
// overview aggregation runs, how long it takes, and how many facets survive
// filtering. Recorded unconditionally in Summarize; SummarizeContext adds a
// span when the caller's context carries a trace.
var (
	summarizeCount  = obs.NewCounter("facets.summarize.count")
	summarizeNS     = obs.NewHistogram("facets.summarize.ns")
	summarizeFacets = obs.NewHistogram("facets.summarize.facets")
)

// Value is one attribute value with its occurrence count in the collection.
type Value struct {
	Term  rdf.Term
	Label string
	Count int
}

// Facet summarizes one property over a collection.
type Facet struct {
	Prop  rdf.IRI
	Label string
	// Labeled reports whether the property carries an explicit label;
	// unlabeled properties display raw identifiers (Figure 7).
	Labeled bool
	// ValueType is the property's effective value type.
	ValueType schema.ValueType
	// Values are the facet's values; ordering per Options.
	Values []Value
	// Distinct is the total number of distinct values in the collection
	// (Values may be truncated for display).
	Distinct int
	// Coverage is the number of collection items carrying the property.
	Coverage int
	// Preferred reports the magnet:facet annotation.
	Preferred bool
}

// Score orders facets by usefulness for browsing: high coverage with
// shared (non-unique) values beats sparse or all-distinct properties.
// Preferred (annotated) facets sort first regardless.
func (f Facet) Score() float64 {
	if f.Coverage == 0 {
		return 0
	}
	sharing := 1 - float64(f.Distinct)/float64(f.Coverage+1)
	return float64(f.Coverage) * sharing
}

// Options controls summarization.
type Options struct {
	// MaxValues truncates each facet's displayed values (0 = no limit);
	// Facet.Distinct still reports the full count (the interface's "..."
	// affordance, §3.2).
	MaxValues int
	// MinCount drops values occurring fewer times (0 or 1 keeps all).
	MinCount int
	// ByCount orders values by descending count (the Figure 2 overview);
	// default is alphabetical by label ("sorted in an alphabetical order to
	// enable users to search for a particular suggestion", §4.1).
	ByCount bool
	// IncludeUnshared keeps facets where every value is distinct (normally
	// useless for refinement and skipped).
	IncludeUnshared bool
	// Pool shards per-property aggregation across workers; nil aggregates
	// serially. Output is identical either way: properties are
	// index-addressed into per-predicate slots, so the facet table never
	// depends on schedule.
	Pool *par.Pool
}

// Summarize computes facets for every navigation property occurring in the
// collection. Facets are ordered: preferred (annotated) facets first, then
// by descending Score, ties alphabetical.
//
// Aggregation runs on the graph's dense-ID plane: the collection becomes one
// sorted itemset, and each property's per-value histogram is a sequence of
// posting-list intersections — no per-item hashing, no per-value maps.
func Summarize(g *rdf.Graph, sch *schema.Store, items []rdf.IRI, opts Options) []Facet {
	return summarize(context.Background(), g, sch, items, opts)
}

func summarize(ctx context.Context, g *rdf.Graph, sch *schema.Store, items []rdf.IRI, opts Options) []Facet {
	start := time.Now()
	collIDs := make([]uint32, 0, len(items))
	for _, it := range items {
		// Items absent from the graph carry no properties.
		if id, ok := g.SubjectID(it); ok {
			collIDs = append(collIDs, id)
		}
	}
	facets := summarizeSet(ctx, g, sch, itemset.FromUnsorted(collIDs), opts)
	summarizeCount.Inc()
	summarizeNS.ObserveSince(start)
	summarizeFacets.Observe(int64(len(facets)))
	return facets
}

// summarizeSet is the dense-ID core of Summarize: aggregation over an
// already-interned collection. The sharded path calls it once per shard
// (with raw options) and once here for the whole collection; it records no
// metrics so entry points stay comparable.
func summarizeSet(ctx context.Context, g *rdf.Graph, sch *schema.Store, coll itemset.Set, opts Options) []Facet {
	// Every intersection result is a subset of coll, so coll's max ID bounds
	// each worker's epoch-stamp array.
	var maxID uint32
	if n := coll.Len(); n > 0 {
		maxID, _ = coll.Select(n - 1)
	}

	// Shard per-predicate aggregation across the pool. Predicates() is
	// sorted, results are index-addressed per predicate, and each chunk
	// carries its own scratch (stamp array + intersection buffer), so the
	// collected table is identical to a serial pass. With a nil/serial
	// pool ChunkFor yields one chunk: one scratch allocation, exactly the
	// old loop.
	preds := g.Predicates()
	results := make([]*Facet, len(preds))
	err := par.ForChunks(ctx, opts.Pool, len(preds), par.ChunkFor(opts.Pool, len(preds)), func(lo, hi int) {
		seen := make([]uint32, int(maxID)+1)
		var epoch uint32
		var buf []uint32 // intersection scratch, reused across values
		for i := lo; i < hi; i++ {
			epoch++
			results[i] = summarizeProp(g, sch, preds[i], coll, seen, epoch, &buf, opts)
		}
	})
	var pe *par.PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}

	facets := make([]Facet, 0, len(results))
	for _, f := range results {
		if f != nil {
			facets = append(facets, *f)
		}
	}
	sortFacets(facets)
	return facets
}

// sortFacets applies the display order shared by the unsharded and
// shard-merged paths: preferred (annotated) facets first, then by
// descending Score, ties alphabetical. Callers must present facets in
// property order (Predicates() is sorted; MergeShards re-sorts by Prop) so
// equal-key elements enter the unstable sort in the same sequence on both
// paths and the output stays byte-identical.
func sortFacets(facets []Facet) {
	sort.Slice(facets, func(i, j int) bool {
		if facets[i].Preferred != facets[j].Preferred {
			return facets[i].Preferred
		}
		si, sj := facets[i].Score(), facets[j].Score()
		if si != sj {
			return si > sj
		}
		return facets[i].Label < facets[j].Label
	})
}

// summarizeProp aggregates one property over the collection, returning nil
// for hidden, uncovered, or unshared-and-unpreferred properties. seen is
// the caller's epoch-stamp array (epoch must be fresh for this call) and
// buf its reusable intersection scratch — both owned by a single worker.
func summarizeProp(g *rdf.Graph, sch *schema.Store, p rdf.IRI, coll itemset.Set, seen []uint32, epoch uint32, buf *[]uint32, opts Options) *Facet {
	if sch.Hidden(p) {
		return nil
	}
	coverage, distinct := 0, 0
	shared := false
	var values []Value
	g.ForEachValuePosting(p, func(o rdf.Term, subjects itemset.Set) bool {
		inter := itemset.IntersectInto(*buf, subjects, coll)
		*buf = inter.Buffer()[:0]
		n := inter.Len()
		if n == 0 {
			return true
		}
		distinct++
		if n >= 2 {
			shared = true
		}
		coverage += countCoverage(inter.Slice(), seen, epoch)
		if opts.MinCount > 1 && n < opts.MinCount {
			return true
		}
		values = append(values, Value{Term: o, Label: g.TermLabel(o), Count: n})
		return true
	})
	if coverage == 0 {
		return nil
	}
	f := Facet{
		Prop:      p,
		Label:     sch.Label(p),
		Labeled:   sch.HasLabel(p),
		ValueType: sch.ValueType(p),
		Values:    values,
		Distinct:  distinct,
		Coverage:  coverage,
		Preferred: sch.IsFacet(p),
	}
	if p == rdf.Type {
		// System vocabulary always displays readably, even on datasets
		// that otherwise show raw identifiers (Figure 7).
		f.Label, f.Labeled = "type", true
	}
	if !shared && !opts.IncludeUnshared && !f.Preferred {
		return nil
	}
	sortValues(f.Values, opts.ByCount)
	if opts.MaxValues > 0 && len(f.Values) > opts.MaxValues {
		f.Values = f.Values[:opts.MaxValues]
	}
	return &f
}

// countCoverage stamps each member into seen at epoch and returns how many
// were newly stamped — the per-value inner loop of Summarize. It used to be
// a closure over seen/epoch/coverage inside summarizeProp, which heap-
// allocated once per (property, value) pair; as a plain function it is
// allocation-free by construction and magnet-vet's hotalloc keeps it that
// way.
//
//magnet:hot
func countCoverage(members, seen []uint32, epoch uint32) int {
	n := 0
	for _, id := range members {
		if seen[id] != epoch {
			seen[id] = epoch
			n++
		}
	}
	return n
}

// SummarizeContext is Summarize with tracing: when ctx carries a trace
// (obs.StartTrace) the aggregation appears as a facets.summarize span
// annotated with collection size and facet count.
func SummarizeContext(ctx context.Context, g *rdf.Graph, sch *schema.Store, items []rdf.IRI, opts Options) []Facet {
	ctx, sp := obs.StartSpan(ctx, "facets.summarize")
	facets := summarize(ctx, g, sch, items, opts)
	sp.SetInt("items", len(items))
	sp.SetInt("facets", len(facets))
	sp.End()
	return facets
}

func sortValues(vs []Value, byCount bool) {
	sort.Slice(vs, func(i, j int) bool {
		if byCount && vs[i].Count != vs[j].Count {
			return vs[i].Count > vs[j].Count
		}
		if vs[i].Label != vs[j].Label {
			return vs[i].Label < vs[j].Label
		}
		return vs[i].Term.Key() < vs[j].Term.Key()
	})
}

// Histogram is a bucketed numeric summary for a range widget: Figure 5's
// "hatch marks to represent documents thus showing a form of query
// preview".
type Histogram struct {
	Prop     rdf.IRI
	Min, Max float64
	Buckets  []int
	// Count is the number of items contributing a value.
	Count int
}

// NumericHistogram summarizes prop's numeric values over the collection in
// nbuckets equal-width buckets. Items without a parseable numeric value are
// skipped; ok is false when fewer than two items contribute (no range to
// select).
func NumericHistogram(g *rdf.Graph, items []rdf.IRI, prop rdf.IRI, nbuckets int) (Histogram, bool) {
	if nbuckets <= 0 {
		nbuckets = 10
	}
	var vals []float64
	for _, it := range items {
		for _, o := range g.Objects(it, prop) {
			lit, ok := o.(rdf.Literal)
			if !ok {
				continue
			}
			if f, ok := lit.Float(); ok {
				vals = append(vals, f)
				break // one value per item in the preview
			}
		}
	}
	if len(vals) < 2 {
		return Histogram{Prop: prop}, false
	}
	h := Histogram{Prop: prop, Min: vals[0], Max: vals[0], Buckets: make([]int, nbuckets), Count: len(vals)}
	for _, v := range vals {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	if h.Max == h.Min {
		h.Buckets[0] = len(vals)
		return h, true
	}
	for _, v := range vals {
		b := int(float64(nbuckets) * (v - h.Min) / (h.Max - h.Min))
		if b == nbuckets {
			b--
		}
		h.Buckets[b]++
	}
	return h, true
}

// Outliers returns values more than k standard deviations from the mean of
// prop over the collection (how the Figure 8 walkthrough "clearly shows one
// state (Alaska) having a much larger area than the rest"). Items without
// numeric values are skipped.
func Outliers(g *rdf.Graph, items []rdf.IRI, prop rdf.IRI, k float64) []rdf.IRI {
	type pair struct {
		item rdf.IRI
		v    float64
	}
	var pairs []pair
	var sum float64
	for _, it := range items {
		for _, o := range g.Objects(it, prop) {
			lit, ok := o.(rdf.Literal)
			if !ok {
				continue
			}
			if f, ok := lit.Float(); ok {
				pairs = append(pairs, pair{it, f})
				sum += f
				break
			}
		}
	}
	if len(pairs) < 3 {
		return nil
	}
	mean := sum / float64(len(pairs))
	var varsum float64
	for _, p := range pairs {
		d := p.v - mean
		varsum += d * d
	}
	variance := varsum / float64(len(pairs))
	if variance == 0 {
		return nil
	}
	std := math.Sqrt(variance)
	var out []rdf.IRI
	for _, p := range pairs {
		if math.Abs(p.v-mean) > k*std {
			out = append(out, p.item)
		}
	}
	// Output follows the input order; callers pass sorted collections, so
	// re-sorting here would be redundant.
	return out
}

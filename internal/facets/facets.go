// Package facets computes the faceted-metadata summaries behind Magnet's
// interface: per-property value histograms over a collection (the
// navigation pane of Figure 1 and the large-collection overview of
// Figure 2) and numeric histograms for range widgets with query previews
// (Figure 5's hatch marks).
package facets

import (
	"math"
	"sort"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// Value is one attribute value with its occurrence count in the collection.
type Value struct {
	Term  rdf.Term
	Label string
	Count int
}

// Facet summarizes one property over a collection.
type Facet struct {
	Prop  rdf.IRI
	Label string
	// Labeled reports whether the property carries an explicit label;
	// unlabeled properties display raw identifiers (Figure 7).
	Labeled bool
	// ValueType is the property's effective value type.
	ValueType schema.ValueType
	// Values are the facet's values; ordering per Options.
	Values []Value
	// Distinct is the total number of distinct values in the collection
	// (Values may be truncated for display).
	Distinct int
	// Coverage is the number of collection items carrying the property.
	Coverage int
	// Preferred reports the magnet:facet annotation.
	Preferred bool
}

// Score orders facets by usefulness for browsing: high coverage with
// shared (non-unique) values beats sparse or all-distinct properties.
// Preferred (annotated) facets sort first regardless.
func (f Facet) Score() float64 {
	if f.Coverage == 0 {
		return 0
	}
	sharing := 1 - float64(f.Distinct)/float64(f.Coverage+1)
	return float64(f.Coverage) * sharing
}

// Options controls summarization.
type Options struct {
	// MaxValues truncates each facet's displayed values (0 = no limit);
	// Facet.Distinct still reports the full count (the interface's "..."
	// affordance, §3.2).
	MaxValues int
	// MinCount drops values occurring fewer times (0 or 1 keeps all).
	MinCount int
	// ByCount orders values by descending count (the Figure 2 overview);
	// default is alphabetical by label ("sorted in an alphabetical order to
	// enable users to search for a particular suggestion", §4.1).
	ByCount bool
	// IncludeUnshared keeps facets where every value is distinct (normally
	// useless for refinement and skipped).
	IncludeUnshared bool
}

// Summarize computes facets for every navigation property occurring in the
// collection. Facets are ordered: preferred (annotated) facets first, then
// by descending Score, ties alphabetical.
func Summarize(g *rdf.Graph, sch *schema.Store, items []rdf.IRI, opts Options) []Facet {
	type agg struct {
		counts   map[string]int
		terms    map[string]rdf.Term
		coverage int
	}
	aggs := make(map[rdf.IRI]*agg)

	for _, it := range items {
		for _, p := range g.PredicatesOf(it) {
			if sch.Hidden(p) {
				continue
			}
			values := g.Objects(it, p)
			if len(values) == 0 {
				continue
			}
			a := aggs[p]
			if a == nil {
				a = &agg{counts: make(map[string]int), terms: make(map[string]rdf.Term)}
				aggs[p] = a
			}
			a.coverage++
			for _, v := range values {
				k := v.Key()
				a.counts[k]++
				a.terms[k] = v
			}
		}
	}

	facets := make([]Facet, 0, len(aggs))
	for p, a := range aggs {
		f := Facet{
			Prop:      p,
			Label:     sch.Label(p),
			Labeled:   sch.HasLabel(p),
			ValueType: sch.ValueType(p),
			Distinct:  len(a.counts),
			Coverage:  a.coverage,
			Preferred: sch.IsFacet(p),
		}
		if p == rdf.Type {
			// System vocabulary always displays readably, even on datasets
			// that otherwise show raw identifiers (Figure 7).
			f.Label, f.Labeled = "type", true
		}
		shared := false
		for _, c := range a.counts {
			if c >= 2 {
				shared = true
				break
			}
		}
		if !shared && !opts.IncludeUnshared && !f.Preferred {
			continue
		}
		for k, c := range a.counts {
			if opts.MinCount > 1 && c < opts.MinCount {
				continue
			}
			term := a.terms[k]
			f.Values = append(f.Values, Value{Term: term, Label: g.TermLabel(term), Count: c})
		}
		sortValues(f.Values, opts.ByCount)
		if opts.MaxValues > 0 && len(f.Values) > opts.MaxValues {
			f.Values = f.Values[:opts.MaxValues]
		}
		facets = append(facets, f)
	}

	sort.Slice(facets, func(i, j int) bool {
		if facets[i].Preferred != facets[j].Preferred {
			return facets[i].Preferred
		}
		si, sj := facets[i].Score(), facets[j].Score()
		if si != sj {
			return si > sj
		}
		return facets[i].Label < facets[j].Label
	})
	return facets
}

func sortValues(vs []Value, byCount bool) {
	sort.Slice(vs, func(i, j int) bool {
		if byCount && vs[i].Count != vs[j].Count {
			return vs[i].Count > vs[j].Count
		}
		if vs[i].Label != vs[j].Label {
			return vs[i].Label < vs[j].Label
		}
		return vs[i].Term.Key() < vs[j].Term.Key()
	})
}

// Histogram is a bucketed numeric summary for a range widget: Figure 5's
// "hatch marks to represent documents thus showing a form of query
// preview".
type Histogram struct {
	Prop     rdf.IRI
	Min, Max float64
	Buckets  []int
	// Count is the number of items contributing a value.
	Count int
}

// NumericHistogram summarizes prop's numeric values over the collection in
// nbuckets equal-width buckets. Items without a parseable numeric value are
// skipped; ok is false when fewer than two items contribute (no range to
// select).
func NumericHistogram(g *rdf.Graph, items []rdf.IRI, prop rdf.IRI, nbuckets int) (Histogram, bool) {
	if nbuckets <= 0 {
		nbuckets = 10
	}
	var vals []float64
	for _, it := range items {
		for _, o := range g.Objects(it, prop) {
			lit, ok := o.(rdf.Literal)
			if !ok {
				continue
			}
			if f, ok := lit.Float(); ok {
				vals = append(vals, f)
				break // one value per item in the preview
			}
		}
	}
	if len(vals) < 2 {
		return Histogram{Prop: prop}, false
	}
	h := Histogram{Prop: prop, Min: vals[0], Max: vals[0], Buckets: make([]int, nbuckets), Count: len(vals)}
	for _, v := range vals {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	if h.Max == h.Min {
		h.Buckets[0] = len(vals)
		return h, true
	}
	for _, v := range vals {
		b := int(float64(nbuckets) * (v - h.Min) / (h.Max - h.Min))
		if b == nbuckets {
			b--
		}
		h.Buckets[b]++
	}
	return h, true
}

// Outliers returns values more than k standard deviations from the mean of
// prop over the collection (how the Figure 8 walkthrough "clearly shows one
// state (Alaska) having a much larger area than the rest"). Items without
// numeric values are skipped.
func Outliers(g *rdf.Graph, items []rdf.IRI, prop rdf.IRI, k float64) []rdf.IRI {
	type pair struct {
		item rdf.IRI
		v    float64
	}
	var pairs []pair
	var sum float64
	for _, it := range items {
		for _, o := range g.Objects(it, prop) {
			lit, ok := o.(rdf.Literal)
			if !ok {
				continue
			}
			if f, ok := lit.Float(); ok {
				pairs = append(pairs, pair{it, f})
				sum += f
				break
			}
		}
	}
	if len(pairs) < 3 {
		return nil
	}
	mean := sum / float64(len(pairs))
	var varsum float64
	for _, p := range pairs {
		d := p.v - mean
		varsum += d * d
	}
	variance := varsum / float64(len(pairs))
	if variance == 0 {
		return nil
	}
	std := math.Sqrt(variance)
	var out []rdf.IRI
	for _, p := range pairs {
		if math.Abs(p.v-mean) > k*std {
			out = append(out, p.item)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

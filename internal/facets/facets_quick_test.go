package facets

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// Property: for random graphs, every facet's invariants hold — coverage
// never exceeds the collection size, value counts never exceed coverage...
// (multi-valued attributes can push a value's count above coverage only if
// one item repeats a value, which the graph's set semantics forbids), and
// Distinct is at least the number of displayed values.
func TestQuickSummarizeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		sch := schema.NewStore(g)
		var items []rdf.IRI
		n := rng.Intn(20) + 2
		for i := 0; i < n; i++ {
			it := rdf.IRI(fmt.Sprintf("%si%d", ex, i))
			items = append(items, it)
			for j := 0; j < rng.Intn(4); j++ {
				p := rdf.IRI(fmt.Sprintf("%sp%d", ex, rng.Intn(3)))
				if rng.Intn(2) == 0 {
					g.Add(it, p, rdf.IRI(fmt.Sprintf("%sv%d", ex, rng.Intn(5))))
				} else {
					g.Add(it, p, rdf.NewString(fmt.Sprintf("s%d", rng.Intn(5))))
				}
			}
		}
		for _, f := range Summarize(g, sch, items, Options{IncludeUnshared: true}) {
			if f.Coverage > len(items) || f.Coverage == 0 {
				return false
			}
			if f.Distinct < len(f.Values) {
				return false
			}
			for _, v := range f.Values {
				if v.Count < 1 || v.Count > f.Coverage {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: MaxValues truncation never changes Distinct or ordering of the
// retained prefix.
func TestQuickSummarizeTruncationStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		sch := schema.NewStore(g)
		var items []rdf.IRI
		for i := 0; i < 12; i++ {
			it := rdf.IRI(fmt.Sprintf("%si%d", ex, i))
			items = append(items, it)
			g.Add(it, rdf.IRI(ex+"p"), rdf.IRI(fmt.Sprintf("%sv%d", ex, rng.Intn(6))))
		}
		full := Summarize(g, sch, items, Options{IncludeUnshared: true})
		trunc := Summarize(g, sch, items, Options{IncludeUnshared: true, MaxValues: 2})
		if len(full) != len(trunc) {
			return false
		}
		for i := range full {
			if full[i].Distinct != trunc[i].Distinct {
				return false
			}
			for j := range trunc[i].Values {
				if trunc[i].Values[j] != full[i].Values[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package facets

import (
	"fmt"
	"reflect"
	"testing"

	"magnet/internal/par"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// bigFixture builds a graph wide enough (many predicates, many values)
// that parallel summarization actually chunks.
func bigFixture() (*rdf.Graph, *schema.Store, []rdf.IRI) {
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	var items []rdf.IRI
	for i := 0; i < 200; i++ {
		it := rdf.IRI(fmt.Sprintf("%sitem/%03d", ex, i))
		items = append(items, it)
		g.Add(it, rdf.Type, rdf.IRI(ex+"Thing"))
		for p := 0; p < 30; p++ {
			prop := rdf.IRI(fmt.Sprintf("%sprop/%02d", ex, p))
			// Value cardinality varies per property: some shared heavily,
			// some nearly distinct, some absent for most items.
			switch {
			case p%5 == 4 && i%7 != 0:
				// sparse property
			case p%3 == 0:
				g.Add(it, prop, rdf.IRI(fmt.Sprintf("%sval/%d", ex, i%4)))
			case p%3 == 1:
				g.Add(it, prop, rdf.NewString(fmt.Sprintf("v%d", i%(p+2))))
			default:
				g.Add(it, prop, rdf.NewInteger(int64(i%(p+5))))
			}
		}
	}
	return g, sch, items
}

// TestSummarizeSerialParallelEquivalence checks the full facet table —
// order, labels, values, counts, coverage — is identical at every pool
// width, for each Options shape the app uses.
func TestSummarizeSerialParallelEquivalence(t *testing.T) {
	g, sch, items := bigFixture()
	shapes := []Options{
		{},
		{ByCount: true, MaxValues: 10},
		{MinCount: 2, IncludeUnshared: true},
		{MaxValues: 3},
	}
	for si, base := range shapes {
		serial := Summarize(g, sch, items, base)
		if len(serial) == 0 {
			t.Fatalf("shape %d: empty serial table", si)
		}
		for _, width := range []int{1, 2, 4, 8} {
			pool := par.New(width)
			opts := base
			opts.Pool = pool
			got := Summarize(g, sch, items, opts)
			pool.Close()
			if !reflect.DeepEqual(got, serial) {
				t.Fatalf("shape %d width %d: facet tables differ\n got %+v\nwant %+v", si, width, got, serial)
			}
		}
	}
}

// TestSummarizeParallelSmallCollections checks the sharded path on the
// degenerate shapes: empty collection, single item, items absent from the
// graph.
func TestSummarizeParallelSmallCollections(t *testing.T) {
	g, sch, items := fixture()
	pool := par.New(4)
	defer pool.Close()
	cases := [][]rdf.IRI{
		nil,
		{},
		{items[0]},
		{rdf.IRI(ex + "missing")},
		items,
	}
	for ci, coll := range cases {
		serial := Summarize(g, sch, coll, Options{ByCount: true})
		got := Summarize(g, sch, coll, Options{ByCount: true, Pool: pool})
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("case %d: differ\n got %+v\nwant %+v", ci, got, serial)
		}
	}
}

package facets

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"magnet/internal/ids"
	"magnet/internal/itemset"
	"magnet/internal/par"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// randomUniverse builds a random graph with schema annotations and returns
// the collection both as IRIs (unsharded entry) and as a dense ID set.
func randomUniverse(rng *rand.Rand) (*rdf.Graph, *schema.Store, []rdf.IRI, itemset.Set) {
	g := rdf.NewGraph()
	n := rng.Intn(60) + 2
	var items []rdf.IRI
	for i := 0; i < n; i++ {
		it := rdf.IRI(fmt.Sprintf("%si%d", ex, i))
		items = append(items, it)
		g.Add(it, rdf.Type, rdf.IRI(fmt.Sprintf("%sT%d", ex, rng.Intn(2))))
		for j := 0; j < rng.Intn(5); j++ {
			p := rdf.IRI(fmt.Sprintf("%sp%d", ex, rng.Intn(4)))
			if rng.Intn(2) == 0 {
				g.Add(it, p, rdf.IRI(fmt.Sprintf("%sv%d", ex, rng.Intn(6))))
			} else {
				g.Add(it, p, rdf.NewString(fmt.Sprintf("s%d", rng.Intn(6))))
			}
		}
	}
	// Annotate after the data so the schema sees every property: one
	// preferred facet, one hidden property, one labeled.
	sch := schema.NewStore(g)
	sch.SetFacet(rdf.IRI(ex + "p0"))
	sch.SetHidden(rdf.IRI(ex + "p1"))
	sch.SetLabel(rdf.IRI(ex+"p2"), "Pets")
	collIDs := make([]uint32, 0, len(items))
	for _, it := range items {
		if id, ok := g.SubjectID(it); ok {
			collIDs = append(collIDs, id)
		}
	}
	return g, sch, items, itemset.FromUnsorted(collIDs)
}

// TestSummarizeShardsEquivalence: shard-merge of per-shard facet counts is
// byte-identical to the unsharded Summarize on random universes, at every
// shard count, for every display option combination, serial and pooled.
func TestSummarizeShardsEquivalence(t *testing.T) {
	pool := par.New(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(17))
	ctx := context.Background()
	optsList := []Options{
		{},
		{ByCount: true},
		{MaxValues: 3, ByCount: true},
		{MinCount: 2},
		{IncludeUnshared: true},
		{MaxValues: 2, MinCount: 2, ByCount: true, IncludeUnshared: true},
	}
	for trial := 0; trial < 40; trial++ {
		g, sch, items, coll := randomUniverse(rng)
		for _, baseOpts := range optsList {
			want := Summarize(g, sch, items, baseOpts)
			for _, n := range []int{1, 2, 4, 7} {
				shards := coll.Partition(n, func(id uint32) int { return ids.Shard(id, n) })
				for _, p := range []*par.Pool{nil, pool} {
					opts := baseOpts
					opts.Pool = p
					got := SummarizeShards(ctx, g, sch, shards, opts)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d shards=%d pool=%v opts=%+v: sharded facets diverged\ngot:  %+v\nwant: %+v",
							trial, n, p.Width(), baseOpts, got, want)
					}
				}
			}
		}
	}
}

// TestSummarizeShardsEmpty: an empty partition yields an empty table, like
// Summarize over no items.
func TestSummarizeShardsEmpty(t *testing.T) {
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	shards := itemset.Set{}.Partition(4, func(id uint32) int { return ids.Shard(id, 4) })
	if got := SummarizeShards(context.Background(), g, sch, shards, Options{}); len(got) != 0 {
		t.Fatalf("empty partition produced %d facets", len(got))
	}
}

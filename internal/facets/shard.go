package facets

import (
	"context"
	"errors"
	"sort"
	"time"

	"magnet/internal/itemset"
	"magnet/internal/obs"
	"magnet/internal/par"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// Sharded facet summarization: the collection arrives already partitioned
// into disjoint shard subsets (the partition the sharded query evaluator
// returns), each shard aggregates its slice independently on the pool, and
// the per-shard tables are merged by per-attribute count reduction. The
// merge is exact because shard collections are disjoint: a value's count
// is |subjects(v) ∩ coll| = Σ_s |subjects(v) ∩ coll_s| and coverage sums
// the same way, so every derived quantity (distinct, shared, Score) is
// recomputed from exact totals. All display shaping — MinCount and
// unshared filtering, value ordering, MaxValues truncation, the final
// facet order — happens after the merge, on the same helpers the
// unsharded path uses, so the output is byte-identical at any shard count.

var (
	summarizeShardedCount = obs.NewCounter("facets.summarize.sharded.count")
	summarizeShardedNS    = obs.NewHistogram("facets.summarize.sharded.ns")
)

// rawOptions is the per-shard scatter configuration: no truncation, no
// count floor, unshared kept — every drop decision needs merged totals.
var rawOptions = Options{IncludeUnshared: true}

// SummarizeShards computes the facet table of the collection whose
// disjoint partition is shards, scattering one aggregation per shard on
// opts.Pool and gathering with MergeShards. Output is byte-identical to
// Summarize over the union. On context cancellation it falls back to one
// serial unsharded pass so the table is never partial.
func SummarizeShards(ctx context.Context, g *rdf.Graph, sch *schema.Store, shards []itemset.Set, opts Options) []Facet {
	ctx, sp := obs.StartSpan(ctx, "facets.summarize.sharded")
	sp.SetInt("shards", len(shards))
	start := time.Now()
	parts := make([][]Facet, len(shards))
	err := par.ForN(ctx, opts.Pool, len(shards), func(i int) {
		parts[i] = summarizeSet(ctx, g, sch, shards[i], rawOptions)
	})
	var facets []Facet
	if err != nil {
		var pe *par.PanicError
		if errors.As(err, &pe) {
			panic(pe)
		}
		serial := opts
		serial.Pool = nil
		facets = summarizeSet(ctx, g, sch, itemset.MergeDisjoint(shards), serial)
	} else {
		facets = MergeShards(parts, opts)
	}
	summarizeShardedCount.Inc()
	summarizeShardedNS.ObserveSince(start)
	summarizeCount.Inc()
	summarizeNS.ObserveSince(start)
	summarizeFacets.Observe(int64(len(facets)))
	sp.SetInt("facets", len(facets))
	sp.End()
	return facets
}

// MergeShards reduces per-shard raw facet tables (as produced with
// rawOptions over disjoint collections) into the final display table under
// opts. Exported for the load generator's offline verification; most
// callers want SummarizeShards.
func MergeShards(parts [][]Facet, opts Options) []Facet {
	type acc struct {
		f      Facet
		order  []string // value keys in first-seen order
		counts map[string]*Value
	}
	accs := make(map[rdf.IRI]*acc)
	var props []rdf.IRI // first-seen property order (re-sorted below)
	for _, fs := range parts {
		for _, f := range fs {
			a := accs[f.Prop]
			if a == nil {
				a = &acc{
					f: Facet{
						Prop:      f.Prop,
						Label:     f.Label,
						Labeled:   f.Labeled,
						ValueType: f.ValueType,
						Preferred: f.Preferred,
					},
					counts: make(map[string]*Value),
				}
				accs[f.Prop] = a
				props = append(props, f.Prop)
			}
			a.f.Coverage += f.Coverage
			for _, v := range f.Values {
				key := v.Term.Key()
				if mv := a.counts[key]; mv != nil {
					mv.Count += v.Count
				} else {
					a.counts[key] = &Value{Term: v.Term, Label: v.Label, Count: v.Count}
					a.order = append(a.order, key)
				}
			}
		}
	}
	// Canonical pre-sort sequence: the unsharded path feeds sortFacets in
	// property order (Predicates() is sorted), so the merged path must too
	// — first-seen order here depends on per-shard display sorting.
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	facets := make([]Facet, 0, len(props))
	for _, p := range props {
		a := accs[p]
		shared := false
		// Built with append from nil, like summarizeProp, so a fully
		// filtered facet carries a nil Values on both paths.
		var values []Value
		for _, key := range a.order {
			v := *a.counts[key]
			if v.Count >= 2 {
				shared = true
			}
			if opts.MinCount > 1 && v.Count < opts.MinCount {
				continue
			}
			values = append(values, v)
		}
		a.f.Distinct = len(a.order)
		a.f.Values = values
		if a.f.Coverage == 0 {
			continue
		}
		if !shared && !opts.IncludeUnshared && !a.f.Preferred {
			continue
		}
		sortValues(a.f.Values, opts.ByCount)
		if opts.MaxValues > 0 && len(a.f.Values) > opts.MaxValues {
			a.f.Values = a.f.Values[:opts.MaxValues]
		}
		facets = append(facets, a.f)
	}
	sortFacets(facets)
	return facets
}

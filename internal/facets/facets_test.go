package facets

import (
	"reflect"
	"testing"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

const ex = "http://example.org/"

var (
	pCuisine    = rdf.IRI(ex + "cuisine")
	pIngredient = rdf.IRI(ex + "ingredient")
	pTitle      = rdf.DCTitle
	pArea       = rdf.IRI(ex + "area")
)

func fixture() (*rdf.Graph, *schema.Store, []rdf.IRI) {
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	var items []rdf.IRI
	add := func(id, title string, cuisine rdf.IRI, area int64, ings ...rdf.IRI) {
		it := rdf.IRI(ex + id)
		items = append(items, it)
		g.Add(it, rdf.Type, rdf.IRI(ex+"Recipe"))
		g.Add(it, pTitle, rdf.NewString(title))
		g.Add(it, pCuisine, cuisine)
		g.Add(it, pArea, rdf.NewInteger(area))
		for _, ing := range ings {
			g.Add(it, pIngredient, ing)
		}
	}
	greek, mexican := rdf.IRI(ex+"Greek"), rdf.IRI(ex+"Mexican")
	feta, olive, bean := rdf.IRI(ex+"Feta"), rdf.IRI(ex+"Olive"), rdf.IRI(ex+"Bean")
	add("r1", "Salad One", greek, 10, feta, olive)
	add("r2", "Salad Two", greek, 20, feta)
	add("r3", "Dip", greek, 30, olive)
	add("r4", "Mole", mexican, 40, bean)
	add("r5", "Tacos", mexican, 5000, bean)
	return g, sch, items
}

func findFacet(fs []Facet, p rdf.IRI) *Facet {
	for i := range fs {
		if fs[i].Prop == p {
			return &fs[i]
		}
	}
	return nil
}

func TestSummarizeCountsAndCoverage(t *testing.T) {
	g, sch, items := fixture()
	fs := Summarize(g, sch, items, Options{})
	cu := findFacet(fs, pCuisine)
	if cu == nil {
		t.Fatal("cuisine facet missing")
	}
	if cu.Coverage != 5 || cu.Distinct != 2 {
		t.Errorf("cuisine coverage=%d distinct=%d", cu.Coverage, cu.Distinct)
	}
	// Values alphabetical by default: Greek, Mexican.
	if cu.Values[0].Label != "Greek" || cu.Values[0].Count != 3 {
		t.Errorf("values = %+v", cu.Values)
	}
	if cu.Values[1].Label != "Mexican" || cu.Values[1].Count != 2 {
		t.Errorf("values = %+v", cu.Values)
	}
}

func TestSummarizeSkipsAllDistinctProperties(t *testing.T) {
	g, sch, items := fixture()
	fs := Summarize(g, sch, items, Options{})
	if findFacet(fs, pTitle) != nil {
		t.Error("title values are all distinct; facet should be skipped")
	}
	fs = Summarize(g, sch, items, Options{IncludeUnshared: true})
	if findFacet(fs, pTitle) == nil {
		t.Error("IncludeUnshared should keep title")
	}
}

func TestSummarizeByCountOrder(t *testing.T) {
	g, sch, items := fixture()
	fs := Summarize(g, sch, items, Options{ByCount: true})
	cu := findFacet(fs, pCuisine)
	if cu.Values[0].Count < cu.Values[1].Count {
		t.Errorf("ByCount order broken: %+v", cu.Values)
	}
}

func TestSummarizeMaxValuesAndMinCount(t *testing.T) {
	g, sch, items := fixture()
	fs := Summarize(g, sch, items, Options{MaxValues: 1})
	ing := findFacet(fs, pIngredient)
	if ing == nil {
		t.Fatal("ingredient facet missing")
	}
	if len(ing.Values) != 1 {
		t.Errorf("MaxValues: got %d values", len(ing.Values))
	}
	if ing.Distinct != 3 {
		t.Errorf("Distinct should keep full count, got %d", ing.Distinct)
	}

	fs = Summarize(g, sch, items, Options{MinCount: 2})
	ing = findFacet(fs, pIngredient)
	for _, v := range ing.Values {
		if v.Count < 2 {
			t.Errorf("MinCount violated: %+v", v)
		}
	}
}

func TestSummarizeHidesAnnotatedHidden(t *testing.T) {
	g, sch, items := fixture()
	sch.SetHidden(pCuisine)
	fs := Summarize(g, sch, items, Options{})
	if findFacet(fs, pCuisine) != nil {
		t.Error("hidden property produced a facet")
	}
}

func TestSummarizePreferredFirst(t *testing.T) {
	g, sch, items := fixture()
	sch.SetFacet(pArea) // all-distinct, but preferred keeps it and ranks it first
	fs := Summarize(g, sch, items, Options{})
	if len(fs) == 0 || fs[0].Prop != pArea {
		t.Errorf("preferred facet not first: %v", fs)
	}
	if !fs[0].Preferred {
		t.Error("Preferred flag unset")
	}
}

func TestFacetLabeledFlag(t *testing.T) {
	g, sch, items := fixture()
	fs := Summarize(g, sch, items, Options{})
	cu := findFacet(fs, pCuisine)
	if cu.Labeled {
		t.Error("unannotated property should report Labeled=false (Figure 7)")
	}
	sch.SetLabel(pCuisine, "Cuisine")
	fs = Summarize(g, sch, items, Options{})
	cu = findFacet(fs, pCuisine)
	if !cu.Labeled || cu.Label != "Cuisine" {
		t.Errorf("labeled facet = %+v", cu)
	}
}

func TestNumericHistogram(t *testing.T) {
	g, _, items := fixture()
	h, ok := NumericHistogram(g, items, pArea, 5)
	if !ok {
		t.Fatal("histogram failed")
	}
	if h.Min != 10 || h.Max != 5000 || h.Count != 5 {
		t.Errorf("histogram = %+v", h)
	}
	total := 0
	for _, b := range h.Buckets {
		total += b
	}
	if total != 5 {
		t.Errorf("bucket total = %d", total)
	}
	// Max value lands in the last bucket.
	if h.Buckets[len(h.Buckets)-1] == 0 {
		t.Error("max value missing from last bucket")
	}
}

func TestNumericHistogramDegenerate(t *testing.T) {
	g := rdf.NewGraph()
	a, b := rdf.IRI(ex+"a"), rdf.IRI(ex+"b")
	p := rdf.IRI(ex + "n")
	g.Add(a, p, rdf.NewInteger(7))
	g.Add(b, p, rdf.NewInteger(7))
	h, ok := NumericHistogram(g, []rdf.IRI{a, b}, p, 4)
	if !ok || h.Buckets[0] != 2 {
		t.Errorf("degenerate histogram = %+v, %v", h, ok)
	}
	// One item only → not enough for a range.
	if _, ok := NumericHistogram(g, []rdf.IRI{a}, p, 4); ok {
		t.Error("single item should not produce a histogram")
	}
	// Non-numeric property.
	if _, ok := NumericHistogram(g, []rdf.IRI{a}, rdf.IRI(ex+"absent"), 4); ok {
		t.Error("absent property should not produce a histogram")
	}
}

func TestOutliersFindsAlaskaPattern(t *testing.T) {
	g, _, items := fixture()
	// r5's 5000 dwarfs the others — the Figure 8 Alaska pattern.
	out := Outliers(g, items, pArea, 1.5)
	if !reflect.DeepEqual(out, []rdf.IRI{rdf.IRI(ex + "r5")}) {
		t.Errorf("Outliers = %v", out)
	}
	// Uniform values: no outliers.
	if out := Outliers(g, items[:3], pCuisine, 1.5); out != nil {
		t.Errorf("non-numeric outliers = %v", out)
	}
}

func TestFacetScoreOrdering(t *testing.T) {
	shared := Facet{Coverage: 10, Distinct: 2}
	unshared := Facet{Coverage: 10, Distinct: 10}
	if shared.Score() <= unshared.Score() {
		t.Error("shared-value facets should outscore all-distinct ones")
	}
	if (Facet{}).Score() != 0 {
		t.Error("empty facet score should be 0")
	}
}

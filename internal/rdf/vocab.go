package rdf

// Well-known vocabulary namespaces.
const (
	NSRDF    = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	NSRDFS   = "http://www.w3.org/2000/01/rdf-schema#"
	NSDC     = "http://purl.org/dc/elements/1.1/"
	NSMagnet = "http://magnet.example.org/ns#"
)

// Core RDF/RDFS terms used throughout the system.
const (
	// Type is rdf:type, the property connecting an item to its class.
	Type = IRI(NSRDF + "type")
	// Label is rdfs:label, the human-readable name of a resource.
	Label = IRI(NSRDFS + "label")
	// Comment is rdfs:comment.
	Comment = IRI(NSRDFS + "comment")
	// SubClassOf is rdfs:subClassOf.
	SubClassOf = IRI(NSRDFS + "subClassOf")
	// DCTitle is dc:title, treated as a title field by the text analysts.
	DCTitle = IRI(NSDC + "title")
)

// Magnet vocabulary: schema annotations the paper describes (§5.1, §6.1)
// plus system bookkeeping. Annotations live in the same graph as the data,
// so "schema experts or advanced users" can add them incrementally.
const (
	// AnnLabel marks a property's display label (in addition to rdfs:label,
	// this lets annotation stores override imported labels).
	AnnLabel = IRI(NSMagnet + "label")
	// AnnValueType annotates a property's value type ("integer", "float",
	// "date", "text", "resource"), enabling range widgets and unit-circle
	// encoding (paper §5.4, Figure 8).
	AnnValueType = IRI(NSMagnet + "valueType")
	// AnnCompose marks a property as worth composing with a second level of
	// attributes in the vector space model (paper §5.1: "the author's field
	// of expertise"; §6.1: "body is an important property to compose").
	AnnCompose = IRI(NSMagnet + "compose")
	// AnnHidden marks a property that should not be shown as a navigation
	// suggestion even if algorithmically significant (paper §6.1, the
	// OCW/ArtSTOR non-human-readable attributes).
	AnnHidden = IRI(NSMagnet + "hidden")
	// AnnFacet marks a property as a preferred faceting axis.
	AnnFacet = IRI(NSMagnet + "facet")
	// AnnTreeShaped tells Magnet the data is a finite tree (XML import), so
	// composition chains may be followed to any depth (paper §6.2).
	AnnTreeShaped = IRI(NSMagnet + "treeShaped")
)

// PlainName returns the best human-readable name for a property IRI given
// only the IRI itself (no graph access): its local name with camelCase and
// underscores split into words.
func PlainName(p IRI) string {
	local := p.LocalName()
	out := make([]rune, 0, len(local)+4)
	var prev rune
	for i, r := range local {
		switch {
		case r == '_' || r == '-':
			out = append(out, ' ')
			prev = ' '
			continue
		case i > 0 && isUpper(r) && !isUpper(prev) && prev != ' ':
			out = append(out, ' ')
		}
		out = append(out, r)
		prev = r
	}
	return string(out)
}

func isUpper(r rune) bool { return r >= 'A' && r <= 'Z' }

package rdf

// Columnar graph backing: the serialized, immutable form of a Graph's
// indexes used by persistent segments (internal/segment). A Graph is
// either map-backed (NewGraph; mutable) or column-backed (FromColumns;
// read-only); every read accessor behaves identically over both, down to
// output ordering, so renderer output is byte-identical whichever backing
// serves a navigation session.
//
// Layout invariants (enforced by the builder, relied on by the view):
//
//   - The subject interner table preserves dense-ID order; a permutation
//     sorted by IRI serves lookups.
//   - The predicate table is sorted by IRI, so ascending predID is
//     lexical order.
//   - The object-term table is sorted by term key, so ascending termID is
//     key order. Terms are stored as canonical keys (Term.Key) and decoded
//     on demand with ParseTermKey — never eagerly, keeping open O(1).
//   - POS: per predicate, values ascend by term key; each value's subject
//     posting is sorted dense IDs (the same copy-on-write invariant the
//     map backing maintains).
//   - SPO: per subject, predicate IDs ascend; each (s,p)'s object term IDs
//     ascend.

import (
	"fmt"
	"sort"

	"magnet/internal/ids"
	"magnet/internal/itemset"
)

// GraphColumns is the flat columnar image of a graph. All slices may alias
// an mmapped segment file; the graph never mutates them.
type GraphColumns struct {
	// Subj is the subject interner table (dense-ID order) with its sorted
	// permutation.
	Subj ids.Columns
	// SubjLive is the sorted posting of live subject IDs (those with at
	// least one triple).
	SubjLive []uint32
	// Pred table: predicate IRIs sorted lexically; PredOff has P+1 entries.
	PredOff  []uint32
	PredBlob []byte
	// Term table: object-term canonical keys sorted; TermOff has T+1 entries.
	TermOff  []uint32
	TermBlob []byte
	// POS index. PosValStart (P+1) delimits each predicate's value run in
	// PosValTerm (term IDs). PosPostStart (V+1, V = len(PosValTerm))
	// delimits each value's subject posting in PosPost.
	PosValStart  []uint32
	PosValTerm   []uint32
	PosPostStart []uint32
	PosPost      []uint32
	// SPO index. SpoPredStart (S+1) delimits each subject's predicate run
	// in SpoPred (pred IDs). SpoObjStart (len(SpoPred)+1) delimits each
	// (s,p)'s object run in SpoObj (term IDs).
	SpoPredStart []uint32
	SpoPred      []uint32
	SpoObjStart  []uint32
	SpoObj       []uint32
	// Triples is the total triple count (Graph.Len).
	Triples uint64
}

// Columns snapshots the graph into its columnar image — the write side of
// FromColumns, used by magnet-build. Deterministic: every run over the
// same graph yields identical bytes.
func (g *Graph) Columns() GraphColumns {
	if g.seg != nil {
		return g.seg.c
	}
	g.mu.RLock()
	defer g.mu.RUnlock()

	var c GraphColumns
	c.Subj = g.in.Columns()
	c.SubjLive = append([]uint32(nil), g.subjIDs...)
	c.Triples = uint64(g.size)

	// Predicate table, sorted.
	preds := make([]IRI, 0, len(g.pos))
	for p := range g.pos {
		preds = append(preds, p)
	}
	sortIRIs(preds)
	predID := make(map[IRI]uint32, len(preds))
	c.PredOff = make([]uint32, 1, len(preds)+1)
	for i, p := range preds {
		predID[p] = uint32(i)
		c.PredBlob = append(c.PredBlob, p...)
		c.PredOff = append(c.PredOff, uint32(len(c.PredBlob)))
	}

	// Term table: every live object key, sorted.
	keySet := make(map[string]bool)
	for _, os := range g.pos {
		for k := range os {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	termID := make(map[string]uint32, len(keys))
	c.TermOff = make([]uint32, 1, len(keys)+1)
	for i, k := range keys {
		termID[k] = uint32(i)
		c.TermBlob = append(c.TermBlob, k...)
		c.TermOff = append(c.TermOff, uint32(len(c.TermBlob)))
	}

	// POS columns.
	c.PosValStart = make([]uint32, 1, len(preds)+1)
	c.PosPostStart = make([]uint32, 1, len(keySet)+1)
	for _, p := range preds {
		os := g.pos[p]
		vals := make([]string, 0, len(os))
		for k := range os {
			vals = append(vals, k)
		}
		sort.Strings(vals)
		for _, k := range vals {
			c.PosValTerm = append(c.PosValTerm, termID[k])
			c.PosPost = append(c.PosPost, os[k]...)
			c.PosPostStart = append(c.PosPostStart, uint32(len(c.PosPost)))
		}
		c.PosValStart = append(c.PosValStart, uint32(len(c.PosValTerm)))
	}

	// SPO columns, one row per interned subject (dead subjects get empty
	// rows so dense IDs keep indexing directly).
	n := g.in.Len()
	c.SpoPredStart = make([]uint32, 1, n+1)
	for id := 0; id < n; id++ {
		po := g.spo[g.in.Key(uint32(id))]
		sp := make([]IRI, 0, len(po))
		for p := range po {
			sp = append(sp, p)
		}
		sortIRIs(sp)
		for _, p := range sp {
			objs := po[p]
			oks := make([]string, 0, len(objs))
			for k := range objs {
				oks = append(oks, k)
			}
			sort.Strings(oks)
			c.SpoPred = append(c.SpoPred, predID[p])
			for _, k := range oks {
				c.SpoObj = append(c.SpoObj, termID[k])
			}
			c.SpoObjStart = append(c.SpoObjStart, uint32(len(c.SpoObj)))
		}
		c.SpoPredStart = append(c.SpoPredStart, uint32(len(c.SpoPred)))
	}
	// SpoObjStart needs a leading zero row even when there are no (s,p)
	// pairs at all.
	c.SpoObjStart = append([]uint32{0}, c.SpoObjStart...)
	return c
}

// FromColumns returns a read-only graph over a columnar image (typically
// slices into an mmapped segment). Construction is O(1) in the corpus
// size: only the column frames are validated; elements decode lazily per
// access, and corrupt offsets surface as absent data, never panics.
func FromColumns(c GraphColumns) (*Graph, error) {
	in, err := ids.FromColumns[IRI](c.Subj)
	if err != nil {
		return nil, fmt.Errorf("rdf: subject table: %w", err)
	}
	s := &segGraph{c: c}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &Graph{in: in, seg: s, size: int(c.Triples), subjIDs: c.SubjLive}, nil
}

// segGraph wraps the columns with the lookup helpers the Graph accessors
// branch to.
type segGraph struct {
	c GraphColumns
}

func (s *segGraph) validate() error {
	c := &s.c
	if len(c.PredOff) == 0 || len(c.TermOff) == 0 {
		return fmt.Errorf("rdf: columns missing predicate or term table")
	}
	p := len(c.PredOff) - 1
	if len(c.PosValStart) != p+1 {
		return fmt.Errorf("rdf: pos value starts (%d) disagree with predicate count (%d)", len(c.PosValStart), p)
	}
	if len(c.PosPostStart) != len(c.PosValTerm)+1 {
		return fmt.Errorf("rdf: pos posting starts (%d) disagree with value count (%d)", len(c.PosPostStart), len(c.PosValTerm))
	}
	n := len(c.Subj.Off) - 1
	if len(c.SpoPredStart) != n+1 {
		return fmt.Errorf("rdf: spo rows (%d) disagree with subject count (%d)", len(c.SpoPredStart), n)
	}
	if len(c.SpoObjStart) != len(c.SpoPred)+1 {
		return fmt.Errorf("rdf: spo object starts (%d) disagree with pair count (%d)", len(c.SpoObjStart), len(c.SpoPred))
	}
	return nil
}

// cutRange bounds [start[i], start[i+1]) against a backing length, tolerant
// of corrupt offsets (returns an empty range).
//
//magnet:hot
func cutRange(start []uint32, i, backing int) (int, int) {
	if i < 0 || i+1 >= len(start) {
		return 0, 0
	}
	lo, hi := int(start[i]), int(start[i+1])
	if lo > hi || hi > backing {
		return 0, 0
	}
	return lo, hi
}

// tableBytes returns entry i of an offset/blob string table (empty when
// out of range or corrupt).
//
//magnet:hot
func tableBytes(off []uint32, blob []byte, i int) []byte {
	lo, hi := cutRange(off, i, len(blob))
	return blob[lo:hi]
}

// findTable binary-searches a sorted offset/blob table for key, returning
// the entry index.
//
//magnet:hot
func findTable(off []uint32, blob []byte, key string) (int, bool) {
	n := len(off) - 1
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpSegBytes(tableBytes(off, blob, mid), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && cmpSegBytes(tableBytes(off, blob, lo), key) == 0 {
		return lo, true
	}
	return 0, false
}

// cmpSegBytes compares table bytes against a string key without allocating.
//
//magnet:hot
func cmpSegBytes(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

func (s *segGraph) predCount() int { return len(s.c.PredOff) - 1 }
func (s *segGraph) termCount() int { return len(s.c.TermOff) - 1 }

//magnet:hot
func (s *segGraph) findPred(p IRI) (int, bool) {
	return findTable(s.c.PredOff, s.c.PredBlob, string(p))
}

func (s *segGraph) predIRI(i int) IRI {
	return IRI(tableBytes(s.c.PredOff, s.c.PredBlob, i))
}

//magnet:hot
func (s *segGraph) findTermKey(key string) (int, bool) {
	return findTable(s.c.TermOff, s.c.TermBlob, key)
}

func (s *segGraph) termKeyBytes(i int) []byte {
	return tableBytes(s.c.TermOff, s.c.TermBlob, i)
}

// decodeTerm rehydrates term i from its canonical key; nil for corrupt
// entries (callers skip them).
func (s *segGraph) decodeTerm(i int) Term {
	t, ok := ParseTermKey(string(s.termKeyBytes(i)))
	if !ok {
		return nil
	}
	return t
}

// valRange returns predicate p's value index range in PosValTerm.
//
//magnet:hot
func (s *segGraph) valRange(p int) (int, int) {
	return cutRange(s.c.PosValStart, p, len(s.c.PosValTerm))
}

// posting returns value v's sorted subject posting.
//
//magnet:hot
func (s *segGraph) posting(v int) []uint32 {
	lo, hi := cutRange(s.c.PosPostStart, v, len(s.c.PosPost))
	return s.c.PosPost[lo:hi]
}

// findValue binary-searches predicate p's values for the term key.
//
//magnet:hot
func (s *segGraph) findValue(p int, key string) (int, bool) {
	lo, hi := s.valRange(p)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpSegBytes(s.termKeyBytes(int(s.c.PosValTerm[mid])), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	_, end := s.valRange(p)
	if lo < end && cmpSegBytes(s.termKeyBytes(int(s.c.PosValTerm[lo])), key) == 0 {
		return lo, true
	}
	return 0, false
}

// subjPreds returns subject sid's predicate-ID row.
//
//magnet:hot
func (s *segGraph) subjPreds(sid uint32) []uint32 {
	lo, hi := cutRange(s.c.SpoPredStart, int(sid), len(s.c.SpoPred))
	return s.c.SpoPred[lo:hi]
}

// pairObjs returns the term-ID row of the (s, p) pair at absolute pair
// index i.
//
//magnet:hot
func (s *segGraph) pairObjs(i int) []uint32 {
	lo, hi := cutRange(s.c.SpoObjStart, i, len(s.c.SpoObj))
	return s.c.SpoObj[lo:hi]
}

// findSubjPred locates predID within subject sid's row, returning the
// absolute pair index.
//
//magnet:hot
func (s *segGraph) findSubjPred(sid uint32, predID uint32) (int, bool) {
	base, end := cutRange(s.c.SpoPredStart, int(sid), len(s.c.SpoPred))
	row := s.c.SpoPred[base:end]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < predID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == predID {
		return base + lo, true
	}
	return 0, false
}

// --- view implementations of the Graph read API ---------------------------

func (s *segGraph) objects(g *Graph, sub, p IRI) []Term {
	sid, ok := g.in.Lookup(sub)
	if !ok {
		return nil
	}
	pid, ok := s.findPred(p)
	if !ok {
		return nil
	}
	pair, ok := s.findSubjPred(sid, uint32(pid))
	if !ok {
		return nil
	}
	objs := s.pairObjs(pair)
	out := make([]Term, 0, len(objs))
	for _, t := range objs {
		if term := s.decodeTerm(int(t)); term != nil {
			out = append(out, term)
		}
	}
	return out // ascending termID = ascending key, the map backing's order
}

func (s *segGraph) objectCount(g *Graph, sub, p IRI) int {
	sid, ok := g.in.Lookup(sub)
	if !ok {
		return 0
	}
	pid, ok := s.findPred(p)
	if !ok {
		return 0
	}
	pair, ok := s.findSubjPred(sid, uint32(pid))
	if !ok {
		return 0
	}
	return len(s.pairObjs(pair))
}

func (s *segGraph) has(g *Graph, sub, p IRI, o Term) bool {
	sid, ok := g.in.Lookup(sub)
	if !ok {
		return false
	}
	pid, ok := s.findPred(p)
	if !ok {
		return false
	}
	tid, ok := s.findTermKey(o.Key())
	if !ok {
		return false
	}
	pair, ok := s.findSubjPred(sid, uint32(pid))
	if !ok {
		return false
	}
	objs := s.pairObjs(pair)
	lo, hi := 0, len(objs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if objs[mid] < uint32(tid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(objs) && objs[lo] == uint32(tid)
}

func (s *segGraph) hasSubject(g *Graph, sub IRI) bool {
	sid, ok := g.in.Lookup(sub)
	return ok && len(s.subjPreds(sid)) > 0
}

func (s *segGraph) predicatesOf(g *Graph, sub IRI) []IRI {
	sid, ok := g.in.Lookup(sub)
	if !ok {
		return nil
	}
	row := s.subjPreds(sid)
	if len(row) == 0 {
		return nil
	}
	out := make([]IRI, 0, len(row))
	for _, pid := range row {
		out = append(out, s.predIRI(int(pid)))
	}
	return out // ascending predID = lexical order
}

func (s *segGraph) predicates() []IRI {
	n := s.predCount()
	out := make([]IRI, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.predIRI(i))
	}
	return out
}

// subjectIDSet is the segment fast path behind Graph.SubjectIDSet: two
// binary searches and a slice, allocation-free.
//
//magnet:hot
func (s *segGraph) subjectIDSet(p IRI, key string) itemset.Set {
	pid, ok := s.findPred(p)
	if !ok {
		return itemset.Set{}
	}
	v, ok := s.findValue(pid, key)
	if !ok {
		return itemset.Set{}
	}
	return itemset.FromSorted(s.posting(v))
}

func (s *segGraph) subjectIDsWithProperty(g *Graph, p IRI) itemset.Set {
	pid, ok := s.findPred(p)
	if !ok {
		return itemset.Set{}
	}
	lo, hi := s.valRange(pid)
	if lo == hi {
		return itemset.Set{}
	}
	b := itemset.NewBits(g.in.Len())
	for v := lo; v < hi; v++ {
		b.AddSlice(s.posting(v))
	}
	return b.Extract()
}

func (s *segGraph) forEachValuePosting(p IRI, f func(o Term, subjects itemset.Set) bool) {
	pid, ok := s.findPred(p)
	if !ok {
		return
	}
	lo, hi := s.valRange(pid)
	for v := lo; v < hi; v++ {
		term := s.decodeTerm(int(s.c.PosValTerm[v]))
		if term == nil {
			continue
		}
		if !f(term, itemset.FromSorted(s.posting(v))) {
			return
		}
	}
}

func (s *segGraph) objectsOf(p IRI) []Term {
	pid, ok := s.findPred(p)
	if !ok {
		return nil
	}
	lo, hi := s.valRange(pid)
	if lo == hi {
		return nil
	}
	out := make([]Term, 0, hi-lo)
	for v := lo; v < hi; v++ {
		if term := s.decodeTerm(int(s.c.PosValTerm[v])); term != nil {
			out = append(out, term)
		}
	}
	return out // ascending key order already
}

func (s *segGraph) subjectCount(p IRI, key string) int {
	pid, ok := s.findPred(p)
	if !ok {
		return 0
	}
	v, ok := s.findValue(pid, key)
	if !ok {
		return 0
	}
	return len(s.posting(v))
}

func (s *segGraph) allSubjects(g *Graph) []IRI {
	if len(s.c.SubjLive) == 0 {
		return nil
	}
	out := g.in.AppendKeys(make([]IRI, 0, len(s.c.SubjLive)), s.c.SubjLive)
	sortIRIs(out)
	return out
}

func (s *segGraph) statements(g *Graph, sub IRI) []Statement {
	sid, ok := g.in.Lookup(sub)
	if !ok {
		return nil
	}
	var out []Statement
	base, end := cutRange(s.c.SpoPredStart, int(sid), len(s.c.SpoPred))
	for pair := base; pair < end; pair++ {
		p := s.predIRI(int(s.c.SpoPred[pair]))
		for _, tid := range s.pairObjs(pair) {
			if term := s.decodeTerm(int(tid)); term != nil {
				out = append(out, Statement{sub, p, term})
			}
		}
	}
	sortStatements(out)
	return out
}

func (s *segGraph) forEach(g *Graph, f func(Statement) bool) bool {
	for _, sid := range s.c.SubjLive {
		sub := g.in.Key(sid)
		base, end := cutRange(s.c.SpoPredStart, int(sid), len(s.c.SpoPred))
		for pair := base; pair < end; pair++ {
			p := s.predIRI(int(s.c.SpoPred[pair]))
			for _, tid := range s.pairObjs(pair) {
				if term := s.decodeTerm(int(tid)); term != nil {
					if !f(Statement{sub, p, term}) {
						return false
					}
				}
			}
		}
	}
	return true
}

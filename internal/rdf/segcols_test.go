package rdf

import (
	"testing"
)

// segTestGraph builds a small mixed graph: typed items, literals, shared
// objects, a removed statement (leaving a dead interner row), and an
// orphan subject.
func segTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	add := func(s IRI, p IRI, o Term) {
		if !g.Add(s, p, o) {
			t.Fatalf("duplicate add %v %v %v", s, p, o)
		}
	}
	add("urn:a", Type, IRI("urn:Recipe"))
	add("urn:b", Type, IRI("urn:Recipe"))
	add("urn:a", "urn:cuisine", NewString("Greek"))
	add("urn:b", "urn:cuisine", NewString("Italian"))
	add("urn:a", "urn:ingredient", NewString("Parsley"))
	add("urn:b", "urn:ingredient", NewString("Parsley"))
	add("urn:a", "urn:servings", NewInteger(4))
	add("urn:c", "urn:label", NewString("orphan"))
	// Remove a statement so an interner row goes dead — the columns must
	// carry the gap and the rebuilt view must agree.
	add("urn:dead", "urn:label", NewString("doomed"))
	g.Remove("urn:dead", "urn:label", NewString("doomed"))
	return g
}

// TestGraphColumnsRoundTrip rebuilds the graph from its columns and checks
// every read API agrees with the original.
func TestGraphColumnsRoundTrip(t *testing.T) {
	g := segTestGraph(t)
	r, err := FromColumns(g.Columns())
	if err != nil {
		t.Fatalf("FromColumns: %v", err)
	}

	if r.Len() != g.Len() {
		t.Errorf("Len = %d, want %d", r.Len(), g.Len())
	}
	wantStmts := g.AllStatements()
	gotStmts := r.AllStatements()
	if len(gotStmts) != len(wantStmts) {
		t.Fatalf("AllStatements: %d statements, want %d", len(gotStmts), len(wantStmts))
	}
	for i := range wantStmts {
		if gotStmts[i].Key() != wantStmts[i].Key() {
			t.Fatalf("statement %d = %v, want %v", i, gotStmts[i], wantStmts[i])
		}
	}

	for _, s := range []IRI{"urn:a", "urn:b", "urn:c", "urn:dead", "urn:missing"} {
		if got, want := r.HasSubject(s), g.HasSubject(s); got != want {
			t.Errorf("HasSubject(%s) = %v, want %v", s, got, want)
		}
		gotPreds, wantPreds := r.PredicatesOf(s), g.PredicatesOf(s)
		if len(gotPreds) != len(wantPreds) {
			t.Errorf("PredicatesOf(%s) = %v, want %v", s, gotPreds, wantPreds)
			continue
		}
		for i := range wantPreds {
			if gotPreds[i] != wantPreds[i] {
				t.Errorf("PredicatesOf(%s)[%d] = %v, want %v", s, i, gotPreds[i], wantPreds[i])
			}
			gotObjs, wantObjs := r.Objects(s, wantPreds[i]), g.Objects(s, wantPreds[i])
			if len(gotObjs) != len(wantObjs) {
				t.Errorf("Objects(%s,%s) = %v, want %v", s, wantPreds[i], gotObjs, wantObjs)
				continue
			}
			for j := range wantObjs {
				if gotObjs[j].Key() != wantObjs[j].Key() {
					t.Errorf("Objects(%s,%s)[%d] = %v, want %v", s, wantPreds[i], j, gotObjs[j], wantObjs[j])
				}
			}
			if got, want := r.ObjectCount(s, wantPreds[i]), g.ObjectCount(s, wantPreds[i]); got != want {
				t.Errorf("ObjectCount(%s,%s) = %d, want %d", s, wantPreds[i], got, want)
			}
		}
	}

	// Reverse index: subjects carrying a property, value enumeration, and
	// posting iteration.
	for _, p := range []IRI{Type, "urn:cuisine", "urn:ingredient", "urn:nothing"} {
		got, want := r.SubjectIDsWithProperty(p), g.SubjectIDsWithProperty(p)
		if got.Len() != want.Len() {
			t.Errorf("SubjectIDsWithProperty(%s): %d ids, want %d", p, got.Len(), want.Len())
		}
		gotVals, wantVals := r.ObjectsOf(p), g.ObjectsOf(p)
		if len(gotVals) != len(wantVals) {
			t.Errorf("ObjectsOf(%s) = %v, want %v", p, gotVals, wantVals)
			continue
		}
		for i := range wantVals {
			if gotVals[i].Key() != wantVals[i].Key() {
				t.Errorf("ObjectsOf(%s)[%d] = %v, want %v", p, i, gotVals[i], wantVals[i])
			}
			gw, ww := r.SubjectIDSet(p, wantVals[i]), g.SubjectIDSet(p, wantVals[i])
			if gw.Len() != ww.Len() {
				t.Errorf("SubjectIDSet(%s,%v): %d ids, want %d", p, wantVals[i], gw.Len(), ww.Len())
			}
		}
	}

	gotSubs, wantSubs := r.AllSubjects(), g.AllSubjects()
	if len(gotSubs) != len(wantSubs) {
		t.Fatalf("AllSubjects: %d, want %d", len(gotSubs), len(wantSubs))
	}
	for i := range wantSubs {
		if gotSubs[i] != wantSubs[i] {
			t.Errorf("AllSubjects[%d] = %v, want %v", i, gotSubs[i], wantSubs[i])
		}
	}
	gotPs, wantPs := r.Predicates(), g.Predicates()
	if len(gotPs) != len(wantPs) {
		t.Fatalf("Predicates: %v, want %v", gotPs, wantPs)
	}
	for i := range wantPs {
		if gotPs[i] != wantPs[i] {
			t.Errorf("Predicates[%d] = %v, want %v", i, gotPs[i], wantPs[i])
		}
	}

	if !r.Has("urn:a", "urn:servings", NewInteger(4)) {
		t.Error("Has(a servings 4) = false")
	}
	if r.Has("urn:dead", "urn:label", NewString("doomed")) {
		t.Error("Has finds the removed statement")
	}
}

// TestGraphColumnsReadOnly: mutating a segment-backed graph must panic.
func TestGraphColumnsReadOnly(t *testing.T) {
	r, err := FromColumns(segTestGraph(t).Columns())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Add on a segment-backed graph did not panic")
		}
	}()
	r.Add("urn:new", "urn:p", NewString("v"))
}

// TestGraphColumnsEmpty: an empty graph round-trips.
func TestGraphColumnsEmpty(t *testing.T) {
	r, err := FromColumns(NewGraph().Columns())
	if err != nil {
		t.Fatalf("FromColumns(empty): %v", err)
	}
	if r.Len() != 0 || len(r.AllSubjects()) != 0 || len(r.AllStatements()) != 0 {
		t.Errorf("empty graph view not empty: len=%d", r.Len())
	}
}

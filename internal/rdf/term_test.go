package rdf

import (
	"testing"
	"testing/quick"
	"time"
)

func TestIRILocalName(t *testing.T) {
	tests := []struct {
		iri  IRI
		want string
	}{
		{IRI("http://example.org/ns#Recipe"), "Recipe"},
		{IRI("http://example.org/recipes/apple-pie"), "apple-pie"},
		{IRI("urn:isbn:12345"), "urn:isbn:12345"},
		{IRI("http://example.org/path/"), "http://example.org/path/"},
		{IRI(""), ""},
	}
	for _, tt := range tests {
		if got := tt.iri.LocalName(); got != tt.want {
			t.Errorf("LocalName(%q) = %q, want %q", tt.iri, got, tt.want)
		}
	}
}

func TestLiteralConstructorsRoundTrip(t *testing.T) {
	if v, ok := NewInteger(-42).Int(); !ok || v != -42 {
		t.Errorf("NewInteger(-42).Int() = %d, %v", v, ok)
	}
	if v, ok := NewFloat(3.5).Float(); !ok || v != 3.5 {
		t.Errorf("NewFloat(3.5).Float() = %g, %v", v, ok)
	}
	if v, ok := NewBool(true).Bool(); !ok || !v {
		t.Errorf("NewBool(true).Bool() = %v, %v", v, ok)
	}
	when := time.Date(2003, 7, 31, 12, 30, 0, 0, time.UTC)
	if v, ok := NewTime(when).Time(); !ok || !v.Equal(when) {
		t.Errorf("NewTime round trip = %v, %v", v, ok)
	}
	if v, ok := NewDate(when).Time(); !ok || v.Format("2006-01-02") != "2003-07-31" {
		t.Errorf("NewDate round trip = %v, %v", v, ok)
	}
}

func TestLiteralFloatFromTemporal(t *testing.T) {
	when := time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)
	f, ok := NewTime(when).Float()
	if !ok {
		t.Fatal("temporal literal should convert to float")
	}
	if int64(f) != when.Unix() {
		t.Errorf("Float() = %v, want %v", int64(f), when.Unix())
	}
}

func TestLiteralKindPredicates(t *testing.T) {
	tests := []struct {
		lit      Literal
		numeric  bool
		temporal bool
	}{
		{NewInteger(1), true, false},
		{NewFloat(1), true, false},
		{NewString("1"), false, false},
		{NewTime(time.Now()), false, true},
		{NewDate(time.Now()), false, true},
		{NewBool(false), false, false},
	}
	for _, tt := range tests {
		if got := tt.lit.IsNumeric(); got != tt.numeric {
			t.Errorf("%v.IsNumeric() = %v, want %v", tt.lit, got, tt.numeric)
		}
		if got := tt.lit.IsTemporal(); got != tt.temporal {
			t.Errorf("%v.IsTemporal() = %v, want %v", tt.lit, got, tt.temporal)
		}
	}
}

func TestTermKeysDistinguishKinds(t *testing.T) {
	// The integer literal "1", the plain string "1", and an IRI "1" must
	// all have distinct keys.
	keys := map[string]string{}
	terms := map[string]Term{
		"integer": NewInteger(1),
		"string":  NewString("1"),
		"iri":     IRI("1"),
		"blank":   Blank("1"),
		"lang":    NewLangString("1", "en"),
	}
	for name, tm := range terms {
		k := tm.Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision between %s and %s: %q", prev, name, k)
		}
		keys[k] = name
	}
}

func TestLiteralStringEscaping(t *testing.T) {
	tests := []struct {
		in   Literal
		want string
	}{
		{NewString(`plain`), `"plain"`},
		{NewString("a\"b"), `"a\"b"`},
		{NewString("a\\b"), `"a\\b"`},
		{NewString("a\nb"), `"a\nb"`},
		{NewString("tab\there"), `"tab\there"`},
		{NewLangString("hi", "en"), `"hi"@en`},
		{NewInteger(7), `"7"^^<http://www.w3.org/2001/XMLSchema#integer>`},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %s, want %s", got, tt.want)
		}
	}
}

func TestPlainName(t *testing.T) {
	tests := []struct {
		in   IRI
		want string
	}{
		{IRI(NSMagnet + "cookingMethod"), "cooking Method"},
		{IRI(NSMagnet + "cooking_method"), "cooking method"},
		{IRI(NSMagnet + "Cuisine"), "Cuisine"},
		{IRI(NSMagnet + "hasXMLPath"), "has XMLPath"},
	}
	for _, tt := range tests {
		if got := PlainName(tt.in); got != tt.want {
			t.Errorf("PlainName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestQuickLiteralIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, ok := NewInteger(v).Int()
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLiteralStringEscapeNeverPanicsAndQuotes(t *testing.T) {
	f := func(s string) bool {
		out := NewString(s).String()
		return len(out) >= 2 && out[0] == '"'
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package rdf

import "fmt"

// Statement is a single RDF triple. Subjects are restricted to IRIs (Magnet
// identifies every information object by IRI; blank subjects from imported
// data are skolemized by the N-Triples reader).
type Statement struct {
	Subject   IRI
	Predicate IRI
	Object    Term
}

// S is a convenience constructor for a statement.
func S(s, p IRI, o Term) Statement {
	return Statement{Subject: s, Predicate: p, Object: o}
}

// String returns the N-Triples line for the statement (without newline).
func (st Statement) String() string {
	return fmt.Sprintf("%s %s %s .", st.Subject, st.Predicate, st.Object)
}

// Key returns a canonical key uniquely identifying the triple.
func (st Statement) Key() string {
	return st.Subject.Key() + "\x00" + st.Predicate.Key() + "\x00" + st.Object.Key()
}

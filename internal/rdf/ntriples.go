package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a malformed line encountered while reading N-Triples.
type ParseError struct {
	Line int    // 1-based line number
	Text string // offending line
	Msg  string // what went wrong
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// ReadNTriples parses N-Triples from r into a new graph. Blank-node
// subjects and objects are skolemized into IRIs under the magnet namespace
// so the rest of the system only deals with IRI-identified items. Comment
// lines (#...) and blank lines are skipped.
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ReadNTriplesInto(g, r); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadNTriplesInto parses N-Triples from r into an existing graph.
func ReadNTriplesInto(g *Graph, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		st, err := parseTripleLine(line, lineNo)
		if err != nil {
			return err
		}
		g.Add(st.Subject, st.Predicate, st.Object)
	}
	return sc.Err()
}

func parseTripleLine(line string, lineNo int) (Statement, error) {
	p := &lineParser{s: line, line: lineNo}
	subj, err := p.term()
	if err != nil {
		return Statement{}, err
	}
	subjIRI, ok := asSubject(subj)
	if !ok {
		return Statement{}, p.errorf("subject must be an IRI or blank node")
	}
	pred, err := p.term()
	if err != nil {
		return Statement{}, err
	}
	predIRI, ok := pred.(IRI)
	if !ok {
		return Statement{}, p.errorf("predicate must be an IRI")
	}
	obj, err := p.term()
	if err != nil {
		return Statement{}, err
	}
	if b, isBlank := obj.(Blank); isBlank {
		obj = skolemize(b)
	}
	p.skipSpace()
	if !p.eat('.') {
		return Statement{}, p.errorf("expected terminating '.'")
	}
	return Statement{subjIRI, predIRI, obj}, nil
}

func asSubject(t Term) (IRI, bool) {
	switch v := t.(type) {
	case IRI:
		return v, true
	case Blank:
		return skolemize(v), true
	default:
		return "", false
	}
}

func skolemize(b Blank) IRI {
	return IRI(NSMagnet + "genid/" + string(b))
}

type lineParser struct {
	s    string
	pos  int
	line int
}

func (p *lineParser) errorf(format string, args ...any) error {
	return &ParseError{Line: p.line, Text: p.s, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) eat(c byte) bool {
	if p.pos < len(p.s) && p.s[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *lineParser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return nil, p.errorf("unexpected end of line")
	}
	switch p.s[p.pos] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return nil, p.errorf("unexpected character %q", p.s[p.pos])
	}
}

func (p *lineParser) iri() (Term, error) {
	end := strings.IndexByte(p.s[p.pos:], '>')
	if end < 0 {
		return nil, p.errorf("unterminated IRI")
	}
	iri := IRI(p.s[p.pos+1 : p.pos+end])
	if iri == "" {
		return nil, p.errorf("empty IRI")
	}
	p.pos += end + 1
	return iri, nil
}

func (p *lineParser) blank() (Term, error) {
	if !strings.HasPrefix(p.s[p.pos:], "_:") {
		return nil, p.errorf("malformed blank node")
	}
	start := p.pos + 2
	end := start
	for end < len(p.s) && isBlankLabelChar(p.s[end]) {
		end++
	}
	if end == start {
		return nil, p.errorf("empty blank node label")
	}
	b := Blank(p.s[start:end])
	p.pos = end
	return b, nil
}

// isBlankLabelChar restricts blank-node labels to a safe subset of the
// N-Triples BLANK_NODE_LABEL grammar, so skolemized IRIs always serialize
// cleanly.
func isBlankLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-'
}

func (p *lineParser) literal() (Term, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == '\\' {
			if p.pos+1 >= len(p.s) {
				return nil, p.errorf("dangling escape")
			}
			esc := p.s[p.pos+1]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(esc)
			case 'u', 'U':
				r, n, err := decodeUnicodeEscape(p.s[p.pos:])
				if err != nil {
					return nil, p.errorf("%v", err)
				}
				b.WriteRune(r)
				p.pos += n - 2
			default:
				return nil, p.errorf("unknown escape \\%c", esc)
			}
			p.pos += 2
			continue
		}
		if c == '"' {
			p.pos++
			lit := Literal{Lexical: b.String()}
			// Optional @lang or ^^<datatype>.
			if p.pos < len(p.s) && p.s[p.pos] == '@' {
				start := p.pos + 1
				end := start
				for end < len(p.s) && p.s[end] != ' ' && p.s[end] != '\t' {
					end++
				}
				lit.Lang = p.s[start:end]
				p.pos = end
			} else if strings.HasPrefix(p.s[p.pos:], "^^<") {
				p.pos += 2
				t, err := p.iri()
				if err != nil {
					return nil, err
				}
				lit.Datatype = t.(IRI)
			}
			return lit, nil
		}
		b.WriteByte(c)
		p.pos++
	}
	return nil, p.errorf("unterminated literal")
}

func decodeUnicodeEscape(s string) (rune, int, error) {
	// s begins with \u or \U.
	var width int
	switch s[1] {
	case 'u':
		width = 4
	case 'U':
		width = 8
	}
	if len(s) < 2+width {
		return 0, 0, fmt.Errorf("truncated unicode escape")
	}
	var r rune
	for i := 2; i < 2+width; i++ {
		c := s[i]
		var v rune
		switch {
		case c >= '0' && c <= '9':
			v = rune(c - '0')
		case c >= 'a' && c <= 'f':
			v = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v = rune(c-'A') + 10
		default:
			return 0, 0, fmt.Errorf("invalid hex digit %q in unicode escape", c)
		}
		r = r<<4 | v
	}
	return r, 2 + width, nil
}

// WriteNTriples serializes the graph to w in canonical (sorted) N-Triples.
func WriteNTriples(g *Graph, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, st := range g.AllStatements() {
		if _, err := bw.WriteString(st.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

package rdf

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadNTriplesBasic(t *testing.T) {
	src := `
# a comment
<http://example.org/r1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://example.org/Recipe> .
<http://example.org/r1> <http://purl.org/dc/elements/1.1/title> "Apple Cobbler Cake" .
<http://example.org/r1> <http://example.org/servings> "8"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://example.org/r1> <http://example.org/note> "say \"hi\"\nok"@en .
`
	g, err := ReadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	o, ok := g.Object(IRI("http://example.org/r1"), IRI("http://example.org/servings"))
	if !ok {
		t.Fatal("servings triple missing")
	}
	lit := o.(Literal)
	if v, _ := lit.Int(); v != 8 || lit.Datatype != XSDInteger {
		t.Errorf("servings = %v", lit)
	}
	note, _ := g.Object(IRI("http://example.org/r1"), IRI("http://example.org/note"))
	nl := note.(Literal)
	if nl.Lexical != "say \"hi\"\nok" || nl.Lang != "en" {
		t.Errorf("note = %#v", nl)
	}
}

func TestReadNTriplesSkolemizesBlanks(t *testing.T) {
	src := `_:b1 <http://example.org/p> _:b2 .`
	g, err := ReadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	subs := g.AllSubjects()
	if len(subs) != 1 || !strings.Contains(string(subs[0]), "genid/b1") {
		t.Errorf("subjects = %v, want skolemized b1", subs)
	}
	o, _ := g.Object(subs[0], IRI("http://example.org/p"))
	if iri, ok := o.(IRI); !ok || !strings.Contains(string(iri), "genid/b2") {
		t.Errorf("object = %v, want skolemized b2", o)
	}
}

func TestReadNTriplesUnicodeEscape(t *testing.T) {
	src := `<http://e/s> <http://e/p> "café" .`
	g, err := ReadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	o, _ := g.Object(IRI("http://e/s"), IRI("http://e/p"))
	if o.(Literal).Lexical != "café" {
		t.Errorf("lexical = %q", o.(Literal).Lexical)
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"missing dot", `<http://e/s> <http://e/p> "v"`},
		{"literal subject", `"v" <http://e/p> <http://e/o> .`},
		{"blank predicate", `<http://e/s> _:b <http://e/o> .`},
		{"unterminated iri", `<http://e/s <http://e/p> <http://e/o> .`},
		{"unterminated literal", `<http://e/s> <http://e/p> "v .`},
		{"dangling escape", `<http://e/s> <http://e/p> "v\" .`},
		{"truncated unicode", `<http://e/s> <http://e/p> "\u00" .`},
		{"garbage", `hello world .`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadNTriples(strings.NewReader(tt.src))
			if err == nil {
				t.Fatalf("expected parse error for %q", tt.src)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("error %v is not a *ParseError", err)
			} else if pe.Line != 1 {
				t.Errorf("line = %d, want 1", pe.Line)
			}
		})
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := testGraph()
	g.Add(IRI(ex+"r1"), IRI(ex+"note"), NewLangString("tab\there \"q\"", "en"))
	g.Add(IRI(ex+"r1"), IRI(ex+"servings"), NewInteger(8))

	var buf bytes.Buffer
	if err := WriteNTriples(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.AllStatements(), g2.AllStatements()
	if len(a) != len(b) {
		t.Fatalf("round trip lost triples: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Errorf("triple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: any plain-string literal survives a serialize/parse round trip.
func TestQuickLiteralRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// N-Triples is line-oriented; our escaper handles the common control
		// characters. Skip other control characters (vertical tab etc.),
		// which the paper's data never contains.
		for _, r := range s {
			if r < 0x20 && r != '\n' && r != '\r' && r != '\t' {
				return true
			}
		}
		g := NewGraph()
		g.Add(IRI(ex+"s"), IRI(ex+"p"), NewString(s))
		var buf bytes.Buffer
		if err := WriteNTriples(g, &buf); err != nil {
			return false
		}
		g2, err := ReadNTriples(&buf)
		if err != nil {
			return false
		}
		o, ok := g2.Object(IRI(ex+"s"), IRI(ex+"p"))
		return ok && o.(Literal).Lexical == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package rdf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadNTriples checks the parser never panics and that everything it
// accepts survives a serialize/re-parse round trip. The seed corpus covers
// each syntactic form plus known-tricky inputs; `go test` runs the seeds,
// `go test -fuzz=FuzzReadNTriples` explores further.
func FuzzReadNTriples(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n",
		"<http://e/s> <http://e/p> <http://e/o> .",
		`<http://e/s> <http://e/p> "plain lit" .`,
		`<http://e/s> <http://e/p> "typed"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`<http://e/s> <http://e/p> "tagged"@en .`,
		"_:b1 <http://e/p> _:b2 .",
		`<http://e/s> <http://e/p> "esc \" \\ \n \t é" .`,
		"<http://e/s> <http://e/p> \"unterminated",
		"<http://e/s> <http://e/p> .",
		"garbage line",
		`<http://e/s> <http://e/p> "\uD800" .`, // lone surrogate escape
		strings.Repeat(`<http://e/s> <http://e/p> "v" .`+"\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadNTriples(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteNTriples(g, &buf); err != nil {
			t.Fatalf("serialize accepted graph: %v", err)
		}
		g2, err := ReadNTriples(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput: %q", err, buf.String())
		}
		if g2.Len() != g.Len() {
			t.Fatalf("round trip %d → %d triples", g.Len(), g2.Len())
		}
	})
}

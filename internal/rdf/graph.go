package rdf

import (
	"sort"
	"sync"

	"magnet/internal/ids"
	"magnet/internal/itemset"
)

// Graph is an in-memory, concurrency-safe, indexed triple store. It
// maintains subject→predicate→object and predicate→object→subject indexes
// so that both forward navigation (attributes of an item) and reverse
// navigation (items with a given attribute value) are O(result).
//
// The graph owns the engine's subject interner: every subject is assigned a
// dense uint32 item ID on first insertion, and the reverse (pos) index
// stores sorted posting lists of those IDs. Hot layers (query, facets, vsm)
// consume the ID-plane accessors (SubjectIDSet, AllSubjectIDs,
// ForEachValuePosting) and rehydrate IRIs only at the render boundary;
// posting lists are copy-on-write, so a returned itemset.Set stays valid
// across later mutations.
//
// All IRI-level read accessors return freshly allocated, deterministically
// ordered slices so callers may retain and mutate them, and so navigation
// panes render identically run to run.
type Graph struct {
	mu sync.RWMutex

	// spo: subject → predicate → object key → object term.
	spo map[IRI]map[IRI]map[string]Term
	// pos: predicate → object key → sorted subject-ID posting list
	// (copy-on-write: slices are never mutated in place once published).
	//
	//magnet:frozen
	pos map[IRI]map[string][]uint32
	// terms interns object terms by key, for recovering a Term from an
	// index key.
	terms map[string]Term

	// in assigns dense item IDs to subjects, append-only; subjIDs is the
	// sorted copy-on-write posting of all live subjects (those with at
	// least one triple).
	in      *ids.Interner[IRI]
	subjIDs []uint32 //magnet:frozen

	size    int
	version uint64

	// seg, when non-nil, makes the graph a read-only view over a columnar
	// segment image: read accessors branch to it, the maps above stay nil,
	// and mutations panic. See segcols.go.
	seg *segGraph
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo:   make(map[IRI]map[IRI]map[string]Term),
		pos:   make(map[IRI]map[string][]uint32),
		terms: make(map[string]Term),
		in:    ids.NewInterner[IRI](),
	}
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.size
}

// mutable panics when the graph is a read-only segment view. Segment-backed
// graphs are compiled once by magnet-build; runtime mutation would silently
// diverge from the on-disk indexes.
func (g *Graph) mutable() {
	if g.seg != nil {
		panic("rdf: mutation of read-only segment-backed graph")
	}
}

// Add inserts the triple (s, p, o). It reports whether the triple was new.
func (g *Graph) Add(s, p IRI, o Term) bool {
	g.mutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addLocked(s, p, o)
}

// AddAll inserts every statement in sts, returning the number newly added.
func (g *Graph) AddAll(sts []Statement) int {
	g.mutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, st := range sts {
		if g.addLocked(st.Subject, st.Predicate, st.Object) {
			n++
		}
	}
	return n
}

func (g *Graph) addLocked(s, p IRI, o Term) bool {
	ok := o.Key()
	po := g.spo[s]
	if po == nil {
		po = make(map[IRI]map[string]Term)
		g.spo[s] = po
	}
	objs := po[p]
	if objs == nil {
		objs = make(map[string]Term)
		po[p] = objs
	}
	if _, dup := objs[ok]; dup {
		return false
	}
	objs[ok] = o

	sid := g.in.Intern(s)
	os := g.pos[p]
	if os == nil {
		os = make(map[string][]uint32)
		g.pos[p] = os
	}
	os[ok] = insertID(os[ok], sid)
	if len(po) == 1 && len(objs) == 1 {
		// First triple of s: it just became a live subject.
		g.subjIDs = insertID(g.subjIDs, sid)
	}

	if _, seen := g.terms[ok]; !seen {
		g.terms[ok] = o
	}
	g.size++
	g.version++
	return true
}

// insertID returns a sorted slice containing ids plus id. The input is
// never mutated (copy-on-write), so posting views handed out earlier stay
// immutable snapshots.
func insertID(ids []uint32, id uint32) []uint32 {
	i := searchU32(ids, id)
	if i < len(ids) && ids[i] == id {
		return ids
	}
	out := make([]uint32, len(ids)+1)
	copy(out, ids[:i])
	out[i] = id
	copy(out[i+1:], ids[i:])
	return out
}

// removeID returns a sorted slice containing ids minus id, copy-on-write.
func removeID(ids []uint32, id uint32) []uint32 {
	i := searchU32(ids, id)
	if i >= len(ids) || ids[i] != id {
		return ids
	}
	if len(ids) == 1 {
		return nil
	}
	out := make([]uint32, len(ids)-1)
	copy(out, ids[:i])
	copy(out[i:], ids[i+1:])
	return out
}

func searchU32(ids []uint32, id uint32) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Version returns a counter that changes on every successful mutation;
// caches keyed on it stay valid exactly while the graph is unchanged.
func (g *Graph) Version() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}

// Remove deletes the triple (s, p, o). It reports whether it was present.
func (g *Graph) Remove(s, p IRI, o Term) bool {
	g.mutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	ok := o.Key()
	objs := g.spo[s][p]
	if _, present := objs[ok]; !present {
		return false
	}
	delete(objs, ok)
	sid, _ := g.in.Lookup(s)
	if len(objs) == 0 {
		delete(g.spo[s], p)
		if len(g.spo[s]) == 0 {
			delete(g.spo, s)
			g.subjIDs = removeID(g.subjIDs, sid)
		}
	}
	subs := removeID(g.pos[p][ok], sid)
	if len(subs) == 0 {
		delete(g.pos[p], ok)
		if len(g.pos[p]) == 0 {
			delete(g.pos, p)
		}
	} else {
		g.pos[p][ok] = subs
	}
	g.size--
	g.version++
	return true
}

// Has reports whether the triple (s, p, o) is present.
func (g *Graph) Has(s, p IRI, o Term) bool {
	if g.seg != nil {
		return g.seg.has(g, s, p, o)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, present := g.spo[s][p][o.Key()]
	return present
}

// HasSubject reports whether any triple has subject s.
func (g *Graph) HasSubject(s IRI) bool {
	if g.seg != nil {
		return g.seg.hasSubject(g, s)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.spo[s]) > 0
}

// Objects returns all objects of triples (s, p, ·), sorted by key.
func (g *Graph) Objects(s, p IRI) []Term {
	if g.seg != nil {
		return g.seg.objects(g, s, p)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	objs := g.spo[s][p]
	if len(objs) == 0 {
		return nil
	}
	out := make([]Term, 0, len(objs))
	for _, o := range objs {
		out = append(out, o)
	}
	sortTerms(out)
	return out
}

// ForEachObject calls f for every object of triples (s, p, ·) until f
// returns false, without materializing the sorted value slice that
// Objects allocates. Iteration order is unspecified (callers needing
// determinism use Objects); it exists for order-insensitive per-item
// probes — the query engine's candidate-first Range checks. f runs with
// the graph read-locked and must not call back into mutating methods.
func (g *Graph) ForEachObject(s, p IRI, f func(Term) bool) {
	if g.seg != nil {
		for _, o := range g.seg.objects(g, s, p) {
			if !f(o) {
				return
			}
		}
		return
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, o := range g.spo[s][p] {
		if !f(o) {
			return
		}
	}
}

// Object returns one object of (s, p, ·) — the least by key — and whether
// any exists. Useful for functional properties such as labels.
func (g *Graph) Object(s, p IRI) (Term, bool) {
	objs := g.Objects(s, p)
	if len(objs) == 0 {
		return nil, false
	}
	return objs[0], true
}

// ObjectCount returns the number of objects of (s, p, ·) without
// materializing them (used for per-attribute tf normalization, §5.2).
func (g *Graph) ObjectCount(s, p IRI) int {
	if g.seg != nil {
		return g.seg.objectCount(g, s, p)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.spo[s][p])
}

// Subjects returns all subjects of triples (·, p, o), sorted.
func (g *Graph) Subjects(p IRI, o Term) []IRI {
	var subs []uint32
	if g.seg != nil {
		subs = g.seg.subjectIDSet(p, o.Key()).Slice()
	} else {
		g.mu.RLock()
		subs = g.pos[p][o.Key()]
		g.mu.RUnlock()
	}
	if len(subs) == 0 {
		return nil
	}
	out := g.in.AppendKeys(make([]IRI, 0, len(subs)), subs)
	sortIRIs(out)
	return out
}

// SubjectCount returns the number of subjects of (·, p, o) without
// materializing them; this is the document frequency of an attribute/value
// coordinate (§5.2 tf·idf).
func (g *Graph) SubjectCount(p IRI, o Term) int {
	if g.seg != nil {
		return g.seg.subjectCount(p, o.Key())
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.pos[p][o.Key()])
}

// PredicatesOf returns the distinct predicates on subject s, sorted.
func (g *Graph) PredicatesOf(s IRI) []IRI {
	if g.seg != nil {
		return g.seg.predicatesOf(g, s)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	po := g.spo[s]
	if len(po) == 0 {
		return nil
	}
	out := make([]IRI, 0, len(po))
	for p := range po {
		out = append(out, p)
	}
	sortIRIs(out)
	return out
}

// Predicates returns every distinct predicate in the graph, sorted.
func (g *Graph) Predicates() []IRI {
	if g.seg != nil {
		return g.seg.predicates()
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]IRI, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, p)
	}
	sortIRIs(out)
	return out
}

// AllSubjects returns every distinct subject in the graph, sorted.
func (g *Graph) AllSubjects() []IRI {
	if g.seg != nil {
		return g.seg.allSubjects(g)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]IRI, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, s)
	}
	sortIRIs(out)
	return out
}

// ObjectsOf returns the distinct object terms appearing with predicate p,
// sorted by key. This enumerates the value domain of an attribute (used to
// build facet histograms and range widgets).
func (g *Graph) ObjectsOf(p IRI) []Term {
	if g.seg != nil {
		return g.seg.objectsOf(p)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	os := g.pos[p]
	if len(os) == 0 {
		return nil
	}
	out := make([]Term, 0, len(os))
	for k := range os {
		out = append(out, g.terms[k])
	}
	sortTerms(out)
	return out
}

// SubjectsWithProperty returns the distinct subjects carrying any value of
// predicate p, sorted (the property's coverage set).
func (g *Graph) SubjectsWithProperty(p IRI) []IRI {
	set := g.SubjectIDsWithProperty(p)
	if set.IsEmpty() {
		return nil
	}
	out := g.in.AppendKeys(make([]IRI, 0, set.Len()), set.Slice())
	sortIRIs(out)
	return out
}

// --- ID plane -------------------------------------------------------------

// Interner exposes the graph-owned subject interner so sibling indexes
// (text, vector) can share the same dense ID space.
func (g *Graph) Interner() *ids.Interner[IRI] { return g.in }

// SubjectID returns the dense item ID of s and whether s has ever been
// interned. IDs are assigned on first Add and never reused.
func (g *Graph) SubjectID(s IRI) (uint32, bool) { return g.in.Lookup(s) }

// SubjectByID rehydrates a dense item ID back to its IRI.
func (g *Graph) SubjectByID(id uint32) IRI { return g.in.Key(id) }

// SubjectIDSet returns the posting list of (·, p, o) as a dense ID set —
// an immutable snapshot (postings are copy-on-write), shared with the
// index, so this is allocation-free.
//
//magnet:hot
func (g *Graph) SubjectIDSet(p IRI, o Term) itemset.Set {
	if g.seg != nil {
		return g.seg.subjectIDSet(p, o.Key())
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return itemset.FromSorted(g.pos[p][o.Key()])
}

// AllSubjectIDs returns the IDs of every live subject as an immutable
// snapshot, allocation-free.
//
//magnet:hot
func (g *Graph) AllSubjectIDs() itemset.Set {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return itemset.FromSorted(g.subjIDs)
}

// SubjectIDsWithProperty returns the IDs of subjects carrying any value of
// predicate p (the property's coverage set), unioned via bitmap.
func (g *Graph) SubjectIDsWithProperty(p IRI) itemset.Set {
	if g.seg != nil {
		return g.seg.subjectIDsWithProperty(g, p)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	os := g.pos[p]
	if len(os) == 0 {
		return itemset.Set{}
	}
	b := itemset.NewBits(g.in.Len())
	for _, subs := range os {
		b.AddSlice(subs)
	}
	return b.Extract()
}

// ForEachValuePosting calls f for every distinct value of predicate p with
// its subject posting list, in ascending object-key order, until f returns
// false. The posting sets are immutable snapshots; f runs without the
// graph lock held.
func (g *Graph) ForEachValuePosting(p IRI, f func(o Term, subjects itemset.Set) bool) {
	if g.seg != nil {
		g.seg.forEachValuePosting(p, f)
		return
	}
	g.mu.RLock()
	os := g.pos[p]
	type valuePosting struct {
		key  string // the term's serialized key — the pos map key, precomputed
		o    Term
		subs []uint32
	}
	vals := make([]valuePosting, 0, len(os))
	for k, subs := range os {
		vals = append(vals, valuePosting{k, g.terms[k], subs})
	}
	g.mu.RUnlock()
	// Sorting by the stored key avoids re-serializing every term O(n log n)
	// times in the comparator.
	sort.Slice(vals, func(i, j int) bool { return vals[i].key < vals[j].key })
	for _, v := range vals {
		if !f(v.o, itemset.FromSorted(v.subs)) {
			return
		}
	}
}

// SubjectsFromIDs rehydrates a slice of item IDs to IRIs, sorted lexically
// — the render-boundary conversion that keeps pane output byte-identical
// to the string-keyed engine (ID order is interning order, not lexical).
func (g *Graph) SubjectsFromIDs(ids []uint32) []IRI {
	if len(ids) == 0 {
		return nil
	}
	out := g.in.AppendKeys(make([]IRI, 0, len(ids)), ids)
	sortIRIs(out)
	return out
}

// Statements returns every triple with subject s, sorted.
func (g *Graph) Statements(s IRI) []Statement {
	if g.seg != nil {
		return g.seg.statements(g, s)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Statement
	for p, objs := range g.spo[s] {
		for _, o := range objs {
			out = append(out, Statement{s, p, o})
		}
	}
	sortStatements(out)
	return out
}

// AllStatements returns every triple in the graph, sorted. Intended for
// serialization and tests; large graphs should iterate with ForEach.
func (g *Graph) AllStatements() []Statement {
	if g.seg != nil {
		out := make([]Statement, 0, g.size)
		g.seg.forEach(g, func(st Statement) bool {
			out = append(out, st)
			return true
		})
		sortStatements(out)
		return out
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Statement, 0, g.size)
	for s, po := range g.spo {
		for p, objs := range po {
			for _, o := range objs {
				out = append(out, Statement{s, p, o})
			}
		}
	}
	sortStatements(out)
	return out
}

// ForEach calls f for every triple until f returns false. Iteration order
// is unspecified. The graph must not be mutated from within f.
func (g *Graph) ForEach(f func(Statement) bool) {
	if g.seg != nil {
		g.seg.forEach(g, f)
		return
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	for s, po := range g.spo {
		for p, objs := range po {
			for _, o := range objs {
				if !f(Statement{s, p, o}) {
					return
				}
			}
		}
	}
}

// SubjectsOfType returns all subjects with rdf:type t, sorted.
func (g *Graph) SubjectsOfType(t IRI) []IRI {
	return g.Subjects(Type, t)
}

// Types returns the rdf:type objects of s that are IRIs, sorted.
func (g *Graph) Types(s IRI) []IRI {
	objs := g.Objects(s, Type)
	out := make([]IRI, 0, len(objs))
	for _, o := range objs {
		if t, ok := o.(IRI); ok {
			out = append(out, t)
		}
	}
	return out
}

// Label returns the best display name for a resource: its magnet:label or
// rdfs:label if present, otherwise its humanized local name. When no label
// exists the raw identifier behaviour of the paper's Figure 7 is preserved
// by callers that pass rawIfUnlabeled.
func (g *Graph) Label(s IRI) string {
	for _, p := range []IRI{AnnLabel, Label, DCTitle} {
		if o, ok := g.Object(s, p); ok {
			if l, isLit := o.(Literal); isLit && l.Lexical != "" {
				return l.Lexical
			}
		}
	}
	return PlainName(s)
}

// HasLabel reports whether s carries an explicit label triple.
func (g *Graph) HasLabel(s IRI) bool {
	for _, p := range []IRI{AnnLabel, Label, DCTitle} {
		if _, ok := g.Object(s, p); ok {
			return true
		}
	}
	return false
}

// TermLabel returns the display form of any term: labels for IRIs, lexical
// forms for literals.
func (g *Graph) TermLabel(t Term) string {
	switch v := t.(type) {
	case IRI:
		return g.Label(v)
	case Literal:
		return v.Lexical
	default:
		return t.String()
	}
}

func sortIRIs(s []IRI) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func sortTerms(s []Term) {
	sort.Slice(s, func(i, j int) bool { return s[i].Key() < s[j].Key() })
}

func sortStatements(s []Statement) {
	sort.Slice(s, func(i, j int) bool { return s[i].Key() < s[j].Key() })
}

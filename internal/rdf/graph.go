package rdf

import (
	"sort"
	"sync"
)

// Graph is an in-memory, concurrency-safe, indexed triple store. It
// maintains subject→predicate→object and predicate→object→subject indexes
// so that both forward navigation (attributes of an item) and reverse
// navigation (items with a given attribute value) are O(result).
//
// All read accessors return freshly allocated, deterministically ordered
// slices so callers may retain and mutate them, and so navigation panes
// render identically run to run.
type Graph struct {
	mu sync.RWMutex

	// spo: subject → predicate → object key → object term.
	spo map[IRI]map[IRI]map[string]Term
	// pos: predicate → object key → subject set.
	pos map[IRI]map[string]map[IRI]struct{}
	// terms interns object terms by key, for recovering a Term from an
	// index key.
	terms map[string]Term

	size    int
	version uint64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo:   make(map[IRI]map[IRI]map[string]Term),
		pos:   make(map[IRI]map[string]map[IRI]struct{}),
		terms: make(map[string]Term),
	}
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.size
}

// Add inserts the triple (s, p, o). It reports whether the triple was new.
func (g *Graph) Add(s, p IRI, o Term) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addLocked(s, p, o)
}

// AddAll inserts every statement in sts, returning the number newly added.
func (g *Graph) AddAll(sts []Statement) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, st := range sts {
		if g.addLocked(st.Subject, st.Predicate, st.Object) {
			n++
		}
	}
	return n
}

func (g *Graph) addLocked(s, p IRI, o Term) bool {
	ok := o.Key()
	po := g.spo[s]
	if po == nil {
		po = make(map[IRI]map[string]Term)
		g.spo[s] = po
	}
	objs := po[p]
	if objs == nil {
		objs = make(map[string]Term)
		po[p] = objs
	}
	if _, dup := objs[ok]; dup {
		return false
	}
	objs[ok] = o

	os := g.pos[p]
	if os == nil {
		os = make(map[string]map[IRI]struct{})
		g.pos[p] = os
	}
	subs := os[ok]
	if subs == nil {
		subs = make(map[IRI]struct{})
		os[ok] = subs
	}
	subs[s] = struct{}{}

	if _, seen := g.terms[ok]; !seen {
		g.terms[ok] = o
	}
	g.size++
	g.version++
	return true
}

// Version returns a counter that changes on every successful mutation;
// caches keyed on it stay valid exactly while the graph is unchanged.
func (g *Graph) Version() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}

// Remove deletes the triple (s, p, o). It reports whether it was present.
func (g *Graph) Remove(s, p IRI, o Term) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	ok := o.Key()
	objs := g.spo[s][p]
	if _, present := objs[ok]; !present {
		return false
	}
	delete(objs, ok)
	if len(objs) == 0 {
		delete(g.spo[s], p)
		if len(g.spo[s]) == 0 {
			delete(g.spo, s)
		}
	}
	subs := g.pos[p][ok]
	delete(subs, s)
	if len(subs) == 0 {
		delete(g.pos[p], ok)
		if len(g.pos[p]) == 0 {
			delete(g.pos, p)
		}
	}
	g.size--
	g.version++
	return true
}

// Has reports whether the triple (s, p, o) is present.
func (g *Graph) Has(s, p IRI, o Term) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, present := g.spo[s][p][o.Key()]
	return present
}

// HasSubject reports whether any triple has subject s.
func (g *Graph) HasSubject(s IRI) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.spo[s]) > 0
}

// Objects returns all objects of triples (s, p, ·), sorted by key.
func (g *Graph) Objects(s, p IRI) []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	objs := g.spo[s][p]
	if len(objs) == 0 {
		return nil
	}
	out := make([]Term, 0, len(objs))
	for _, o := range objs {
		out = append(out, o)
	}
	sortTerms(out)
	return out
}

// Object returns one object of (s, p, ·) — the least by key — and whether
// any exists. Useful for functional properties such as labels.
func (g *Graph) Object(s, p IRI) (Term, bool) {
	objs := g.Objects(s, p)
	if len(objs) == 0 {
		return nil, false
	}
	return objs[0], true
}

// ObjectCount returns the number of objects of (s, p, ·) without
// materializing them (used for per-attribute tf normalization, §5.2).
func (g *Graph) ObjectCount(s, p IRI) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.spo[s][p])
}

// Subjects returns all subjects of triples (·, p, o), sorted.
func (g *Graph) Subjects(p IRI, o Term) []IRI {
	g.mu.RLock()
	defer g.mu.RUnlock()
	subs := g.pos[p][o.Key()]
	if len(subs) == 0 {
		return nil
	}
	out := make([]IRI, 0, len(subs))
	for s := range subs {
		out = append(out, s)
	}
	sortIRIs(out)
	return out
}

// SubjectCount returns the number of subjects of (·, p, o) without
// materializing them; this is the document frequency of an attribute/value
// coordinate (§5.2 tf·idf).
func (g *Graph) SubjectCount(p IRI, o Term) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.pos[p][o.Key()])
}

// PredicatesOf returns the distinct predicates on subject s, sorted.
func (g *Graph) PredicatesOf(s IRI) []IRI {
	g.mu.RLock()
	defer g.mu.RUnlock()
	po := g.spo[s]
	if len(po) == 0 {
		return nil
	}
	out := make([]IRI, 0, len(po))
	for p := range po {
		out = append(out, p)
	}
	sortIRIs(out)
	return out
}

// Predicates returns every distinct predicate in the graph, sorted.
func (g *Graph) Predicates() []IRI {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]IRI, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, p)
	}
	sortIRIs(out)
	return out
}

// AllSubjects returns every distinct subject in the graph, sorted.
func (g *Graph) AllSubjects() []IRI {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]IRI, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, s)
	}
	sortIRIs(out)
	return out
}

// ObjectsOf returns the distinct object terms appearing with predicate p,
// sorted by key. This enumerates the value domain of an attribute (used to
// build facet histograms and range widgets).
func (g *Graph) ObjectsOf(p IRI) []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	os := g.pos[p]
	if len(os) == 0 {
		return nil
	}
	out := make([]Term, 0, len(os))
	for k := range os {
		out = append(out, g.terms[k])
	}
	sortTerms(out)
	return out
}

// SubjectsWithProperty returns the distinct subjects carrying any value of
// predicate p, sorted (the property's coverage set).
func (g *Graph) SubjectsWithProperty(p IRI) []IRI {
	g.mu.RLock()
	set := make(map[IRI]struct{})
	for _, subs := range g.pos[p] {
		for s := range subs {
			set[s] = struct{}{}
		}
	}
	g.mu.RUnlock()
	out := make([]IRI, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortIRIs(out)
	return out
}

// Statements returns every triple with subject s, sorted.
func (g *Graph) Statements(s IRI) []Statement {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Statement
	for p, objs := range g.spo[s] {
		for _, o := range objs {
			out = append(out, Statement{s, p, o})
		}
	}
	sortStatements(out)
	return out
}

// AllStatements returns every triple in the graph, sorted. Intended for
// serialization and tests; large graphs should iterate with ForEach.
func (g *Graph) AllStatements() []Statement {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Statement, 0, g.size)
	for s, po := range g.spo {
		for p, objs := range po {
			for _, o := range objs {
				out = append(out, Statement{s, p, o})
			}
		}
	}
	sortStatements(out)
	return out
}

// ForEach calls f for every triple until f returns false. Iteration order
// is unspecified. The graph must not be mutated from within f.
func (g *Graph) ForEach(f func(Statement) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for s, po := range g.spo {
		for p, objs := range po {
			for _, o := range objs {
				if !f(Statement{s, p, o}) {
					return
				}
			}
		}
	}
}

// SubjectsOfType returns all subjects with rdf:type t, sorted.
func (g *Graph) SubjectsOfType(t IRI) []IRI {
	return g.Subjects(Type, t)
}

// Types returns the rdf:type objects of s that are IRIs, sorted.
func (g *Graph) Types(s IRI) []IRI {
	objs := g.Objects(s, Type)
	out := make([]IRI, 0, len(objs))
	for _, o := range objs {
		if t, ok := o.(IRI); ok {
			out = append(out, t)
		}
	}
	return out
}

// Label returns the best display name for a resource: its magnet:label or
// rdfs:label if present, otherwise its humanized local name. When no label
// exists the raw identifier behaviour of the paper's Figure 7 is preserved
// by callers that pass rawIfUnlabeled.
func (g *Graph) Label(s IRI) string {
	for _, p := range []IRI{AnnLabel, Label, DCTitle} {
		if o, ok := g.Object(s, p); ok {
			if l, isLit := o.(Literal); isLit && l.Lexical != "" {
				return l.Lexical
			}
		}
	}
	return PlainName(s)
}

// HasLabel reports whether s carries an explicit label triple.
func (g *Graph) HasLabel(s IRI) bool {
	for _, p := range []IRI{AnnLabel, Label, DCTitle} {
		if _, ok := g.Object(s, p); ok {
			return true
		}
	}
	return false
}

// TermLabel returns the display form of any term: labels for IRIs, lexical
// forms for literals.
func (g *Graph) TermLabel(t Term) string {
	switch v := t.(type) {
	case IRI:
		return g.Label(v)
	case Literal:
		return v.Lexical
	default:
		return t.String()
	}
}

func sortIRIs(s []IRI) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func sortTerms(s []Term) {
	sort.Slice(s, func(i, j int) bool { return s[i].Key() < s[j].Key() })
}

func sortStatements(s []Statement) {
	sort.Slice(s, func(i, j int) bool { return s[i].Key() < s[j].Key() })
}

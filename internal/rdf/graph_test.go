package rdf

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

const ex = "http://example.org/"

func testGraph() *Graph {
	g := NewGraph()
	g.Add(IRI(ex+"r1"), Type, IRI(ex+"Recipe"))
	g.Add(IRI(ex+"r1"), IRI(ex+"cuisine"), IRI(ex+"Greek"))
	g.Add(IRI(ex+"r1"), IRI(ex+"ingredient"), IRI(ex+"Parsley"))
	g.Add(IRI(ex+"r1"), IRI(ex+"ingredient"), IRI(ex+"Feta"))
	g.Add(IRI(ex+"r2"), Type, IRI(ex+"Recipe"))
	g.Add(IRI(ex+"r2"), IRI(ex+"cuisine"), IRI(ex+"Greek"))
	g.Add(IRI(ex+"r2"), IRI(ex+"ingredient"), IRI(ex+"Feta"))
	g.Add(IRI(ex+"r3"), Type, IRI(ex+"Recipe"))
	g.Add(IRI(ex+"r3"), IRI(ex+"cuisine"), IRI(ex+"Mexican"))
	return g
}

func TestGraphAddDuplicate(t *testing.T) {
	g := NewGraph()
	if !g.Add(IRI(ex+"a"), Type, IRI(ex+"T")) {
		t.Error("first Add should report new")
	}
	if g.Add(IRI(ex+"a"), Type, IRI(ex+"T")) {
		t.Error("duplicate Add should report existing")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
}

func TestGraphObjectsSorted(t *testing.T) {
	g := testGraph()
	objs := g.Objects(IRI(ex+"r1"), IRI(ex+"ingredient"))
	want := []Term{IRI(ex + "Feta"), IRI(ex + "Parsley")}
	if !reflect.DeepEqual(objs, want) {
		t.Errorf("Objects = %v, want %v", objs, want)
	}
}

func TestGraphSubjectsReverseIndex(t *testing.T) {
	g := testGraph()
	subs := g.Subjects(IRI(ex+"ingredient"), IRI(ex+"Feta"))
	want := []IRI{IRI(ex + "r1"), IRI(ex + "r2")}
	if !reflect.DeepEqual(subs, want) {
		t.Errorf("Subjects = %v, want %v", subs, want)
	}
	if n := g.SubjectCount(IRI(ex+"ingredient"), IRI(ex+"Feta")); n != 2 {
		t.Errorf("SubjectCount = %d, want 2", n)
	}
}

func TestGraphRemove(t *testing.T) {
	g := testGraph()
	n := g.Len()
	if !g.Remove(IRI(ex+"r1"), IRI(ex+"ingredient"), IRI(ex+"Feta")) {
		t.Fatal("Remove of present triple should return true")
	}
	if g.Remove(IRI(ex+"r1"), IRI(ex+"ingredient"), IRI(ex+"Feta")) {
		t.Error("second Remove should return false")
	}
	if g.Len() != n-1 {
		t.Errorf("Len = %d, want %d", g.Len(), n-1)
	}
	if g.Has(IRI(ex+"r1"), IRI(ex+"ingredient"), IRI(ex+"Feta")) {
		t.Error("removed triple still present")
	}
	// Reverse index updated too.
	subs := g.Subjects(IRI(ex+"ingredient"), IRI(ex+"Feta"))
	if !reflect.DeepEqual(subs, []IRI{IRI(ex + "r2")}) {
		t.Errorf("Subjects after Remove = %v", subs)
	}
}

func TestGraphRemoveCleansEmptyIndexEntries(t *testing.T) {
	g := NewGraph()
	g.Add(IRI(ex+"a"), IRI(ex+"p"), NewString("v"))
	g.Remove(IRI(ex+"a"), IRI(ex+"p"), NewString("v"))
	if g.HasSubject(IRI(ex + "a")) {
		t.Error("subject should disappear when its last triple is removed")
	}
	if preds := g.Predicates(); len(preds) != 0 {
		t.Errorf("Predicates = %v, want empty", preds)
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d, want 0", g.Len())
	}
}

func TestGraphTypesAndSubjectsOfType(t *testing.T) {
	g := testGraph()
	recipes := g.SubjectsOfType(IRI(ex + "Recipe"))
	if len(recipes) != 3 {
		t.Fatalf("SubjectsOfType = %v, want 3 recipes", recipes)
	}
	types := g.Types(IRI(ex + "r1"))
	if !reflect.DeepEqual(types, []IRI{IRI(ex + "Recipe")}) {
		t.Errorf("Types = %v", types)
	}
}

func TestGraphLabelFallsBackToPlainName(t *testing.T) {
	g := NewGraph()
	s := IRI(ex + "ns#appleCobbler")
	if got := g.Label(s); got != "apple Cobbler" {
		t.Errorf("Label without rdfs:label = %q", got)
	}
	g.Add(s, Label, NewString("Apple Cobbler Cake"))
	if got := g.Label(s); got != "Apple Cobbler Cake" {
		t.Errorf("Label = %q", got)
	}
	if !g.HasLabel(s) {
		t.Error("HasLabel should be true after adding rdfs:label")
	}
}

func TestGraphLabelPrefersMagnetAnnotation(t *testing.T) {
	g := NewGraph()
	s := IRI(ex + "p")
	g.Add(s, Label, NewString("imported"))
	g.Add(s, AnnLabel, NewString("annotated"))
	if got := g.Label(s); got != "annotated" {
		t.Errorf("Label = %q, want magnet:label to win", got)
	}
}

func TestGraphTermLabel(t *testing.T) {
	g := testGraph()
	g.Add(IRI(ex+"Greek"), Label, NewString("Greek cuisine"))
	if got := g.TermLabel(IRI(ex + "Greek")); got != "Greek cuisine" {
		t.Errorf("TermLabel(IRI) = %q", got)
	}
	if got := g.TermLabel(NewString("parsley")); got != "parsley" {
		t.Errorf("TermLabel(literal) = %q", got)
	}
}

func TestGraphObjectsOfEnumeratesValueDomain(t *testing.T) {
	g := testGraph()
	vals := g.ObjectsOf(IRI(ex + "cuisine"))
	want := []Term{IRI(ex + "Greek"), IRI(ex + "Mexican")}
	if !reflect.DeepEqual(vals, want) {
		t.Errorf("ObjectsOf = %v, want %v", vals, want)
	}
}

func TestGraphStatementsDeterministic(t *testing.T) {
	g := testGraph()
	a := g.AllStatements()
	b := g.AllStatements()
	if !reflect.DeepEqual(a, b) {
		t.Error("AllStatements not deterministic")
	}
	if len(a) != g.Len() {
		t.Errorf("AllStatements len = %d, Len() = %d", len(a), g.Len())
	}
}

func TestGraphForEachEarlyStop(t *testing.T) {
	g := testGraph()
	n := 0
	g.ForEach(func(Statement) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("ForEach visited %d, want early stop at 2", n)
	}
}

func TestGraphConcurrentReadWrite(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := IRI(fmt.Sprintf("%sitem/%d", ex, i%50))
				g.Add(s, IRI(ex+"n"), NewInteger(int64(w*1000+i)))
				g.Objects(s, IRI(ex+"n"))
				g.Subjects(IRI(ex+"n"), NewInteger(int64(i)))
				g.Len()
			}
		}(w)
	}
	wg.Wait()
	if g.Len() == 0 {
		t.Error("graph empty after concurrent writes")
	}
}

// Property: adding a set of random triples then removing them all leaves the
// graph empty, and size bookkeeping never drifts.
func TestQuickGraphAddRemoveInverse(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		var added []Statement
		for i := 0; i < int(n%40)+1; i++ {
			st := Statement{
				Subject:   IRI(fmt.Sprintf("%ss%d", ex, rng.Intn(10))),
				Predicate: IRI(fmt.Sprintf("%sp%d", ex, rng.Intn(5))),
				Object:    NewInteger(int64(rng.Intn(8))),
			}
			if g.Add(st.Subject, st.Predicate, st.Object) {
				added = append(added, st)
			}
		}
		if g.Len() != len(added) {
			return false
		}
		for _, st := range added {
			if !g.Remove(st.Subject, st.Predicate, st.Object) {
				return false
			}
		}
		return g.Len() == 0 && len(g.AllStatements()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: forward and reverse indexes agree — every (s,p,o) reachable via
// Objects is reachable via Subjects and vice versa.
func TestQuickGraphIndexesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for i := 0; i < 60; i++ {
			g.Add(
				IRI(fmt.Sprintf("%ss%d", ex, rng.Intn(12))),
				IRI(fmt.Sprintf("%sp%d", ex, rng.Intn(4))),
				NewString(fmt.Sprintf("v%d", rng.Intn(6))),
			)
		}
		ok := true
		g.ForEach(func(st Statement) bool {
			found := false
			for _, s := range g.Subjects(st.Predicate, st.Object) {
				if s == st.Subject {
					found = true
				}
			}
			if !found {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package rdf

import (
	"reflect"
	"testing"
)

func TestAddAllAndStatements(t *testing.T) {
	g := NewGraph()
	sts := []Statement{
		S(IRI(ex+"a"), Type, IRI(ex+"T")),
		S(IRI(ex+"a"), IRI(ex+"p"), NewString("v")),
		S(IRI(ex+"a"), Type, IRI(ex+"T")), // duplicate
	}
	if n := g.AddAll(sts); n != 2 {
		t.Errorf("AddAll = %d, want 2", n)
	}
	got := g.Statements(IRI(ex + "a"))
	if len(got) != 2 {
		t.Fatalf("Statements = %v", got)
	}
	// Sorted by key, deterministic.
	again := g.Statements(IRI(ex + "a"))
	if !reflect.DeepEqual(got, again) {
		t.Error("Statements not deterministic")
	}
	if got[0].String() == "" {
		t.Error("Statement.String empty")
	}
}

func TestVersionAdvancesOnMutation(t *testing.T) {
	g := NewGraph()
	v0 := g.Version()
	g.Add(IRI(ex+"a"), Type, IRI(ex+"T"))
	v1 := g.Version()
	if v1 == v0 {
		t.Error("Add should bump version")
	}
	// Duplicate adds do not mutate.
	g.Add(IRI(ex+"a"), Type, IRI(ex+"T"))
	if g.Version() != v1 {
		t.Error("duplicate Add bumped version")
	}
	g.Remove(IRI(ex+"a"), Type, IRI(ex+"T"))
	if g.Version() == v1 {
		t.Error("Remove should bump version")
	}
}

func TestObjectCountAndPredicatesOf(t *testing.T) {
	g := testGraph()
	if n := g.ObjectCount(IRI(ex+"r1"), IRI(ex+"ingredient")); n != 2 {
		t.Errorf("ObjectCount = %d", n)
	}
	preds := g.PredicatesOf(IRI(ex + "r1"))
	if len(preds) != 3 {
		t.Errorf("PredicatesOf = %v", preds)
	}
	for i := 1; i < len(preds); i++ {
		if preds[i] < preds[i-1] {
			t.Error("PredicatesOf not sorted")
		}
	}
	if g.PredicatesOf(IRI(ex+"missing")) != nil {
		t.Error("missing subject should have nil predicates")
	}
}

func TestSubjectsWithProperty(t *testing.T) {
	g := testGraph()
	subs := g.SubjectsWithProperty(IRI(ex + "ingredient"))
	want := []IRI{IRI(ex + "r1"), IRI(ex + "r2")}
	if !reflect.DeepEqual(subs, want) {
		t.Errorf("SubjectsWithProperty = %v", subs)
	}
	if got := g.SubjectsWithProperty(IRI(ex + "nope")); len(got) != 0 {
		t.Errorf("absent property = %v", got)
	}
}

func TestParseErrorMessage(t *testing.T) {
	e := &ParseError{Line: 3, Text: "bad", Msg: "boom"}
	msg := e.Error()
	for _, want := range []string{"3", "bad", "boom"} {
		if !containsStr(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestKindStringAndBlank(t *testing.T) {
	if KindIRI.String() != "iri" || KindLiteral.String() != "literal" || KindBlank.String() != "blank" {
		t.Error("Kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still print")
	}
	b := Blank("b1")
	if b.Kind() != KindBlank || b.String() != "_:b1" || b.Key() != "_:b1" {
		t.Errorf("blank = %v %v %v", b.Kind(), b.String(), b.Key())
	}
	if IRI("x").Kind() != KindIRI || NewString("x").Kind() != KindLiteral {
		t.Error("term kinds wrong")
	}
}

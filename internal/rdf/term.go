// Package rdf implements the semistructured data substrate used by Magnet:
// an RDF data model (IRIs, typed literals, statements) and an in-memory,
// concurrency-safe, indexed triple store, together with N-Triples
// serialization. Magnet (Sinha & Karger, SIGMOD 2005) consumes RDF graphs;
// this package is the from-scratch replacement for the Haystack RDF store
// the paper ran on.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the kind of an RDF term.
type Kind int

const (
	// KindIRI is a resource identified by an IRI.
	KindIRI Kind = iota
	// KindLiteral is a literal value (string, number, date, ...).
	KindLiteral
	// KindBlank is a blank (anonymous) node.
	KindBlank
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Term is an RDF term: an IRI, a literal, or a blank node.
type Term interface {
	// Kind reports which kind of term this is.
	Kind() Kind
	// Key returns a canonical representation used as a map key. Two terms
	// are equal exactly when their keys are equal.
	Key() string
	// String returns the N-Triples surface form of the term.
	String() string
}

// IRI is a resource term identified by an IRI (or any opaque identifier;
// Magnet never dereferences IRIs).
type IRI string

// Kind implements Term.
func (IRI) Kind() Kind { return KindIRI }

// Key implements Term. IRIs are keyed by their text prefixed with '<' so
// they can never collide with literal keys.
func (i IRI) Key() string { return "<" + string(i) }

// String returns the N-Triples form, e.g. <http://example.org/x>.
func (i IRI) String() string { return "<" + string(i) + ">" }

// LocalName returns the fragment or final path segment of the IRI, the
// conventional fallback display name for unlabeled resources (the behaviour
// shown in the paper's Figure 7, where raw identifiers appear when no
// rdfs:label is present).
func (i IRI) LocalName() string {
	s := string(i)
	if j := strings.LastIndexByte(s, '#'); j >= 0 && j+1 < len(s) {
		return s[j+1:]
	}
	if j := strings.LastIndexByte(s, '/'); j >= 0 && j+1 < len(s) {
		return s[j+1:]
	}
	return s
}

// Blank is a blank node with a graph-scoped label.
type Blank string

// Kind implements Term.
func (Blank) Kind() Kind { return KindBlank }

// Key implements Term.
func (b Blank) Key() string { return "_:" + string(b) }

// String returns the N-Triples form, e.g. _:b12.
func (b Blank) String() string { return "_:" + string(b) }

// Well-known XSD datatype IRIs for typed literals.
const (
	XSDString   = IRI("http://www.w3.org/2001/XMLSchema#string")
	XSDInteger  = IRI("http://www.w3.org/2001/XMLSchema#integer")
	XSDDecimal  = IRI("http://www.w3.org/2001/XMLSchema#decimal")
	XSDDouble   = IRI("http://www.w3.org/2001/XMLSchema#double")
	XSDBoolean  = IRI("http://www.w3.org/2001/XMLSchema#boolean")
	XSDDateTime = IRI("http://www.w3.org/2001/XMLSchema#dateTime")
	XSDDate     = IRI("http://www.w3.org/2001/XMLSchema#date")
)

// Literal is a typed RDF literal. The zero value is the empty plain string.
type Literal struct {
	// Lexical is the lexical (surface) form of the value.
	Lexical string
	// Datatype is the literal's datatype IRI; empty means plain string.
	Datatype IRI
	// Lang is an optional language tag (only meaningful for plain strings).
	Lang string
}

// NewString returns a plain string literal.
func NewString(s string) Literal { return Literal{Lexical: s} }

// NewLangString returns a language-tagged string literal.
func NewLangString(s, lang string) Literal { return Literal{Lexical: s, Lang: lang} }

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Literal {
	return Literal{Lexical: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewFloat returns an xsd:double literal.
func NewFloat(v float64) Literal {
	return Literal{Lexical: strconv.FormatFloat(v, 'g', -1, 64), Datatype: XSDDouble}
}

// NewBool returns an xsd:boolean literal.
func NewBool(v bool) Literal {
	return Literal{Lexical: strconv.FormatBool(v), Datatype: XSDBoolean}
}

// TimeLayout is the lexical layout used for xsd:dateTime literals.
const TimeLayout = time.RFC3339

// NewTime returns an xsd:dateTime literal in RFC 3339 form (UTC).
func NewTime(t time.Time) Literal {
	return Literal{Lexical: t.UTC().Format(TimeLayout), Datatype: XSDDateTime}
}

// NewDate returns an xsd:date literal (YYYY-MM-DD, UTC).
func NewDate(t time.Time) Literal {
	return Literal{Lexical: t.UTC().Format("2006-01-02"), Datatype: XSDDate}
}

// Kind implements Term.
func (Literal) Kind() Kind { return KindLiteral }

// Key implements Term. The key embeds datatype and language so that
// "1"^^xsd:integer and the plain string "1" remain distinct.
func (l Literal) Key() string {
	return "\"" + l.Lexical + "\"@" + l.Lang + "^" + string(l.Datatype)
}

// String returns the N-Triples surface form of the literal.
func (l Literal) String() string {
	var b strings.Builder
	b.WriteByte('"')
	b.WriteString(escapeLiteral(l.Lexical))
	b.WriteByte('"')
	if l.Lang != "" {
		b.WriteByte('@')
		b.WriteString(l.Lang)
	} else if l.Datatype != "" {
		b.WriteString("^^")
		b.WriteString(l.Datatype.String())
	}
	return b.String()
}

// IsNumeric reports whether the literal has a numeric datatype.
func (l Literal) IsNumeric() bool {
	switch l.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble:
		return true
	}
	return false
}

// IsTemporal reports whether the literal has a date or dateTime datatype.
func (l Literal) IsTemporal() bool {
	return l.Datatype == XSDDateTime || l.Datatype == XSDDate
}

// Int returns the literal parsed as an integer.
func (l Literal) Int() (int64, bool) {
	v, err := strconv.ParseInt(l.Lexical, 10, 64)
	return v, err == nil
}

// Float returns the literal parsed as a float. Integer, decimal, double and
// date/dateTime literals (as Unix seconds) all yield floats, which is how the
// query engine and the vector space model obtain a single numeric axis for
// continuous-valued attributes (paper §5.4).
func (l Literal) Float() (float64, bool) {
	if l.IsTemporal() {
		t, ok := l.Time()
		if !ok {
			return 0, false
		}
		return float64(t.Unix()), true
	}
	v, err := strconv.ParseFloat(l.Lexical, 64)
	return v, err == nil
}

// Bool returns the literal parsed as a boolean.
func (l Literal) Bool() (bool, bool) {
	v, err := strconv.ParseBool(l.Lexical)
	return v, err == nil
}

// Time returns the literal parsed as a time. Both xsd:dateTime (RFC 3339)
// and xsd:date (YYYY-MM-DD) lexical forms are accepted.
func (l Literal) Time() (time.Time, bool) {
	if t, err := time.Parse(TimeLayout, l.Lexical); err == nil {
		return t, true
	}
	if t, err := time.Parse("2006-01-02", l.Lexical); err == nil {
		return t, true
	}
	return time.Time{}, false
}

// ParseTermKey inverts Term.Key: it reconstructs the term a canonical key
// denotes, reporting false for strings that are not term keys. Keys are
// stable identifiers, so they can travel through UIs (URLs, suggestion
// keys) and come back as terms.
func ParseTermKey(k string) (Term, bool) {
	switch {
	case strings.HasPrefix(k, "<"):
		return IRI(k[1:]), true
	case strings.HasPrefix(k, "_:"):
		return Blank(k[2:]), true
	case strings.HasPrefix(k, "\""):
		// "lex"@lang^datatype — scan from the end: the final '^' introduces
		// the datatype (datatype IRIs never contain '^'), and the '@' just
		// before that segment closes the language tag.
		caret := strings.LastIndexByte(k, '^')
		if caret < 0 {
			return nil, false
		}
		dt := IRI(k[caret+1:])
		rest := k[1:caret] // lex"@lang
		at := strings.LastIndexByte(rest, '@')
		if at < 1 || rest[at-1] != '"' {
			return nil, false
		}
		return Literal{
			Lexical:  rest[:at-1],
			Lang:     rest[at+1:],
			Datatype: dt,
		}, true
	default:
		return nil, false
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

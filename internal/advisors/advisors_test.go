package advisors

import (
	"reflect"
	"testing"

	"magnet/internal/blackboard"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

func post(b *blackboard.Board, advisor, group, title string, w float64) {
	b.Post(blackboard.Suggestion{
		Advisor: advisor, Group: group, Title: title, Weight: w,
		Key: advisor + "/" + group + "/" + title,
	})
}

func TestBuildGroupsAndOrders(t *testing.T) {
	b := blackboard.NewBoard()
	post(b, blackboard.AdvisorRefine, "cuisine", "Mexican", 0.5)
	post(b, blackboard.AdvisorRefine, "cuisine", "Greek", 0.9)
	post(b, blackboard.AdvisorRefine, "ingredient", "Feta", 0.8)
	post(b, blackboard.AdvisorRelated, "Similar by Content", "Overall", 1.0)

	pane := Build(query.NewQuery(), func(r rdf.IRI) string { return string(r) }, b, DefaultConfigs())

	if len(pane.Sections) != 2 {
		t.Fatalf("sections = %d", len(pane.Sections))
	}
	// DefaultConfigs order: Related first, then Refine.
	if pane.Sections[0].Advisor != blackboard.AdvisorRelated {
		t.Errorf("first section = %s", pane.Sections[0].Advisor)
	}
	refine := pane.Sections[1]
	if len(refine.Groups) != 2 {
		t.Fatalf("refine groups = %d", len(refine.Groups))
	}
	// Group with the highest-weight suggestion first: cuisine (0.9).
	if refine.Groups[0].Title != "cuisine" {
		t.Errorf("first group = %q", refine.Groups[0].Title)
	}
	// Suggestions within a group are alphabetical after weight selection.
	titles := []string{refine.Groups[0].Suggestions[0].Title, refine.Groups[0].Suggestions[1].Title}
	if !reflect.DeepEqual(titles, []string{"Greek", "Mexican"}) {
		t.Errorf("group titles = %v", titles)
	}
}

func TestBuildHonorsMaxPerGroup(t *testing.T) {
	b := blackboard.NewBoard()
	for _, v := range []struct {
		title string
		w     float64
	}{{"apple", 0.1}, {"banana", 0.9}, {"cherry", 0.8}, {"date", 0.7}} {
		post(b, blackboard.AdvisorRefine, "fruit", v.title, v.w)
	}
	cfgs := []Config{{Name: blackboard.AdvisorRefine, MaxPerGroup: 2}}
	pane := Build(query.NewQuery(), nil, b, cfgs)
	g := pane.Sections[0].Groups[0]
	if len(g.Suggestions) != 2 || g.Omitted != 2 {
		t.Fatalf("selected=%d omitted=%d", len(g.Suggestions), g.Omitted)
	}
	// Weight picks banana+cherry; alphabetical display.
	if g.Suggestions[0].Title != "banana" || g.Suggestions[1].Title != "cherry" {
		t.Errorf("suggestions = %v", g.Suggestions)
	}
}

func TestBuildHonorsMaxGroups(t *testing.T) {
	b := blackboard.NewBoard()
	post(b, blackboard.AdvisorRefine, "g1", "a", 0.9)
	post(b, blackboard.AdvisorRefine, "g2", "b", 0.8)
	post(b, blackboard.AdvisorRefine, "g3", "c", 0.7)
	cfgs := []Config{{Name: blackboard.AdvisorRefine, MaxGroups: 2, MaxPerGroup: 5}}
	pane := Build(query.NewQuery(), nil, b, cfgs)
	sec := pane.Sections[0]
	if len(sec.Groups) != 2 || sec.OmittedGroups != 1 {
		t.Errorf("groups=%d omitted=%d", len(sec.Groups), sec.OmittedGroups)
	}
}

func TestBuildConstraints(t *testing.T) {
	q := query.NewQuery(
		query.Property{Prop: rdf.IRI("p"), Value: rdf.IRI("v")},
		query.Not{P: query.Keyword{Text: "nuts"}},
	)
	pane := Build(q, func(r rdf.IRI) string { return string(r) }, blackboard.NewBoard(), nil)
	want := []string{"p = v", `NOT contains "nuts"`}
	if !reflect.DeepEqual(pane.Constraints, want) {
		t.Errorf("constraints = %v", pane.Constraints)
	}
	if len(pane.Sections) != 0 {
		t.Error("empty board should give no sections")
	}
}

func TestAllSuggestionsAndFind(t *testing.T) {
	b := blackboard.NewBoard()
	post(b, blackboard.AdvisorRefine, "g", "alpha", 0.9)
	post(b, blackboard.AdvisorModify, "h", "beta", 0.5)
	pane := Build(query.NewQuery(), nil, b, DefaultConfigs())
	all := pane.AllSuggestions()
	if len(all) != 2 {
		t.Fatalf("AllSuggestions = %d", len(all))
	}
	if s, ok := pane.Find("beta"); !ok || s.Advisor != blackboard.AdvisorModify {
		t.Errorf("Find(beta) = %v, %v", s, ok)
	}
	if _, ok := pane.Find("gamma"); ok {
		t.Error("Find should miss unknown titles")
	}
}

func TestUnknownAdvisorSuggestionsIgnored(t *testing.T) {
	b := blackboard.NewBoard()
	post(b, "Custom Advisor", "g", "x", 1)
	pane := Build(query.NewQuery(), nil, b, DefaultConfigs())
	if len(pane.Sections) != 0 {
		t.Error("suggestions for unconfigured advisors should not render")
	}
	// But a config naming it picks it up.
	pane = Build(query.NewQuery(), nil, b, []Config{{Name: "Custom Advisor"}})
	if len(pane.Sections) != 1 {
		t.Error("configured custom advisor missing")
	}
}

// Package advisors turns blackboard suggestions into the navigation pane
// the user sees (paper §4.1): each advisor selects its most relevant
// suggestions by analyst-provided weight, groups them by property, shows
// "the first few values to give the user appropriate context" with a '...'
// count for the rest, and presents each group alphabetically.
package advisors

import (
	"sort"

	"magnet/internal/blackboard"
	"magnet/internal/query"
)

// Config sizes one advisor's slice of the pane.
type Config struct {
	// Name is the advisor (one of the blackboard.Advisor* constants or an
	// extension).
	Name string
	// MaxGroups bounds how many suggestion groups are shown (0 = no limit).
	MaxGroups int
	// MaxPerGroup bounds suggestions per group before the '...' affordance
	// (0 = no limit).
	MaxPerGroup int
}

// DefaultConfigs mirrors the pane layout of the paper's Figure 1: Related
// Items on top, Refine Collections in the middle, Modify below, then
// History, with the Query affordance alongside.
func DefaultConfigs() []Config {
	return []Config{
		{Name: blackboard.AdvisorRelated, MaxGroups: 4, MaxPerGroup: 5},
		{Name: blackboard.AdvisorRefine, MaxGroups: 8, MaxPerGroup: 5},
		{Name: blackboard.AdvisorModify, MaxGroups: 2, MaxPerGroup: 5},
		{Name: blackboard.AdvisorHistory, MaxGroups: 2, MaxPerGroup: 5},
		{Name: blackboard.AdvisorQuery, MaxGroups: 1, MaxPerGroup: 2},
	}
}

// Group is a titled cluster of suggestions within an advisor's section.
type Group struct {
	Title       string
	Suggestions []blackboard.Suggestion
	// Omitted counts suggestions hidden behind the '...' affordance.
	Omitted int
}

// Section is one advisor's part of the pane.
type Section struct {
	Advisor string
	Groups  []Group
	// OmittedGroups counts whole groups not shown.
	OmittedGroups int
}

// Pane is the rendered navigation pane model: the current query's
// constraints on top (each removable/negatable), then advisor sections.
type Pane struct {
	// Constraints are the conjunctive query terms, in order.
	Constraints []string
	Sections    []Section
}

// Build assembles the pane for a query and a filled blackboard.
func Build(q query.Query, l query.Labeler, b *blackboard.Board, cfgs []Config) Pane {
	pane := Pane{Constraints: q.Describe(l)}
	byAdvisor := b.ByAdvisor()
	for _, cfg := range cfgs {
		ss := byAdvisor[cfg.Name]
		if len(ss) == 0 {
			continue
		}
		pane.Sections = append(pane.Sections, buildSection(cfg, ss))
	}
	return pane
}

func buildSection(cfg Config, ss []blackboard.Suggestion) Section {
	// Cluster by group title, tracking each group's best weight for
	// ordering between groups.
	type cluster struct {
		title string
		best  float64
		ss    []blackboard.Suggestion
	}
	byGroup := make(map[string]*cluster)
	var order []*cluster
	for _, s := range ss {
		c := byGroup[s.Group]
		if c == nil {
			c = &cluster{title: s.Group}
			byGroup[s.Group] = c
			order = append(order, c)
		}
		if s.Weight > c.best {
			c.best = s.Weight
		}
		c.ss = append(c.ss, s)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].best != order[j].best {
			return order[i].best > order[j].best
		}
		return order[i].title < order[j].title
	})

	sec := Section{Advisor: cfg.Name}
	for i, c := range order {
		if cfg.MaxGroups > 0 && i >= cfg.MaxGroups {
			sec.OmittedGroups = len(order) - i
			break
		}
		limit := cfg.MaxPerGroup
		if limit <= 0 {
			limit = len(c.ss)
		}
		selected, omitted := blackboard.SelectTop(c.ss, limit)
		sec.Groups = append(sec.Groups, Group{
			Title:       c.title,
			Suggestions: selected,
			Omitted:     omitted,
		})
	}
	return sec
}

// AllSuggestions flattens the pane back to its visible suggestions, in
// display order (for tests and for the CLI's numbered selection).
func (p Pane) AllSuggestions() []blackboard.Suggestion {
	var out []blackboard.Suggestion
	for _, sec := range p.Sections {
		for _, g := range sec.Groups {
			out = append(out, g.Suggestions...)
		}
	}
	return out
}

// Find returns the first visible suggestion whose title matches, and
// whether one was found.
func (p Pane) Find(title string) (blackboard.Suggestion, bool) {
	for _, s := range p.AllSuggestions() {
		if s.Title == title {
			return s, true
		}
	}
	return blackboard.Suggestion{}, false
}

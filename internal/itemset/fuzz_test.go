package itemset

import "testing"

// FuzzItemSetOps decodes two sets and an op chain from raw bytes and checks
// every itemset operation against a map-based reference model.
func FuzzItemSetOps(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, []byte{0, 1, 2, 3})
	f.Add([]byte{}, []byte{255, 0, 255}, []byte{2, 0})
	f.Add([]byte{7, 7, 7, 1}, []byte{7}, []byte{1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, araw, braw, ops []byte) {
		decode := func(raw []byte) ([]uint32, mapSet) {
			ids := make([]uint32, 0, len(raw))
			m := make(mapSet, len(raw))
			// Spread consecutive bytes across a wider universe so both the
			// merge and galloping paths get exercised.
			for i, c := range raw {
				id := uint32(c) + uint32(i%5)*256
				ids = append(ids, id)
				m[id] = struct{}{}
			}
			return ids, m
		}
		aids, am := decode(araw)
		bids, bm := decode(braw)
		a, b := FromUnsorted(aids), FromUnsorted(bids)
		sameMembers(t, "decode-a", a, am)
		sameMembers(t, "decode-b", b, bm)

		cur, curM := a, am
		for _, op := range ops {
			switch op % 5 {
			case 0:
				cur, curM = cur.Intersect(b), curM.intersect(bm)
			case 1:
				cur, curM = cur.Union(b), curM.union(bm)
			case 2:
				cur, curM = cur.Minus(b), curM.minus(bm)
			case 3:
				if got, want := cur.IntersectCount(b), len(curM.intersect(bm)); got != want {
					t.Fatalf("IntersectCount = %d, want %d", got, want)
				}
			default:
				bits := NewBits(0)
				bits.AddSet(cur)
				bits.AddSet(b)
				if bits.Count() != len(curM.union(bm)) {
					t.Fatalf("Bits.Count = %d, want %d", bits.Count(), len(curM.union(bm)))
				}
				cur, curM = bits.Extract(), curM.union(bm)
			}
			sameMembers(t, "op", cur, curM)
			if !cur.Equal(FromUnsorted(cur.Items())) {
				t.Fatal("round-trip through Items/FromUnsorted changed the set")
			}
		}
	})
}

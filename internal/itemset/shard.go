package itemset

// Partition splits the set into n disjoint subsets by the given shard
// function, which must return a stable value in [0, n) for every member.
// Members keep their relative order, so each part is itself a valid sorted
// set backed by one contiguous allocation. Partition followed by
// MergeDisjoint is the identity.
func (s Set) Partition(n int, shard func(uint32) int) []Set {
	if n < 1 {
		n = 1
	}
	if n == 1 {
		return []Set{s}
	}
	// Count-then-fill: one pass to size each part, one contiguous backing
	// array carved into per-shard windows, one pass to place members.
	counts := make([]int, n)
	for _, id := range s.ids {
		counts[shard(id)]++
	}
	backing := make([]uint32, len(s.ids))
	parts := make([]Set, n)
	offs := make([]int, n)
	off := 0
	for i := 0; i < n; i++ {
		parts[i] = Set{ids: backing[off : off : off+counts[i]]}
		offs[i] = off
		off += counts[i]
	}
	for _, id := range s.ids {
		p := shard(id)
		backing[offs[p]] = id
		offs[p]++
	}
	for i := 0; i < n; i++ {
		parts[i] = Set{ids: parts[i].ids[:counts[i]]}
	}
	return parts
}

// MergeDisjoint unions pairwise-disjoint parts (a partition, in any order)
// back into one set by a binary merge fold. Parts that merely overlap are
// also handled correctly — union deduplicates — but the name states the
// intended contract: reassembling a Partition.
func MergeDisjoint(parts []Set) Set {
	switch len(parts) {
	case 0:
		return Set{}
	case 1:
		return parts[0]
	}
	// Binary fold keeps each element on O(log n) merge paths instead of
	// O(n) for a left fold.
	mid := len(parts) / 2
	return MergeDisjoint(parts[:mid]).Union(MergeDisjoint(parts[mid:]))
}

package itemset

import (
	"math/rand"
	"testing"
)

func setOf(ids ...uint32) Set { return FromUnsorted(append([]uint32{}, ids...)) }

func TestBasics(t *testing.T) {
	s := setOf(5, 1, 3, 3, 1)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	want := []uint32{1, 3, 5}
	got := s.Items()
	for i, id := range want {
		if got[i] != id {
			t.Fatalf("Items = %v, want %v", got, want)
		}
	}
	for _, id := range want {
		if !s.Has(id) {
			t.Errorf("Has(%d) = false", id)
		}
	}
	for _, id := range []uint32{0, 2, 4, 6, 100} {
		if s.Has(id) {
			t.Errorf("Has(%d) = true", id)
		}
	}
	if !Set.IsEmpty(Set{}) || s.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestRankSelect(t *testing.T) {
	s := setOf(10, 20, 30)
	if r := s.Rank(20); r != 1 {
		t.Errorf("Rank(20) = %d, want 1", r)
	}
	if r := s.Rank(25); r != 2 {
		t.Errorf("Rank(25) = %d, want 2", r)
	}
	if r := s.Rank(5); r != 0 {
		t.Errorf("Rank(5) = %d, want 0", r)
	}
	if id, ok := s.Select(2); !ok || id != 30 {
		t.Errorf("Select(2) = %d,%v", id, ok)
	}
	if _, ok := s.Select(3); ok {
		t.Error("Select(3) should be out of range")
	}
	if _, ok := s.Select(-1); ok {
		t.Error("Select(-1) should be out of range")
	}
	// Rank/Select are inverse on valid positions.
	for i := 0; i < s.Len(); i++ {
		id, _ := s.Select(i)
		if s.Rank(id) != i {
			t.Errorf("Rank(Select(%d)) = %d", i, s.Rank(id))
		}
	}
}

func TestForEachStopsEarly(t *testing.T) {
	s := setOf(1, 2, 3, 4)
	n := 0
	s.ForEach(func(uint32) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("ForEach visited %d, want 2", n)
	}
}

func TestBits(t *testing.T) {
	b := NewBits(10)
	if !b.Add(3) || b.Add(3) {
		t.Fatal("Add newness wrong")
	}
	b.Add(900) // beyond universe: must grow
	b.AddSlice([]uint32{0, 64, 63, 64})
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
	if !b.Has(900) || b.Has(899) {
		t.Fatal("Has wrong after grow")
	}
	got := b.Extract().Items()
	want := []uint32{0, 3, 63, 64, 900}
	if len(got) != len(want) {
		t.Fatalf("Extract = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Extract = %v, want %v", got, want)
		}
	}
	b.Reset()
	if b.Count() != 0 || b.Has(3) {
		t.Fatal("Reset incomplete")
	}
	if !b.Extract().IsEmpty() {
		t.Fatal("Extract after Reset not empty")
	}
}

// ---------------------------------------------------------------------------
// Property-based equivalence: itemset operations must agree with the
// reference map-based Set the engine used before the dense-ID refactor,
// over randomized chains of intersect/union/minus.

type mapSet map[uint32]struct{}

func (m mapSet) intersect(o mapSet) mapSet {
	out := make(mapSet)
	for id := range m {
		if _, ok := o[id]; ok {
			out[id] = struct{}{}
		}
	}
	return out
}

func (m mapSet) union(o mapSet) mapSet {
	out := make(mapSet)
	for id := range m {
		out[id] = struct{}{}
	}
	for id := range o {
		out[id] = struct{}{}
	}
	return out
}

func (m mapSet) minus(o mapSet) mapSet {
	out := make(mapSet)
	for id := range m {
		if _, ok := o[id]; !ok {
			out[id] = struct{}{}
		}
	}
	return out
}

func toMap(s Set) mapSet {
	out := make(mapSet, s.Len())
	s.ForEach(func(id uint32) bool { out[id] = struct{}{}; return true })
	return out
}

func sameMembers(t *testing.T, op string, s Set, m mapSet) {
	t.Helper()
	if s.Len() != len(m) {
		t.Fatalf("%s: len %d vs reference %d", op, s.Len(), len(m))
	}
	prev := -1
	for _, id := range s.Slice() {
		if int(id) <= prev {
			t.Fatalf("%s: result not strictly sorted at %d", op, id)
		}
		prev = int(id)
		if _, ok := m[id]; !ok {
			t.Fatalf("%s: extra member %d", op, id)
		}
	}
}

func randomSet(r *rand.Rand, universe int) Set {
	n := r.Intn(universe)
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(r.Intn(universe))
	}
	return FromUnsorted(ids)
}

func TestEquivalenceRandomChains(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		universe := 1 + r.Intn(300)
		s, m := randomSet(r, universe), mapSet(nil)
		m = toMap(s)
		for step := 0; step < 12; step++ {
			o := randomSet(r, universe)
			om := toMap(o)
			switch r.Intn(4) {
			case 0:
				s, m = s.Intersect(o), m.intersect(om)
				if want := len(m); s.Len() != want {
					t.Fatalf("IntersectCount mismatch %d vs %d", s.Len(), want)
				}
			case 1:
				s, m = s.Union(o), m.union(om)
			case 2:
				s, m = s.Minus(o), m.minus(om)
			default:
				// Bits round-trip union.
				b := NewBits(universe)
				b.AddSet(s)
				b.AddSet(o)
				s, m = b.Extract(), m.union(om)
			}
			sameMembers(t, "chain", s, m)
		}
		// Spot-check scalar ops against the reference.
		for probe := 0; probe < 10; probe++ {
			id := uint32(r.Intn(universe))
			_, want := m[id]
			if s.Has(id) != want {
				t.Fatalf("Has(%d) = %v, reference %v", id, s.Has(id), want)
			}
		}
		o := randomSet(r, universe)
		if got, want := s.IntersectCount(o), len(toMap(s.Intersect(o))); got != want {
			t.Fatalf("IntersectCount = %d, want %d", got, want)
		}
	}
}

func TestIntoVariantsReuseBuffers(t *testing.T) {
	a, b := setOf(1, 2, 3, 4, 5), setOf(2, 4, 6)
	buf := make([]uint32, 0, 16)
	got := IntersectInto(buf, a, b)
	if got.Len() != 2 || !got.Has(2) || !got.Has(4) {
		t.Fatalf("IntersectInto = %v", got.Items())
	}
	// Reusing the result's backing array must not reallocate for a result
	// that fits.
	got2 := MinusInto(got.Slice()[:0], a, b)
	if got2.Len() != 3 || !got2.Has(1) || !got2.Has(3) || !got2.Has(5) {
		t.Fatalf("MinusInto = %v", got2.Items())
	}
	u := UnionInto(nil, a, b)
	if u.Len() != 6 {
		t.Fatalf("UnionInto = %v", u.Items())
	}
}

// TestSkewedIntersect exercises the galloping path (large/small ≥ 16×).
func TestSkewedIntersect(t *testing.T) {
	big := make([]uint32, 0, 4096)
	for i := 0; i < 4096; i++ {
		big = append(big, uint32(i*3))
	}
	large := FromSorted(big)
	small := setOf(0, 3, 4, 3000, 12285, 50000)
	got := large.Intersect(small)
	want := []uint32{0, 3, 3000, 12285}
	if got.Len() != len(want) {
		t.Fatalf("skewed intersect = %v, want %v", got.Items(), want)
	}
	for i, id := range got.Slice() {
		if id != want[i] {
			t.Fatalf("skewed intersect = %v, want %v", got.Items(), want)
		}
	}
	if n := large.IntersectCount(small); n != len(want) {
		t.Fatalf("skewed IntersectCount = %d, want %d", n, len(want))
	}
}

func TestEqualAndCopy(t *testing.T) {
	a := setOf(1, 2, 3)
	b := Copy(a.Slice())
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal(copy) = false")
	}
	if a.Equal(setOf(1, 2)) || a.Equal(setOf(1, 2, 4)) {
		t.Fatal("Equal false positive")
	}
	if !Set.Equal(Set{}, Set{}) {
		t.Fatal("empty sets not equal")
	}
}

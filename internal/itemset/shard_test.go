package itemset

import (
	"math/rand"
	"testing"

	"magnet/internal/ids"
)

func TestPartitionMergeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		raw := make([]uint32, rng.Intn(2000))
		for i := range raw {
			raw[i] = uint32(rng.Intn(100000))
		}
		s := FromUnsorted(raw)
		for _, n := range []int{1, 2, 3, 7, 16} {
			parts := s.Partition(n, func(id uint32) int { return ids.Shard(id, n) })
			if len(parts) != n {
				t.Fatalf("Partition(%d) returned %d parts", n, len(parts))
			}
			total := 0
			seen := make(map[uint32]int)
			for pi, p := range parts {
				total += p.Len()
				p.ForEach(func(id uint32) bool {
					if ids.Shard(id, n) != pi {
						t.Fatalf("id %d in part %d, Shard says %d", id, pi, ids.Shard(id, n))
					}
					seen[id]++
					return true
				})
			}
			if total != s.Len() {
				t.Fatalf("n=%d: parts hold %d members, set has %d", n, total, s.Len())
			}
			for id, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d: id %d appears in %d parts", n, id, c)
				}
			}
			if merged := MergeDisjoint(parts); !merged.Equal(s) {
				t.Fatalf("n=%d: MergeDisjoint(Partition) != identity", n)
			}
		}
	}
}

func TestPartitionDegenerate(t *testing.T) {
	empty := Set{}
	parts := empty.Partition(4, func(id uint32) int { return ids.Shard(id, 4) })
	if len(parts) != 4 {
		t.Fatalf("empty Partition(4) returned %d parts", len(parts))
	}
	for _, p := range parts {
		if !p.IsEmpty() {
			t.Fatalf("empty set produced non-empty part")
		}
	}
	if !MergeDisjoint(nil).IsEmpty() {
		t.Fatalf("MergeDisjoint(nil) not empty")
	}
	one := FromSorted([]uint32{7})
	single := one.Partition(1, func(uint32) int { return 0 })
	if len(single) != 1 || !single[0].Equal(one) {
		t.Fatalf("Partition(1) must be the identity")
	}
}

// FuzzShardPartition: partitioning any set at any shard count covers every
// member exactly once — no ID lost, none duplicated, each in the shard the
// hash assigns it — and merging restores the original set.
func FuzzShardPartition(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, 4)
	f.Add([]byte{}, 7)
	f.Add([]byte{255, 0, 128, 128}, 1)
	f.Fuzz(func(t *testing.T, raw []byte, n int) {
		if n < 1 {
			n = 1
		}
		if n > 64 {
			n = n%64 + 1
		}
		members := make([]uint32, 0, len(raw))
		for i, c := range raw {
			members = append(members, uint32(c)+uint32(i%7)*256)
		}
		s := FromUnsorted(members)
		parts := s.Partition(n, func(id uint32) int { return ids.Shard(id, n) })
		if len(parts) != n {
			t.Fatalf("Partition(%d) returned %d parts", n, len(parts))
		}
		total := 0
		for pi, p := range parts {
			total += p.Len()
			p.ForEach(func(id uint32) bool {
				if !s.Has(id) {
					t.Fatalf("part %d invented id %d", pi, id)
				}
				if got := ids.Shard(id, n); got != pi {
					t.Fatalf("id %d placed in part %d, Shard assigns %d", id, pi, got)
				}
				return true
			})
		}
		if total != s.Len() {
			t.Fatalf("parts hold %d members, set has %d", total, s.Len())
		}
		if !MergeDisjoint(parts).Equal(s) {
			t.Fatalf("MergeDisjoint(Partition) != identity")
		}
	})
}

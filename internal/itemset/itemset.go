// Package itemset implements the engine's hot set representation: a sorted
// slice of dense uint32 item IDs with allocation-conscious merge-based
// intersection, union and difference, plus a bitmap accumulator for bulk
// unions — the sorted-posting/bitmap hybrid IR engines use in place of
// string-keyed hash-map sets.
//
// Sets are immutable values: operations return new sets (or fill a
// caller-provided buffer via the *Into variants) and never mutate their
// operands. Membership is by binary search with a galloping fast path, so
// intersecting a small posting list against a large collection costs
// O(small × log large) rather than O(small + large).
package itemset

import (
	"math/bits"
	"sort"
)

// Set is an immutable sorted set of dense item IDs. The zero value is the
// empty set.
type Set struct {
	ids []uint32 // strictly increasing
}

// FromSorted wraps a strictly-increasing slice as a set, taking ownership
// of it: the caller must not mutate ids afterwards.
func FromSorted(ids []uint32) Set {
	return Set{ids: ids}
}

// FromUnsorted sorts and deduplicates ids in place and wraps the result,
// taking ownership of the slice.
func FromUnsorted(ids []uint32) Set {
	if len(ids) < 2 {
		return Set{ids: ids}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return Set{ids: out}
}

// Copy returns a set backed by a fresh copy of ids (which must be strictly
// increasing); the caller keeps ownership of the input.
func Copy(ids []uint32) Set {
	if len(ids) == 0 {
		return Set{}
	}
	out := make([]uint32, len(ids))
	copy(out, ids)
	return Set{ids: out}
}

// Len returns the number of members.
func (s Set) Len() int { return len(s.ids) }

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool { return len(s.ids) == 0 }

// Slice returns the members in ascending order as a read-only view of the
// set's backing array; callers must not mutate it. Sorted order is free —
// no per-call sort (callers that used to re-sort hash-map set output can
// consume this directly).
//
//magnet:frozen
func (s Set) Slice() []uint32 { return s.ids }

// Buffer surrenders the set's backing array for reuse as scratch: unlike
// Slice, the caller takes ownership and may overwrite it, and must treat
// the set as dead afterwards. It exists for buffer-recycling loops that
// re-slice a spent result to [:0] and feed it back into an *Into
// operation.
func (s Set) Buffer() []uint32 { return s.ids }

// Items returns a fresh copy of the members in ascending order.
func (s Set) Items() []uint32 {
	if len(s.ids) == 0 {
		return nil
	}
	out := make([]uint32, len(s.ids))
	copy(out, s.ids)
	return out
}

// Has reports membership by binary search.
//
//magnet:hot
func (s Set) Has(id uint32) bool {
	i := searchIDs(s.ids, id)
	return i < len(s.ids) && s.ids[i] == id
}

// Rank returns the number of members strictly less than id (the position
// id would occupy).
func (s Set) Rank(id uint32) int { return searchIDs(s.ids, id) }

// Select returns the i-th smallest member and whether i is in range.
func (s Set) Select(i int) (uint32, bool) {
	if i < 0 || i >= len(s.ids) {
		return 0, false
	}
	return s.ids[i], true
}

// ForEach calls f on each member in ascending order until f returns false.
func (s Set) ForEach(f func(uint32) bool) {
	for _, id := range s.ids {
		if !f(id) {
			return
		}
	}
}

// Equal reports whether two sets have identical members.
func (s Set) Equal(t Set) bool {
	if len(s.ids) != len(t.ids) {
		return false
	}
	for i, id := range s.ids {
		if t.ids[i] != id {
			return false
		}
	}
	return true
}

// searchIDs is sort.Search specialised to uint32 slices (no closure
// allocation, inlinable).
func searchIDs(ids []uint32, id uint32) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallop finds the insertion point of id in ids[from:] by exponential probing
// followed by binary search — O(log distance) instead of O(log n), which
// makes skewed intersections O(small × log(large/small)).
func gallop(ids []uint32, from int, id uint32) int {
	bound := 1
	for from+bound < len(ids) && ids[from+bound] < id {
		bound <<= 1
	}
	hi := from + bound
	if hi > len(ids) {
		hi = len(ids)
	}
	lo := from + bound>>1
	return lo + searchIDs(ids[lo:hi], id)
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return IntersectInto(nil, s, t) }

// IntersectInto computes a ∩ b into dst's backing array (grown as needed),
// returning the result set. dst may be nil; passing a previous result's
// Buffer() reuses its allocation.
//
//magnet:hot
func IntersectInto(dst []uint32, a, b Set) Set {
	x, y := a.ids, b.ids
	if len(x) > len(y) {
		x, y = y, x
	}
	dst = dst[:0]
	if len(x) == 0 {
		return Set{ids: dst}
	}
	// Skewed sizes: gallop through the large side.
	if len(y) >= 16*len(x) {
		j := 0
		for _, id := range x {
			j = gallop(y, j, id)
			if j >= len(y) {
				break
			}
			if y[j] == id {
				dst = append(dst, id)
				j++
			}
		}
		return Set{ids: dst}
	}
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		xi, yj := x[i], y[j]
		switch {
		case xi == yj:
			dst = append(dst, xi)
			i++
			j++
		case xi < yj:
			i++
		default:
			j++
		}
	}
	return Set{ids: dst}
}

// IntersectCount returns |s ∩ t| without materializing the intersection.
//
//magnet:hot
func (s Set) IntersectCount(t Set) int {
	x, y := s.ids, t.ids
	if len(x) > len(y) {
		x, y = y, x
	}
	n := 0
	if len(y) >= 16*len(x) {
		j := 0
		for _, id := range x {
			j = gallop(y, j, id)
			if j >= len(y) {
				break
			}
			if y[j] == id {
				n++
				j++
			}
		}
		return n
	}
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] == y[j]:
			n++
			i++
			j++
		case x[i] < y[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return UnionInto(nil, s, t) }

// UnionInto computes a ∪ b into dst's backing array (grown as needed). dst
// must not alias either operand's backing array.
//
//magnet:hot
func UnionInto(dst []uint32, a, b Set) Set {
	x, y := a.ids, b.ids
	dst = dst[:0]
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		xi, yj := x[i], y[j]
		switch {
		case xi == yj:
			dst = append(dst, xi)
			i++
			j++
		case xi < yj:
			dst = append(dst, xi)
			i++
		default:
			dst = append(dst, yj)
			j++
		}
	}
	dst = append(dst, x[i:]...)
	dst = append(dst, y[j:]...)
	return Set{ids: dst}
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return MinusInto(nil, s, t) }

// MinusInto computes a \ b into dst's backing array (grown as needed). dst
// must not alias either operand's backing array.
//
//magnet:hot
func MinusInto(dst []uint32, a, b Set) Set {
	x, y := a.ids, b.ids
	dst = dst[:0]
	if len(y) == 0 {
		dst = append(dst, x...)
		return Set{ids: dst}
	}
	j := 0
	for _, id := range x {
		j = gallop(y, j, id)
		if j < len(y) && y[j] == id {
			continue
		}
		dst = append(dst, id)
	}
	return Set{ids: dst}
}

// Bits is a mutable bitmap over the dense ID universe — the accumulator
// half of the hybrid. Use it to union many posting lists (disjunctions,
// multi-value probes, frontier expansion) in O(total postings) with no
// merge churn, then Extract the sorted result.
type Bits struct {
	words []uint64
	n     int
}

// NewBits returns a bitmap sized for IDs in [0, universe); it grows
// automatically if larger IDs are added.
func NewBits(universe int) *Bits {
	if universe < 0 {
		universe = 0
	}
	return &Bits{words: make([]uint64, (universe+63)/64)}
}

func (b *Bits) grow(id uint32) {
	need := int(id)/64 + 1
	if need <= len(b.words) {
		return
	}
	words := make([]uint64, need+need/2)
	copy(words, b.words)
	b.words = words
}

// Add inserts id, reporting whether it was new.
func (b *Bits) Add(id uint32) bool {
	b.grow(id)
	w, mask := id/64, uint64(1)<<(id%64)
	if b.words[w]&mask != 0 {
		return false
	}
	b.words[w] |= mask
	b.n++
	return true
}

// AddSlice inserts every ID of a sorted or unsorted slice.
func (b *Bits) AddSlice(ids []uint32) {
	for _, id := range ids {
		b.Add(id)
	}
}

// AddSet inserts every member of s.
func (b *Bits) AddSet(s Set) { b.AddSlice(s.ids) }

// Has reports membership; IDs beyond the universe are absent.
func (b *Bits) Has(id uint32) bool {
	w := int(id) / 64
	return w < len(b.words) && b.words[w]&(uint64(1)<<(id%64)) != 0
}

// Count returns the number of set bits.
func (b *Bits) Count() int { return b.n }

// Extract returns the members as a sorted Set (fresh allocation) — bit
// order is ID order, so the result is sorted for free.
func (b *Bits) Extract() Set {
	if b.n == 0 {
		return Set{}
	}
	out := make([]uint32, 0, b.n)
	for w, word := range b.words {
		for word != 0 {
			out = append(out, uint32(w*64)+uint32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return Set{ids: out}
}

// Reset clears the bitmap for reuse.
func (b *Bits) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.n = 0
}

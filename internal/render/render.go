// Package render draws Magnet's interface as text: the navigation pane of
// Figure 1, the large-collection facet overview of Figure 2, item cards,
// and the range widget's query-preview histogram of Figure 5. The CLI and
// the evaluation binaries print these; the paper's screenshots map onto
// this output one-for-one (panes, groups, '...' affordances, hatch marks).
package render

import (
	"fmt"
	"io"
	"strings"

	"magnet/internal/advisors"
	"magnet/internal/facets"
	"magnet/internal/rdf"
)

// Pane writes the navigation pane: the query constraints (each removable
// with '✕', negatable via context menu), then each advisor's groups. When
// number is true, suggestions get global ordinals for CLI selection.
func Pane(w io.Writer, p advisors.Pane, number bool) {
	if len(p.Constraints) > 0 {
		fmt.Fprintln(w, "Query:")
		for i, c := range p.Constraints {
			fmt.Fprintf(w, "  [%d] %s  (✕ remove · ¬ negate)\n", i, c)
		}
	} else {
		fmt.Fprintln(w, "Query: (all items)")
	}
	n := 0
	for _, sec := range p.Sections {
		fmt.Fprintf(w, "\n── %s ──\n", sec.Advisor)
		for _, g := range sec.Groups {
			if g.Title != "" {
				fmt.Fprintf(w, "  %s:\n", g.Title)
			}
			for _, s := range g.Suggestions {
				n++
				prefix := "   -"
				if number {
					prefix = fmt.Sprintf("  %2d.", n)
				}
				line := prefix + " " + s.Title
				if s.Detail != "" {
					line += "  (" + s.Detail + ")"
				}
				fmt.Fprintln(w, line)
			}
			if g.Omitted > 0 {
				fmt.Fprintf(w, "     ... %d more\n", g.Omitted)
			}
		}
		if sec.OmittedGroups > 0 {
			fmt.Fprintf(w, "  ... %d more groups\n", sec.OmittedGroups)
		}
	}
}

// Overview writes the large-collection facet overview (Figure 2): each
// property with its top values and counts, bar-scaled.
func Overview(w io.Writer, fs []facets.Facet, total int) {
	fmt.Fprintf(w, "Overview of %d items\n", total)
	for _, f := range fs {
		label := f.Label
		if !f.Labeled {
			// Figure 7 behaviour: raw identifiers when unannotated.
			label = string(f.Prop)
		}
		fmt.Fprintf(w, "\n%s  (%d values, %d items)\n", label, f.Distinct, f.Coverage)
		for _, v := range f.Values {
			fmt.Fprintf(w, "  %-28s %5d %s\n", clip(v.Label, 28), v.Count, bar(v.Count, total, 30))
		}
		if rest := f.Distinct - len(f.Values); rest > 0 {
			fmt.Fprintf(w, "  ... %d more values\n", rest)
		}
	}
}

// Item writes an item card: label then each attribute/value pair.
func Item(w io.Writer, g *rdf.Graph, item rdf.IRI) {
	fmt.Fprintf(w, "%s\n", g.Label(item))
	fmt.Fprintf(w, "  <%s>\n", string(item))
	for _, p := range g.PredicatesOf(item) {
		vals := g.Objects(item, p)
		labels := make([]string, len(vals))
		for i, v := range vals {
			labels[i] = clip(g.TermLabel(v), 60)
		}
		fmt.Fprintf(w, "  %-22s %s\n", clip(g.Label(p), 22), strings.Join(labels, ", "))
	}
}

// Collection writes a numbered listing of up to max items.
func Collection(w io.Writer, g *rdf.Graph, items []rdf.IRI, max int) {
	fmt.Fprintf(w, "%d items\n", len(items))
	for i, it := range items {
		if max > 0 && i >= max {
			fmt.Fprintf(w, "  ... %d more\n", len(items)-max)
			return
		}
		fmt.Fprintf(w, "  %3d. %s\n", i+1, g.Label(it))
	}
}

// Histogram writes the Figure 5 range widget preview: two slider ends and
// hatch marks proportional to bucket occupancy.
func Histogram(w io.Writer, label string, h facets.Histogram) {
	fmt.Fprintf(w, "%s: %g — %g  (%d items)\n", label, h.Min, h.Max, h.Count)
	maxBucket := 0
	for _, b := range h.Buckets {
		if b > maxBucket {
			maxBucket = b
		}
	}
	var marks strings.Builder
	for _, b := range h.Buckets {
		marks.WriteByte(" .:|#"[hatchLevel(b, maxBucket)])
	}
	fmt.Fprintf(w, "  ◄[%s]►\n", marks.String())
}

func hatchLevel(b, max int) int {
	if b == 0 || max == 0 {
		return 0
	}
	l := 1 + 3*b/max
	if l > 4 {
		l = 4
	}
	return l
}

func bar(count, total, width int) string {
	if total <= 0 || count <= 0 {
		return ""
	}
	n := count * width / total
	if n == 0 {
		n = 1
	}
	return strings.Repeat("▪", n)
}

func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}

package render

import (
	"strings"
	"testing"

	"magnet/internal/advisors"
	"magnet/internal/blackboard"
	"magnet/internal/facets"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func TestPaneRendering(t *testing.T) {
	p := advisors.Pane{
		Constraints: []string{"cuisine = Greek", "ingredient = Parsley"},
		Sections: []advisors.Section{
			{
				Advisor: blackboard.AdvisorRefine,
				Groups: []advisors.Group{
					{
						Title: "cooking method",
						Suggestions: []blackboard.Suggestion{
							{Title: "Bake", Detail: "12 of 40"},
							{Title: "Grill"},
						},
						Omitted: 3,
					},
				},
				OmittedGroups: 1,
			},
		},
	}
	var b strings.Builder
	Pane(&b, p, true)
	out := b.String()
	for _, want := range []string{
		"cuisine = Greek", "✕ remove", "── Refine Collections ──",
		"cooking method:", "1. Bake  (12 of 40)", "2. Grill",
		"... 3 more", "... 1 more groups",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pane output missing %q:\n%s", want, out)
		}
	}
	// Unnumbered mode.
	b.Reset()
	Pane(&b, p, false)
	if strings.Contains(b.String(), "1. Bake") {
		t.Error("unnumbered pane should not carry ordinals")
	}
	// Empty query.
	b.Reset()
	Pane(&b, advisors.Pane{}, false)
	if !strings.Contains(b.String(), "(all items)") {
		t.Error("empty query marker missing")
	}
}

func TestOverviewRendering(t *testing.T) {
	fs := []facets.Facet{
		{
			Prop: rdf.IRI("http://e/cuisine"), Label: "cuisine", Labeled: true,
			Distinct: 3, Coverage: 40,
			Values: []facets.Value{{Label: "Greek", Count: 25}, {Label: "Thai", Count: 10}},
		},
		{
			Prop: rdf.IRI("http://e/raw"), Label: "raw", Labeled: false,
			Distinct: 1, Coverage: 5,
			Values: []facets.Value{{Label: "x", Count: 5}},
		},
	}
	var b strings.Builder
	Overview(&b, fs, 40)
	out := b.String()
	if !strings.Contains(out, "cuisine  (3 values, 40 items)") {
		t.Errorf("facet header missing:\n%s", out)
	}
	if !strings.Contains(out, "Greek") || !strings.Contains(out, "25") {
		t.Error("value row missing")
	}
	if !strings.Contains(out, "... 1 more values") {
		t.Error("more-values affordance missing")
	}
	// Unlabeled facets display the raw identifier (Figure 7).
	if !strings.Contains(out, "http://e/raw") {
		t.Error("unlabeled facet should show raw IRI")
	}
	if !strings.Contains(out, "▪") {
		t.Error("bars missing")
	}
}

func TestItemAndCollectionRendering(t *testing.T) {
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	it := rdf.IRI("http://e/r1")
	g.Add(it, rdf.Label, rdf.NewString("Apple Cobbler Cake"))
	g.Add(it, rdf.IRI("http://e/ingredient"), rdf.IRI("http://e/Apple"))
	g.Add(rdf.IRI("http://e/Apple"), rdf.Label, rdf.NewString("Apples"))
	sch.SetLabel(rdf.IRI("http://e/ingredient"), "ingredient")

	var b strings.Builder
	Item(&b, g, it)
	out := b.String()
	for _, want := range []string{"Apple Cobbler Cake", "ingredient", "Apples"} {
		if !strings.Contains(out, want) {
			t.Errorf("item card missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	Collection(&b, g, []rdf.IRI{it, "http://e/r2", "http://e/r3"}, 2)
	out = b.String()
	if !strings.Contains(out, "3 items") || !strings.Contains(out, "... 1 more") {
		t.Errorf("collection listing wrong:\n%s", out)
	}
}

func TestHistogramRendering(t *testing.T) {
	h := facets.Histogram{Min: 0, Max: 100, Count: 10, Buckets: []int{5, 0, 2, 3}}
	var b strings.Builder
	Histogram(&b, "sent date", h)
	out := b.String()
	if !strings.Contains(out, "sent date: 0 — 100  (10 items)") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "◄[") || !strings.Contains(out, "]►") {
		t.Error("slider ends missing")
	}
	// Dense bucket renders darker than empty bucket.
	marks := out[strings.Index(out, "◄[")+len("◄[") : strings.Index(out, "]►")]
	if !strings.ContainsRune(marks, '#') || !strings.ContainsRune(marks, ' ') {
		t.Errorf("hatch levels wrong: %q", marks)
	}
}

func TestClip(t *testing.T) {
	if got := clip("short", 10); got != "short" {
		t.Errorf("clip = %q", got)
	}
	if got := clip("a very long label indeed", 10); len([]rune(got)) != 10 || !strings.HasSuffix(got, "…") {
		t.Errorf("clip = %q", got)
	}
}

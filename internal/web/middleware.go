package web

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"magnet/internal/obs"
)

// Request observability: every request is counted and timed, with one
// counter per status class so error rates are visible at a glance on
// /debug/metrics.
var (
	reqCount = obs.NewCounter("web.request.count")
	reqNS    = obs.NewHistogram("web.request.ns")

	// reqStatusClass[c] counts responses with status c00–c99.
	reqStatusClass = func() [6]*obs.Counter {
		var a [6]*obs.Counter
		for c := 1; c <= 5; c++ {
			a[c] = obs.NewCounter(fmt.Sprintf("web.request.status.%dxx", c))
		}
		return a
	}()
)

// Request IDs are a per-process random prefix plus an atomic sequence
// number: unique enough to grep the access log, allocation-light, and
// stable for the lifetime of a request (error pages echo them so a user
// report can be matched to the logged failure).
var (
	reqPrefix = func() string {
		b := make([]byte, 4)
		if _, err := rand.Read(b); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b)
	}()
	reqSeq atomic.Uint64
)

func nextRequestID() string {
	return reqPrefix + "-" + strconv.FormatUint(reqSeq.Add(1), 10)
}

type requestIDKey struct{}

// RequestID returns the request ID the observability middleware assigned,
// or "" outside a request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusWriter captures the status code and byte count a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// observe wraps a handler with the access-log, metrics, and per-request
// span middleware. Each request runs under its own trace root stamped
// with the request ID as its trace ID — so access-log lines, error pages,
// histogram exemplars and flight-recorder captures all join on one key.
// Session handlers install the request context on the session (under the
// server mutex, via lockSession) so a navigation step's spans land in the
// request's tree; the completed root is handed to the flight recorder
// after the response is gone.
func (s *Server) observe(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := nextRequestID()
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		ctx, sp := obs.StartTrace(ctx, "web.request")
		sp.SetTraceID(id)
		sp.SetAttr("path", r.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r.WithContext(ctx))
		sp.End()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		reqCount.Inc()
		reqNS.ObserveSinceExemplar(start, id)
		if c := sw.status / 100; c >= 1 && c <= 5 {
			reqStatusClass[c].Inc()
		}
		obs.Records.Record(sp)
		s.log.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int("bytes", sw.bytes),
			slog.Duration("dur", time.Since(start)),
			slog.Int("spans", sp.Count()),
		)
	})
}

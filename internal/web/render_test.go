package web

import (
	"bytes"
	"context"
	"errors"
	"html/template"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRenderErrorReturns500 pins the failure mode of a template render:
// a 500 carrying the request ID (not a silently truncated page), the error
// logged under the same ID, and the web.render.errors counter bumped.
func TestRenderErrorReturns500(t *testing.T) {
	var logBuf bytes.Buffer
	s := &Server{log: slog.New(slog.NewTextHandler(&logBuf, nil))}

	tpl := template.Must(template.New("boom").Parse(`ok {{call .F}}`))
	data := struct{ F func() (string, error) }{
		F: func() (string, error) { return "", errors.New("kaboom") },
	}
	req := httptest.NewRequest("GET", "/", nil)
	req = req.WithContext(context.WithValue(req.Context(), requestIDKey{}, "req-42"))
	rec := httptest.NewRecorder()

	before := renderErrors.Value()
	s.render(rec, req, tpl, data)

	if rec.Code != 500 {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "req-42") {
		t.Errorf("error page does not carry the request ID: %q", body)
	}
	if body := rec.Body.String(); strings.Contains(body, "ok ") {
		t.Errorf("partial template output leaked to the client: %q", body)
	}
	if got := renderErrors.Value(); got != before+1 {
		t.Errorf("web.render.errors = %d, want %d", got, before+1)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "req-42") || !strings.Contains(logged, "kaboom") {
		t.Errorf("log entry missing request ID or error: %q", logged)
	}
}

// TestRenderSuccess pins the happy path: buffered output is flushed with
// the HTML content type and a 200.
func TestRenderSuccess(t *testing.T) {
	s := &Server{log: slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))}
	tpl := template.Must(template.New("page").Parse(`hello {{.}}`))
	req := httptest.NewRequest("GET", "/", nil)
	rec := httptest.NewRecorder()
	s.render(rec, req, tpl, "magnet")
	if rec.Code != 200 {
		t.Errorf("status = %d, want 200", rec.Code)
	}
	if got := rec.Body.String(); got != "hello magnet" {
		t.Errorf("body = %q", got)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
}

// Package web serves Magnet's faceted navigation interface over HTTP — the
// closest analogue to the paper's Haystack browser window (Figure 1): a
// single page with the keyword toolbar, the current query's constraint list
// (each removable and negatable), the result collection, and the advisors'
// navigation pane; plus the large-collection overview (Figure 2), item
// cards, and range widgets (Figure 5). Handlers are plain net/http and
// html/template, one browsing session per cookie.
package web

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"html/template"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/obs"
	"magnet/internal/qlang"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

// Server serves one Magnet instance to many browser sessions.
type Server struct {
	m       *core.Magnet
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the observability middleware
	log     *slog.Logger

	mu sync.Mutex
	// guarded by mu
	sessions map[string]*core.Session
}

// Option configures a Server.
type Option func(*Server)

// WithLogger sets the structured logger for access and error logs
// (slog.Default() when unset).
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// NewServer returns a server over m.
func NewServer(m *core.Magnet, opts ...Option) *Server {
	s := &Server{
		m:        m,
		mux:      http.NewServeMux(),
		log:      slog.Default(),
		sessions: make(map[string]*core.Session),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("/", s.handleCollection)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/within", s.handleWithin)
	s.mux.HandleFunc("/go", s.handleGo)
	s.mux.HandleFunc("/open", s.handleOpen)
	s.mux.HandleFunc("/rm", s.handleRemove)
	s.mux.HandleFunc("/neg", s.handleNegate)
	s.mux.HandleFunc("/back", s.handleBack)
	s.mux.HandleFunc("/home", s.handleHome)
	s.mux.HandleFunc("/overview", s.handleOverview)
	s.mux.HandleFunc("/range", s.handleRange)
	s.mux.HandleFunc("/refine", s.handleRefine)
	s.handler = s.observe(s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

const sessionCookie = "magnet_session"

// session returns the request's browsing session, creating one (and setting
// the cookie) on first contact. All navigation is serialized under the
// server mutex: core.Session models a single user and is not concurrent.
// The error path is a failing entropy source for new session IDs.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*core.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, err := r.Cookie(sessionCookie); err == nil {
		if sess, ok := s.sessions[c.Value]; ok {
			return sess, nil
		}
	}
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		return nil, fmt.Errorf("web: session id: %w", err)
	}
	id := hex.EncodeToString(buf)
	sess := s.m.NewSession()
	s.sessions[id] = sess
	http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: id, Path: "/"})
	return sess, nil
}

// lockSession acquires the server mutex and installs the request context on
// the session, so the navigation step's spans attach to the request's trace
// root. The returned unlock resets the session context before releasing —
// session state must not outlive the request that set it.
func (s *Server) lockSession(r *http.Request, sess *core.Session) (unlock func()) {
	s.mu.Lock()
	sess.SetContext(r.Context())
	return func() {
		sess.SetContext(nil)
		s.mu.Unlock()
	}
}

// navigate runs fn under the server lock and redirects to the collection
// page afterwards.
func (s *Server) navigate(w http.ResponseWriter, r *http.Request, fn func(*core.Session)) {
	sess, err := s.session(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	unlock := s.lockSession(r, sess)
	fn(sess)
	unlock()
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

// handleSearch accepts plain keywords or, when the input carries structured
// operators, the qlang query language (cuisine = Greek AND servings >= 4).
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.FormValue("q")
	s.navigate(w, r, func(sess *core.Session) {
		if strings.ContainsAny(q, "=:<>") {
			res := qlang.NewResolver(s.m.Graph(), s.m.Schema())
			if parsed, err := qlang.Parse(q, res); err == nil {
				if err := sess.Apply(blackboard.ReplaceQuery{Query: parsed}); err == nil {
					return
				}
			}
			// Fall back to keyword search when parsing or applying fails.
		}
		sess.Search(q)
	})
}

func (s *Server) handleWithin(w http.ResponseWriter, r *http.Request) {
	q := r.FormValue("q")
	s.navigate(w, r, func(sess *core.Session) { sess.SearchWithin(q) })
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	item := rdf.IRI(r.FormValue("item"))
	if !s.m.Graph().HasSubject(item) {
		http.NotFound(w, r)
		return
	}
	sess, err := s.session(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	unlock := s.lockSession(r, sess)
	sess.OpenItem(item)
	data := s.itemData(sess, item)
	unlock()
	s.render(w, r, itemTemplate, data)
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.FormValue("i"))
	if err != nil {
		http.Error(w, "rm: bad constraint index", http.StatusBadRequest)
		return
	}
	s.navigate(w, r, func(sess *core.Session) { sess.RemoveConstraint(i) })
}

func (s *Server) handleNegate(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.FormValue("i"))
	if err != nil {
		http.Error(w, "neg: bad constraint index", http.StatusBadRequest)
		return
	}
	s.navigate(w, r, func(sess *core.Session) { sess.NegateConstraint(i) })
}

func (s *Server) handleBack(w http.ResponseWriter, r *http.Request) {
	s.navigate(w, r, func(sess *core.Session) { sess.Back() })
}

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	s.navigate(w, r, func(sess *core.Session) { sess.GoHome() })
}

// handleGo applies a pane suggestion identified by its stable key, with an
// optional mode (filter/exclude/expand) — the context-menu operations.
func (s *Server) handleGo(w http.ResponseWriter, r *http.Request) {
	key := r.FormValue("k")
	mode := r.FormValue("mode")
	sess, err := s.session(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	unlock := s.lockSession(r, sess)
	var found *blackboard.Suggestion
	for _, sg := range sess.Board().Suggestions() {
		if sg.Key == key {
			found = &sg
			break
		}
	}
	if found == nil {
		unlock()
		http.Error(w, "suggestion expired; go back and retry", http.StatusGone)
		return
	}
	action := found.Action
	if ref, ok := action.(blackboard.Refine); ok {
		switch mode {
		case "exclude":
			ref.Mode = blackboard.Exclude
		case "expand":
			ref.Mode = blackboard.Expand
		}
		action = ref
	}
	if rng, ok := action.(blackboard.ShowRange); ok {
		data := s.rangeData(found.Title, rng)
		unlock()
		s.render(w, r, rangeTemplate, data)
		return
	}
	if _, ok := action.(blackboard.ShowSearch); ok {
		unlock()
		http.Redirect(w, r, "/#search", http.StatusSeeOther)
		return
	}
	if _, ok := action.(blackboard.ShowOverview); ok {
		unlock()
		http.Redirect(w, r, "/overview", http.StatusSeeOther)
		return
	}
	err = sess.Apply(action)
	unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	prop := rdf.IRI(r.FormValue("prop"))
	parse := func(name string) (*float64, bool) {
		v := r.FormValue(name)
		if v == "" {
			return nil, true
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, false
		}
		return &f, true
	}
	lo, ok1 := parse("lo")
	hi, ok2 := parse("hi")
	if !ok1 || !ok2 {
		http.Error(w, "range: bounds must be numbers", http.StatusBadRequest)
		return
	}
	s.navigate(w, r, func(sess *core.Session) { sess.ApplyRange(prop, lo, hi) })
}

// handleRefine applies a direct property/value refinement — the Figure 2
// overview's clickable values ("Users can click and select a refinement
// option, such as Greek cuisine", §3.1). The value travels as a canonical
// term key; mode may be exclude/expand.
func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	prop := rdf.IRI(r.FormValue("prop"))
	term, ok := rdf.ParseTermKey(r.FormValue("vk"))
	if prop == "" || !ok {
		http.Error(w, "refine: need prop and a valid value key", http.StatusBadRequest)
		return
	}
	mode := blackboard.Filter
	switch r.FormValue("mode") {
	case "exclude":
		mode = blackboard.Exclude
	case "expand":
		mode = blackboard.Expand
	}
	s.navigate(w, r, func(sess *core.Session) {
		sess.Refine(query.Property{Prop: prop, Value: term}, mode)
	})
}

func (s *Server) handleOverview(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	unlock := s.lockSession(r, sess)
	data := s.overviewData(sess)
	unlock()
	s.render(w, r, overviewTemplate, data)
}

func (s *Server) handleCollection(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	sess, err := s.session(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	unlock := s.lockSession(r, sess)
	data := s.collectionData(sess)
	unlock()
	s.render(w, r, collectionTemplate, data)
}

// ------------------------------------------------------------ view data --

type constraintView struct {
	Index int
	Text  string
}

type itemLink struct {
	IRI   string
	Label string
}

type suggestionView struct {
	Key      string
	Title    string
	Detail   string
	IsRefine bool
}

type groupView struct {
	Title       string
	Suggestions []suggestionView
	Omitted     int
}

type sectionView struct {
	Advisor string
	Groups  []groupView
}

type collectionView struct {
	Title       string
	Constraints []constraintView
	Items       []itemLink
	Total       int
	Sections    []sectionView
}

func (s *Server) collectionData(sess *core.Session) collectionView {
	pane := sess.Pane()
	data := collectionView{Title: "Magnet"}
	if v := sess.Current(); v.Fixed {
		data.Title = v.Name
	}
	for i, c := range pane.Constraints {
		data.Constraints = append(data.Constraints, constraintView{i, c})
	}
	items := sess.Items()
	data.Total = len(items)
	if len(items) > 40 {
		items = items[:40]
	}
	for _, it := range items {
		data.Items = append(data.Items, itemLink{string(it), s.m.Label(it)})
	}
	for _, sec := range pane.Sections {
		sv := sectionView{Advisor: sec.Advisor}
		for _, g := range sec.Groups {
			gv := groupView{Title: g.Title, Omitted: g.Omitted}
			for _, sg := range g.Suggestions {
				_, isRefine := sg.Action.(blackboard.Refine)
				gv.Suggestions = append(gv.Suggestions, suggestionView{
					Key: sg.Key, Title: sg.Title, Detail: sg.Detail, IsRefine: isRefine,
				})
			}
			sv.Groups = append(sv.Groups, gv)
		}
		data.Sections = append(data.Sections, sv)
	}
	return data
}

type attributeView struct {
	Prop   string
	Values []itemLink
}

type similarView struct {
	IRI   string
	Label string
	Score string
	Why   string
}

type itemView struct {
	Label      string
	IRI        string
	Attributes []attributeView
	Similar    []similarView
}

func (s *Server) itemData(sess *core.Session, item rdf.IRI) itemView {
	g := s.m.Graph()
	data := itemView{Label: s.m.Label(item), IRI: string(item)}
	for _, p := range g.PredicatesOf(item) {
		av := attributeView{Prop: s.m.Label(p)}
		for _, v := range g.Objects(item, p) {
			link := itemLink{Label: g.TermLabel(v)}
			if iri, ok := v.(rdf.IRI); ok && g.HasSubject(iri) {
				link.IRI = string(iri)
			}
			av.Values = append(av.Values, link)
		}
		data.Attributes = append(data.Attributes, av)
	}
	// Similar items with inspectable explanations (the "Overall" fuzzy
	// match, each annotated with its top shared coordinates).
	for _, sc := range s.m.Model().SimilarToItem(item, 6) {
		why := s.m.ExplainSimilarityText(item, sc.Item, 3)
		data.Similar = append(data.Similar, similarView{
			IRI:   string(sc.Item),
			Label: s.m.Label(sc.Item),
			Score: fmt.Sprintf("%.2f", sc.Score),
			Why:   strings.Join(why, " · "),
		})
	}
	return data
}

type facetValueView struct {
	Label string
	Count int
	Width int
	// Prop and Key make the value clickable as a refinement.
	Prop string
	Key  string
}

type facetView struct {
	Label    string
	Distinct int
	Values   []facetValueView
}

type overviewView struct {
	Total  int
	Facets []facetView
}

func (s *Server) overviewData(sess *core.Session) overviewView {
	fs := sess.Overview(8)
	data := overviewView{Total: len(sess.Items())}
	for _, f := range fs {
		fv := facetView{Label: f.Label, Distinct: f.Distinct}
		if !f.Labeled {
			fv.Label = string(f.Prop)
		}
		for _, v := range f.Values {
			width := 0
			if data.Total > 0 {
				width = v.Count * 100 / data.Total
			}
			if width < 2 {
				width = 2
			}
			fv.Values = append(fv.Values, facetValueView{
				Label: v.Label, Count: v.Count, Width: width,
				Prop: string(f.Prop), Key: v.Term.Key(),
			})
		}
		data.Facets = append(data.Facets, fv)
	}
	return data
}

type rangeView struct {
	Title   string
	Prop    string
	Min     float64
	Max     float64
	Buckets []int
}

func (s *Server) rangeData(title string, act blackboard.ShowRange) rangeView {
	return rangeView{
		Title:   title,
		Prop:    string(act.Prop),
		Min:     act.Histogram.Min,
		Max:     act.Histogram.Max,
		Buckets: act.Histogram.Buckets,
	}
}

// renderErrors counts template render failures — the observable face of the
// 500s below.
var renderErrors = obs.NewCounter("web.render.errors")

// render executes the template into a buffer so a failure can still become a
// proper 500 (headers not yet written) carrying the request ID the error was
// logged under, instead of a silently truncated page.
func (s *Server) render(w http.ResponseWriter, r *http.Request, t *template.Template, data any) {
	var buf bytes.Buffer
	if err := t.Execute(&buf, data); err != nil {
		renderErrors.Inc()
		id := RequestID(r.Context())
		s.log.LogAttrs(r.Context(), slog.LevelError, "template render failed",
			slog.String("id", id),
			slog.String("template", t.Name()),
			slog.String("err", err.Error()),
		)
		http.Error(w, "internal error (request "+id+")", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if _, err := buf.WriteTo(w); err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "response write failed",
			slog.String("id", RequestID(r.Context())),
			slog.String("err", err.Error()),
		)
	}
}

// escape helps templates build URLs.
func escape(s string) string { return url.QueryEscape(s) }

package web

import "html/template"

// funcs available inside all templates.
var tmplFuncs = template.FuncMap{"esc": escape}

const baseCSS = `<style>
body{font-family:system-ui,sans-serif;margin:0;display:flex;min-height:100vh}
nav{width:22rem;background:#f4f1ea;padding:1rem;border-right:1px solid #ddd;flex-shrink:0}
main{padding:1rem 2rem;flex-grow:1}
h1{font-size:1.2rem;margin:.2rem 0 .8rem}
h2{font-size:.95rem;border-bottom:1px solid #c8bfa8;padding-bottom:.2rem;margin:1rem 0 .4rem}
h3{font-size:.85rem;margin:.6rem 0 .2rem;color:#555}
ul{list-style:none;padding-left:.4rem;margin:.2rem 0}
li{margin:.15rem 0;font-size:.9rem}
.constraint{background:#fff;border:1px solid #ccc;border-radius:4px;padding:.15rem .4rem;display:inline-block;margin:.1rem}
.constraint a{text-decoration:none;color:#a33;margin-left:.3rem}
.detail{color:#888;font-size:.8rem}
.bar{background:#7a9;display:inline-block;height:.7rem;vertical-align:middle}
.modes a{font-size:.75rem;color:#777;margin-left:.25rem;text-decoration:none}
form.search input[type=text]{width:12rem}
table{border-collapse:collapse}td{padding:.1rem .5rem;font-size:.9rem;vertical-align:top}
a{color:#236}
</style>`

const searchBar = `<form class="search" id="search" action="/search" method="get">
<input type="text" name="q" placeholder="keywords"><button>Search</button></form>
<p><a href="/home">all items</a> · <a href="/back">⟲ back</a> · <a href="/overview">overview</a></p>`

// collectionTemplate renders the Figure 1 layout: constraints, results,
// navigation pane.
var collectionTemplate = template.Must(template.New("collection").Funcs(tmplFuncs).Parse(
	`<!doctype html><title>{{.Title}}</title>` + baseCSS + `
<nav>
<h1>{{.Title}}</h1>` + searchBar + `
<h2>Query</h2>
{{if .Constraints}}{{range .Constraints}}
<span class="constraint">{{.Text}}
<a href="/rm?i={{.Index}}" title="remove">✕</a>
<a href="/neg?i={{.Index}}" title="negate">¬</a></span>
{{end}}{{else}}<span class="detail">(all items)</span>{{end}}
{{range .Sections}}
<h2>{{.Advisor}}</h2>
{{range .Groups}}{{if .Title}}<h3>{{.Title}}</h3>{{end}}
<ul>
{{range .Suggestions}}<li><a href="/go?k={{.Key}}">{{.Title}}</a>
{{if .Detail}}<span class="detail">({{.Detail}})</span>{{end}}
{{if .IsRefine}}<span class="modes"><a href="/go?k={{.Key}}&mode=exclude">not</a><a href="/go?k={{.Key}}&mode=expand">or</a></span>{{end}}</li>
{{end}}
{{if .Omitted}}<li class="detail">… {{.Omitted}} more</li>{{end}}
</ul>
{{end}}{{end}}
</nav>
<main>
<h2>{{.Total}} items</h2>
<ul>
{{range .Items}}<li><a href="/open?item={{.IRI}}">{{.Label}}</a></li>{{end}}
{{if gt .Total (len .Items)}}<li class="detail">… showing first {{len .Items}}</li>{{end}}
</ul>
</main>`))

// itemTemplate renders an item card with navigable resource values.
var itemTemplate = template.Must(template.New("item").Funcs(tmplFuncs).Parse(
	`<!doctype html><title>{{.Label}}</title>` + baseCSS + `
<nav><h1>{{.Label}}</h1>` + searchBar + `<p class="detail">{{.IRI}}</p>
<p><a href="/">← to collection &amp; suggestions</a></p></nav>
<main>
<h2>{{.Label}}</h2>
<table>
{{range .Attributes}}<tr><td><b>{{.Prop}}</b></td><td>
{{range .Values}}{{if .IRI}}<a href="/open?item={{.IRI}}">{{.Label}}</a> {{else}}{{.Label}} {{end}}{{end}}
</td></tr>{{end}}
</table>
{{if .Similar}}
<h2>Similar by content</h2>
<ul>
{{range .Similar}}<li><a href="/open?item={{.IRI}}">{{.Label}}</a>
<span class="detail">{{.Score}} — {{.Why}}</span></li>{{end}}
</ul>
{{end}}
</main>`))

// overviewTemplate renders the Figure 2 facet overview with count bars.
var overviewTemplate = template.Must(template.New("overview").Funcs(tmplFuncs).Parse(
	`<!doctype html><title>Overview</title>` + baseCSS + `
<nav><h1>Overview</h1>` + searchBar + `<p><a href="/">← back to collection</a></p></nav>
<main>
<h2>Overview of {{.Total}} items</h2>
{{range .Facets}}
<h3>{{.Label}} <span class="detail">({{.Distinct}} values)</span></h3>
<table>
{{range .Values}}<tr><td><a href="/refine?prop={{.Prop}}&vk={{.Key}}">{{.Label}}</a></td>
<td>{{.Count}}</td>
<td><span class="bar" style="width:{{.Width}}px"></span></td></tr>{{end}}
</table>
{{end}}
</main>`))

// rangeTemplate renders the Figure 5 range widget: histogram preview plus a
// bounds form.
var rangeTemplate = template.Must(template.New("range").Funcs(tmplFuncs).Parse(
	`<!doctype html><title>{{.Title}}</title>` + baseCSS + `
<nav><h1>{{.Title}}</h1>` + searchBar + `<p><a href="/">← back</a></p></nav>
<main>
<h2>{{.Title}}</h2>
<p class="detail">observed range: {{.Min}} — {{.Max}}</p>
<p>{{range .Buckets}}<span class="bar" style="width:8px;height:{{. }}px"></span> {{end}}</p>
<form action="/range" method="get">
<input type="hidden" name="prop" value="{{.Prop}}">
from <input type="text" name="lo" value="{{.Min}}">
to <input type="text" name="hi" value="{{.Max}}">
<button>Apply range</button>
</form>
</main>`))

package web

import (
	"io"
	"net/http"
	"net/http/cookiejar"
	"sync"
	"testing"

	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
)

// TestConcurrentRequests drives the server from many browser sessions at
// once — mixed reads and state-mutating navigation — so -race validates the
// session map ('guarded by mu') and everything a request touches downstream
// (blackboard, history, index).
func TestConcurrentRequests(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 200, Seed: 1})
	m := core.Open(g, core.Options{})
	cl := newClient(t, m)

	paths := []string{
		"/",
		"/search?q=walnut",
		"/search?q=cuisine+%3D+Greek",
		"/overview",
		"/back",
		"/home",
	}
	const workers = 6
	const iters = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker is its own browser: a separate cookie jar forces
			// separate server-side sessions created concurrently.
			jar, err := cookiejar.New(nil)
			if err != nil {
				t.Error(err)
				return
			}
			hc := &http.Client{Jar: jar}
			for i := 0; i < iters; i++ {
				path := paths[(w+i)%len(paths)]
				resp, err := hc.Get(cl.srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("read %s: %v", path, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s = %d (worker %d)", path, resp.StatusCode, w)
				}
			}
		}(w)
	}
	wg.Wait()
}

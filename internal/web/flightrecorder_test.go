package web

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
	"magnet/internal/obs"
)

// TestFlightRecorderEndToEnd drives the full observability chain the way
// magnet-server wires it: a request whose navigation step exceeds the slow
// threshold is tail-sampled by the flight recorder, shows up on
// /debug/traces?slow=1 under its request ID, that same ID is the exemplar
// on the request-latency histogram, and /debug/traces/{id}?format=text
// renders the captured span tree.
func TestFlightRecorderEndToEnd(t *testing.T) {
	// Threshold 1ns: every request is "slow". Restore the process-wide
	// recorder's policy afterwards so other tests see the default.
	old := obs.Records.SlowThreshold()
	obs.Records.SetSlowThreshold(time.Nanosecond)
	t.Cleanup(func() { obs.Records.SetSlowThreshold(old) })

	g := recipes.Build(recipes.Config{Recipes: 200, Seed: 1})
	m := core.Open(g, core.Options{})
	t.Cleanup(m.Close)

	// The magnet-server mux shape: app + recorder endpoints.
	mux := http.NewServeMux()
	mux.Handle("/", NewServer(m))
	mux.Handle("/debug/traces", obs.Records.Handler())
	mux.Handle("/debug/traces/", obs.Records.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/"); code != http.StatusOK {
		t.Fatalf("GET / = %d", code)
	}

	// The request must be tail-sampled: newest slow web.request trace.
	code, body := get("/debug/traces?slow=1&name=web.request")
	if code != http.StatusOK {
		t.Fatalf("traces list = %d", code)
	}
	var list struct {
		Traces []struct {
			ID    string `json:"id"`
			Slow  bool   `json:"slow"`
			Spans int    `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("traces list: %v\n%s", err, body)
	}
	if len(list.Traces) == 0 {
		t.Fatal("slow request not retained by the flight recorder")
	}
	tr := list.Traces[0]
	if !tr.Slow || tr.Spans < 2 {
		t.Fatalf("retained trace = %+v, want slow with the step's child spans", tr)
	}

	// The trace ID is the request ID the middleware stamped, and the same
	// ID must sit as the exemplar on the request-latency histogram — the
	// metrics → trace join.
	found := false
	for _, e := range reqNS.Snapshot().Exemplars {
		if e.TraceID == tr.ID {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("trace %s has no matching exemplar on web.request.ns", tr.ID)
	}

	// Full JSON for the trace carries the request's span tree.
	code, body = get("/debug/traces/" + tr.ID)
	if code != http.StatusOK {
		t.Fatalf("trace page = %d", code)
	}
	var rec obs.TraceRecord
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, body)
	}
	if rec.Name != "web.request" || rec.ID != tr.ID {
		t.Fatalf("trace record = name=%q id=%q", rec.Name, rec.ID)
	}

	// ?format=text renders the same record as an indented tree.
	code, body = get("/debug/traces/" + tr.ID + "?format=text")
	if code != http.StatusOK {
		t.Fatalf("text trace = %d", code)
	}
	if !strings.Contains(body, "web.request") || !strings.Contains(body, "session.") {
		t.Errorf("text tree missing request/step spans:\n%s", body)
	}
}

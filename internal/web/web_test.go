package web

import (
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"testing"

	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
	"magnet/internal/datasets/states"
)

// client wraps an httptest server with a cookie jar so a test acts like one
// browser session.
type client struct {
	t   *testing.T
	srv *httptest.Server
	c   *http.Client
}

func newClient(t *testing.T, m *core.Magnet) *client {
	t.Helper()
	srv := httptest.NewServer(NewServer(m))
	t.Cleanup(srv.Close)
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &client{t: t, srv: srv, c: &http.Client{Jar: jar}}
}

func (cl *client) get(path string) (int, string) {
	cl.t.Helper()
	resp, err := cl.c.Get(cl.srv.URL + path)
	if err != nil {
		cl.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		cl.t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func (cl *client) mustGet(path string, wants ...string) string {
	cl.t.Helper()
	code, body := cl.get(path)
	if code != http.StatusOK {
		cl.t.Fatalf("GET %s = %d", path, code)
	}
	for _, w := range wants {
		if !strings.Contains(body, w) {
			cl.t.Fatalf("GET %s missing %q in:\n%.2000s", path, w, body)
		}
	}
	return body
}

func recipeServer(t *testing.T) (*core.Magnet, *client) {
	t.Helper()
	g := recipes.Build(recipes.Config{Recipes: 400, Seed: 1})
	m := core.Open(g, core.Options{})
	return m, newClient(t, m)
}

func TestHomePageRendersCollectionAndPane(t *testing.T) {
	_, cl := recipeServer(t)
	body := cl.mustGet("/", "items", "(all items)", "Refine Collections")
	if !strings.Contains(body, "/open?item=") {
		t.Error("no item links")
	}
}

func TestSearchAndConstraintLifecycle(t *testing.T) {
	_, cl := recipeServer(t)
	body := cl.mustGet("/search?q=walnut", `contains &#34;walnut&#34;`)
	if !strings.Contains(body, "/rm?i=0") || !strings.Contains(body, "/neg?i=0") {
		t.Error("constraint chips missing remove/negate links")
	}
	// Negate, then remove.
	cl.mustGet("/neg?i=0", "NOT contains")
	body = cl.mustGet("/rm?i=0", "(all items)")
	_ = body
}

func TestFollowRefinementSuggestion(t *testing.T) {
	_, cl := recipeServer(t)
	body := cl.mustGet("/search?q=walnut")
	// Extract the first /go link.
	re := regexp.MustCompile(`/go\?k=([^"&]+)"`)
	match := re.FindStringSubmatch(body)
	if match == nil {
		t.Fatal("no suggestion links")
	}
	after := cl.mustGet("/go?k=" + match[1])
	if strings.Contains(after, "suggestion expired") {
		t.Fatal("suggestion key did not resolve")
	}
}

func TestExcludeModeThroughWeb(t *testing.T) {
	_, cl := recipeServer(t)
	body := cl.mustGet("/search?q=walnut")
	// Find a refine suggestion that has mode links.
	re := regexp.MustCompile(`/go\?k=([^"&]+)&(?:amp;)?mode=exclude`)
	match := re.FindStringSubmatch(body)
	if match == nil {
		t.Fatal("no exclude links")
	}
	after := cl.mustGet("/go?k="+match[1]+"&mode=exclude", "NOT ")
	_ = after
}

func TestOpenItemCard(t *testing.T) {
	m, cl := recipeServer(t)
	item := m.Graph().SubjectsOfType(recipes.ClassRecipe)[0]
	body := cl.mustGet("/open?item="+url.QueryEscape(string(item)), "ingredient")
	if !strings.Contains(body, m.Label(item)) {
		t.Error("item label missing")
	}
	// Similar-by-content section with explanations.
	if !strings.Contains(body, "Similar by content") {
		t.Error("similar section missing")
	}
	// Unknown item: 404.
	if code, _ := cl.get("/open?item=http://nope"); code != http.StatusNotFound {
		t.Errorf("unknown item = %d", code)
	}
}

func TestOverviewPage(t *testing.T) {
	_, cl := recipeServer(t)
	body := cl.mustGet("/overview", "Overview of", "cuisine")
	// Values are clickable refinements (Figure 2's purpose).
	re := regexp.MustCompile(`/refine\?prop=([^"&]+)&(?:amp;)?vk=([^"&]+)"`)
	match := re.FindStringSubmatch(body)
	if match == nil {
		t.Fatal("overview values are not clickable")
	}
	after := cl.mustGet("/refine?prop=" + match[1] + "&vk=" + match[2])
	if !strings.Contains(after, `title="remove"`) {
		t.Error("clicking an overview value should add a constraint chip")
	}
}

func TestRefineEndpointModesAndErrors(t *testing.T) {
	m, cl := recipeServer(t)
	prop := url.QueryEscape(string(recipes.PropCuisine))
	vk := url.QueryEscape(recipes.Cuisine("Greek").Key())
	body := cl.mustGet("/refine?prop="+prop+"&vk="+vk+"&mode=exclude", "NOT cuisine")
	_ = body
	_ = m
	if code, _ := cl.get("/refine?prop=&vk=" + vk); code != http.StatusBadRequest {
		t.Errorf("missing prop = %d", code)
	}
	if code, _ := cl.get("/refine?prop=" + prop + "&vk=notakey"); code != http.StatusBadRequest {
		t.Errorf("bad value key = %d", code)
	}
}

func TestRangeWidgetFlow(t *testing.T) {
	g, err := states.Build()
	if err != nil {
		t.Fatal(err)
	}
	states.Annotate(g)
	m := core.Open(g, core.Options{IndexAllSubjects: true})
	cl := newClient(t, m)

	body := cl.mustGet("/")
	re := regexp.MustCompile(`/go\?k=(range[^"&]*)"`)
	match := re.FindStringSubmatch(body)
	if match == nil {
		t.Fatalf("no range suggestion link in:\n%.1500s", body)
	}
	widget := cl.mustGet("/go?k="+match[1], "Apply range", "observed range")
	_ = widget
	// Apply bounds over big states.
	prop := url.QueryEscape(string(states.PropArea))
	after := cl.mustGet("/range?prop="+prop+"&lo=100000&hi=", " items")
	if !strings.Contains(after, "in [100000") && !strings.Contains(after, "≥ 100000") {
		t.Errorf("range constraint missing:\n%.1200s", after)
	}
}

func TestBackAndHome(t *testing.T) {
	_, cl := recipeServer(t)
	cl.mustGet("/search?q=walnut")
	cl.mustGet("/back", "(all items)")
	cl.mustGet("/search?q=salad")
	cl.mustGet("/home", "(all items)")
}

func TestSessionsAreIndependent(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 200, Seed: 1})
	m := core.Open(g, core.Options{})
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	jarA, _ := cookiejar.New(nil)
	jarB, _ := cookiejar.New(nil)
	a := &http.Client{Jar: jarA}
	b := &http.Client{Jar: jarB}

	if _, err := a.Get(srv.URL + "/search?q=walnut"); err != nil {
		t.Fatal(err)
	}
	resp, err := b.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "walnut") {
		t.Error("session B saw session A's query")
	}
}

func TestBadRequests(t *testing.T) {
	_, cl := recipeServer(t)
	if code, _ := cl.get("/rm?i=notanumber"); code != http.StatusBadRequest {
		t.Errorf("bad rm = %d", code)
	}
	if code, _ := cl.get("/range?prop=x&lo=abc"); code != http.StatusBadRequest {
		t.Errorf("bad range = %d", code)
	}
	if code, _ := cl.get("/go?k=doesnotexist"); code != http.StatusGone {
		t.Errorf("expired suggestion = %d", code)
	}
	if code, _ := cl.get("/nosuchpage"); code != http.StatusNotFound {
		t.Errorf("404 = %d", code)
	}
}

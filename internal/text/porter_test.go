package text

import (
	"testing"
	"testing/quick"
)

// Reference pairs from Porter's published vocabulary examples.
func TestStemReferencePairs(t *testing.T) {
	tests := []struct{ in, want string }{
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"ties", "ti"},
		{"caress", "caress"},
		{"cats", "cat"},
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		{"happy", "happi"},
		{"sky", "sky"},
		{"relational", "relat"},
		{"conditional", "condit"},
		{"rational", "ration"},
		{"valenci", "valenc"},
		{"hesitanci", "hesit"},
		{"digitizer", "digit"},
		{"conformabli", "conform"},
		{"radicalli", "radic"},
		{"differentli", "differ"},
		{"vileli", "vile"},
		{"analogousli", "analog"},
		{"vietnamization", "vietnam"},
		{"predication", "predic"},
		{"operator", "oper"},
		{"feudalism", "feudal"},
		{"decisiveness", "decis"},
		{"hopefulness", "hope"},
		{"callousness", "callous"},
		{"formaliti", "formal"},
		{"sensitiviti", "sensit"},
		{"sensibiliti", "sensibl"},
		{"triplicate", "triplic"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electriciti", "electr"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"airliner", "airlin"},
		{"gyroscopic", "gyroscop"},
		{"adjustable", "adjust"},
		{"defensible", "defens"},
		{"irritant", "irrit"},
		{"replacement", "replac"},
		{"adjustment", "adjust"},
		{"dependent", "depend"},
		{"adoption", "adopt"},
		{"homologou", "homolog"},
		{"communism", "commun"},
		{"activate", "activ"},
		{"angulariti", "angular"},
		{"homologous", "homolog"},
		{"effective", "effect"},
		{"bowdlerize", "bowdler"},
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		{"controll", "control"},
		{"roll", "roll"},
		// Domain words from the paper's datasets.
		{"ingredients", "ingredi"},
		{"recipes", "recip"},
		{"cooking", "cook"},
		{"walnuts", "walnut"},
		{"estimation", "estim"},
		{"retrieval", "retriev"},
	}
	for _, tt := range tests {
		if got := Stem(tt.in); got != tt.want {
			t.Errorf("Stem(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStemShortAndNonASCII(t *testing.T) {
	for _, w := range []string{"", "a", "be", "café", "naïve", "c3po"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

// Property: stemming is idempotent for pure ASCII words — a second
// application never changes the result further... Porter is not strictly
// idempotent in theory for all inputs, but it is for stems it produces on
// lowercase letter-only input; we check on a realistic corpus instead of
// arbitrary strings.
func TestStemIdempotentOnCorpus(t *testing.T) {
	corpus := []string{
		"generalization", "abilities", "happiness", "running", "flies",
		"denied", "agreement", "disappointed", "traditional", "references",
		"probabilistic", "maximization", "searching",
		"navigation", "collections", "refinements", "similarity",
	}
	for _, w := range corpus {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not idempotent: %q → %q → %q", w, once, twice)
		}
	}
}

// Property: stems never grow longer than the input plus one ('e' can be
// restored), and are always non-empty for non-empty letter input.
func TestQuickStemBounds(t *testing.T) {
	f := func(raw string) bool {
		// Build a lowercase letter-only word from the raw string.
		w := make([]byte, 0, len(raw))
		for _, r := range raw {
			if r >= 'a' && r <= 'z' {
				w = append(w, byte(r))
			}
		}
		word := string(w)
		got := Stem(word)
		if word == "" {
			return got == ""
		}
		return got != "" && len(got) <= len(word)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Package text implements the text-analysis substrate Magnet's vector space
// model and inverted index are built on: Unicode-aware tokenization,
// stop-word removal, and Porter stemming. The paper (§5) cites the standard
// vector-space improvements — "removing frequently occurring words
// (stop-words), removing common suffixes (stemming)" — and relies on Lucene
// for them; this package provides the same pipeline from scratch.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lower-cased word tokens. A token is a maximal run
// of letters or digits; everything else separates tokens. Apostrophes inside
// words are dropped ("don't" → "dont") so possessives and contractions
// normalize consistently.
func Tokenize(s string) []string {
	if s == "" {
		return nil
	}
	out := make([]string, 0, len(s)/6+1)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'':
			// swallow apostrophes inside words
		default:
			flush()
		}
	}
	flush()
	return out
}

// defaultStopWords is the classic English stop list used by early Lucene
// (StopAnalyzer.ENGLISH_STOP_WORDS) plus a few high-frequency function words.
var defaultStopWords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "an", "and", "are", "as", "at", "be", "but", "by", "for",
		"if", "in", "into", "is", "it", "no", "not", "of", "on", "or",
		"such", "that", "the", "their", "then", "there", "these", "they",
		"this", "to", "was", "will", "with", "from", "has", "have", "had",
		"he", "she", "we", "you", "i", "its", "his", "her", "our", "your",
		"were", "been", "do", "does", "did", "can", "could", "would",
		"should", "about", "all", "also", "am", "any", "because", "how",
		"what", "when", "where", "which", "who", "why", "than", "too",
		"very", "s", "t", "just", "so", "them", "some", "more", "most",
		"other", "only", "over", "same", "up", "out",
	} {
		defaultStopWords[w] = struct{}{}
	}
}

// IsStopWord reports whether the (already lower-cased) token is on the
// default English stop list.
func IsStopWord(tok string) bool {
	_, ok := defaultStopWords[tok]
	return ok
}

// Analyzer converts raw text into index terms. It is a small configurable
// pipeline: tokenize, optionally drop stop words, optionally stem, and drop
// tokens shorter than MinLength.
type Analyzer struct {
	// StopWords disabled when false.
	KeepStopWords bool
	// Stem disabled when false.
	NoStem bool
	// MinLength drops tokens shorter than this many runes (0 keeps all).
	MinLength int
}

// DefaultAnalyzer is the pipeline used across Magnet: stop words removed,
// Porter stemming on, tokens of length ≥ 2.
var DefaultAnalyzer = &Analyzer{MinLength: 2}

// Terms runs the pipeline over s and returns the resulting terms, in order,
// with duplicates retained (callers count frequencies).
func (a *Analyzer) Terms(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, tok := range toks {
		if !a.KeepStopWords && IsStopWord(tok) {
			continue
		}
		if !a.NoStem {
			tok = Stem(tok)
		}
		if a.MinLength > 0 && len([]rune(tok)) < a.MinLength {
			continue
		}
		out = append(out, tok)
	}
	return out
}

// TermCounts runs the pipeline and aggregates term frequencies.
func (a *Analyzer) TermCounts(s string) map[string]int {
	terms := a.Terms(s)
	if len(terms) == 0 {
		return nil
	}
	m := make(map[string]int, len(terms))
	for _, t := range terms {
		m[t]++
	}
	return m
}

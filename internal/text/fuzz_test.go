package text

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize checks the tokenizer's contract on arbitrary (including
// invalid-UTF-8) input: it never panics, every token is a non-empty
// lower-cased run of letters and digits, and tokenization is idempotent —
// re-tokenizing a token returns that token unchanged.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"Walnut Winter Soup",
		"don't DON'T d'on't",
		"  spaced   out\ttabs\nnewlines ",
		"ingredient.group: Dairy, 4 servings!",
		"ÉCLAIR über naïve 北京 Ω",
		"'''",
		"a1b2c3",
		"\x00\xff\xfe broken utf8 \x80",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatalf("Tokenize(%q) produced an empty token", s)
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("Tokenize(%q): token %q contains separator rune %q", s, tok, r)
				}
				if unicode.ToLower(r) != r {
					t.Fatalf("Tokenize(%q): token %q is not lower-cased", s, tok)
				}
			}
			again := Tokenize(tok)
			if len(again) != 1 || again[0] != tok {
				t.Fatalf("Tokenize not idempotent: Tokenize(%q) = %v", tok, again)
			}
		}
		// Joining the tokens and re-tokenizing must reproduce them: the
		// pipeline is stable under its own output.
		joined := strings.Join(toks, " ")
		if got := Tokenize(joined); len(got) != len(toks) {
			t.Fatalf("re-tokenize count %d != %d for %q", len(got), len(toks), s)
		}
	})
}

// FuzzStem checks the Porter stemmer never panics and always returns a
// non-lengthening, deterministic stem for tokenizer-shaped input.
func FuzzStem(f *testing.F) {
	for _, s := range []string{"caresses", "ponies", "relational", "walnuts", "agreed", "一二三", "xx", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := Stem(s)
		if len(got) > len(s) {
			t.Fatalf("Stem(%q) = %q grew the input", s, got)
		}
		if again := Stem(s); again != got {
			t.Fatalf("Stem(%q) nondeterministic: %q vs %q", s, got, again)
		}
	})
}

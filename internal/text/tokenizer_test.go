package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Betty bought some butter", []string{"betty", "bought", "some", "butter"}},
		{"don't stop-me now!", []string{"dont", "stop", "me", "now"}},
		{"e-mail:foo@bar.com", []string{"e", "mail", "foo", "bar", "com"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"MixedCASE Words", []string{"mixedcase", "words"}},
		{"numbers 42 and 3rd", []string{"numbers", "42", "and", "3rd"}},
		{"čaj über café", []string{"čaj", "über", "café"}},
	}
	for _, tt := range tests {
		if got := Tokenize(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "with"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"butter", "recipe", "greek"} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true, want false", w)
		}
	}
}

func TestAnalyzerTermsDefault(t *testing.T) {
	got := DefaultAnalyzer.Terms("The butter was bitter, but Betty bought better butter")
	want := []string{"butter", "bitter", "betti", "bought", "better", "butter"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestAnalyzerKeepStopWordsNoStem(t *testing.T) {
	a := &Analyzer{KeepStopWords: true, NoStem: true}
	got := a.Terms("the running dogs")
	want := []string{"the", "running", "dogs"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestAnalyzerMinLength(t *testing.T) {
	a := &Analyzer{KeepStopWords: true, NoStem: true, MinLength: 3}
	got := a.Terms("go is an odd fit")
	want := []string{"odd", "fit"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTermCounts(t *testing.T) {
	// The paper's §5 example: "Betty bought some butter, but the butter was
	// bitter" — butter appears twice.
	counts := (&Analyzer{NoStem: true, KeepStopWords: true}).TermCounts(
		"Betty bought some butter, but the butter was bitter")
	if counts["butter"] != 2 {
		t.Errorf("butter count = %d, want 2", counts["butter"])
	}
	for _, w := range []string{"betty", "bought", "some", "bitter"} {
		if counts[w] != 1 {
			t.Errorf("%s count = %d, want 1", w, counts[w])
		}
	}
	if (&Analyzer{}).TermCounts("") != nil {
		t.Error("TermCounts of empty string should be nil")
	}
}

// Property: tokenization output tokens are always lowercase and non-empty.
func TestQuickTokenizeInvariants(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: TermCounts totals equal the number of Terms.
func TestQuickTermCountsConsistent(t *testing.T) {
	f := func(s string) bool {
		terms := DefaultAnalyzer.Terms(s)
		counts := DefaultAnalyzer.TermCounts(s)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(terms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Package dataload resolves a dataset specification — a built-in corpus
// name or an N-Triples file — into an annotated graph. It is the one place
// the dataset switch lives: magnet-server serves from it, magnet-build
// compiles segment sets from it, and the two agree byte-for-byte because
// they run the same code with the same parameters.
package dataload

import (
	"fmt"
	"os"

	"magnet/internal/datasets/artstor"
	"magnet/internal/datasets/courses"
	"magnet/internal/datasets/factbook"
	"magnet/internal/datasets/inbox"
	"magnet/internal/datasets/recipes"
	"magnet/internal/datasets/states"
	"magnet/internal/rdf"
)

// Names lists the built-in dataset names Load accepts.
var Names = []string{"recipes", "states", "factbook", "inbox", "artstor", "courses"}

// Spec describes what to load. File, when set, wins over Dataset.
type Spec struct {
	// Dataset is a built-in corpus name (see Names).
	Dataset string
	// File is an N-Triples file path; loads instead of Dataset when set.
	File string
	// Recipes is the recipes corpus size (0 means the paper's 6,444).
	Recipes int
	// Seed is the recipes generator seed (0 means 1).
	Seed int64
}

// Params returns the build parameters that change the loaded graph, for
// recording in a segment manifest (and later compared at open: a reader
// expecting seed 1 must not silently get seed 7's corpus).
func (s Spec) Params() map[string]int64 {
	if s.File != "" || s.Dataset != "recipes" {
		return nil
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	n := int64(s.Recipes)
	if n == 0 {
		n = 6444
	}
	return map[string]int64{"recipes": n, "seed": seed}
}

// Name returns the dataset name recorded in manifests: the built-in name,
// or "file" for N-Triples input.
func (s Spec) Name() string {
	if s.File != "" {
		return "file"
	}
	return s.Dataset
}

// Load resolves the spec. The second result is whether every subject should
// be indexed (core.Options.IndexAllSubjects) — true only for datasets that
// carry no rdf:type triples, like the states CSV import.
func Load(s Spec) (*rdf.Graph, bool, error) {
	if s.File != "" {
		f, err := os.Open(s.File)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		g, err := rdf.ReadNTriples(f)
		return g, false, err
	}
	switch s.Dataset {
	case "recipes":
		return recipes.Build(recipes.Config{Recipes: s.Recipes, Seed: s.Seed}), false, nil
	case "states":
		g, err := states.Build()
		if err != nil {
			return nil, false, err
		}
		states.Annotate(g)
		return g, true, nil
	case "factbook":
		g := factbook.Build(factbook.Config{})
		factbook.Annotate(g)
		return g, false, nil
	case "inbox":
		return inbox.Build(inbox.Config{}), false, nil
	case "artstor":
		return artstor.Build(artstor.Config{HideAccession: true}), false, nil
	case "courses":
		return courses.Build(courses.Config{HideCatalogKey: true}), false, nil
	default:
		return nil, false, fmt.Errorf("unknown dataset %q", s.Dataset)
	}
}

// Package annotate implements the paper's stated future work (§7): "When
// dealing with datasets, it was found that a number of simple annotations
// are often needed such as indicating attribute value types or attribute
// compositions. Heuristic rules or learning approaches to determine such
// annotations will be helpful."
//
// Advisor inspects an unannotated (or partially annotated) graph and
// proposes the schema annotations a schema expert would add: value types
// for stringly-numeric columns (the Figure 7 → Figure 8 upgrade), display
// labels, composition annotations for informative resource-valued
// properties, facet preferences for high-coverage shared-value axes, and
// hidden flags for machine-opaque attributes (the §6.1 OCW/ArtSTOR
// catalog-key problem). Proposals carry confidences and evidence strings;
// Apply writes accepted proposals into the graph as ordinary annotation
// triples.
package annotate

import (
	"fmt"
	"sort"
	"strings"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// Kind classifies a proposal.
type Kind int

const (
	// ValueType proposes a magnet:valueType annotation.
	ValueType Kind = iota
	// Label proposes a magnet:label annotation.
	Label
	// Compose proposes a magnet:compose annotation.
	Compose
	// Facet proposes a magnet:facet annotation.
	Facet
	// Hide proposes a magnet:hidden annotation.
	Hide
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ValueType:
		return "value-type"
	case Label:
		return "label"
	case Compose:
		return "compose"
	case Facet:
		return "facet"
	case Hide:
		return "hide"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Proposal is one suggested annotation.
type Proposal struct {
	Kind Kind
	Prop rdf.IRI
	// ValueType is set for ValueType proposals.
	ValueType schema.ValueType
	// Label is set for Label proposals.
	Label string
	// Confidence in (0, 1]; proposals are sorted by it.
	Confidence float64
	// Evidence is a human-readable justification.
	Evidence string
}

// Config tunes the heuristics.
type Config struct {
	// Sample bounds how many values per property are inspected (0 = 256).
	Sample int
	// MinNumericShare is the fraction of sampled literals that must parse
	// numerically to propose a numeric value type (0 = 0.95).
	MinNumericShare float64
	// MinOpaqueShare is the fraction of values that must look
	// machine-opaque to propose hiding (0 = 0.8).
	MinOpaqueShare float64
}

func (c Config) sample() int {
	if c.Sample <= 0 {
		return 256
	}
	return c.Sample
}

func (c Config) minNumeric() float64 {
	if c.MinNumericShare <= 0 {
		return 0.95
	}
	return c.MinNumericShare
}

func (c Config) minOpaque() float64 {
	if c.MinOpaqueShare <= 0 {
		return 0.8
	}
	return c.MinOpaqueShare
}

// Advise inspects the graph and returns proposals, highest confidence
// first (ties: by kind then property, for determinism). Properties that
// already carry the relevant annotation are skipped.
func Advise(g *rdf.Graph, cfg Config) []Proposal {
	sch := schema.NewStore(g)
	var out []Proposal
	for _, p := range g.Predicates() {
		if sch.Hidden(p) {
			continue
		}
		stats := gather(g, p, cfg.sample())
		out = append(out, adviseValueType(sch, p, stats, cfg)...)
		out = append(out, adviseLabel(sch, p)...)
		out = append(out, adviseCompose(g, sch, p, stats)...)
		out = append(out, adviseFacet(g, sch, p, stats)...)
		out = append(out, adviseHide(sch, p, stats, cfg)...)
	}
	// A property proposed hidden gets no other proposals — hiding wins.
	hidden := make(map[rdf.IRI]bool)
	for _, pr := range out {
		if pr.Kind == Hide {
			hidden[pr.Prop] = true
		}
	}
	filtered := out[:0]
	for _, pr := range out {
		if pr.Kind == Hide || !hidden[pr.Prop] {
			filtered = append(filtered, pr)
		}
	}
	out = filtered

	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Prop < out[j].Prop
	})
	return out
}

// Apply writes the proposals into the graph as annotation triples.
func Apply(g *rdf.Graph, proposals []Proposal) {
	sch := schema.NewStore(g)
	for _, pr := range proposals {
		switch pr.Kind {
		case ValueType:
			sch.SetValueType(pr.Prop, pr.ValueType)
		case Label:
			sch.SetLabel(pr.Prop, pr.Label)
		case Compose:
			sch.SetCompose(pr.Prop)
		case Facet:
			sch.SetFacet(pr.Prop)
		case Hide:
			sch.SetHidden(pr.Prop)
		}
	}
}

// propStats summarizes a property's sampled values.
type propStats struct {
	values     int // distinct values sampled
	subjects   int // subjects carrying the property
	iris       int
	literals   int
	intParse   int // literals parsing as integers
	floatParse int // literals parsing as floats (incl. ints)
	dateParse  int
	opaque     int // literals that look machine-generated
	shared     int // values carried by ≥ 2 subjects
	avgLen     float64
}

func gather(g *rdf.Graph, p rdf.IRI, sample int) propStats {
	var st propStats
	st.subjects = len(g.SubjectsWithProperty(p))
	var totalLen int
	for i, v := range g.ObjectsOf(p) {
		if i >= sample {
			break
		}
		st.values++
		if g.SubjectCount(p, v) >= 2 {
			st.shared++
		}
		switch t := v.(type) {
		case rdf.IRI:
			st.iris++
		case rdf.Literal:
			st.literals++
			totalLen += len(t.Lexical)
			if _, ok := t.Int(); ok {
				st.intParse++
			}
			if t.IsTemporal() {
				st.dateParse++
			} else if _, ok := t.Float(); ok {
				st.floatParse++
			}
			if looksOpaque(t.Lexical) {
				st.opaque++
			}
		}
	}
	if st.literals > 0 {
		st.avgLen = float64(totalLen) / float64(st.literals)
	}
	return st
}

// looksOpaque reports whether a value looks machine-generated rather than
// human-readable: hex-ish runs, no vowels, digit/letter mixes with
// separators, very low vowel density.
func looksOpaque(s string) bool {
	if s == "" {
		return false
	}
	letters, vowels, digits, others := 0, 0, 0, 0
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
			letters++
			switch r | 0x20 {
			case 'a', 'e', 'i', 'o', 'u':
				vowels++
			}
		case r >= '0' && r <= '9':
			digits++
		case r == ' ':
			// spaces read as human text
			return false
		default:
			others++
		}
	}
	if letters == 0 && digits > 0 {
		return false // plain numbers are numeric, not opaque
	}
	if letters > 0 && digits > 0 && others > 0 {
		return true // mixed codes like 0xA010-3
	}
	if letters >= 4 && float64(vowels)/float64(letters) < 0.15 {
		return true // unpronounceable
	}
	return false
}

func adviseValueType(sch *schema.Store, p rdf.IRI, st propStats, cfg Config) []Proposal {
	if sch.AnnotatedValueType(p) != schema.Unknown || st.literals == 0 || st.iris > 0 {
		return nil
	}
	lit := float64(st.literals)
	switch {
	case float64(st.dateParse)/lit >= cfg.minNumeric():
		return []Proposal{{
			Kind: ValueType, Prop: p, ValueType: schema.Date,
			Confidence: float64(st.dateParse) / lit,
			Evidence:   fmt.Sprintf("%d/%d sampled values parse as dates", st.dateParse, st.literals),
		}}
	case float64(st.intParse)/lit >= cfg.minNumeric():
		return []Proposal{{
			Kind: ValueType, Prop: p, ValueType: schema.Integer,
			Confidence: float64(st.intParse) / lit,
			Evidence:   fmt.Sprintf("%d/%d sampled values parse as integers", st.intParse, st.literals),
		}}
	case float64(st.floatParse)/lit >= cfg.minNumeric():
		return []Proposal{{
			Kind: ValueType, Prop: p, ValueType: schema.Float,
			Confidence: float64(st.floatParse) / lit,
			Evidence:   fmt.Sprintf("%d/%d sampled values parse as numbers", st.floatParse, st.literals),
		}}
	}
	return nil
}

func adviseLabel(sch *schema.Store, p rdf.IRI) []Proposal {
	if sch.HasLabel(p) {
		return nil
	}
	label := rdf.PlainName(p)
	// Imported properties often carry path prefixes (csv columns arrive as
	// prop/<header>); label from the final segment only.
	if i := strings.LastIndexByte(label, '/'); i >= 0 && i+1 < len(label) {
		label = label[i+1:]
	}
	if label == "" || label == string(p) {
		return nil // nothing humanizable
	}
	return []Proposal{{
		Kind: Label, Prop: p, Label: label,
		Confidence: 0.5,
		Evidence:   "humanized from the property identifier",
	}}
}

func adviseCompose(g *rdf.Graph, sch *schema.Store, p rdf.IRI, st propStats) []Proposal {
	if sch.Composable(p) || st.values == 0 || st.iris < st.values {
		return nil // only all-resource properties compose
	}
	// Informative targets: sample a few object values and check they carry
	// non-hidden properties beyond rdf:type.
	objs := g.ObjectsOf(p)
	inspected, informative := 0, 0
	for _, o := range objs {
		if inspected >= 8 {
			break
		}
		iri, ok := o.(rdf.IRI)
		if !ok {
			continue
		}
		inspected++
		for _, q := range g.PredicatesOf(iri) {
			if q != rdf.Type && !sch.Hidden(q) && q != rdf.Label {
				informative++
				break
			}
		}
	}
	if inspected == 0 || float64(informative)/float64(inspected) < 0.5 {
		return nil
	}
	return []Proposal{{
		Kind: Compose, Prop: p,
		Confidence: float64(informative) / float64(inspected) * 0.8,
		Evidence: fmt.Sprintf("%d/%d sampled values are resources with further attributes",
			informative, inspected),
	}}
}

func adviseFacet(g *rdf.Graph, sch *schema.Store, p rdf.IRI, st propStats) []Proposal {
	if sch.IsFacet(p) || p == rdf.Type || st.values < 2 || st.subjects < 4 {
		return nil
	}
	// Good facet: values shared across subjects, value domain much smaller
	// than the subject count.
	shareRatio := float64(st.shared) / float64(st.values)
	domainRatio := float64(st.values) / float64(st.subjects)
	if shareRatio < 0.5 || domainRatio > 0.5 {
		return nil
	}
	return []Proposal{{
		Kind: Facet, Prop: p,
		Confidence: shareRatio * (1 - domainRatio),
		Evidence: fmt.Sprintf("%d values across %d subjects, %.0f%% shared",
			st.values, st.subjects, shareRatio*100),
	}}
}

func adviseHide(sch *schema.Store, p rdf.IRI, st propStats, cfg Config) []Proposal {
	if st.literals == 0 {
		return nil
	}
	share := float64(st.opaque) / float64(st.literals)
	if share < cfg.minOpaque() {
		return nil
	}
	return []Proposal{{
		Kind: Hide, Prop: p,
		Confidence: share,
		Evidence: fmt.Sprintf("%d/%d sampled values look machine-generated (%s...)",
			st.opaque, st.literals, clipEvidence(p)),
	}}
}

func clipEvidence(p rdf.IRI) string {
	s := p.LocalName()
	if len(s) > 24 {
		return s[:24]
	}
	return s
}

// Describe renders a proposal for display.
func (pr Proposal) Describe(label func(rdf.IRI) string) string {
	name := label(pr.Prop)
	var what string
	switch pr.Kind {
	case ValueType:
		what = fmt.Sprintf("annotate value type %s", pr.ValueType)
	case Label:
		what = fmt.Sprintf("label as %q", pr.Label)
	case Compose:
		what = "mark composable"
	case Facet:
		what = "prefer as facet"
	case Hide:
		what = "hide from navigation"
	}
	return fmt.Sprintf("%s: %s (%.0f%%, %s)", name, what, pr.Confidence*100,
		strings.TrimSpace(pr.Evidence))
}

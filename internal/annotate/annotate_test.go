package annotate

import (
	"strings"
	"testing"

	"magnet/internal/datasets/courses"
	"magnet/internal/datasets/recipes"
	"magnet/internal/datasets/states"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func proposalsFor(ps []Proposal, kind Kind, prop rdf.IRI) []Proposal {
	var out []Proposal
	for _, p := range ps {
		if p.Kind == kind && p.Prop == prop {
			out = append(out, p)
		}
	}
	return out
}

// The Figure 7 → Figure 8 upgrade, automated: the advisor should propose
// integer value types for the stringly area and admission columns, and
// labels for every property.
func TestAdviseStatesDataset(t *testing.T) {
	g, err := states.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := Advise(g, Config{})

	area := proposalsFor(ps, ValueType, states.PropArea)
	if len(area) != 1 || area[0].ValueType != schema.Integer {
		t.Fatalf("area proposals = %+v", area)
	}
	if area[0].Confidence < 0.95 {
		t.Errorf("area confidence = %v", area[0].Confidence)
	}
	admitted := proposalsFor(ps, ValueType, states.PropAdmitted)
	if len(admitted) != 1 || admitted[0].ValueType != schema.Integer {
		t.Errorf("admitted proposals = %+v", admitted)
	}
	// Bird names are human text: no value-type or hide proposals.
	if got := proposalsFor(ps, ValueType, states.PropBird); got != nil {
		t.Errorf("bird value-type proposals = %+v", got)
	}
	if got := proposalsFor(ps, Hide, states.PropBird); got != nil {
		t.Errorf("bird hide proposals = %+v", got)
	}
	// Labels proposed for unlabeled properties.
	if got := proposalsFor(ps, Label, states.PropBird); len(got) != 1 {
		t.Errorf("bird label proposals = %+v", got)
	}
}

func TestApplyUpgradesStates(t *testing.T) {
	g, err := states.Build()
	if err != nil {
		t.Fatal(err)
	}
	Apply(g, Advise(g, Config{}))
	sch := schema.NewStore(g)
	if sch.ValueType(states.PropArea) != schema.Integer {
		t.Error("area not integer after Apply")
	}
	if !sch.HasLabel(states.PropBird) {
		t.Error("bird not labeled after Apply")
	}
	// Numeric properties now power range widgets.
	found := false
	for _, p := range sch.NumericProperties() {
		if p == states.PropArea {
			found = true
		}
	}
	if !found {
		t.Error("area missing from NumericProperties")
	}
}

// The §6.1 OCW problem, automated: the opaque catalog key should be
// proposed hidden; the human-readable columns should not.
func TestAdviseHidesOpaqueCatalogKey(t *testing.T) {
	g := courses.Build(courses.Config{})
	ps := Advise(g, Config{})
	if got := proposalsFor(ps, Hide, courses.PropCatalogKey); len(got) != 1 {
		t.Fatalf("catalog key hide proposals = %+v", got)
	}
	for _, p := range []rdf.IRI{courses.PropDept, courses.PropInstructor, courses.PropAbout} {
		if got := proposalsFor(ps, Hide, p); got != nil {
			t.Errorf("%s should not be hidden: %+v", p.LocalName(), got)
		}
	}
}

// Composition inference: the recipe ingredient property (resource values
// with informative targets) should be proposed composable on an
// unannotated corpus.
func TestAdviseComposeAndFacets(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 300, SkipAnnotations: true})
	ps := Advise(g, Config{})
	if got := proposalsFor(ps, Compose, recipes.PropIngredient); len(got) != 1 {
		t.Errorf("ingredient compose proposals = %+v", got)
	}
	if got := proposalsFor(ps, Facet, recipes.PropCuisine); len(got) != 1 {
		t.Errorf("cuisine facet proposals = %+v", got)
	}
	// Title is all-distinct: not a facet.
	if got := proposalsFor(ps, Facet, recipes.PropTitle); got != nil {
		t.Errorf("title facet proposals = %+v", got)
	}
	// Servings (typed integers) should get... nothing: typed literals are
	// already effective integers via inference; advisor still proposes the
	// explicit annotation since AnnotatedValueType is empty.
	if got := proposalsFor(ps, ValueType, recipes.PropServings); len(got) != 1 {
		t.Errorf("servings value-type proposals = %+v", got)
	}
}

func TestAdviseSkipsAnnotated(t *testing.T) {
	g, err := states.Build()
	if err != nil {
		t.Fatal(err)
	}
	states.Annotate(g)
	ps := Advise(g, Config{})
	if got := proposalsFor(ps, ValueType, states.PropArea); got != nil {
		t.Errorf("already annotated area proposed again: %+v", got)
	}
	if got := proposalsFor(ps, Label, states.PropBird); got != nil {
		t.Errorf("already labeled bird proposed again: %+v", got)
	}
}

func TestAdviseDeterministicOrder(t *testing.T) {
	g, err := states.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Advise(g, Config{})
	b := Advise(g, Config{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("proposal %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Sorted by confidence.
	for i := 1; i < len(a); i++ {
		if a[i].Confidence > a[i-1].Confidence {
			t.Fatal("not sorted by confidence")
		}
	}
}

func TestLooksOpaque(t *testing.T) {
	opaque := []string{"0xA010-3", "ZXQRT", "kjhgfd", "a1-b2-c3"}
	for _, s := range opaque {
		if !looksOpaque(s) {
			t.Errorf("looksOpaque(%q) = false", s)
		}
	}
	readable := []string{"", "Cardinal", "Olive Oil", "44826", "Fall 2004", "graduate student"}
	for _, s := range readable {
		if looksOpaque(s) {
			t.Errorf("looksOpaque(%q) = true", s)
		}
	}
}

func TestDescribeReadable(t *testing.T) {
	p := Proposal{
		Kind: ValueType, Prop: states.PropArea, ValueType: schema.Integer,
		Confidence: 1, Evidence: "50/50 sampled values parse as integers",
	}
	got := p.Describe(func(r rdf.IRI) string { return r.LocalName() })
	for _, want := range []string{"area", "integer", "100%", "50/50"} {
		if !strings.Contains(got, want) {
			t.Errorf("Describe missing %q: %s", want, got)
		}
	}
}

package segment

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestFile builds a small three-kind segment file on disk and returns
// its path plus the payloads it holds.
func writeTestFile(t *testing.T) (path string, wantB []byte, wantU []uint32, wantF []float64) {
	t.Helper()
	wantB = []byte("hello, columnar world")
	wantU = []uint32{0, 1, 7, 42, 1 << 30}
	wantF = []float64{0, -1.5, 3.14159, 1e300}
	w := NewWriter()
	w.AddBytes("blob", wantB)
	w.AddU32("ids", wantU)
	w.AddF64("weights", wantF)
	w.AddBytes("empty", nil)
	path = filepath.Join(t.TempDir(), "test.seg")
	if _, _, err := w.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path, wantB, wantU, wantF
}

func TestFileRoundTrip(t *testing.T) {
	path, wantB, wantU, wantF := writeTestFile(t)
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()

	b, err := f.Bytes("blob")
	if err != nil || string(b) != string(wantB) {
		t.Errorf("Bytes(blob) = %q, %v; want %q", b, err, wantB)
	}
	u, err := f.U32("ids")
	if err != nil || len(u) != len(wantU) {
		t.Fatalf("U32(ids) = %v, %v; want %v", u, err, wantU)
	}
	for i := range u {
		if u[i] != wantU[i] {
			t.Errorf("ids[%d] = %d, want %d", i, u[i], wantU[i])
		}
	}
	fl, err := f.F64("weights")
	if err != nil || len(fl) != len(wantF) {
		t.Fatalf("F64(weights) = %v, %v; want %v", fl, err, wantF)
	}
	for i := range fl {
		if fl[i] != wantF[i] {
			t.Errorf("weights[%d] = %g, want %g", i, fl[i], wantF[i])
		}
	}
	if e, err := f.Bytes("empty"); err != nil || len(e) != 0 {
		t.Errorf("Bytes(empty) = %v, %v; want empty", e, err)
	}
	if !f.Has("blob") || f.Has("missing") {
		t.Error("Has misreports section presence")
	}
	if err := f.Verify(); err != nil {
		t.Errorf("Verify on clean file: %v", err)
	}
}

func TestKindMismatch(t *testing.T) {
	path, _, _, _ := writeTestFile(t)
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if _, err := f.U32("blob"); err == nil {
		t.Error("U32 over a bytes section should error")
	}
	if _, err := f.F64("ids"); err == nil {
		t.Error("F64 over a u32 section should error")
	}
	if _, err := f.Bytes("missing"); err == nil {
		t.Error("Bytes on a missing section should error")
	}
}

// TestCorruptPayload: flipping a payload byte leaves Open working (header
// and TOC are intact) but must fail Verify.
func TestCorruptPayload(t *testing.T) {
	path, _, _, _ := writeTestFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+2] ^= 0xFF // inside the first payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open after payload flip should succeed (lazy verify): %v", err)
	}
	defer f.Close()
	if err := f.Verify(); err == nil {
		t.Error("Verify must detect a flipped payload byte")
	}
}

// TestCorruptHeader: any bit flip inside the header or TOC must be caught
// at Open, with an error rather than a panic.
func TestCorruptHeader(t *testing.T) {
	path, _, _, _ := writeTestFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 5, 9, 17, 25, 33, len(raw) - 3} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		if _, err := OpenBytes(mut); err == nil {
			t.Errorf("OpenBytes with byte %d flipped: no error", off)
		}
	}
}

func TestTruncation(t *testing.T) {
	path, _, _, _ := writeTestFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, headerSize - 1, headerSize, headerSize + 8, len(raw) / 2, len(raw) - 1} {
		if _, err := OpenBytes(raw[:n]); err == nil {
			t.Errorf("OpenBytes truncated to %d bytes: no error", n)
		}
	}
}

func TestWrongVersion(t *testing.T) {
	path, _, _, _ := writeTestFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the version field and re-sign the header so the version check
	// itself (not the header CRC) rejects the file.
	raw[8] = 99
	binary.LittleEndian.PutUint32(raw[36:], Checksum(raw[:36]))
	if _, err := OpenBytes(raw); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version: err = %v, want version error", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{
		Format:  Version,
		Tool:    "magnet-build",
		Dataset: "recipes",
		Params:  map[string]int64{"recipes": 200, "seed": 1},
		Items:   495,
		Triples: 3731,
		Files:   []ManifestFile{{Name: "graph.seg", Bytes: 1024, CRC: 0xDEADBEEF}},
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if got.Dataset != m.Dataset || got.Items != m.Items || got.Triples != m.Triples ||
		got.Params["recipes"] != 200 || len(got.Files) != 1 || got.Files[0].CRC != m.Files[0].CRC {
		t.Errorf("manifest round trip: got %+v, want %+v", got, m)
	}
}

func TestParseManifestRejects(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"not json":      "{",
		"wrong format":  `{"format": 99, "files": []}`,
		"unknown field": `{"format": 1, "surprise": true}`,
		"negative":      `{"format": 1, "items": -1}`,
		"dup file":      `{"format": 1, "files": [{"name":"a","bytes":1,"crc32c":0},{"name":"a","bytes":2,"crc32c":0}]}`,
		"nameless file": `{"format": 1, "files": [{"name":"","bytes":1,"crc32c":0}]}`,
	}
	for name, in := range cases {
		if _, err := ParseManifest([]byte(in)); err == nil {
			t.Errorf("%s: ParseManifest accepted %q", name, in)
		}
	}
}

// TestBuildDirMissingFile: a set with a data file deleted must fail OpenDir.
func TestOpenDirMissingFile(t *testing.T) {
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Error("OpenDir on an empty directory should error")
	}
}

package segment

import (
	"os"
	"testing"
)

// FuzzSegmentHeader feeds arbitrary bytes through the segment-file parser.
// The invariant: OpenBytes either succeeds or returns an error — it must
// never panic, however the header, TOC, or section frames are mangled. On
// success, every declared section must also be readable without panicking.
func FuzzSegmentHeader(f *testing.F) {
	// Seed with a small valid file plus systematic mutations of it, so the
	// fuzzer starts at the interesting parse paths rather than the magic
	// check.
	w := NewWriter()
	w.AddBytes("blob", []byte("seed payload"))
	w.AddU32("ids", []uint32{1, 2, 3})
	w.AddF64("weights", []float64{0.5, -2})
	path := f.TempDir() + "/seed.seg"
	if _, _, err := w.WriteFile(path); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:headerSize])
	f.Add(raw[:len(raw)-1])
	for _, off := range []int{0, 8, 16, 36, headerSize, len(raw) - 2} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xA5
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte(Magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := OpenBytes(data)
		if err != nil {
			return
		}
		for _, name := range file.Sections() {
			// Readers must tolerate any kind without panicking.
			file.Bytes(name)
			file.U32(name)
			file.F64(name)
		}
		file.Verify()
		file.Close()
	})
}

// FuzzManifest feeds arbitrary bytes through the manifest parser: clean
// error or valid manifest, never a panic.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{"format":1,"tool":"magnet-build","dataset":"recipes","params":{"recipes":200,"seed":1},"indexAllSubjects":false,"items":495,"triples":3731,"files":[{"name":"graph.seg","bytes":143744,"crc32c":4012441468}]}`))
	f.Add([]byte(`{"format":1,"files":[]}`))
	f.Add([]byte(`{"format":99}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		if m.Format != Version {
			t.Errorf("ParseManifest accepted format %d", m.Format)
		}
	})
}

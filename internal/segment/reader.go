package segment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// File is an opened segment file: the raw mapping plus its parsed table of
// contents. Section accessors return zero-copy slices into the mapping;
// they stay valid until Close. Opening is O(sections): the header and TOC
// are checksum-verified, section payloads are not (call Verify for the
// full O(bytes) pass — magnet-build does after writing, `make check` does
// in its corruption test).
type File struct {
	path     string
	data     []byte
	unmap    func() error
	sections map[string]Section
	// Names in TOC order, for Verify diagnostics.
	order []string
}

// Open maps the segment file at path read-only and parses its header and
// table of contents. Corrupt or truncated files yield errors, never panics.
func Open(path string) (*File, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	f := &File{path: path, data: data, unmap: unmap}
	if err := f.parse(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	return f, nil
}

// OpenBytes parses an in-memory segment image (tests and fuzzing).
func OpenBytes(data []byte) (*File, error) {
	f := &File{path: "<bytes>", data: data}
	if err := f.parse(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *File) parse() error {
	size := uint64(len(f.data))
	h, err := parseHeader(f.data, size)
	if err != nil {
		return err
	}
	toc := f.data[h.tocOff : h.tocOff+h.tocLen]
	if got := Checksum(toc); got != h.tocCRC {
		return fmt.Errorf("table of contents checksum mismatch (got %08x, want %08x)", got, h.tocCRC)
	}
	var sections []Section
	if err := json.Unmarshal(toc, &sections); err != nil {
		return fmt.Errorf("parse table of contents: %w", err)
	}
	f.sections = make(map[string]Section, len(sections))
	for _, s := range sections {
		if s.Name == "" {
			return fmt.Errorf("section with empty name")
		}
		if _, dup := f.sections[s.Name]; dup {
			return fmt.Errorf("duplicate section %q", s.Name)
		}
		if s.Off < headerSize || s.Off > size || s.Len > size-s.Off {
			return fmt.Errorf("section %q out of range (off=%d len=%d size=%d)", s.Name, s.Off, s.Len, size)
		}
		if s.Off%align != 0 {
			return fmt.Errorf("section %q misaligned (off=%d)", s.Name, s.Off)
		}
		if s.Len%uint64(s.Kind.elemSize()) != 0 {
			return fmt.Errorf("section %q length %d not a multiple of %s element size", s.Name, s.Len, s.Kind)
		}
		f.sections[s.Name] = s
		f.order = append(f.order, s.Name)
	}
	return nil
}

// Close unmaps the file. Section slices obtained earlier become invalid.
func (f *File) Close() error {
	f.sections = nil
	if f.unmap != nil {
		u := f.unmap
		f.unmap = nil
		f.data = nil
		return u()
	}
	f.data = nil
	return nil
}

func (f *File) section(name string, kind Kind) ([]byte, error) {
	s, ok := f.sections[name]
	if !ok {
		return nil, fmt.Errorf("segment: %s: no section %q", f.path, name)
	}
	if s.Kind != kind {
		return nil, fmt.Errorf("segment: %s: section %q is %s, not %s", f.path, name, s.Kind, kind)
	}
	return f.data[s.Off : s.Off+s.Len], nil
}

// Bytes returns the named opaque byte section.
func (f *File) Bytes(name string) ([]byte, error) { return f.section(name, KindBytes) }

// U32 returns the named []uint32 section as a zero-copy slice cast.
func (f *File) U32(name string) ([]uint32, error) {
	b, err := f.section(name, KindU32)
	if err != nil {
		return nil, err
	}
	s, err := castU32(b)
	if err != nil {
		return nil, fmt.Errorf("segment: %s: section %q: %w", f.path, name, err)
	}
	return s, nil
}

// F64 returns the named []float64 section as a zero-copy slice cast.
func (f *File) F64(name string) ([]float64, error) {
	b, err := f.section(name, KindF64)
	if err != nil {
		return nil, err
	}
	s, err := castF64(b)
	if err != nil {
		return nil, fmt.Errorf("segment: %s: section %q: %w", f.path, name, err)
	}
	return s, nil
}

// Has reports whether the file carries the named section.
func (f *File) Has(name string) bool {
	_, ok := f.sections[name]
	return ok
}

// Sections returns the section names in table-of-contents order.
func (f *File) Sections() []string {
	return append([]string(nil), f.order...)
}

// Verify checksums every section payload against the table of contents —
// the O(bytes) integrity pass deliberately kept off the open path.
func (f *File) Verify() error {
	for _, name := range f.order {
		s := f.sections[name]
		if got := Checksum(f.data[s.Off : s.Off+s.Len]); got != s.CRC {
			return fmt.Errorf("segment: %s: section %q checksum mismatch (got %08x, want %08x)", f.path, name, got, s.CRC)
		}
	}
	return nil
}

// Size returns the mapped file size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Manifest identifies a segment set: what was compiled, by what, with which
// parameters, and the integrity data for each file. It is the first thing
// a reader consults and the only human-readable piece of the format.
type Manifest struct {
	// Format is the segment format version (must equal Version).
	Format int `json:"format"`
	// Tool names the producer, e.g. "magnet-build".
	Tool string `json:"tool"`
	// Dataset is the compiled dataset name ("recipes", "inbox", ...) or
	// "file" for N-Triples input.
	Dataset string `json:"dataset"`
	// Params records build parameters that change the compiled output
	// (corpus size, seed), so readers can reject mismatched expectations.
	Params map[string]int64 `json:"params,omitempty"`
	// IndexAllSubjects mirrors core.Options.IndexAllSubjects at build time;
	// open applies it so the item universe matches the build.
	IndexAllSubjects bool `json:"indexAllSubjects"`
	// Shard and Shards mark a per-shard set in a scatter-gather layout
	// (this directory serves shard Shard of Shards); both zero for a
	// whole-corpus set. The assignment function is ids.Shard and is
	// frozen, so any reader can validate the partition.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
	// Items and Triples are corpus statistics for display and sanity checks.
	Items   int `json:"items"`
	Triples int `json:"triples"`
	// Files lists every data file with its size and whole-file CRC32-C.
	Files []ManifestFile `json:"files"`
}

// ManifestFile is one data file entry in a manifest.
type ManifestFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	CRC   uint32 `json:"crc32c"`
}

// ParseManifest decodes and validates manifest JSON. Errors are clean for
// any input (fuzzed in FuzzManifest).
func ParseManifest(b []byte) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("segment: parse manifest: %w", err)
	}
	if m.Format != Version {
		return Manifest{}, fmt.Errorf("segment: manifest format %d not supported (want %d)", m.Format, Version)
	}
	if m.Items < 0 || m.Triples < 0 {
		return Manifest{}, fmt.Errorf("segment: manifest has negative counts (items=%d triples=%d)", m.Items, m.Triples)
	}
	if m.Shards < 0 || m.Shard < 0 || (m.Shards > 0 && m.Shard >= m.Shards) {
		return Manifest{}, fmt.Errorf("segment: manifest shard %d of %d invalid", m.Shard, m.Shards)
	}
	seen := make(map[string]bool, len(m.Files))
	for _, f := range m.Files {
		if f.Name == "" || f.Bytes < 0 {
			return Manifest{}, fmt.Errorf("segment: manifest file entry %+v invalid", f)
		}
		if seen[f.Name] {
			return Manifest{}, fmt.Errorf("segment: manifest lists %q twice", f.Name)
		}
		seen[f.Name] = true
	}
	return m, nil
}

// ReadManifest loads and validates dir's manifest.
func ReadManifest(dir string) (Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	return ParseManifest(b)
}

package segment

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Writer accumulates named typed sections and serializes them as one
// segment file. Sections are written in Add order, each padded to the
// format alignment; the JSON table of contents and the fixed header frame
// them. Writers are single-use.
type Writer struct {
	sections []Section
	payloads [][]byte
}

// NewWriter returns an empty segment-file writer.
func NewWriter() *Writer { return &Writer{} }

func (w *Writer) add(name string, kind Kind, payload []byte) {
	w.sections = append(w.sections, Section{Name: name, Kind: kind, Len: uint64(len(payload)), CRC: Checksum(payload)})
	w.payloads = append(w.payloads, payload)
}

// AddBytes adds an opaque byte section.
func (w *Writer) AddBytes(name string, b []byte) { w.add(name, KindBytes, b) }

// AddU32 adds a []uint32 section (host byte order; the header records it).
func (w *Writer) AddU32(name string, s []uint32) { w.add(name, KindU32, u32Bytes(s)) }

// AddF64 adds a []float64 section.
func (w *Writer) AddF64(name string, s []float64) { w.add(name, KindF64, f64Bytes(s)) }

// WriteFile lays the segment out at path (atomically, via a temp file and
// rename) and returns the file's byte size and whole-file CRC32-C for the
// manifest.
func (w *Writer) WriteFile(path string) (size int64, crc uint32, err error) {
	// Assign aligned offsets.
	off := uint64(headerSize)
	off = alignUp(off)
	for i := range w.sections {
		w.sections[i].Off = off
		off = alignUp(off + w.sections[i].Len)
	}
	toc, err := json.Marshal(w.sections)
	if err != nil {
		return 0, 0, fmt.Errorf("segment: marshal toc: %w", err)
	}
	h := header{
		version: Version,
		tocOff:  off,
		tocLen:  uint64(len(toc)),
		tocCRC:  Checksum(toc),
	}
	if hostLittleEndian() {
		h.flags |= flagLittleEndian
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, err
	}
	defer os.Remove(tmp)
	sum := crcWriter{w: bufio.NewWriterSize(f, 1<<20)}
	write := func(b []byte) {
		if err == nil {
			_, err = sum.Write(b)
		}
	}
	write(putHeader(h))
	pos := uint64(headerSize)
	var pad [align]byte
	for i, s := range w.sections {
		if s.Off > pos {
			write(pad[:s.Off-pos])
			pos = s.Off
		}
		write(w.payloads[i])
		pos += s.Len
	}
	if h.tocOff > pos {
		write(pad[:h.tocOff-pos])
		pos = h.tocOff
	}
	write(toc)
	pos += uint64(len(toc))
	if err == nil {
		err = sum.w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, 0, err
	}
	return int64(pos), sum.crc, nil
}

// crcWriter tees writes into a running whole-file checksum.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (c *crcWriter) Write(b []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crcTable, b)
	return c.w.Write(b)
}

func alignUp(v uint64) uint64 { return (v + align - 1) &^ uint64(align-1) }

// WriteManifest serializes the manifest into dir.
func WriteManifest(dir string, m Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("segment: marshal manifest: %w", err)
	}
	b = append(b, '\n')
	return os.WriteFile(filepath.Join(dir, ManifestName), b, 0o644)
}

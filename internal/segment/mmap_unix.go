//go:build linux || darwin

package segment

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. The returned unmap function releases the
// mapping. Empty files map to an empty (unmapped) slice.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

package segment

// Segment-set assembly: the layer that maps the engine's columnar images
// (rdf.GraphColumns, index.TextColumns, index.VectorColumns, the item
// universe, numeric range statistics) onto segment files and back.
//
// A set directory holds:
//
//	MANIFEST.json  what was compiled, parameters, per-file checksums
//	graph.seg      triple store: interners, POS and SPO indexes
//	text.seg       inverted text index: postings, df, surfaces, doc columns
//	vectors.seg    vector store: sparse vectors, df, retrieval postings
//	meta.seg       item universe posting, numeric range statistics
//
// BuildDir writes all four files plus the manifest; OpenDir maps them and
// reassembles the column structs as zero-copy slices into the mappings.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"magnet/internal/ids"
	"magnet/internal/index"
	"magnet/internal/rdf"
)

// Segment file names within a set directory.
const (
	GraphSeg   = "graph.seg"
	TextSeg    = "text.seg"
	VectorsSeg = "vectors.seg"
	MetaSeg    = "meta.seg"
)

// NumericRange is one serialized vsm numeric range statistic. The segment
// package stays below internal/vsm in the import graph, so the conversion
// to vsm.Range happens in core.
type NumericRange struct {
	Key   string  `json:"key"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// Data is everything a segment set persists, in columnar form.
type Data struct {
	Dataset          string
	Params           map[string]int64
	IndexAllSubjects bool
	// Shard and Shards identify a per-shard set in a scatter-gather
	// layout: this directory holds shard Shard of Shards (by ids.Shard
	// over the dense ID space). Shards == 0 marks a whole-corpus set.
	Shard  int
	Shards int
	Items            []uint32 // sorted item universe (graph subject IDs)
	Graph            rdf.GraphColumns
	Text             index.TextColumns
	Vectors          index.VectorColumns
	Ranges           []NumericRange
}

// Set is an opened segment set: the reassembled columns plus the mapped
// files backing them. Column slices alias the mappings and stay valid until
// Close.
type Set struct {
	Dir      string
	Manifest Manifest
	Data     Data
	files    []*File
}

// BuildDir writes the segment set for d into dir (created if needed) and
// returns the manifest it wrote. Files are written atomically; the manifest
// is written last, so a crashed build never yields an openable set.
func BuildDir(dir string, d Data) (Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, err
	}
	m := Manifest{
		Format:           Version,
		Tool:             "magnet-build",
		Dataset:          d.Dataset,
		Params:           d.Params,
		IndexAllSubjects: d.IndexAllSubjects,
		Shard:            d.Shard,
		Shards:           d.Shards,
		Items:            len(d.Items),
		Triples:          int(d.Graph.Triples),
	}
	write := func(name string, fill func(w *Writer) error) error {
		w := NewWriter()
		if err := fill(w); err != nil {
			return err
		}
		size, crc, err := w.WriteFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("segment: write %s: %w", name, err)
		}
		m.Files = append(m.Files, ManifestFile{Name: name, Bytes: size, CRC: crc})
		return nil
	}
	if err := write(GraphSeg, func(w *Writer) error { addGraph(w, d.Graph); return nil }); err != nil {
		return Manifest{}, err
	}
	if err := write(TextSeg, func(w *Writer) error { addText(w, d.Text); return nil }); err != nil {
		return Manifest{}, err
	}
	if err := write(VectorsSeg, func(w *Writer) error { addVectors(w, d.Vectors); return nil }); err != nil {
		return Manifest{}, err
	}
	if err := write(MetaSeg, func(w *Writer) error { return addMeta(w, d) }); err != nil {
		return Manifest{}, err
	}
	if err := WriteManifest(dir, m); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

func addInterner(w *Writer, prefix string, c ids.Columns) {
	w.AddU32(prefix+".off", c.Off)
	w.AddBytes(prefix+".blob", c.Blob)
	w.AddU32(prefix+".sorted", c.Sorted)
}

func addGraph(w *Writer, c rdf.GraphColumns) {
	addInterner(w, "subj", c.Subj)
	w.AddU32("subj.live", c.SubjLive)
	w.AddU32("pred.off", c.PredOff)
	w.AddBytes("pred.blob", c.PredBlob)
	w.AddU32("term.off", c.TermOff)
	w.AddBytes("term.blob", c.TermBlob)
	w.AddU32("pos.valstart", c.PosValStart)
	w.AddU32("pos.valterm", c.PosValTerm)
	w.AddU32("pos.poststart", c.PosPostStart)
	w.AddU32("pos.post", c.PosPost)
	w.AddU32("spo.predstart", c.SpoPredStart)
	w.AddU32("spo.pred", c.SpoPred)
	w.AddU32("spo.objstart", c.SpoObjStart)
	w.AddU32("spo.obj", c.SpoObj)
}

func addText(w *Writer, c index.TextColumns) {
	addInterner(w, "docs", c.Docs)
	w.AddU32("live", []uint32{c.Live})
	w.AddU32("term.off", c.TermOff)
	w.AddBytes("term.blob", c.TermBlob)
	w.AddU32("field.off", c.FieldOff)
	w.AddBytes("field.blob", c.FieldBlob)
	w.AddU32("surf.off", c.SurfOff)
	w.AddBytes("surf.blob", c.SurfBlob)
	w.AddU32("post.fieldstart", c.PostFieldStart)
	w.AddU32("post.field", c.PostField)
	w.AddU32("post.start", c.PostStart)
	w.AddU32("post.dns", c.PostDNS)
	w.AddU32("post.tfs", c.PostTFS)
	w.AddU32("df.start", c.DFStart)
	w.AddU32("df.dns", c.DFDNS)
	w.AddU32("doc.fieldstart", c.DocFieldStart)
	w.AddU32("doc.field", c.DocField)
	w.AddU32("doc.termstart", c.DocTermStart)
	w.AddU32("doc.term", c.DocTerm)
	w.AddU32("doc.tf", c.DocTF)
}

func addVectors(w *Writer, c index.VectorColumns) {
	addInterner(w, "docs", c.Docs)
	addInterner(w, "terms", c.Terms)
	w.AddU32("live.dns", c.LiveDNS)
	w.AddU32("doc.start", c.DocStart)
	w.AddU32("doc.term", c.DocTerm)
	w.AddF64("doc.freq", c.DocFreq)
	w.AddU32("df", c.DF)
	w.AddBytes("pinned", c.Pinned)
	w.AddU32("post.start", c.PostStart)
	w.AddU32("post.dns", c.PostDNS)
}

func addMeta(w *Writer, d Data) error {
	w.AddU32("items", d.Items)
	ranges := append([]NumericRange(nil), d.Ranges...)
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].Key < ranges[j].Key })
	b, err := json.Marshal(ranges)
	if err != nil {
		return fmt.Errorf("segment: marshal ranges: %w", err)
	}
	w.AddBytes("ranges", b)
	return nil
}

// sectionReader accumulates the first error across section reads, so
// reassembly reads linearly without per-call error plumbing.
type sectionReader struct {
	f   *File
	err error
}

func (r *sectionReader) u32(name string) []uint32 {
	if r.err != nil {
		return nil
	}
	s, err := r.f.U32(name)
	r.err = err
	return s
}

func (r *sectionReader) bytes(name string) []byte {
	if r.err != nil {
		return nil
	}
	b, err := r.f.Bytes(name)
	r.err = err
	return b
}

func (r *sectionReader) interner(prefix string) ids.Columns {
	return ids.Columns{
		Off:    r.u32(prefix + ".off"),
		Blob:   r.bytes(prefix + ".blob"),
		Sorted: r.u32(prefix + ".sorted"),
	}
}

// OpenDir maps the segment set in dir and reassembles its columns. Open
// cost is O(1) in the corpus size: headers and tables of contents are
// checksum-verified, payloads are mapped but not read (call Verify for the
// full integrity pass).
func OpenDir(dir string) (*Set, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Set{Dir: dir, Manifest: man}
	s.Data.Dataset = man.Dataset
	s.Data.Params = man.Params
	s.Data.IndexAllSubjects = man.IndexAllSubjects
	s.Data.Shard = man.Shard
	s.Data.Shards = man.Shards
	s.Data.Graph.Triples = uint64(man.Triples)

	open := func(name string) (*sectionReader, error) {
		f, err := Open(filepath.Join(dir, name))
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		s.files = append(s.files, f)
		return &sectionReader{f: f}, nil
	}
	fail := func(name string, err error) (*Set, error) {
		_ = s.Close()
		return nil, fmt.Errorf("segment: %s: %w", filepath.Join(dir, name), err)
	}

	r, err := open(GraphSeg)
	if err != nil {
		return nil, err
	}
	g := &s.Data.Graph
	g.Subj = r.interner("subj")
	g.SubjLive = r.u32("subj.live")
	g.PredOff = r.u32("pred.off")
	g.PredBlob = r.bytes("pred.blob")
	g.TermOff = r.u32("term.off")
	g.TermBlob = r.bytes("term.blob")
	g.PosValStart = r.u32("pos.valstart")
	g.PosValTerm = r.u32("pos.valterm")
	g.PosPostStart = r.u32("pos.poststart")
	g.PosPost = r.u32("pos.post")
	g.SpoPredStart = r.u32("spo.predstart")
	g.SpoPred = r.u32("spo.pred")
	g.SpoObjStart = r.u32("spo.objstart")
	g.SpoObj = r.u32("spo.obj")
	if r.err != nil {
		return fail(GraphSeg, r.err)
	}

	if r, err = open(TextSeg); err != nil {
		return nil, err
	}
	t := &s.Data.Text
	t.Docs = r.interner("docs")
	if live := r.u32("live"); len(live) == 1 {
		t.Live = live[0]
	} else if r.err == nil {
		r.err = fmt.Errorf("live-count section has %d entries, want 1", len(live))
	}
	t.TermOff = r.u32("term.off")
	t.TermBlob = r.bytes("term.blob")
	t.FieldOff = r.u32("field.off")
	t.FieldBlob = r.bytes("field.blob")
	t.SurfOff = r.u32("surf.off")
	t.SurfBlob = r.bytes("surf.blob")
	t.PostFieldStart = r.u32("post.fieldstart")
	t.PostField = r.u32("post.field")
	t.PostStart = r.u32("post.start")
	t.PostDNS = r.u32("post.dns")
	t.PostTFS = r.u32("post.tfs")
	t.DFStart = r.u32("df.start")
	t.DFDNS = r.u32("df.dns")
	t.DocFieldStart = r.u32("doc.fieldstart")
	t.DocField = r.u32("doc.field")
	t.DocTermStart = r.u32("doc.termstart")
	t.DocTerm = r.u32("doc.term")
	t.DocTF = r.u32("doc.tf")
	if r.err != nil {
		return fail(TextSeg, r.err)
	}

	if r, err = open(VectorsSeg); err != nil {
		return nil, err
	}
	v := &s.Data.Vectors
	v.Docs = r.interner("docs")
	v.Terms = r.interner("terms")
	v.LiveDNS = r.u32("live.dns")
	v.DocStart = r.u32("doc.start")
	v.DocTerm = r.u32("doc.term")
	if r.err == nil {
		v.DocFreq, r.err = r.f.F64("doc.freq")
	}
	v.DF = r.u32("df")
	v.Pinned = r.bytes("pinned")
	v.PostStart = r.u32("post.start")
	v.PostDNS = r.u32("post.dns")
	if r.err != nil {
		return fail(VectorsSeg, r.err)
	}

	if r, err = open(MetaSeg); err != nil {
		return nil, err
	}
	s.Data.Items = r.u32("items")
	rangesJSON := r.bytes("ranges")
	if r.err == nil {
		r.err = json.Unmarshal(rangesJSON, &s.Data.Ranges)
	}
	if r.err != nil {
		return fail(MetaSeg, r.err)
	}
	return s, nil
}

// Close unmaps every file in the set. Column slices become invalid.
func (s *Set) Close() error {
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = nil
	return first
}

// Verify runs the full O(bytes) integrity pass over the set: every
// section's payload checksum, plus each file's whole-file checksum and size
// against the manifest.
func (s *Set) Verify() error {
	byName := make(map[string]ManifestFile, len(s.Manifest.Files))
	for _, mf := range s.Manifest.Files {
		byName[mf.Name] = mf
	}
	for _, f := range s.files {
		if err := f.Verify(); err != nil {
			return err
		}
		name := filepath.Base(f.path)
		mf, ok := byName[name]
		if !ok {
			return fmt.Errorf("segment: %s not listed in manifest", name)
		}
		if f.Size() != mf.Bytes {
			return fmt.Errorf("segment: %s is %d bytes, manifest says %d", name, f.Size(), mf.Bytes)
		}
		if got := Checksum(f.data); got != mf.CRC {
			return fmt.Errorf("segment: %s whole-file checksum mismatch (got %08x, want %08x)", name, got, mf.CRC)
		}
	}
	return nil
}

// Package segment implements Magnet's persistent immutable index segments:
// a versioned, checksummed, mmap-ready on-disk columnar format holding the
// engine's full dense-ID plane — interner string tables, per-predicate
// sorted posting lists, text-index postings and per-document term columns,
// and per-attribute vector columns — written once by magnet-build and
// opened read-only with O(1) work (no per-element decode; sections are
// direct slice casts into the mapped file).
//
// A segment set is a directory:
//
//	MANIFEST.json   format version, dataset identity, file checksums
//	graph.seg       RDF graph columns (interners, SPO/POS indexes)
//	text.seg        text-index columns (postings, doc fields, surfaces)
//	vectors.seg     vector-store columns (doc vectors, df, postings)
//	meta.seg        item universe, numeric-range statistics
//
// Each .seg file is a fixed binary header, 8-byte-aligned typed sections,
// and a JSON table of contents; see DESIGN.md "Persistent segments" for
// the layout and versioning rules.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"unsafe"
)

// Format constants. Bump Version on any incompatible layout change; readers
// reject files whose version they do not understand.
const (
	// Magic opens every segment file.
	Magic = "MAGSEG\x00\x01"
	// Version is the current segment format version.
	Version = 1
	// ManifestName is the manifest file inside a segment directory.
	ManifestName = "MANIFEST.json"
	// headerSize is the fixed on-disk header: magic[8] version[4] flags[4]
	// tocOff[8] tocLen[8] tocCRC[4] headerCRC[4].
	headerSize = 40
	// align is the section payload alignment. float64 and uint64 columns
	// require 8-byte alignment for direct slice casts; mmap bases are page
	// aligned, so aligning section offsets suffices.
	align = 8
)

// Header flags.
const (
	// flagLittleEndian records the byte order sections were written in.
	// Readers on a mismatched host refuse the file rather than decode per
	// element.
	flagLittleEndian = 1 << 0
)

// crcTable is the Castagnoli polynomial, the usual choice for storage
// checksums (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C of b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// Kind is a section's element type. It fixes the width and alignment of
// the payload and which accessor may read it.
type Kind uint32

const (
	// KindBytes is an opaque byte section (string-table blobs, bitsets).
	KindBytes Kind = iota
	// KindU32 is a little-endian []uint32 section.
	KindU32
	// KindF64 is a little-endian []float64 section.
	KindF64
)

func (k Kind) String() string {
	switch k {
	case KindBytes:
		return "bytes"
	case KindU32:
		return "u32"
	case KindF64:
		return "f64"
	default:
		return fmt.Sprintf("kind(%d)", uint32(k))
	}
}

func (k Kind) elemSize() int {
	switch k {
	case KindU32:
		return 4
	case KindF64:
		return 8
	default:
		return 1
	}
}

// Section is one table-of-contents entry: a named, typed, checksummed byte
// range of the file. Offsets are absolute and align-multiple.
type Section struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	Off  uint64 `json:"off"`
	Len  uint64 `json:"len"` // payload bytes
	CRC  uint32 `json:"crc"` // CRC32-C of the payload
}

// header is the parsed fixed-size file header.
type header struct {
	version uint32
	flags   uint32
	tocOff  uint64
	tocLen  uint64
	tocCRC  uint32
}

// hostLittleEndian reports the byte order of this process.
func hostLittleEndian() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}

// putHeader serializes h into a headerSize buffer, including the trailing
// header CRC.
func putHeader(h header) []byte {
	b := make([]byte, headerSize)
	copy(b, Magic)
	binary.LittleEndian.PutUint32(b[8:], h.version)
	binary.LittleEndian.PutUint32(b[12:], h.flags)
	binary.LittleEndian.PutUint64(b[16:], h.tocOff)
	binary.LittleEndian.PutUint64(b[24:], h.tocLen)
	binary.LittleEndian.PutUint32(b[32:], h.tocCRC)
	binary.LittleEndian.PutUint32(b[36:], Checksum(b[:36]))
	return b
}

// parseHeader validates the fixed header fields. It never panics: every
// length and offset is checked against the file size before use.
func parseHeader(b []byte, fileSize uint64) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("segment: file too short for header (%d bytes)", len(b))
	}
	if string(b[:8]) != Magic {
		return h, fmt.Errorf("segment: bad magic %q", b[:8])
	}
	if got, want := binary.LittleEndian.Uint32(b[36:40]), Checksum(b[:36]); got != want {
		return h, fmt.Errorf("segment: header checksum mismatch (got %08x, want %08x)", got, want)
	}
	h.version = binary.LittleEndian.Uint32(b[8:])
	h.flags = binary.LittleEndian.Uint32(b[12:])
	h.tocOff = binary.LittleEndian.Uint64(b[16:])
	h.tocLen = binary.LittleEndian.Uint64(b[24:])
	h.tocCRC = binary.LittleEndian.Uint32(b[32:])
	if h.version != Version {
		return h, fmt.Errorf("segment: format version %d not supported (want %d)", h.version, Version)
	}
	if (h.flags&flagLittleEndian != 0) != hostLittleEndian() {
		return h, fmt.Errorf("segment: byte-order mismatch between file and host")
	}
	if h.tocOff < headerSize || h.tocOff > fileSize || h.tocLen > fileSize-h.tocOff {
		return h, fmt.Errorf("segment: table of contents out of range (off=%d len=%d size=%d)", h.tocOff, h.tocLen, fileSize)
	}
	return h, nil
}

// castU32 reinterprets an aligned byte section as []uint32 without copying.
func castU32(b []byte) ([]uint32, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("segment: u32 section length %d not a multiple of 4", len(b))
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, fmt.Errorf("segment: u32 section misaligned")
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4), nil
}

// castF64 reinterprets an aligned byte section as []float64 without copying.
func castF64(b []byte) ([]float64, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("segment: f64 section length %d not a multiple of 8", len(b))
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, fmt.Errorf("segment: f64 section misaligned")
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8), nil
}

// u32Bytes reinterprets a []uint32 as raw bytes for writing (the write side
// of castU32; same host byte order).
func u32Bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// f64Bytes reinterprets a []float64 as raw bytes for writing.
func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

//go:build !linux && !darwin

package segment

import "os"

// mapFile falls back to reading the whole file on platforms without the
// unix mmap path. Open is then O(bytes) instead of O(1); the format and
// every accessor behave identically.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter guards the determinism invariant behind Magnet's presentation
// rules (§4.3: advisor and facet ordering must be stable run to run): a
// `range` over a map whose body accumulates a slice with append must be
// followed, somewhere later in the same function, by a sort of that slice.
// Go randomizes map iteration order, so an unsorted accumulation leaks
// nondeterminism straight into rendered or ranked output.
func MapIter() *Analyzer {
	a := &Analyzer{
		Name: "map-iter-determinism",
		Doc:  "slices accumulated from map iteration must be sorted before use",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files() {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				runMapIterFunc(pass, fd)
			}
		}
	}
	return a
}

func runMapIterFunc(pass *Pass, fd *ast.FuncDecl) {
	type accum struct {
		rng *ast.RangeStmt
		obj types.Object
	}
	var accums []accum
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
			return true
		}
		// Find `x = append(x, ...)` in the loop body where x is a plain
		// variable.
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
				return true
			}
			if obj := pass.Pkg.Info.ObjectOf(lhs); obj != nil {
				accums = append(accums, accum{rng, obj})
			}
			return true
		})
		return true
	})

	for _, ac := range accums {
		if sortedAfter(pass, fd.Body, ac.obj, ac.rng) {
			continue
		}
		pass.Reportf(ac.rng.Pos(), "range over map accumulates %q without a later sort; map order is random and §4.3 requires stable output", ac.obj.Name())
	}
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// sortedAfter reports whether, after pos, body contains a sorting call
// (sort.*, slices.Sort*, or any callee whose name mentions sort) taking the
// accumulated variable as an argument.
func sortedAfter(pass *Pass, body *ast.BlockStmt, obj types.Object, pos ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos.End() {
			return true
		}
		var callee string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = fun.Name
		case *ast.SelectorExpr:
			callee = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok {
				callee = id.Name + "." + callee
			}
		default:
			return true
		}
		if !strings.Contains(strings.ToLower(callee), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Pkg.Info.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, the unit analyzers run
// over.
type Package struct {
	// PkgPath is the package's import path ("magnet/internal/vsm"), or a
	// synthetic path for fixture packages loaded outside a module.
	PkgPath string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset positions every node in Syntax.
	Fset *token.FileSet
	// Syntax holds the parsed files (comments included), sorted by file
	// name. Test files (*_test.go) are never loaded: magnet-vet checks
	// shipped code, and fixtures live in testdata packages instead.
	Syntax []*ast.File
	// Types and Info carry go/types results for the package.
	Types *types.Package
	// Info is fully populated (Types, Defs, Uses, Selections, Implicits).
	Info *types.Info
}

// Filename returns the file name a node position belongs to.
func (p *Package) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// Loader parses and type-checks packages using only the standard library:
// module-local imports are resolved by walking the module tree recursively,
// everything else is type-checked from GOROOT source via go/importer's
// "source" compiler (modern toolchains ship no pre-compiled stdlib export
// data, so source is the only dependency-free route).
type Loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at dir. When dir contains a go.mod the
// module path is read from it and module-local imports resolve; otherwise
// only stdlib imports are available (the fixture-loading mode used by
// tests).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		fset:    fset,
		modRoot: abs,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	if data, err := os.ReadFile(filepath.Join(abs, "go.mod")); err == nil {
		l.modPath = modulePath(data)
	}
	return l, nil
}

// modulePath extracts the module path from go.mod contents ("" if absent).
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import implements types.Importer: module-local paths load from the module
// tree, all others fall through to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Results are memoized by import path.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	if pkg, ok := l.pkgs[pkgPath]; ok {
		return pkg, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, _ := conf.Check(pkgPath, l.fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, typeErr)
	}
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Syntax:  files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// goFileNames returns the sorted non-test Go file names in dir that build
// on the host platform. Per-platform files (//go:build linux, *_windows.go)
// must be filtered exactly as the compiler would, or packages with syscall
// shims type-check with duplicate declarations.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule loads every package in the module tree, skipping testdata,
// hidden and underscore-prefixed directories. Packages come back sorted by
// import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	if l.modPath == "" {
		return nil, fmt.Errorf("analysis: %s has no go.mod", l.modRoot)
	}
	var dirs []string
	err := filepath.WalkDir(l.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFileNames(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := l.modPath
		if rel != "." {
			pkgPath += "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces error hygiene: fmt.Errorf must wrap error operands with
// %w (not flatten them with %v/%s, which severs errors.Is/As chains), and a
// call whose only result is an error must not be discarded as a bare
// statement (assign it, or `_ =` it to make the drop explicit).
func ErrWrap() *Analyzer {
	a := &Analyzer{
		Name: "nonwrapped-error",
		Doc:  "fmt.Errorf must use %w for error operands; lone error results must not be dropped",
	}
	a.Run = func(pass *Pass) {
		errType := types.Universe.Lookup("error").Type()
		errIface := errType.Underlying().(*types.Interface)
		for _, f := range pass.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkErrorf(pass, n, errIface)
				case *ast.ExprStmt:
					call, ok := n.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					if t := pass.TypeOf(call); t != nil && types.Identical(t, errType) && !neverFails(pass, call) {
						pass.Reportf(n.Pos(), "error result of %s is dropped; handle it or assign to _ explicitly", callName(call))
					}
				}
				return true
			})
		}
	}
	return a
}

// neverFails reports whether call is a method on a writer documented to
// always return a nil error (strings.Builder, bytes.Buffer), whose dropped
// result is idiomatic rather than a bug.
func neverFails(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv, ok := pass.Pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	t := recv.Recv().String()
	return strings.HasSuffix(t, "strings.Builder") || strings.HasSuffix(t, "bytes.Buffer")
}

// checkErrorf flags fmt.Errorf calls that format an error operand with %v
// or %s instead of %w.
func checkErrorf(pass *Pass, call *ast.CallExpr, errIface *types.Interface) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	args := call.Args[1:]
	for i, verb := range formatVerbs(format) {
		if i >= len(args) || (verb != 'v' && verb != 's') {
			continue
		}
		t := pass.TypeOf(args[i])
		if t != nil && types.Implements(t, errIface) {
			pass.Reportf(args[i].Pos(), "fmt.Errorf formats an error with %%%c; use %%w to keep the chain inspectable", verb)
		}
	}
}

// formatVerbs returns the verb letter of each argument-consuming directive
// in a Printf-style format string, in order.
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision and argument indexes.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[i])) {
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		verbs = append(verbs, rune(format[i]))
	}
	return verbs
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

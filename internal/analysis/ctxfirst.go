package analysis

import (
	"go/ast"
)

// CtxFirst enforces the standard context.Context placement on the exported
// surface of the web layer: when an exported function or method takes a
// context, it must be the first parameter. Anything else breaks the
// ecosystem convention and makes cancellation plumbing error-prone.
func CtxFirst(scope ...string) *Analyzer {
	a := &Analyzer{
		Name:  "ctx-first",
		Doc:   "exported functions taking context.Context must take it first",
		Scope: scope,
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files() {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
					continue
				}
				checkCtxFirst(pass, fd)
			}
		}
	}
	return a
}

func checkCtxFirst(pass *Pass, fd *ast.FuncDecl) {
	idx := 0
	for _, field := range fd.Type.Params.List {
		// A field may declare several names; all share one type.
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) && idx > 0 {
			pass.Reportf(field.Pos(), "%s takes context.Context as parameter %d; context must come first", fd.Name.Name, idx+1)
		}
		idx += n
	}
}

func isContextType(pass *Pass, expr ast.Expr) bool {
	t := pass.TypeOf(expr)
	return t != nil && t.String() == "context.Context"
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural half of magnet-vet: a type-resolved
// static call graph over every loaded package plus a reachability walk.
// Analyzers that must follow an invariant across call boundaries (hotalloc,
// frozen, lockflow) run as module passes over this graph instead of one
// package at a time — the same move DataGuide-style structural summaries
// make for semistructured data: compute one whole-corpus structure once,
// then answer per-site questions against it.

// FuncNode is one function or method in the call graph. Functions declared
// inside the loaded packages carry their declaration and package; callees
// resolved into packages we did not parse (the standard library, interface
// methods) appear as leaf nodes with a nil Decl, where propagation stops.
type FuncNode struct {
	// Fn is the type-checker object; node identity. Never nil.
	Fn *types.Func
	// Decl is the syntax of the function, nil for external/bodyless callees.
	Decl *ast.FuncDecl
	// Pkg is the loaded package declaring the function, nil for external.
	Pkg *Package
	// Calls are the node's static call sites in source order.
	Calls []Call
}

// Name returns a compact human-readable name: "pkg.Func" or
// "pkg.(*T).Method" shapes reduced to "pkg.T.Method".
func (n *FuncNode) Name() string {
	fn := n.Fn
	name := fn.Name()
	if recv := recvTypeName(fn); recv != "" {
		name = recv + "." + name
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// recvTypeName returns the bare receiver type name of a method ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// Call is one static call edge.
type Call struct {
	// Site is the call expression position in the caller.
	Site token.Pos
	// Expr is the call expression itself.
	Expr *ast.CallExpr
	// Callee is the resolved target.
	Callee *FuncNode
}

// CallGraph is the module's static call graph. Only direct calls resolve:
// a call through an interface method or a function value becomes an edge to
// the interface method's (bodyless) node or no edge at all — the documented
// blind spot of every static-dispatch analysis, which is why hot-path
// annotations sit on concrete methods.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
	// list holds the declared (Decl != nil) nodes in deterministic order:
	// package load order, then file order, then declaration order.
	list []*FuncNode
}

// Node returns the graph node for fn, or nil if fn was never seen.
func (g *CallGraph) Node(fn *types.Func) *FuncNode {
	return g.nodes[fn]
}

// Funcs returns every declared function in deterministic order.
func (g *CallGraph) Funcs() []*FuncNode {
	return g.list
}

func (g *CallGraph) intern(fn *types.Func) *FuncNode {
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	n := &FuncNode{Fn: fn}
	g.nodes[fn] = n
	return n
}

// BuildCallGraph constructs the call graph over pkgs. Function literals are
// attributed to their enclosing declared function: a call made inside a
// closure is an edge from the function that created the closure, which is
// the right granularity for reachability-style invariants.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.intern(fn)
				n.Decl = fd
				n.Pkg = pkg
				g.list = append(g.list, n)
				if fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(node ast.Node) bool {
					call, ok := node.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := CalleeOf(pkg, call)
					if callee == nil {
						return true
					}
					n.Calls = append(n.Calls, Call{Site: call.Pos(), Expr: call, Callee: g.intern(callee)})
					return true
				})
			}
		}
	}
	return g
}

// CalleeOf resolves the static target of a call expression to a function
// object: a plain identifier, a package-qualified function, or a method
// selection. Calls through function-typed values, built-ins and type
// conversions return nil.
func CalleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Reach holds the result of a reachability walk: for every node reached,
// the edge it was first discovered through (nil for seeds). Chain
// reconstructs the seed→node call path for diagnostics.
type Reach struct {
	parent map[*FuncNode]*reachStep
	order  []*FuncNode
}

type reachStep struct {
	from *FuncNode
	site token.Pos
}

// ReachableFrom walks call edges breadth-first from seeds, visiting only
// callees with bodies (Decl != nil). Seeds must be declared nodes. The walk
// is deterministic: seeds in given order, edges in source order.
func (g *CallGraph) ReachableFrom(seeds []*FuncNode) *Reach {
	r := &Reach{parent: make(map[*FuncNode]*reachStep)}
	queue := make([]*FuncNode, 0, len(seeds))
	for _, s := range seeds {
		if _, ok := r.parent[s]; ok || s == nil {
			continue
		}
		r.parent[s] = nil
		r.order = append(r.order, s)
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			if c.Callee.Decl == nil {
				continue
			}
			if _, ok := r.parent[c.Callee]; ok {
				continue
			}
			r.parent[c.Callee] = &reachStep{from: n, site: c.Site}
			r.order = append(r.order, c.Callee)
			queue = append(queue, c.Callee)
		}
	}
	return r
}

// Has reports whether n was reached.
func (r *Reach) Has(n *FuncNode) bool {
	_, ok := r.parent[n]
	return ok
}

// Nodes returns the reached nodes in discovery order.
func (r *Reach) Nodes() []*FuncNode {
	return r.order
}

// Chain returns the call path from the seed that first reached n down to n
// itself, as node names: ["pkg.Seed", "pkg.mid", "pkg.n"].
func (r *Reach) Chain(n *FuncNode) []string {
	var rev []string
	for cur := n; cur != nil; {
		rev = append(rev, cur.Name())
		step := r.parent[cur]
		if step == nil {
			break
		}
		cur = step.from
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

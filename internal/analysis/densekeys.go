package analysis

import (
	"go/ast"
	"go/types"
)

// DenseKeys guards the dense-ID discipline of the itemset refactor: inside
// the hot-path packages (query evaluation, facet aggregation, the vector
// space model, and the indexes) item sets must live on the interned-ID plane
// — sorted []uint32 / itemset.Set — not as IRI- or string-keyed hash maps.
// A map[rdf.IRI]struct{}, map[rdf.IRI]bool, or map[string]struct{} in those
// packages is a set smuggled back into hashing: every membership probe pays
// a string hash and every accumulation allocates, which is exactly what the
// ID plane removes. Plain map[string]bool and maps carrying payload values
// (counts, weights, postings) are not sets and pass.
func DenseKeys(scope ...string) *Analyzer {
	a := &Analyzer{
		Name:  "densekeys",
		Doc:   "hot-path item sets must use itemset.Set over interned IDs, not IRI/string-keyed maps",
		Scope: scope,
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				mt, ok := n.(*ast.MapType)
				if !ok {
					return true
				}
				t := pass.TypeOf(mt)
				if t == nil {
					return true
				}
				m, ok := t.Underlying().(*types.Map)
				if !ok {
					return true
				}
				kb, ok := m.Key().Underlying().(*types.Basic)
				if !ok || kb.Kind() != types.String {
					return true
				}
				_, namedKey := m.Key().(*types.Named)
				switch {
				case isEmptyStruct(m.Elem()):
					// Any string-underlying key with a struct{} value is a
					// pure membership set.
				case isBoolType(m.Elem()) && namedKey:
					// bool-valued maps over a named string type (rdf.IRI)
					// are sets too; plain map[string]bool often carries
					// genuine flags and is left alone.
				default:
					return true
				}
				pass.Reportf(mt.Pos(), "map[%s]%s used as a set in a hot-path package; intern the keys and use itemset.Set",
					types.TypeString(m.Key(), types.RelativeTo(pass.Pkg.Types)),
					types.TypeString(m.Elem(), types.RelativeTo(pass.Pkg.Types)))
				return true
			})
		}
	}
	return a
}

func isEmptyStruct(t types.Type) bool {
	s, ok := t.Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

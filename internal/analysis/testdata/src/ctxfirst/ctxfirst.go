// Package ctxfirst is a magnet-vet fixture: each violation line carries an
// expectation comment, allowed patterns carry none.
package ctxfirst

import "context"

func Misplaced(name string, ctx context.Context) {} // want "must come first"

// context first is the allowed pattern.
func Leading(ctx context.Context, name string) {}

// functions without a context are out of scope.
func NoContext(a, b int) {}

// unexported functions are left alone.
func internal(name string, ctx context.Context) {}

type Client struct{}

func (Client) Fetch(url string, ctx context.Context) {} // want "must come first"

func (Client) Get(ctx context.Context, url string) {}

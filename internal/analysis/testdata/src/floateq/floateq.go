// Package floateq is a magnet-vet fixture: each violation line carries an
// expectation comment, allowed patterns carry none.
package floateq

func eq64(a, b float64) bool {
	return a == b // want "ApproxEqual"
}

func neq32(a, b float32) bool {
	return a != b // want "ApproxEqual"
}

func constZero(a float64) bool {
	return a == 0 // want "ApproxEqual"
}

// epsilon comparison is the allowed pattern.
func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9
}

// integer equality is out of scope.
func ints(a, b int) bool { return a == b }

// ordered float comparisons are fine; only ==/!= are fragile.
func less(a, b float64) bool { return a < b }

// the ignore directive silences a deliberate exact comparison.
func ignored(a, b float64) bool {
	return a == b //magnet-vet:ignore floateq
}

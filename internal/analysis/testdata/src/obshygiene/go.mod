module magnet

go 1.21

// Package obs is a minimal stand-in for magnet/internal/obs: just enough
// surface for the obshygiene fixture to type-check its module-local
// imports. The analyzer matches on the import path, so the fixture module
// is named magnet and this package sits at internal/obs.
package obs

// Counter mimics the real atomic counter.
type Counter struct{ v uint64 }

// Inc mimics the real hot-path increment.
func (c *Counter) Inc() { c.v++ }

// Gauge mimics the real atomic gauge.
type Gauge struct{ v int64 }

// Histogram mimics the real exponential histogram.
type Histogram struct{ n uint64 }

// Observe mimics the real hot-path record.
func (h *Histogram) Observe(v int64) { h.n++ }

// NewCounter mimics the registry get-or-create constructor.
func NewCounter(name string) *Counter { return &Counter{} }

// NewGauge mimics the registry get-or-create constructor.
func NewGauge(name string) *Gauge { return &Gauge{} }

// NewHistogram mimics the registry get-or-create constructor.
func NewHistogram(name string) *Histogram { return &Histogram{} }

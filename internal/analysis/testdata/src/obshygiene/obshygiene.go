// Package obshygiene is a magnet-vet fixture: each violation line carries
// an expectation comment, allowed patterns carry none.
package obshygiene

import (
	"fmt"
	stdlog "log"
	"log/slog"
	"os"
)

func bad() {
	fmt.Println("boot")           // want "fmt.Println writes outside the observability layer"
	fmt.Printf("items=%d\n", 3)   // want "fmt.Printf writes outside the observability layer"
	fmt.Print("x")                // want "fmt.Print writes outside the observability layer"
	stdlog.Println("legacy")      // want "log.Println writes outside the observability layer"
	stdlog.Printf("legacy %d", 1) // want "log.Printf writes outside the observability layer"
	stdlog.Fatalf("dead: %d", 2)  // want "log.Fatalf writes outside the observability layer"
}

func good() {
	slog.Info("boot", "items", 3)
	_ = fmt.Sprintf("items=%d", 3)     // building strings is fine
	fmt.Fprintf(os.Stderr, "usage:\n") // explicit writer is fine
	_ = fmt.Errorf("wrapped: %w", os.ErrNotExist)
}

// logf is a local identifier, not the log package; must not be flagged.
type logger struct{}

func (logger) Println(v ...any) {}

func shadowed() {
	var log logger
	log.Println("local method")
}

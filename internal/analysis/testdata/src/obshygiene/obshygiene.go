// Package obshygiene is a magnet-vet fixture: each violation line carries
// an expectation comment, allowed patterns carry none.
package obshygiene

import (
	"fmt"
	stdlog "log"
	"log/slog"
	"os"

	"magnet/internal/obs"
)

func bad() {
	fmt.Println("boot")           // want "fmt.Println writes outside the observability layer"
	fmt.Printf("items=%d\n", 3)   // want "fmt.Printf writes outside the observability layer"
	fmt.Print("x")                // want "fmt.Print writes outside the observability layer"
	stdlog.Println("legacy")      // want "log.Println writes outside the observability layer"
	stdlog.Printf("legacy %d", 1) // want "log.Printf writes outside the observability layer"
	stdlog.Fatalf("dead: %d", 2)  // want "log.Fatalf writes outside the observability layer"
}

func good() {
	slog.Info("boot", "items", 3)
	_ = fmt.Sprintf("items=%d", 3)     // building strings is fine
	fmt.Fprintf(os.Stderr, "usage:\n") // explicit writer is fine
	_ = fmt.Errorf("wrapped: %w", os.ErrNotExist)
}

// logf is a local identifier, not the log package; must not be flagged.
type logger struct{}

func (logger) Println(v ...any) {}

func shadowed() {
	var log logger
	log.Println("local method")
}

// Instrument placement (rule 2): registry constructors are legal only in
// package-level var initializers.

func instrumentsInFunction() {
	c := obs.NewCounter("fixture.count") // want "obs.NewCounter inside a function body"
	h := obs.NewHistogram("fixture.ns")  // want "obs.NewHistogram inside a function body"
	g := obs.NewGauge("fixture.depth")   // want "obs.NewGauge inside a function body"
	c.Inc()
	h.Observe(1)
	_ = g
}

// Package-level instruments are the sanctioned form...
var fixtureCount = obs.NewCounter("fixture.ok.count")

// ...including the immediately-invoked FuncLit initializer idiom (runs once
// at init; must not be flagged).
var fixtureByKind = func() map[string]*obs.Counter {
	m := make(map[string]*obs.Counter, 2)
	for _, k := range []string{"a", "b"} {
		m[k] = obs.NewCounter("fixture.kind." + k)
	}
	return m
}()

// Genuinely dynamic instrument names carry an ignore directive.
func dynamicInstrument(name string) *obs.Counter {
	return obs.NewCounter("fixture.dyn." + name) //magnet-vet:ignore obshygiene // dynamic name, cannot hoist
}

func useInstruments() {
	fixtureCount.Inc()
	fixtureByKind["a"].Inc()
	dynamicInstrument("x").Inc()
}

// Package errwrap is a magnet-vet fixture: each violation line carries an
// expectation comment, allowed patterns carry none.
package errwrap

import (
	"errors"
	"fmt"
	"strings"
)

func doThing() error { return errors.New("boom") }

func pair() (int, error) { return 0, nil }

func flattenV(err error) error {
	return fmt.Errorf("open: %v", err) // want "use %w"
}

func flattenS(err error) error {
	return fmt.Errorf("open: %s", err) // want "use %w"
}

// wrapping with %w is the allowed pattern.
func wrapped(err error) error {
	return fmt.Errorf("open: %w", err)
}

// %v on a non-error operand is fine.
func notError() error {
	return fmt.Errorf("count: %v", 42)
}

// %d before the error keeps verb/argument alignment honest.
func positional(err error) error {
	return fmt.Errorf("attempt %d: %v", 3, err) // want "use %w"
}

func dropped() {
	doThing() // want "dropped"
}

func handled() error {
	if err := doThing(); err != nil {
		return err
	}
	// explicit discard is allowed: the drop is visible at the call site.
	_ = doThing()
	// calls with more than one result are out of scope for this check.
	pair()
	return nil
}

// strings.Builder and bytes.Buffer writes never fail; dropping their error
// is idiomatic.
func builder() string {
	var b strings.Builder
	b.WriteByte('x')
	return b.String()
}

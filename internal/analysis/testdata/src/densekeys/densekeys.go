// Package densekeys is a magnet-vet fixture: each violation line carries an
// expectation comment, allowed patterns carry none.
package densekeys

// IRI stands in for rdf.IRI: a named type whose underlying type is string.
type IRI string

type state struct {
	seen map[IRI]struct{}    // want "used as a set"
	live map[string]struct{} // want "used as a set"
	// counts carries a payload, not membership.
	counts map[IRI]int
}

func locals() {
	members := make(map[IRI]bool) // want "used as a set"
	members["a"] = true

	tokens := make(map[string]struct{}) // want "used as a set"
	tokens["b"] = struct{}{}

	// Plain map[string]bool often carries real flags; allowed.
	flags := make(map[string]bool)
	flags["verbose"] = true

	// Payload-valued maps are histograms or postings, not sets.
	weights := make(map[IRI]float64)
	weights["c"] = 1.5
	postings := make(map[string][]uint32)
	postings["d"] = nil
}

// aliased declares the set shape behind a named type; still a set.
type aliased map[IRI]struct{} // want "used as a set"

// Package lockflow exercises guarded-by checking across call boundaries:
// a *Locked method touching a guarded field requires the mutex on entry,
// the requirement propagates through *Locked call chains, and call sites
// that do not visibly hold the lock are findings.
package lockflow

import "sync"

type board struct {
	mu sync.Mutex
	// guarded by mu
	items []string
}

// itemsLocked reads a guarded field: it requires b.mu on entry.
func (b *board) itemsLocked() []string { return b.items }

// countLocked inherits the requirement through the call chain.
func (b *board) countLocked() int { return len(b.itemsLocked()) }

// Snapshot holds the lock before descending: fine.
func (b *board) Snapshot() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.itemsLocked()
}

// Peek calls into the locked chain without the lock.
func (b *board) Peek() int {
	return b.countLocked() // want "requires b.mu to be held"
}

// use is a plain function: the same obligation applies to its argument.
func use(b *board) int {
	return b.countLocked() // want "requires b.mu to be held"
}

// useHeld takes the lock around the call: fine.
func useHeld(b *board) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.countLocked()
}

// selfLocking acquires the mutex itself despite the suffix, so it demands
// nothing of its callers.
func (b *board) refreshLocked() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

func useRefresh(b *board) int { return b.refreshLocked() }

// Package frozen exercises publish-then-freeze checking: slices flowing
// out of //magnet:frozen producers and fields must never be written again.
package frozen

import "sort"

type store struct {
	// postings are copy-on-write: replace whole entries, never mutate.
	//
	//magnet:frozen
	postings map[string][]uint32

	all []uint32 //magnet:frozen
}

// view publishes a posting read-only.
//
//magnet:frozen
func (s *store) view(k string) []uint32 {
	return s.postings[k]
}

// wrap returns the published slice verbatim — it becomes a publish point
// itself, so mutation through it is still caught.
func wrap(s *store, k string) []uint32 {
	return s.view(k)
}

func mutateDirect(s *store, k string) {
	v := s.view(k)
	v[0] = 1 // want "index assignment writes into a slice published by frozen.store.view"
}

func mutateAppend(s *store) []uint32 {
	return append(s.all, 9) // want "append may write into the backing array of a slice published by frozen.store.all"
}

func mutateViaWrap(s *store, k string) {
	w := wrap(s, k)
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] }) // want "in-place sort.Slice of a slice published by frozen.store.view"
}

// fill writes through its first parameter; the derived mutates-params fact
// makes passing a frozen slice to it a finding at the call site.
func fill(dst []uint32, v uint32) {
	for i := range dst {
		dst[i] = v
	}
}

func mutateViaCall(s *store) {
	fill(s.all, 0) // want "which mutates it"
}

// replace is the sanctioned copy-on-write path: build a fresh slice and
// swap the map entry. Nothing here is a finding.
func replace(s *store, k string, v uint32) {
	old := s.postings[k]
	next := make([]uint32, len(old), len(old)+1)
	copy(next, old)
	next = append(next, v)
	s.postings[k] = next
}

// reads of published slices are always fine.
func read(s *store, k string) uint32 {
	var n uint32
	for _, v := range s.view(k) {
		n += v
	}
	return n
}

// Package lockedfield is a magnet-vet fixture: each violation line carries an
// expectation comment, allowed patterns carry none.
package lockedfield

import "sync"

// Counter demonstrates the guarded-by discipline on a plain Mutex.
type Counter struct {
	mu sync.Mutex
	// guarded by mu
	n int
	// free has no annotation and may be accessed lock-free.
	free int
}

// Inc locks before touching the guarded field: allowed.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek reads the guarded field without the lock: caught.
func (c *Counter) Peek() int {
	return c.n // want "guarded by mu"
}

// peekLocked is exempt by the *Locked caller-holds-lock convention.
func (c *Counter) peekLocked() int { return c.n }

// Free touches only unguarded state: allowed.
func (c *Counter) Free() int { return c.free }

// RW demonstrates that RLock also satisfies the guard.
type RW struct {
	mu sync.RWMutex
	// guarded by mu
	m map[string]int
}

// Get reads under RLock: allowed.
func (r *RW) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// Put writes without any lock: caught.
func (r *RW) Put(k string, v int) {
	r.m[k] = v // want "guarded by mu"
}

// Stale carries an annotation naming a mutex the struct does not have.
type Stale struct {
	// guarded by gone
	x int // want "no field gone"
}

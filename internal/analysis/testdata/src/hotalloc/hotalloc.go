// Package hotalloc exercises the interprocedural allocation lint: functions
// reachable from a //magnet:hot seed must not allocate.
package hotalloc

import "fmt"

// Merge is a hot seed; it and everything it calls are checked.
//
//magnet:hot
func Merge(dst, xs []uint32) []uint32 {
	dst = growInto(dst, xs)
	_ = total(xs)
	return dst
}

// growInto appends into the caller's buffer — the sanctioned amortization
// pattern; appending to a parameter-rooted slice is not a finding.
func growInto(dst, xs []uint32) []uint32 {
	for _, x := range xs {
		dst = append(dst, x)
	}
	return dst
}

// total is reached transitively from Merge and is clean.
func total(xs []uint32) int {
	n := 0
	for _, x := range xs {
		n += int(x)
	}
	return n
}

// BadClosure captures a local in a function literal on a hot path.
//
//magnet:hot
func BadClosure(xs []uint32) int {
	sum := 0
	walk(xs, func(x uint32) { sum += int(x) }) // want "captures sum"
	return sum
}

// OkClosure passes a non-capturing literal: no heap allocation.
//
//magnet:hot
func OkClosure(xs []uint32) {
	walk(xs, func(x uint32) {})
}

func walk(xs []uint32, f func(uint32)) {
	for _, x := range xs {
		f(x)
	}
}

// Entry allocates two calls deep; the diagnostic names the chain.
//
//magnet:hot
func Entry(xs []uint32) []uint32 {
	return viaHelper(xs)
}

func viaHelper(xs []uint32) []uint32 {
	out := make([]uint32, len(xs)) // want "hotalloc.Entry → hotalloc.viaHelper"
	copy(out, xs)
	return out
}

// BadAppend grows a local slice instead of a caller-provided buffer.
//
//magnet:hot
func BadAppend(xs []uint32) []uint32 {
	var out []uint32
	for _, x := range xs {
		out = append(out, x) // want "take a caller-provided buffer"
	}
	return out
}

// BadFmt formats on the hot path.
//
//magnet:hot
func BadFmt(x uint32) string {
	return fmt.Sprintf("%d", x) // want "call to fmt.Sprintf allocates"
}

// BadConcat builds a string on the hot path.
//
//magnet:hot
func BadConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// BadBox passes a concrete integer to an interface parameter.
//
//magnet:hot
func BadBox(x int) {
	sink(x) // want "boxes int into"
}

// OkBox passes a pointer: pointer-shaped values are stored directly in the
// interface word and do not allocate.
//
//magnet:hot
func OkBox(p *int) {
	sink(p)
}

func sink(v interface{}) { _ = v }

// keyer stands in for query.Predicate: an interface whose Key() builds a
// string per call.
type keyer interface{ Key() string }

// BadLoopDispatch re-derives k.Key() against every element — the
// per-refine allocation storm Query.With used to hide (the dispatch
// never resolves statically, so only the loop rule sees it).
//
//magnet:hot
func BadLoopDispatch(keys []string, k keyer) int {
	for i, s := range keys {
		if s == k.Key() { // want "called inside a loop dispatches dynamically"
			return i
		}
	}
	return -1
}

// OkHoistedDispatch derives the key once and loops over plain strings.
//
//magnet:hot
func OkHoistedDispatch(keys []string, k keyer) int {
	kk := k.Key()
	for i, s := range keys {
		if s == kk {
			return i
		}
	}
	return -1
}

// TransitiveLoopDispatch is *reached* from a seed but not annotated
// itself: the loop rule is scoped to direct seeds (hoisting is the
// caller's local discipline), so this body is not flagged for dispatch —
// only direct allocations would be.
func transitiveLoopDispatch(keys []string, k keyer) bool {
	for _, s := range keys {
		if s == k.Key() {
			return true
		}
	}
	return false
}

// SeedCallingTransitive seeds reachability into transitiveLoopDispatch.
//
//magnet:hot
func SeedCallingTransitive(keys []string, k keyer) bool {
	return transitiveLoopDispatch(keys, k)
}

// Cold allocates freely: it is not reachable from any hot seed.
func Cold(xs []uint32) map[uint32]bool {
	out := make(map[uint32]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}

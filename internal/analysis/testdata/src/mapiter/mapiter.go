// Package mapiter is a magnet-vet fixture: each violation line carries an
// expectation comment, allowed patterns carry none.
package mapiter

import "sort"

func unsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "without a later sort"
		out = append(out, k)
	}
	return out
}

// sorting after the loop is the allowed pattern.
func sorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// delegating to a sorting helper also counts.
func viaHelper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(ss []string) { sort.Strings(ss) }

// map-to-map aggregation does not leak iteration order.
func aggregate(m map[string][]string) map[string]int {
	counts := make(map[string]int)
	for k, vs := range m {
		counts[k] = len(vs)
	}
	return counts
}

// ranging over a slice needs no sort.
func overSlice(ss []string) []string {
	var out []string
	for _, s := range ss {
		out = append(out, s)
	}
	return out
}

// Package unusedignore exercises stale-suppression reporting: an ignore
// directive that silences nothing is itself a finding.
package unusedignore

// used: the directive suppresses a real floateq finding — no report.
func eq(a, b float64) bool {
	return a == b //magnet-vet:ignore floateq
}

// stale: integers never trip floateq, so the directive is dead.
func stale(a, b int) bool {
	return a == b //magnet-vet:ignore floateq // want "suppresses nothing"
}

// staleBare: a bare directive claims the whole run set and still catches
// nothing.
func staleBare(a, b int) bool {
	return a == b //magnet-vet:ignore // want "suppresses nothing"
}

// notRun names an analyzer outside this run: staleness is undecidable, so
// no report.
func notRun(a, b int) bool {
	return a == b //magnet-vet:ignore errwrap
}

// Package gohygiene is a magnet-vet fixture: each violation line carries
// an expectation comment, allowed patterns carry none.
package gohygiene

import "sync"

func bad() {
	go leak() // want "bare go statement"

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "bare go statement"
		defer wg.Done()
		leak()
	}()
	wg.Wait()

	for i := 0; i < 4; i++ {
		go worker(i) // want "bare go statement"
	}
}

func good() {
	// Calling, deferring, or passing a function is fine — only the go
	// keyword is banned.
	leak()
	defer leak()
	launch(leak)

	// A channel send named 'go'-ish is not a go statement.
	ch := make(chan func(), 1)
	ch <- leak
	(<-ch)()
}

func leak()            {}
func worker(int)       {}
func launch(fn func()) { fn() }

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotDirective marks a function whose body — and everything it transitively
// calls — must not allocate. It is seeded onto the engine's per-step inner
// loops: itemset set algebra, query predicate evaluation, obs recording,
// index posting/vector lookups, and the facet-summarization kernel.
const HotDirective = "//magnet:hot"

// HotFact is recorded on every function reachable from a //magnet:hot seed.
const HotFact = "hot"

// HotAlloc enforces the allocation-free discipline of annotated hot paths
// interprocedurally: starting from every function marked //magnet:hot, it
// walks the static call graph and reports any allocation it can prove in a
// reachable body — function literals that capture variables (captured
// closures are heap-allocated), interface boxing at call and conversion
// sites, fmt calls, string concatenation, map/slice/new allocations, and
// append growth on slices not rooted in a caller-provided parameter (the
// amortized-buffer pattern the engine's *Into operations use). Diagnostics
// name the call chain from the hot seed to the allocation.
//
// Static blind spots are deliberate: calls through interfaces or function
// values do not resolve, and bodies outside the loaded packages (stdlib)
// are leaves — which is why hot annotations sit on concrete methods.
func HotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "functions marked //magnet:hot, and their transitive callees, must not allocate",
	}
	a.RunModule = runHotAlloc
	return a
}

func runHotAlloc(mp *ModulePass) {
	var seeds []*FuncNode
	for _, n := range mp.Graph.Funcs() {
		if HasDirective(n.Decl.Doc, HotDirective) {
			seeds = append(seeds, n)
		}
	}
	if len(seeds) == 0 {
		return
	}
	reach := mp.Graph.ReachableFrom(seeds)
	for _, n := range reach.Nodes() {
		mp.Facts.Set(n.Fn, HotFact, true)
	}
	for _, n := range reach.Nodes() {
		if n.Decl.Body != nil {
			checkHotFunc(mp, n, reach)
		}
	}
}

func checkHotFunc(mp *ModulePass, n *FuncNode, reach *Reach) {
	pkg := n.Pkg
	chain := strings.Join(reach.Chain(n), " → ")
	report := func(pos token.Pos, format string, args ...any) {
		mp.Reportf(pkg, pos, "%s [hot path: %s]", fmt.Sprintf(format, args...), chain)
	}
	params := paramObjects(pkg, n.Decl)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			if caps := capturedVars(pkg, n.Decl, e); len(caps) > 0 {
				report(e.Pos(), "function literal captures %s; capturing closures allocate", strings.Join(caps, ", "))
			}
		case *ast.CompositeLit:
			switch typeUnder(pkg.Info.TypeOf(e)).(type) {
			case *types.Map:
				report(e.Pos(), "map literal allocates")
			case *types.Slice:
				report(e.Pos(), "slice literal allocates")
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringType(pkg.Info.TypeOf(e)) {
				report(e.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringType(pkg.Info.TypeOf(e.Lhs[0])) {
				report(e.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkHotCall(report, pkg, e, params)
		}
		return true
	})
	if HasDirective(n.Decl.Doc, HotDirective) {
		checkHotLoops(pkg, n.Decl.Body, report)
	}
}

// checkHotLoops flags dynamically dispatched (interface-method) calls
// inside the loops of a *directly annotated* hot function. One dynamic
// dispatch per step is survivable; one per loop iteration multiplies by
// the posting length — and when the callee allocates (a Key() that
// builds its string), the per-element allocation storm is invisible to
// the boxing checks because the dispatch target never resolves
// statically. Query.With re-deriving p.Key() against every existing term
// was the motivating case: derive once, then loop over the cached
// results. The rule stays scoped to seeds rather than transitive callees
// because hoisting is the *caller's* local discipline — a callee cannot
// know which of its calls sit inside someone else's loop.
func checkHotLoops(pkg *Package, body *ast.BlockStmt, report func(token.Pos, string, ...any)) {
	ast.Inspect(body, func(node ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch l := node.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		default:
			return true
		}
		ast.Inspect(loopBody, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pkg.Info.Selections[sel]
			if !ok || s.Kind() != types.MethodVal || !types.IsInterface(s.Recv()) {
				return true
			}
			report(call.Pos(), "interface method %s.%s called inside a loop dispatches dynamically every iteration; hoist or cache it outside the loop",
				typeName(pkg, s.Recv()), sel.Sel.Name)
			return true
		})
		// The nested Inspect already covered inner loops; stop the outer
		// walk here so each call reports once.
		return false
	})
}

// checkHotCall inspects one call expression in a hot body: allocating
// built-ins, conversions that box into interfaces, fmt calls, and
// interface-typed parameters receiving concrete arguments.
func checkHotCall(report func(token.Pos, string, ...any), pkg *Package, call *ast.CallExpr, params map[types.Object]bool) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				switch typeUnder(pkg.Info.TypeOf(call)).(type) {
				case *types.Map:
					report(call.Pos(), "make(map) allocates")
				case *types.Slice:
					report(call.Pos(), "make(slice) allocates")
				case *types.Chan:
					report(call.Pos(), "make(chan) allocates")
				}
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !rootedIn(pkg, call.Args[0], params) {
					report(call.Pos(), "append growth on a slice not rooted in a parameter allocates; take a caller-provided buffer")
				}
			}
			return
		}
	}
	// Conversion to an interface type boxes its operand.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := pkg.Info.TypeOf(call.Args[0]); boxes(at) {
				report(call.Pos(), "conversion boxes %s into %s", typeName(pkg, at), typeName(pkg, tv.Type))
			}
		}
		return
	}
	fn := CalleeOf(pkg, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "call to fmt.%s allocates and formats", fn.Name())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	checkBoxingArgs(report, pkg, call, sig)
}

// checkBoxingArgs flags concrete, non-pointer-shaped arguments passed to
// interface-typed parameters — each such argument heap-allocates its boxed
// copy at the call site.
func checkBoxingArgs(report func(token.Pos, string, ...any), pkg *Package, call *ast.CallExpr, sig *types.Signature) {
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = sig.Params().At(np - 1).Type() // arg is already the slice
			} else if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if at := pkg.Info.TypeOf(arg); boxes(at) {
			report(arg.Pos(), "argument boxes %s into %s", typeName(pkg, at), typeName(pkg, pt))
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// heap-allocates: concrete and not pointer-shaped (pointers, maps, chans
// and funcs are stored directly in the interface word).
func boxes(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UntypedNil, types.UnsafePointer, types.Invalid:
			return false
		}
	case *types.Tuple:
		return false
	}
	return true
}

// paramObjects collects the parameter and receiver objects of fd and of
// every function literal inside it — the slice roots append may grow
// without a finding (caller-provided buffers amortize their growth).
func paramObjects(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addList(fd.Recv)
	addList(fd.Type.Params)
	if fd.Body != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				addList(lit.Type.Params)
			}
			return true
		})
	}
	return out
}

// rootedIn reports whether e, stripped of index/slice/deref/selector
// wrapping, bottoms out in one of the given objects.
func rootedIn(pkg *Package, e ast.Expr, objs map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			return objs[pkg.Info.Uses[x]]
		default:
			return false
		}
	}
}

// capturedVars returns the names of variables a function literal captures
// from its enclosing function (sorted, deduplicated): objects declared
// inside the enclosing declaration but before/outside the literal.
func capturedVars(pkg *Package, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		pos := obj.Pos()
		if pos < fd.Pos() || pos >= fd.End() {
			return true // package-level or foreign
		}
		if pos >= lit.Pos() && pos < lit.End() {
			return true // the literal's own declaration
		}
		if !seen[obj.Name()] {
			seen[obj.Name()] = true
			out = append(out, obj.Name())
		}
		return true
	})
	sort.Strings(out)
	return out
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isStringType(t types.Type) bool {
	b, ok := typeUnder(t).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeName(pkg *Package, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pkg.Types))
}

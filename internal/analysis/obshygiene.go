package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// obsBanned lists the fmt and log package functions internal code must not
// call: unstructured prints bypass the obs layer and the slog access/error
// logs, so their output is invisible to /debug/metrics and unparseable in
// production. fmt's Sprint/Fprint/Errorf family stays legal — only direct
// writes to stdout/stderr and the legacy global logger are banned.
var obsBanned = map[string]map[string]bool{
	"fmt": {
		"Print":   true,
		"Printf":  true,
		"Println": true,
	},
	"log": {
		"Print":   true,
		"Printf":  true,
		"Println": true,
		"Fatal":   true,
		"Fatalf":  true,
		"Fatalln": true,
		"Panic":   true,
		"Panicf":  true,
		"Panicln": true,
	},
}

// isObsPkg reports whether path is the observability package — the real
// module's or a fixture module's copy of it.
func isObsPkg(path string) bool {
	return path == "magnet/internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

// ObsHygiene enforces the observability layer's usage discipline in scoped
// code. Two rules:
//
//  1. No fmt.Print* or legacy log package: internal packages log through
//     log/slog or record through internal/obs, never straight to stdout.
//     Commands (cmd/...) stay free to print — they own their stdout.
//  2. No obs.New* inside function bodies: the registry constructors take a
//     mutex and a map lookup, so an instrument created per call turns a
//     hot path into a lock convoy. Instruments belong in package-level
//     vars (including the FuncLit-initializer idiom, which runs once at
//     init and stays legal). Genuinely dynamic instrument names carry a
//     magnet-vet:ignore directive.
func ObsHygiene(scope ...string) *Analyzer {
	a := &Analyzer{
		Name:  "obshygiene",
		Doc:   "internal packages must use log/slog or internal/obs, not fmt.Print*/log.Print*; obs instruments are package-level vars",
		Scope: scope,
	}
	a.Run = func(pass *Pass) {
		// pkgNameOf resolves a call of the form pkg.Fn(...) to the imported
		// package path ("" when the callee is not a package selector).
		pkgNameOf := func(call *ast.CallExpr) (string, string) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return "", ""
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return "", ""
			}
			pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return "", ""
			}
			return pkgName.Imported().Path(), sel.Sel.Name
		}
		for _, f := range pass.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				path, fn := pkgNameOf(call)
				if obsBanned[path][fn] {
					pass.Reportf(call.Pos(), "%s.%s writes outside the observability layer; use log/slog (or internal/obs)", path, fn)
				}
				return true
			})
			// Rule 2 walks function declarations only: package-level var
			// initializers (plain or via an immediately-invoked FuncLit) run
			// once at init time and are exactly where instruments belong.
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					path, fn := pkgNameOf(call)
					if isObsPkg(path) && strings.HasPrefix(fn, "New") {
						pass.Reportf(call.Pos(), "obs.%s inside a function body pays a registry lock per call; hoist the instrument to a package-level var", fn)
					}
					return true
				})
			}
		}
	}
	return a
}

package analysis

import (
	"go/ast"
	"go/types"
)

// obsBanned lists the fmt and log package functions internal code must not
// call: unstructured prints bypass the obs layer and the slog access/error
// logs, so their output is invisible to /debug/metrics and unparseable in
// production. fmt's Sprint/Fprint/Errorf family stays legal — only direct
// writes to stdout/stderr and the legacy global logger are banned.
var obsBanned = map[string]map[string]bool{
	"fmt": {
		"Print":   true,
		"Printf":  true,
		"Println": true,
	},
	"log": {
		"Print":   true,
		"Printf":  true,
		"Println": true,
		"Fatal":   true,
		"Fatalf":  true,
		"Fatalln": true,
		"Panic":   true,
		"Panicf":  true,
		"Panicln": true,
	},
}

// ObsHygiene bans fmt.Print* and the legacy log package in scoped code:
// internal packages log through log/slog or record through internal/obs,
// never straight to stdout. Commands (cmd/...) stay free to print — they
// own their stdout.
func ObsHygiene(scope ...string) *Analyzer {
	a := &Analyzer{
		Name:  "obshygiene",
		Doc:   "internal packages must use log/slog or internal/obs, not fmt.Print*/log.Print*",
		Scope: scope,
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				path := pkgName.Imported().Path()
				if obsBanned[path][sel.Sel.Name] {
					pass.Reportf(call.Pos(), "%s.%s writes outside the observability layer; use log/slog (or internal/obs)", path, sel.Sel.Name)
				}
				return true
			})
		}
	}
	return a
}

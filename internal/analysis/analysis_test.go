package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads testdata/src/<name> as a standalone package (stdlib
// imports only, no module context).
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

// wantRe matches the fixture expectation comments: // want "substr"
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file string
	line int
	sub  string
}

// expectations collects every want comment in the fixture package.
func expectations(pkg *Package) []expectation {
	var wants []expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, expectation{pos.Filename, pos.Line, m[1]})
			}
		}
	}
	return wants
}

// runFixture checks the analyzer's diagnostics against the fixture's want
// comments: every want must be hit, every diagnostic must be wanted.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	wants := expectations(pkg)

	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if !strings.Contains(d.Message, w.sub) {
				t.Errorf("%s: diagnostic %q does not contain want %q", d.Pos, d.Message, w.sub)
			}
			matched[i] = true
			continue outer
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.sub)
		}
	}
}

func TestLockedField(t *testing.T) { runFixture(t, LockedField(), "lockedfield") }
func TestFloatEq(t *testing.T)     { runFixture(t, FloatEq(), "floateq") }
func TestErrWrap(t *testing.T)     { runFixture(t, ErrWrap(), "errwrap") }
func TestMapIter(t *testing.T)     { runFixture(t, MapIter(), "mapiter") }
func TestCtxFirst(t *testing.T)    { runFixture(t, CtxFirst(), "ctxfirst") }
func TestDenseKeys(t *testing.T)   { runFixture(t, DenseKeys(), "densekeys") }
func TestObsHygiene(t *testing.T)  { runFixture(t, ObsHygiene(), "obshygiene") }
func TestGoHygiene(t *testing.T)   { runFixture(t, GoHygiene(), "gohygiene") }
func TestHotAlloc(t *testing.T)    { runFixture(t, HotAlloc(), "hotalloc") }
func TestFrozen(t *testing.T)      { runFixture(t, Frozen(), "frozen") }
func TestLockFlow(t *testing.T)    { runFixture(t, LockFlow(), "lockflow") }

// TestUnusedIgnore runs floateq over a fixture whose directives are a mix
// of used, stale, and undecidable: only the stale ones are findings.
func TestUnusedIgnore(t *testing.T) { runFixture(t, FloatEq(), "unusedignore") }

// TestGoHygieneExemptsPar checks the one sanctioned goroutine spawner: the
// same fixture loaded under an internal/par import path reports nothing.
func TestGoHygieneExemptsPar(t *testing.T) {
	dir := filepath.Join("testdata", "src", "gohygiene")
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(dir, "magnet/internal/par")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{GoHygiene()}); len(diags) != 0 {
		t.Errorf("gohygiene flagged internal/par: %v", diags)
	}
}

// TestScopeRestrictsFiles checks that a scoped analyzer skips packages
// outside its path scope entirely.
func TestScopeRestrictsFiles(t *testing.T) {
	pkg := loadFixture(t, "floateq")
	diags := Run([]*Package{pkg}, []*Analyzer{FloatEq("internal/vsm")})
	if len(diags) != 0 {
		t.Errorf("scoped analyzer ran out of scope: %v", diags)
	}
	diags = Run([]*Package{pkg}, []*Analyzer{FloatEq("fixture/floateq")})
	if len(diags) == 0 {
		t.Errorf("analyzer scoped to the fixture's package path found nothing")
	}
}

// TestDiagnosticString pins the file:line:col format CI greps for.
func TestDiagnosticString(t *testing.T) {
	pkg := loadFixture(t, "floateq")
	diags := Run([]*Package{pkg}, []*Analyzer{FloatEq()})
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[0].String()
	want := fmt.Sprintf("%s:%d:%d: floateq: ", diags[0].Pos.Filename, diags[0].Pos.Line, diags[0].Pos.Column)
	if !strings.HasPrefix(s, want) {
		t.Errorf("String() = %q, want prefix %q", s, want)
	}
}

// TestRepoIsClean is the acceptance gate, mirroring `make check`: the full
// analyzer set over the whole module, filtered through the committed
// baseline, must report nothing — and the baseline must carry no stale
// entries, so accepted debt can only shrink.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short mode")
	}
	root := filepath.Join("..", "..")
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadModule found only %d packages", len(pkgs))
	}
	diags := Run(pkgs, All())
	data, err := os.ReadFile(filepath.Join(root, "magnet-vet.baseline"))
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	rel := func(name string) string {
		if r, err := filepath.Rel(absRoot, name); err == nil {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(name)
	}
	fresh, stale := ParseBaseline(data).Apply(diags, rel)
	for _, d := range fresh {
		t.Errorf("%s", d)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (matches no finding; remove it): %s", e)
	}
}

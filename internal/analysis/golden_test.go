package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenPipeline runs a representative analyzer set over several
// fixture packages loaded through one shared loader and compares the full
// diagnostic stream — text lines and the -json element shape — against
// testdata/golden.txt. One test pins three contracts at once: diagnostics
// are ordered deterministically across packages, ignore directives both
// suppress and report staleness, and the JSON schema stays stable for
// tooling that parses magnet-vet -json.
//
// Regenerate after intentional changes with:
//
//	go test ./internal/analysis -run Golden -update
func TestGoldenPipeline(t *testing.T) {
	fixtures := []string{"floateq", "frozen", "hotalloc", "lockflow", "unusedignore"}
	l, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	var pkgs []*Package
	for _, name := range fixtures {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags := Run(pkgs, []*Analyzer{FloatEq(), HotAlloc(), Frozen(), LockFlow()})
	if len(diags) == 0 {
		t.Fatal("golden run produced no diagnostics")
	}

	var out bytes.Buffer
	out.WriteString("-- text --\n")
	for _, d := range diags {
		out.WriteString(d.String())
		out.WriteByte('\n')
	}
	jsonDiags := make([]DiagnosticJSON, 0, len(diags))
	for _, d := range diags {
		jsonDiags = append(jsonDiags, d.JSON(filepath.ToSlash))
	}
	js, err := json.MarshalIndent(jsonDiags, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out.WriteString("-- json --\n")
	out.Write(js)
	out.WriteByte('\n')

	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("golden mismatch (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", out.Bytes(), want)
	}
}

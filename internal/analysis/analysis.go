// Package analysis implements magnet-vet, Magnet's own static-analysis
// suite. It encodes the repository's correctness invariants — the locking
// discipline of the blackboard and its neighbours, float comparison rules in
// scoring code, error wrapping, deterministic ordering of advisor output,
// context placement — as named analyzers with file:line diagnostics, the way
// DataGuide-style structural summaries make semistructured invariants
// machine-checkable instead of tribal.
//
// The package is deliberately standard-library only (go/ast, go/parser,
// go/token, go/types): the module must stay dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run inspects a package through the
// Pass and reports findings.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Scope restricts the analyzer to files whose slash-separated path or
	// package import path contains one of these substrings. Empty means
	// every file.
	Scope []string
	// Run reports findings for one package.
	Run func(*Pass)
}

// Pass hands one package to one analyzer and collects its diagnostics.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Files returns the package files the analyzer's scope admits.
func (p *Pass) Files() []*ast.File {
	if len(p.analyzer.Scope) == 0 {
		return p.Pkg.Syntax
	}
	var out []*ast.File
	for _, f := range p.Pkg.Syntax {
		name := fileOf(p.Pkg.Fset, f)
		for _, s := range p.analyzer.Scope {
			if strings.Contains(name, s) || strings.Contains(p.Pkg.PkgPath, s) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

func fileOf(fset *token.FileSet, f *ast.File) string {
	return strings.ReplaceAll(fset.Position(f.Pos()).Filename, "\\", "/")
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e (nil when unknown).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ignoreDirective marks lines carrying a "//magnet-vet:ignore [names...]"
// comment; a bare directive silences every analyzer on that line.
var ignoreDirective = regexp.MustCompile(`//magnet-vet:ignore\b(.*)`)

// ignoredLines maps file → line → analyzer names ignored there (nil slice
// means all analyzers).
func ignoredLines(pkgs []*Package) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreDirective.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					lines := out[pos.Filename]
					if lines == nil {
						lines = make(map[int][]string)
						out[pos.Filename] = lines
					}
					names := strings.Fields(m[1])
					if len(names) == 0 {
						lines[pos.Line] = nil
					} else {
						lines[pos.Line] = append(lines[pos.Line], names...)
					}
				}
			}
		}
	}
	return out
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Lines carrying a magnet-vet:ignore
// directive for the reporting analyzer are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, analyzer: a, diags: &diags}
			a.Run(pass)
		}
	}
	ignored := ignoredLines(pkgs)
	kept := diags[:0]
	for _, d := range diags {
		names, ok := ignored[d.Pos.Filename][d.Pos.Line]
		if ok && (names == nil || contains(names, d.Analyzer)) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos.Filename != kept[j].Pos.Filename {
			return kept[i].Pos.Filename < kept[j].Pos.Filename
		}
		if kept[i].Pos.Line != kept[j].Pos.Line {
			return kept[i].Pos.Line < kept[j].Pos.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// All returns the full magnet-vet analyzer set with its production scopes:
// the locked-field check over the concurrent packages, float equality over
// scoring/ranking code, error hygiene and map-iteration determinism
// everywhere, context placement over the web layer, and observability
// hygiene (no raw prints) over all internal packages.
func All() []*Analyzer {
	return []*Analyzer{
		LockedField(),
		FloatEq("internal/vsm", "internal/core/rank.go"),
		ErrWrap(),
		MapIter(),
		CtxFirst("internal/web"),
		DenseKeys("internal/query", "internal/facets", "internal/vsm", "internal/index"),
		ObsHygiene("internal/"),
		GoHygiene("internal/"),
	}
}

// Unscoped returns the analyzer set with every path scope removed — the
// mode magnet-vet uses on an explicit directory (e.g. a fixture package),
// where all invariants should apply regardless of location.
func Unscoped() []*Analyzer {
	return []*Analyzer{LockedField(), FloatEq(), ErrWrap(), MapIter(), CtxFirst(), DenseKeys(), ObsHygiene(), GoHygiene()}
}

// Package analysis implements magnet-vet, Magnet's own static-analysis
// suite. It encodes the repository's correctness invariants — the locking
// discipline of the blackboard and its neighbours, float comparison rules in
// scoring code, error wrapping, deterministic ordering of advisor output,
// context placement — as named analyzers with file:line diagnostics, the way
// DataGuide-style structural summaries make semistructured invariants
// machine-checkable instead of tribal.
//
// The package is deliberately standard-library only (go/ast, go/parser,
// go/token, go/types): the module must stay dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// DiagnosticJSON is the machine-readable form of a Diagnostic, the element
// shape of magnet-vet -json output.
type DiagnosticJSON struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// JSON converts the diagnostic, rewriting the file name through rel (used
// to emit module-root-relative slash paths; nil keeps the name verbatim).
func (d Diagnostic) JSON(rel func(string) string) DiagnosticJSON {
	file := d.Pos.Filename
	if rel != nil {
		file = rel(file)
	}
	return DiagnosticJSON{
		Analyzer: d.Analyzer,
		File:     file,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
	}
}

// Analyzer is one named invariant check. Per-package analyzers implement
// Run and see one package at a time; interprocedural analyzers implement
// RunModule and see every loaded package at once, together with the shared
// call graph and fact store. An analyzer implements exactly one of the two.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Scope restricts the analyzer to files whose slash-separated path or
	// package import path contains one of these substrings. Empty means
	// every file.
	Scope []string
	// Run reports findings for one package.
	Run func(*Pass)
	// RunModule reports findings over the whole loaded package set.
	RunModule func(*ModulePass)
}

// Pass hands one package to one analyzer and collects its diagnostics.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Files returns the package files the analyzer's scope admits.
func (p *Pass) Files() []*ast.File {
	if len(p.analyzer.Scope) == 0 {
		return p.Pkg.Syntax
	}
	var out []*ast.File
	for _, f := range p.Pkg.Syntax {
		if scopeAdmits(p.analyzer, fileOf(p.Pkg.Fset, f), p.Pkg.PkgPath) {
			out = append(out, f)
		}
	}
	return out
}

// scopeAdmits reports whether a's scope admits the file (matched on its
// slash-separated path) or the package import path it belongs to.
func scopeAdmits(a *Analyzer, filename, pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	name := strings.ReplaceAll(filename, "\\", "/")
	for _, s := range a.Scope {
		if strings.Contains(name, s) || strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

func fileOf(fset *token.FileSet, f *ast.File) string {
	return strings.ReplaceAll(fset.Position(f.Pos()).Filename, "\\", "/")
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e (nil when unknown).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ModulePass hands the whole loaded package set to one interprocedural
// analyzer: every package, the shared type-resolved call graph, and the
// cross-package fact store. The engine builds Graph and Facts once per Run
// and shares them across all module analyzers, so facts written by one
// (hotalloc's reachability, frozen's mutates-param sets) are readable by
// the next.
type ModulePass struct {
	Pkgs  []*Package
	Graph *CallGraph
	Facts *Facts

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos within pkg.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: mp.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// HasDirective reports whether the comment group carries the given magnet
// directive line (e.g. "//magnet:hot"). Directive comments are matched on
// the raw text — ast.CommentGroup.Text strips "//word:" directive lines, so
// callers cannot use it.
func HasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// ignoreDirective marks lines carrying a "//magnet-vet:ignore [names...]"
// comment; a bare directive silences every analyzer on that line.
var ignoreDirective = regexp.MustCompile(`//magnet-vet:ignore\b(.*)`)

// UnusedIgnore is the analyzer name under which stale suppressions are
// reported: an ignore directive that silenced nothing is itself a finding
// (staticcheck's approach), so suppressions cannot outlive the diagnostics
// they were written for.
const UnusedIgnore = "unusedignore"

// ignore is one parsed //magnet-vet:ignore directive with use tracking.
type ignore struct {
	pos     token.Position // directive position (column of the comment)
	pkgPath string         // import path of the package the directive is in
	bare    bool           // directive without names: silence every analyzer
	names   []string
	used    bool
}

// collectIgnores parses every ignore directive in pkgs, keyed file → line.
func collectIgnores(pkgs []*Package) map[string]map[int]*ignore {
	out := make(map[string]map[int]*ignore)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreDirective.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					lines := out[pos.Filename]
					if lines == nil {
						lines = make(map[int]*ignore)
						out[pos.Filename] = lines
					}
					ig := lines[pos.Line]
					if ig == nil {
						ig = &ignore{pos: pos, pkgPath: pkg.PkgPath}
						lines[pos.Line] = ig
					}
					rest := m[1]
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = rest[:i] // allow a trailing comment after the names
					}
					names := strings.Fields(rest)
					if len(names) == 0 {
						ig.bare = true
					} else {
						ig.names = append(ig.names, names...)
					}
				}
			}
		}
	}
	return out
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics in deterministic position order. Per-package analyzers run
// package by package; interprocedural analyzers run once over the whole set
// against a shared call graph and fact store. Lines carrying a
// magnet-vet:ignore directive for the reporting analyzer are dropped — and
// directives that drop nothing are reported as unusedignore findings, so
// stale suppressions cannot accumulate silently.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var mp *ModulePass
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if mp == nil {
			mp = &ModulePass{Pkgs: pkgs, Graph: BuildCallGraph(pkgs), Facts: NewFacts()}
		}
	}
	for _, a := range analyzers {
		switch {
		case a.RunModule != nil:
			a.RunModule(&ModulePass{Pkgs: pkgs, Graph: mp.Graph, Facts: mp.Facts, analyzer: a, diags: &diags})
		case a.Run != nil:
			for _, pkg := range pkgs {
				a.Run(&Pass{Pkg: pkg, analyzer: a, diags: &diags})
			}
		}
	}

	ignores := collectIgnores(pkgs)
	kept := diags[:0]
	for _, d := range diags {
		ig := ignores[d.Pos.Filename][d.Pos.Line]
		if ig != nil && (ig.bare || contains(ig.names, d.Analyzer)) {
			ig.used = true
			continue
		}
		kept = append(kept, d)
	}

	// A directive that suppressed nothing is stale — unless it names
	// analyzers that did not actually look at its file (not part of this
	// run, or scoped away from it), in which case we cannot tell. A bare
	// directive claims the full run set: it is checkable as soon as any
	// analyzer in the run admits the file.
	ran := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = a
	}
	for _, lines := range ignores {
		for _, ig := range lines {
			if ig.used {
				continue
			}
			checkable := false
			if ig.bare {
				for _, a := range analyzers {
					if scopeAdmits(a, ig.pos.Filename, ig.pkgPath) {
						checkable = true
						break
					}
				}
			} else {
				checkable = true
				for _, name := range ig.names {
					if a := ran[name]; a == nil || !scopeAdmits(a, ig.pos.Filename, ig.pkgPath) {
						checkable = false
						break
					}
				}
			}
			if !checkable {
				continue
			}
			what := "every analyzer"
			if !ig.bare {
				what = strings.Join(ig.names, ", ")
			}
			kept = append(kept, Diagnostic{
				Pos:      ig.pos,
				Analyzer: UnusedIgnore,
				Message:  fmt.Sprintf("magnet-vet:ignore directive for %s suppresses nothing; remove it", what),
			})
		}
	}

	sortDiagnostics(kept)
	return kept
}

// sortDiagnostics orders diagnostics fully deterministically across
// packages: file, line, column, analyzer, message.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Pos.Filename != ds[j].Pos.Filename {
			return ds[i].Pos.Filename < ds[j].Pos.Filename
		}
		if ds[i].Pos.Line != ds[j].Pos.Line {
			return ds[i].Pos.Line < ds[j].Pos.Line
		}
		if ds[i].Pos.Column != ds[j].Pos.Column {
			return ds[i].Pos.Column < ds[j].Pos.Column
		}
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// All returns the full magnet-vet analyzer set with its production scopes:
// the locked-field check over the concurrent packages, float equality over
// scoring/ranking code, error hygiene and map-iteration determinism
// everywhere, context placement over the web layer, and observability
// hygiene (no raw prints) over all internal packages.
func All() []*Analyzer {
	return []*Analyzer{
		LockedField(),
		FloatEq("internal/vsm", "internal/core/rank.go"),
		ErrWrap(),
		MapIter(),
		CtxFirst("internal/web"),
		DenseKeys("internal/query", "internal/facets", "internal/vsm", "internal/index"),
		ObsHygiene("internal/"),
		GoHygiene("internal/"),
		HotAlloc(),
		Frozen(),
		LockFlow(),
	}
}

// Unscoped returns the analyzer set with every path scope removed — the
// mode magnet-vet uses on an explicit directory (e.g. a fixture package),
// where all invariants should apply regardless of location.
func Unscoped() []*Analyzer {
	return []*Analyzer{LockedField(), FloatEq(), ErrWrap(), MapIter(), CtxFirst(), DenseKeys(), ObsHygiene(), GoHygiene(), HotAlloc(), Frozen(), LockFlow()}
}

package analysis

import (
	"go/ast"
	"strings"
)

// goHygieneExempt marks the one package allowed to spawn goroutines: the
// worker pool. Everything else in scope fans out through internal/par, so
// the whole pipeline shares a single concurrency budget.
const goHygieneExempt = "internal/par"

// GoHygiene bans bare `go` statements in scoped code: all fan-out goes
// through the internal/par pool, which bounds concurrency, contains
// panics, and carries the par.* observability. internal/par itself is
// exempt (it is the implementation), as are test files (the loader never
// parses *_test.go) and commands outside the scope, which own their own
// process lifecycle.
func GoHygiene(scope ...string) *Analyzer {
	a := &Analyzer{
		Name:  "gohygiene",
		Doc:   "internal packages must fan out via internal/par, not bare go statements",
		Scope: scope,
	}
	a.Run = func(pass *Pass) {
		if strings.Contains(pass.Pkg.PkgPath, goHygieneExempt) {
			return
		}
		for _, f := range pass.Files() {
			if strings.Contains(fileOf(pass.Pkg.Fset, f), goHygieneExempt+"/") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "bare go statement: fan out through the internal/par pool (Submit/ForN/Map) so concurrency stays bounded and panic-safe")
				}
				return true
			})
		}
	}
	return a
}

package analysis

import (
	"go/types"
	"sort"
)

// Facts is the cross-package fact store of the interprocedural engine: a
// map from type-checker objects to named facts that analyzers read and
// write across package boundaries. Because every package in a run is
// type-checked through one shared loader, a types.Object is one identity
// module-wide — a fact recorded while visiting internal/itemset is visible
// verbatim when an analyzer later inspects a call site in internal/facets.
//
// Facts are monotone by convention: an analyzer derives them to a fixpoint
// (see Propagate) and only ever adds, never retracts, so iteration order
// cannot change the result.
type Facts struct {
	m map[types.Object]map[string]any
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{m: make(map[types.Object]map[string]any)}
}

// Set records fact name = v on obj.
func (f *Facts) Set(obj types.Object, name string, v any) {
	facts := f.m[obj]
	if facts == nil {
		facts = make(map[string]any)
		f.m[obj] = facts
	}
	facts[name] = v
}

// Get returns the named fact on obj and whether it exists.
func (f *Facts) Get(obj types.Object, name string) (any, bool) {
	v, ok := f.m[obj][name]
	return v, ok
}

// Has reports whether obj carries the named fact.
func (f *Facts) Has(obj types.Object, name string) bool {
	_, ok := f.m[obj][name]
	return ok
}

// Objects returns every object carrying the named fact, sorted by position
// for deterministic iteration.
func (f *Facts) Objects(name string) []types.Object {
	var out []types.Object
	for obj, facts := range f.m {
		if _, ok := facts[name]; ok {
			out = append(out, obj)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Propagate runs step over every declared function in the call graph until
// no step reports a change — the fixpoint driver for interprocedural facts
// (a function mutates its parameter if it passes it to a mutating
// parameter; a method requires a lock if it calls a method that does).
// step must be monotone: once it reports a fact it must keep holding.
func Propagate(g *CallGraph, step func(n *FuncNode) bool) {
	for {
		changed := false
		for _, n := range g.Funcs() {
			if step(n) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

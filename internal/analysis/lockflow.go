package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// RequiresLocksFact is recorded on methods that must be entered with a
// mutex already held: *Locked methods that touch guarded fields, and
// *Locked methods that call such methods on their own receiver. The value
// is a map[string]bool of required mutex field names.
const RequiresLocksFact = "requires-locks"

// LockFlow extends the guarded-by discipline across call boundaries. The
// per-package lockedfield analyzer checks direct field accesses; LockFlow
// derives which methods *require* a lock on entry — a fooLocked method that
// reads a guarded field, or one that calls another requiring method on its
// own receiver — and then flags every call site that invokes a requiring
// method without visibly holding the mutex on that value. The requirement
// set is computed to a cross-package fixpoint, so a chain of *Locked
// helpers pushes the obligation all the way out to the first caller that
// should be taking the lock.
func LockFlow() *Analyzer {
	a := &Analyzer{
		Name: "lockflow",
		Doc:  "methods that require a lock on entry must be called with that lock held",
	}
	a.RunModule = runLockFlow
	return a
}

func runLockFlow(mp *ModulePass) {
	guards := collectGuards(mp)
	if len(guards) == 0 {
		return
	}
	seedRequires(mp, guards)
	Propagate(mp.Graph, func(n *FuncNode) bool { return absorbRequires(mp, n) })
	for _, n := range mp.Graph.Funcs() {
		if n.Decl.Body != nil {
			reportLockFlow(mp, n)
		}
	}
}

// collectGuards gathers every "guarded by <mu>" annotation in the module,
// keyed by the struct's type object: field name → mutex field name.
// Annotations naming a nonexistent mutex are lockedfield's finding and are
// skipped here.
func collectGuards(mp *ModulePass) map[types.Object]map[string]string {
	out := make(map[types.Object]map[string]string)
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Syntax {
			ast.Inspect(f, func(node ast.Node) bool {
				ts, ok := node.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				fields := make(map[string]bool)
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						fields[name.Name] = true
					}
				}
				var g map[string]string
				for _, field := range st.Fields.List {
					mu := guardAnnotation(field)
					if mu == "" || !fields[mu] {
						continue
					}
					if g == nil {
						g = make(map[string]string)
					}
					for _, name := range field.Names {
						g[name.Name] = mu
					}
				}
				if g != nil {
					if obj := pkg.Info.Defs[ts.Name]; obj != nil {
						out[obj] = g
					}
				}
				return true
			})
		}
	}
	return out
}

// receiverTypeObj returns the type object of fn's receiver's base type, or
// nil for plain functions and non-named receivers.
func receiverTypeObj(fn *types.Func) types.Object {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// seedRequires records the base requirement facts: a *Locked method that
// accesses a guarded field through its receiver without acquiring the
// mutex itself requires that mutex on entry.
func seedRequires(mp *ModulePass, guards map[types.Object]map[string]string) {
	for _, n := range mp.Graph.Funcs() {
		if n.Decl.Recv == nil || n.Decl.Body == nil || !strings.HasSuffix(n.Fn.Name(), "Locked") {
			continue
		}
		g := guards[receiverTypeObj(n.Fn)]
		if g == nil {
			continue
		}
		recvName := receiverName(n.Decl)
		if recvName == "" {
			continue
		}
		held := heldMutexes(n.Decl.Body, recvName)
		var req map[string]bool
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			sel, ok := node.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != recvName {
				return true
			}
			mu, guarded := g[sel.Sel.Name]
			if guarded && !held[mu] {
				if req == nil {
					req = make(map[string]bool)
				}
				req[mu] = true
			}
			return true
		})
		if req != nil {
			mp.Facts.Set(n.Fn, RequiresLocksFact, req)
		}
	}
}

// absorbRequires is the Propagate step: a *Locked method that calls a
// requiring method on its own receiver, without holding the mutex, inherits
// the requirement (the obligation moves to its callers). Returns whether
// the method's requirement set grew.
func absorbRequires(mp *ModulePass, n *FuncNode) bool {
	if n.Decl.Recv == nil || n.Decl.Body == nil || !strings.HasSuffix(n.Fn.Name(), "Locked") {
		return false
	}
	recvName := receiverName(n.Decl)
	if recvName == "" {
		return false
	}
	var cur map[string]bool
	if v, ok := mp.Facts.Get(n.Fn, RequiresLocksFact); ok {
		cur = v.(map[string]bool)
	}
	held := heldMutexes(n.Decl.Body, recvName)
	changed := false
	for _, c := range n.Calls {
		if callReceiverName(c.Expr) != recvName {
			continue
		}
		v, ok := mp.Facts.Get(c.Callee.Fn, RequiresLocksFact)
		if !ok {
			continue
		}
		for mu := range v.(map[string]bool) {
			if held[mu] || cur[mu] {
				continue
			}
			if cur == nil {
				cur = make(map[string]bool)
			}
			cur[mu] = true
			changed = true
		}
	}
	if changed {
		mp.Facts.Set(n.Fn, RequiresLocksFact, cur)
	}
	return changed
}

// callReceiverName returns the simple identifier a method call is made on
// ("b" for b.fooLocked()), or "" for chained or non-selector calls.
func callReceiverName(call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// reportLockFlow flags calls from n to requiring methods made without the
// required mutex visibly held on the callee's receiver value. Calls a
// *Locked method makes on its own receiver are exempt — absorbRequires has
// already pushed that obligation to its callers.
func reportLockFlow(mp *ModulePass, n *FuncNode) {
	recvName := ""
	isLocked := false
	if n.Decl.Recv != nil && strings.HasSuffix(n.Fn.Name(), "Locked") {
		recvName = receiverName(n.Decl)
		isLocked = true
	}
	for _, c := range n.Calls {
		v, ok := mp.Facts.Get(c.Callee.Fn, RequiresLocksFact)
		if !ok {
			continue
		}
		vName := callReceiverName(c.Expr)
		if vName == "" {
			continue
		}
		if isLocked && vName == recvName {
			continue
		}
		held := heldMutexes(n.Decl.Body, vName)
		var missing []string
		for mu := range v.(map[string]bool) {
			if !held[mu] {
				missing = append(missing, mu)
			}
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		for _, mu := range missing {
			mp.Reportf(n.Pkg, c.Site, "calls %s, which requires %s.%s to be held, without acquiring it", c.Callee.Name(), vName, mu)
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// FrozenDirective marks a publish point: on a function or method, every
// slice-typed result is published read-only (itemset.Set.Slice); on a
// struct field, every slice reachable through the field is a copy-on-write
// posting that must be replaced, never mutated in place (rdf.Graph.pos,
// rdf.Graph.subjIDs, and the mmap-backed segment columns to come).
const FrozenDirective = "//magnet:frozen"

// Facts the frozen analyzer derives and shares through the store. Producer
// and field facts carry the publish point's display name as their value;
// the mutates fact carries a []bool over the function's parameters.
const (
	FrozenProducerFact = "frozen-producer"
	FrozenFieldFact    = "frozen-field"
	MutatesParamsFact  = "mutates-params"
)

// Frozen enforces publish-then-freeze interprocedurally: a slice value that
// flowed out of a //magnet:frozen publish point must never be written again
// — not by index assignment, not by append (growth in place can write the
// shared backing array), not by copy into it, not by an in-place sort, and
// not by passing it into a parameter some callee mutates. Mutating callees
// are discovered by a cross-package fixpoint over the call graph, and
// functions that return a frozen value verbatim become publish points
// themselves, so wrapping an accessor does not launder the invariant away.
//
// Whole-value replacement stays legal: `g.postings[k] = newSlice` is the
// copy-on-write discipline, `g.postings[k][i] = v` is the bug.
func Frozen() *Analyzer {
	a := &Analyzer{
		Name: "frozen",
		Doc:  "slices published by //magnet:frozen producers/fields must never be mutated in place",
	}
	a.RunModule = runFrozen
	return a
}

func runFrozen(mp *ModulePass) {
	collectFrozenAnnotations(mp)
	deriveMutatesParams(mp)
	deriveProducers(mp)
	for _, n := range mp.Graph.Funcs() {
		if n.Decl.Body != nil {
			reportFrozen(mp, n)
		}
	}
}

// collectFrozenAnnotations seeds the fact store from //magnet:frozen
// directives on function declarations and struct fields.
func collectFrozenAnnotations(mp *ModulePass) {
	for _, n := range mp.Graph.Funcs() {
		if HasDirective(n.Decl.Doc, FrozenDirective) {
			mp.Facts.Set(n.Fn, FrozenProducerFact, n.Name())
		}
	}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Syntax {
			ast.Inspect(f, func(node ast.Node) bool {
				ts, ok := node.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if !HasDirective(field.Doc, FrozenDirective) && !HasDirective(field.Comment, FrozenDirective) {
						continue
					}
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							mp.Facts.Set(obj, FrozenFieldFact, pkg.Types.Name()+"."+ts.Name.Name+"."+name.Name)
						}
					}
				}
				return true
			})
		}
	}
}

// sortMutators lists standard-library in-place mutators by package path and
// function name (the mutated argument is always the first).
var sortMutators = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Ints": true, "Strings": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true, "Reverse": true},
}

// isExternalMutator reports whether fn is a known stdlib function that
// mutates its first argument in place.
func isExternalMutator(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	return sortMutators[fn.Pkg().Path()][fn.Name()]
}

// deriveMutatesParams computes, to a cross-package fixpoint, which slice
// parameters each function writes through — directly (index assignment,
// append, copy, in-place sort) or by handing the parameter to a callee
// known to mutate it.
func deriveMutatesParams(mp *ModulePass) {
	Propagate(mp.Graph, func(n *FuncNode) bool {
		if n.Decl.Body == nil {
			return false
		}
		idx := paramIndexes(n)
		if len(idx) == 0 {
			return false
		}
		cur, _ := mp.Facts.Get(n.Fn, MutatesParamsFact)
		mut, _ := cur.([]bool)
		if mut == nil {
			mut = make([]bool, n.Fn.Type().(*types.Signature).Params().Len())
		}
		changed := false
		mark := func(e ast.Expr) {
			if i, ok := idx[sliceRootObj(n.Pkg, e)]; ok && !mut[i] {
				mut[i] = true
				changed = true
			}
		}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if ix, ok := unparen(lhs).(*ast.IndexExpr); ok && isSliceType(n.Pkg.Info.TypeOf(ix.X)) {
						mark(ix.X)
					}
				}
			case *ast.CallExpr:
				forEachMutatedArg(n.Pkg, s, mp.Facts, mark)
			}
			return true
		})
		if changed {
			mp.Facts.Set(n.Fn, MutatesParamsFact, mut)
		}
		return changed
	})
}

// forEachMutatedArg calls mark(arg) for every argument position of call
// that the callee is known to write through: the append/copy built-ins,
// stdlib in-place sorts, and any function carrying a mutates-params fact.
func forEachMutatedArg(pkg *Package, call *ast.CallExpr, facts *Facts, mark func(ast.Expr)) {
	if len(call.Args) == 0 {
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" || b.Name() == "copy" {
				mark(call.Args[0])
			}
			return
		}
	}
	fn := CalleeOf(pkg, call)
	if fn == nil {
		return
	}
	if isExternalMutator(fn) {
		mark(call.Args[0])
		return
	}
	fact, ok := facts.Get(fn, MutatesParamsFact)
	if !ok {
		return
	}
	mut := fact.([]bool)
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		j := i
		if sig.Variadic() && i >= np-1 {
			j = np - 1
		}
		if j < len(mut) && mut[j] {
			mark(arg)
		}
	}
}

// paramIndexes maps each parameter object of n to its signature index.
func paramIndexes(n *FuncNode) map[types.Object]int {
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		out[sig.Params().At(i)] = i
	}
	return out
}

// sliceRootObj unwraps index/slice/paren wrapping and returns the root
// identifier's object (nil when the expression is not identifier-rooted).
// Selector-rooted expressions return nil: a write through p.field mutates
// the field's referent, not the parameter binding itself.
func sliceRootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			return pkg.Info.Uses[x]
		default:
			return nil
		}
	}
}

// deriveProducers extends the annotated publish points: any function whose
// return statement hands back a frozen value in a slice-typed position is
// itself a producer. Runs to a fixpoint because producers feed the taint
// that discovers more producers.
func deriveProducers(mp *ModulePass) {
	for {
		changed := false
		for _, n := range mp.Graph.Funcs() {
			if n.Decl.Body == nil || mp.Facts.Has(n.Fn, FrozenProducerFact) {
				continue
			}
			taint := computeFrozenTaint(mp, n)
			found := ""
			ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
				ret, ok := node.(*ast.ReturnStmt)
				if !ok || found != "" {
					return true
				}
				for _, res := range ret.Results {
					if isSliceType(n.Pkg.Info.TypeOf(res)) {
						if origin := frozenOrigin(mp, n.Pkg, res, taint); origin != "" {
							found = origin
							break
						}
					}
				}
				return true
			})
			if found != "" {
				mp.Facts.Set(n.Fn, FrozenProducerFact, found)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// frozenTaint records, per local variable, the publish point its value (or
// pointee, for pointer-to-slice locals) flowed from.
type frozenTaint struct {
	value map[types.Object]string
	deref map[types.Object]string
}

// computeFrozenTaint runs the intraprocedural flow: locals assigned from
// frozen expressions (producer calls, frozen-field reads, other tainted
// locals — possibly through indexing, slicing or ranging) become frozen
// themselves. Iterates to a local fixpoint so chains of assignments
// converge regardless of source order.
func computeFrozenTaint(mp *ModulePass, n *FuncNode) *frozenTaint {
	t := &frozenTaint{value: make(map[types.Object]string), deref: make(map[types.Object]string)}
	pkg := n.Pkg
	for {
		changed := false
		set := func(m map[types.Object]string, obj types.Object, origin string) {
			if obj != nil && origin != "" && m[obj] == "" {
				m[obj] = origin
				changed = true
			}
		}
		assign := func(lhs, rhs ast.Expr) {
			origin := frozenOrigin(mp, pkg, rhs, t)
			if origin == "" {
				return
			}
			switch l := unparen(lhs).(type) {
			case *ast.Ident:
				set(t.value, pkg.Info.Defs[l], origin)
				set(t.value, pkg.Info.Uses[l], origin)
			case *ast.StarExpr:
				if id, ok := unparen(l.X).(*ast.Ident); ok {
					set(t.deref, pkg.Info.Uses[id], origin)
				}
			}
		}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						assign(s.Lhs[i], s.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) == len(s.Values) {
					for i := range s.Names {
						assign(s.Names[i], s.Values[i])
					}
				}
			case *ast.RangeStmt:
				if s.Value != nil {
					vt := pkg.Info.TypeOf(s.Value)
					if isSliceType(vt) || isMapType(vt) {
						if origin := frozenOrigin(mp, pkg, s.X, t); origin != "" {
							if id, ok := unparen(s.Value).(*ast.Ident); ok {
								set(t.value, pkg.Info.Defs[id], origin)
								set(t.value, pkg.Info.Uses[id], origin)
							}
						}
					}
				}
			}
			return true
		})
		if !changed {
			return t
		}
	}
}

// frozenOrigin returns the publish point e's value flowed from, or "" when
// e is not provably frozen. Only slice- and map-typed expressions carry
// frozen-ness (elements of a frozen []uint32 are plain values).
func frozenOrigin(mp *ModulePass, pkg *Package, e ast.Expr, t *frozenTaint) string {
	if ty := pkg.Info.TypeOf(e); !isSliceType(ty) && !isMapType(ty) {
		return ""
	}
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			if id, ok := unparen(x.X).(*ast.Ident); ok {
				if origin := t.deref[pkg.Info.Uses[id]]; origin != "" {
					return origin
				}
			}
			return ""
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[x]; ok {
				if origin, ok := mp.Facts.Get(sel.Obj(), FrozenFieldFact); ok {
					return origin.(string)
				}
			}
			if origin, ok := mp.Facts.Get(pkg.Info.Uses[x.Sel], FrozenFieldFact); ok {
				return origin.(string)
			}
			return ""
		case *ast.Ident:
			if origin := t.value[pkg.Info.Uses[x]]; origin != "" {
				return origin
			}
			return ""
		case *ast.CallExpr:
			if fn := CalleeOf(pkg, x); fn != nil {
				if origin, ok := mp.Facts.Get(fn, FrozenProducerFact); ok {
					return origin.(string)
				}
			}
			return ""
		default:
			return ""
		}
	}
}

// reportFrozen flags every in-place write to a frozen value in n's body.
func reportFrozen(mp *ModulePass, n *FuncNode) {
	pkg := n.Pkg
	taint := computeFrozenTaint(mp, n)
	origin := func(e ast.Expr) string { return frozenOrigin(mp, pkg, e, taint) }
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				ix, ok := unparen(lhs).(*ast.IndexExpr)
				if !ok || !isSliceType(pkg.Info.TypeOf(ix.X)) {
					continue
				}
				if o := origin(ix.X); o != "" {
					mp.Reportf(pkg, lhs.Pos(), "index assignment writes into a slice published by %s; copy-on-write: build a new slice and replace it", o)
				}
			}
		case *ast.CallExpr:
			reportFrozenCall(mp, n, s, origin)
		}
		return true
	})
}

// reportFrozenCall flags calls that write through a frozen argument:
// append/copy built-ins, stdlib in-place sorts, and callees whose
// mutates-params fact covers the argument's position.
func reportFrozenCall(mp *ModulePass, n *FuncNode, call *ast.CallExpr, origin func(ast.Expr) string) {
	pkg := n.Pkg
	if len(call.Args) == 0 {
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if o := origin(call.Args[0]); o != "" {
					mp.Reportf(pkg, call.Pos(), "append may write into the backing array of a slice published by %s; copy first", o)
				}
			case "copy":
				if o := origin(call.Args[0]); o != "" {
					mp.Reportf(pkg, call.Pos(), "copy writes into a slice published by %s", o)
				}
			}
			return
		}
	}
	fn := CalleeOf(pkg, call)
	if fn == nil {
		return
	}
	if isExternalMutator(fn) {
		if o := origin(call.Args[0]); o != "" {
			mp.Reportf(pkg, call.Pos(), "in-place %s.%s of a slice published by %s", fn.Pkg().Name(), fn.Name(), o)
		}
		return
	}
	fact, ok := mp.Facts.Get(fn, MutatesParamsFact)
	if !ok {
		return
	}
	mut := fact.([]bool)
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		j := i
		if sig.Variadic() && i >= np-1 {
			j = np - 1
		}
		if j >= len(mut) || !mut[j] {
			continue
		}
		if o := origin(arg); o != "" {
			mp.Reportf(pkg, arg.Pos(), "passes a slice published by %s to parameter %q of %s, which mutates it", o, sig.Params().At(j).Name(), fn.Name())
		}
	}
}

func isSliceType(t types.Type) bool {
	_, ok := typeUnder(t).(*types.Slice)
	return ok
}

func isMapType(t types.Type) bool {
	_, ok := typeUnder(t).(*types.Map)
	return ok
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq forbids == and != between floating-point operands in
// scoring/ranking code. tf·idf weights, cosine similarities and rank scores
// go through enough arithmetic that exact equality is a latent bug (§5's
// vector model is all accumulated float sums); comparisons must go through
// the vsm.ApproxEqual epsilon helper instead.
func FloatEq(scope ...string) *Analyzer {
	a := &Analyzer{
		Name:  "floateq",
		Doc:   "no ==/!= on floating-point values in scoring code; use vsm.ApproxEqual",
		Scope: scope,
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(pass.TypeOf(be.X)) && isFloat(pass.TypeOf(be.Y)) {
					pass.Reportf(be.OpPos, "%s on float operands; use vsm.ApproxEqual (epsilon compare)", be.Op)
				}
				return true
			})
		}
	}
	return a
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

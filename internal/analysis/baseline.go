package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Baseline is the set of accepted findings magnet-vet tolerates: the
// staticcheck-style ratchet. The committed file holds one finding per line
// in the exact Diagnostic.String() format with module-root-relative slash
// paths; '#' lines and blank lines are comments. A run fails on any finding
// not in the baseline — and on any baseline entry no finding matches, so
// the file can only shrink as debt is paid down.
type Baseline struct {
	entries map[string]bool
}

// ParseBaseline reads the baseline file format.
func ParseBaseline(data []byte) *Baseline {
	b := &Baseline{entries: make(map[string]bool)}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.entries[line] = true
	}
	return b
}

// baselineKey renders d in the baseline's line format, with the file name
// rewritten through rel.
func baselineKey(d Diagnostic, rel func(string) string) string {
	file := d.Pos.Filename
	if rel != nil {
		file = rel(file)
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Apply filters diags through the baseline: it returns the findings not
// covered by an entry, plus the stale entries that covered nothing (sorted;
// each stale entry is itself an error — remove it from the file).
func (b *Baseline) Apply(diags []Diagnostic, rel func(string) string) (fresh []Diagnostic, stale []string) {
	matched := make(map[string]bool, len(b.entries))
	for _, d := range diags {
		key := baselineKey(d, rel)
		if b.entries[key] {
			matched[key] = true
			continue
		}
		fresh = append(fresh, d)
	}
	for e := range b.entries {
		if !matched[e] {
			stale = append(stale, e)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// FormatBaseline renders diags as the baseline file contents.
func FormatBaseline(diags []Diagnostic, rel func(string) string) string {
	var sb strings.Builder
	sb.WriteString("# magnet-vet baseline: accepted pre-existing findings, one per line.\n")
	sb.WriteString("# Regenerate with: go run ./cmd/magnet-vet -write-baseline <this file> ./...\n")
	for _, d := range diags {
		sb.WriteString(baselineKey(d, rel))
		sb.WriteByte('\n')
	}
	return sb.String()
}

package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// guardedBy matches the locking-discipline annotation magnet-vet consumes:
//
//	mu sync.Mutex
//	// guarded by mu
//	sessions map[string]*core.Session
//
// (the annotation may be the field's doc comment or its line comment).
var guardedBy = regexp.MustCompile(`guarded by (\w+)`)

// LockedField enforces the documented locking discipline: a struct field
// annotated "// guarded by <mu>" may only be accessed through its receiver
// in methods that visibly acquire that mutex (a <recv>.<mu>.Lock() or
// .RLock() call anywhere in the body) or that declare themselves
// lock-inherited by the *Locked naming convention. It also rejects
// annotations naming a mutex the struct does not have — a stale comment is
// worse than none.
func LockedField() *Analyzer {
	a := &Analyzer{
		Name: "lockedfield",
		Doc:  "fields annotated 'guarded by <mu>' must be accessed under that mutex",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files() {
			runLockedFieldFile(pass, f)
		}
	}
	return a
}

// structGuards records, for one struct type, which fields are guarded by
// which mutex field.
type structGuards struct {
	// guards maps field name → mutex field name.
	guards map[string]string
	// fields is the set of all field names (to validate annotations).
	fields map[string]bool
}

func runLockedFieldFile(pass *Pass, f *ast.File) {
	byStruct := make(map[string]structGuards)
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		sg := structGuards{guards: make(map[string]string), fields: make(map[string]bool)}
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				sg.fields[name.Name] = true
			}
		}
		for _, field := range st.Fields.List {
			mu := guardAnnotation(field)
			if mu == "" {
				continue
			}
			if !sg.fields[mu] {
				pass.Reportf(field.Pos(), "field %s claims 'guarded by %s' but struct %s has no field %s",
					fieldNames(field), mu, ts.Name.Name, mu)
				continue
			}
			for _, name := range field.Names {
				sg.guards[name.Name] = mu
			}
		}
		if len(sg.guards) > 0 {
			byStruct[ts.Name.Name] = sg
		}
		return true
	})
	if len(byStruct) == 0 {
		return
	}

	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Body == nil {
			continue
		}
		recvType := receiverTypeName(fd)
		sg, ok := byStruct[recvType]
		if !ok {
			continue
		}
		if strings.HasSuffix(fd.Name.Name, "Locked") {
			continue // caller holds the lock by convention
		}
		recvName := receiverName(fd)
		if recvName == "" {
			continue // receiver unnamed: fields are unreachable
		}
		held := heldMutexes(fd.Body, recvName)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != recvName {
				return true
			}
			mu, guarded := sg.guards[sel.Sel.Name]
			if !guarded || held[mu] {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s is guarded by %s but method %s accesses it without %s.%s.Lock()",
				recvType, sel.Sel.Name, mu, fd.Name.Name, recvName, mu)
			return true
		})
	}
}

// guardAnnotation returns the mutex named by a field's guarded-by comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedBy.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func fieldNames(field *ast.Field) string {
	var names []string
	for _, n := range field.Names {
		names = append(names, n.Name)
	}
	return strings.Join(names, ", ")
}

// receiverTypeName returns the base type name of a method receiver.
func receiverTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// heldMutexes returns the mutex field names for which body contains a
// <recv>.<mu>.Lock() or <recv>.<mu>.RLock() call.
func heldMutexes(body *ast.BlockStmt, recvName string) map[string]bool {
	held := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := inner.X.(*ast.Ident); ok && id.Name == recvName {
			held[inner.Sel.Name] = true
		}
		return true
	})
	return held
}

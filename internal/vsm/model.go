package vsm

import (
	"context"
	"errors"
	"math"
	"sort"

	"magnet/internal/index"
	"magnet/internal/par"
	"magnet/internal/rdf"
	"magnet/internal/schema"
	"magnet/internal/text"
)

// Options tunes the model. The zero value gives the paper's configuration;
// the Disable*/Raw* switches exist for the ablation experiments called out
// in DESIGN.md.
type Options struct {
	// MaxDepth bounds property-path length for composed coordinates;
	// direct attributes have depth 1. 0 means the default: 2 when the
	// dataset has composition annotations, raised to TreeDepth for
	// tree-shaped datasets (§6.2).
	MaxDepth int
	// TreeDepth is the depth used for tree-shaped datasets when MaxDepth
	// is 0 (default 4).
	TreeDepth int
	// DisableCompositions ablates §5.1 attribute compositions.
	DisableCompositions bool
	// DisablePerAttributeNorm ablates §5.2 per-attribute frequency
	// normalization (raw counts are used instead).
	DisablePerAttributeNorm bool
	// RawNumeric ablates §5.4: numeric values become a single raw-valued
	// coordinate instead of the unit-circle pair, demonstrating the
	// "arbitrarily large values swamp other coordinates" failure the paper
	// designed around.
	RawNumeric bool
	// Analyzer overrides the text pipeline (text.DefaultAnalyzer if nil).
	Analyzer *text.Analyzer
}

func (o Options) maxDepth(tree bool) int {
	if o.MaxDepth > 0 {
		return o.MaxDepth
	}
	if tree {
		if o.TreeDepth > 0 {
			return o.TreeDepth
		}
		return 4
	}
	return 2
}

// Range tracks the observed numeric range of a property path; the
// unit-circle encoding maps [Min, Max] onto [0, π/2].
type Range struct {
	Min, Max float64
	Count    int
}

func (r *Range) observe(v float64) {
	if r.Count == 0 || v < r.Min {
		r.Min = v
	}
	if r.Count == 0 || v > r.Max {
		r.Max = v
	}
	r.Count++
}

// theta maps v into [0, π/2], clamping values outside the observed range
// (items indexed after IndexAll may exceed it).
func (r *Range) theta(v float64) float64 {
	if r.Max <= r.Min {
		return 0
	}
	t := (v - r.Min) / (r.Max - r.Min)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return t * math.Pi / 2
}

// Model is the semistructured vector space model over a graph.
type Model struct {
	g     *rdf.Graph
	sch   *schema.Store
	store *index.VectorStore
	an    *text.Analyzer
	opts  Options

	// stats holds numeric range statistics per property path, populated by
	// IndexAll's first pass.
	stats map[string]*Range

	// pool bounds IndexAll's parallel vectorization; nil indexes serially.
	pool *par.Pool
}

// SetPool sets the worker pool for batch indexing and hands it to the
// vector store for similarity/centroid scans. Call before IndexAll; a nil
// pool (the default) keeps everything serial.
func (m *Model) SetPool(p *par.Pool) {
	m.pool = p
	m.store.SetPool(p)
}

// New returns a model over g with annotations from sch.
func New(g *rdf.Graph, sch *schema.Store, opts Options) *Model {
	an := opts.Analyzer
	if an == nil {
		an = text.DefaultAnalyzer
	}
	store := index.NewVectorStore()
	store.PinnedPrefix = PinnedPrefix
	return &Model{
		g:     g,
		sch:   sch,
		store: store,
		an:    an,
		opts:  opts,
		stats: make(map[string]*Range),
	}
}

// FromStore returns a model over an existing vector store — typically a
// read-only segment view — with precomputed numeric range statistics in
// place of an IndexAll pass. IndexAll/IndexItem/RemoveItem must not be
// called when the store is read-only.
func FromStore(g *rdf.Graph, sch *schema.Store, store *index.VectorStore, ranges map[string]Range, opts Options) *Model {
	an := opts.Analyzer
	if an == nil {
		an = text.DefaultAnalyzer
	}
	stats := make(map[string]*Range, len(ranges))
	for k, r := range ranges {
		r := r
		stats[k] = &r
	}
	return &Model{g: g, sch: sch, store: store, an: an, opts: opts, stats: stats}
}

// Ranges returns a copy of the numeric range statistics gathered by the
// last IndexAll, keyed by PathKey — the build-side export persistent
// segments serialize and FromStore restores.
func (m *Model) Ranges() map[string]Range {
	out := make(map[string]Range, len(m.stats))
	for k, r := range m.stats {
		out[k] = *r
	}
	return out
}

// Store exposes the underlying vector store (read-mostly; tests and benches
// use it directly).
func (m *Model) Store() *index.VectorStore { return m.store }

// NumericRange returns the observed range for a property path, if any.
func (m *Model) NumericRange(path []rdf.IRI) (Range, bool) {
	r, ok := m.stats[PathKey(path)]
	if !ok {
		return Range{}, false
	}
	return *r, true
}

// IndexAll (re)indexes the given items: a first pass gathers numeric range
// statistics (the unit-circle encoding needs each attribute's observed
// range), a second pass builds and stores each item's vector in parallel —
// vectorization only reads the graph and the completed statistics. This is
// the paper's "indexing the data in advance (as it arrives)" (§5.2) in
// batch form.
func (m *Model) IndexAll(items []rdf.IRI) {
	m.stats = make(map[string]*Range)
	for _, it := range items {
		m.walk(it, nil, m.statsVisitor())
	}

	// Vectorize on the pool — it only reads the graph and the completed
	// statistics — then store serially in item order, so doc/term interning
	// order (and thus the store's internal numbering) is deterministic at
	// every pool width, unlike the old racing-workers scheme.
	vecs, err := par.Map(context.Background(), m.pool, items, func(i int, it rdf.IRI) map[string]float64 {
		return m.Vectorize(it)
	})
	var pe *par.PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}
	for i, it := range items {
		m.store.Add(string(it), vecs[i])
	}
}

// IndexItem indexes (or reindexes) a single item using the statistics from
// the last IndexAll; numeric values outside the observed range clamp.
func (m *Model) IndexItem(item rdf.IRI) {
	m.store.Add(string(item), m.Vectorize(item))
}

// RemoveItem removes an item from the store.
func (m *Model) RemoveItem(item rdf.IRI) bool {
	return m.store.Remove(string(item))
}

// visitor receives each coordinate contribution during a traversal.
type visitor func(path []rdf.IRI, vt schema.ValueType, values []rdf.Term, weight float64, out map[string]float64)

func (m *Model) statsVisitor() visitor {
	return func(path []rdf.IRI, vt schema.ValueType, values []rdf.Term, _ float64, _ map[string]float64) {
		if !vt.Numeric() {
			return
		}
		key := PathKey(path)
		r := m.stats[key]
		if r == nil {
			r = &Range{}
			m.stats[key] = r
		}
		for _, v := range values {
			if lit, ok := v.(rdf.Literal); ok {
				if f, ok := lit.Float(); ok {
					r.observe(f)
				}
			}
		}
	}
}

// Vectorize builds the raw coordinate-frequency map for an item (the input
// to the store's tf·idf weighting). Exposed for tests and the Figure 3→4
// experiment.
func (m *Model) Vectorize(item rdf.IRI) map[string]float64 {
	out := make(map[string]float64)
	m.walk(item, nil, m.coordVisitor(out))
	return out
}

func (m *Model) coordVisitor(out map[string]float64) visitor {
	return func(path []rdf.IRI, vt schema.ValueType, values []rdf.Term, weight float64, _ map[string]float64) {
		m.emit(path, vt, values, weight, out)
	}
}

// walk traverses the item's attributes (and composed attributes) calling v
// for every (path, values) pair.
func (m *Model) walk(node rdf.IRI, prefix []rdf.IRI, v visitor) {
	m.walkRec(node, prefix, make([]rdf.IRI, 0, 8), 1, v)
}

// onPath is the stack of nodes on the current recursion path (cycle guard);
// composition depth is small, so a linear scan beats hashing every node.
func onPathContains(onPath []rdf.IRI, node rdf.IRI) bool {
	for _, n := range onPath {
		if n == node {
			return true
		}
	}
	return false
}

func (m *Model) walkRec(node rdf.IRI, prefix, onPath []rdf.IRI, weight float64, v visitor) {
	onPath = append(onPath, node)

	tree := m.sch.TreeShaped()
	maxDepth := m.opts.maxDepth(tree)
	for _, p := range m.g.PredicatesOf(node) {
		if m.sch.Hidden(p) {
			continue
		}
		values := m.g.Objects(node, p)
		if len(values) == 0 {
			continue
		}
		path := append(append([]rdf.IRI{}, prefix...), p)
		vt := m.sch.ValueType(p)
		v(path, vt, values, weight, nil)

		// Composition (§5.1): follow resource values one more level when
		// the property is annotated composable, or the dataset is
		// tree-shaped, within the depth bound.
		if m.opts.DisableCompositions || len(path) >= maxDepth {
			continue
		}
		if !m.sch.Composable(p) && !tree {
			continue
		}
		childWeight := weight
		if !m.opts.DisablePerAttributeNorm {
			childWeight = weight / float64(len(values))
		}
		for _, val := range values {
			obj, ok := val.(rdf.IRI)
			if !ok || onPathContains(onPath, obj) {
				continue
			}
			m.walkRec(obj, path, onPath, childWeight, v)
		}
	}
}

// emit converts one (path, values) attribute into coordinate frequencies.
//
// Per-attribute normalization (§5.2, "first divide each term frequency by
// the number of values for the attributes"): each attribute contributes
// total mass `weight` regardless of how many values (or, for text, how many
// words) it carries — "for an email, the importance of the subject is the
// same as the importance of the body".
func (m *Model) emit(path []rdf.IRI, vt schema.ValueType, values []rdf.Term, weight float64, out map[string]float64) {
	if vt.Numeric() && !m.opts.RawNumeric {
		m.emitUnitCircle(path, values, weight, out)
		return
	}
	if vt.Numeric() && m.opts.RawNumeric {
		m.emitRawNumeric(path, values, weight, out)
		return
	}

	norm := !m.opts.DisablePerAttributeNorm

	// First pass over values: collect text token counts and object values.
	tokenCounts := make(map[string]int)
	totalTokens := 0
	var objects []rdf.Term
	for _, val := range values {
		switch tv := val.(type) {
		case rdf.Literal:
			if tv.Datatype == "" || tv.Datatype == rdf.XSDString {
				for _, tok := range m.an.Terms(tv.Lexical) {
					tokenCounts[tok]++
					totalTokens++
				}
				continue
			}
			// Non-text literals (booleans, typed numbers on a property whose
			// *effective* type is not numeric, e.g. mixed bags) are treated
			// by identity.
			objects = append(objects, tv)
		default:
			objects = append(objects, tv)
		}
	}

	// Objects: identity coordinates.
	for _, o := range objects {
		c := Coord{Kind: CoordObject, Path: path, Value: o}
		f := 1.0
		if norm {
			f = weight / float64(len(values))
		}
		out[c.Key()] += f
	}
	// Text: word coordinates. Under per-attribute normalization the word
	// mass of this attribute sums to weight × (textValues/len(values)).
	if totalTokens > 0 {
		textValues := len(values) - len(objects)
		for tok, cnt := range tokenCounts {
			c := Coord{Kind: CoordWord, Path: path, Word: tok}
			f := float64(cnt)
			if norm {
				f = weight * (float64(textValues) / float64(len(values))) * float64(cnt) / float64(totalTokens)
			}
			out[c.Key()] += f
		}
	}
}

// emitUnitCircle implements §5.4: map the attribute's numeric value into
// [0, π/2] over the corpus range and contribute the (cos θ, sin θ) pair,
// whose norm is always 1 — "all values have the same norm but different
// values have small dot product". Multiple values average first.
func (m *Model) emitUnitCircle(path []rdf.IRI, values []rdf.Term, weight float64, out map[string]float64) {
	f, ok := averageNumeric(values)
	if !ok {
		return
	}
	r := m.stats[PathKey(path)]
	if r == nil {
		// Item indexed without prior IndexAll stats: a local single-value
		// range (θ = 0) keeps the coordinate present without mutating
		// shared statistics — Vectorize must stay read-only so IndexAll can
		// run it concurrently.
		local := &Range{}
		local.observe(f)
		r = local
	}
	theta := r.theta(f)
	w := weight
	if m.opts.DisablePerAttributeNorm {
		w = 1
	}
	out[Coord{Kind: CoordNumeric, Path: path, Axis: "cos"}.Key()] += w * math.Cos(theta)
	out[Coord{Kind: CoordNumeric, Path: path, Axis: "sin"}.Key()] += w * math.Sin(theta)
}

// emitRawNumeric is the §5.4 ablation: a single coordinate carrying the raw
// value, which lets large magnitudes swamp every other coordinate after
// document normalization.
func (m *Model) emitRawNumeric(path []rdf.IRI, values []rdf.Term, weight float64, out map[string]float64) {
	f, ok := averageNumeric(values)
	if !ok {
		return
	}
	if f < 0 {
		f = -f
	}
	out[Coord{Kind: CoordNumeric, Path: path, Axis: "cos"}.Key()] += weight * f
}

func averageNumeric(values []rdf.Term) (float64, bool) {
	var sum float64
	n := 0
	for _, v := range values {
		if lit, ok := v.(rdf.Literal); ok {
			if f, ok := lit.Float(); ok {
				sum += f
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Vector returns the item's normalized tf·idf vector.
func (m *Model) Vector(item rdf.IRI) map[string]float64 {
	return m.store.Vector(string(item))
}

// Similarity returns the cosine similarity of two items (§5.3: "a
// traditional dot-product between the two vectors").
func (m *Model) Similarity(a, b rdf.IRI) float64 {
	return m.store.Similarity(string(a), string(b))
}

// ScoredItem pairs an item with a similarity score.
type ScoredItem struct {
	Item  rdf.IRI
	Score float64
}

// SimilarToItem returns up to k items most similar to item, excluding the
// item itself.
func (m *Model) SimilarToItem(item rdf.IRI, k int) []ScoredItem {
	self := string(item)
	return toScoredItems(m.store.SimilarTo(m.Vector(item), k, func(id string) bool {
		return id == self
	}))
}

// Centroid returns the normalized "average member" vector of a collection
// (§5.3).
func (m *Model) Centroid(items []rdf.IRI) map[string]float64 {
	ids := make([]string, len(items))
	for i, it := range items {
		ids[i] = string(it)
	}
	return m.store.Centroid(ids)
}

// SimilarToCollection returns up to k items most similar to the collection
// centroid; members themselves are excluded when excludeMembers is true.
// This backs the "Similar by Content (Overall)" advisor's collection
// analyst (§4.1).
func (m *Model) SimilarToCollection(items []rdf.IRI, k int, excludeMembers bool) []ScoredItem {
	var exclude func(string) bool
	if excludeMembers {
		member := make(map[string]bool, len(items))
		for _, it := range items {
			member[string(it)] = true
		}
		exclude = func(id string) bool { return member[id] }
	}
	return toScoredItems(m.store.SimilarTo(m.Centroid(items), k, exclude))
}

func toScoredItems(scored []index.Scored) []ScoredItem {
	out := make([]ScoredItem, len(scored))
	for i, s := range scored {
		out[i] = ScoredItem{Item: rdf.IRI(s.ID), Score: s.Score}
	}
	return out
}

// WeightedCoord is a decoded coordinate with its centroid weight.
type WeightedCoord struct {
	Coord  Coord
	Weight float64
}

// RefinementCoords implements the paper's query-refinement technique
// (§5.3): "picking terms in the average document having the largest
// normalized term weights". It returns the k highest-weighted object and
// word coordinates of the collection centroid (numeric coordinates are
// handled by the range analyst instead), optionally filtered by accept.
func (m *Model) RefinementCoords(items []rdf.IRI, k int, accept func(Coord) bool) []WeightedCoord {
	centroid := m.Centroid(items)
	top := index.TopTerms(centroid, k, func(term string) bool {
		c, ok := ParseCoord(term)
		if !ok || c.Kind == CoordNumeric {
			return false
		}
		if accept != nil && !accept(c) {
			return false
		}
		return true
	})
	out := make([]WeightedCoord, 0, len(top))
	for _, tw := range top {
		c, _ := ParseCoord(tw.Term)
		out = append(out, WeightedCoord{Coord: c, Weight: tw.Weight})
	}
	return out
}

// ExplainSimilarity returns the k coordinates contributing most to the
// similarity of two items, with each coordinate's contribution (the product
// of the two normalized weights). The contributions sum to
// Similarity(a, b), which makes the fuzzy "similar by content" suggestions
// inspectable — why *is* this recipe similar?
func (m *Model) ExplainSimilarity(a, b rdf.IRI, k int) []WeightedCoord {
	va, vb := m.Vector(a), m.Vector(b)
	if len(va) > len(vb) {
		va, vb = vb, va
	}
	var out []WeightedCoord
	for term, wa := range va {
		wb, shared := vb[term]
		if !shared {
			continue
		}
		c, ok := ParseCoord(term)
		if !ok {
			continue
		}
		out = append(out, WeightedCoord{Coord: c, Weight: wa * wb})
	}
	sort.Slice(out, func(i, j int) bool {
		if !ApproxEqual(out[i].Weight, out[j].Weight) {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Coord.Key() < out[j].Coord.Key()
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// DebugVector renders an item's weighted vector sorted by descending weight
// (a development aid mirroring the paper's Figure 4).
func (m *Model) DebugVector(item rdf.IRI, label func(rdf.IRI) string) []string {
	vec := m.Vector(item)
	type entry struct {
		term string
		w    float64
	}
	entries := make([]entry, 0, len(vec))
	for t, w := range vec {
		entries = append(entries, entry{t, w})
	}
	sort.Slice(entries, func(i, j int) bool {
		if !ApproxEqual(entries[i].w, entries[j].w) {
			return entries[i].w > entries[j].w
		}
		return entries[i].term < entries[j].term
	})
	out := make([]string, len(entries))
	for i, e := range entries {
		c, ok := ParseCoord(e.term)
		name := e.term
		if ok {
			name = PathLabel(c.Path, label)
			switch c.Kind {
			case CoordObject:
				name += " = " + c.Value.String()
			case CoordWord:
				name += " : " + c.Word
			case CoordNumeric:
				name += " # " + c.Axis
			}
		}
		out[i] = name + " ⇒ " + formatWeight(e.w)
	}
	return out
}

package vsm

import "math"

// Epsilon is the tolerance used by ApproxEqual. Scores in the vector model
// are sums of products of unit-normalized weights, so meaningful
// differences are far above 1e-9 while float rounding noise sits far below
// it.
const Epsilon = 1e-9

// ApproxEqual reports whether two scores are equal within Epsilon (absolute
// for small magnitudes, relative for large ones). Scoring and ranking code
// must use this instead of ==/!= on float64 — the magnet-vet floateq
// analyzer enforces it. Following IEEE semantics, NaN is equal to nothing
// (including NaN); infinities are equal only to infinities of the same
// sign.
func ApproxEqual(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return (math.IsInf(a, 1) && math.IsInf(b, 1)) || (math.IsInf(a, -1) && math.IsInf(b, -1))
	}
	diff := math.Abs(a - b)
	if diff <= Epsilon {
		return true
	}
	return diff <= Epsilon*math.Max(math.Abs(a), math.Abs(b))
}

package vsm

import (
	"fmt"
	"reflect"
	"testing"

	"magnet/internal/par"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func corpusGraph(n int) (*rdf.Graph, *schema.Store, []rdf.IRI) {
	g := rdf.NewGraph()
	var items []rdf.IRI
	for i := 0; i < n; i++ {
		it := rdf.IRI(fmt.Sprintf("http://example.org/doc/%03d", i))
		items = append(items, it)
		g.Add(it, rdf.Type, rdf.IRI("http://example.org/Doc"))
		g.Add(it, rdf.DCTitle, rdf.NewString(fmt.Sprintf("title %d alpha beta", i%9)))
		g.Add(it, rdf.IRI("http://example.org/group"), rdf.IRI(fmt.Sprintf("http://example.org/g/%d", i%5)))
		g.Add(it, rdf.IRI("http://example.org/score"), rdf.NewInteger(int64(i%37)))
	}
	return g, schema.NewStore(g), items
}

// TestIndexAllSerialParallelEquivalence checks a pooled IndexAll produces
// a store whose vectors, similarity lists, and centroid are identical to a
// serial build.
func TestIndexAllSerialParallelEquivalence(t *testing.T) {
	g, sch, items := corpusGraph(120)
	serial := New(g, sch, Options{})
	serial.IndexAll(items)

	for _, width := range []int{1, 4, 8} {
		pool := par.New(width)
		m := New(g, sch, Options{})
		m.SetPool(pool)
		m.IndexAll(items)
		for _, it := range items {
			if !reflect.DeepEqual(m.Vectorize(it), serial.Vectorize(it)) {
				t.Fatalf("width %d: vector for %s differs", width, it)
			}
		}
		wantSim := serial.SimilarToItem(items[0], 15)
		gotSim := m.SimilarToItem(items[0], 15)
		if !reflect.DeepEqual(gotSim, wantSim) {
			t.Fatalf("width %d: SimilarToItem differs\n got %v\nwant %v", width, gotSim, wantSim)
		}
		wantCen := serial.Centroid(items)
		gotCen := m.Centroid(items)
		if !reflect.DeepEqual(gotCen, wantCen) {
			t.Fatalf("width %d: centroid differs", width)
		}
		pool.Close()
	}
}

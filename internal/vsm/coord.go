// Package vsm implements the paper's primary contribution (§5): a vector
// space model for semistructured data. Each attribute/value pair of an item
// becomes a coordinate; text-valued attributes are split into word
// coordinates; annotated attribute compositions add "transitive" coordinates
// (§5.1); numeric attributes are encoded on the first quadrant of the unit
// circle (§5.4). Weights follow the paper's tf·idf formula with
// per-attribute frequency normalization and unit-length document vectors
// (§5.2), enabling dot-product similarity and refinement-term extraction
// (§5.3) on top of the index.VectorStore substrate.
package vsm

import (
	"strconv"
	"strings"

	"magnet/internal/rdf"
)

// CoordKind distinguishes the three coordinate families of the model.
type CoordKind byte

const (
	// CoordObject is an attribute/value coordinate whose value is an item
	// (or a non-text literal treated by identity).
	CoordObject CoordKind = 'o'
	// CoordWord is a word coordinate from a split text value.
	CoordWord CoordKind = 't'
	// CoordNumeric is one of the two unit-circle axes of a numeric
	// attribute ("cos" or "sin").
	CoordNumeric CoordKind = 'n'
)

const (
	sepField = "\x1f" // kind / path / payload separator
	sepPath  = "\x1e" // between property-path elements
)

// PinnedPrefix is the term prefix identifying numeric unit-circle
// coordinates, which bypass tf·idf weighting in the vector store (§5.4
// keeps their norm fixed by construction).
const PinnedPrefix = string(CoordNumeric) + sepField

// Coord is a decoded vector-space coordinate.
type Coord struct {
	Kind CoordKind
	// Path is the property path from the item to the value; length 1 for
	// direct attributes, longer for compositions (§5.1).
	Path []rdf.IRI
	// Value is the attribute value for CoordObject coordinates.
	Value rdf.Term
	// Word is the (stemmed) token for CoordWord coordinates.
	Word string
	// Axis is "cos" or "sin" for CoordNumeric coordinates.
	Axis string
}

// Key returns the canonical term key for the coordinate, used as the term
// string in the vector store.
func (c Coord) Key() string {
	var b strings.Builder
	b.WriteByte(byte(c.Kind))
	b.WriteString(sepField)
	for i, p := range c.Path {
		if i > 0 {
			b.WriteString(sepPath)
		}
		b.WriteString(string(p))
	}
	b.WriteString(sepField)
	switch c.Kind {
	case CoordObject:
		b.WriteString(c.Value.Key())
	case CoordWord:
		b.WriteString(c.Word)
	case CoordNumeric:
		b.WriteString(c.Axis)
	}
	return b.String()
}

// ParseCoord decodes a term key produced by Key. It reports false for keys
// not produced by this package.
func ParseCoord(key string) (Coord, bool) {
	parts := strings.SplitN(key, sepField, 3)
	if len(parts) != 3 || len(parts[0]) != 1 {
		return Coord{}, false
	}
	kind := CoordKind(parts[0][0])
	if kind != CoordObject && kind != CoordWord && kind != CoordNumeric {
		return Coord{}, false
	}
	c := Coord{Kind: kind}
	for _, seg := range strings.Split(parts[1], sepPath) {
		if seg == "" {
			return Coord{}, false
		}
		c.Path = append(c.Path, rdf.IRI(seg))
	}
	payload := parts[2]
	switch kind {
	case CoordObject:
		v, ok := rdf.ParseTermKey(payload)
		if !ok {
			return Coord{}, false
		}
		c.Value = v
	case CoordWord:
		if payload == "" {
			return Coord{}, false
		}
		c.Word = payload
	case CoordNumeric:
		if payload != "cos" && payload != "sin" {
			return Coord{}, false
		}
		c.Axis = payload
	}
	return c, true
}

// PathKey returns a canonical key for a property path (used to index
// numeric range statistics).
func PathKey(path []rdf.IRI) string {
	segs := make([]string, len(path))
	for i, p := range path {
		segs[i] = string(p)
	}
	return strings.Join(segs, sepPath)
}

// ParsePathKey inverts PathKey.
func ParsePathKey(k string) []rdf.IRI {
	if k == "" {
		return nil
	}
	segs := strings.Split(k, sepPath)
	out := make([]rdf.IRI, len(segs))
	for i, s := range segs {
		out[i] = rdf.IRI(s)
	}
	return out
}

// PathLabel renders a property path for display, e.g. "body · creator",
// using labels from the given labeler.
func PathLabel(path []rdf.IRI, label func(rdf.IRI) string) string {
	segs := make([]string, len(path))
	for i, p := range path {
		segs[i] = label(p)
	}
	return strings.Join(segs, " · ")
}

// formatWeight is a tiny helper shared by debug output.
func formatWeight(w float64) string { return strconv.FormatFloat(w, 'f', 4, 64) }

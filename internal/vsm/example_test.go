package vsm_test

import (
	"fmt"

	"magnet/internal/rdf"
	"magnet/internal/schema"
	"magnet/internal/vsm"
)

// Example shows the semistructured vector space model on the paper's
// running example shape: attribute/value coordinates, text splitting, and
// dot-product similarity.
func Example() {
	g := rdf.NewGraph()
	ns := "http://e/"
	ingredient := rdf.IRI(ns + "ingredient")

	add := func(id, title string, ings ...string) rdf.IRI {
		r := rdf.IRI(ns + id)
		g.Add(r, rdf.Type, rdf.IRI(ns+"Recipe"))
		g.Add(r, rdf.DCTitle, rdf.NewString(title))
		for _, ing := range ings {
			g.Add(r, ingredient, rdf.IRI(ns+ing))
		}
		return r
	}
	cobbler := add("cobbler", "Apple Cobbler Cake", "apple", "flour", "butter")
	pie := add("pie", "Apple Pie", "apple", "flour")
	salad := add("salad", "Greek Salad", "feta", "olive")

	m := vsm.New(g, schema.NewStore(g), vsm.Options{})
	m.IndexAll([]rdf.IRI{cobbler, pie, salad})

	fmt.Printf("cobbler~pie   %.2f\n", m.Similarity(cobbler, pie))
	fmt.Printf("cobbler~salad %.2f\n", m.Similarity(cobbler, salad))

	top := m.SimilarToItem(cobbler, 1)
	fmt.Println("most similar to cobbler:", top[0].Item.LocalName())
	// Output:
	// cobbler~pie   0.19
	// cobbler~salad 0.00
	// most similar to cobbler: pie
}

package vsm

import (
	"reflect"
	"testing"
	"testing/quick"

	"magnet/internal/rdf"
)

const ex = "http://example.org/"

func TestCoordKeyRoundTrip(t *testing.T) {
	coords := []Coord{
		{Kind: CoordObject, Path: []rdf.IRI{rdf.IRI(ex + "cuisine")}, Value: rdf.IRI(ex + "Greek")},
		{Kind: CoordObject, Path: []rdf.IRI{rdf.IRI(ex + "p"), rdf.IRI(ex + "q")}, Value: rdf.NewInteger(4)},
		{Kind: CoordObject, Path: []rdf.IRI{rdf.IRI(ex + "p")}, Value: rdf.NewLangString("hi there", "en")},
		{Kind: CoordObject, Path: []rdf.IRI{rdf.IRI(ex + "p")}, Value: rdf.Blank("b1")},
		{Kind: CoordWord, Path: []rdf.IRI{rdf.DCTitle}, Word: "butter"},
		{Kind: CoordWord, Path: []rdf.IRI{rdf.IRI(ex + "body"), rdf.IRI(ex + "content")}, Word: "cost"},
		{Kind: CoordNumeric, Path: []rdf.IRI{rdf.IRI(ex + "date")}, Axis: "cos"},
		{Kind: CoordNumeric, Path: []rdf.IRI{rdf.IRI(ex + "date")}, Axis: "sin"},
	}
	for _, c := range coords {
		got, ok := ParseCoord(c.Key())
		if !ok {
			t.Errorf("ParseCoord(%q) failed", c.Key())
			continue
		}
		if !reflect.DeepEqual(got, c) {
			t.Errorf("round trip: got %#v, want %#v", got, c)
		}
	}
}

func TestParseCoordRejectsGarbage(t *testing.T) {
	bad := []string{
		"", "o", "x\x1fp\x1fpayload", "o\x1f\x1f<v", "t\x1fp\x1f",
		"n\x1fp\x1fneither", "o\x1fp\x1fgarbagepayload", "plainword",
	}
	for _, k := range bad {
		if _, ok := ParseCoord(k); ok {
			t.Errorf("ParseCoord(%q) accepted garbage", k)
		}
	}
}

func TestNumericKeysArePinned(t *testing.T) {
	c := Coord{Kind: CoordNumeric, Path: []rdf.IRI{rdf.IRI(ex + "d")}, Axis: "cos"}
	if got := c.Key()[:len(PinnedPrefix)]; got != PinnedPrefix {
		t.Errorf("numeric key prefix = %q, want %q", got, PinnedPrefix)
	}
	o := Coord{Kind: CoordObject, Path: []rdf.IRI{rdf.IRI(ex + "d")}, Value: rdf.IRI(ex + "v")}
	if o.Key()[:len(PinnedPrefix)] == PinnedPrefix {
		t.Error("object key must not look pinned")
	}
}

func TestPathKeyRoundTrip(t *testing.T) {
	paths := [][]rdf.IRI{
		nil,
		{rdf.IRI(ex + "a")},
		{rdf.IRI(ex + "a"), rdf.IRI(ex + "b"), rdf.IRI(ex + "c")},
	}
	for _, p := range paths {
		got := ParsePathKey(PathKey(p))
		if len(got) != len(p) {
			t.Errorf("round trip %v → %v", p, got)
			continue
		}
		for i := range p {
			if got[i] != p[i] {
				t.Errorf("round trip %v → %v", p, got)
			}
		}
	}
}

func TestPathLabel(t *testing.T) {
	path := []rdf.IRI{rdf.IRI(ex + "body"), rdf.IRI(ex + "creator")}
	got := PathLabel(path, func(p rdf.IRI) string { return p.LocalName() })
	if got != "body · creator" {
		t.Errorf("PathLabel = %q", got)
	}
}

// Property: coordinate keys round-trip for arbitrary word tokens and
// literal values that contain no control separators.
func TestQuickCoordRoundTrip(t *testing.T) {
	f := func(word string, lex string) bool {
		for _, r := range word + lex {
			if r == '\x1f' || r == '\x1e' {
				return true // separators excluded by construction
			}
		}
		if word == "" {
			word = "w"
		}
		cw := Coord{Kind: CoordWord, Path: []rdf.IRI{rdf.IRI(ex + "p")}, Word: word}
		gw, ok := ParseCoord(cw.Key())
		if !ok || !reflect.DeepEqual(gw, cw) {
			return false
		}
		co := Coord{Kind: CoordObject, Path: []rdf.IRI{rdf.IRI(ex + "p")}, Value: rdf.NewString(lex)}
		gc, ok := ParseCoord(co.Key())
		return ok && reflect.DeepEqual(gc, co)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package vsm

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	tests := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{0, Epsilon, true},               // at the absolute tolerance
		{0, Epsilon * 1.01, false},       // just past it
		{1, 1 + 1e-12, true},             // rounding noise
		{1, 1 + 1e-6, false},             // a real difference
		{1e12, 1e12 * (1 + 1e-12), true}, // relative tolerance at scale
		{1e12, 1e12 * (1 + 1e-6), false}, // a real difference at scale
		{-0.5, 0.5, false},
		{0, math.Copysign(0, -1), true}, // +0 and -0
		{inf, inf, true},
		{-inf, -inf, true},
		{inf, -inf, false},
		{inf, math.MaxFloat64, false},
		{nan, nan, false},
		{nan, 0, false},
		{0, nan, false},
		{nan, inf, false},
	}
	for _, tt := range tests {
		if got := ApproxEqual(tt.a, tt.b); got != tt.want {
			t.Errorf("ApproxEqual(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := ApproxEqual(tt.b, tt.a); got != tt.want {
			t.Errorf("ApproxEqual(%v, %v) = %v, want %v (asymmetric)", tt.b, tt.a, got, tt.want)
		}
	}
}

package vsm

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

var (
	pType       = rdf.Type
	pTitle      = rdf.DCTitle
	pContent    = rdf.IRI(ex + "content")
	pCourse     = rdf.IRI(ex + "course")
	pMethod     = rdf.IRI(ex + "cookingMethod")
	pIngredient = rdf.IRI(ex + "ingredient")
	pCuisine    = rdf.IRI(ex + "cuisine")
	clsRecipe   = rdf.IRI(ex + "Recipe")
)

// figure3Graph builds the paper's Figure 3 example: the 'Apple Cobbler
// Cake' recipe plus companions so idf is meaningful.
func figure3Graph() (*rdf.Graph, *schema.Store, []rdf.IRI) {
	g := rdf.NewGraph()
	sch := schema.NewStore(g)

	cobbler := rdf.IRI(ex + "appleCobblerCake")
	g.Add(cobbler, pType, clsRecipe)
	g.Add(cobbler, pTitle, rdf.NewString("Apple Cobbler Cake"))
	g.Add(cobbler, pContent, rdf.NewString("Mix apples with batter and bake the cake"))
	g.Add(cobbler, pCourse, rdf.IRI(ex+"Dessert"))
	g.Add(cobbler, pMethod, rdf.IRI(ex+"Bake"))
	g.Add(cobbler, pIngredient, rdf.IRI(ex+"Apple"))
	g.Add(cobbler, pIngredient, rdf.IRI(ex+"Flour"))
	g.Add(cobbler, pIngredient, rdf.IRI(ex+"Butter"))

	pie := rdf.IRI(ex + "applePie")
	g.Add(pie, pType, clsRecipe)
	g.Add(pie, pTitle, rdf.NewString("Apple Pie"))
	g.Add(pie, pContent, rdf.NewString("Roll the dough and bake with apples"))
	g.Add(pie, pCourse, rdf.IRI(ex+"Dessert"))
	g.Add(pie, pMethod, rdf.IRI(ex+"Bake"))
	g.Add(pie, pIngredient, rdf.IRI(ex+"Apple"))
	g.Add(pie, pIngredient, rdf.IRI(ex+"Flour"))

	salad := rdf.IRI(ex + "greekSalad")
	g.Add(salad, pType, clsRecipe)
	g.Add(salad, pTitle, rdf.NewString("Greek Salad"))
	g.Add(salad, pContent, rdf.NewString("Toss feta with olives"))
	g.Add(salad, pCourse, rdf.IRI(ex+"Appetizer"))
	g.Add(salad, pMethod, rdf.IRI(ex+"Raw"))
	g.Add(salad, pCuisine, rdf.IRI(ex+"Greek"))
	g.Add(salad, pIngredient, rdf.IRI(ex+"Feta"))
	g.Add(salad, pIngredient, rdf.IRI(ex+"Olive"))

	items := []rdf.IRI{cobbler, pie, salad}
	return g, sch, items
}

func TestVectorizeFigure4Shape(t *testing.T) {
	g, sch, items := figure3Graph()
	m := New(g, sch, Options{})
	m.IndexAll(items)

	raw := m.Vectorize(items[0])

	// Object coordinates for each attribute/value pair.
	wantObj := []Coord{
		{Kind: CoordObject, Path: []rdf.IRI{pType}, Value: clsRecipe},
		{Kind: CoordObject, Path: []rdf.IRI{pCourse}, Value: rdf.IRI(ex + "Dessert")},
		{Kind: CoordObject, Path: []rdf.IRI{pMethod}, Value: rdf.IRI(ex + "Bake")},
		{Kind: CoordObject, Path: []rdf.IRI{pIngredient}, Value: rdf.IRI(ex + "Apple")},
	}
	for _, c := range wantObj {
		if raw[c.Key()] == 0 {
			t.Errorf("missing object coordinate %v", c)
		}
	}
	// Text coordinates: title words split and stemmed ("apple", "cobbler",
	// "cake" — lower-case in the figure).
	for _, w := range []string{"appl", "cobbler", "cake"} {
		c := Coord{Kind: CoordWord, Path: []rdf.IRI{pTitle}, Word: w}
		if raw[c.Key()] == 0 {
			t.Errorf("missing title word coordinate %q", w)
		}
	}
	// Ingredient values are objects, never split into words.
	for k := range raw {
		c, ok := ParseCoord(k)
		if !ok {
			t.Fatalf("unparseable coordinate %q", k)
		}
		if c.Kind == CoordWord && c.Path[0] == pIngredient {
			t.Errorf("ingredient should not yield word coordinates: %v", c)
		}
	}
}

func TestPerAttributeNormalization(t *testing.T) {
	g, sch, items := figure3Graph()
	m := New(g, sch, Options{})
	m.IndexAll(items)
	raw := m.Vectorize(items[0])

	// Three ingredients: each contributes 1/3.
	ing := Coord{Kind: CoordObject, Path: []rdf.IRI{pIngredient}, Value: rdf.IRI(ex + "Apple")}
	if w := raw[ing.Key()]; math.Abs(w-1.0/3.0) > 1e-9 {
		t.Errorf("ingredient share = %v, want 1/3", w)
	}
	// Single-valued course contributes 1.
	course := Coord{Kind: CoordObject, Path: []rdf.IRI{pCourse}, Value: rdf.IRI(ex + "Dessert")}
	if w := raw[course.Key()]; math.Abs(w-1) > 1e-9 {
		t.Errorf("course share = %v, want 1", w)
	}
	// Title words sum to 1 (per-attribute total mass equal across attrs).
	var titleMass float64
	for k, w := range raw {
		if c, ok := ParseCoord(k); ok && c.Kind == CoordWord && c.Path[0] == pTitle {
			titleMass += w
		}
	}
	if math.Abs(titleMass-1) > 1e-9 {
		t.Errorf("title word mass = %v, want 1", titleMass)
	}
}

func TestPerAttributeNormalizationAblation(t *testing.T) {
	g, sch, items := figure3Graph()
	m := New(g, sch, Options{DisablePerAttributeNorm: true})
	m.IndexAll(items)
	raw := m.Vectorize(items[0])
	ing := Coord{Kind: CoordObject, Path: []rdf.IRI{pIngredient}, Value: rdf.IRI(ex + "Apple")}
	if w := raw[ing.Key()]; w != 1 {
		t.Errorf("raw count = %v, want 1 (no division)", w)
	}
}

func TestUniversalCoordinateVanishes(t *testing.T) {
	g, sch, items := figure3Graph()
	m := New(g, sch, Options{})
	m.IndexAll(items)
	vec := m.Vector(items[0])
	typeCoord := Coord{Kind: CoordObject, Path: []rdf.IRI{pType}, Value: clsRecipe}
	if _, ok := vec[typeCoord.Key()]; ok {
		t.Error("type=Recipe appears in every doc; idf should remove it")
	}
}

func TestVectorsUnitNorm(t *testing.T) {
	g, sch, items := figure3Graph()
	m := New(g, sch, Options{})
	m.IndexAll(items)
	for _, it := range items {
		var norm float64
		for _, w := range m.Vector(it) {
			norm += w * w
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Errorf("norm²(%s) = %v", it.LocalName(), norm)
		}
	}
}

func TestSimilarityOrdering(t *testing.T) {
	g, sch, items := figure3Graph()
	m := New(g, sch, Options{})
	m.IndexAll(items)
	cobbler, pie, salad := items[0], items[1], items[2]
	if m.Similarity(cobbler, pie) <= m.Similarity(cobbler, salad) {
		t.Errorf("apple desserts should be more similar than dessert vs salad: %v vs %v",
			m.Similarity(cobbler, pie), m.Similarity(cobbler, salad))
	}
	sims := m.SimilarToItem(cobbler, 5)
	if len(sims) == 0 || sims[0].Item != pie {
		t.Errorf("SimilarToItem = %v, want pie first", sims)
	}
	for _, s := range sims {
		if s.Item == cobbler {
			t.Error("item itself must be excluded")
		}
	}
}

func TestSimilarToCollection(t *testing.T) {
	g, sch, items := figure3Graph()
	m := New(g, sch, Options{})
	m.IndexAll(items)
	coll := []rdf.IRI{items[0], items[1]} // the two apple desserts
	got := m.SimilarToCollection(coll, 5, true)
	for _, s := range got {
		if s.Item == items[0] || s.Item == items[1] {
			t.Error("members must be excluded when excludeMembers")
		}
	}
	withMembers := m.SimilarToCollection(coll, 5, false)
	if len(withMembers) <= len(got) {
		t.Error("including members should not shrink the result")
	}
}

func TestUnitCircleNumericEncoding(t *testing.T) {
	// Paper §5.4: e-mails a day apart should share numeric similarity;
	// e-mails far apart should not.
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	pSent := rdf.IRI(ex + "sent")
	mk := func(id string, day time.Time) rdf.IRI {
		it := rdf.IRI(ex + id)
		g.Add(it, pType, rdf.IRI(ex+"Email"))
		g.Add(it, pSent, rdf.NewTime(day))
		// Distinct body words so only the date links them.
		g.Add(it, pContent, rdf.NewString("unique"+id))
		return it
	}
	base := time.Date(2003, 7, 31, 0, 0, 0, 0, time.UTC)
	a := mk("a", base)
	b := mk("b", base.AddDate(0, 0, 1))
	c := mk("c", base.AddDate(2, 0, 0))

	m := New(g, sch, Options{})
	m.IndexAll([]rdf.IRI{a, b, c})

	// All three share the numeric coordinate pair; its norm contribution is
	// identical ("all values have the same norm").
	simAB := m.Similarity(a, b)
	simAC := m.Similarity(a, c)
	if simAB <= simAC {
		t.Errorf("a day apart (%v) should beat two years apart (%v)", simAB, simAC)
	}
	if simAC <= 0 {
		t.Errorf("far dates should still have small positive dot product, got %v", simAC)
	}
	// Range stats recorded.
	if r, ok := m.NumericRange([]rdf.IRI{pSent}); !ok || r.Count != 3 {
		t.Errorf("NumericRange = %+v, %v", r, ok)
	}
}

func TestRawNumericAblationSwamps(t *testing.T) {
	// §5.4's motivating failure: with raw numeric coordinates, arbitrarily
	// large values swamp every other coordinate after normalization, so two
	// items sharing *nothing* but possessing the numeric attribute come out
	// nearly identical. The unit-circle encoding keeps them dissimilar
	// (θ = 0 vs θ = π/2 ⇒ dot ≈ 0).
	build := func(opts Options) (simUnrelated float64) {
		g := rdf.NewGraph()
		sch := schema.NewStore(g)
		pArea := rdf.IRI(ex + "area")
		sch.SetValueType(pArea, schema.Integer)
		a := rdf.IRI(ex + "a")
		b := rdf.IRI(ex + "b")
		c := rdf.IRI(ex + "c")
		g.Add(a, pContent, rdf.NewString("cardinal bird watching"))
		g.Add(a, pArea, rdf.NewInteger(1))
		g.Add(b, pContent, rdf.NewString("volcano geology survey"))
		g.Add(b, pArea, rdf.NewInteger(5_000_000))
		// A third document keeps word idf positive.
		g.Add(c, pContent, rdf.NewString("something else entirely"))
		g.Add(c, pArea, rdf.NewInteger(2_500_000))
		m := New(g, sch, opts)
		m.IndexAll([]rdf.IRI{a, b, c})
		return m.Similarity(a, b)
	}
	unitCircle := build(Options{})
	raw := build(Options{RawNumeric: true})
	if raw < 0.8 {
		t.Errorf("raw numeric should manufacture high similarity for unrelated items, got %v", raw)
	}
	if unitCircle > 0.2 {
		t.Errorf("unit circle should keep range-extreme unrelated items dissimilar, got %v", unitCircle)
	}
}

func TestCompositionAnnotation(t *testing.T) {
	// §5.1: documents have authors; authors have fields of expertise. With
	// the composition annotation, "the author's field of expertise" becomes
	// a coordinate.
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	pAuthor := rdf.IRI(ex + "author")
	pField := rdf.IRI(ex + "expertise")
	doc := rdf.IRI(ex + "doc1")
	alice := rdf.IRI(ex + "alice")
	g.Add(doc, pAuthor, alice)
	g.Add(alice, pField, rdf.IRI(ex+"IR"))

	composed := Coord{Kind: CoordObject, Path: []rdf.IRI{pAuthor, pField}, Value: rdf.IRI(ex + "IR")}

	m := New(g, sch, Options{})
	m.IndexAll([]rdf.IRI{doc})
	if raw := m.Vectorize(doc); raw[composed.Key()] != 0 {
		t.Error("composition should require an annotation")
	}

	sch.SetCompose(pAuthor)
	m.IndexAll([]rdf.IRI{doc})
	if raw := m.Vectorize(doc); raw[composed.Key()] == 0 {
		t.Error("annotated composition missing from vector")
	}

	// Ablation switch suppresses it even when annotated.
	m2 := New(g, sch, Options{DisableCompositions: true})
	m2.IndexAll([]rdf.IRI{doc})
	if raw := m2.Vectorize(doc); raw[composed.Key()] != 0 {
		t.Error("DisableCompositions should suppress composed coordinates")
	}
}

func TestTreeShapedDeepComposition(t *testing.T) {
	// §6.2: tree-shaped (XML) data licenses multi-step composition without
	// per-property annotations.
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	p1, p2, p3 := rdf.IRI(ex+"sec"), rdf.IRI(ex+"para"), rdf.IRI(ex+"textOf")
	a, b, c := rdf.IRI(ex+"art"), rdf.IRI(ex+"s1"), rdf.IRI(ex+"p1")
	g.Add(a, p1, b)
	g.Add(b, p2, c)
	g.Add(c, p3, rdf.NewString("retrieval"))

	deep := Coord{Kind: CoordWord, Path: []rdf.IRI{p1, p2, p3}, Word: "retriev"}

	m := New(g, sch, Options{})
	m.IndexAll([]rdf.IRI{a})
	if raw := m.Vectorize(a); raw[deep.Key()] != 0 {
		t.Error("deep composition should not happen on general graphs")
	}

	sch.SetTreeShaped()
	m = New(g, sch, Options{})
	m.IndexAll([]rdf.IRI{a})
	if raw := m.Vectorize(a); raw[deep.Key()] == 0 {
		t.Error("tree-shaped dataset should follow multiple steps")
	}
}

func TestCyclicGraphTerminates(t *testing.T) {
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	sch.SetTreeShaped() // lie: annotation says tree but graph has a cycle
	pNext := rdf.IRI(ex + "next")
	a, b := rdf.IRI(ex+"a"), rdf.IRI(ex+"b")
	g.Add(a, pNext, b)
	g.Add(b, pNext, a)
	g.Add(a, pContent, rdf.NewString("alpha"))
	g.Add(b, pContent, rdf.NewString("beta"))

	done := make(chan struct{})
	go func() {
		m := New(g, sch, Options{})
		m.IndexAll([]rdf.IRI{a, b})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cyclic graph traversal did not terminate")
	}
}

func TestRefinementCoords(t *testing.T) {
	// Build 6 recipes: 4 Greek (2 with feta), 2 Mexican; refine the Greek
	// subset — "feta" should rank as a refinement while "type=Recipe"
	// (universal) must not appear.
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	var greek []rdf.IRI
	var all []rdf.IRI
	for i := 0; i < 6; i++ {
		it := rdf.IRI(fmt.Sprintf("%sr%d", ex, i))
		all = append(all, it)
		g.Add(it, pType, clsRecipe)
		if i < 4 {
			g.Add(it, pCuisine, rdf.IRI(ex+"Greek"))
			greek = append(greek, it)
		} else {
			g.Add(it, pCuisine, rdf.IRI(ex+"Mexican"))
		}
		if i < 2 {
			g.Add(it, pIngredient, rdf.IRI(ex+"Feta"))
		}
		g.Add(it, pIngredient, rdf.IRI(fmt.Sprintf("%sunique%d", ex, i)))
	}
	m := New(g, sch, Options{})
	m.IndexAll(all)

	coords := m.RefinementCoords(greek, 10, nil)
	if len(coords) == 0 {
		t.Fatal("no refinement coordinates")
	}
	foundFeta := false
	for _, wc := range coords {
		if wc.Coord.Kind == CoordObject && wc.Coord.Value == rdf.IRI(ex+"Feta") {
			foundFeta = true
		}
		if wc.Coord.Kind == CoordObject && wc.Coord.Value == clsRecipe {
			t.Error("universal type coordinate should not be suggested")
		}
		if wc.Coord.Kind == CoordNumeric {
			t.Error("numeric coordinates must be filtered out")
		}
	}
	if !foundFeta {
		t.Errorf("feta not among refinements: %v", coords)
	}

	// accept filter narrows to words only.
	words := m.RefinementCoords(greek, 10, func(c Coord) bool { return c.Kind == CoordWord })
	for _, wc := range words {
		if wc.Coord.Kind != CoordWord {
			t.Errorf("accept filter violated: %v", wc)
		}
	}
}

func TestIndexItemAfterIndexAllClampsRange(t *testing.T) {
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	pN := rdf.IRI(ex + "n")
	a, b := rdf.IRI(ex+"a"), rdf.IRI(ex+"b")
	g.Add(a, pN, rdf.NewInteger(0))
	g.Add(b, pN, rdf.NewInteger(10))
	m := New(g, sch, Options{})
	m.IndexAll([]rdf.IRI{a, b})

	// New item beyond the observed range: clamps to θ = π/2.
	c := rdf.IRI(ex + "c")
	g.Add(c, pN, rdf.NewInteger(1000))
	m.IndexItem(c)
	vec := m.Vector(c)
	sinKey := Coord{Kind: CoordNumeric, Path: []rdf.IRI{pN}, Axis: "sin"}.Key()
	cosKey := Coord{Kind: CoordNumeric, Path: []rdf.IRI{pN}, Axis: "cos"}.Key()
	if vec[sinKey] == 0 {
		t.Error("clamped value should sit at the sin end of the quadrant")
	}
	if math.Abs(vec[cosKey]) > 1e-9 {
		t.Errorf("cos component should be ~0 at clamp, got %v", vec[cosKey])
	}
	if !m.RemoveItem(c) || m.RemoveItem(c) {
		t.Error("RemoveItem semantics")
	}
}

func TestExplainSimilarity(t *testing.T) {
	g, sch, items := figure3Graph()
	m := New(g, sch, Options{})
	m.IndexAll(items)
	cobbler, pie := items[0], items[1]

	expl := m.ExplainSimilarity(cobbler, pie, 0)
	if len(expl) == 0 {
		t.Fatal("no explanation for similar desserts")
	}
	// Contributions sum to the similarity and are sorted descending.
	var sum float64
	for i, wc := range expl {
		sum += wc.Weight
		if i > 0 && wc.Weight > expl[i-1].Weight {
			t.Error("explanation not sorted")
		}
	}
	if math.Abs(sum-m.Similarity(cobbler, pie)) > 1e-9 {
		t.Errorf("contributions sum %v ≠ similarity %v", sum, m.Similarity(cobbler, pie))
	}
	// The shared Apple ingredient is among the top contributors.
	found := false
	for _, wc := range expl {
		if wc.Coord.Kind == CoordObject && wc.Coord.Value == rdf.IRI(ex+"Apple") {
			found = true
		}
	}
	if !found {
		t.Errorf("shared apple missing from explanation: %v", expl)
	}
	// k truncates.
	if got := m.ExplainSimilarity(cobbler, pie, 2); len(got) != 2 {
		t.Errorf("k=2 gave %d", len(got))
	}
	// Disjoint items explain as empty.
	if got := m.ExplainSimilarity(cobbler, rdf.IRI(ex+"missing"), 5); len(got) != 0 {
		t.Errorf("missing item explanation = %v", got)
	}
}

func TestDebugVectorReadable(t *testing.T) {
	g, sch, items := figure3Graph()
	m := New(g, sch, Options{})
	m.IndexAll(items)
	lines := m.DebugVector(items[0], func(p rdf.IRI) string { return p.LocalName() })
	if len(lines) == 0 {
		t.Fatal("empty debug vector")
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "ingredient") || !strings.Contains(joined, "⇒") {
		t.Errorf("debug output unreadable:\n%s", joined)
	}
}

// Property: for random small graphs, every indexed vector is unit norm (or
// empty) and Vectorize is deterministic.
func TestQuickModelInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		sch := schema.NewStore(g)
		var items []rdf.IRI
		for i := 0; i < 6; i++ {
			it := rdf.IRI(fmt.Sprintf("%si%d", ex, i))
			items = append(items, it)
			for j := 0; j < rng.Intn(4)+1; j++ {
				p := rdf.IRI(fmt.Sprintf("%sp%d", ex, rng.Intn(3)))
				switch rng.Intn(3) {
				case 0:
					g.Add(it, p, rdf.IRI(fmt.Sprintf("%sv%d", ex, rng.Intn(4))))
				case 1:
					g.Add(it, p, rdf.NewString(fmt.Sprintf("word%d text", rng.Intn(4))))
				case 2:
					g.Add(it, rdf.IRI(ex+"num"), rdf.NewInteger(int64(rng.Intn(100))))
				}
			}
		}
		m := New(g, sch, Options{})
		m.IndexAll(items)
		for _, it := range items {
			var norm float64
			for _, w := range m.Vector(it) {
				norm += w * w
			}
			if len(m.Vector(it)) > 0 && math.Abs(norm-1) > 1e-6 {
				return false
			}
			a := m.Vectorize(it)
			b := m.Vectorize(it)
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if math.Abs(b[k]-v) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

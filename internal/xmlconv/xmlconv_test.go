package xmlconv

import (
	"strings"
	"testing"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

const ns = "http://e/"

func convert(t *testing.T, doc string, opts Options) (*rdf.Graph, rdf.IRI) {
	t.Helper()
	g := rdf.NewGraph()
	if opts.NS == "" {
		opts.NS = ns
	}
	root, err := Convert(g, strings.NewReader(doc), opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, root
}

func TestConvertBasicStructure(t *testing.T) {
	doc := `<?xml version="1.0"?>
<article id="a1">
  <title>On Retrieval</title>
  <author><name>Alice</name></author>
</article>`
	g, root := convert(t, doc, Options{})

	if !g.Has(root, rdf.Type, ElementClass(ns, "article")) {
		t.Error("root not typed article")
	}
	// Attribute.
	if o, ok := g.Object(root, Prop(ns, "id")); !ok || o.(rdf.Literal).Lexical != "a1" {
		t.Errorf("id attribute = %v", o)
	}
	// Child element with text.
	title, ok := g.Object(root, Prop(ns, "title"))
	if !ok {
		t.Fatal("title child missing")
	}
	titleNode := title.(rdf.IRI)
	if o, _ := g.Object(titleNode, TextProp(ns)); o.(rdf.Literal).Lexical != "On Retrieval" {
		t.Errorf("title text = %v", o)
	}
	// Nested chain article→author→name.
	author, _ := g.Object(root, Prop(ns, "author"))
	name, ok := g.Object(author.(rdf.IRI), Prop(ns, "name"))
	if !ok {
		t.Fatal("author name missing")
	}
	if o, _ := g.Object(name.(rdf.IRI), TextProp(ns)); o.(rdf.Literal).Lexical != "Alice" {
		t.Errorf("name text = %v", o)
	}
}

func TestConvertMixedContent(t *testing.T) {
	doc := `<p>before <em>inner</em> after</p>`
	g, root := convert(t, doc, Options{})
	o, _ := g.Object(root, TextProp(ns))
	if got := o.(rdf.Literal).Lexical; got != "before after" {
		t.Errorf("mixed text = %q", got)
	}
	if _, ok := g.Object(root, Prop(ns, "em")); !ok {
		t.Error("inner element lost")
	}
}

func TestConvertSetsTreeAnnotation(t *testing.T) {
	g, _ := convert(t, `<a/>`, Options{})
	if !schema.NewStore(g).TreeShaped() {
		t.Error("tree annotation missing")
	}
	g2, _ := convert(t, `<a/>`, Options{SkipTreeAnnotation: true})
	if schema.NewStore(g2).TreeShaped() {
		t.Error("SkipTreeAnnotation ignored")
	}
}

func TestConvertDeterministicNodeIDs(t *testing.T) {
	doc := `<a><b/><b/><c/></a>`
	g1, r1 := convert(t, doc, Options{})
	g2, r2 := convert(t, doc, Options{})
	if r1 != r2 {
		t.Errorf("roots differ: %s vs %s", r1, r2)
	}
	if len(g1.AllStatements()) != len(g2.AllStatements()) {
		t.Error("conversion nondeterministic")
	}
	// Sibling elements of the same tag become distinct resources.
	bs := g1.Objects(r1, Prop(ns, "b"))
	if len(bs) != 2 || bs[0].Key() == bs[1].Key() {
		t.Errorf("b children = %v", bs)
	}
}

func TestConvertErrors(t *testing.T) {
	for _, doc := range []string{"", "   ", "<a><b></a>", "<a>"} {
		g := rdf.NewGraph()
		if _, err := Convert(g, strings.NewReader(doc), Options{NS: ns}); err == nil {
			t.Errorf("expected error for %q", doc)
		}
	}
	// Missing NS.
	g := rdf.NewGraph()
	if _, err := Convert(g, strings.NewReader("<a/>"), Options{}); err == nil {
		t.Error("expected error for missing NS")
	}
}

func TestConvertWhitespaceHandling(t *testing.T) {
	doc := "<a>\n  \n</a>"
	g, root := convert(t, doc, Options{})
	if _, ok := g.Object(root, TextProp(ns)); ok {
		t.Error("whitespace-only text should be dropped by default")
	}
	g2, root2 := convert(t, doc, Options{KeepWhitespaceText: true})
	if _, ok := g2.Object(root2, TextProp(ns)); !ok {
		t.Error("KeepWhitespaceText ignored")
	}
}

func TestConvertEntityEscapes(t *testing.T) {
	g, root := convert(t, `<a attr="x &amp; y">1 &lt; 2</a>`, Options{})
	if o, _ := g.Object(root, Prop(ns, "attr")); o.(rdf.Literal).Lexical != "x & y" {
		t.Errorf("attr = %v", o)
	}
	if o, _ := g.Object(root, TextProp(ns)); o.(rdf.Literal).Lexical != "1 < 2" {
		t.Errorf("text = %v", o)
	}
}

// Package xmlconv converts XML documents into RDF graphs, the bridge the
// paper relies on for the INEX evaluation (§6.2). The mapping follows the
// "natural mappings from RDF to XML and back" the paper mentions: each
// element becomes a resource typed by its element name; attributes and
// child elements become properties named by their tags; character data
// becomes a text property. Because XML is a finite tree, the converter
// stamps the graph with the tree-shape annotation, licensing Magnet's
// deeper attribute compositions ("Telling Magnet that the information is
// structured as a tree ... would have provided a cleaner interface").
package xmlconv

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// TextProp is the property holding an element's character data.
func TextProp(ns string) rdf.IRI { return rdf.IRI(ns + "text") }

// ElementClass returns the rdf:type IRI for an element name.
func ElementClass(ns, tag string) rdf.IRI { return rdf.IRI(ns + "element/" + tag) }

// Prop returns the property IRI for a child-element or attribute name.
func Prop(ns, name string) rdf.IRI { return rdf.IRI(ns + "prop/" + name) }

// Options tunes the conversion.
type Options struct {
	// NS prefixes all generated IRIs; required.
	NS string
	// KeepWhitespaceText keeps whitespace-only character data (dropped by
	// default).
	KeepWhitespaceText bool
	// SkipTreeAnnotation omits the tree-shape annotation (for the §6.2
	// ablation showing compositions stop at the default depth).
	SkipTreeAnnotation bool
}

// Convert parses one XML document from r into g, returning the root
// element's resource. Element resources are numbered in document order, so
// conversion is deterministic.
func Convert(g *rdf.Graph, r io.Reader, opts Options) (rdf.IRI, error) {
	if opts.NS == "" {
		return "", fmt.Errorf("xmlconv: Options.NS is required")
	}
	dec := xml.NewDecoder(r)
	c := &converter{g: g, opts: opts}
	root, err := c.document(dec)
	if err != nil {
		return "", err
	}
	if !opts.SkipTreeAnnotation {
		schema.NewStore(g).SetTreeShaped()
	}
	return root, nil
}

type converter struct {
	g    *rdf.Graph
	opts Options
	n    int
}

func (c *converter) newNode(tag string) rdf.IRI {
	c.n++
	return rdf.IRI(fmt.Sprintf("%snode/%d-%s", c.opts.NS, c.n, tag))
}

// document skips prolog tokens and converts the root element.
func (c *converter) document(dec *xml.Decoder) (rdf.IRI, error) {
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return "", fmt.Errorf("xmlconv: no root element")
		}
		if err != nil {
			return "", fmt.Errorf("xmlconv: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			return c.element(dec, start)
		}
	}
}

// element converts one element and its subtree.
func (c *converter) element(dec *xml.Decoder, start xml.StartElement) (rdf.IRI, error) {
	node := c.newNode(start.Name.Local)
	c.g.Add(node, rdf.Type, ElementClass(c.opts.NS, start.Name.Local))
	for _, attr := range start.Attr {
		c.g.Add(node, Prop(c.opts.NS, attr.Name.Local), rdf.NewString(attr.Value))
	}
	var textParts []string
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("xmlconv: inside <%s>: %w", start.Name.Local, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := c.element(dec, t)
			if err != nil {
				return "", err
			}
			c.g.Add(node, Prop(c.opts.NS, t.Name.Local), child)
		case xml.CharData:
			s := string(t)
			if !c.opts.KeepWhitespaceText {
				s = strings.TrimSpace(s)
			}
			if s != "" {
				textParts = append(textParts, s)
			}
		case xml.EndElement:
			if len(textParts) > 0 {
				c.g.Add(node, TextProp(c.opts.NS), rdf.NewString(strings.Join(textParts, " ")))
			}
			return node, nil
		}
	}
}

package xmlconv

import (
	"strings"
	"testing"

	"magnet/internal/rdf"
)

// FuzzConvert checks the XML→RDF converter never panics and that accepted
// documents produce graphs whose node count matches the statement subjects.
func FuzzConvert(f *testing.F) {
	seeds := []string{
		"",
		"<a/>",
		"<a><b/></a>",
		`<a x="1">text</a>`,
		"<a>mixed <b>inner</b> tail</a>",
		"<a><b></a>",
		"<?xml version=\"1.0\"?><root><child attr=\"v\">t</child></root>",
		"<a>" + strings.Repeat("<b>", 30) + strings.Repeat("</b>", 30) + "</a>",
		"<a>&amp;&lt;&gt;</a>",
		"<a>\xff\xfe</a>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g := rdf.NewGraph()
		root, err := Convert(g, strings.NewReader(input), Options{NS: "http://f/"})
		if err != nil {
			return
		}
		if root == "" {
			t.Fatal("nil error but empty root")
		}
		if !g.HasSubject(root) {
			t.Fatal("root has no triples")
		}
	})
}

package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"magnet/internal/index"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

const ex = "http://example.org/"

var (
	pCuisine    = rdf.IRI(ex + "cuisine")
	pIngredient = rdf.IRI(ex + "ingredient")
	pServings   = rdf.IRI(ex + "servings")
	pSent       = rdf.IRI(ex + "sent")
	clsRecipe   = rdf.IRI(ex + "Recipe")
	greek       = rdf.IRI(ex + "Greek")
	mexican     = rdf.IRI(ex + "Mexican")
	feta        = rdf.IRI(ex + "Feta")
	walnut      = rdf.IRI(ex + "Walnut")
)

// fixture: 5 recipes with cuisines, ingredients, servings, dates and text.
func fixture() (*Engine, []rdf.IRI) {
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	tix := index.NewTextIndex(nil)

	add := func(id string, cuisine rdf.IRI, servings int64, day int, title string, ingredients ...rdf.IRI) rdf.IRI {
		it := rdf.IRI(ex + id)
		g.Add(it, rdf.Type, clsRecipe)
		g.Add(it, pCuisine, cuisine)
		g.Add(it, pServings, rdf.NewInteger(servings))
		g.Add(it, pSent, rdf.NewTime(time.Date(2003, 7, day, 0, 0, 0, 0, time.UTC)))
		g.Add(it, rdf.DCTitle, rdf.NewString(title))
		for _, ing := range ingredients {
			g.Add(it, pIngredient, ing)
		}
		tix.Index(string(it), "title", title)
		return it
	}
	items := []rdf.IRI{
		add("r1", greek, 4, 1, "Greek Salad with Feta", feta),
		add("r2", greek, 8, 5, "Walnut Baklava", walnut),
		add("r3", greek, 2, 10, "Parsley Dip", feta),
		add("r4", mexican, 6, 15, "Walnut Mole", walnut),
		add("r5", mexican, 4, 20, "Bean Tacos"),
	}
	e := NewEngine(g, sch, tix, func() []rdf.IRI { return items })
	return e, items
}

func iri(id string) rdf.IRI { return rdf.IRI(ex + id) }

func TestPropertyPredicate(t *testing.T) {
	e, _ := fixture()
	got := Property{pCuisine, greek}.Eval(e).Items()
	want := []rdf.IRI{iri("r1"), iri("r2"), iri("r3")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("greek = %v", got)
	}
	if n := TypeIs(clsRecipe).Eval(e).Len(); n != 5 {
		t.Errorf("TypeIs matched %d", n)
	}
	if n := (Property{pCuisine, rdf.IRI(ex + "Thai")}).Eval(e).Len(); n != 0 {
		t.Errorf("absent value matched %d", n)
	}
}

func TestKeywordPredicate(t *testing.T) {
	e, _ := fixture()
	got := Keyword{Text: "walnut"}.Eval(e).Items()
	want := []rdf.IRI{iri("r2"), iri("r4")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("keyword walnut = %v", got)
	}
	// Field scoping and empty text.
	if n := (Keyword{Text: "walnut", Field: "body"}).Eval(e).Len(); n != 0 {
		t.Errorf("body-scoped matched %d", n)
	}
	if n := (Keyword{Text: "   "}).Eval(e).Len(); n != 0 {
		t.Errorf("blank keyword matched %d", n)
	}
}

func TestKeywordWithoutTextIndex(t *testing.T) {
	g := rdf.NewGraph()
	e := NewEngine(g, schema.NewStore(g), nil, func() []rdf.IRI { return nil })
	if n := (Keyword{Text: "anything"}).Eval(e).Len(); n != 0 {
		t.Errorf("nil index matched %d", n)
	}
}

func TestRangePredicate(t *testing.T) {
	e, _ := fixture()
	got := Between(pServings, 4, 6).Eval(e).Items()
	want := []rdf.IRI{iri("r1"), iri("r4"), iri("r5")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("servings 4..6 = %v", got)
	}
	if got := AtLeast(pServings, 8).Eval(e).Items(); !reflect.DeepEqual(got, []rdf.IRI{iri("r2")}) {
		t.Errorf("servings ≥ 8 = %v", got)
	}
	if got := AtMost(pServings, 2).Eval(e).Items(); !reflect.DeepEqual(got, []rdf.IRI{iri("r3")}) {
		t.Errorf("servings ≤ 2 = %v", got)
	}
}

func TestTimeRangePredicate(t *testing.T) {
	e, _ := fixture()
	from := time.Date(2003, 7, 4, 0, 0, 0, 0, time.UTC)
	to := time.Date(2003, 7, 12, 0, 0, 0, 0, time.UTC)
	got := TimeBetween(pSent, from, to).Eval(e).Items()
	want := []rdf.IRI{iri("r2"), iri("r3")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("date window = %v", got)
	}
}

func TestRangeSkipsNonNumeric(t *testing.T) {
	e, _ := fixture()
	// cuisine values are IRIs: a range over them matches nothing.
	if n := Between(pCuisine, 0, 1e12).Eval(e).Len(); n != 0 {
		t.Errorf("range over IRIs matched %d", n)
	}
}

func TestNotPredicate(t *testing.T) {
	e, _ := fixture()
	got := Not{Property{pIngredient, walnut}}.Eval(e).Items()
	want := []rdf.IRI{iri("r1"), iri("r3"), iri("r5")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NOT walnut = %v", got)
	}
}

func TestAndOrPredicates(t *testing.T) {
	e, _ := fixture()
	and := And{[]Predicate{Property{pCuisine, greek}, Property{pIngredient, feta}}}
	if got := and.Eval(e).Items(); !reflect.DeepEqual(got, []rdf.IRI{iri("r1"), iri("r3")}) {
		t.Errorf("AND = %v", got)
	}
	or := Or{[]Predicate{Property{pIngredient, feta}, Property{pIngredient, walnut}}}
	if got := or.Eval(e).Items(); len(got) != 4 {
		t.Errorf("OR = %v", got)
	}
	// Empty And = universe; empty Or = nothing.
	if n := (And{}).Eval(e).Len(); n != 5 {
		t.Errorf("empty AND = %d", n)
	}
	if n := (Or{}).Eval(e).Len(); n != 0 {
		t.Errorf("empty OR = %d", n)
	}
}

func TestQueryRefinementLifecycle(t *testing.T) {
	e, _ := fixture()
	// The paper's Figure 1 walk: type=Recipe ∧ cuisine=Greek ∧ ingredient=Feta.
	q := NewQuery(TypeIs(clsRecipe)).
		With(Property{pCuisine, greek}).
		With(Property{pIngredient, feta})
	if got := e.Evaluate(q); !reflect.DeepEqual(got, []rdf.IRI{iri("r1"), iri("r3")}) {
		t.Fatalf("conjunction = %v", got)
	}
	// Remove the feta constraint (the '✕'): all Greek recipes.
	q2 := q.Without(2)
	if got := e.Evaluate(q2); len(got) != 3 {
		t.Errorf("after Without = %v", got)
	}
	// Negate the cuisine constraint: feta recipes that are NOT Greek.
	q3 := q.Negate(1)
	if got := e.Evaluate(q3); len(got) != 0 {
		t.Errorf("feta non-greek = %v (fixture has none)", got)
	}
	// Double negation unwraps.
	q4 := q3.Negate(1)
	if q4.Key() != q.Key() {
		t.Error("double negation should restore the query")
	}
	// With dedups identical constraints.
	if q5 := q.With(Property{pCuisine, greek}); len(q5.Terms) != len(q.Terms) {
		t.Error("duplicate constraint added")
	}
	// Out-of-range ops are no-ops.
	if q.Without(99).Key() != q.Key() || q.Negate(-1).Key() != q.Key() {
		t.Error("out-of-range ops must not change the query")
	}
}

func TestEmptyQueryYieldsUniverse(t *testing.T) {
	e, items := fixture()
	if got := e.Evaluate(NewQuery()); len(got) != len(items) {
		t.Errorf("empty query = %d items", len(got))
	}
	if !NewQuery().IsEmpty() || NewQuery(TypeIs(clsRecipe)).IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestQueryKeyOrderIndependent(t *testing.T) {
	a := NewQuery(Property{pCuisine, greek}, Property{pIngredient, feta})
	b := NewQuery(Property{pIngredient, feta}, Property{pCuisine, greek})
	if a.Key() != b.Key() {
		t.Error("conjunction key should be order independent")
	}
}

func TestDescriptions(t *testing.T) {
	e, _ := fixture()
	l := func(r rdf.IRI) string { return e.Graph().Label(r) }
	tests := []struct {
		p    Predicate
		want string
	}{
		{Property{pCuisine, greek}, "cuisine = Greek"},
		{Not{Property{pCuisine, greek}}, "NOT cuisine = Greek"},
		{Keyword{Text: "walnut"}, `contains "walnut"`},
		{Keyword{Text: "walnut", Field: "title"}, `title contains "walnut"`},
		{Between(pServings, 2, 8), "servings in [2, 8]"},
		{AtLeast(pServings, 5), "servings ≥ 5"},
		{AtMost(pServings, 5), "servings ≤ 5"},
		{And{[]Predicate{Property{pCuisine, greek}, Keyword{Text: "dip"}}},
			`(cuisine = Greek AND contains "dip")`},
		{Or{[]Predicate{Property{pIngredient, feta}, Property{pIngredient, walnut}}},
			"(ingredient = Feta OR ingredient = Walnut)"},
	}
	for _, tt := range tests {
		if got := tt.p.Describe(l); got != tt.want {
			t.Errorf("Describe = %q, want %q", got, tt.want)
		}
	}
	// Temporal bounds render as dates.
	from := time.Date(2003, 7, 4, 0, 0, 0, 0, time.UTC)
	to := time.Date(2003, 7, 12, 0, 0, 0, 0, time.UTC)
	d := TimeBetween(pSent, from, to).Describe(l)
	if !strings.Contains(d, "2003-07-04") || !strings.Contains(d, "2003-07-12") {
		t.Errorf("temporal describe = %q", d)
	}
}

func TestSetOperations(t *testing.T) {
	a := NewSet("x", "y")
	b := NewSet("y", "z")
	if got := a.Intersect(b).Items(); !reflect.DeepEqual(got, []rdf.IRI{"y"}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b).Items(); len(got) != 3 {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b).Items(); !reflect.DeepEqual(got, []rdf.IRI{"x"}) {
		t.Errorf("Minus = %v", got)
	}
	if a.Has("q") || !a.Has("x") {
		t.Error("Has wrong")
	}
}

func TestPathPropertyPredicate(t *testing.T) {
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	pAuthor, pField := rdf.IRI(ex+"author"), rdf.IRI(ex+"expertise")
	doc1, doc2 := iri("d1"), iri("d2")
	alice, bob := iri("alice"), iri("bob")
	ir := iri("IR")
	g.Add(doc1, pAuthor, alice)
	g.Add(doc2, pAuthor, bob)
	g.Add(alice, pField, ir)
	g.Add(bob, pField, iri("DB"))
	e := NewEngine(g, sch, nil, func() []rdf.IRI { return []rdf.IRI{doc1, doc2} })

	p := PathProperty{Path: []rdf.IRI{pAuthor, pField}, Value: ir}
	if got := p.Eval(e).Items(); !reflect.DeepEqual(got, []rdf.IRI{doc1}) {
		t.Errorf("PathProperty = %v", got)
	}
	// Length-1 path equals Property.
	p1 := PathProperty{Path: []rdf.IRI{pAuthor}, Value: alice}
	if got := p1.Eval(e).Items(); !reflect.DeepEqual(got, []rdf.IRI{doc1}) {
		t.Errorf("len-1 path = %v", got)
	}
	// Empty path and dead-end values match nothing.
	if n := (PathProperty{Value: ir}).Eval(e).Len(); n != 0 {
		t.Errorf("empty path matched %d", n)
	}
	if n := (PathProperty{Path: []rdf.IRI{pAuthor, pField}, Value: iri("none")}).Eval(e).Len(); n != 0 {
		t.Errorf("dead end matched %d", n)
	}
	l := func(r rdf.IRI) string { return r.LocalName() }
	if got := p.Describe(l); got != "author · expertise = IR" {
		t.Errorf("Describe = %q", got)
	}
}

func TestTermMatchPredicate(t *testing.T) {
	e, _ := fixture()
	// The index stems "Walnut" → "walnut"; TermMatch takes the stem as-is.
	got := TermMatch{Term: "walnut", Field: "title"}.Eval(e).Items()
	if !reflect.DeepEqual(got, []rdf.IRI{iri("r2"), iri("r4")}) {
		t.Errorf("TermMatch = %v", got)
	}
	if n := (TermMatch{Term: "walnut", Field: "body"}).Eval(e).Len(); n != 0 {
		t.Errorf("wrong field matched %d", n)
	}
	l := func(r rdf.IRI) string { return r.LocalName() }
	m := TermMatch{Term: "parslei", Field: "title", Display: "parsley"}
	if got := m.Describe(l); got != `title has word "parsley"` {
		t.Errorf("Describe = %q", got)
	}
	if got := (TermMatch{Term: "x"}).Describe(l); got != `has word "x"` {
		t.Errorf("Describe fallback = %q", got)
	}
}

// Custom predicate exercising the extension mechanism: items with at least
// n distinct values of a property (the paper's "recipes having 5 or fewer
// ingredients" example from §6.2 needs exactly this kind of extension).
type maxValues struct {
	prop rdf.IRI
	max  int
}

func (m maxValues) Eval(e *Engine) Set {
	var matched []rdf.IRI
	e.Universe().ForEach(func(it rdf.IRI) bool {
		if e.Graph().ObjectCount(it, m.prop) <= m.max {
			matched = append(matched, it)
		}
		return true
	})
	return e.NewSet(matched...)
}
func (m maxValues) Describe(l Labeler) string {
	return fmt.Sprintf("≤ %d %s values", m.max, l(m.prop))
}
func (m maxValues) Key() string { return fmt.Sprintf("maxvals:%s:%d", m.prop, m.max) }

func TestCustomPredicateExtension(t *testing.T) {
	e, _ := fixture()
	// Recipes with at most zero ingredients: only the taco (r5).
	got := e.Evaluate(NewQuery(maxValues{pIngredient, 0}))
	if !reflect.DeepEqual(got, []rdf.IRI{iri("r5")}) {
		t.Errorf("custom predicate = %v", got)
	}
}

// Properties: De Morgan on random predicate pairs, and Not∘Not = identity,
// evaluated over the fixture.
func TestQuickBooleanAlgebra(t *testing.T) {
	e, _ := fixture()
	preds := []Predicate{
		Property{pCuisine, greek},
		Property{pCuisine, mexican},
		Property{pIngredient, feta},
		Property{pIngredient, walnut},
		Keyword{Text: "walnut"},
		Between(pServings, 2, 6),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := preds[rng.Intn(len(preds))]
		q := preds[rng.Intn(len(preds))]

		// ¬(p ∧ q) == ¬p ∪ ¬q
		lhs := Not{And{[]Predicate{p, q}}}.Eval(e)
		rhs := Or{[]Predicate{Not{p}, Not{q}}}.Eval(e)
		if !reflect.DeepEqual(lhs.Items(), rhs.Items()) {
			return false
		}
		// ¬¬p == p
		if !reflect.DeepEqual(Not{Not{p}}.Eval(e).Items(), p.Eval(e).Items()) {
			return false
		}
		// p ∧ ¬p == ∅
		if (And{[]Predicate{p, Not{p}}}).Eval(e).Len() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

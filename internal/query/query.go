// Package query implements Magnet's query engine (paper §4.2): resolution
// of the "various set concepts" behind navigation. Queries are conjunctions
// of predicates (the constraint list at the top of the navigation pane);
// predicates may be negated, grouped disjunctively, property/value matches,
// free-text keyword matches resolved "uniformly [against] an external
// index", or numeric range comparisons ("greater than and less than
// predicates").
//
// The extension mechanism the paper describes is the Predicate interface
// itself: analysts (or applications) define new predicate types that
// evaluate against the Engine's graph, schema and text index.
package query

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"magnet/internal/ids"
	"magnet/internal/index"
	"magnet/internal/itemset"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// Set is a set of items, backed by the dense-ID plane: an itemset over the
// graph-owned interner. Set algebra is merge-based over sorted uint32
// postings — no hashing, no per-member allocation — and IRIs are
// rehydrated only at the render boundary (Items). The zero Set is empty.
//
// Sets produced by one Engine share that engine's interner; mixing sets
// from different engines (or from the engine-less NewSet) still works —
// the receiver re-interns the other side's members — but costs the
// rehydration it normally avoids.
type Set struct {
	in  *ids.Interner[rdf.IRI]
	set itemset.Set
}

// NewSet builds a set from items without an engine, using a private
// interner. Prefer Engine.NewSet, which shares the graph's ID space and
// keeps set algebra allocation-free.
func NewSet(items ...rdf.IRI) Set {
	return makeSet(ids.NewInterner[rdf.IRI](), items)
}

// NewSet builds a set from items in the engine's dense ID space.
func (e *Engine) NewSet(items ...rdf.IRI) Set {
	return makeSet(e.g.Interner(), items)
}

func makeSet(in *ids.Interner[rdf.IRI], items []rdf.IRI) Set {
	dense := make([]uint32, len(items))
	for i, it := range items {
		dense[i] = in.Intern(it)
	}
	return Set{in: in, set: itemset.FromUnsorted(dense)}
}

// setFromIDs wraps an itemset from the engine's ID space without copying.
func (e *Engine) setFromIDs(s itemset.Set) Set {
	return Set{in: e.g.Interner(), set: s}
}

// Len returns the number of members.
func (s Set) Len() int { return s.set.Len() }

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool { return s.set.IsEmpty() }

// Has reports membership.
func (s Set) Has(it rdf.IRI) bool {
	if s.in == nil {
		return false
	}
	id, ok := s.in.Lookup(it)
	return ok && s.set.Has(id)
}

// IDs exposes the dense-ID view for layers that stay on the ID plane
// (facets, vsm, advisors).
func (s Set) IDs() itemset.Set { return s.set }

// ForEach calls f on each member until f returns false, in dense-ID
// (interning) order — not lexical order.
func (s Set) ForEach(f func(rdf.IRI) bool) {
	if s.in == nil {
		return
	}
	s.set.ForEach(func(id uint32) bool { return f(s.in.Key(id)) })
}

// Items returns the members sorted lexically (the render-boundary
// rehydration; ID order is interning order, so a sort is required here and
// only here).
func (s Set) Items() []rdf.IRI {
	if s.set.IsEmpty() {
		return []rdf.IRI{}
	}
	out := s.in.AppendKeys(make([]rdf.IRI, 0, s.set.Len()), s.set.Slice())
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rebase returns t's itemset expressed in s's ID space, re-interning when
// the two sets come from different interners (the engine-less NewSet
// path).
func (s Set) rebase(t Set) itemset.Set {
	if t.in == s.in || t.set.IsEmpty() {
		return t.set
	}
	keys := t.in.AppendKeys(make([]rdf.IRI, 0, t.set.Len()), t.set.Slice())
	dense := make([]uint32, len(keys))
	for i, k := range keys {
		dense[i] = s.in.Intern(k)
	}
	return itemset.FromUnsorted(dense)
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	if s.in == nil || t.in == nil {
		return Set{in: s.in}
	}
	return Set{in: s.in, set: s.set.Intersect(s.rebase(t))}
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	if s.in == nil {
		return t
	}
	return Set{in: s.in, set: s.set.Union(s.rebase(t))}
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	if s.in == nil || t.in == nil || t.set.IsEmpty() {
		return s
	}
	return Set{in: s.in, set: s.set.Minus(s.rebase(t))}
}

// Labeler renders resources for humans; the graph's Label method satisfies
// it via a closure.
type Labeler func(rdf.IRI) string

// Engine evaluates predicates over a graph with its annotations, an
// external text index, and a universe of queryable items.
type Engine struct {
	g    *rdf.Graph
	sch  *schema.Store
	text *index.TextIndex
	// universe lists all queryable items (Magnet's indexed information
	// objects); Not and empty queries resolve against it.
	universe func() []rdf.IRI
	// universeIDs, when set, supplies the universe directly on the ID
	// plane, skipping the IRI round-trip (core.Magnet maintains it).
	universeIDs func() itemset.Set
	// epoch counts universe installations. Owners re-install the universe
	// source whenever its *content* changes (core.Magnet does so on every
	// reshard), so caches keyed on (graph version, epoch) — the plan
	// package's delta cache — invalidate exactly when results could move.
	epoch uint64
}

// NewEngine returns an engine. text may be nil (keyword predicates then
// match nothing); universe must not be nil.
func NewEngine(g *rdf.Graph, sch *schema.Store, text *index.TextIndex, universe func() []rdf.IRI) *Engine {
	return &Engine{g: g, sch: sch, text: text, universe: universe}
}

// SetUniverseIDs installs a dense-ID universe source; when present it takes
// precedence over the IRI-level universe function. Each installation bumps
// the engine's universe epoch (see UniverseEpoch).
func (e *Engine) SetUniverseIDs(f func() itemset.Set) {
	e.universeIDs = f
	e.epoch++
}

// UniverseEpoch returns the universe-installation counter. Together with
// the graph's Version it forms the validity stamp for caches of query
// results: a cached set is reusable while both are unchanged.
func (e *Engine) UniverseEpoch() uint64 { return e.epoch }

// WithUniverse returns a shallow copy of the engine whose universe is the
// given dense-ID set; the copy shares graph, schema and text index.
// Sharded planning evaluates each shard under its own universe slice this
// way, mirroring EvalShardedParts' per-shard engine copies.
func (e *Engine) WithUniverse(u itemset.Set) *Engine {
	se := *e
	se.universeIDs = func() itemset.Set { return u }
	return &se
}

// FromIDs wraps a dense-ID itemset from the engine's ID space as a Set
// without copying — the exported counterpart of setFromIDs for layers
// (the plan package) that orchestrate evaluation from outside.
func (e *Engine) FromIDs(s itemset.Set) Set { return e.setFromIDs(s) }

// Rebase expresses s on the engine's dense-ID plane, re-interning when s
// came from a different interner (the engine-less NewSet path); sets
// already in the engine's space pass through unchanged.
func (e *Engine) Rebase(s Set) itemset.Set {
	return Set{in: e.g.Interner()}.rebase(s)
}

// Graph exposes the engine's graph to custom predicates.
func (e *Engine) Graph() *rdf.Graph { return e.g }

// Schema exposes the engine's annotation store to custom predicates.
func (e *Engine) Schema() *schema.Store { return e.sch }

// TextIndex exposes the engine's external text index to custom predicates
// (may be nil).
func (e *Engine) TextIndex() *index.TextIndex { return e.text }

// Universe returns the set of all queryable items.
func (e *Engine) Universe() Set {
	if e.universeIDs != nil {
		return e.setFromIDs(e.universeIDs())
	}
	return e.NewSet(e.universe()...)
}

// Predicate is one query constraint. Implementations evaluate to the set of
// matching items; new predicate kinds plug in by implementing this
// interface (the §4.2 extension mechanism).
type Predicate interface {
	// Eval returns the items matching the predicate.
	Eval(e *Engine) Set
	// Describe renders the constraint for the navigation pane.
	Describe(l Labeler) string
	// Key is a canonical identity used for de-duplication and history.
	Key() string
}

// Property matches items carrying an exact attribute/value pair.
type Property struct {
	Prop  rdf.IRI
	Value rdf.Term
}

// Eval implements Predicate via the graph's reverse index — a zero-copy
// view of the posting list.
//
//magnet:hot
func (p Property) Eval(e *Engine) Set {
	return e.setFromIDs(e.g.SubjectIDSet(p.Prop, p.Value))
}

// Describe implements Predicate.
func (p Property) Describe(l Labeler) string {
	var v string
	switch t := p.Value.(type) {
	case rdf.IRI:
		v = l(t)
	case rdf.Literal:
		v = t.Lexical
	default:
		v = p.Value.String()
	}
	return l(p.Prop) + " = " + v
}

// Key implements Predicate.
func (p Property) Key() string { return "prop:" + string(p.Prop) + "=" + p.Value.Key() }

// TypeIs matches items of an rdf:type.
func TypeIs(class rdf.IRI) Property {
	return Property{Prop: rdf.Type, Value: class}
}

// PathProperty matches items reaching Value through a composed property
// path (§5.1's "the author's field of expertise"): item —p₁→ x —p₂→ ... →
// Value. A length-1 path is equivalent to Property.
type PathProperty struct {
	Path  []rdf.IRI
	Value rdf.Term
}

// Eval implements Predicate by chasing the path backwards through the
// reverse index: subjects(pₙ, value), then subjects(pₙ₋₁, ·) of those, ...
func (p PathProperty) Eval(e *Engine) Set {
	if len(p.Path) == 0 {
		return Set{}
	}
	frontier := e.g.SubjectIDSet(p.Path[len(p.Path)-1], p.Value)
	for i := len(p.Path) - 2; i >= 0; i-- {
		b := itemset.NewBits(e.g.Interner().Len())
		frontier.ForEach(func(id uint32) bool {
			b.AddSet(e.g.SubjectIDSet(p.Path[i], e.g.SubjectByID(id)))
			return true
		})
		frontier = b.Extract()
		if frontier.IsEmpty() {
			break
		}
	}
	return e.setFromIDs(frontier)
}

// Describe implements Predicate.
func (p PathProperty) Describe(l Labeler) string {
	segs := make([]string, len(p.Path))
	for i, prop := range p.Path {
		segs[i] = l(prop)
	}
	var v string
	switch t := p.Value.(type) {
	case rdf.IRI:
		v = l(t)
	case rdf.Literal:
		v = t.Lexical
	default:
		v = p.Value.String()
	}
	return strings.Join(segs, " · ") + " = " + v
}

// Key implements Predicate.
func (p PathProperty) Key() string {
	segs := make([]string, len(p.Path))
	for i, prop := range p.Path {
		segs[i] = string(prop)
	}
	return "path:" + strings.Join(segs, "/") + "=" + p.Value.Key()
}

// Keyword matches items whose indexed text contains every word of Text.
// Field scopes the match ("" = any field); fields are the names used when
// the text index was populated (conventionally "title" and "body").
type Keyword struct {
	Text  string
	Field string
}

// Eval implements Predicate through the external text index (§4.2).
func (k Keyword) Eval(e *Engine) Set {
	if e.text == nil || strings.TrimSpace(k.Text) == "" {
		return Set{}
	}
	return e.setFromDocIDs(e.text.Matching(k.Text, k.Field))
}

// setFromDocIDs interns text-index document IDs (which are item IRIs) into
// the engine's dense space.
func (e *Engine) setFromDocIDs(docs []string) Set {
	in := e.g.Interner()
	dense := make([]uint32, len(docs))
	for i, id := range docs {
		dense[i] = in.Intern(rdf.IRI(id))
	}
	return Set{in: in, set: itemset.FromUnsorted(dense)}
}

// Describe implements Predicate.
func (k Keyword) Describe(Labeler) string {
	if k.Field != "" {
		return fmt.Sprintf("%s contains %q", k.Field, k.Text)
	}
	return fmt.Sprintf("contains %q", k.Text)
}

// Key implements Predicate.
func (k Keyword) Key() string { return "kw:" + k.Field + ":" + strings.ToLower(k.Text) }

// TermMatch matches items whose indexed text contains one already-analyzed
// (stemmed) term. Refinement analysts use it to turn vector-space word
// coordinates — which are stems — into constraints without re-stemming
// (Porter is not idempotent). Display holds the human-readable surface form.
type TermMatch struct {
	Term    string
	Field   string
	Display string
}

// Eval implements Predicate.
func (m TermMatch) Eval(e *Engine) Set {
	if e.text == nil || m.Term == "" {
		return Set{}
	}
	return e.setFromDocIDs(e.text.MatchingTerm(m.Term, m.Field))
}

// Describe implements Predicate.
func (m TermMatch) Describe(Labeler) string {
	d := m.Display
	if d == "" {
		d = m.Term
	}
	if m.Field != "" {
		return fmt.Sprintf("%s has word %q", m.Field, d)
	}
	return fmt.Sprintf("has word %q", d)
}

// Key implements Predicate.
func (m TermMatch) Key() string { return "term:" + m.Field + ":" + m.Term }

// Range matches items whose Prop has a numeric (or numeric-parseable, or
// temporal) value within [Min, Max]; either bound may be nil for a
// one-sided greater-than / less-than comparison (§4.2, §5.4).
type Range struct {
	Prop rdf.IRI
	Min  *float64
	Max  *float64
}

// Between builds a two-sided range.
func Between(prop rdf.IRI, min, max float64) Range {
	return Range{Prop: prop, Min: &min, Max: &max}
}

// AtLeast builds a one-sided greater-than-or-equal range.
func AtLeast(prop rdf.IRI, min float64) Range { return Range{Prop: prop, Min: &min} }

// AtMost builds a one-sided less-than-or-equal range.
func AtMost(prop rdf.IRI, max float64) Range { return Range{Prop: prop, Max: &max} }

// TimeBetween builds a range over a temporal property.
func TimeBetween(prop rdf.IRI, from, to time.Time) Range {
	return Between(prop, float64(from.Unix()), float64(to.Unix()))
}

// Eval implements Predicate by walking the property's value domain (one
// reverse-index probe per in-range value, never per item), unioning the
// in-range posting lists through a bitmap.
func (r Range) Eval(e *Engine) Set {
	b := itemset.NewBits(e.g.Interner().Len())
	e.g.ForEachValuePosting(r.Prop, func(v rdf.Term, subjects itemset.Set) bool {
		lit, ok := v.(rdf.Literal)
		if !ok {
			return true
		}
		f, ok := lit.Float()
		if !ok {
			return true
		}
		if r.Min != nil && f < *r.Min {
			return true
		}
		if r.Max != nil && f > *r.Max {
			return true
		}
		b.AddSet(subjects)
		return true
	})
	return e.setFromIDs(b.Extract())
}

// Describe implements Predicate.
func (r Range) Describe(l Labeler) string {
	name := l(r.Prop)
	fmtBound := func(f float64) string {
		if f >= 1e9 && f < 1e11 { // plausibly Unix seconds
			return time.Unix(int64(f), 0).UTC().Format("2006-01-02")
		}
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	switch {
	case r.Min != nil && r.Max != nil:
		return fmt.Sprintf("%s in [%s, %s]", name, fmtBound(*r.Min), fmtBound(*r.Max))
	case r.Min != nil:
		return fmt.Sprintf("%s ≥ %s", name, fmtBound(*r.Min))
	case r.Max != nil:
		return fmt.Sprintf("%s ≤ %s", name, fmtBound(*r.Max))
	default:
		return name + " has any value"
	}
}

// Key implements Predicate.
func (r Range) Key() string {
	b := "range:" + string(r.Prop) + ":"
	if r.Min != nil {
		b += strconv.FormatFloat(*r.Min, 'g', -1, 64)
	}
	b += ".."
	if r.Max != nil {
		b += strconv.FormatFloat(*r.Max, 'g', -1, 64)
	}
	return b
}

// Not negates a predicate against the universe (the context-menu negation
// of §3.2, and the Contrary Constraints advisor's operation).
type Not struct {
	P Predicate
}

// Eval implements Predicate.
func (n Not) Eval(e *Engine) Set {
	return e.Universe().Minus(n.P.Eval(e))
}

// Describe implements Predicate.
func (n Not) Describe(l Labeler) string { return "NOT " + n.P.Describe(l) }

// Key implements Predicate.
func (n Not) Key() string { return "not:" + n.P.Key() }

// And is an explicit conjunction (the compound refinement of §3.3).
type And struct {
	Ps []Predicate
}

// Eval implements Predicate.
func (a And) Eval(e *Engine) Set {
	return evalAnd(e, a.Ps,
		func(p Predicate) Set { return p.Eval(e) },
		func(n Not, acc Set) Set {
			return acc.Intersect(e.Universe()).Minus(n.P.Eval(e))
		})
}

// evalAnd is the conjunction loop shared by And.Eval and the
// instrumented Engine.EvalContext path: empty conjunctions yield the
// universe, and evaluation short-circuits on the first empty
// intersection. eval maps one term to its result set; evalNot applies a
// negated term to the accumulated result *lazily* — (acc ∩ U) \ E equals
// acc ∩ (U \ E), so the full universe complement that Not.Eval would
// materialize is never built on the conjunction path. A leading Not still
// takes the eval path (there is no accumulator to subtract from yet).
func evalAnd(e *Engine, ps []Predicate, eval func(Predicate) Set, evalNot func(Not, Set) Set) Set {
	if len(ps) == 0 {
		return e.Universe()
	}
	out := eval(ps[0])
	for _, p := range ps[1:] {
		if out.IsEmpty() {
			return out
		}
		if n, ok := p.(Not); ok {
			out = evalNot(n, out)
			continue
		}
		out = out.Intersect(eval(p))
	}
	return out
}

// Describe implements Predicate.
func (a And) Describe(l Labeler) string { return joinDescribe(a.Ps, l, " AND ") }

// Key implements Predicate.
func (a And) Key() string { return joinKeys("and", a.Ps) }

// Or is a disjunction (the "'or' refinement" of §3.3: items that "either
// have a dairy product or a vegetable in them").
type Or struct {
	Ps []Predicate
}

// Eval implements Predicate.
func (o Or) Eval(e *Engine) Set {
	return evalOr(o.Ps, func(p Predicate) Set { return p.Eval(e) })
}

// evalOr is the disjunction loop shared by Or.Eval and the instrumented
// Engine.EvalContext path.
func evalOr(ps []Predicate, eval func(Predicate) Set) Set {
	var out Set
	for _, p := range ps {
		out = out.Union(eval(p))
	}
	return out
}

// Describe implements Predicate.
func (o Or) Describe(l Labeler) string { return joinDescribe(o.Ps, l, " OR ") }

// Key implements Predicate.
func (o Or) Key() string { return joinKeys("or", o.Ps) }

func joinDescribe(ps []Predicate, l Labeler, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Describe(l)
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func joinKeys(op string, ps []Predicate) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Key()
	}
	sort.Strings(parts)
	return op + ":{" + strings.Join(parts, ",") + "}"
}

// Query is the user's current conjunctive constraint list (§3.2: "a
// conjunctive query consisting of three terms or constraints"). Queries are
// immutable values; refinement operations return new queries, which is what
// makes the Refinement History advisor's undo trivial.
type Query struct {
	Terms []Predicate
	// keys caches Terms' Key() strings, index-aligned. Predicate keys are
	// rebuilt from scratch on every With/Key call otherwise — an avoidable
	// per-refine allocation storm, since predicates are immutable values.
	// Maintained by NewQuery/With/Without/Negate; literal-constructed
	// queries (Query{Terms: ...}) simply have no cache and re-derive.
	keys []string
}

// NewQuery builds a query from constraint terms.
func NewQuery(terms ...Predicate) Query {
	return Query{Terms: terms, keys: termKeys(terms)}
}

// termKeys derives the per-term key cache.
func termKeys(terms []Predicate) []string {
	keys := make([]string, len(terms))
	for i, t := range terms {
		keys[i] = t.Key()
	}
	return keys
}

// TermKeys returns each term's Key(), index-aligned with Terms — cached
// when the query was built through the package's constructors, re-derived
// otherwise. Callers must not mutate the returned slice.
func (q Query) TermKeys() []string {
	if len(q.keys) == len(q.Terms) {
		return q.keys
	}
	return termKeys(q.Terms)
}

// indexOfKey scans a small key slice for an exact match. Split out so the
// refine-step duplicate check stays allocation- and interface-call-free
// (the predicate's Key is derived once by the caller, not per iteration).
//
//magnet:hot
func indexOfKey(keys []string, k string) int {
	for i, s := range keys {
		if s == k {
			return i
		}
	}
	return -1
}

// With returns the query extended by p (ignored if an identical constraint
// is already present).
func (q Query) With(p Predicate) Query {
	pk := p.Key()
	keys := q.TermKeys()
	if indexOfKey(keys, pk) >= 0 {
		return q
	}
	terms := make([]Predicate, len(q.Terms)+1)
	copy(terms, q.Terms)
	terms[len(q.Terms)] = p
	nk := make([]string, len(keys)+1)
	copy(nk, keys)
	nk[len(keys)] = pk
	return Query{Terms: terms, keys: nk}
}

// Without returns the query with the i-th constraint removed (the '✕' of
// §3.2); out-of-range indices return the query unchanged.
func (q Query) Without(i int) Query {
	if i < 0 || i >= len(q.Terms) {
		return q
	}
	terms := make([]Predicate, 0, len(q.Terms)-1)
	terms = append(terms, q.Terms[:i]...)
	terms = append(terms, q.Terms[i+1:]...)
	keys := q.TermKeys()
	nk := make([]string, 0, len(keys)-1)
	nk = append(nk, keys[:i]...)
	nk = append(nk, keys[i+1:]...)
	return Query{Terms: terms, keys: nk}
}

// Negate returns the query with the i-th constraint inverted (the
// context-menu negation of §3.2); double negation unwraps.
func (q Query) Negate(i int) Query {
	if i < 0 || i >= len(q.Terms) {
		return q
	}
	terms := make([]Predicate, len(q.Terms))
	copy(terms, q.Terms)
	if n, ok := terms[i].(Not); ok {
		terms[i] = n.P
	} else {
		terms[i] = Not{P: terms[i]}
	}
	nk := make([]string, len(terms))
	copy(nk, q.TermKeys())
	nk[i] = terms[i].Key()
	return Query{Terms: terms, keys: nk}
}

// IsEmpty reports whether the query has no constraints.
func (q Query) IsEmpty() bool { return len(q.Terms) == 0 }

// Eval evaluates the conjunction; the empty query yields the universe.
func (q Query) Eval(e *Engine) Set {
	return And{Ps: q.Terms}.Eval(e)
}

// Describe renders each constraint on its own line.
func (q Query) Describe(l Labeler) []string {
	out := make([]string, len(q.Terms))
	for i, t := range q.Terms {
		out[i] = t.Describe(l)
	}
	return out
}

// Key canonically identifies the query (term order is irrelevant for
// conjunctions).
func (q Query) Key() string { return KeyForTermKeys(q.TermKeys()) }

// KeyForTermKeys builds the canonical query key — identical to
// Query.Key() — from per-term Key() strings, without re-deriving them
// from predicates. The plan package probes delta-cache parents with it
// (the query minus one term). The input slice is not modified.
func KeyForTermKeys(keys []string) string {
	parts := make([]string, len(keys))
	copy(parts, keys)
	sort.Strings(parts)
	return "query:{" + strings.Join(parts, ",") + "}"
}

// Evaluate runs q through the instrumented path and returns the result
// as a sorted item slice.
func (e *Engine) Evaluate(q Query) []rdf.IRI {
	return e.EvalContext(context.Background(), q).Items()
}

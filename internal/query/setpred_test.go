package query

import (
	"reflect"
	"strings"
	"testing"

	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func setFixture() *Engine {
	g := rdf.NewGraph()
	add := func(item string, ings ...string) {
		it := rdf.IRI(ex + item)
		g.Add(it, rdf.Type, clsRecipe)
		for _, ing := range ings {
			g.Add(it, pIngredient, rdf.IRI(ex+ing))
		}
	}
	add("r1", "beans", "corn")
	add("r2", "beans")
	add("r3", "feta", "corn")
	add("r4", "feta")
	add("r5") // no ingredients at all
	items := []rdf.IRI{iri("r1"), iri("r2"), iri("r3"), iri("r4"), iri("r5")}
	return NewEngine(g, schema.NewStore(g), nil, func() []rdf.IRI { return items })
}

func TestAnyValueIn(t *testing.T) {
	e := setFixture()
	p := AnyValueIn{Prop: pIngredient, Values: []rdf.IRI{iri("beans"), iri("corn")}}
	got := p.Eval(e).Items()
	want := []rdf.IRI{iri("r1"), iri("r2"), iri("r3")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AnyValueIn = %v", got)
	}
	if n := (AnyValueIn{Prop: pIngredient}).Eval(e).Len(); n != 0 {
		t.Errorf("empty value set matched %d", n)
	}
}

func TestAllValuesIn(t *testing.T) {
	e := setFixture()
	p := AllValuesIn{Prop: pIngredient, Values: []rdf.IRI{iri("beans"), iri("corn")}}
	got := p.Eval(e).Items()
	// r1 (beans+corn) and r2 (beans) qualify; r3 has feta too; r5 has no
	// ingredient at all and must not match.
	want := []rdf.IRI{iri("r1"), iri("r2")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AllValuesIn = %v", got)
	}
}

func TestSetPredicateKeysOrderIndependent(t *testing.T) {
	a := AnyValueIn{Prop: pIngredient, Values: []rdf.IRI{iri("x"), iri("y")}}
	b := AnyValueIn{Prop: pIngredient, Values: []rdf.IRI{iri("y"), iri("x")}}
	if a.Key() != b.Key() {
		t.Error("AnyValueIn key should ignore value order")
	}
	c := AllValuesIn{Prop: pIngredient, Values: []rdf.IRI{iri("x"), iri("y")}}
	d := AllValuesIn{Prop: pIngredient, Values: []rdf.IRI{iri("y"), iri("x")}}
	if c.Key() != d.Key() {
		t.Error("AllValuesIn key should ignore value order")
	}
	if a.Key() == c.Key() {
		t.Error("any/all keys must differ")
	}
}

func TestSetPredicateDescribe(t *testing.T) {
	l := func(r rdf.IRI) string { return r.LocalName() }
	named := AnyValueIn{Prop: pIngredient, Name: "North American ingredients",
		Values: []rdf.IRI{iri("corn")}}
	if got := named.Describe(l); !strings.Contains(got, "North American ingredients") {
		t.Errorf("named describe = %q", got)
	}
	anon := AnyValueIn{Prop: pIngredient,
		Values: []rdf.IRI{iri("a"), iri("b"), iri("c"), iri("d")}}
	got := anon.Describe(l)
	if !strings.Contains(got, "…") {
		t.Errorf("long anonymous set should truncate: %q", got)
	}
	all := AllValuesIn{Prop: pIngredient, Name: "legumes", Values: []rdf.IRI{iri("beans")}}
	if got := all.Describe(l); !strings.Contains(got, "all within legumes") {
		t.Errorf("all describe = %q", got)
	}
}

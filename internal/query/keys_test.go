package query

import (
	"testing"
	"time"

	"magnet/internal/rdf"
)

// Keys must be canonical, stable, and collision-free across predicate
// kinds — they identify constraints for dedup, history and web routing.
func TestPredicateKeysDistinct(t *testing.T) {
	preds := []Predicate{
		Property{pCuisine, greek},
		Property{pCuisine, mexican},
		Property{pIngredient, greek}, // same value, different property
		PathProperty{Path: []rdf.IRI{pIngredient, pCuisine}, Value: greek},
		Keyword{Text: "greek"},
		Keyword{Text: "greek", Field: "title"},
		TermMatch{Term: "greek"},
		TermMatch{Term: "greek", Field: "title"},
		Between(pServings, 1, 5),
		AtLeast(pServings, 1),
		AtMost(pServings, 5),
		Not{Property{pCuisine, greek}},
		And{[]Predicate{Property{pCuisine, greek}}},
		Or{[]Predicate{Property{pCuisine, greek}}},
		AnyValueIn{Prop: pIngredient, Values: []rdf.IRI{greek}},
		AllValuesIn{Prop: pIngredient, Values: []rdf.IRI{greek}},
	}
	seen := map[string]int{}
	for i, p := range preds {
		k := p.Key()
		if k == "" {
			t.Errorf("predicate %d has empty key", i)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %d and %d: %q", prev, i, k)
		}
		seen[k] = i
	}
}

// Keyword keys are case-insensitive (the same search twice shouldn't stack
// twice).
func TestKeywordKeyCaseInsensitive(t *testing.T) {
	if (Keyword{Text: "Walnut"}).Key() != (Keyword{Text: "walnut"}).Key() {
		t.Error("keyword keys should fold case")
	}
}

func TestRangeKeyIncludesBounds(t *testing.T) {
	if Between(pServings, 1, 5).Key() == Between(pServings, 1, 6).Key() {
		t.Error("different bounds must have different keys")
	}
	if AtLeast(pServings, 1).Key() == AtMost(pServings, 1).Key() {
		t.Error("one-sided ranges must be distinguishable")
	}
}

func TestTimeBetweenEquivalence(t *testing.T) {
	from := time.Date(2003, 7, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)
	a := TimeBetween(pSent, from, to)
	b := Between(pSent, float64(from.Unix()), float64(to.Unix()))
	if a.Key() != b.Key() {
		t.Error("TimeBetween should be sugar for Between on Unix seconds")
	}
}

package query

import (
	"context"
	"time"

	"magnet/internal/obs"
)

// Per-stage observability for the query engine (the §4.2 evaluation
// stage of the navigation pipeline). Instruments are resolved once at
// package init; recording an event is a handful of atomic adds. Spans
// appear only when the caller's context carries a trace (obs.StartTrace),
// so magnet-eval -trace and per-request web traces see a pred.* tree
// while steady-state evaluation pays no span cost.
var (
	evalCount   = obs.NewCounter("query.eval.count")
	evalNS      = obs.NewHistogram("query.eval.ns")
	evalResults = obs.NewHistogram("query.eval.results")
)

// predKind names a predicate's kind for metrics and spans. The set is
// closed over the package's own predicate types; extensions report as
// "custom".
func predKind(p Predicate) string {
	switch p.(type) {
	case Property:
		return "property"
	case PathProperty:
		return "path"
	case Keyword:
		return "keyword"
	case TermMatch:
		return "term"
	case Range:
		return "range"
	case Not:
		return "not"
	case And:
		return "and"
	case Or:
		return "or"
	default:
		return "custom"
	}
}

// predInstrument pairs the per-kind counter and duration histogram.
type predInstrument struct {
	count *obs.Counter
	ns    *obs.Histogram
}

// predInstruments maps predicate kind → instruments. Built once at init
// and read-only afterwards, so hot-path lookups are a plain map read with
// no lock.
var predInstruments = func() map[string]predInstrument {
	kinds := []string{"property", "path", "keyword", "term", "range", "not", "and", "or", "custom"}
	m := make(map[string]predInstrument, len(kinds))
	for _, k := range kinds {
		m[k] = predInstrument{
			count: obs.NewCounter("query.pred." + k + ".count"),
			ns:    obs.NewHistogram("query.pred." + k + ".ns"),
		}
	}
	return m
}()

// EvalContext evaluates the query's conjunction with per-predicate-kind
// timing and result-set cardinality recording; when ctx carries a trace
// (obs.StartTrace) it also emits a query.eval span tree. This is the
// instrumented entry the session layer uses; Query.Eval remains the bare
// path for predicate implementations composing other predicates.
func (e *Engine) EvalContext(ctx context.Context, q Query) Set {
	ctx, sp := obs.StartSpan(ctx, "query.eval")
	start := time.Now()
	out := e.evalPred(ctx, And{Ps: q.Terms})
	evalNS.ObserveSince(start)
	evalCount.Inc()
	evalResults.Observe(int64(out.Len()))
	sp.SetInt("results", out.Len())
	sp.End()
	return out
}

// evalPred evaluates one predicate under instrumentation, recursing
// through the package's own composites so the span tree shows where a
// conjunction's time went. Composite semantics are shared with the bare
// Eval methods via evalAnd/evalOr.
func (e *Engine) evalPred(ctx context.Context, p Predicate) Set {
	kind := predKind(p)
	ctx, sp := obs.StartSpan(ctx, "pred."+kind)
	start := time.Now()
	var out Set
	switch t := p.(type) {
	case And:
		out = evalAnd(e, t.Ps,
			func(q Predicate) Set { return e.evalPred(ctx, q) },
			func(n Not, acc Set) Set { return e.evalNotWithin(ctx, n, acc) })
	case Or:
		out = evalOr(t.Ps, func(q Predicate) Set { return e.evalPred(ctx, q) })
	case Not:
		out = e.Universe().Minus(e.evalPred(ctx, t.P))
	default:
		out = p.Eval(e)
	}
	in := predInstruments[kind]
	in.count.Inc()
	in.ns.ObserveSince(start)
	sp.SetInt("results", out.Len())
	sp.End()
	return out
}

// evalNotWithin is evalAnd's lazy negation under instrumentation: the
// same pred.not counters and span as the eval path, but subtracting from
// the conjunction's accumulated result instead of the whole universe.
func (e *Engine) evalNotWithin(ctx context.Context, n Not, acc Set) Set {
	ctx, sp := obs.StartSpan(ctx, "pred.not")
	start := time.Now()
	out := acc.Intersect(e.Universe()).Minus(e.evalPred(ctx, n.P))
	in := predInstruments["not"]
	in.count.Inc()
	in.ns.ObserveSince(start)
	sp.SetInt("results", out.Len())
	sp.End()
	return out
}

// EvalPredContext evaluates one predicate on the instrumented path — the
// per-kind pred.* counters and the span tree — for orchestrators outside
// this package (the plan package's per-term evaluation).
func (e *Engine) EvalPredContext(ctx context.Context, p Predicate) Set {
	return e.evalPred(ctx, p)
}

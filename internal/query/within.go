package query

import (
	"magnet/internal/itemset"
	"magnet/internal/rdf"
)

// Candidate-first evaluation: the planner's fast path. Once a cheap term
// has produced a small candidate set, the remaining conjuncts only need to
// decide membership *within* those candidates — a galloping intersect
// against a posting list, or a per-candidate probe — never a full
// materialization of their own result sets. Predicates opt in by
// implementing WithinEvaluator; everything else falls back to Eval + an
// intersect, which is exactly the naive semantics, so planned output is
// byte-identical to the unplanned path by construction.

// WithinEvaluator is the optional candidate-first fast path on a
// Predicate: EvalWithin must return the same set as
// Eval(e).IDs() ∩ candidates, expressed on the engine's dense-ID plane.
type WithinEvaluator interface {
	Predicate
	EvalWithin(e *Engine, candidates itemset.Set) itemset.Set
}

// EvalWithinSet evaluates p restricted to candidates (which must be on
// the engine's dense-ID plane): the dispatch point the planner and the
// composite predicates' own EvalWithin methods share. The result always
// equals Eval(e).IDs() ∩ candidates.
func EvalWithinSet(e *Engine, p Predicate, candidates itemset.Set) itemset.Set {
	if candidates.IsEmpty() {
		return itemset.Set{}
	}
	if w, ok := p.(WithinEvaluator); ok {
		return w.EvalWithin(e, candidates)
	}
	// Fallback: full evaluation, then intersect. Intersect is
	// rebase-aware, so custom predicates built over a foreign interner
	// (the engine-less NewSet path) still land on the engine's ID plane.
	return e.FromIDs(candidates).Intersect(p.Eval(e)).IDs()
}

// EvalWithin implements WithinEvaluator: one galloping intersect of the
// candidates against the copy-on-write posting list — no result-set
// materialization at all.
func (p Property) EvalWithin(e *Engine, candidates itemset.Set) itemset.Set {
	return candidates.Intersect(e.g.SubjectIDSet(p.Prop, p.Value))
}

// EvalWithin implements WithinEvaluator. The backward path chase is
// unchanged — intermediate frontiers range over linked resources, not
// candidate items — but the final frontier intersects the candidates
// instead of becoming a full Set.
func (p PathProperty) EvalWithin(e *Engine, candidates itemset.Set) itemset.Set {
	return candidates.Intersect(p.Eval(e).IDs())
}

// rangeWithinCutoff bounds Range's per-candidate path: each candidate
// check costs one forward-index probe over that item's values, so for
// large candidate sets the value-domain walk of Eval (one reverse-index
// probe per distinct value) wins. Both branches compute the same set.
const rangeWithinCutoff = 256

// EvalWithin implements WithinEvaluator: small candidate sets are checked
// item-by-item against the forward index (Eval's value-domain walk would
// visit every distinct value of the property, in or out of the
// candidates); large ones fall back to Eval + intersect.
func (r Range) EvalWithin(e *Engine, candidates itemset.Set) itemset.Set {
	if candidates.Len() > rangeWithinCutoff {
		return candidates.Intersect(r.Eval(e).IDs())
	}
	kept := make([]uint32, 0, candidates.Len())
	candidates.ForEach(func(id uint32) bool {
		if r.matchesSubject(e, id) {
			kept = append(kept, id)
		}
		return true
	})
	return itemset.FromSorted(kept)
}

// matchesSubject reports whether one item carries an in-range value of
// Prop — the per-candidate dual of Eval's value-domain walk, with the
// same literal-and-parseable admission rules.
func (r Range) matchesSubject(e *Engine, id uint32) bool {
	match := false
	e.g.ForEachObject(e.g.SubjectByID(id), r.Prop, func(v rdf.Term) bool {
		lit, ok := v.(rdf.Literal)
		if !ok {
			return true
		}
		f, ok := lit.Float()
		if !ok {
			return true
		}
		if r.Min != nil && f < *r.Min {
			return true
		}
		if r.Max != nil && f > *r.Max {
			return true
		}
		match = true
		return false
	})
	return match
}

// EvalWithin implements WithinEvaluator: the lazy complement that keeps
// Not from materializing the universe on the planned path.
// (C ∩ U) \ E = C ∩ (U \ E), and the inner predicate itself only needs
// to be decided within C ∩ U — recursively through EvalWithinSet, so a
// Not over a Range checks candidates item-by-item too.
func (n Not) EvalWithin(e *Engine, candidates itemset.Set) itemset.Set {
	w := candidates.Intersect(e.Universe().IDs())
	if w.IsEmpty() {
		return w
	}
	return w.Minus(EvalWithinSet(e, n.P, w))
}

// EvalWithin implements WithinEvaluator by folding every conjunct over
// the shrinking candidate set; the empty conjunction is the universe, so
// it restricts the candidates to it.
func (a And) EvalWithin(e *Engine, candidates itemset.Set) itemset.Set {
	if len(a.Ps) == 0 {
		return candidates.Intersect(e.Universe().IDs())
	}
	out := candidates
	for _, p := range a.Ps {
		if out.IsEmpty() {
			return out
		}
		out = EvalWithinSet(e, p, out)
	}
	return out
}

// EvalWithin implements WithinEvaluator: restriction distributes over
// union, (∪ᵢ Eᵢ) ∩ C = ∪ᵢ (Eᵢ ∩ C), so each branch is decided within the
// candidates independently.
func (o Or) EvalWithin(e *Engine, candidates itemset.Set) itemset.Set {
	var out itemset.Set
	for _, p := range o.Ps {
		out = out.Union(EvalWithinSet(e, p, candidates))
	}
	return out
}

package query

import (
	"testing"

	"magnet/internal/index"
	"magnet/internal/itemset"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// EvalWithinSet's contract: for every predicate and candidate set, the
// result equals candidates ∩ Eval(p) — the fast paths (posting
// intersection, per-candidate probes, lazy complement) may never change
// the answer, only how it is computed.
func TestEvalWithinMatchesIntersect(t *testing.T) {
	e, items := fixture()
	all := e.NewSet(items...).IDs()
	half := itemset.FromSorted(all.Slice()[:3])
	preds := []Predicate{
		Property{pCuisine, greek},
		Property{pCuisine, rdf.IRI(ex + "Thai")}, // empty posting
		PathProperty{Path: []rdf.IRI{pCuisine}, Value: mexican},
		Keyword{Text: "walnut"},
		TermMatch{Term: "walnut"},
		Between(pServings, 2, 6),
		AtLeast(pServings, 5),
		Not{Property{pCuisine, greek}},
		Not{Keyword{Text: "walnut"}},
		And{[]Predicate{Property{pCuisine, greek}, Between(pServings, 2, 9)}},
		And{nil},
		Or{[]Predicate{Property{pCuisine, mexican}, Keyword{Text: "feta"}}},
		maxValues{prop: pIngredient, max: 1}, // custom: fallback path
	}
	cands := map[string]itemset.Set{
		"empty": {},
		"all":   all,
		"half":  half,
	}
	for _, p := range preds {
		want := func(c itemset.Set) itemset.Set {
			return e.FromIDs(c).Intersect(p.Eval(e)).IDs()
		}
		for name, c := range cands {
			got := EvalWithinSet(e, p, c)
			if !got.Equal(want(c)) {
				t.Errorf("%s within %s = %v, want %v", p.Key(), name, got.Slice(), want(c).Slice())
			}
		}
	}
}

// The Range fast path switches from per-candidate probes to full
// evaluation past rangeWithinCutoff; both sides of the cutoff must agree
// with the naive intersection.
func TestEvalWithinRangeCutoff(t *testing.T) {
	g := rdf.NewGraph()
	n := rangeWithinCutoff + 40
	var items []rdf.IRI
	for i := 0; i < n; i++ {
		it := rdf.IRI(ex + "bulk" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260)))
		g.Add(it, pServings, rdf.NewInteger(int64(i%17)))
		items = append(items, it)
	}
	e := NewEngine(g, schema.NewStore(g), index.NewTextIndex(nil), func() []rdf.IRI { return items })

	p := Between(pServings, 3, 11)
	all := e.Universe().IDs()
	small := itemset.FromSorted(all.Slice()[:rangeWithinCutoff/2])
	for name, c := range map[string]itemset.Set{"small": small, "large": all} {
		want := e.FromIDs(c).Intersect(p.Eval(e)).IDs()
		if got := EvalWithinSet(e, p, c); !got.Equal(want) {
			t.Errorf("%s candidates: got %d ids, want %d", name, got.Len(), want.Len())
		}
	}
}

// Candidate IDs outside the universe still behave: Not must clip to the
// universe (its complement is only defined there), everything else
// intersects postings directly.
func TestEvalWithinNotClipsToUniverse(t *testing.T) {
	e, items := fixture()
	// Shrink the universe to the first three items but keep candidates
	// spanning all five.
	short := items[:3]
	allIDs := e.NewSet(items...).IDs()
	e.SetUniverseIDs(func() itemset.Set { return e.NewSet(short...).IDs() })

	p := Not{Property{pCuisine, greek}}
	got := EvalWithinSet(e, p, allIDs)
	want := e.FromIDs(allIDs).Intersect(p.Eval(e)).IDs()
	if !got.Equal(want) {
		t.Fatalf("not within out-of-universe candidates = %v, want %v", got.Slice(), want.Slice())
	}
	for _, id := range got.Slice() {
		if !e.Universe().IDs().Has(id) {
			t.Fatalf("result id %d escapes the universe", id)
		}
	}
}

// KeysCache: Query.With/Without/Negate maintain the cached term keys, so
// Key() after any edit chain equals a from-scratch rebuild — and the
// cached path must not alias the source query's backing arrays.
func TestKeysCacheMaintainedByEdits(t *testing.T) {
	q := NewQuery(Property{pCuisine, greek})
	q = q.With(Property{pIngredient, walnut})
	q = q.With(Keyword{Text: "salad"})
	check := func(label string, q Query) {
		t.Helper()
		if got, want := q.Key(), NewQuery(q.Terms...).Key(); got != want {
			t.Errorf("%s: cached key %q, rebuilt %q", label, got, want)
		}
	}
	check("with×3", q)

	// A second value for the same property appends; re-adding an existing
	// constraint is a no-op that must keep the cached keys intact.
	dup := q.With(Property{pCuisine, mexican})
	check("append same property", dup)
	same := dup.With(Property{pCuisine, greek})
	check("dedup no-op", same)
	check("source after edits", q)

	rm := q.Without(1)
	check("without", rm)
	neg := q.Negate(0)
	check("negate", neg)
	check("source after without/negate", q)

	if NewQuery().Key() != KeyForTermKeys(nil) {
		t.Error("empty query key mismatch")
	}
}

package query

import (
	"context"
	"errors"
	"time"

	"magnet/internal/ids"
	"magnet/internal/itemset"
	"magnet/internal/obs"
	"magnet/internal/par"
)

// Scatter-gather evaluation: the dense-ID space is partitioned into N
// shards by ids.Shard, each shard evaluates the query against its own
// slice of the universe on the par pool, and the per-shard results are
// merged with the disjoint-set union. The merge is exact, not
// approximate: for every predicate p, evaluating under the shard's
// universe U_s = U ∩ space_s and then restricting to the shard's ID space
// space_s = {id : ids.Shard(id, N) = s} yields E(p) ∩ space_s — leaves
// never consult the universe, Not distributes because U_s ⊆ space_s, and
// And/Or distribute over the restriction — so the union over shards is
// byte-identical to the unsharded result at every shard count.
//
// Caveat for extension predicates: a custom Predicate that consults
// e.Universe() must, like Not, only ever *intersect or subtract against*
// it; one that projects members out of the universe (e.g. maps a universe
// member to its author) would break the restriction identity and must not
// be used on the sharded path.

var (
	evalShardedCount = obs.NewCounter("query.eval.sharded.count")
	evalShardedNS    = obs.NewHistogram("query.eval.sharded.ns")
)

// Sharding is an immutable shard layout: the shard count and the universe
// restricted to each shard. core.Magnet rebuilds it whenever the item
// universe changes; it is safe for concurrent use once built.
type Sharding struct {
	// N is the shard count (>= 1).
	N int
	// Universes[s] is the queryable universe restricted to shard s.
	Universes []itemset.Set
}

// BuildSharding partitions the universe into n shard universes by
// ids.Shard. n <= 1 yields a single-shard layout (the serial oracle).
func BuildSharding(n int, universe itemset.Set) *Sharding {
	if n < 1 {
		n = 1
	}
	return &Sharding{
		N:         n,
		Universes: universe.Partition(n, func(id uint32) int { return ids.Shard(id, n) }),
	}
}

// RestrictToShard filters an ID set down to shard `shard` of an n-way
// layout — the restriction the scatter-gather merge identity is built on.
// Exported for the plan package, whose sharded path stores per-shard
// restricted results in its per-shard caches.
func RestrictToShard(s itemset.Set, shard, n int) itemset.Set {
	return restrictToShard(s, shard, n)
}

// restrictToShard filters an ID set down to the shard's slice of the dense
// ID space. Order is preserved, so the result is still sorted.
func restrictToShard(s itemset.Set, shard, n int) itemset.Set {
	out := make([]uint32, 0, s.Len())
	s.ForEach(func(id uint32) bool {
		if ids.Shard(id, n) == shard {
			out = append(out, id)
		}
		return true
	})
	return itemset.FromSorted(out)
}

// EvalShardedParts evaluates q shard-by-shard on the pool and returns both
// the merged result (byte-identical to EvalContext) and its partition into
// per-shard subsets, which downstream stages (facet summarization, advisor
// scoring) reuse as their scatter layout. A panic inside a shard is
// re-raised on the caller; on context cancellation the evaluation falls
// back to the serial unsharded path so the result is never partial.
func (e *Engine) EvalShardedParts(ctx context.Context, q Query, sh *Sharding, pool *par.Pool) (Set, []itemset.Set) {
	ctx, sp := obs.StartSpan(ctx, "query.eval.sharded")
	sp.SetInt("shards", sh.N)
	start := time.Now()
	parts := make([]itemset.Set, sh.N)
	err := par.ForN(ctx, pool, sh.N, func(s int) {
		// Shallow engine copy with the universe swapped for the shard's
		// slice: predicate evaluation is read-only on the engine, so the
		// copies share graph, schema and text index.
		se := *e
		u := sh.Universes[s]
		se.universeIDs = func() itemset.Set { return u }
		res := se.evalPred(ctx, And{Ps: q.Terms})
		parts[s] = restrictToShard(res.IDs(), s, sh.N)
	})
	if err != nil {
		var pe *par.PanicError
		if errors.As(err, &pe) {
			panic(pe)
		}
		// Context error: some shards never ran. Evaluate serially and
		// partition the full result — exactly what the scatter would have
		// produced — so callers always see a complete, consistent answer.
		full := e.evalPred(ctx, And{Ps: q.Terms})
		parts = full.IDs().Partition(sh.N, func(id uint32) int { return ids.Shard(id, sh.N) })
	}
	merged := e.setFromIDs(itemset.MergeDisjoint(parts))
	evalShardedCount.Inc()
	evalShardedNS.ObserveSince(start)
	evalNS.ObserveSince(start)
	evalCount.Inc()
	evalResults.Observe(int64(merged.Len()))
	sp.SetInt("results", merged.Len())
	sp.End()
	return merged, parts
}

// EvalShardedContext is EvalShardedParts without the partition — the
// drop-in sharded counterpart of EvalContext.
func (e *Engine) EvalShardedContext(ctx context.Context, q Query, sh *Sharding, pool *par.Pool) Set {
	out, _ := e.EvalShardedParts(ctx, q, sh, pool)
	return out
}

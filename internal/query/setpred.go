package query

import (
	"sort"
	"strings"

	"magnet/internal/itemset"
	"magnet/internal/rdf"
)

// AnyValueIn matches items having at least one value of Prop inside the
// given value collection — the §3.3 "apply the query to ... get recipes
// having an (using or) ingredient found in North America" move, where the
// user refined the *ingredients* collection and applied it back to the
// recipes.
type AnyValueIn struct {
	Prop rdf.IRI
	// Values is the refined value collection.
	Values []rdf.IRI
	// Name labels the value collection for display (e.g. "ingredients
	// found in North America").
	Name string
}

// Eval implements Predicate via one reverse-index probe per value; the
// posting lists are unioned through a bitmap.
func (p AnyValueIn) Eval(e *Engine) Set {
	b := itemset.NewBits(e.g.Interner().Len())
	for _, v := range p.Values {
		b.AddSet(e.g.SubjectIDSet(p.Prop, v))
	}
	return e.setFromIDs(b.Extract())
}

// Describe implements Predicate.
func (p AnyValueIn) Describe(l Labeler) string {
	return l(p.Prop) + " has any of " + p.collectionName(l)
}

// Key implements Predicate.
func (p AnyValueIn) Key() string { return "anyin:" + string(p.Prop) + ":" + p.valuesKey() }

func (p AnyValueIn) collectionName(l Labeler) string {
	if p.Name != "" {
		return p.Name
	}
	return describeValues(p.Values, l)
}

func (p AnyValueIn) valuesKey() string { return valuesKey(p.Values) }

// AllValuesIn matches items whose *every* value of Prop lies inside the
// given collection — the "using and" variant ("recipes having all their
// ingredients found in North America"). Items without any value of Prop do
// not match (an empty ingredient list is not "all in North America" for
// navigation purposes: the user is filtering things that have the
// property).
type AllValuesIn struct {
	Prop   rdf.IRI
	Values []rdf.IRI
	Name   string
}

// Eval implements Predicate: candidates come from the reverse index (they
// must have at least one value in the set), then each candidate's full
// value list is checked for containment.
func (p AllValuesIn) Eval(e *Engine) Set {
	allowed := make([]string, len(p.Values))
	for i, v := range p.Values {
		allowed[i] = v.Key()
	}
	sort.Strings(allowed)
	inAllowed := func(k string) bool {
		i := sort.SearchStrings(allowed, k)
		return i < len(allowed) && allowed[i] == k
	}
	candidates := AnyValueIn{Prop: p.Prop, Values: p.Values}.Eval(e)
	kept := make([]uint32, 0, candidates.Len())
	candidates.IDs().ForEach(func(id uint32) bool {
		it := e.g.SubjectByID(id)
		for _, v := range e.g.Objects(it, p.Prop) {
			if !inAllowed(v.Key()) {
				return true
			}
		}
		kept = append(kept, id)
		return true
	})
	return e.setFromIDs(itemset.FromSorted(kept))
}

// Describe implements Predicate.
func (p AllValuesIn) Describe(l Labeler) string {
	name := p.Name
	if name == "" {
		name = describeValues(p.Values, l)
	}
	return l(p.Prop) + " all within " + name
}

// Key implements Predicate.
func (p AllValuesIn) Key() string { return "allin:" + string(p.Prop) + ":" + valuesKey(p.Values) }

func valuesKey(values []rdf.IRI) string {
	keys := make([]string, len(values))
	for i, v := range values {
		keys[i] = string(v)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func describeValues(values []rdf.IRI, l Labeler) string {
	n := len(values)
	show := values
	if n > 3 {
		show = values[:3]
	}
	parts := make([]string, len(show))
	for i, v := range show {
		parts[i] = l(v)
	}
	s := "{" + strings.Join(parts, ", ")
	if n > 3 {
		s += ", …"
	}
	return s + "}"
}

package query

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"magnet/internal/ids"
	"magnet/internal/index"
	"magnet/internal/itemset"
	"magnet/internal/par"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// randomFixture builds a synthetic corpus of n items with random cuisines,
// ingredients, servings and titles, plus a handful of non-item resources
// so the interned ID space is wider than the universe (Property can match
// subjects outside it, like the real graph).
func randomFixture(n int, seed int64) (*Engine, itemset.Set) {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	sch := schema.NewStore(g)
	tix := index.NewTextIndex(nil)
	words := []string{"walnut", "feta", "bean", "salad", "mole", "dip", "stew", "pie"}
	cuisines := []rdf.IRI{greek, mexican, rdf.IRI(ex + "Thai")}
	var items []rdf.IRI
	for i := 0; i < n; i++ {
		it := rdf.IRI(fmt.Sprintf("%sitem%04d", ex, i))
		items = append(items, it)
		g.Add(it, rdf.Type, clsRecipe)
		g.Add(it, pCuisine, cuisines[rng.Intn(len(cuisines))])
		g.Add(it, pServings, rdf.NewInteger(int64(1+rng.Intn(12))))
		title := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		g.Add(it, rdf.DCTitle, rdf.NewString(title))
		for _, w := range words {
			if rng.Intn(4) == 0 {
				g.Add(it, pIngredient, rdf.IRI(ex+w))
			}
		}
		tix.Index(string(it), "title", title)
	}
	// Non-item subjects sharing the item properties: posting lists now
	// reach outside the universe, which the shard restriction must handle.
	for i := 0; i < n/4; i++ {
		out := rdf.IRI(fmt.Sprintf("%souter%04d", ex, i))
		g.Add(out, pCuisine, cuisines[rng.Intn(len(cuisines))])
		g.Add(out, pServings, rdf.NewInteger(int64(1+rng.Intn(12))))
	}
	e := NewEngine(g, sch, tix, func() []rdf.IRI { return items })
	uni := e.NewSet(items...).IDs()
	e.SetUniverseIDs(func() itemset.Set { return uni })
	return e, uni
}

// randomQuery builds a random conjunction mixing every predicate kind.
func randomQuery(rng *rand.Rand) Query {
	words := []string{"walnut", "feta", "bean", "salad", "mole", "dip"}
	leaf := func() Predicate {
		switch rng.Intn(4) {
		case 0:
			return Property{Prop: pCuisine, Value: []rdf.IRI{greek, mexican, rdf.IRI(ex + "Thai")}[rng.Intn(3)]}
		case 1:
			return Property{Prop: pIngredient, Value: rdf.IRI(ex + words[rng.Intn(len(words))])}
		case 2:
			lo, hi := float64(1+rng.Intn(6)), float64(6+rng.Intn(7))
			return Between(pServings, lo, hi)
		default:
			return Keyword{Text: words[rng.Intn(len(words))]}
		}
	}
	term := func() Predicate {
		switch rng.Intn(4) {
		case 0:
			return Not{P: leaf()}
		case 1:
			return Or{Ps: []Predicate{leaf(), leaf()}}
		case 2:
			return And{Ps: []Predicate{leaf(), Not{P: leaf()}}}
		default:
			return leaf()
		}
	}
	q := NewQuery()
	for i, n := 0, rng.Intn(3); i <= n; i++ {
		q = q.With(term())
	}
	return q
}

// TestEvalShardedEquivalence: the merged scatter-gather result is
// byte-identical to the unsharded evaluation for random queries at every
// shard count, serial and pooled, and the returned parts are exactly the
// hash partition of the result.
func TestEvalShardedEquivalence(t *testing.T) {
	e, uni := randomFixture(400, 7)
	pool := par.New(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(99))
	ctx := context.Background()
	for trial := 0; trial < 60; trial++ {
		q := randomQuery(rng)
		want := e.EvalContext(ctx, q).Items()
		for _, n := range []int{1, 2, 4, 7} {
			sh := BuildSharding(n, uni)
			for _, p := range []*par.Pool{nil, pool} {
				got, parts := e.EvalShardedParts(ctx, q, sh, p)
				if !reflect.DeepEqual(got.Items(), want) {
					t.Fatalf("trial %d shards=%d pool=%v: sharded result diverged\nquery: %s\ngot:  %v\nwant: %v",
						trial, n, p.Width(), q.Key(), got.Items(), want)
				}
				if len(parts) != n {
					t.Fatalf("shards=%d: got %d parts", n, len(parts))
				}
				for s, part := range parts {
					part.ForEach(func(id uint32) bool {
						if ids.Shard(id, n) != s {
							t.Fatalf("part %d holds id %d, Shard assigns %d", s, id, ids.Shard(id, n))
						}
						return true
					})
				}
				if merged := itemset.MergeDisjoint(parts); !merged.Equal(got.IDs()) {
					t.Fatalf("shards=%d: parts do not reassemble the merged result", n)
				}
			}
		}
	}
}

// TestEvalShardedEmptyAndUniverse covers the edge queries: the empty
// conjunction (yields the universe) and an unsatisfiable one.
func TestEvalShardedEmptyAndUniverse(t *testing.T) {
	e, uni := randomFixture(100, 3)
	ctx := context.Background()
	for _, n := range []int{1, 2, 4, 7} {
		sh := BuildSharding(n, uni)
		got := e.EvalShardedContext(ctx, NewQuery(), sh, nil)
		if !got.IDs().Equal(uni) {
			t.Fatalf("shards=%d: empty query must yield the universe", n)
		}
		none := e.EvalShardedContext(ctx, NewQuery(Property{Prop: pCuisine, Value: rdf.IRI(ex + "Nope")}), sh, nil)
		if !none.IsEmpty() {
			t.Fatalf("shards=%d: unsatisfiable query returned %d items", n, none.Len())
		}
	}
}

// TestEvalShardedCancelledContext: a cancelled context must still return
// the complete result via the serial fallback.
func TestEvalShardedCancelledContext(t *testing.T) {
	e, uni := randomFixture(100, 5)
	pool := par.New(4)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := NewQuery(Property{Prop: pCuisine, Value: greek})
	want := e.EvalContext(context.Background(), q).Items()
	sh := BuildSharding(4, uni)
	got := e.EvalShardedContext(ctx, q, sh, pool)
	if !reflect.DeepEqual(got.Items(), want) {
		t.Fatalf("cancelled-context fallback diverged: got %v want %v", got.Items(), want)
	}
}

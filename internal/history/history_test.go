package history

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"magnet/internal/query"
	"magnet/internal/rdf"
)

const ex = "http://example.org/"

func TestRecordVisitAndRecent(t *testing.T) {
	tr := NewTracker()
	for _, k := range []string{"a", "b", "c", "b", "d"} {
		tr.RecordVisit(k)
	}
	if tr.Current() != "d" {
		t.Errorf("Current = %q", tr.Current())
	}
	// Most recent first, distinct, excluding current.
	got := tr.Recent(10)
	want := []string{"b", "c", "a"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Recent = %v, want %v", got, want)
	}
	if got := tr.Recent(1); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("Recent(1) = %v", got)
	}
	if tr.Recent(0) != nil {
		t.Error("Recent(0) should be nil")
	}
}

func TestConsecutiveDuplicatesCollapse(t *testing.T) {
	tr := NewTracker()
	tr.RecordVisit("a")
	tr.RecordVisit("a")
	tr.RecordVisit("a")
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	// No self transition recorded.
	if got := tr.FollowedFrom("a", 5); got != nil {
		t.Errorf("self transitions = %v", got)
	}
	tr.RecordVisit("")
	if tr.Len() != 1 {
		t.Error("empty key should be ignored")
	}
}

func TestFollowedFromCountsAndOrder(t *testing.T) {
	tr := NewTracker()
	// a→b twice, a→c once.
	for _, k := range []string{"a", "b", "a", "b", "a", "c"} {
		tr.RecordVisit(k)
	}
	got := tr.FollowedFrom("a", 5)
	want := []Followed{{"b", 2}, {"c", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FollowedFrom = %v, want %v", got, want)
	}
	if got := tr.FollowedFrom("a", 1); len(got) != 1 || got[0].Key != "b" {
		t.Errorf("FollowedFrom(1) = %v", got)
	}
	if tr.FollowedFrom("zzz", 5) != nil {
		t.Error("unknown key should give nil")
	}
}

func TestFollowedFromTieAlphabetical(t *testing.T) {
	tr := NewTracker()
	for _, k := range []string{"a", "z", "a", "b"} {
		tr.RecordVisit(k)
	}
	got := tr.FollowedFrom("a", 5)
	if got[0].Key != "b" || got[1].Key != "z" {
		t.Errorf("tie order = %v", got)
	}
}

func TestRefinementTrailBack(t *testing.T) {
	tr := NewTracker()
	p1 := query.Property{Prop: rdf.IRI(ex + "cuisine"), Value: rdf.IRI(ex + "Greek")}
	p2 := query.Property{Prop: rdf.IRI(ex + "ingredient"), Value: rdf.IRI(ex + "Feta")}
	q0 := query.NewQuery()
	q1 := q0.With(p1)
	q2 := q1.With(p2)
	tr.PushQuery(q0)
	tr.PushQuery(q1)
	tr.PushQuery(q2)
	tr.PushQuery(q2) // duplicate collapses
	if got := tr.Trail(); len(got) != 3 {
		t.Fatalf("Trail len = %d", len(got))
	}
	prev, ok := tr.Back()
	if !ok || prev.Key() != q1.Key() {
		t.Errorf("Back = %v, %v", prev, ok)
	}
	prev, ok = tr.Back()
	if !ok || prev.Key() != q0.Key() {
		t.Errorf("second Back = %v, %v", prev, ok)
	}
	if _, ok := tr.Back(); ok {
		t.Error("Back on single-entry trail should fail")
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.RecordVisit(fmt.Sprintf("k%d", (w+i)%10))
				tr.Recent(3)
				tr.FollowedFrom("k1", 3)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() == 0 {
		t.Error("no visits recorded")
	}
}

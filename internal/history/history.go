// Package history tracks the user's navigation: the visit log backing the
// History advisor's "Previous" suggestions, the refinement trail backing
// undo, and the transition statistics backing the "Similar by Visit"
// advisor ("an intelligent history that presents those suggestions that the
// user has followed often in the past from the current document", §4.1).
package history

import (
	"sort"
	"sync"

	"magnet/internal/query"
)

// Tracker records visits, transitions and the refinement trail. It is safe
// for concurrent use.
type Tracker struct {
	mu sync.Mutex

	// visits is the ordered log of view keys, most recent last;
	// guarded by mu.
	visits []string
	// transitions counts, for each view key, which views the user went to
	// next: from → to → count; guarded by mu.
	transitions map[string]map[string]int
	// trail is the refinement trail of queries, most recent last;
	// guarded by mu.
	trail []query.Query
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{transitions: make(map[string]map[string]int)}
}

// RecordVisit appends a view (identified by a stable key: an item IRI or a
// query key) to the visit log, updating transition counts from the
// previously current view. Consecutive duplicate visits collapse.
func (t *Tracker) RecordVisit(key string) {
	if key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.visits); n > 0 {
		prev := t.visits[n-1]
		if prev == key {
			return
		}
		m := t.transitions[prev]
		if m == nil {
			m = make(map[string]int)
			t.transitions[prev] = m
		}
		m[key]++
	}
	t.visits = append(t.visits, key)
}

// Current returns the most recently visited key ("" when empty).
func (t *Tracker) Current() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.visits) == 0 {
		return ""
	}
	return t.visits[len(t.visits)-1]
}

// Recent returns up to n distinct previously seen keys, most recent first,
// excluding the current view (the History advisor's "Previous" list).
func (t *Tracker) Recent(n int) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || len(t.visits) == 0 {
		return nil
	}
	seen := map[string]bool{t.visits[len(t.visits)-1]: true}
	var out []string
	for i := len(t.visits) - 2; i >= 0 && len(out) < n; i-- {
		k := t.visits[i]
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, k)
	}
	return out
}

// Followed is a destination with the number of times the user followed it
// from a given view.
type Followed struct {
	Key   string
	Count int
}

// FollowedFrom returns up to n views the user has most often visited next
// after the given view, descending by count (ties alphabetical). This backs
// "Similar by Visit": "items that were visited the last time the user left
// the currently viewed item".
func (t *Tracker) FollowedFrom(key string, n int) []Followed {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.transitions[key]
	if len(m) == 0 || n <= 0 {
		return nil
	}
	out := make([]Followed, 0, len(m))
	for k, c := range m {
		out = append(out, Followed{k, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// PushQuery appends a query to the refinement trail (skipping consecutive
// duplicates by key).
func (t *Tracker) PushQuery(q query.Query) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.trail); n > 0 && t.trail[n-1].Key() == q.Key() {
		return
	}
	t.trail = append(t.trail, q)
}

// Trail returns a copy of the refinement trail, oldest first.
func (t *Tracker) Trail() []query.Query {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]query.Query, len(t.trail))
	copy(out, t.trail)
	return out
}

// Back pops the current query off the trail and returns the previous one
// (the History advisor's "Refinement ... undo previous refinements"). ok is
// false when there is nothing to go back to.
func (t *Tracker) Back() (query.Query, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.trail) < 2 {
		return query.Query{}, false
	}
	t.trail = t.trail[:len(t.trail)-1]
	return t.trail[len(t.trail)-1], true
}

// Len returns the number of recorded visits.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.visits)
}

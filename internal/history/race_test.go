package history

import (
	"fmt"
	"sync"
	"testing"

	"magnet/internal/query"
)

// TestConcurrentTracker hammers every Tracker method from parallel
// goroutines. Run under -race it proves the documented "safe for concurrent
// use" claim and the 'guarded by mu' annotations magnet-vet enforces.
func TestConcurrentTracker(t *testing.T) {
	tr := NewTracker()
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("item-%d-%d", w, i%10)
				tr.RecordVisit(key)
				tr.PushQuery(query.Query{})
				_ = tr.Current()
				_ = tr.Recent(5)
				_ = tr.FollowedFrom(key, 3)
				_ = tr.Trail()
				_, _ = tr.Back()
				_ = tr.Len()
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() == 0 {
		t.Error("no visits recorded")
	}
}

package qlang

import (
	"strings"
	"testing"

	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

func fixture(t *testing.T) (*rdf.Graph, *Resolver, *query.Engine) {
	t.Helper()
	g := recipes.Build(recipes.Config{Recipes: 400, Seed: 1})
	sch := schema.NewStore(g)
	r := NewResolver(g, sch)
	items := g.SubjectsOfType(recipes.ClassRecipe)
	e := query.NewEngine(g, sch, nil, func() []rdf.IRI { return items })
	return g, r, e
}

func parse(t *testing.T, r *Resolver, src string) query.Query {
	t.Helper()
	q, err := Parse(src, r)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestResolverPropertyNames(t *testing.T) {
	_, r, _ := fixture(t)
	// By annotation label, by local name, case-insensitively.
	for _, name := range []string{"cuisine", "Cuisine", "cooking method", "cookingMethod", "servings", "type"} {
		if _, err := r.Property(name); err != nil {
			t.Errorf("Property(%q): %v", name, err)
		}
	}
	if _, err := r.Property("nonsense"); err == nil {
		t.Error("unknown property should error")
	}
}

func TestResolverValues(t *testing.T) {
	g, r, _ := fixture(t)
	cuisineProp, _ := r.Property("cuisine")
	v, err := r.Value(cuisineProp, "greek")
	if err != nil {
		t.Fatal(err)
	}
	if v != recipes.Cuisine("Greek") {
		t.Errorf("Value = %v", v)
	}
	if _, err := r.Value(cuisineProp, "atlantean"); err == nil {
		t.Error("unknown value should error")
	}
	_ = g
}

func TestParseEqualityAndEvaluation(t *testing.T) {
	g, r, e := fixture(t)
	q := parse(t, r, `cuisine = Greek`)
	items := e.Evaluate(q)
	if len(items) == 0 {
		t.Fatal("no Greek recipes")
	}
	for _, it := range items[:5] {
		if !g.Has(it, recipes.PropCuisine, recipes.Cuisine("Greek")) {
			t.Errorf("%s not Greek", it)
		}
	}
}

func TestParseConjunctionFlattens(t *testing.T) {
	_, r, _ := fixture(t)
	q := parse(t, r, `cuisine = Greek AND servings >= 4 AND course = Dessert`)
	if len(q.Terms) != 3 {
		t.Fatalf("top-level AND should flatten to 3 constraints, got %d", len(q.Terms))
	}
}

func TestParsePrecedenceAndParens(t *testing.T) {
	_, r, e := fixture(t)
	// AND binds tighter: a OR b AND c == a OR (b AND c).
	q1 := parse(t, r, `cuisine = Greek OR cuisine = Mexican AND course = Dessert`)
	if len(q1.Terms) != 1 {
		t.Fatalf("OR query should be one term, got %d", len(q1.Terms))
	}
	or, ok := q1.Terms[0].(query.Or)
	if !ok || len(or.Ps) != 2 {
		t.Fatalf("term = %#v", q1.Terms[0])
	}
	if _, ok := or.Ps[1].(query.And); !ok {
		t.Errorf("right OR arm should be an AND, got %T", or.Ps[1])
	}
	// Parentheses override.
	q2 := parse(t, r, `(cuisine = Greek OR cuisine = Mexican) AND course = Dessert`)
	if len(q2.Terms) != 2 {
		t.Fatalf("parenthesised query should flatten to 2 constraints, got %d", len(q2.Terms))
	}
	// Both evaluate without error and q2 is a subset of Greek∪Mexican.
	set1 := q1.Eval(e)
	set2 := q2.Eval(e)
	if set2.Len() == 0 || set1.Len() == 0 {
		t.Error("empty evaluations")
	}
	for _, it := range set2.Items() {
		if !set1.Has(it) && set1.Len() > 0 {
			// q2 ⊆ (Greek ∪ (Mexican ∧ Dessert)) need not hold; just sanity
			// that both are non-crazy.
			break
		}
	}
}

func TestParseNegation(t *testing.T) {
	g, r, e := fixture(t)
	q := parse(t, r, `cuisine = Greek AND NOT ingredient.group = Nuts`)
	if len(q.Terms) != 2 {
		t.Fatalf("terms = %d", len(q.Terms))
	}
	for _, it := range e.Evaluate(q) {
		for _, ing := range g.Objects(it, recipes.PropIngredient) {
			if g.Has(ing.(rdf.IRI), recipes.PropGroup, recipes.Group("Nuts")) {
				t.Fatalf("%s has nuts", it)
			}
		}
	}
	// != sugar.
	q2 := parse(t, r, `cuisine != Greek`)
	if _, ok := q2.Terms[0].(query.Not); !ok {
		t.Errorf("!= should parse to Not, got %T", q2.Terms[0])
	}
}

func TestParseComposedPath(t *testing.T) {
	_, r, e := fixture(t)
	q := parse(t, r, `ingredient.group = Dairy`)
	pp, ok := q.Terms[0].(query.PathProperty)
	if !ok || len(pp.Path) != 2 {
		t.Fatalf("term = %#v", q.Terms[0])
	}
	if len(e.Evaluate(q)) == 0 {
		t.Error("no dairy recipes")
	}
}

func TestParseRanges(t *testing.T) {
	_, r, e := fixture(t)
	ge := parse(t, r, `servings >= 4`)
	gt := parse(t, r, `servings > 4`)
	// Strict > on an integer attribute excludes the boundary.
	nGE := len(e.Evaluate(ge))
	nGT := len(e.Evaluate(gt))
	if nGT >= nGE {
		t.Errorf("> (%d) should be narrower than >= (%d)", nGT, nGE)
	}
	le := parse(t, r, `servings <= 2`)
	lt := parse(t, r, `servings < 2`)
	if len(e.Evaluate(lt)) >= len(e.Evaluate(le)) {
		t.Error("< should be narrower than <=")
	}
}

func TestParseTextOperators(t *testing.T) {
	_, r, _ := fixture(t)
	q := parse(t, r, `directions : walnut`)
	kw, ok := q.Terms[0].(query.Keyword)
	if !ok || kw.Field != string(recipes.PropContent) || kw.Text != "walnut" {
		t.Fatalf("term = %#v", q.Terms[0])
	}
	// Bare quoted string → any-field keyword search.
	q2 := parse(t, r, `"winter soup"`)
	kw2 := q2.Terms[0].(query.Keyword)
	if kw2.Field != "" || kw2.Text != "winter soup" {
		t.Errorf("bare string = %#v", kw2)
	}
	// Bare word → keyword search too.
	q3 := parse(t, r, `walnut`)
	if kw3 := q3.Terms[0].(query.Keyword); kw3.Text != "walnut" {
		t.Errorf("bare word = %#v", kw3)
	}
}

func TestParseErrors(t *testing.T) {
	_, r, _ := fixture(t)
	bad := []string{
		`cuisine =`,
		`cuisine = Atlantis`,
		`nonsense = x`,
		`cuisine ! Greek`,
		`(cuisine = Greek`,
		`cuisine = Greek )`,
		`servings >= soon`,
		`"unterminated`,
		`ingredient.group : word`,
		`ingredient.group > 4`,
		`cuisine.`,
		``,
	}
	for _, src := range bad {
		if _, err := Parse(src, r); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	for _, src := range bad {
		if _, err := Parse(src, r); err != nil && !strings.Contains(err.Error(), "qlang") {
			t.Errorf("error for %q should carry package context: %v", src, err)
		}
	}
}

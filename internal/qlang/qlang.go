// Package qlang parses a small textual query language into Magnet query
// predicates, resolving human-readable property and value names against the
// graph's labels. It gives the CLI and power users the §3.3 "complex query"
// capability in one line:
//
//	cuisine = Greek AND NOT ingredient.group = Nuts AND servings >= 4
//	title : "butter" OR directions : walnut
//	"winter soup"
//
// Grammar (case-insensitive keywords):
//
//	expr    = or
//	or      = and { "OR" and }
//	and     = unary { "AND" unary }
//	unary   = "NOT" unary | "(" expr ")" | atom
//	atom    = path op value | string       (a bare string is keyword search)
//	path    = name { "." name }            (property composition)
//	op      = "=" | "!=" | ":" | ">" | ">=" | "<" | "<="
//
// "=" matches an attribute value by label (resources) or text (literals);
// ":" is a contains-word text match on the property; comparisons build
// numeric ranges.
package qlang

import (
	"fmt"
	"strconv"
	"strings"

	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/schema"
)

// Resolver maps names in queries to graph terms.
type Resolver struct {
	g   *rdf.Graph
	sch *schema.Store

	propIndex map[string]rdf.IRI
}

// NewResolver builds a resolver over the graph's current properties: each
// navigation property is addressable by its label, its humanized name, and
// its local name (all case-insensitive, spaces and underscores equivalent).
func NewResolver(g *rdf.Graph, sch *schema.Store) *Resolver {
	r := &Resolver{g: g, sch: sch, propIndex: make(map[string]rdf.IRI)}
	for _, p := range g.Predicates() {
		if sch.Hidden(p) {
			continue
		}
		for _, name := range []string{sch.Label(p), rdf.PlainName(p), p.LocalName()} {
			key := canon(name)
			if key == "" {
				continue
			}
			if _, taken := r.propIndex[key]; !taken {
				r.propIndex[key] = p
			}
		}
	}
	// rdf:type is always addressable as "type".
	r.propIndex[canon("type")] = rdf.Type
	return r
}

func canon(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, "_", " ")
	s = strings.ReplaceAll(s, "/", " ")
	return strings.Join(strings.Fields(s), " ")
}

// Property resolves a property name.
func (r *Resolver) Property(name string) (rdf.IRI, error) {
	if p, ok := r.propIndex[canon(name)]; ok {
		return p, nil
	}
	return "", fmt.Errorf("qlang: unknown property %q", name)
}

// Value resolves a value name for a property: a resource whose label (or
// local name) matches, or a literal with that lexical form — whichever the
// property's data actually contains.
func (r *Resolver) Value(prop rdf.IRI, name string) (rdf.Term, error) {
	want := canon(name)
	var literal rdf.Term
	for _, v := range r.g.ObjectsOf(prop) {
		switch t := v.(type) {
		case rdf.IRI:
			if canon(r.g.Label(t)) == want || canon(t.LocalName()) == want {
				return t, nil
			}
		case rdf.Literal:
			if canon(t.Lexical) == want {
				literal = t
			}
		}
	}
	if literal != nil {
		return literal, nil
	}
	return nil, fmt.Errorf("qlang: property %q has no value %q", r.g.Label(prop), name)
}

// Parse parses src into a query. AND binds tighter than OR (SQL
// precedence); a top-level conjunction is flattened into separate query
// constraints so the navigation pane shows them as individually removable
// and negatable chips.
func Parse(src string, r *Resolver) (query.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return query.Query{}, err
	}
	p := &parser{toks: toks, r: r}
	pred, err := p.orExpr()
	if err != nil {
		return query.Query{}, err
	}
	if !p.eof() {
		return query.Query{}, fmt.Errorf("qlang: unexpected %q", p.peek().text)
	}
	if and, ok := pred.(query.And); ok {
		return query.NewQuery(and.Ps...), nil
	}
	return query.NewQuery(pred), nil
}

// ---------------------------------------------------------------- lexer --

type tokKind int

const (
	tokEOF tokKind = iota
	tokWord
	tokString
	tokOp // = != : > >= < <=
	tokLParen
	tokRParen
	tokDot
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, "."})
			i++
		case c == '=' || c == ':':
			toks = append(toks, token{tokOp, string(c)})
			i++
		case c == '!' || c == '>' || c == '<':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			if op == "!" {
				return nil, fmt.Errorf("qlang: stray '!' (use != or NOT)")
			}
			toks = append(toks, token{tokOp, op})
			i++
		case c == '"':
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("qlang: unterminated string")
			}
			toks = append(toks, token{tokString, b.String()})
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n()=:<>!.\"", rune(src[j])) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("qlang: unexpected character %q", c)
			}
			toks = append(toks, token{tokWord, src[i:j]})
			i = j
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

// --------------------------------------------------------------- parser --

type parser struct {
	toks []token
	pos  int
	r    *Resolver
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) eof() bool { return p.peek().kind == tokEOF }

func isKeyword(t token, kw string) bool {
	return t.kind == tokWord && strings.EqualFold(t.text, kw)
}

func (p *parser) orExpr() (query.Predicate, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	var alts []query.Predicate
	for isKeyword(p.peek(), "OR") {
		p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		alts = append(alts, right)
	}
	if alts == nil {
		return left, nil
	}
	return query.Or{Ps: append([]query.Predicate{left}, alts...)}, nil
}

func (p *parser) andExpr() (query.Predicate, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	var more []query.Predicate
	for isKeyword(p.peek(), "AND") {
		p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		more = append(more, right)
	}
	if more == nil {
		return left, nil
	}
	return query.And{Ps: append([]query.Predicate{left}, more...)}, nil
}

func (p *parser) unary() (query.Predicate, error) {
	if isKeyword(p.peek(), "NOT") {
		p.next()
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		return query.Not{P: inner}, nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("qlang: missing ')'")
		}
		p.next()
		return inner, nil
	}
	return p.atom()
}

func (p *parser) atom() (query.Predicate, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		// Bare string: keyword search over all fields.
		return query.Keyword{Text: t.text}, nil
	case tokWord:
		return p.propertyAtom(t.text)
	default:
		return nil, fmt.Errorf("qlang: expected a constraint, got %q", t.text)
	}
}

func (p *parser) propertyAtom(first string) (query.Predicate, error) {
	// path = name { "." name }
	names := []string{first}
	for p.peek().kind == tokDot {
		p.next()
		n := p.next()
		if n.kind != tokWord {
			return nil, fmt.Errorf("qlang: expected property name after '.'")
		}
		names = append(names, n.text)
	}
	op := p.next()
	if op.kind != tokOp {
		// A lone word is a keyword search too ("walnut").
		if op.kind == tokEOF || op.kind == tokRParen || op.kind == tokWord {
			if op.kind != tokEOF {
				p.pos--
			}
			if len(names) == 1 {
				return query.Keyword{Text: names[0]}, nil
			}
		}
		return nil, fmt.Errorf("qlang: expected an operator after %q", strings.Join(names, "."))
	}

	path := make([]rdf.IRI, len(names))
	for i, n := range names {
		prop, err := p.r.Property(n)
		if err != nil {
			return nil, err
		}
		path[i] = prop
	}
	leaf := path[len(path)-1]

	val := p.next()
	if val.kind != tokWord && val.kind != tokString {
		return nil, fmt.Errorf("qlang: expected a value after %q", op.text)
	}

	switch op.text {
	case ":":
		field := string(leaf)
		if len(path) > 1 {
			return nil, fmt.Errorf("qlang: text match ':' does not support composed paths")
		}
		return query.Keyword{Text: val.text, Field: field}, nil
	case "=", "!=":
		term, err := p.r.Value(leaf, val.text)
		if err != nil {
			return nil, err
		}
		var pred query.Predicate
		if len(path) == 1 {
			pred = query.Property{Prop: leaf, Value: term}
		} else {
			pred = query.PathProperty{Path: path, Value: term}
		}
		if op.text == "!=" {
			return query.Not{P: pred}, nil
		}
		return pred, nil
	case ">", ">=", "<", "<=":
		if len(path) > 1 {
			return nil, fmt.Errorf("qlang: range comparisons do not support composed paths")
		}
		f, err := strconv.ParseFloat(val.text, 64)
		if err != nil {
			return nil, fmt.Errorf("qlang: %q is not a number", val.text)
		}
		// Ranges are inclusive; strict bounds step by the property's grain
		// (1 for integer-valued attributes, an epsilon otherwise).
		step := 1e-9
		if p.r.sch.ValueType(leaf) == schema.Integer {
			step = 1
		}
		switch op.text {
		case ">":
			return query.AtLeast(leaf, f+step), nil
		case ">=":
			return query.AtLeast(leaf, f), nil
		case "<":
			return query.AtMost(leaf, f-step), nil
		default:
			return query.AtMost(leaf, f), nil
		}
	default:
		return nil, fmt.Errorf("qlang: unsupported operator %q", op.text)
	}
}

package qlang

import (
	"sync"
	"testing"

	"magnet/internal/datasets/recipes"
	"magnet/internal/schema"
)

// fuzzResolver builds one small recipes graph shared by every fuzz
// execution: the fuzzer explores the parser, not graph construction.
var (
	fuzzOnce sync.Once
	fuzzRes  *Resolver
)

func fuzzResolver() *Resolver {
	fuzzOnce.Do(func() {
		g := recipes.Build(recipes.Config{Recipes: 100, Seed: 1})
		fuzzRes = NewResolver(g, schema.NewStore(g))
	})
	return fuzzRes
}

// FuzzParse feeds arbitrary query strings through the full lex/parse/resolve
// pipeline. Invariants: Parse never panics, and a successful parse is
// deterministic — re-parsing the same source yields the same canonical
// query key.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`cuisine = Greek`,
		`cuisine = Greek AND servings >= 4 AND course = Dessert`,
		`cuisine = Greek OR cuisine = Mexican AND course = Dessert`,
		`(cuisine = Greek OR cuisine = Mexican) AND course = Dessert`,
		`cuisine = Greek AND NOT ingredient.group = Nuts`,
		`cuisine != Greek`,
		`servings >= 4`,
		`servings < 2`,
		`directions : walnut`,
		`"winter soup"`,
		`walnut`,
		// malformed corpus from TestParseErrors
		`cuisine ! Greek`,
		`(cuisine = Greek`,
		`servings >= soon`,
		`"unterminated`,
		`cuisine.`,
		``,
		"\x00\xff",
		`((((((((((a`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	r := fuzzResolver()
	f.Fuzz(func(t *testing.T, src string) {
		q1, err := Parse(src, r)
		if err != nil {
			return // rejecting garbage is the parser's job
		}
		q2, err := Parse(src, r)
		if err != nil {
			t.Fatalf("Parse(%q) succeeded then failed: %v", src, err)
		}
		if q1.Key() != q2.Key() {
			t.Fatalf("Parse(%q) nondeterministic: %q vs %q", src, q1.Key(), q2.Key())
		}
	})
}

package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: magnet/internal/query
cpu: some CPU
BenchmarkEval-4   	    1000	   1234567 ns/op	  2048 B/op	      12 allocs/op
BenchmarkEval      	     500	   2000000 ns/op
not a bench line
pkg: magnet/internal/facets
BenchmarkSummarize-2 	     200	   5555555 ns/op	 42.5 widgets/op
PASS
`

func TestParse(t *testing.T) {
	bs, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []Benchmark{
		{Name: "BenchmarkEval", Pkg: "magnet/internal/query", Procs: 4, Iterations: 1000,
			Metrics: map[string]float64{"ns/op": 1234567, "B/op": 2048, "allocs/op": 12}},
		{Name: "BenchmarkEval", Pkg: "magnet/internal/query", Procs: 1, Iterations: 500,
			Metrics: map[string]float64{"ns/op": 2000000}},
		{Name: "BenchmarkSummarize", Pkg: "magnet/internal/facets", Procs: 2, Iterations: 200,
			Metrics: map[string]float64{"ns/op": 5555555, "widgets/op": 42.5}},
	}
	if !reflect.DeepEqual(bs, want) {
		t.Fatalf("Parse mismatch:\n got %+v\nwant %+v", bs, want)
	}
}

func TestDocumentJSONSchema(t *testing.T) {
	// The committed BENCH_<date>.json field names are part of the format;
	// guard against accidental renames.
	d := Document{Date: "2026-08-07", GoVersion: "go1.24.0", GoMaxProcs: 1, NumCPU: 1,
		Benchmarks: []Benchmark{{Name: "BenchmarkX", Pkg: "p", Procs: 1, Iterations: 3,
			Metrics: map[string]float64{"ns/op": 1}}}}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"date"`, `"go"`, `"gomaxprocs"`, `"numcpu"`, `"benchmarks"`,
		`"name"`, `"pkg"`, `"procs"`, `"iterations"`, `"metrics"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("encoded document missing %s: %s", key, b)
		}
	}
}

func TestLoadMergeWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_2026-08-07.json")

	// Missing file: fresh stamped document.
	d, err := Load(path)
	if err != nil {
		t.Fatalf("Load missing: %v", err)
	}
	if d.Date == "" || d.GoVersion == "" || d.GoMaxProcs < 1 {
		t.Fatalf("Load of missing file returned unstamped document: %+v", d)
	}

	a := Benchmark{Name: "BenchmarkA", Pkg: "p", Procs: 1, Iterations: 10,
		Metrics: map[string]float64{"ns/op": 100}}
	b := Benchmark{Name: "BenchmarkB", Pkg: "p", Procs: 1, Iterations: 20,
		Metrics: map[string]float64{"ns/op": 200}}
	d.Merge(a, b)
	if err := d.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Merge replaces by (Name, Pkg, Procs) identity rather than duplicating.
	d2, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a2 := a
	a2.Metrics = map[string]float64{"ns/op": 150}
	d2.Merge(a2)
	if len(d2.Benchmarks) != 2 {
		t.Fatalf("Merge duplicated entries: %+v", d2.Benchmarks)
	}
	if got := d2.Benchmarks[0].Metrics["ns/op"]; got != 150 {
		t.Fatalf("Merge did not replace: ns/op = %v, want 150", got)
	}

	// No stray temp file after atomic write.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestFileName(t *testing.T) {
	d := Document{Date: "2026-08-07"}
	if got := d.FileName(); got != "BENCH_2026-08-07.json" {
		t.Fatalf("FileName = %q", got)
	}
}
